// Fused MoE dispatch (routed All-to-All-v) vs the bulk-synchronous
// GEMM + all_to_all_v baseline, swept over expert-load skew.
//
// The paper's GEMM+All-to-All prototype (Fig. 10) assumes equal expert
// load; this bench covers the irregular case its Sec. III-B motivates:
// top-2 routing with a hot expert drawing `skew`x the traffic of a cold
// one. The fused path overlaps each finished tile's remote PUT with the
// remaining GEMM, so the hot expert's extra traffic hides behind compute;
// the baseline pays the slowest source's full GEMM before the first byte
// of the uneven collective moves.
#include "bench_common.h"
#include "fused/moe_dispatch.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

TimeNs run(int tokens, int d_model, int d_out, double hot, bool fused_path) {
  fused::MoeDispatchConfig cfg;
  cfg.tokens_per_pe = tokens;
  cfg.d_model = d_model;
  cfg.d_out = d_out;
  cfg.hot_expert_factor = hot;
  cfg.functional = false;
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine machine(mc);
  shmem::World w(machine);
  if (fused_path) {
    return fused::FusedMoeDispatch(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  }
  return fused::BaselineMoeDispatch(w, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  // Skew sweep at a fixed MoE layer shape (tokens, d_model, d_out), then a
  // shape sweep at the acceptance skew of 4x.
  const double skews[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  const int shapes[][3] = {{512, 1024, 1024},
                           {2048, 1024, 1024},
                           {2048, 2048, 1024},
                           {4096, 2048, 2048}};
  const auto rows = fccbench::run_sweep<fccbench::NormRow>(
      "bench_moe_dispatch", 9, [&](int i) {
        fccbench::NormRow row;
        if (i < 5) {
          const double hot = skews[i];
          row.label = "T=1024 dM=1024 dO=1024 skew=" +
                      fcc::AsciiTable::fmt(hot, 0) + "x";
          row.baseline = run(1024, 1024, 1024, hot, false);
          row.fused = run(1024, 1024, 1024, hot, true);
        } else {
          const auto& [t, dm, dout] = shapes[i - 5];
          row.label = "T=" + std::to_string(t) + " dM=" + std::to_string(dm) +
                      " dO=" + std::to_string(dout) + " skew=4x";
          row.baseline = run(t, dm, dout, 4.0, false);
          row.fused = run(t, dm, dout, 4.0, true);
        }
        return row;
      });
  fccbench::print_normalized(
      "MoE dispatch — fused routed All-to-All-v vs GEMM + all_to_all_v "
      "(4 experts, top-2)\n"
      "hot-expert skew sweep: fused hides the hot expert's extra traffic "
      "behind compute",
      rows, "moe_dispatch_skew.csv");
  return 0;
}

// Shared helpers for the figure-reproduction benches.
//
// Every bench prints a paper-style ASCII table and writes a CSV twin into
// ./bench_results/ so EXPERIMENTS.md can reference exact numbers.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/perf_json.h"
#include "common/table.h"
#include "common/types.h"

namespace fccbench {

/// Results directory; FCC_BENCH_OUT overrides the default ./bench_results
/// so CI can redirect output to a scratch path.
inline std::string out_dir() {
  const char* env = std::getenv("FCC_BENCH_OUT");
  const std::string dir = (env != nullptr && *env != '\0') ? env
                                                           : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

struct NormRow {
  std::string label;
  fcc::TimeNs baseline = 0;
  fcc::TimeNs fused = 0;
};

/// Prints the canonical "normalized execution time" table (fused/baseline,
/// baseline == 1.0) and the mean/max reduction summary the paper quotes.
/// Rows with a zero baseline print (and record) "n/a" instead of NaN/inf
/// and are excluded from the mean/max; an empty sweep prints "n/a" for the
/// summary rather than dividing by zero.
inline void print_normalized(const std::string& title,
                             const std::vector<NormRow>& rows,
                             const std::string& csv_name) {
  fcc::AsciiTable t({"config", "baseline (us)", "fused (us)", "normalized",
                     "reduction %"});
  fcc::CsvWriter csv(out_dir() + "/" + csv_name,
                     {"config", "baseline_ns", "fused_ns", "normalized"});
  double sum_reduction = 0, max_reduction = 0;
  std::size_t valid_rows = 0;
  for (const auto& r : rows) {
    if (r.baseline == 0) {
      t.add_row({r.label, fcc::AsciiTable::fmt(fcc::ns_to_us(r.baseline), 1),
                 fcc::AsciiTable::fmt(fcc::ns_to_us(r.fused), 1), "n/a",
                 "n/a"});
      csv.row(r.label, r.baseline, r.fused, "n/a");
      continue;
    }
    const double norm =
        static_cast<double>(r.fused) / static_cast<double>(r.baseline);
    const double red = 100.0 * (1.0 - norm);
    sum_reduction += red;
    max_reduction = std::max(max_reduction, red);
    ++valid_rows;
    t.add_row({r.label, fcc::AsciiTable::fmt(fcc::ns_to_us(r.baseline), 1),
               fcc::AsciiTable::fmt(fcc::ns_to_us(r.fused), 1),
               fcc::AsciiTable::fmt(norm, 3), fcc::AsciiTable::fmt(red, 1)});
    csv.row(r.label, r.baseline, r.fused, norm);
  }
  std::cout << title << "\n";
  t.print(std::cout);
  if (valid_rows == 0) {
    std::cout << "mean reduction: n/a   max reduction: n/a\n\n";
  } else {
    std::cout << "mean reduction: "
              << fcc::AsciiTable::fmt(
                     sum_reduction / static_cast<double>(valid_rows), 1)
              << "%   max reduction: "
              << fcc::AsciiTable::fmt(max_reduction, 1) << "%\n\n";
  }
}

}  // namespace fccbench

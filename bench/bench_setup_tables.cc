// Tables I and II: the evaluation platform and the scale-out simulation
// setup, printed from the live config structs so they cannot drift from
// what the benches actually use.
#include <iostream>

#include "bench_common.h"
#include "hw/gpu_spec.h"
#include "scaleout/dlrm_training.h"

int main() {
  using namespace fcc;

  hw::SystemSetup setup;
  AsciiTable t1({"Table I", "value"});
  t1.add_row({"GPU", setup.gpu.name + " (" + std::to_string(setup.gpu.num_cus) +
                         " CUs, " +
                         AsciiTable::fmt(setup.gpu.hbm_bytes_per_ns / 1000.0,
                                         2) +
                         " TB/s HBM)"});
  t1.add_row({"Software", setup.software});
  t1.add_row({"Scale-up", std::to_string(setup.scale_up_gpus) +
                              " GPUs fully connected, fabric " +
                              AsciiTable::fmt(setup.fabric.port_bytes_per_ns,
                                              0) +
                              " GB/s per port"});
  t1.add_row({"Scale-out", std::to_string(setup.scale_out_nodes) +
                               " nodes x1 GPU, IB " +
                               AsciiTable::fmt(setup.ib.wire_bytes_per_ns, 0) +
                               " GB/s"});
  t1.print(std::cout);

  scaleout::TrainingConfig cfg;
  AsciiTable t2({"Table II", "value"});
  t2.add_row({"Embedding dimension", std::to_string(cfg.emb_dim)});
  t2.add_row({"MLP layers", std::to_string(cfg.mlp_layers) + " (avg size " +
                                std::to_string(cfg.mlp_avg_width) + ")"});
  t2.add_row({"Avg pooling size", std::to_string(cfg.pooling)});
  const auto torus = scaleout::torus_for_nodes(cfg.num_nodes, cfg.torus);
  t2.add_row({"Topology", "2D torus " + std::to_string(torus.dim_x) + "x" +
                              std::to_string(torus.dim_y) + " (BW " +
                              AsciiTable::fmt(
                                  torus.link_bytes_per_ns * 8.0, 0) +
                              " Gb/s, lat " +
                              std::to_string(torus.link_latency_ns) + " ns)"});
  t2.print(std::cout);
  return 0;
}

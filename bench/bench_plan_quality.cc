// Planner quality gate: on every (op, size, topology) sweep point the
// planned execution must be no slower than BOTH the always-fuse and the
// never-fuse policy — i.e. the planner never applies a predicted-loss
// rewrite, including at the moe_dispatch T=512 crossover where the fused
// path genuinely loses. Each point also verifies the warm-PlanCache path:
// a second plan of the same graph must hit, run zero passes, and replay to
// byte-identical execution records.
//
// Exit status is nonzero if any point plans slower than the best uniform
// policy or any warm-cache replay diverges, so CI can gate on it.
//
// `--print-calibration` re-measures every point and prints the
// src/plan/calibration.cc data rows (measured fused/baseline next to the
// raw analytic prediction); bake the output there whenever the cost model
// or hardware specs change.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/gemm_a2a.h"
#include "fused/gemv_allreduce.h"
#include "fused/moe_dispatch.h"
#include "plan/cost_scorer.h"
#include "plan/plan_cache.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

struct Point {
  std::string label;
  fw::OpSpec spec;
  gpu::Machine::Config machine;
};

gpu::Machine::Config fc(int nodes, int gpn) {
  gpu::Machine::Config mc;
  mc.num_nodes = nodes;
  mc.gpus_per_node = gpn;
  return mc;
}

gpu::Machine::Config switched_1x4() {
  gpu::Machine::Config mc = fc(1, 4);
  mc.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
  return mc;
}

fw::OpSpec gemv_spec(int m, int k) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = k;
  cfg.functional = false;
  return fw::make_spec("fcc::gemv_allreduce", cfg);
}

fw::OpSpec moe_spec(int tokens, int d_model, int d_out, double hot) {
  fused::MoeDispatchConfig cfg;
  cfg.tokens_per_pe = tokens;
  cfg.d_model = d_model;
  cfg.d_out = d_out;
  cfg.hot_expert_factor = hot;
  cfg.functional = false;
  return fw::make_spec("fcc::moe_dispatch", cfg);
}

fw::OpSpec gemm_spec(int rows, int d_model, int d_ff) {
  fused::GemmA2AConfig cfg;
  cfg.rows_per_origin = rows;
  cfg.d_model = d_model;
  cfg.d_ff = d_ff;
  cfg.functional = false;
  return fw::make_spec("fcc::gemm_a2a", cfg);
}

fw::OpSpec emb_spec(int batch, int tables, int dim, int vps, int pooling) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 4;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch;
  cfg.map.dim = dim;
  cfg.map.vectors_per_slice = vps;
  cfg.pooling = pooling;
  cfg.functional = false;
  return fw::make_spec("fcc::embedding_a2a", cfg);
}

/// The anchor grid: the figure-bench sweeps (fig08 embedding, fig09
/// gemv+allreduce, fig10 gemm+a2a, the moe shape sweep at skew 4 with its
/// T=512 crossover) plus serving-catalog-scale small shapes, on the
/// fully-connected 1x4, switched 1x4, and fully-connected 2x4 machines.
std::vector<Point> build_grid() {
  std::vector<Point> pts;
  const auto add = [&](std::string label, fw::OpSpec spec,
                       gpu::Machine::Config mc) {
    pts.push_back(Point{std::move(label), std::move(spec), std::move(mc)});
  };

  // fcc::gemv_allreduce — fig09 grid + serving decode/dlrm shapes.
  const int gemv_fc[][2] = {{8192, 8192},  {16384, 8192}, {16384, 16384},
                            {32768, 8192}, {65536, 8192}, {1024, 1024},
                            {512, 1024}};
  for (const auto& [m, k] : gemv_fc) {
    add("gemv M=" + std::to_string(m) + " K=" + std::to_string(k) + " fc1x4",
        gemv_spec(m, k), fc(1, 4));
  }
  const int gemv_sw[][2] = {{8192, 8192}, {16384, 8192}, {65536, 8192}};
  for (const auto& [m, k] : gemv_sw) {
    add("gemv M=" + std::to_string(m) + " K=" + std::to_string(k) + " sw1x4",
        gemv_spec(m, k), switched_1x4());
  }
  const int gemv_2n[][2] = {{8192, 8192}, {16384, 8192}, {32768, 8192}};
  for (const auto& [m, k] : gemv_2n) {
    add("gemv M=" + std::to_string(m) + " K=" + std::to_string(k) + " fc2x4",
        gemv_spec(m, k), fc(2, 4));
  }

  // fcc::moe_dispatch — shape sweep at the acceptance skew of 4x,
  // including the T=512 point where the fused path loses.
  const int moe_fc[][3] = {{512, 1024, 1024},
                           {1024, 1024, 1024},
                           {2048, 1024, 1024},
                           {2048, 2048, 1024},
                           {4096, 2048, 2048}};
  for (const auto& [t, dm, dout] : moe_fc) {
    add("moe T=" + std::to_string(t) + " dM=" + std::to_string(dm) +
            " dO=" + std::to_string(dout) + " skew=4 fc1x4",
        moe_spec(t, dm, dout, 4.0), fc(1, 4));
  }
  const int moe_sw[][3] = {{512, 1024, 1024}, {2048, 1024, 1024}};
  for (const auto& [t, dm, dout] : moe_sw) {
    add("moe T=" + std::to_string(t) + " dM=" + std::to_string(dm) +
            " dO=" + std::to_string(dout) + " skew=4 sw1x4",
        moe_spec(t, dm, dout, 4.0), switched_1x4());
  }

  // fcc::gemm_a2a — fig10 grid + the serving decode tail shape.
  const int gemm_fc[][3] = {{1024, 1024, 1024}, {1024, 2048, 1024},
                            {2048, 1024, 2048}, {2048, 2048, 1024},
                            {4096, 2048, 2048}, {64, 256, 512}};
  for (const auto& [r, dm, dff] : gemm_fc) {
    add("gemm R=" + std::to_string(r) + " dM=" + std::to_string(dm) +
            " dF=" + std::to_string(dff) + " fc1x4",
        gemm_spec(r, dm, dff), fc(1, 4));
  }
  const int gemm_sw[][3] = {{1024, 1024, 1024}, {4096, 2048, 2048}};
  for (const auto& [r, dm, dff] : gemm_sw) {
    add("gemm R=" + std::to_string(r) + " dM=" + std::to_string(dm) +
            " dF=" + std::to_string(dff) + " sw1x4",
        gemm_spec(r, dm, dff), switched_1x4());
  }

  // fcc::embedding_a2a — fig08 grid (dim 256, pooling 100) + the serving
  // dlrm shape (dim 64, pooling 64).
  const int emb_fc[][2] = {{512, 64},   {512, 128},  {1024, 128},
                           {1024, 256}, {2048, 128}, {2048, 256}};
  for (const auto& [batch, tables] : emb_fc) {
    add("emb B=" + std::to_string(batch) + " T=" + std::to_string(tables) +
            " fc1x4",
        emb_spec(batch, tables, 256, 32, 100), fc(1, 4));
  }
  add("emb B=128 T=4 dim=64 fc1x4", emb_spec(128, 4, 64, 8, 64), fc(1, 4));
  const int emb_sw[][2] = {{512, 64}, {1024, 256}, {2048, 256}};
  for (const auto& [batch, tables] : emb_sw) {
    add("emb B=" + std::to_string(batch) + " T=" + std::to_string(tables) +
            " sw1x4",
        emb_spec(batch, tables, 256, 32, 100), switched_1x4());
  }
  return pts;
}

fw::Graph one_node_graph(const Point& p) {
  fw::Graph g;
  auto out = g.tensor("out");
  g.add(p.spec, {}, {out}, p.label);
  return g;
}

struct Measured {
  TimeNs never_fuse = 0;   // uniform baseline backend
  TimeNs always_fuse = 0;  // uniform fused backend
  TimeNs planned = 0;      // full pipeline + calibration
  std::string choice;      // planned backend (+ any ccl algo override)
  bool calibrated = false;
  bool warm_ok = false;  // warm hit, zero passes, byte-identical replay
  double planning_ns = 0.0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_lookups = 0;
};

Measured measure(const Point& p) {
  Measured r;
  {
    fw::Session s(p.machine);
    r.never_fuse = s.run(one_node_graph(p), fw::Backend::kBaseline).makespan();
  }
  {
    fw::Session s(p.machine);
    r.always_fuse = s.run(one_node_graph(p), fw::Backend::kFused).makespan();
  }

  plan::PlanCache cache(8);
  plan::PlanOptions options;
  options.cache = &cache;
  fw::Session::PlannedRun cold;
  {
    fw::Session s(p.machine);
    cold = s.run_planned(one_node_graph(p), options);
  }
  r.planned = cold.result.makespan();
  r.planning_ns = cold.planned.report.planning_host_ns;
  for (const plan::PlanDecision& d : cold.planned.report.decisions) {
    if (d.pass == "score-backends") {
      r.choice = d.choice;
      r.calibrated = d.calibrated;
    } else if (d.pass == "select-ccl-algo" && d.accepted) {
      r.choice += "+" + d.choice;
    }
  }

  // Warm replay: same cache, fresh session — must hit, run zero passes,
  // and land on byte-identical execution records.
  {
    fw::Session s(p.machine);
    const auto warm = s.run_planned(one_node_graph(p), options);
    r.warm_ok = warm.planned.report.cache_hit &&
                warm.planned.report.passes.empty() &&
                warm.result.makespan() == cold.result.makespan() &&
                warm.result.nodes.size() == cold.result.nodes.size();
    if (r.warm_ok) {
      for (std::size_t i = 0; i < warm.result.nodes.size(); ++i) {
        if (!(warm.result.nodes[i].result == cold.result.nodes[i].result)) {
          r.warm_ok = false;
        }
      }
    }
  }
  r.cache_hits = cache.stats().hits;
  r.cache_lookups = cache.stats().hits + cache.stats().misses;
  return r;
}

int print_calibration(const std::vector<Point>& grid) {
  // Raw analytic scores (no calibration) next to fresh measurements, as
  // src/plan/calibration.cc AnchorRow initializers.
  const auto rows = fccbench::run_sweep<std::string>(
      "bench_plan_quality_calibration", static_cast<int>(grid.size()),
      [&](int i) {
        const Point& p = grid[static_cast<std::size_t>(i)];
        const Measured m = measure(p);
        plan::CostEnv env;
        env.machine = p.machine;
        const plan::CostScorer raw(env, /*use_calibration=*/false,
                                   plan::ScorerRegistry::global(),
                                   plan::empty_calibration());
        const plan::CostEstimate est = raw.score(p.spec);
        const plan::OpCostModel* model =
            plan::ScorerRegistry::global().find(p.spec.name);
        std::ostringstream os;
        os << std::setprecision(17) << "      {\"" << p.spec.name << "\", \""
           << env.topo_kind() << "\", " << model->work(p.spec, env) << ", "
           << static_cast<double>(m.always_fuse) << ", "
           << static_cast<double>(m.never_fuse) << ", " << est.fused_ns
           << ", " << est.baseline_ns << ", \"" << p.label << "\"},";
        return os.str();
      });
  std::cout << "// Paste into src/plan/calibration.cc builtin_rows():\n";
  for (const std::string& row : rows) std::cout << row << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<Point> grid = build_grid();
  if (argc > 1 && std::string(argv[1]) == "--print-calibration") {
    return print_calibration(grid);
  }

  const auto results = fccbench::run_sweep<Measured>(
      "bench_plan_quality", static_cast<int>(grid.size()),
      [&](int i) { return measure(grid[static_cast<std::size_t>(i)]); });

  AsciiTable t({"config", "never-fuse (us)", "always-fuse (us)",
                "planned (us)", "choice", "ok"});
  CsvWriter csv(fccbench::out_dir() + "/plan_quality.csv",
                {"config", "never_fuse_ns", "always_fuse_ns", "planned_ns",
                 "choice", "ok"});
  int violations = 0;
  int warm_failures = 0;
  int calibrated_points = 0;
  double planning_ns_sum = 0.0;
  std::int64_t hits = 0, lookups = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measured& m = results[i];
    const TimeNs best = std::min(m.never_fuse, m.always_fuse);
    const bool honest = m.planned <= best;
    if (!honest) ++violations;
    if (!m.warm_ok) ++warm_failures;
    if (m.calibrated) ++calibrated_points;
    planning_ns_sum += m.planning_ns;
    hits += m.cache_hits;
    lookups += m.cache_lookups;
    const std::string ok =
        honest && m.warm_ok
            ? "yes"
            : (honest ? "warm-replay-diverged" : "SLOWER-THAN-BEST");
    t.add_row({grid[i].label, AsciiTable::fmt(ns_to_us(m.never_fuse), 1),
               AsciiTable::fmt(ns_to_us(m.always_fuse), 1),
               AsciiTable::fmt(ns_to_us(m.planned), 1), m.choice, ok});
    csv.row(grid[i].label, m.never_fuse, m.always_fuse, m.planned, m.choice,
            ok);
  }

  std::cout << "Planner quality — planned vs the two uniform policies\n"
            << "(planned must be <= min(always-fuse, never-fuse) at every "
               "point; warm PlanCache replays must be byte-identical)\n";
  t.print(std::cout);
  std::cout << "points: " << results.size()
            << "   calibrated: " << calibrated_points
            << "   violations: " << violations
            << "   warm failures: " << warm_failures << "\n\n";

  PerfJson perf;
  const std::string path = fccbench::out_dir() + "/host_perf.json";
  perf.load(path);
  perf.set("bench_plan_quality", "plan_cache_hit_rate",
           lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0);
  perf.set("bench_plan_quality", "planning_ns_mean",
           results.empty() ? 0.0
                           : planning_ns_sum /
                                 static_cast<double>(results.size()));
  perf.set("bench_plan_quality", "calibrated_points", calibrated_points);
  perf.set("bench_plan_quality", "violations", violations);
  perf.save(path);

  return violations == 0 && warm_failures == 0 ? 0 : 1;
}

// Fig. 13: impact of persistent-WG occupancy on fused-kernel execution
// time (global batch 1024, 256 tables/GPU, 2 nodes).
//
// Paper result: raising occupancy 25% -> 75% cuts execution time by 46%
// (more parallelism); 75% -> 87.5% RAISES it by 25% (the memory-intensive
// kernel hits HBM contention past the knee).
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"
#include "sweep_runner.h"

int main() {
  using namespace fcc;

  const hw::GpuSpec spec;
  const int max_slots = spec.max_wg_slots();  // 832
  const double occupancies[] = {0.25, 0.50, 0.75, 0.875};

  const auto durations = fccbench::run_sweep<TimeNs>(
      "bench_fig13_occupancy", 4, [&](int i) {
        fused::EmbeddingA2AConfig cfg;
        cfg.map.num_pes = 2;
        cfg.map.tables_per_pe = 256;
        cfg.map.global_batch = 1024;
        cfg.map.dim = 256;
        cfg.map.vectors_per_slice = 32;
        cfg.pooling = 100;  // production-DLRM-class pooling factor
        cfg.functional = false;
        cfg.occupancy_slots_override =
            static_cast<int>(max_slots * occupancies[i]);
        gpu::Machine::Config mc;
        mc.num_nodes = 2;
        mc.gpus_per_node = 1;
        gpu::Machine machine(mc);
        shmem::World world(machine);
        return fused::FusedEmbeddingAllToAll(world, cfg, nullptr)
            .run_to_completion()
            .duration();
      });

  AsciiTable t({"occupancy", "persistent WGs", "exec time (us)",
                "vs 25% occupancy"});
  CsvWriter csv(fccbench::out_dir() + "/fig13_occupancy.csv",
                {"occupancy", "slots", "exec_ns"});
  const TimeNs t25 = durations[0], t75 = durations[2], t875 = durations[3];
  for (int i = 0; i < 4; ++i) {
    const double occ = occupancies[i];
    const int slots = static_cast<int>(max_slots * occ);
    const TimeNs dur = durations[static_cast<std::size_t>(i)];
    t.add_row({AsciiTable::fmt(100 * occ, 1) + "%", std::to_string(slots),
               AsciiTable::fmt(ns_to_us(dur), 1),
               AsciiTable::fmt(static_cast<double>(dur) / t25, 3)});
    csv.row(occ, slots, dur);
  }
  std::cout << "Fig. 13 — occupancy sweep, fused embedding+A2A "
               "(batch 1024, 256 tables/GPU)\n";
  t.print(std::cout);
  std::cout << "25% -> 75%: " << AsciiTable::fmt(100.0 * (1.0 - double(t75) / t25), 1)
            << "% faster (paper: 46%)\n"
            << "75% -> 87.5%: " << AsciiTable::fmt(100.0 * (double(t875) / t75 - 1.0), 1)
            << "% slower (paper: 25%)\n";
  return 0;
}

// Parallel sweep runner for the figure benches.
//
// A sweep point is one fully independent simulation (its own Machine, World
// and Engine — the engine is single-threaded by design, so parallelism runs
// *whole engines* on separate threads, see src/sim/engine.h). `run_sweep`
// fans the points across a par::ThreadPool and returns results **in index
// order**, so tables and CSVs are byte-identical to a serial run no matter
// how the points interleave on the host.
//
// Each call also appends a host-throughput record for the sweep (wall
// seconds, points/sec, thread count) to bench_results/host_perf.json so
// engine-speed regressions are visible bench-over-bench.
//
// FCC_SWEEP_THREADS: 0 / unset => hardware concurrency; 1 => serial
// (reference mode for determinism checks); N => N threads.
#pragma once

#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace fccbench {

inline unsigned sweep_threads(int points) {
  unsigned t = 0;
  if (const char* env = std::getenv("FCC_SWEEP_THREADS");
      env != nullptr && *env != '\0') {
    t = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  const unsigned cap = points < 1 ? 1u : static_cast<unsigned>(points);
  return t < cap ? t : cap;
}

/// Runs `point(i)` for i in [0, n), possibly concurrently, and returns the
/// results indexed by i. `point` must be self-contained (build its own
/// machine/world; no shared mutable state), which every figure bench's
/// sweep body already is.
template <typename Result>
std::vector<Result> run_sweep(const std::string& bench_name, int n,
                              const std::function<Result(int)>& point) {
  std::vector<Result> out(static_cast<std::size_t>(n));
  const unsigned threads = sweep_threads(n);
  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = point(i);
  } else {
    fcc::par::ThreadPool pool(threads);
    fcc::par::parallel_for(pool, 0, n, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = point(static_cast<int>(i));
    });
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  fcc::PerfJson perf;
  const std::string path = out_dir() + "/host_perf.json";
  perf.load(path);  // merge with other benches' records; absent file is fine
  perf.set(bench_name, "sweep_points", n);
  perf.set(bench_name, "threads", threads);
  perf.set(bench_name, "wall_seconds", wall);
  if (wall > 0) perf.set(bench_name, "points_per_second", n / wall);
  perf.save(path);
  return out;
}

}  // namespace fccbench

// Fig. 9: fused GEMV + AllReduce vs bulk-synchronous baseline across
// matrix sizes (4 GPUs, Megatron row-parallel shapes).
//
// Paper result: 13% mean reduction, up to 22%; the benefit shrinks at
// M = 64k as Infinity-Fabric contention grows.
#include "bench_common.h"
#include "fused/gemv_allreduce.h"
#include "shmem/world.h"

namespace {

using namespace fcc;

TimeNs run(int m, int k, bool fused_path) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = k;
  cfg.functional = false;
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine machine(mc);
  shmem::World w(machine);
  if (fused_path) {
    return fused::FusedGemvAllReduce(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  }
  return fused::BaselineGemvAllReduce(w, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  const int sweep[][2] = {{8192, 8192},
                          {16384, 8192},
                          {16384, 16384},
                          {32768, 8192},
                          {65536, 8192}};
  std::vector<fccbench::NormRow> rows;
  for (const auto& [m, k] : sweep) {
    fccbench::NormRow r;
    r.label = "M=" + std::to_string(m / 1024) + "k K=" +
              std::to_string(k / 1024) + "k";
    r.baseline = run(m, k, false);
    r.fused = run(m, k, true);
    rows.push_back(r);
  }
  fccbench::print_normalized(
      "Fig. 9 — fused GEMV+AllReduce (4 GPUs, row-parallel)\n"
      "paper: mean -13%, max -22%, shrinking at M=64k",
      rows, "fig09_gemv_allreduce.csv");
  return 0;
}

// Topology sweep: the same collective workloads across interconnect
// fabrics (fully-connected vs switched vs multi-rail vs 2D torus), plus
// flat vs hierarchy-aware AllReduce on a multi-node machine.
//
// Every scenario runs through the one Machine/Topology/ccl stack — the
// point of the topology layer is that these are Config changes, not code
// forks. Expected shape of the results:
//   * All-to-All: the switched node tracks the fully-connected fabric
//     (same endpoint-port contention), the torus pays multi-hop
//     serialization + per-hop latency.
//   * AllReduce (2 nodes x 4 GPUs): hierarchical staging beats both flat
//     algorithms because the NICs carry 1/gpus_per_node of the traffic;
//     multi-rail NICs shrink the inter-node stage further.
#include <string>
#include <vector>

#include "bench_common.h"
#include "ccl/communicator.h"
#include "gpu/machine.h"
#include "hw/topology.h"
#include "sim/task.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

std::vector<PeId> all_pes(gpu::Machine& m) {
  std::vector<PeId> v;
  for (int i = 0; i < m.num_pes(); ++i) v.push_back(i);
  return v;
}

sim::Task drive_a2a(ccl::Communicator& comm, std::int64_t chunk,
                    ccl::AllToAllAlgo algo) {
  co_await comm.all_to_all(chunk, {}, {}, algo);
}

sim::Task drive_allreduce(ccl::Communicator& comm, std::int64_t n,
                          ccl::AllReduceAlgo algo) {
  co_await comm.all_reduce(n, {}, algo);
}

struct Scenario {
  std::string label;
  std::string topology;
  std::string collective;
  std::string algo;
  gpu::Machine::Config machine;
  std::int64_t elems = 0;
  ccl::AllReduceAlgo ar_algo = ccl::AllReduceAlgo::kAuto;
  ccl::AllToAllAlgo a2a_algo = ccl::AllToAllAlgo::kAuto;
};

gpu::Machine::Config base(int nodes, int gpus) {
  gpu::Machine::Config c;
  c.num_nodes = nodes;
  c.gpus_per_node = gpus;
  return c;
}

std::vector<Scenario> scenarios() {
  const std::int64_t a2a_chunk = 1 << 16;   // 256 KB per rank pair
  const std::int64_t ar_elems = 1 << 20;    // 4 MB buffer

  std::vector<Scenario> s;

  // --- 8 PEs, one All-to-All, three fabrics ---
  {
    Scenario fc{"a2a_8pe", "fully_connected", "all_to_all", "pairwise",
                base(1, 8), a2a_chunk};
    fc.a2a_algo = ccl::AllToAllAlgo::kPairwise;
    s.push_back(fc);
  }
  {
    Scenario sw{"a2a_8pe", "switched", "all_to_all", "pairwise", base(1, 8),
                a2a_chunk};
    sw.machine.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
    sw.a2a_algo = ccl::AllToAllAlgo::kPairwise;
    s.push_back(sw);
  }
  {
    Scenario to{"a2a_8pe", "torus2d_4x2", "all_to_all", "pairwise",
                base(8, 1), a2a_chunk};
    to.machine.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    to.machine.topology.torus.dim_x = 4;
    to.machine.topology.torus.dim_y = 2;
    to.a2a_algo = ccl::AllToAllAlgo::kPairwise;
    s.push_back(to);
  }

  // --- 2 nodes x 4 GPUs, AllReduce: flat vs hierarchical ---
  for (auto [name, algo] :
       {std::pair{"flat_direct", ccl::AllReduceAlgo::kTwoPhaseDirect},
        std::pair{"flat_ring", ccl::AllReduceAlgo::kRing},
        std::pair{"hierarchical", ccl::AllReduceAlgo::kHierarchical},
        std::pair{"auto", ccl::AllReduceAlgo::kAuto}}) {
    Scenario ar{"allreduce_2x4", "fully_connected", "all_reduce", name,
                base(2, 4), ar_elems};
    ar.ar_algo = algo;
    s.push_back(ar);
  }

  // --- same AllReduce with 4 NIC rails per node ---
  {
    Scenario mr{"allreduce_2x4", "multi_rail_4", "all_reduce",
                "hierarchical", base(2, 4), ar_elems};
    mr.machine.topology.kind = hw::TopologySpec::Kind::kMultiRail;
    mr.machine.topology.nic_rails = 4;
    mr.ar_algo = ccl::AllReduceAlgo::kHierarchical;
    s.push_back(mr);
  }

  // --- 16-node torus AllReduce (DLRM-style scale-out, flat schedule
  //     routed over the rings vs the dimension-ordered flow) ---
  {
    Scenario to{"allreduce_torus16", "torus2d_4x4", "all_reduce",
                "flat_ring", base(16, 1), ar_elems};
    to.machine.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    to.machine.topology.torus.dim_x = 4;
    to.machine.topology.torus.dim_y = 4;
    to.ar_algo = ccl::AllReduceAlgo::kRing;
    s.push_back(to);
  }
  return s;
}

TimeNs run_point(const Scenario& sc) {
  gpu::Machine m(sc.machine);
  ccl::Communicator comm(m, all_pes(m));
  if (sc.collective == "all_to_all") {
    drive_a2a(comm, sc.elems, sc.a2a_algo);
  } else {
    drive_allreduce(comm, sc.elems, sc.ar_algo);
  }
  m.engine().run();
  return comm.last_duration();
}

}  // namespace

int main() {
  const auto scs = scenarios();
  const auto times = fccbench::run_sweep<TimeNs>(
      "bench_topology_sweep", static_cast<int>(scs.size()),
      [&](int i) { return run_point(scs[static_cast<std::size_t>(i)]); });

  AsciiTable t({"workload", "topology", "collective", "algo", "time (us)"});
  CsvWriter csv(fccbench::out_dir() + "/topology_sweep.csv",
                {"config", "topology", "collective", "algo", "time_ns"});
  for (std::size_t i = 0; i < scs.size(); ++i) {
    const auto& sc = scs[i];
    t.add_row({sc.label, sc.topology, sc.collective, sc.algo,
               AsciiTable::fmt(ns_to_us(times[i]), 1)});
    csv.row(sc.label, sc.topology, sc.collective, sc.algo, times[i]);
  }
  std::cout << "Topology sweep — one collective stack, pluggable fabrics\n";
  t.print(std::cout);

  // Headline: the hierarchy-aware win on the multi-node machine.
  TimeNs flat_ring = 0, hier = 0;
  for (std::size_t i = 0; i < scs.size(); ++i) {
    if (scs[i].label != "allreduce_2x4") continue;
    if (scs[i].algo == "flat_ring") flat_ring = times[i];
    if (scs[i].algo == "hierarchical" && scs[i].topology == "fully_connected")
      hier = times[i];
  }
  if (flat_ring > 0 && hier > 0) {
    std::cout << "hierarchical AllReduce vs flat ring (2 nodes x 4 GPUs): "
              << AsciiTable::fmt(static_cast<double>(flat_ring) /
                                     static_cast<double>(hier),
                                 2)
              << "x faster\n";
  }
  return 0;
}

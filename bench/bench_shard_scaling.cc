// Sharded-engine scaling bench: wall-clock for the same torus workload at
// 1/2/4/8 engine shards, across machine sizes from 64 to 4096 PEs.
//
// Simulated results are identical at every shard count (asserted here per
// size against the serial run — the same invariant test_sim_sharded.cc pins
// with goldens); what changes is the host wall-clock. Two speedups are
// reported per point, both recorded in bench_results/host_perf.json:
//
//   * measured    — serial wall / sharded wall on THIS host. Only
//                   meaningful when the host has >= `shards` cores;
//                   a CI container pinned to one core times-shares the
//                   worker team and measures ~1x by construction.
//   * attainable  — serial wall / (barrier + critical-path window time),
//                   from the engine's own wall breakdown (RunStats): the
//                   serial inter-window barrier plus each window's slowest
//                   shard. This is the wall-clock the same run reaches
//                   with one core per shard, measured — not modeled — from
//                   per-shard timings, and is what the measured column
//                   converges to on an unconstrained host.
//
// Per-point rows go to bench_results/shard_scaling.csv; per-size summaries
// (speedup_4_shards, attainable_speedup_4_shards, host_cores) to
// host_perf.json.
//
// Environment knobs (CI runs a reduced sweep):
//   FCC_SHARD_BENCH_MAX_PES  cap on machine size (default 4096)
//   FCC_SHARD_BENCH_ROUNDS   workload rounds (default 12)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "gpu/machine.h"
#include "scaleout/shard_workload.h"

namespace {

using namespace fcc;

constexpr int kGpusPerNode = 4;

struct GridSize {
  int dim_x;
  int dim_y;
  int pes() const { return dim_x * dim_y * kGpusPerNode; }
};

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

gpu::Machine::Config machine_config(const GridSize& g, int shards) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = g.dim_x * g.dim_y;
  cfg.gpus_per_node = kGpusPerNode;
  cfg.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  cfg.topology.torus.dim_x = g.dim_x;
  cfg.topology.torus.dim_y = g.dim_y;
  cfg.num_shards = shards;
  return cfg;
}

struct PointResult {
  double wall_s = 0;
  scaleout::ShardTrace trace;
  sim::ShardedEngine::RunStats stats;
};

PointResult run_point(const GridSize& g, int shards,
                      const scaleout::ShardWorkloadConfig& w) {
  gpu::Machine machine(machine_config(g, shards));
  PointResult r;
  // One worker per shard when the host has the cores; otherwise run the
  // windowed protocol single-threaded so the per-shard wall breakdown
  // (barrier vs critical path) is measured without timesharing noise.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads =
      std::min(static_cast<unsigned>(shards), cores);
  const auto t0 = std::chrono::steady_clock::now();
  r.trace = scaleout::run_shard_workload(machine, w, threads, &r.stats);
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

/// Wall-clock this run reaches with one core per shard: everything outside
/// the windows (barrier + protocol) plus each window's slowest shard,
/// instead of the sum of all shards' window time.
double attainable_wall_s(const PointResult& r) {
  const double window_s = static_cast<double>(r.stats.window_wall_ns) * 1e-9;
  const double critical_s =
      static_cast<double>(r.stats.critical_wall_ns) * 1e-9;
  const double outside_s = r.wall_s > window_s ? r.wall_s - window_s : 0;
  return outside_s + critical_s;
}

}  // namespace

int main() {
  const int max_pes = env_int("FCC_SHARD_BENCH_MAX_PES", 4096);

  scaleout::ShardWorkloadConfig w;
  w.rounds = env_int("FCC_SHARD_BENCH_ROUNDS", 12);
  w.lanes_per_pe = 4;
  w.compute_ns = 2000;
  w.intra_bytes = 32768;
  w.inter_bytes = 8192;

  const std::vector<GridSize> sizes = {
      {4, 4},    // 64 PEs
      {8, 8},    // 256 PEs
      {16, 16},  // 1024 PEs
      {32, 32},  // 4096 PEs
  };
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  AsciiTable table(
      {"pes", "shards", "wall (ms)", "speedup", "attainable", "barrier (ms)",
       "events", "windows", "messages", "Mev/s"});
  CsvWriter csv(fccbench::out_dir() + "/shard_scaling.csv",
                {"pes", "shards", "wall_ms", "speedup", "attainable_speedup",
                 "barrier_ms", "critical_ms", "events", "windows", "messages",
                 "events_per_second", "sim_final_ns"});
  PerfJson perf;
  const std::string perf_path = fccbench::out_dir() + "/host_perf.json";
  perf.load(perf_path);
  const unsigned host_cores =
      std::max(1u, std::thread::hardware_concurrency());

  for (const GridSize& g : sizes) {
    if (g.pes() > max_pes) {
      std::cout << "skipping " << g.pes() << " PEs (FCC_SHARD_BENCH_MAX_PES="
                << max_pes << ")\n";
      continue;
    }
    const std::string section =
        "bench_shard_scaling/pes" + std::to_string(g.pes());
    double serial_wall = 0;
    scaleout::ShardTrace serial_trace;
    for (const int shards : shard_counts) {
      const PointResult r = run_point(g, shards, w);
      if (shards == 1) {
        serial_wall = r.wall_s;
        serial_trace = r.trace;
        perf.set(section, "events", static_cast<double>(r.stats.events));
      } else {
        // Sharding must be invisible in simulated results.
        FCC_CHECK_MSG(r.trace == serial_trace,
                      "sharded trace diverged from serial at "
                          << g.pes() << " PEs, " << shards << " shards");
      }
      const double speedup = r.wall_s > 0 ? serial_wall / r.wall_s : 0;
      const double att_wall = attainable_wall_s(r);
      const double attainable =
          shards == 1 ? 1.0 : (att_wall > 0 ? serial_wall / att_wall : 0);
      const double evps =
          r.wall_s > 0 ? static_cast<double>(r.stats.events) / r.wall_s : 0;
      const double barrier_ms =
          static_cast<double>(r.stats.barrier_wall_ns) * 1e-6;
      const double critical_ms =
          static_cast<double>(r.stats.critical_wall_ns) * 1e-6;
      table.add_row({std::to_string(g.pes()), std::to_string(shards),
                     AsciiTable::fmt(r.wall_s * 1e3, 1),
                     AsciiTable::fmt(speedup, 2),
                     AsciiTable::fmt(attainable, 2),
                     AsciiTable::fmt(barrier_ms, 1),
                     std::to_string(r.stats.events),
                     std::to_string(r.stats.windows),
                     std::to_string(r.stats.messages),
                     AsciiTable::fmt(evps / 1e6, 2)});
      csv.row(g.pes(), shards, r.wall_s * 1e3, speedup, attainable,
              barrier_ms, critical_ms, r.stats.events, r.stats.windows,
              r.stats.messages, evps, r.trace.final_time());
      perf.set(section,
               "wall_seconds_shards" + std::to_string(shards), r.wall_s);
      if (shards > 1) {
        perf.set(section, "speedup_" + std::to_string(shards) + "_shards",
                 speedup);
        perf.set(section,
                 "attainable_speedup_" + std::to_string(shards) + "_shards",
                 attainable);
      }
    }
    perf.set(section, "host_cores", host_cores);
  }

  std::cout << "Sharded engine scaling (torus, " << kGpusPerNode
            << " GPUs/node, rounds=" << w.rounds << ", host cores: "
            << host_cores << ")\n";
  table.print(std::cout);
  if (host_cores < 4) {
    std::cout << "note: host has " << host_cores
              << " core(s); the measured column timeshares the worker team. "
                 "'attainable' is the same run's wall-clock floor with one "
                 "core per shard (barrier + per-window critical path), "
                 "measured from the engine's wall breakdown.\n";
  }
  perf.save(perf_path);
  std::cout << "wrote " << fccbench::out_dir() << "/shard_scaling.csv and "
            << perf_path << "\n";
  return 0;
}

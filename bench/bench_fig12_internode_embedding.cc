// Fig. 12: inter-node (2 nodes over IB) fused embedding + All-to-All vs
// the bulk-synchronous baseline, across {batch | tables/GPU} configs.
//
// Paper result: 31% mean reduction, up to 58%; small batches beat the
// full-overlap bound because the baseline's per-table kernels underutilize
// the GPU while the fused persistent kernel multiplexes all tables.
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"

namespace {

using namespace fcc;

fused::EmbeddingA2AConfig config(int batch, int tables) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;  // paper: slice of 32 embeddings
  cfg.pooling = 100;  // production-DLRM-class pooling factor
  cfg.functional = false;
  return cfg;
}

TimeNs run(const fused::EmbeddingA2AConfig& cfg, bool fused_path) {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;
  gpu::Machine m(mc);
  shmem::World w(m);
  if (fused_path) {
    return fused::FusedEmbeddingAllToAll(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  }
  return fused::BaselineEmbeddingAllToAll(w, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  const int sweep[][2] = {{256, 64},   {256, 128},  {512, 128},
                          {1024, 128}, {1024, 256}, {2048, 256}};
  std::vector<fccbench::NormRow> rows;
  for (const auto& [batch, tables] : sweep) {
    const auto cfg = config(batch, tables);
    fccbench::NormRow r;
    r.label = std::to_string(batch) + "|" + std::to_string(tables);
    r.baseline = run(cfg, false);
    r.fused = run(cfg, true);
    rows.push_back(r);
  }
  fccbench::print_normalized(
      "Fig. 12 — inter-node fused embedding+All-to-All (2 nodes over IB)\n"
      "paper: mean -31%, max -58%, super-overlap wins at small batch",
      rows, "fig12_internode_embedding.csv");
  return 0;
}

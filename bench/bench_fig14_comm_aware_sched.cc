// Fig. 14: impact of communication-aware WG scheduling on per-node
// execution time (2 nodes, fused embedding + All-to-All).
//
// Paper result: communication-oblivious scheduling leaves ~7% execution
// skew between the nodes (node 1 waits on node 0's late remote slices);
// communication-aware scheduling cuts the skew to ~1%.
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

fused::OperatorResult run(gpu::SchedulePolicy policy) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = 128;
  cfg.map.global_batch = 1024;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 70;  // Table II average pooling factor
  cfg.functional = false;
  cfg.policy = policy;

  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;
  gpu::Machine machine(mc);
  shmem::World world(machine);
  return fused::FusedEmbeddingAllToAll(world, cfg, nullptr)
      .run_to_completion();
}

}  // namespace

int main() {
  const auto results = fccbench::run_sweep<fused::OperatorResult>(
      "bench_fig14_comm_aware_sched", 2, [](int i) {
        return run(i == 0 ? gpu::SchedulePolicy::kCommAware
                          : gpu::SchedulePolicy::kOblivious);
      });
  const auto& aware = results[0];
  const auto& oblivious = results[1];

  AsciiTable t({"scheduling", "node0 (us)", "node1 (us)", "skew %",
                "total (us)"});
  CsvWriter csv(fccbench::out_dir() + "/fig14_comm_aware_sched.csv",
                {"policy", "node0_ns", "node1_ns", "skew", "total_ns"});
  for (const auto* pair :
       {&oblivious, &aware}) {
    const bool is_aware = (pair == &aware);
    const auto& r = *pair;
    t.add_row({is_aware ? "comm-aware" : "oblivious",
               AsciiTable::fmt(ns_to_us(r.pe_end[0] - r.start), 1),
               AsciiTable::fmt(ns_to_us(r.pe_end[1] - r.start), 1),
               AsciiTable::fmt(100.0 * r.skew(), 2),
               AsciiTable::fmt(ns_to_us(r.duration()), 1)});
    csv.row(is_aware ? "comm-aware" : "oblivious", r.pe_end[0] - r.start,
            r.pe_end[1] - r.start, r.skew(), r.duration());
  }
  std::cout << "Fig. 14 — communication-aware WG scheduling "
               "(2 nodes, batch 1024, 128 tables/GPU)\n";
  t.print(std::cout);
  std::cout << "paper: oblivious ~7% skew, comm-aware ~1% skew\n";
  return 0;
}

// Fig. 10: fused GEMM + All-to-All (MoE combine, DSL-authored) vs the
// bulk-synchronous baseline across common MoE layer shapes.
//
// Paper result: 12% mean reduction, up to 20%; the generic Triton GEMM
// dominates and bounds the benefit.
#include "bench_common.h"
#include "fused/gemm_a2a.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

TimeNs run(int rows_per_origin, int d_model, int d_ff, bool fused_path) {
  fused::GemmA2AConfig cfg;
  cfg.rows_per_origin = rows_per_origin;
  cfg.d_model = d_model;
  cfg.d_ff = d_ff;
  cfg.functional = false;
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine machine(mc);
  shmem::World w(machine);
  if (fused_path) {
    return fused::FusedGemmAllToAll(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  }
  return fused::BaselineGemmAllToAll(w, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  // {tokens per origin, d_model, d_ff}: expert second-FFN GEMM shapes.
  const int sweep[][3] = {{1024, 1024, 1024},
                          {1024, 2048, 1024},
                          {2048, 1024, 2048},
                          {2048, 2048, 1024},
                          {4096, 2048, 2048}};
  const auto rows = fccbench::run_sweep<fccbench::NormRow>(
      "bench_fig10_gemm_alltoall", 5, [&](int i) {
        const auto& [r_, dm, dff] = sweep[i];
        fccbench::NormRow row;
        row.label = "T=" + std::to_string(r_) + " dM=" + std::to_string(dm) +
                    " dF=" + std::to_string(dff);
        row.baseline = run(r_, dm, dff, false);
        row.fused = run(r_, dm, dff, true);
        return row;
      });
  fccbench::print_normalized(
      "Fig. 10 — fused GEMM+All-to-All (MoE combine, 4 experts, Triton-DSL)\n"
      "paper: mean -12%, max -20% (GEMM-dominated)",
      rows, "fig10_gemm_alltoall.csv");
  return 0;
}

// Fig. 8: intra-node (4-GPU) fused embedding + All-to-All vs the
// bulk-synchronous baseline, normalized execution time across
// {global batch | tables per GPU} configurations.
//
// Paper result: 20% mean reduction, up to 32%; smaller wins at batch 512
// (small All-to-All), larger wins at big batches (zero-copy + overlap).
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"

namespace {

using namespace fcc;

fused::EmbeddingA2AConfig config(int batch, int tables) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 4;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch;
  cfg.map.dim = 256;  // paper Sec. IV-A: embedding dim 256
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 100;  // production-DLRM-class pooling factor
  cfg.functional = false;
  return cfg;
}

TimeNs run(const fused::EmbeddingA2AConfig& cfg, bool fused_path) {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine m(mc);
  shmem::World w(m);
  if (fused_path) {
    return fused::FusedEmbeddingAllToAll(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  }
  return fused::BaselineEmbeddingAllToAll(w, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  const int sweep[][2] = {{512, 64},  {512, 128},  {1024, 128},
                          {1024, 256}, {2048, 128}, {2048, 256}};
  std::vector<fccbench::NormRow> rows;
  for (const auto& [batch, tables] : sweep) {
    const auto cfg = config(batch, tables);
    fccbench::NormRow r;
    r.label = std::to_string(batch) + "|" + std::to_string(tables);
    r.baseline = run(cfg, false);
    r.fused = run(cfg, true);
    rows.push_back(r);
  }
  fccbench::print_normalized(
      "Fig. 8 — intra-node fused embedding+All-to-All (4 GPUs, dim 256)\n"
      "paper: mean -20%, max -32%",
      rows, "fig08_intranode_embedding.csv");
  return 0;
}

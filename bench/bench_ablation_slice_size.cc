// Ablation: communication granularity (slice size) vs per-message overhead.
//
// Sec. III-C: communication is triggered once per slice, so tiny slices
// maximize overlap opportunity but multiply API/posting overheads and NIC
// message-rate pressure, while huge slices degenerate toward kernel-
// boundary bursts. The sweep exposes the sweet spot.
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"

int main() {
  using namespace fcc;

  AsciiTable t({"vectors/slice", "slices/node", "PUTs issued", "exec (us)",
                "vs best"});
  CsvWriter csv(fccbench::out_dir() + "/ablation_slice_size.csv",
                {"vectors_per_slice", "exec_ns", "puts"});

  struct Point {
    int vps;
    TimeNs dur;
    std::int64_t puts;
    int slices;
  };
  std::vector<Point> points;
  for (int vps : {1, 4, 8, 16, 32, 64, 256, 512}) {
    fused::EmbeddingA2AConfig cfg;
    cfg.map.num_pes = 2;
    cfg.map.tables_per_pe = 64;
    cfg.map.global_batch = 1024;
    cfg.map.dim = 256;
    cfg.map.vectors_per_slice = vps;
    cfg.pooling = 64;
    cfg.functional = false;

    gpu::Machine::Config mc;
    mc.num_nodes = 2;
    mc.gpus_per_node = 1;
    gpu::Machine machine(mc);
    shmem::World world(machine);
    fused::FusedEmbeddingAllToAll op(world, cfg, nullptr);
    const auto res = op.run_to_completion();
    points.push_back(
        {vps, res.duration(), world.puts_issued(), cfg.map.num_slices()});
  }
  TimeNs best = points.front().dur;
  for (const auto& p : points) best = std::min(best, p.dur);
  for (const auto& p : points) {
    t.add_row({std::to_string(p.vps), std::to_string(p.slices),
               std::to_string(p.puts), AsciiTable::fmt(ns_to_us(p.dur), 1),
               AsciiTable::fmt(static_cast<double>(p.dur) / best, 3)});
    csv.row(p.vps, p.dur, p.puts);
  }
  std::cout << "Ablation — slice size, inter-node fused embedding+A2A "
               "(batch 1024, 64 tables/GPU)\n";
  t.print(std::cout);
  return 0;
}

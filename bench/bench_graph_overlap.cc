// Inter-op overlap from graph scheduling (the Program/Graph API payoff).
//
// A DLRM-style inference pipeline: request b needs its embedding exchange
// (expressed as the *unfused* `aten::embedding_bag` + `c10d::all_to_all`
// pattern — the fused-rewrite pass collapses each pair into
// `fcc::embedding_a2a`) followed by a row-parallel MLP
// (`fcc::gemv_allreduce`). Each stage processes one request at a time
// (explicit stage-serialization edges), so request b+1's embedding
// dispatch runs concurrently with request b's MLP — the cross-op overlap
// a blocking Session::run chain can never express. The bench compares the
// graph-scheduled pipeline against that sequential chain end-to-end and
// reports the achieved overlap fraction per pipeline depth.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/perf_json.h"
#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"

namespace {

using namespace fcc;

constexpr int kPes = 4;

gpu::Machine::Config machine_config() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = kPes;
  return mc;
}

fused::EmbeddingA2AConfig emb_config() {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = kPes;
  cfg.map.tables_per_pe = 16;
  cfg.map.global_batch = 256;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.pooling = 32;
  cfg.functional = false;
  return cfg;
}

fused::GemvAllReduceConfig mlp_config() {
  fused::GemvAllReduceConfig cfg;
  cfg.m = 4096;
  cfg.k_global = 8192;
  cfg.functional = false;
  return cfg;
}

/// Blocking Session::run chain: emb, mlp, emb, mlp, ... end-to-end.
TimeNs run_sequential(int depth) {
  fw::Session session(machine_config());
  TimeNs start = -1, end = 0;
  for (int b = 0; b < depth; ++b) {
    const auto emb = session.run(
        fw::make_spec("fcc::embedding_a2a", emb_config()), fw::Backend::kFused);
    if (start < 0) start = emb.start;
    const auto mlp = session.run(
        fw::make_spec("fcc::gemv_allreduce", mlp_config()),
        fw::Backend::kFused);
    end = mlp.end;
  }
  return end - start;
}

struct GraphRun {
  TimeNs makespan = 0;
  double overlap = 0.0;
  TimeNs critical_path = 0;
  int rewrites = 0;
};

/// The same per-request ops as one Graph, embedding stage written as the
/// unfused pattern (rewritten to fcc::embedding_a2a by Session::run).
GraphRun run_graph(int depth) {
  fw::Graph g;
  fw::NodeId prev_a2a, prev_mlp;
  for (int b = 0; b < depth; ++b) {
    const std::string tag = std::to_string(b);
    auto pooled = g.tensor("pooled" + tag);
    auto exchanged = g.tensor("exchanged" + tag);
    auto out = g.tensor("out" + tag);
    g.add("aten::embedding_bag", emb_config(), {}, {pooled}, "emb" + tag);
    auto a2a = g.add("c10d::all_to_all", {pooled}, {exchanged}, "a2a" + tag);
    auto mlp = g.add("fcc::gemv_allreduce", mlp_config(), {exchanged}, {out},
                     "mlp" + tag);
    // Stage serialization: one request in flight per stage.
    if (b > 0) {
      g.add_dep(a2a, prev_a2a);
      g.add_dep(mlp, prev_mlp);
    }
    prev_a2a = a2a;
    prev_mlp = mlp;
  }

  fw::Session session(machine_config());
  const fw::GraphResult res = session.run(g, fw::Backend::kFused);
  GraphRun r;
  r.makespan = res.makespan();
  r.overlap = res.overlap_fraction();
  r.critical_path = res.critical_path_ns;
  r.rewrites = res.rewrites;
  return r;
}

}  // namespace

int main() {
  const std::vector<int> depths = {1, 2, 4, 8};

  AsciiTable t({"pipeline depth", "sequential (us)", "graph (us)",
                "overlap frac", "speedup", "rewrites"});
  CsvWriter csv(fccbench::out_dir() + "/graph_overlap.csv",
                {"depth", "sequential_ns", "graph_ns", "overlap_fraction",
                 "speedup", "rewrites"});
  const auto wall0 = std::chrono::steady_clock::now();
  double deepest_overlap = 0.0, deepest_speedup = 0.0;
  TimeNs deepest_seq = 0, deepest_graph = 0;
  for (int depth : depths) {
    const TimeNs seq = run_sequential(depth);
    const GraphRun gr = run_graph(depth);
    const double speedup =
        static_cast<double>(seq) / static_cast<double>(gr.makespan);
    t.add_row({std::to_string(depth), AsciiTable::fmt(ns_to_us(seq), 1),
               AsciiTable::fmt(ns_to_us(gr.makespan), 1),
               AsciiTable::fmt(gr.overlap, 3), AsciiTable::fmt(speedup, 3),
               std::to_string(gr.rewrites)});
    csv.row(depth, seq, gr.makespan, gr.overlap, speedup, gr.rewrites);
    if (depth == depths.back()) {
      deepest_overlap = gr.overlap;
      deepest_speedup = speedup;
      deepest_seq = seq;
      deepest_graph = gr.makespan;
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();

  std::printf("Graph-scheduled DLRM pipeline vs sequential Session::run "
              "chain (4 GPUs,\nembedding stage authored as unfused "
              "pattern nodes, rewritten to fcc::embedding_a2a):\n");
  t.print(std::cout);
  std::printf("depth-%d pipeline: %.3fx end-to-end, overlap fraction %.3f\n",
              depths.back(), deepest_speedup, deepest_overlap);

  // Machine-readable record for the perf trajectory (host_perf.json).
  PerfJson perf;
  const std::string path = fccbench::out_dir() + "/host_perf.json";
  perf.load(path);
  perf.set("bench_graph_overlap", "depth", depths.back());
  perf.set("bench_graph_overlap", "sequential_ns",
           static_cast<double>(deepest_seq));
  perf.set("bench_graph_overlap", "graph_ns",
           static_cast<double>(deepest_graph));
  perf.set("bench_graph_overlap", "overlap_fraction", deepest_overlap);
  perf.set("bench_graph_overlap", "speedup", deepest_speedup);
  perf.set("bench_graph_overlap", "wall_seconds", wall);
  perf.save(path);
  return deepest_overlap > 0.0 ? 0 : 1;
}

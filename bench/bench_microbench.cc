// google-benchmark microbenchmarks of the simulator itself.
//
// The figure benches report *simulated* nanoseconds (deterministic); this
// binary measures the wall-clock cost of producing them — event-queue
// throughput, link arithmetic, and end-to-end operator simulation rate —
// which is what bounds how large a sweep the harness can afford.
#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>

#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"
#include "gpu/machine.h"
#include "hw/link.h"
#include "parallel/thread_pool.h"
#include "scaleout/shard_workload.h"
#include "shmem/world.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace {

using namespace fcc;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    long sink = 0;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(i, [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 12)->Arg(1 << 16);

sim::Task delay_chain(sim::Engine& e, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim::delay(e, 1);
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    delay_chain(e, hops);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(1 << 12);

void BM_LinkSubmit(benchmark::State& state) {
  hw::Link link("l", 80.0, 700);
  TimeNs t = 0;
  for (auto _ : state) {
    t = link.submit(t, 4096);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkSubmit);

void BM_FusedEmbeddingSim(benchmark::State& state) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = static_cast<int>(state.range(0));
  cfg.map.global_batch = 512;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 64;
  cfg.functional = false;
  for (auto _ : state) {
    gpu::Machine::Config mc;
    mc.num_nodes = 2;
    mc.gpus_per_node = 1;
    gpu::Machine m(mc);
    shmem::World w(m);
    auto r = fused::FusedEmbeddingAllToAll(w, cfg, nullptr)
                 .run_to_completion();
    benchmark::DoNotOptimize(r.end);
  }
  // Logical WGs simulated per wall second.
  state.SetItemsProcessed(state.iterations() * cfg.map.num_logical_wgs() *
                          cfg.map.num_pes);
}
BENCHMARK(BM_FusedEmbeddingSim)->Arg(16)->Arg(64);

void BM_FusedGemvSim(benchmark::State& state) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = static_cast<int>(state.range(0));
  cfg.k_global = 8192;
  cfg.functional = false;
  for (auto _ : state) {
    gpu::Machine::Config mc;
    mc.num_nodes = 1;
    mc.gpus_per_node = 4;
    gpu::Machine m(mc);
    shmem::World w(m);
    auto r =
        fused::FusedGemvAllReduce(w, cfg, nullptr).run_to_completion();
    benchmark::DoNotOptimize(r.end);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusedGemvSim)->Arg(8192)->Arg(32768);

/// Per-chunk submit(): one queued std::function and one lock round-trip
/// per chunk — the pre-batch parallel_for cost model.
void BM_ThreadPoolSubmitChunks(benchmark::State& state) {
  const int chunks = static_cast<int>(state.range(0));
  par::ThreadPool pool(2);
  for (auto _ : state) {
    std::atomic<std::int64_t> sink{0};
    for (int c = 0; c < chunks; ++c) {
      pool.submit(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * chunks);
}
BENCHMARK(BM_ThreadPoolSubmitChunks)->Arg(1 << 10)->Arg(1 << 13);

/// run_batch(): the same chunk count as ONE published descriptor claimed
/// via atomic fetch_add — what parallel_for rides now. The items/s gap
/// against BM_ThreadPoolSubmitChunks is the per-chunk allocation + lock
/// round-trip eliminated by the batch path.
void BM_ThreadPoolRunBatch(benchmark::State& state) {
  const int chunks = static_cast<int>(state.range(0));
  par::ThreadPool pool(2);
  std::atomic<std::int64_t> sink{0};
  const std::function<void(std::int64_t)> body = [&sink](std::int64_t) {
    sink.fetch_add(1, std::memory_order_relaxed);
  };
  for (auto _ : state) {
    pool.run_batch(0, chunks, body, /*grain=*/1);
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * chunks);
}
BENCHMARK(BM_ThreadPoolRunBatch)->Arg(1 << 10)->Arg(1 << 13);

/// End-to-end sharded-engine window protocol on a small torus: wall cost
/// of windows + barriers relative to the same workload serial is tracked
/// in full by bench_shard_scaling; this pins the small-machine overhead.
void BM_ShardedTorusWorkload(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  scaleout::ShardWorkloadConfig w;
  w.rounds = 4;
  w.lanes_per_pe = 2;
  for (auto _ : state) {
    gpu::Machine::Config mc;
    mc.num_nodes = 16;
    mc.gpus_per_node = 2;
    mc.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    mc.topology.torus.dim_x = 4;
    mc.topology.torus.dim_y = 4;
    mc.num_shards = shards;
    gpu::Machine m(mc);
    const auto tr = scaleout::run_shard_workload(
        m, w, /*num_threads=*/1);
    benchmark::DoNotOptimize(tr.puts);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ShardedTorusWorkload)->Arg(1)->Arg(4);

/// Console reporter that also captures every run's throughput into
/// bench_results/host_perf.json (merged with the sweep benches' records),
/// giving the repo a machine-readable engine-speed trajectory across PRs.
class PerfJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const std::string section = "bench_microbench/" + run.benchmark_name();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        perf_.set(section, "items_per_second", items->second);
      }
      if (run.iterations > 0) {
        perf_.set(section, "wall_ns_per_iteration",
                  run.real_accumulated_time * 1e9 /
                      static_cast<double>(run.iterations));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    const std::string path = fccbench::out_dir() + "/host_perf.json";
    fcc::PerfJson merged;
    merged.load(path);  // keep other benches' sections; absent file is fine
    merged.merge_from(perf_);
    merged.save(path);
    ConsoleReporter::Finalize();
  }

 private:
  fcc::PerfJson perf_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PerfJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

// Ablation: zero-copy remote stores vs staged slice copies (scale-up).
//
// Sec. III-B: the zero-copy fused kernel writes results directly into peer
// GPU memory; disabling it restores the staging write + slice-granular copy
// that the baseline's blit kernels also pay. The delta is the zero-copy
// contribution to Fig. 8's wins.
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"

namespace {

using namespace fcc;

TimeNs run(int batch, int tables, bool zero_copy) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 4;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 64;
  cfg.functional = false;
  cfg.zero_copy = zero_copy;

  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine machine(mc);
  shmem::World world(machine);
  return fused::FusedEmbeddingAllToAll(world, cfg, nullptr)
      .run_to_completion()
      .duration();
}

}  // namespace

int main() {
  AsciiTable t({"config", "staged (us)", "zero-copy (us)", "zero-copy gain %"});
  CsvWriter csv(fccbench::out_dir() + "/ablation_zero_copy.csv",
                {"config", "staged_ns", "zero_copy_ns"});
  const int sweep[][2] = {{512, 64}, {1024, 128}, {2048, 256}};
  for (const auto& [batch, tables] : sweep) {
    const TimeNs staged = run(batch, tables, false);
    const TimeNs zc = run(batch, tables, true);
    const std::string label =
        std::to_string(batch) + "|" + std::to_string(tables);
    t.add_row({label, AsciiTable::fmt(ns_to_us(staged), 1),
               AsciiTable::fmt(ns_to_us(zc), 1),
               AsciiTable::fmt(100.0 * (1.0 - double(zc) / staged), 1)});
    csv.row(label, staged, zc);
  }
  std::cout << "Ablation — zero-copy vs staged stores, intra-node fused "
               "embedding+A2A (4 GPUs)\n";
  t.print(std::cout);
  return 0;
}

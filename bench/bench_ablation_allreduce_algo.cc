// Ablation: AllReduce algorithm on fully connected GPUs.
//
// Sec. III-B picks the two-phase direct algorithm [32] for the fused
// GEMV+AllReduce because it has the fewest steps on a fully connected
// topology. This sweep compares direct vs ring in the ccl baseline across
// message sizes, and shows the end-to-end effect on the baseline operator.
#include "bench_common.h"
#include "ccl/communicator.h"
#include "fused/gemv_allreduce.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace {

using namespace fcc;

sim::Task time_collective(sim::Engine&, ccl::Communicator& comm,
                          std::int64_t n, ccl::AllReduceAlgo algo,
                          TimeNs& out) {
  co_await comm.all_reduce(n, ccl::FloatBufs{}, algo);
  out = comm.last_duration();
}

TimeNs collective_time(std::int64_t n_elems, ccl::AllReduceAlgo algo) {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine machine(mc);
  std::vector<PeId> pes{0, 1, 2, 3};
  ccl::Communicator comm(machine, pes);
  TimeNs out = 0;
  time_collective(machine.engine(), comm, n_elems, algo, out);
  machine.engine().run();
  return out;
}

}  // namespace

int main() {
  AsciiTable t({"message", "two-phase direct (us)", "ring (us)",
                "direct/ring"});
  CsvWriter csv(fccbench::out_dir() + "/ablation_allreduce_algo.csv",
                {"elems", "direct_ns", "ring_ns"});
  for (std::int64_t n : {1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 24}) {
    const TimeNs d = collective_time(n, ccl::AllReduceAlgo::kTwoPhaseDirect);
    const TimeNs r = collective_time(n, ccl::AllReduceAlgo::kRing);
    t.add_row({std::to_string(n * 4 / 1024) + " KB",
               AsciiTable::fmt(ns_to_us(d), 1), AsciiTable::fmt(ns_to_us(r), 1),
               AsciiTable::fmt(static_cast<double>(d) / r, 3)});
    csv.row(n, d, r);
  }
  std::cout << "Ablation — AllReduce algorithm (4 fully connected GPUs)\n";
  t.print(std::cout);

  // End-to-end: baseline GEMV+AllReduce with each algorithm.
  auto baseline_with = [&](ccl::AllReduceAlgo algo) {
    fused::GemvAllReduceConfig cfg;
    cfg.m = 16384;
    cfg.k_global = 8192;
    cfg.functional = false;
    gpu::Machine::Config mc;
    mc.num_nodes = 1;
    mc.gpus_per_node = 4;
    gpu::Machine machine(mc);
    shmem::World world(machine);
    return fused::BaselineGemvAllReduce(world, cfg, nullptr, algo)
        .run_to_completion()
        .duration();
  };
  const TimeNs e2e_direct = baseline_with(ccl::AllReduceAlgo::kTwoPhaseDirect);
  const TimeNs e2e_ring = baseline_with(ccl::AllReduceAlgo::kRing);
  std::cout << "baseline GEMV+AllReduce (M=16k): direct "
            << AsciiTable::fmt(ns_to_us(e2e_direct), 1) << " us vs ring "
            << AsciiTable::fmt(ns_to_us(e2e_ring), 1) << " us\n";
  return 0;
}

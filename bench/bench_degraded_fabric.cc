// Graceful-degradation sweep: p99 serving latency vs fault severity.
//
// For each fabric (fully-connected 2x4, switched 2x4 with a shared trunk,
// dual-rail 2x4, 2D torus 4x2) the bench calibrates healthy capacity the
// same way bench_serve_load does, fixes an offered load of 0.5x capacity,
// and replays one Poisson trace under a cumulative fault-severity ladder
// scheduled as ordinary engine events (hw::schedule_fault_plan):
//
//   severity 0  healthy fabric
//   severity 1  an inter-node surface derated (browned-out trunk/wire)
//   severity 2  + deeper derate, a second surface derated, jitter
//   severity 3  + a dead redundant component where the fabric has one
//               (multi-rail: a rail dies and traffic fails over; torus: a
//               ring link dies and routes detour) or a crush derate where
//               it does not (fc / switched). Kills always target a link
//               that was never derated, so higher severity never *removes*
//               an earlier impairment.
//
// Timeouts/retries are on so stalled batches are re-executed rather than
// poisoning the tail silently; p99 is computed over every request that ran
// (completed + timed out). The bench exits nonzero unless p99 is monotone
// non-decreasing in severity (0.5% slack) for every fabric and every point
// ran crash-free. A final per-fabric showcase row re-runs severity 3 with
// the fault onset mid-trace and brownout shedding enabled — the server
// calibrates healthy, the fabric collapses, admission sheds — reported but
// never gated (shed load lowers the tail by design).
//
// Output: bench_results/degraded_fabric.csv, p99-vs-severity table on
// stdout, and per-fabric p99_degradation_x into host_perf.json.
//
// Env knobs (CI smoke uses tiny values):
//   FCC_DEGRADED_REQS  requests per point (default 240)
#include <algorithm>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"
#include "hw/fault.h"
#include "hw/topology.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

constexpr int kSeverities = 4;  // gated ladder 0..3; +1 showcase row

struct EventSpec {
  std::string site;
  hw::FaultKind kind = hw::FaultKind::kDerate;
  double derate = 1.0;
  TimeNs jitter_ns = 0;
};

struct Fabric {
  std::string name;
  gpu::Machine::Config machine;
  /// steps[s] = impairments *added* at severity s+1 (the ladder is
  /// cumulative: severity 3 applies steps[0] + steps[1] + steps[2]).
  std::vector<std::vector<EventSpec>> steps;
};

std::vector<Fabric> fabrics() {
  using K = hw::FaultKind;
  std::vector<Fabric> out;
  {
    Fabric f;
    f.name = "fully_connected_2x4";
    f.machine.num_nodes = 2;
    f.machine.gpus_per_node = 4;
    f.steps = {
        {{"node0.wire", K::kDerate, 0.6}},
        {{"node0.wire", K::kDerate, 0.3},
         {"node0.wire", K::kJitter, 1.0, 800},
         {"node1.wire", K::kDerate, 0.5}},
        // No redundancy to kill: the brownout deepens into a crush.
        {{"node0.wire", K::kDerate, 0.1}, {"node1.wire", K::kDerate, 0.25}},
    };
    out.push_back(f);
  }
  {
    Fabric f;
    f.name = "switched_2x4";
    f.machine.num_nodes = 2;
    f.machine.gpus_per_node = 4;
    f.machine.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
    f.machine.topology.switched.trunk_bytes_per_ns = 300.0;
    f.steps = {
        // Degraded trunk + scale-out wire together: intra-node crossbar
        // traffic and inter-node NIC traffic both feel severity 1.
        {{"node0.trunk", K::kDerate, 0.6}, {"node0.wire", K::kDerate, 0.6}},
        {{"node0.wire", K::kDerate, 0.3},
         {"node0.trunk", K::kJitter, 1.0, 800},
         {"node1.wire", K::kDerate, 0.5}},
        {{"node0.wire", K::kDerate, 0.1},
         {"node0.trunk", K::kDerate, 0.2},
         {"node1.wire", K::kDerate, 0.25}},
    };
    out.push_back(f);
  }
  {
    Fabric f;
    f.name = "multi_rail_2x4";
    f.machine.num_nodes = 2;
    f.machine.gpus_per_node = 4;
    f.machine.topology.kind = hw::TopologySpec::Kind::kMultiRail;
    f.machine.topology.nic_rails = 2;
    f.steps = {
        // Derates live on node1's rails; the severity-3 kill takes node0's
        // rail0, so failover lands on a *derated* survivor and no earlier
        // impairment is routed around.
        {{"node1.rail0.wire", K::kDerate, 0.5}},
        {{"node1.rail0.wire", K::kDerate, 0.2},
         {"node1.rail0.wire", K::kJitter, 1.0, 1500},
         {"node1.rail1.wire", K::kDerate, 0.35},
         {"node1.rail1.wire", K::kJitter, 1.0, 800}},
        {{"node0.rail0", K::kDead}, {"node0.rail1.wire", K::kDerate, 0.4}},
    };
    out.push_back(f);
  }
  {
    Fabric f;
    f.name = "torus2d_4x2";
    f.machine.num_nodes = 8;
    f.machine.gpus_per_node = 1;
    f.machine.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    f.machine.topology.torus.dim_x = 4;
    f.machine.topology.torus.dim_y = 2;
    // Narrow links (64 Gb/s) so the fabric is a first-order cost and the
    // ladder moves the tail; all-pairs traffic dilutes any one link to
    // ~1/8 of the load, hence whole-row brownouts per step.
    f.machine.topology.torus.link_bytes_per_ns = 8.0;
    f.steps = {
        // Same principle: the dead link (node0.+x) is not one of the
        // derated ones, so detours stack on top of the brownouts.
        {{"node1.+x", K::kDerate, 0.4}, {"node5.+x", K::kDerate, 0.4}},
        {{"node1.+x", K::kDerate, 0.15},
         {"node1.+x", K::kJitter, 1.0, 1500},
         {"node5.+x", K::kDerate, 0.15},
         {"node3.+x", K::kDerate, 0.4},
         {"node7.+x", K::kDerate, 0.4}},
        {{"node0.+x", K::kDead}, {"node2.+x", K::kDerate, 0.3}},
    };
    out.push_back(f);
  }
  return out;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

/// The cumulative ladder for one fabric, every event at time `onset`.
hw::FaultPlan severity_plan(hw::Topology& topo, const Fabric& f, int severity,
                            TimeNs onset) {
  hw::FaultPlan plan;
  for (int s = 0; s < severity && s < static_cast<int>(f.steps.size());
       ++s) {
    for (const EventSpec& spec : f.steps[static_cast<std::size_t>(s)]) {
      hw::FaultEvent ev;
      ev.t = onset;
      ev.kind = spec.kind;
      ev.site = topo.fault_site_index(spec.site);
      FCC_CHECK_MSG(ev.site >= 0, "unknown fault site " << spec.site);
      ev.derate = spec.derate;
      ev.jitter_ns = spec.jitter_ns;
      plan.events.push_back(ev);
    }
  }
  return plan;
}

/// Weighted mean batch service time on the healthy machine (same
/// calibration as bench_serve_load).
double calibrate_service_ns(const gpu::Machine::Config& mc) {
  gpu::Machine machine(mc);
  shmem::World world(machine);
  const auto catalog = serve::default_catalog(machine.num_pes());
  const fw::OpRegistry& registry = fw::OpRegistry::global();
  double weight_sum = 0.0, service_sum = 0.0;
  for (const serve::ServeClass& c : catalog) {
    TimeNs chain_ns = 0;
    for (const fw::OpSpec& spec : c.chain) {
      auto op = registry.at(spec.name).make(world, spec, fw::Backend::kFused);
      op->run_to_completion();
      const auto res = op->run_to_completion();
      chain_ns += res.end - res.start;
    }
    weight_sum += c.weight;
    service_sum += c.weight * static_cast<double>(chain_ns);
  }
  return service_sum / weight_sum;
}

struct PointResult {
  bool crashed = false;
  std::string error;
  std::int64_t completed = 0, rejected = 0, timeouts = 0, retries = 0,
               shed = 0;
  TimeNs p50 = 0, p99 = 0;
};

TimeNs percentile(std::vector<TimeNs>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

PointResult run_point(const Fabric& f, int severity, bool brownout,
                      TimeNs onset, double slo_factor,
                      const std::vector<serve::Arrival>& trace) {
  PointResult r;
  try {
    gpu::Machine machine(f.machine);
    shmem::World world(machine);
    const hw::FaultPlan plan =
        severity_plan(machine.topology(), f, severity, onset);
    hw::schedule_fault_plan(machine.engine(), machine.topology(), plan, 0);
    serve::ServeConfig cfg;
    cfg.timeout.slo_factor = slo_factor;
    cfg.timeout.max_retries = 1;
    cfg.brownout.enabled = brownout;
    cfg.brownout.drift_factor = 1.5;
    serve::Simulator sim(machine, world,
                         serve::default_catalog(machine.num_pes()), cfg);
    const serve::ServeReport report = sim.run(trace);

    r.completed = report.overall.completed;
    r.rejected = report.overall.rejected;
    r.timeouts = report.overall.timeouts;
    r.retries = report.overall.retries;
    r.shed = report.overall.shed;
    // Tail over everything that actually ran: completed AND timed-out
    // requests (a timed-out batch consumed the machine just the same).
    std::vector<TimeNs> totals;
    for (const serve::RequestRecord& rec : report.records) {
      if (rec.end >= 0) totals.push_back(rec.total_ns());
    }
    r.p50 = percentile(totals, 50.0);
    r.p99 = percentile(totals, 99.0);
  } catch (const std::exception& e) {
    r.crashed = true;
    r.error = e.what();
  }
  return r;
}

}  // namespace

int main() {
  const auto fabs = fabrics();
  const int num_reqs = env_int("FCC_DEGRADED_REQS", 240);
  const int points_per_fabric = kSeverities + 1;  // + brownout showcase

  serve::ServeConfig scfg;
  std::vector<double> offered_rps(fabs.size());
  std::vector<double> slo_factor(fabs.size());
  std::vector<std::vector<serve::Arrival>> traces(fabs.size());
  for (std::size_t t = 0; t < fabs.size(); ++t) {
    const double service_ns = calibrate_service_ns(fabs[t].machine);
    offered_rps[t] = 0.5 *
                     static_cast<double>(scfg.lanes * scfg.policy.max_batch) *
                     1e9 / service_ns;
    // Deadline headroom is relative to what this machine can actually do:
    // ~6x a healthy batch (in units of the tightest class SLO), so the
    // healthy run is timeout-free and a crushed fabric still trips it.
    slo_factor[t] = 6.0 * service_ns / 200'000.0;
    const auto weights = serve::class_weights(
        serve::default_catalog(fabs[t].machine.num_nodes *
                               fabs[t].machine.gpus_per_node));
    traces[t] = serve::poisson_trace(offered_rps[t], num_reqs,
                                     /*seed=*/0xfa117 + t, weights);
  }

  const int n = static_cast<int>(fabs.size()) * points_per_fabric;
  const auto results =
      fccbench::run_sweep<PointResult>("bench_degraded_fabric", n, [&](int i) {
        const auto t = static_cast<std::size_t>(i / points_per_fabric);
        const int p = i % points_per_fabric;
        const int severity = p < kSeverities ? p : kSeverities - 1;
        const bool brownout = p >= kSeverities;
        // Gated ladder: faults precede all traffic (whole-run severity).
        // Showcase: onset 30% into the trace so brownout calibrates on the
        // healthy fabric first, then sheds when service collapses.
        const TimeNs onset = brownout ? traces[t].back().t * 3 / 10 : 0;
        return run_point(fabs[t], severity, brownout, onset, slo_factor[t],
                         traces[t]);
      });

  AsciiTable table({"fabric", "severity", "brownout", "done", "rej",
                    "timeout", "retry", "shed", "p50 (us)", "p99 (us)"});
  CsvWriter csv(fccbench::out_dir() + "/degraded_fabric.csv",
                {"fabric", "severity", "brownout", "offered_rps", "completed",
                 "rejected", "timeouts", "retries", "shed", "p50_us",
                 "p99_us"});
  bool crash_free = true;
  for (int i = 0; i < n; ++i) {
    const auto t = static_cast<std::size_t>(i / points_per_fabric);
    const int p = i % points_per_fabric;
    const int severity = p < kSeverities ? p : kSeverities - 1;
    const bool brownout = p >= kSeverities;
    const PointResult& r = results[static_cast<std::size_t>(i)];
    if (r.crashed) {
      crash_free = false;
      std::cout << fabs[t].name << " severity " << severity
                << " CRASHED: " << r.error << "\n";
      continue;
    }
    table.add_row({fabs[t].name, std::to_string(severity),
                   brownout ? "on" : "off", std::to_string(r.completed),
                   std::to_string(r.rejected), std::to_string(r.timeouts),
                   std::to_string(r.retries), std::to_string(r.shed),
                   AsciiTable::fmt(ns_to_us(r.p50), 1),
                   AsciiTable::fmt(ns_to_us(r.p99), 1)});
    csv.row(fabs[t].name, severity, brownout ? 1 : 0, offered_rps[t],
            r.completed, r.rejected, r.timeouts, r.retries, r.shed,
            ns_to_us(r.p50), ns_to_us(r.p99));
  }
  std::cout << "Degraded-fabric sweep — " << num_reqs
            << " requests/point at 0.5x healthy capacity, timeouts on\n";
  table.print(std::cout);

  // Gate: tail latency must degrade monotonically with severity (0.5%
  // slack) on the brownout-off ladder, and nothing may crash.
  PerfJson perf;
  const std::string perf_path = fccbench::out_dir() + "/host_perf.json";
  perf.load(perf_path);
  bool monotone = true;
  for (std::size_t t = 0; t < fabs.size(); ++t) {
    const auto base = t * static_cast<std::size_t>(points_per_fabric);
    const PointResult& healthy = results[base];
    const PointResult& worst = results[base + kSeverities - 1];
    const double degradation =
        healthy.p99 > 0 ? static_cast<double>(worst.p99) /
                              static_cast<double>(healthy.p99)
                        : 0.0;
    perf.set("bench_degraded_fabric", fabs[t].name + "_p99_degradation_x",
             degradation);
    std::cout << fabs[t].name << ": p99 "
              << AsciiTable::fmt(ns_to_us(healthy.p99), 1) << " -> "
              << AsciiTable::fmt(ns_to_us(worst.p99), 1) << " us ("
              << AsciiTable::fmt(degradation, 2) << "x degradation)\n";
    for (int s = 1; s < kSeverities; ++s) {
      const TimeNs prev = results[base + static_cast<std::size_t>(s - 1)].p99;
      const TimeNs cur = results[base + static_cast<std::size_t>(s)].p99;
      if (static_cast<double>(cur) < 0.995 * static_cast<double>(prev)) {
        std::cout << "  NOT MONOTONE: severity " << s << " p99 "
                  << ns_to_us(cur) << " us < severity " << s - 1 << " p99 "
                  << ns_to_us(prev) << " us\n";
        monotone = false;
      }
    }
  }
  perf.save(perf_path);
  return crash_free && monotone ? 0 : 1;
}

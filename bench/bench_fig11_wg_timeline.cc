// Fig. 11: profiled execution timeline of the persistent WGs in the fused
// embedding + All-to-All kernel (2 nodes over IB).
//
// Shows the paper's qualitative properties: non-blocking PUTs issued while
// sibling WGs keep computing; communication-aware scheduling front-loads
// remote slices (PUT markers cluster early, local-slice markers late); the
// flag-wait tails differ per WG because each polls a distinct flag subset.
//
// Output: an ASCII raster (rows = persistent WGs of node 0/1; 'c' compute,
// '*' instants) plus a Chrome-trace JSON for chrome://tracing.
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "shmem/world.h"

int main() {
  using namespace fcc;

  // Scaled-down grid so 32 persistent WGs per node render readably (the
  // paper likewise plots the first 32 WGs).
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = 16;
  cfg.map.global_batch = 256;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 16;  // slice computed by 16 WGs, as in Fig. 11
  cfg.pooling = 64;
  cfg.functional = false;
  cfg.occupancy_slots_override = 32;
  cfg.emit_trace = true;

  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;
  mc.collect_trace = true;
  gpu::Machine machine(mc);
  shmem::World world(machine);

  fused::FusedEmbeddingAllToAll op(world, cfg, nullptr);
  const auto res = op.run_to_completion();

  int puts = 0, locals = 0;
  for (const auto& i : machine.trace().instants()) {
    puts += (i.name == "put");
    locals += (i.name == "local_slice");
  }
  std::cout << "Fig. 11 — persistent-WG timeline, fused embedding+A2A "
               "(2 nodes, slice = 16 WGs, 32 persistent WGs/node)\n";
  std::cout << "kernel span: " << ns_to_us(res.duration())
            << " us, remote PUTs: " << puts
            << ", local slice completions: " << locals << "\n";
  std::cout << "legend: 'c' = embedding compute, '*' = PUT issue / local "
               "slice completion, '.' = waiting\n\n";

  sim::Trace::AsciiOptions opts;
  opts.width = 110;
  opts.max_tracks = 64;
  machine.trace().render_ascii(std::cout, opts);

  const std::string json_path = fccbench::out_dir() + "/fig11_timeline.json";
  std::ofstream json(json_path);
  machine.trace().write_chrome_json(json);
  std::cout << "\nchrome trace written to " << json_path << "\n";
  return 0;
}

// Fig. 15: large scale-out simulation — one DLRM training pass with fused
// embedding + All-to-All vs baseline, up to 128 nodes (Table II model,
// 2D torus, ASTRA-Sim-analog methodology).
//
// Paper result: ~21% lower execution time at 128 nodes.
//
// Second section: the same flagship operator (fused embedding All-to-All)
// run *event-driven* on a 64-PE torus machine at engine shard counts
// 1/2/4/8 — the shard-local fused runtime. Simulated results and merged
// traces are asserted byte-identical to the serial engine at every shard
// count; what scales is host wall-clock (measured + attainable speedups,
// recorded under `fused_shard_scaling` in bench_results/host_perf.json).
//
// Env knobs (CI smoke uses tiny values):
//   FCC_FIG15_SHARD_ITERS   timed op runs per shard count   (default 6)
//   FCC_FIG15_SHARD_MAX     highest shard count             (default 8)
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "common/check.h"
#include "fused/embedding_a2a.h"
#include "gpu/machine.h"
#include "scaleout/dlrm_training.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

// 64-node 8x8 torus, one GPU per node — the Fig. 15 scale-out shape
// (single-GPU nodes on a 2D torus), and the deferred-reservation replay is
// byte-identical to serial for single-GPU nodes at every shard count.
gpu::Machine::Config shard_machine(int shards, bool collect_trace) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 64;
  cfg.gpus_per_node = 1;
  cfg.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  cfg.topology.torus.dim_x = 8;
  cfg.topology.torus.dim_y = 8;
  cfg.num_shards = shards;
  cfg.collect_trace = collect_trace;
  return cfg;
}

fused::EmbeddingA2AConfig shard_op_config(int num_pes, bool emit_trace) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = num_pes;
  cfg.map.tables_per_pe = 8;
  cfg.map.global_batch = 64 * num_pes;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.functional = false;
  cfg.emit_trace = emit_trace;
  return cfg;
}

struct ShardPoint {
  double wall_s = 0;
  fused::OperatorResult result;  // last iteration's result
  sim::ShardedEngine::RunStats stats;  // summed over iterations
};

ShardPoint run_shard_point(int shards, int iters, unsigned threads) {
  gpu::Machine machine(shard_machine(shards, /*collect_trace=*/false));
  shmem::World world(machine);
  fused::FusedEmbeddingAllToAll op(
      world, shard_op_config(machine.num_pes(), /*emit_trace=*/false),
      nullptr);
  ShardPoint p;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    op.spawn();
    const auto stats = machine.run_all(threads);
    p.stats.events += stats.events;
    p.stats.windows += stats.windows;
    p.stats.messages += stats.messages;
    p.stats.barrier_wall_ns += stats.barrier_wall_ns;
    p.stats.window_wall_ns += stats.window_wall_ns;
    p.stats.critical_wall_ns += stats.critical_wall_ns;
  }
  p.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  p.result = op.result();
  return p;
}

/// One traced run: result + the canonical merged trace, for the
/// byte-identity assertion (kept out of the timed loop).
std::pair<fused::OperatorResult, std::string> traced_shard_run(int shards) {
  gpu::Machine machine(shard_machine(shards, /*collect_trace=*/true));
  shmem::World world(machine);
  fused::FusedEmbeddingAllToAll op(
      world, shard_op_config(machine.num_pes(), /*emit_trace=*/true),
      nullptr);
  const auto res = op.run_to_completion();
  std::ostringstream json;
  machine.merged_trace().write_chrome_json(json);
  return {res, json.str()};
}

/// Wall-clock floor with one core per shard: time outside the windows plus
/// each window's slowest shard (same derivation as bench_shard_scaling).
double attainable_wall_s(const ShardPoint& p) {
  const double window_s = static_cast<double>(p.stats.window_wall_ns) * 1e-9;
  const double critical_s =
      static_cast<double>(p.stats.critical_wall_ns) * 1e-9;
  const double outside_s = p.wall_s > window_s ? p.wall_s - window_s : 0;
  return outside_s + critical_s;
}

void run_sharded_flagship() {
  const int iters = env_int("FCC_FIG15_SHARD_ITERS", 6);
  const int max_shards = env_int("FCC_FIG15_SHARD_MAX", 8);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  AsciiTable table({"shards", "wall (ms)", "speedup", "attainable",
                    "windows", "events", "Mev/s"});
  CsvWriter csv(fccbench::out_dir() + "/fig15_fused_shard_scaling.csv",
                {"shards", "wall_ms", "speedup", "attainable_speedup",
                 "windows", "events", "events_per_second", "sim_duration_ns"});
  PerfJson perf;
  const std::string perf_path = fccbench::out_dir() + "/host_perf.json";
  perf.load(perf_path);
  perf.set("fused_shard_scaling", "host_cores", cores);

  fused::OperatorResult serial_result;
  std::string serial_trace;
  double serial_wall = 0;
  for (const int shards : {1, 2, 4, 8}) {
    if (shards > max_shards) continue;
    const unsigned threads = std::min(static_cast<unsigned>(shards), cores);
    // Byte-identity first: same OperatorResult, same merged trace.
    const auto [res, trace] = traced_shard_run(shards);
    if (shards == 1) {
      serial_result = res;
      serial_trace = trace;
    } else {
      FCC_CHECK_MSG(res == serial_result,
                    "sharded fused embedding result diverged from serial at "
                        << shards << " shards");
      FCC_CHECK_MSG(trace == serial_trace,
                    "sharded fused embedding trace diverged from serial at "
                        << shards << " shards");
    }

    const ShardPoint p = run_shard_point(shards, iters, threads);
    if (shards == 1) serial_wall = p.wall_s;
    const double speedup = p.wall_s > 0 ? serial_wall / p.wall_s : 0;
    const double att_wall = attainable_wall_s(p);
    const double attainable =
        shards == 1 ? 1.0 : (att_wall > 0 ? serial_wall / att_wall : 0);
    const double evps =
        p.wall_s > 0 ? static_cast<double>(p.stats.events) / p.wall_s : 0;
    table.add_row({std::to_string(shards), AsciiTable::fmt(p.wall_s * 1e3, 1),
                   AsciiTable::fmt(speedup, 2), AsciiTable::fmt(attainable, 2),
                   std::to_string(p.stats.windows),
                   std::to_string(p.stats.events),
                   AsciiTable::fmt(evps / 1e6, 2)});
    // Duration, not absolute end: warm back-to-back runs on a sharded
    // machine restart at window-aligned times, so absolute stamps drift
    // across iterations while each run's simulated duration stays equal.
    csv.row(shards, p.wall_s * 1e3, speedup, attainable, p.stats.windows,
            p.stats.events, evps, p.result.duration());
    perf.set("fused_shard_scaling",
             "fig15_wall_seconds_shards" + std::to_string(shards), p.wall_s);
    if (shards > 1) {
      perf.set("fused_shard_scaling",
               "fig15_speedup_" + std::to_string(shards) + "_shards", speedup);
      perf.set("fused_shard_scaling",
               "fig15_attainable_speedup_" + std::to_string(shards) +
                   "_shards",
               attainable);
    }
  }
  perf.save(perf_path);

  std::cout << "\nFused embedding All-to-All, event-driven on an 8x8 torus "
               "(64 PEs), sharded engine\n";
  table.print(std::cout);
  std::cout << "simulated results and merged traces byte-identical to serial "
               "at every shard count (asserted)\n";
  if (cores < 4) {
    std::cout << "note: host has " << cores
              << " core(s); 'attainable' is the wall-clock floor with one "
                 "core per shard, from the engine's wall breakdown.\n";
  }
}

}  // namespace

int main() {
  using namespace fcc;
  using namespace fcc::scaleout;

  const int node_counts[] = {8, 16, 32, 64, 128};
  struct Point {
    IterationBreakdown base, fused;
  };
  const auto points = fccbench::run_sweep<Point>(
      "bench_fig15_scaleout_dlrm", 5, [&](int i) {
        TrainingConfig cfg;  // Table II defaults
        cfg.num_nodes = node_counts[i];
        cfg.global_batch = 64 * node_counts[i];
        DlrmTrainingSim sim(cfg);
        return Point{sim.simulate(false), sim.simulate(true)};
      });

  AsciiTable t({"nodes", "torus", "baseline (us)", "fused (us)", "normalized",
                "reduction %"});
  CsvWriter csv(fccbench::out_dir() + "/fig15_scaleout_dlrm.csv",
                {"nodes", "baseline_ns", "fused_ns", "normalized"});
  for (int i = 0; i < 5; ++i) {
    const int nodes = node_counts[i];
    const auto& base = points[static_cast<std::size_t>(i)].base;
    const auto& fused = points[static_cast<std::size_t>(i)].fused;
    const double norm = static_cast<double>(fused.total) / base.total;
    TrainingConfig cfg;
    cfg.num_nodes = nodes;
    const auto torus = torus_for_nodes(nodes, cfg.torus);
    t.add_row({std::to_string(nodes),
               std::to_string(torus.dim_x) + "x" + std::to_string(torus.dim_y),
               AsciiTable::fmt(ns_to_us(base.total), 1),
               AsciiTable::fmt(ns_to_us(fused.total), 1),
               AsciiTable::fmt(norm, 3),
               AsciiTable::fmt(100.0 * (1.0 - norm), 1)});
    csv.row(nodes, base.total, fused.total, norm);
  }
  std::cout << "Fig. 15 — DLRM training pass, fused vs baseline execution "
               "graph (Table II model)\n";
  t.print(std::cout);

  // Component breakdown at 128 nodes (what the overlap hides).
  const auto& b = points.back().base;
  AsciiTable parts({"component (128 nodes)", "per-iteration (us)"});
  parts.add_row({"embedding fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.emb_fwd + b.emb_bwd), 1)});
  parts.add_row({"All-to-All fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.a2a_fwd + b.a2a_bwd), 1)});
  parts.add_row({"MLPs fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.top_mlp_fwd + b.top_mlp_bwd +
                                          b.bottom_mlp_fwd + b.bottom_mlp_bwd),
                                 1)});
  parts.add_row({"interaction (x2)", AsciiTable::fmt(ns_to_us(2 * b.interaction), 1)});
  parts.add_row({"exposed grad AllReduce",
                 AsciiTable::fmt(ns_to_us(b.exposed_allreduce), 1)});
  parts.print(std::cout);
  std::cout << "paper: ~21% reduction at 128 nodes\n";

  run_sharded_flagship();
  return 0;
}

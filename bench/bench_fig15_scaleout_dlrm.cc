// Fig. 15: large scale-out simulation — one DLRM training pass with fused
// embedding + All-to-All vs baseline, up to 128 nodes (Table II model,
// 2D torus, ASTRA-Sim-analog methodology).
//
// Paper result: ~21% lower execution time at 128 nodes.
#include "bench_common.h"
#include "scaleout/dlrm_training.h"
#include "sweep_runner.h"

int main() {
  using namespace fcc;
  using namespace fcc::scaleout;

  const int node_counts[] = {8, 16, 32, 64, 128};
  struct Point {
    IterationBreakdown base, fused;
  };
  const auto points = fccbench::run_sweep<Point>(
      "bench_fig15_scaleout_dlrm", 5, [&](int i) {
        TrainingConfig cfg;  // Table II defaults
        cfg.num_nodes = node_counts[i];
        cfg.global_batch = 64 * node_counts[i];
        DlrmTrainingSim sim(cfg);
        return Point{sim.simulate(false), sim.simulate(true)};
      });

  AsciiTable t({"nodes", "torus", "baseline (us)", "fused (us)", "normalized",
                "reduction %"});
  CsvWriter csv(fccbench::out_dir() + "/fig15_scaleout_dlrm.csv",
                {"nodes", "baseline_ns", "fused_ns", "normalized"});
  for (int i = 0; i < 5; ++i) {
    const int nodes = node_counts[i];
    const auto& base = points[static_cast<std::size_t>(i)].base;
    const auto& fused = points[static_cast<std::size_t>(i)].fused;
    const double norm = static_cast<double>(fused.total) / base.total;
    TrainingConfig cfg;
    cfg.num_nodes = nodes;
    const auto torus = torus_for_nodes(nodes, cfg.torus);
    t.add_row({std::to_string(nodes),
               std::to_string(torus.dim_x) + "x" + std::to_string(torus.dim_y),
               AsciiTable::fmt(ns_to_us(base.total), 1),
               AsciiTable::fmt(ns_to_us(fused.total), 1),
               AsciiTable::fmt(norm, 3),
               AsciiTable::fmt(100.0 * (1.0 - norm), 1)});
    csv.row(nodes, base.total, fused.total, norm);
  }
  std::cout << "Fig. 15 — DLRM training pass, fused vs baseline execution "
               "graph (Table II model)\n";
  t.print(std::cout);

  // Component breakdown at 128 nodes (what the overlap hides).
  const auto& b = points.back().base;
  AsciiTable parts({"component (128 nodes)", "per-iteration (us)"});
  parts.add_row({"embedding fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.emb_fwd + b.emb_bwd), 1)});
  parts.add_row({"All-to-All fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.a2a_fwd + b.a2a_bwd), 1)});
  parts.add_row({"MLPs fwd+bwd",
                 AsciiTable::fmt(ns_to_us(b.top_mlp_fwd + b.top_mlp_bwd +
                                          b.bottom_mlp_fwd + b.bottom_mlp_bwd),
                                 1)});
  parts.add_row({"interaction (x2)", AsciiTable::fmt(ns_to_us(2 * b.interaction), 1)});
  parts.add_row({"exposed grad AllReduce",
                 AsciiTable::fmt(ns_to_us(b.exposed_allreduce), 1)});
  parts.print(std::cout);
  std::cout << "paper: ~21% reduction at 128 nodes\n";
  return 0;
}

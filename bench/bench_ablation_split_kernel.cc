// Ablation: split-kernel overlap (Wang et al. [58]-style decomposition) vs
// intra-kernel fusion.
//
// The related-work alternative splits the producer kernel into S chunks and
// overlaps chunk i's collective with chunk i+1's compute using streams.
// Each chunk pays a kernel boundary and a library-collective latency floor,
// so the approach wins only while chunks stay large — exactly the paper's
// argument (Sec. V) for why fusion beats decomposition on small kernels.
#include "bench_common.h"
#include "fused/embedding_a2a.h"
#include "gpu/stream.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace {

using namespace fcc;

constexpr int kTables = 64;
constexpr int kBatch = 1024;

fused::EmbeddingA2AConfig base_config() {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = kTables;
  cfg.map.global_batch = kBatch;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 64;
  cfg.functional = false;
  return cfg;
}

/// Split-kernel schedule: tables are grouped into S chunks; chunk i's
/// per-table kernels run on the compute stream, then its A2A share runs
/// while chunk i+1 computes.
struct SplitRunner {
  gpu::Machine& machine;
  shmem::World& world;
  int splits;
  TimeNs total = 0;

  sim::Co chunk_kernels(PeId pe, int tables_in_chunk) {
    const auto cfg = base_config();
    for (int t = 0; t < tables_in_chunk; ++t) {
      gpu::KernelRun::Params p;
      p.name = "emb_table_chunk";
      p.num_slots = gpu::max_active_wgs(
          machine.device(pe).spec(),
          fused::BaselineEmbeddingAllToAll::baseline_resources());
      p.order.resize(static_cast<std::size_t>(cfg.map.global_batch));
      for (int b = 0; b < cfg.map.global_batch; ++b) {
        p.order[static_cast<std::size_t>(b)] = b;
      }
      auto* dev = &machine.device(pe);
      p.body = [dev, &cfg](int, int) -> sim::Co {
        co_await dev->compute(ops::embedding_wg_cost(
            cfg.pooling, cfg.map.dim, true, ops::kBaselineCurve));
      };
      gpu::KernelRun run(machine.engine(), std::move(p));
      run.start();
      co_await run.wait();
    }
  }

  sim::Task go(sim::Engine& engine, bool& done) {
    const auto cfg = base_config();
    ccl::Communicator comm(machine, {0, 1});
    const int chunk_tables = kTables / splits;
    const std::int64_t chunk_elems =
        static_cast<std::int64_t>(chunk_tables) * cfg.map.local_batch() *
        cfg.map.dim;

    // Per-PE compute streams advance chunk by chunk; the collective for
    // chunk i runs concurrently with chunk i+1's kernels.
    sim::JoinCounter all_comms(engine, splits);
    for (int sidx = 0; sidx < splits; ++sidx) {
      // Compute chunk on both PEs.
      sim::JoinCounter chunk_done(engine, 2);
      struct PeChunk {
        static sim::Task go(sim::Engine& e, SplitRunner& r, PeId pe,
                            int tables, sim::JoinCounter& done) {
          co_await sim::delay(e, r.machine.device(pe).spec().kernel_launch_ns);
          co_await r.chunk_kernels(pe, tables);
          done.arrive();
        }
      };
      PeChunk::go(engine, *this, 0, chunk_tables, chunk_done);
      PeChunk::go(engine, *this, 1, chunk_tables, chunk_done);
      co_await chunk_done.wait();
      // Kick this chunk's A2A asynchronously (second stream).
      struct ChunkComm {
        static sim::Task go(sim::Engine&, ccl::Communicator& c,
                            std::int64_t elems, sim::JoinCounter& done) {
          co_await c.all_to_all(elems, ccl::FloatBufs{}, ccl::FloatBufs{});
          done.arrive();
        }
      };
      ChunkComm::go(engine, comm, chunk_elems, all_comms);
    }
    co_await all_comms.wait();
    total = engine.now();
    done = true;
  }
};

TimeNs run_split(int splits) {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;
  gpu::Machine machine(mc);
  shmem::World world(machine);
  SplitRunner runner{machine, world, splits};
  bool done = false;
  runner.go(machine.engine(), done);
  machine.engine().run();
  FCC_CHECK(done && machine.engine().live_tasks() == 0);
  return runner.total;
}

}  // namespace

int main() {
  // Reference points: bulk-synchronous baseline and the fused kernel.
  const auto cfg = base_config();
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;

  TimeNs bulk = 0, fused_t = 0;
  {
    gpu::Machine m(mc);
    shmem::World w(m);
    bulk = fused::BaselineEmbeddingAllToAll(w, cfg, nullptr)
               .run_to_completion()
               .duration();
  }
  {
    gpu::Machine m(mc);
    shmem::World w(m);
    fused_t = fused::FusedEmbeddingAllToAll(w, cfg, nullptr)
                  .run_to_completion()
                  .duration();
  }

  AsciiTable t({"schedule", "exec (us)", "vs bulk baseline"});
  CsvWriter csv(fccbench::out_dir() + "/ablation_split_kernel.csv",
                {"schedule", "exec_ns"});
  t.add_row({"bulk-synchronous", AsciiTable::fmt(ns_to_us(bulk), 1), "1.000"});
  csv.row("bulk", bulk);
  for (int s : {2, 4, 8, 16, 32}) {
    const TimeNs dur = run_split(s);
    t.add_row({"split x" + std::to_string(s),
               AsciiTable::fmt(ns_to_us(dur), 1),
               AsciiTable::fmt(static_cast<double>(dur) / bulk, 3)});
    csv.row("split_x" + std::to_string(s), dur);
  }
  t.add_row({"fused (intra-kernel)", AsciiTable::fmt(ns_to_us(fused_t), 1),
             AsciiTable::fmt(static_cast<double>(fused_t) / bulk, 3)});
  csv.row("fused", fused_t);

  std::cout << "Ablation — split-kernel overlap [58] vs intra-kernel fusion "
               "(2 nodes, batch 1024, 64 tables)\n";
  t.print(std::cout);
  std::cout << "finer splits pay per-chunk kernel boundaries and collective "
               "latency floors; fusion does not\n";
  return 0;
}

// Offered-load sweep over the serving simulator: find the saturation knee.
//
// For each fabric (fully-connected 1x8, switched 1x8, 2D torus 4x2) the
// bench first calibrates the machine's service capacity — one warm run of
// every catalog chain gives the weighted mean batch service time S, and
// capacity ~= lanes * max_batch / S requests per second — then sweeps
// offered load as a fraction of that capacity with a Poisson firehose.
// Below the knee p99 total latency sits near service + batch window; past
// it the bounded queues fill, latency is queue-depth * batch time, and
// admission control starts rejecting — the p99 inflection (and the
// achieved-vs-offered throughput gap) is the knee.
//
// Output: bench_results/serve_load.csv with p50/p99/p999 columns per
// (topology, load) point, a per-topology knee ratio into host_perf.json,
// and a nonzero exit unless every topology shows a visible knee
// (p99 at the highest load > 2x p99 at the lowest).
//
// Second section: one serve point re-run on the sharded engine at 1/2/4/8
// shards, on a dedicated 8-node x 1-GPU fully-connected machine (the sweep
// fabrics are single-node, and shards partition node-aligned; the torus is
// skipped deliberately — deferred-reservation replay is only order-exact
// for a single operator's per-PE issue streams, and concurrent serving
// lanes interleave same-timestamp issues across PEs, see shmem/world.h).
// Request records and aggregates are asserted byte-identical to the serial
// engine; measured + attainable host speedups land under
// `fused_shard_scaling` in host_perf.json next to the Fig. 15 flagship.
//
// Env knobs (CI smoke uses tiny values):
//   FCC_SERVE_BENCH_REQS   requests per point        (default 400)
//   FCC_SERVE_BENCH_LOADS  comma list of load fracs  (default
//                          0.2,0.4,0.6,0.8,1.0,1.25,1.5)
//   FCC_SERVE_SHARD_ITERS  timed serve runs per shard count  (default 3)
//   FCC_SERVE_SHARD_MAX    highest shard count               (default 8)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"
#include "hw/topology.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace {

using namespace fcc;

struct Topo {
  std::string name;
  gpu::Machine::Config machine;
};

std::vector<Topo> topologies() {
  std::vector<Topo> topos;
  {
    Topo fc{"fully_connected", {}};
    fc.machine.num_nodes = 1;
    fc.machine.gpus_per_node = 8;
    topos.push_back(fc);
  }
  {
    Topo sw{"switched", {}};
    sw.machine.num_nodes = 1;
    sw.machine.gpus_per_node = 8;
    sw.machine.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
    topos.push_back(sw);
  }
  {
    Topo to{"torus2d_4x2", {}};
    to.machine.num_nodes = 8;
    to.machine.gpus_per_node = 1;
    to.machine.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    to.machine.topology.torus.dim_x = 4;
    to.machine.topology.torus.dim_y = 2;
    topos.push_back(to);
  }
  return topos;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

std::vector<double> env_loads() {
  std::vector<double> loads;
  const char* v = std::getenv("FCC_SERVE_BENCH_LOADS");
  std::string spec = (v != nullptr && *v != '\0')
                         ? v
                         : "0.2,0.4,0.6,0.8,1.0,1.25,1.5";
  std::istringstream is(spec);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) loads.push_back(std::strtod(tok.c_str(), nullptr));
  }
  FCC_CHECK_MSG(loads.size() >= 2, "need >= 2 load points for a knee");
  return loads;
}

/// Weighted mean batch service time (ns) of the catalog on this machine:
/// one warm run per chain stage (cold allocations out of the measurement).
double calibrate_service_ns(const gpu::Machine::Config& mc) {
  gpu::Machine machine(mc);
  shmem::World world(machine);
  const auto catalog = serve::default_catalog(machine.num_pes());
  const fw::OpRegistry& registry = fw::OpRegistry::global();
  double weight_sum = 0.0, service_sum = 0.0;
  for (const serve::ServeClass& c : catalog) {
    TimeNs chain_ns = 0;
    for (const fw::OpSpec& spec : c.chain) {
      auto op = registry.at(spec.name).make(world, spec, fw::Backend::kFused);
      op->run_to_completion();  // warm: first run takes the allocations
      const auto res = op->run_to_completion();
      chain_ns += res.end - res.start;
    }
    weight_sum += c.weight;
    service_sum += c.weight * static_cast<double>(chain_ns);
  }
  return service_sum / weight_sum;
}

struct PointResult {
  double offered_rps = 0, achieved_rps = 0;
  std::int64_t completed = 0, rejected = 0, slo_violations = 0;
  TimeNs p50 = 0, p99 = 0, p999 = 0;
};

PointResult run_point(const Topo& topo, double offered_rps, int num_reqs,
                      std::uint64_t seed) {
  gpu::Machine machine(topo.machine);
  shmem::World world(machine);
  auto catalog = serve::default_catalog(machine.num_pes());
  const auto weights = serve::class_weights(catalog);
  serve::Simulator sim(machine, world, std::move(catalog));
  const auto trace =
      serve::poisson_trace(offered_rps, num_reqs, seed, weights);
  const serve::ServeReport report = sim.run(trace);

  PointResult r;
  r.offered_rps = offered_rps;
  r.achieved_rps = report.achieved_rps();
  r.completed = report.overall.completed;
  r.rejected = report.overall.rejected;
  r.slo_violations = report.overall.slo_violations;
  if (!report.overall.total.empty()) {
    r.p50 = report.overall.total.percentile(50.0);
    r.p99 = report.overall.total.percentile(99.0);
    r.p999 = report.overall.total.percentile(99.9);
  }
  return r;
}

// --------------------------------------------------------------------------
// Sharded serve scaling: the same serve point on the sharded engine.

struct ServeShardPoint {
  serve::ServeReport report;
  double wall_s = 0;
  sim::ShardedEngine::RunStats stats;  // summed over timed iterations
};

ServeShardPoint run_serve_sharded(const Topo& topo, int shards, double rps,
                                  int num_reqs, int iters) {
  gpu::Machine::Config mc = topo.machine;
  mc.num_shards = shards;
  gpu::Machine machine(mc);
  shmem::World world(machine);
  auto catalog = serve::default_catalog(machine.num_pes());
  const auto weights = serve::class_weights(catalog);
  serve::Simulator sim(machine, world, std::move(catalog));
  const auto trace = serve::poisson_trace(rps, num_reqs, 0x5e12f00d, weights);

  ServeShardPoint p;
  p.report = sim.run(trace);  // warm-up; allocations out of the timing
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const serve::ServeReport again = sim.run(trace);
    FCC_CHECK_MSG(again.records == p.report.records,
                  topo.name << " at " << shards
                            << " shards: warm serve replay diverged");
    const auto& s = machine.last_run_stats();
    p.stats.events += s.events;
    p.stats.windows += s.windows;
    p.stats.messages += s.messages;
    p.stats.barrier_wall_ns += s.barrier_wall_ns;
    p.stats.window_wall_ns += s.window_wall_ns;
    p.stats.critical_wall_ns += s.critical_wall_ns;
  }
  p.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return p;
}

void run_serve_shard_scaling(const Topo& topo, double capacity, int num_reqs,
                             PerfJson& perf) {
  const int iters = env_int("FCC_SERVE_SHARD_ITERS", 3);
  const int max_shards = env_int("FCC_SERVE_SHARD_MAX", 8);
  if (max_shards < 1) return;
  const double rps = 0.8 * capacity;  // just under the knee

  AsciiTable table({"shards", "wall (ms)", "speedup", "attainable", "done",
                    "windows"});
  ServeShardPoint serial;
  for (const int shards : {1, 2, 4, 8}) {
    if (shards > max_shards || shards > topo.machine.num_nodes) continue;
    ServeShardPoint p = run_serve_sharded(topo, shards, rps, num_reqs, iters);
    if (shards == 1) {
      serial = std::move(p);
      table.add_row({"1", AsciiTable::fmt(serial.wall_s * 1e3, 1), "1.00",
                     "1.00", std::to_string(serial.report.overall.completed),
                     std::to_string(serial.stats.windows)});
      continue;
    }
    FCC_CHECK_MSG(p.report.records == serial.report.records,
                  topo.name << ": sharded serve records diverged from serial "
                               "at "
                            << shards << " shards");
    FCC_CHECK_MSG(p.report.overall == serial.report.overall,
                  topo.name << ": sharded serve aggregates diverged from "
                               "serial at "
                            << shards << " shards");
    const double speedup = p.wall_s > 0 ? serial.wall_s / p.wall_s : 0;
    // Wall-clock floor with one core per shard: time outside the windows
    // plus each window's slowest shard (same derivation as the Fig. 15
    // flagship and bench_shard_scaling).
    const double window_s = static_cast<double>(p.stats.window_wall_ns) * 1e-9;
    const double critical_s =
        static_cast<double>(p.stats.critical_wall_ns) * 1e-9;
    const double att_wall =
        (p.wall_s > window_s ? p.wall_s - window_s : 0) + critical_s;
    const double attainable = att_wall > 0 ? serial.wall_s / att_wall : 0;
    table.add_row({std::to_string(shards), AsciiTable::fmt(p.wall_s * 1e3, 1),
                   AsciiTable::fmt(speedup, 2), AsciiTable::fmt(attainable, 2),
                   std::to_string(p.report.overall.completed),
                   std::to_string(p.stats.windows)});
    perf.set("fused_shard_scaling",
             "serve_wall_seconds_shards" + std::to_string(shards), p.wall_s);
    perf.set("fused_shard_scaling",
             "serve_speedup_" + std::to_string(shards) + "_shards", speedup);
    perf.set("fused_shard_scaling",
             "serve_attainable_speedup_" + std::to_string(shards) + "_shards",
             attainable);
  }
  perf.set("fused_shard_scaling", "serve_wall_seconds_shards1",
           serial.wall_s);

  std::cout << "\nSharded serve scaling — " << topo.name << ", "
            << AsciiTable::fmt(rps, 0) << " rps (0.8x capacity), " << num_reqs
            << " requests, " << iters << " timed runs/point\n";
  table.print(std::cout);
  std::cout << "request records byte-identical to serial at every shard "
               "count (asserted)\n";
}

}  // namespace

int main() {
  const auto topos = topologies();
  const auto loads = env_loads();
  const int num_reqs = env_int("FCC_SERVE_BENCH_REQS", 400);

  // Capacity calibration is cheap and sequential; the sweep is the work.
  std::vector<double> capacity_rps(topos.size());
  serve::ServeConfig scfg;  // defaults: 2 lanes, max_batch 8
  for (std::size_t t = 0; t < topos.size(); ++t) {
    const double s = calibrate_service_ns(topos[t].machine);
    capacity_rps[t] =
        static_cast<double>(scfg.lanes * scfg.policy.max_batch) * 1e9 / s;
  }

  const int n = static_cast<int>(topos.size() * loads.size());
  const auto results = fccbench::run_sweep<PointResult>(
      "bench_serve_load", n, [&](int i) {
        const std::size_t t = static_cast<std::size_t>(i) / loads.size();
        const std::size_t l = static_cast<std::size_t>(i) % loads.size();
        return run_point(topos[t], loads[l] * capacity_rps[t], num_reqs,
                         /*seed=*/0x5e12f00d + static_cast<std::uint64_t>(l));
      });

  AsciiTable table({"topology", "load", "offered rps", "achieved rps",
                    "done", "rej", "slo_viol", "p50 (us)", "p99 (us)",
                    "p999 (us)"});
  CsvWriter csv(fccbench::out_dir() + "/serve_load.csv",
                {"topology", "load_frac", "offered_rps", "achieved_rps",
                 "completed", "rejected", "slo_violations", "p50_us",
                 "p99_us", "p999_us"});
  for (int i = 0; i < n; ++i) {
    const std::size_t t = static_cast<std::size_t>(i) / loads.size();
    const std::size_t l = static_cast<std::size_t>(i) % loads.size();
    const PointResult& r = results[static_cast<std::size_t>(i)];
    table.add_row({topos[t].name, AsciiTable::fmt(loads[l], 2),
                   AsciiTable::fmt(r.offered_rps, 0),
                   AsciiTable::fmt(r.achieved_rps, 0),
                   std::to_string(r.completed), std::to_string(r.rejected),
                   std::to_string(r.slo_violations),
                   AsciiTable::fmt(ns_to_us(r.p50), 1),
                   AsciiTable::fmt(ns_to_us(r.p99), 1),
                   AsciiTable::fmt(ns_to_us(r.p999), 1)});
    csv.row(topos[t].name, loads[l], r.offered_rps, r.achieved_rps,
            r.completed, r.rejected, r.slo_violations, ns_to_us(r.p50),
            ns_to_us(r.p99), ns_to_us(r.p999));
  }
  std::cout << "Serving load sweep — open-loop Poisson firehose, "
            << num_reqs << " requests/point, 3-class catalog\n";
  table.print(std::cout);

  // Knee check: p99 at the highest load must blow up vs the lightest load.
  PerfJson perf;
  const std::string perf_path = fccbench::out_dir() + "/host_perf.json";
  perf.load(perf_path);
  bool knee_everywhere = true;
  for (std::size_t t = 0; t < topos.size(); ++t) {
    const PointResult& lo = results[t * loads.size()];
    const PointResult& hi = results[t * loads.size() + loads.size() - 1];
    const double ratio = lo.p99 > 0 ? static_cast<double>(hi.p99) /
                                          static_cast<double>(lo.p99)
                                    : 0.0;
    perf.set("bench_serve_load", topos[t].name + "_capacity_rps",
             capacity_rps[t]);
    perf.set("bench_serve_load", topos[t].name + "_knee_p99_ratio", ratio);
    std::cout << topos[t].name << ": capacity "
              << AsciiTable::fmt(capacity_rps[t], 0) << " rps, p99 "
              << AsciiTable::fmt(ns_to_us(lo.p99), 1) << " -> "
              << AsciiTable::fmt(ns_to_us(hi.p99), 1) << " us ("
              << AsciiTable::fmt(ratio, 2) << "x)\n";
    if (ratio <= 2.0) {
      std::cout << "  NO VISIBLE KNEE (need > 2x)\n";
      knee_everywhere = false;
    }
  }
  // Same stack, sharded engine: the torus point (the only multi-node fabric
  // here) at 1/2/4/8 shards, byte-identity asserted.
  Topo shard_topo{"fully_connected_8x1", {}};
  shard_topo.machine.num_nodes = 8;
  shard_topo.machine.gpus_per_node = 1;
  const double shard_capacity =
      static_cast<double>(scfg.lanes * scfg.policy.max_batch) * 1e9 /
      calibrate_service_ns(shard_topo.machine);
  run_serve_shard_scaling(shard_topo, shard_capacity, num_reqs, perf);

  perf.save(perf_path);
  return knee_everywhere ? 0 : 1;
}

// Matrix-vector multiply (token-phase inference workhorse).
//
// Row-major W (m x k), y = W * x. Logical WGs own `tile_rows`-row tiles —
// the unit the fused GEMV+AllReduce operator communicates and reduces.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fcc::ops {

struct GemvShape {
  int m = 0;  // output rows
  int k = 0;  // reduction dim
  int tile_rows = 16;

  int num_tiles() const { return (m + tile_rows - 1) / tile_rows; }
  int tile_begin(int t) const { return t * tile_rows; }
  int tile_end(int t) const {
    const int e = (t + 1) * tile_rows;
    return e < m ? e : m;
  }
};

/// Reference y = W x over the full matrix.
std::vector<float> gemv_reference(const GemvShape& s,
                                  std::span<const float> w,
                                  std::span<const float> x);

/// Computes one tile [tile_begin, tile_end) of y into `out` (tile-local
/// indexing). This is exactly what one logical WG produces.
void gemv_tile(const GemvShape& s, std::span<const float> w,
               std::span<const float> x, int tile, std::span<float> out);

std::vector<float> random_vector(std::size_t n, Rng& rng);

}  // namespace fcc::ops

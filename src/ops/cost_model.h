// Per-operator timing costs (the "ROC-profiler measurements" of Table II's
// methodology, produced analytically from the GPU spec instead).
//
// Each logical workgroup's compute step maps to a gpu::WorkCost: bytes the
// WG moves through HBM plus flops it executes; the Device converts that to
// time under the occupancy-dependent bandwidth curve. Calibration constants
// live here so every operator and bench shares one source of truth.
#pragma once

#include "common/types.h"
#include "gpu/device.h"
#include "hw/hbm_model.h"

namespace fcc::ops {

/// Contention curves per kernel family. Baseline kernels saturate flat;
/// the fused persistent embedding kernel adds comm bookkeeping pressure and
/// degrades past the knee (the Fig. 13 trade-off).
inline constexpr hw::HbmCurve kBaselineCurve{0.31, 0.75, 0.0};
inline constexpr hw::HbmCurve kFusedEmbeddingCurve{0.31, 0.75, 0.40};

/// Sustained fraction of peak ALU for tuned dense kernels vs the generic
/// Triton GEMM the paper uses for MoE (Sec. IV-B: "Since we are using a
/// generic GEMM implementation provided with Triton, the GEMM dominates").
inline constexpr double kTunedGemmEfficiency = 0.70;
inline constexpr double kTritonGemmEfficiency = 0.35;

/// Embedding pooling, one logical WG = one pooled output vector:
/// reads `pooling` rows of `dim` fp32 + the index list, writes `dim` fp32
/// when staging locally (the zero-copy fused path skips the local write for
/// remote slices — its bytes ride the fabric instead).
inline gpu::WorkCost embedding_wg_cost(int pooling, int dim, bool local_write,
                                       const hw::HbmCurve& curve) {
  gpu::WorkCost c;
  const Bytes reads = static_cast<Bytes>(pooling) * dim * 4 +
                      static_cast<Bytes>(pooling) * 4;  // rows + indices
  const Bytes writes = local_write ? static_cast<Bytes>(dim) * 4 : 0;
  c.hbm_bytes = reads + writes;
  c.flops = static_cast<double>(pooling) * dim;  // adds
  c.alu_efficiency = 1.0;
  c.curve = curve;
  return c;
}

/// GEMV, one logical WG = `tile_rows` output elements: streams the weight
/// tile (tile_rows x k fp32), x is cache-resident.
inline gpu::WorkCost gemv_tile_cost(int tile_rows, int k, bool local_write,
                                    const hw::HbmCurve& curve) {
  gpu::WorkCost c;
  c.hbm_bytes = static_cast<Bytes>(tile_rows) * k * 4 +
                (local_write ? static_cast<Bytes>(tile_rows) * 4 : 0);
  c.flops = 2.0 * tile_rows * k;
  c.alu_efficiency = 1.0;
  c.curve = curve;
  return c;
}

/// GEMM, one logical WG = one BM x BN output tile of C = A(MxK) * B(KxN):
/// ALU-dominated; HBM traffic is the A/B panels once per tile (no tiling
/// reuse across WGs modeled — conservative for a generic implementation).
inline gpu::WorkCost gemm_tile_cost(int bm, int bn, int k, double efficiency,
                                    const hw::HbmCurve& curve) {
  gpu::WorkCost c;
  c.hbm_bytes = (static_cast<Bytes>(bm) * k + static_cast<Bytes>(k) * bn +
                 static_cast<Bytes>(bm) * bn) *
                4;
  c.flops = 2.0 * bm * bn * k;
  c.alu_efficiency = efficiency;
  c.curve = curve;
  return c;
}

/// Elementwise op over n fp32 (activation, bias add): pure bandwidth.
inline gpu::WorkCost elementwise_cost(std::int64_t n, int streams = 2) {
  gpu::WorkCost c;
  c.hbm_bytes = static_cast<Bytes>(n) * 4 * streams;  // read + write
  c.flops = static_cast<double>(n);
  c.curve = kBaselineCurve;
  return c;
}

/// Default GEMV tile height (rows per logical WG).
inline constexpr int kGemvTileRows = 16;

/// Default GEMM tile (Triton-style block sizes).
inline constexpr int kGemmBlockM = 64;
inline constexpr int kGemmBlockN = 64;

}  // namespace fcc::ops

#include "ops/gemm.h"

namespace fcc::ops {

std::vector<float> gemm_reference(const GemmShape& s,
                                  std::span<const float> a,
                                  std::span<const float> b) {
  FCC_CHECK(static_cast<std::size_t>(s.m) * s.k == a.size());
  FCC_CHECK(static_cast<std::size_t>(s.k) * s.n == b.size());
  std::vector<float> c(static_cast<std::size_t>(s.m) * s.n, 0.0f);
  for (int i = 0; i < s.m; ++i) {
    for (int p = 0; p < s.k; ++p) {
      const float av = a[static_cast<std::size_t>(i) * s.k + p];
      const auto* brow = &b[static_cast<std::size_t>(p) * s.n];
      auto* crow = &c[static_cast<std::size_t>(i) * s.n];
      for (int j = 0; j < s.n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void gemm_tile(const GemmShape& s, std::span<const float> a,
               std::span<const float> b, int tile, std::span<float> out) {
  const int r0 = s.row_begin(tile), r1 = s.row_end(tile);
  const int c0 = s.col_begin(tile), c1 = s.col_end(tile);
  const int cols = c1 - c0;
  FCC_CHECK(static_cast<int>(out.size()) >= (r1 - r0) * cols);
  for (int i = r0; i < r1; ++i) {
    for (int j = c0; j < c1; ++j) {
      double acc = 0;
      for (int p = 0; p < s.k; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * s.k + p]) *
               b[static_cast<std::size_t>(p) * s.n + j];
      }
      out[static_cast<std::size_t>(i - r0) * cols + (j - c0)] =
          static_cast<float>(acc);
    }
  }
}

}  // namespace fcc::ops

#include "ops/gemv.h"

namespace fcc::ops {

std::vector<float> gemv_reference(const GemvShape& s,
                                  std::span<const float> w,
                                  std::span<const float> x) {
  FCC_CHECK(static_cast<std::size_t>(s.m) * s.k == w.size());
  FCC_CHECK(static_cast<std::size_t>(s.k) == x.size());
  std::vector<float> y(static_cast<std::size_t>(s.m));
  for (int r = 0; r < s.m; ++r) {
    double acc = 0;
    const auto* row = &w[static_cast<std::size_t>(r) * s.k];
    for (int c = 0; c < s.k; ++c) acc += static_cast<double>(row[c]) * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return y;
}

void gemv_tile(const GemvShape& s, std::span<const float> w,
               std::span<const float> x, int tile, std::span<float> out) {
  const int r0 = s.tile_begin(tile);
  const int r1 = s.tile_end(tile);
  FCC_CHECK(static_cast<int>(out.size()) >= r1 - r0);
  for (int r = r0; r < r1; ++r) {
    double acc = 0;
    const auto* row = &w[static_cast<std::size_t>(r) * s.k];
    for (int c = 0; c < s.k; ++c) acc += static_cast<double>(row[c]) * x[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r - r0)] = static_cast<float>(acc);
  }
}

std::vector<float> random_vector(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& f : v) f = static_cast<float>(rng.next_double(-1.0, 1.0));
  return v;
}

}  // namespace fcc::ops

// MoE gating and token routing (the "G" box of the paper's Fig. 4).
//
// Tokens are routed to the top-k experts of a learned linear gate; the
// resulting per-(source, expert) counts drive the dispatch All-to-All —
// bulk-synchronous via ccl::Communicator::all_to_all_v (see its header
// comment for the variable-chunk send/recv layout and empty-segment
// rules), or overlapped with the producer GEMM by fused::FusedMoeDispatch.
// Under the paper's equal-load assumption the combine side collapses to
// the uniform All-to-All that fused::FusedGemmAllToAll ships.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fcc::ops {

struct RoutingConfig {
  int num_experts = 4;
  int d_model = 64;
  int top_k = 2;  // the paper evaluates top-2 routing
};

/// One token's routing decision.
struct TokenRoute {
  std::vector<int> experts;    // top_k expert ids, descending gate score
  std::vector<float> weights;  // softmax-normalized combine weights
};

/// Dispatch plan for one source GPU's local tokens.
struct DispatchPlan {
  /// counts[e] = number of (token, expert) assignments to expert e.
  std::vector<std::int64_t> counts;
  /// token ids grouped by destination expert (concatenated in expert order);
  /// a token appears once per selected expert.
  std::vector<int> order;
  /// Offset of expert e's segment within `order`.
  std::vector<std::int64_t> offsets;
};

class Router {
 public:
  Router(const RoutingConfig& cfg, Rng& rng);

  const RoutingConfig& config() const { return cfg_; }
  std::span<const float> gate_weights() const {
    return std::span<const float>(gate_w_);
  }

  /// Routes one token activation (length d_model).
  TokenRoute route(std::span<const float> token) const;

  /// Routes a batch laid out [tokens x d_model] and builds the dispatch
  /// plan (token order grouped by expert, per-expert counts).
  DispatchPlan plan(std::span<const float> tokens, int num_tokens) const;

  /// Flattened all_to_all_v counts for `num_sources` GPUs each contributing
  /// `plans[src]`: counts[src * num_experts + e] in *elements* given
  /// `elems_per_token` payload per routed token.
  static std::vector<std::int64_t> a2av_counts(
      const std::vector<DispatchPlan>& plans, int num_experts,
      std::int64_t elems_per_token);

 private:
  RoutingConfig cfg_;
  std::vector<float> gate_w_;  // [d_model x num_experts]
};

}  // namespace fcc::ops

#include "ops/moe_routing.h"

#include <algorithm>
#include <cmath>

namespace fcc::ops {

Router::Router(const RoutingConfig& cfg, Rng& rng) : cfg_(cfg) {
  FCC_CHECK(cfg.num_experts >= 1);
  FCC_CHECK(cfg.top_k >= 1 && cfg.top_k <= cfg.num_experts);
  FCC_CHECK(cfg.d_model >= 1);
  gate_w_.resize(static_cast<std::size_t>(cfg.d_model) *
                 static_cast<std::size_t>(cfg.num_experts));
  for (auto& w : gate_w_) {
    w = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
}

TokenRoute Router::route(std::span<const float> token) const {
  FCC_CHECK(static_cast<int>(token.size()) == cfg_.d_model);
  // Gate logits = token . W_g.
  std::vector<float> logits(static_cast<std::size_t>(cfg_.num_experts), 0.0f);
  for (int d = 0; d < cfg_.d_model; ++d) {
    const float x = token[static_cast<std::size_t>(d)];
    const auto* row =
        &gate_w_[static_cast<std::size_t>(d) * cfg_.num_experts];
    for (int e = 0; e < cfg_.num_experts; ++e) {
      logits[static_cast<std::size_t>(e)] += x * row[e];
    }
  }
  // Top-k by logit (stable order for determinism).
  std::vector<int> idx(static_cast<std::size_t>(cfg_.num_experts));
  for (int e = 0; e < cfg_.num_experts; ++e) idx[static_cast<std::size_t>(e)] = e;
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return logits[static_cast<std::size_t>(a)] >
           logits[static_cast<std::size_t>(b)];
  });
  TokenRoute r;
  r.experts.assign(idx.begin(), idx.begin() + cfg_.top_k);
  // Softmax over the selected logits (Switch/GShard convention).
  float max_logit = logits[static_cast<std::size_t>(r.experts[0])];
  float denom = 0;
  std::vector<float> exps;
  for (int e : r.experts) {
    const float v =
        std::exp(logits[static_cast<std::size_t>(e)] - max_logit);
    exps.push_back(v);
    denom += v;
  }
  for (float v : exps) r.weights.push_back(v / denom);
  return r;
}

DispatchPlan Router::plan(std::span<const float> tokens,
                          int num_tokens) const {
  FCC_CHECK(static_cast<std::size_t>(num_tokens) *
                static_cast<std::size_t>(cfg_.d_model) ==
            tokens.size());
  DispatchPlan p;
  p.counts.assign(static_cast<std::size_t>(cfg_.num_experts), 0);
  std::vector<std::vector<int>> buckets(
      static_cast<std::size_t>(cfg_.num_experts));
  for (int t = 0; t < num_tokens; ++t) {
    const auto route_t = route(tokens.subspan(
        static_cast<std::size_t>(t) * static_cast<std::size_t>(cfg_.d_model),
        static_cast<std::size_t>(cfg_.d_model)));
    for (int e : route_t.experts) {
      buckets[static_cast<std::size_t>(e)].push_back(t);
      ++p.counts[static_cast<std::size_t>(e)];
    }
  }
  p.offsets.assign(static_cast<std::size_t>(cfg_.num_experts), 0);
  std::int64_t off = 0;
  for (int e = 0; e < cfg_.num_experts; ++e) {
    p.offsets[static_cast<std::size_t>(e)] = off;
    for (int t : buckets[static_cast<std::size_t>(e)]) p.order.push_back(t);
    off += static_cast<std::int64_t>(buckets[static_cast<std::size_t>(e)].size());
  }
  return p;
}

std::vector<std::int64_t> Router::a2av_counts(
    const std::vector<DispatchPlan>& plans, int num_experts,
    std::int64_t elems_per_token) {
  const int n = static_cast<int>(plans.size());
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(num_experts), 0);
  for (int src = 0; src < n; ++src) {
    FCC_CHECK(static_cast<int>(plans[static_cast<std::size_t>(src)]
                                   .counts.size()) == num_experts);
    for (int e = 0; e < num_experts; ++e) {
      counts[static_cast<std::size_t>(src * num_experts + e)] =
          plans[static_cast<std::size_t>(src)]
              .counts[static_cast<std::size_t>(e)] *
          elems_per_token;
    }
  }
  return counts;
}

}  // namespace fcc::ops

#include "ops/embedding.h"

namespace fcc::ops {

EmbeddingTables EmbeddingTables::random(const EmbeddingConfig& cfg, Rng& rng) {
  FCC_CHECK(cfg.num_tables >= 1);
  FCC_CHECK(cfg.rows_per_table >= 1);
  FCC_CHECK(cfg.dim >= 1);
  EmbeddingTables out;
  out.tables_.resize(static_cast<std::size_t>(cfg.num_tables));
  for (auto& t : out.tables_) {
    t.resize(static_cast<std::size_t>(cfg.rows_per_table) *
             static_cast<std::size_t>(cfg.dim));
    for (auto& w : t) {
      w = static_cast<float>(rng.next_double(-1.0, 1.0));
    }
  }
  return out;
}

EmbeddingBatch EmbeddingBatch::uniform(const EmbeddingConfig& cfg, int batch,
                                       Rng& rng) {
  FCC_CHECK(batch >= 1);
  EmbeddingBatch out;
  out.batch_ = batch;
  out.indices_.resize(static_cast<std::size_t>(cfg.num_tables));
  for (auto& ti : out.indices_) {
    ti.resize(static_cast<std::size_t>(batch) *
              static_cast<std::size_t>(cfg.pooling));
    for (auto& ix : ti) {
      ix = static_cast<std::int32_t>(rng.next_below(
          static_cast<std::uint64_t>(cfg.rows_per_table)));
    }
  }
  return out;
}

EmbeddingBatch EmbeddingBatch::zipf(const EmbeddingConfig& cfg, int batch,
                                    double theta, Rng& rng) {
  FCC_CHECK(batch >= 1);
  EmbeddingBatch out;
  out.batch_ = batch;
  out.indices_.resize(static_cast<std::size_t>(cfg.num_tables));
  for (auto& ti : out.indices_) {
    ZipfSampler z(static_cast<std::uint64_t>(cfg.rows_per_table), theta,
                  rng.fork());
    ti.resize(static_cast<std::size_t>(batch) *
              static_cast<std::size_t>(cfg.pooling));
    for (auto& ix : ti) {
      ix = static_cast<std::int32_t>(z.next());
    }
  }
  return out;
}

void pool_reference(const EmbeddingConfig& cfg, const EmbeddingTables& tables,
                    const EmbeddingBatch& batch, int t, int b,
                    std::span<float> out) {
  FCC_CHECK(static_cast<int>(out.size()) == cfg.dim);
  FCC_CHECK(b >= 0 && b < batch.batch());
  const auto weights = tables.table(t);
  const auto indices = batch.table_indices(t);
  for (int d = 0; d < cfg.dim; ++d) out[static_cast<std::size_t>(d)] = 0.0f;
  for (int j = 0; j < cfg.pooling; ++j) {
    const auto row = static_cast<std::size_t>(
        indices[static_cast<std::size_t>(b) * cfg.pooling + j]);
    const auto* src = &weights[row * static_cast<std::size_t>(cfg.dim)];
    for (int d = 0; d < cfg.dim; ++d) {
      out[static_cast<std::size_t>(d)] += src[d];
    }
  }
  if (cfg.mode == PoolingMode::kMean && cfg.pooling > 0) {
    const float inv = 1.0f / static_cast<float>(cfg.pooling);
    for (int d = 0; d < cfg.dim; ++d) out[static_cast<std::size_t>(d)] *= inv;
  }
}

std::vector<float> pool_all_reference(const EmbeddingConfig& cfg,
                                      const EmbeddingTables& tables,
                                      const EmbeddingBatch& batch) {
  std::vector<float> out(static_cast<std::size_t>(batch.batch()) *
                         static_cast<std::size_t>(cfg.num_tables) *
                         static_cast<std::size_t>(cfg.dim));
  for (int b = 0; b < batch.batch(); ++b) {
    for (int t = 0; t < cfg.num_tables; ++t) {
      const std::size_t off =
          (static_cast<std::size_t>(b) * cfg.num_tables + t) *
          static_cast<std::size_t>(cfg.dim);
      pool_reference(cfg, tables, batch, t, b,
                     std::span<float>(&out[off],
                                      static_cast<std::size_t>(cfg.dim)));
    }
  }
  return out;
}

}  // namespace fcc::ops

// Embedding tables and pooled-embedding (EmbeddingBag sum/mean) compute.
//
// Functional storage is optional: large timing-only sweeps keep only the
// shape metadata, tests and examples carry real weights and verify values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fcc::ops {

enum class PoolingMode { kSum, kMean };

struct EmbeddingConfig {
  int num_tables = 8;       // tables held by one GPU
  int rows_per_table = 1000;
  int dim = 256;            // embedding dimension
  int pooling = 64;         // indices pooled per output vector
  PoolingMode mode = PoolingMode::kSum;
};

/// Weights for one GPU's local tables. weights(t)[r*dim + d].
class EmbeddingTables {
 public:
  EmbeddingTables() = default;

  static EmbeddingTables random(const EmbeddingConfig& cfg, Rng& rng);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  std::span<const float> table(int t) const {
    return std::span<const float>(tables_.at(static_cast<std::size_t>(t)));
  }

 private:
  std::vector<std::vector<float>> tables_;
};

/// Categorical indices for one GPU's tables over a batch:
/// indices(t)[b * pooling + j]. The generator mirrors the public DLRM data
/// generator: uniform or zipf-skewed category popularity.
class EmbeddingBatch {
 public:
  EmbeddingBatch() = default;

  static EmbeddingBatch uniform(const EmbeddingConfig& cfg, int batch,
                                Rng& rng);
  static EmbeddingBatch zipf(const EmbeddingConfig& cfg, int batch,
                             double theta, Rng& rng);

  int batch() const { return batch_; }
  std::span<const std::int32_t> table_indices(int t) const {
    return std::span<const std::int32_t>(
        indices_.at(static_cast<std::size_t>(t)));
  }

 private:
  int batch_ = 0;
  std::vector<std::vector<std::int32_t>> indices_;
};

/// Reference pooling of one output vector (table t, sample b) into `out`
/// (length cfg.dim). This is the numerics the simulated kernels must match.
void pool_reference(const EmbeddingConfig& cfg, const EmbeddingTables& tables,
                    const EmbeddingBatch& batch, int t, int b,
                    std::span<float> out);

/// Full reference: out[(b * num_tables + t) * dim + d] for the whole batch.
std::vector<float> pool_all_reference(const EmbeddingConfig& cfg,
                                      const EmbeddingTables& tables,
                                      const EmbeddingBatch& batch);

}  // namespace fcc::ops

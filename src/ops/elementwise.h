// Elementwise host kernels used by the MLP layers and tests.
#pragma once

#include <cmath>
#include <span>

namespace fcc::ops {

inline void relu_inplace(std::span<float> x) {
  for (auto& v : x) v = v > 0.0f ? v : 0.0f;
}

inline void gelu_inplace(std::span<float> x) {
  for (auto& v : x) {
    const float t = 0.7978845608f * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(t));
  }
}

inline void add_inplace(std::span<float> x, std::span<const float> y) {
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) x[i] += y[i];
}

inline void scale_inplace(std::span<float> x, float s) {
  for (auto& v : x) v *= s;
}

}  // namespace fcc::ops

// Matrix-matrix multiply with Triton-style 2D output tiling.
//
// C (m x n) = A (m x k) * B (k x n), row major. Logical WGs own BM x BN
// output tiles; the fused GEMM+All-to-All operator ships whole tiles to
// their destination GPU as soon as they finish.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"

namespace fcc::ops {

struct GemmShape {
  int m = 0, n = 0, k = 0;
  int block_m = 64, block_n = 64;

  int tiles_m() const { return (m + block_m - 1) / block_m; }
  int tiles_n() const { return (n + block_n - 1) / block_n; }
  int num_tiles() const { return tiles_m() * tiles_n(); }
  int tile_row(int t) const { return t / tiles_n(); }
  int tile_col(int t) const { return t % tiles_n(); }
  int row_begin(int t) const { return tile_row(t) * block_m; }
  int row_end(int t) const {
    const int e = row_begin(t) + block_m;
    return e < m ? e : m;
  }
  int col_begin(int t) const { return tile_col(t) * block_n; }
  int col_end(int t) const {
    const int e = col_begin(t) + block_n;
    return e < n ? e : n;
  }
};

/// Reference full C = A * B.
std::vector<float> gemm_reference(const GemmShape& s,
                                  std::span<const float> a,
                                  std::span<const float> b);

/// One output tile, written at tile-local row-major layout into `out`
/// (rows = row_end-row_begin, cols = col_end-col_begin).
void gemm_tile(const GemmShape& s, std::span<const float> a,
               std::span<const float> b, int tile, std::span<float> out);

}  // namespace fcc::ops

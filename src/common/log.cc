#include "common/log.h"

#include <atomic>

namespace fcc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

}  // namespace fcc

// Lightweight invariant-checking macros.
//
// FCC_CHECK is always on (simulation correctness depends on these holding;
// the cost is negligible next to event processing). FCC_DCHECK compiles out
// in release builds and is used on hot per-event paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fcc::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace fcc::detail

#define FCC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::fcc::detail::check_failed(__FILE__, __LINE__, #expr, "");    \
    }                                                                \
  } while (0)

#define FCC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream fcc_check_os_;                              \
      fcc_check_os_ << msg;                                          \
      ::fcc::detail::check_failed(__FILE__, __LINE__, #expr,         \
                                  fcc_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define FCC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define FCC_DCHECK(expr) FCC_CHECK(expr)
#endif

// Streaming statistics accumulators for experiment reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace fcc {

/// Welford mean/variance accumulator plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0, m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; supports exact percentiles. Used for per-WG latency
/// distributions in the profiling benches.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double percentile(double p) {
    FCC_CHECK(!xs_.empty());
    FCC_CHECK(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double mean() const {
    if (xs_.empty()) return 0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace fcc

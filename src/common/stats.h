// Streaming statistics accumulators for experiment reporting.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace fcc {

/// Welford mean/variance accumulator plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0, m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; supports exact percentiles. Used for per-WG latency
/// distributions in the profiling benches.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double percentile(double p) {
    FCC_CHECK(!xs_.empty());
    FCC_CHECK(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double mean() const {
    if (xs_.empty()) return 0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Streaming percentile sketch over non-negative integer samples
/// (latencies in ns). HdrHistogram-style log-linear bins: each power-of-two
/// octave is split into 2^kSubBits linear sub-buckets, so any reported
/// quantile is within a 2^-kSubBits (~3%) relative error of the exact
/// sample while add() stays O(1), memory stays O(log range), and — unlike
/// SampleSet — a million-request serving run never stores per-sample state.
/// Deterministic by construction (pure integer bin math, no sampling), so
/// sketches from identical runs compare equal (operator==); merge() folds
/// another sketch in for cross-class aggregation.
class PercentileSketch {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave

  void add(std::int64_t v) {
    FCC_DCHECK(v >= 0);
    const std::size_t b = bucket_of(static_cast<std::uint64_t>(v));
    if (b >= bins_.size()) bins_.resize(b + 1, 0);
    ++bins_[b];
    ++count_;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }

  /// Value at percentile p (nearest-rank over the bins; each bin reports
  /// its upper edge, clamped to the true observed min/max so p=0 / p=100
  /// are exact). Requires a non-empty sketch.
  std::int64_t percentile(double p) const {
    FCC_CHECK(!empty());
    FCC_CHECK(p >= 0.0 && p <= 100.0);
    const auto rank = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < bins_.size(); ++b) {
      seen += bins_[b];
      if (seen >= rank) {
        return std::clamp(bucket_upper(b), min_, max_);
      }
    }
    return max_;
  }

  void merge(const PercentileSketch& o) {
    if (o.empty()) return;
    if (o.bins_.size() > bins_.size()) bins_.resize(o.bins_.size(), 0);
    for (std::size_t b = 0; b < o.bins_.size(); ++b) bins_[b] += o.bins_[b];
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  /// Bit-identical state comparison (determinism regressions).
  bool operator==(const PercentileSketch&) const = default;

 private:
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;

  /// Values below 2*kSub map exactly; above, octave `msb` keeps the top
  /// kSubBits+1 significant bits (indices stay contiguous across the
  /// octave boundary: v = 2*kSub lands exactly at bucket 2*kSub).
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(shift + 1) << kSubBits) +
        ((v >> shift) - kSub));
  }

  /// Largest value mapping to bucket `b` (the bin's upper edge).
  static std::int64_t bucket_upper(std::size_t b) {
    if (b < 2 * kSub) return static_cast<std::int64_t>(b);
    const int shift = static_cast<int>(b >> kSubBits) - 1;
    const std::uint64_t base = (kSub + (b & (kSub - 1))) << shift;
    return static_cast<std::int64_t>(base + ((std::uint64_t{1} << shift) - 1));
  }

  std::vector<std::int64_t> bins_;
  std::int64_t count_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

}  // namespace fcc

// ASCII table printer for bench output.
//
// Benches print paper-style result tables; keeping the formatter here means
// every figure's output looks the same and is easy to diff/grep.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace fcc {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    FCC_CHECK_MSG(cells.size() == headers_.size(),
                  "row width " << cells.size() << " != header width "
                               << headers_.size());
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with the given precision; convenience for callers.
  static std::string fmt(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
    }
    auto rule = [&] {
      os << "+";
      for (auto w : widths) os << std::string(w + 2, '-') << "+";
      os << "\n";
    };
    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << " " << std::left << std::setw(static_cast<int>(widths[c]))
           << cells[c] << " |";
      }
      os << "\n";
    };
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fcc

// CSV writer for bench results (machine-readable companion to the ASCII
// tables; EXPERIMENTS.md references these files).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace fcc {

class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers)
      : out_(path), width_(headers.size()) {
    FCC_CHECK_MSG(out_.good(), "cannot open csv file " << path);
    write_row_impl(headers);
  }

  void write_row(const std::vector<std::string>& cells) {
    FCC_CHECK(cells.size() == width_);
    write_row_impl(cells);
  }

  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> cells;
    (cells.push_back(to_cell(vals)), ...);
    write_row(cells);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  void write_row_impl(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ",";
      out_ << cells[i];
    }
    out_ << "\n";
  }

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace fcc

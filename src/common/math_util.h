// Small integer/float helpers used across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace fcc {

template <typename T>
constexpr T ceil_div(T a, T b) {
  FCC_DCHECK(b > 0);
  return (a + b - 1) / b;
}

template <typename T>
constexpr T align_up(T v, T alignment) {
  FCC_DCHECK(alignment > 0);
  return ceil_div(v, alignment) * alignment;
}

template <typename T>
constexpr bool is_pow2(T v) {
  return v > 0 && (v & (v - 1)) == 0;
}

/// Number of set bits in a 64-bit mask (used by WG-done bitmask logic).
constexpr int popcount64(std::uint64_t v) {
  int c = 0;
  while (v) {
    v &= v - 1;
    ++c;
  }
  return c;
}

/// Relative difference |a-b| / max(|a|,|b|,eps); convenient for tolerant
/// float comparison in tests and experiment reports.
inline double rel_diff(double a, double b, double eps = 1e-12) {
  const double denom = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / denom;
}

}  // namespace fcc

// Minimal leveled logger.
//
// Logging is for humans debugging the simulator; benches and tests keep the
// default level at Warn so output stays parseable.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace fcc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level) {
    os_ << "[" << name(level) << "] " << tag << ": ";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) {
      os_ << "\n";
      std::cerr << os_.str();
    }
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  static constexpr std::string_view name(LogLevel l) {
    switch (l) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      default: return "?";
    }
  }

  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

#define FCC_LOG(level, tag)                                       \
  if (::fcc::LogLevel::level < ::fcc::log_level()) {              \
  } else                                                          \
    ::fcc::detail::LogLine(::fcc::LogLevel::level, (tag))

}  // namespace fcc

// Minimal two-level JSON record for host-performance numbers.
//
// The benches append machine-readable throughput records (events/sec,
// items/sec, wall seconds per sweep) to one shared file —
// bench_results/host_perf.json — so the repo has a perf trajectory to
// compare PRs against. The shape is fixed: an object of sections, each a
// flat object of numeric metrics:
//
//   { "bench_fig10_gemm_alltoall": { "wall_seconds": 0.41, ... }, ... }
//
// Each bench process read-modify-writes only its own sections, so running
// benches in any order accumulates one coherent file. The parser accepts
// exactly the subset the writer emits (plus whitespace); a malformed or
// foreign file is treated as empty rather than an error, so a stale or
// hand-edited file can never break a bench run.
#pragma once

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace fcc {

class PerfJson {
 public:
  void set(const std::string& section, const std::string& key, double value) {
    data_[section][key] = value;
  }

  bool has(const std::string& section) const {
    return data_.find(section) != data_.end();
  }

  double get(const std::string& section, const std::string& key,
             double fallback = 0.0) const {
    const auto s = data_.find(section);
    if (s == data_.end()) return fallback;
    const auto k = s->second.find(key);
    return k == s->second.end() ? fallback : k->second;
  }

  std::size_t num_sections() const { return data_.size(); }

  /// Overlays `other`'s metrics onto this record (`other` wins per key).
  void merge_from(const PerfJson& other) {
    for (const auto& [section, metrics] : other.data_) {
      auto& dst = data_[section];
      for (const auto& [key, value] : metrics) dst[key] = value;
    }
  }

  /// Merges the sections of `path` into this record (existing sections win
  /// over file sections only per overwritten key). Returns false — leaving
  /// this record unchanged — if the file is missing or malformed.
  bool load(const std::string& path) {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
  }

  void save(const std::string& path) const {
    std::ofstream out(path);
    out << str();
  }

  std::string str() const {
    std::ostringstream os;
    os.precision(15);
    os << "{";
    bool first_s = true;
    for (const auto& [section, metrics] : data_) {
      os << (first_s ? "\n" : ",\n") << "  \"" << section << "\": {";
      first_s = false;
      bool first_k = true;
      for (const auto& [key, value] : metrics) {
        os << (first_k ? "\n" : ",\n") << "    \"" << key << "\": " << value;
        first_k = false;
      }
      os << "\n  }";
    }
    os << "\n}\n";
    return os.str();
  }

  /// Parses the writer's subset of JSON, merging into this record. On any
  /// syntax error the record keeps only what it held before the call.
  bool parse(const std::string& text) {
    Cursor c{text, 0};
    std::map<std::string, std::map<std::string, double>> parsed;
    if (!parse_object(c, parsed)) return false;
    c.skip_ws();
    if (c.pos != text.size()) return false;
    for (auto& [section, metrics] : parsed) {
      auto& dst = data_[section];
      for (auto& [key, value] : metrics) dst[key] = value;
    }
    return true;
  }

 private:
  struct Cursor {
    const std::string& s;
    std::size_t pos;

    void skip_ws() {
      while (pos < s.size() &&
             std::isspace(static_cast<unsigned char>(s[pos]))) {
        ++pos;
      }
    }
    bool eat(char ch) {
      skip_ws();
      if (pos >= s.size() || s[pos] != ch) return false;
      ++pos;
      return true;
    }
    bool peek(char ch) {
      skip_ws();
      return pos < s.size() && s[pos] == ch;
    }
  };

  static bool parse_string(Cursor& c, std::string& out) {
    if (!c.eat('"')) return false;
    out.clear();
    while (c.pos < c.s.size() && c.s[c.pos] != '"') {
      char ch = c.s[c.pos++];
      if (ch == '\\') {
        if (c.pos >= c.s.size()) return false;
        ch = c.s[c.pos++];
      }
      out.push_back(ch);
    }
    return c.eat('"');
  }

  static bool parse_number(Cursor& c, double& out) {
    c.skip_ws();
    const char* begin = c.s.c_str() + c.pos;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    c.pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  static bool parse_metrics(Cursor& c, std::map<std::string, double>& out) {
    if (!c.eat('{')) return false;
    if (c.peek('}')) return c.eat('}');
    do {
      std::string key;
      double value = 0;
      if (!parse_string(c, key) || !c.eat(':') || !parse_number(c, value)) {
        return false;
      }
      out[key] = value;
    } while (c.eat(','));
    return c.eat('}');
  }

  static bool parse_object(
      Cursor& c, std::map<std::string, std::map<std::string, double>>& out) {
    if (!c.eat('{')) return false;
    if (c.peek('}')) return c.eat('}');
    do {
      std::string section;
      if (!parse_string(c, section) || !c.eat(':') ||
          !parse_metrics(c, out[section])) {
        return false;
      }
    } while (c.eat(','));
    return c.eat('}');
  }

  std::map<std::string, std::map<std::string, double>> data_;
};

}  // namespace fcc

// Core scalar types shared across the FCC library.
//
// All simulated time is kept in integer nanoseconds (`TimeNs`) so event
// ordering is exact; derived quantities (bandwidth, rates) are computed in
// double and rounded once at scheduling boundaries.
#pragma once

#include <cstdint>
#include <limits>

namespace fcc {

/// Virtual simulation time in nanoseconds.
using TimeNs = std::int64_t;

/// Sentinel for "never" / unset timestamps.
inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

/// Byte counts for buffers and transfers.
using Bytes = std::int64_t;

/// Identifier of a processing element (one GPU) in a job, dense from 0.
using PeId = int;

/// Identifier of a node (host); each node holds one or more PEs.
using NodeId = int;

inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Converts a GB/s figure (decimal gigabytes, as vendors quote link specs)
/// to bytes per nanosecond, the unit the link models use internally.
constexpr double gb_per_s_to_bytes_per_ns(double gb_per_s) {
  return gb_per_s * 1e9 / 1e9;  // 1 GB/s == 1 byte/ns
}

/// Converts Gb/s (gigabits, as network specs quote) to bytes per nanosecond.
constexpr double gbit_per_s_to_bytes_per_ns(double gbit_per_s) {
  return gbit_per_s / 8.0;
}

constexpr TimeNs us_to_ns(double us) { return static_cast<TimeNs>(us * 1e3); }
constexpr TimeNs ms_to_ns(double ms) { return static_cast<TimeNs>(ms * 1e6); }
constexpr double ns_to_us(TimeNs ns) { return static_cast<double>(ns) / 1e3; }
constexpr double ns_to_ms(TimeNs ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace fcc

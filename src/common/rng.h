// Deterministic pseudo-random generators.
//
// SplitMix64 seeds Xoshiro256**; both are tiny, fast, and give the library a
// stable stream independent of the standard library implementation, which
// matters because experiment outputs must be bit-reproducible across
// platforms and toolchains.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace fcc {

/// SplitMix64: used for seeding and cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library-wide PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    FCC_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    FCC_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + next_double() * (hi - lo);
  }

  /// Derives an independent child stream (for per-entity RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xa02b'dbf7'bb3c'0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Zipf(θ) sampler over [0, n) using the Gray/Jain approximation; used by the
/// DLRM data generator to model skewed categorical-feature popularity.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta, Rng rng)
      : n_(n), theta_(theta), rng_(rng) {
    FCC_CHECK(n >= 1);
    zeta2_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    // Exact for small n; sampled tail approximation keeps construction cheap
    // for the multi-million-row tables used in benches.
    const std::uint64_t exact = n < 10000 ? n : 10000;
    for (std::uint64_t i = 1; i <= exact; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (exact < n) {
      // Integral approximation of the remaining tail.
      const double a = static_cast<double>(exact);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Rng rng_;
  double zeta2_ = 0, zetan_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace fcc

#include "gpu/machine.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>

namespace fcc::gpu {

namespace {

/// Default node→shard map. Torus grids are cut into rectangular tiles
/// (minimal cross-shard surface, and tiles keep neighbor traffic — the
/// dominant pattern on a torus — inside one shard) when a tile factorization
/// sx*sy == num_shards divides the dims; anything else gets contiguous
/// balanced node blocks.
std::vector<int> default_node_shard(const Machine::Config& config) {
  const int nodes = config.num_nodes;
  const int num_shards = config.num_shards;
  std::vector<int> shard(static_cast<std::size_t>(nodes), 0);
  if (num_shards <= 1) return shard;
  if (config.topology.kind == hw::TopologySpec::Kind::kTorus2D) {
    const int dx = config.topology.torus.dim_x;
    const int dy = config.topology.torus.dim_y;
    int best_sx = -1;
    int best_surface = 0;
    for (int sx = 1; sx <= num_shards; ++sx) {
      if (num_shards % sx != 0) continue;
      const int sy = num_shards / sx;
      if (dx % sx != 0 || dy % sy != 0) continue;
      const int surface = dx / sx + dy / sy;  // half the tile perimeter
      if (best_sx < 0 || surface < best_surface) {
        best_sx = sx;
        best_surface = surface;
      }
    }
    if (best_sx > 0) {
      const int sy = num_shards / best_sx;
      const int tile_x = dx / best_sx;
      const int tile_y = dy / sy;
      for (NodeId n = 0; n < nodes; ++n) {
        const int x = n % dx;
        const int y = n / dx;
        shard[static_cast<std::size_t>(n)] =
            (y / tile_y) * best_sx + x / tile_x;
      }
      return shard;
    }
  }
  for (NodeId n = 0; n < nodes; ++n) {
    shard[static_cast<std::size_t>(n)] = static_cast<int>(
        static_cast<std::int64_t>(n) * num_shards / nodes);
  }
  return shard;
}

}  // namespace

Machine::Machine(const Config& config)
    : config_(config), sharded_(config.num_shards) {
  for (int s = 0; s < sharded_.num_shards(); ++s) {
    traces_.push_back(std::make_unique<sim::Trace>(config.collect_trace));
  }
  FCC_CHECK_MSG(config.num_nodes >= 1,
                "Machine::Config: num_nodes must be >= 1, got "
                    << config.num_nodes);
  FCC_CHECK_MSG(config.gpus_per_node >= 1,
                "Machine::Config: gpus_per_node must be >= 1, got "
                    << config.gpus_per_node);
  FCC_CHECK_MSG(config.gpu.num_cus >= 1 && config.gpu.max_wgs_per_cu >= 1,
                "Machine::Config: GPU must have positive CU/WG-slot counts");
  FCC_CHECK_MSG(config.gpu.hbm_bytes_per_ns > 0,
                "Machine::Config: HBM bandwidth must be positive, got "
                    << config.gpu.hbm_bytes_per_ns);
  FCC_CHECK_MSG(config.gpu.fp32_flops_per_ns > 0,
                "Machine::Config: ALU throughput must be positive, got "
                    << config.gpu.fp32_flops_per_ns);
  FCC_CHECK_MSG(config.num_shards <= config.num_nodes,
                "Machine::Config: num_shards ("
                    << config.num_shards << ") exceeds num_nodes ("
                    << config.num_nodes
                    << "); a node may not split across shards");
  const int pes = config.num_nodes * config.gpus_per_node;

  // PE→shard partition: explicit map (validated) or the default one.
  if (!config.pe_shard.empty()) {
    FCC_CHECK_MSG(static_cast<int>(config.pe_shard.size()) == pes,
                  "Machine::Config: pe_shard has " << config.pe_shard.size()
                                                   << " entries for " << pes
                                                   << " PEs");
    for (PeId pe = 0; pe < pes; ++pe) {
      const int s = config.pe_shard[static_cast<std::size_t>(pe)];
      FCC_CHECK_MSG(s >= 0 && s < config.num_shards,
                    "Machine::Config: pe_shard[" << pe << "] = " << s
                                                 << " out of range [0, "
                                                 << config.num_shards << ")");
      const PeId first = (pe / config.gpus_per_node) * config.gpus_per_node;
      FCC_CHECK_MSG(
          s == config.pe_shard[static_cast<std::size_t>(first)],
          "Machine::Config: pe_shard splits node "
              << pe / config.gpus_per_node << " across shards ("
              << config.pe_shard[static_cast<std::size_t>(first)] << " vs "
              << s << " at PE " << pe
              << "); intra-node fabric state is shard-owned");
    }
    pe_shard_ = config.pe_shard;
  } else {
    const std::vector<int> node_shard = default_node_shard(config);
    pe_shard_.resize(static_cast<std::size_t>(pes));
    for (PeId pe = 0; pe < pes; ++pe) {
      pe_shard_[static_cast<std::size_t>(pe)] =
          node_shard[static_cast<std::size_t>(pe / config.gpus_per_node)];
    }
  }

  // Fabric/NIC bandwidths are validated by the topology that actually
  // instantiates them (a torus never builds a NIC, a switched node never
  // reads FabricSpec), so an unused spec may legitimately be zeroed.
  devices_.reserve(pes);
  for (PeId pe = 0; pe < pes; ++pe) {
    devices_.push_back(
        std::make_unique<Device>(engine_of(pe), pe, config.gpu));
  }
  topology_ = hw::make_topology(config.topology, config.num_nodes,
                                config.gpus_per_node, config.fabric,
                                config.ib);

  if (is_sharded()) {
    defer_inter_node_ = !topology_->inter_node_state_src_local();
    std::vector<int> node_shard(static_cast<std::size_t>(config.num_nodes));
    for (NodeId n = 0; n < config.num_nodes; ++n) {
      // Deferred-reservation fabrics apply *every* inter-node delivery at a
      // window barrier (not just cross-shard ones), so their lookahead must
      // floor over all inter-node pairs: ask with each node as its own
      // shard. Eager fabrics only push cross-shard deliveries through the
      // mailbox and may use the (larger or equal) cross-shard floor.
      node_shard[static_cast<std::size_t>(n)] =
          defer_inter_node_ ? n : shard_of(n * config.gpus_per_node);
    }
    lookahead_ = topology_->min_inter_shard_latency(node_shard);
    FCC_CHECK_MSG(lookahead_ > 0,
                  "Machine::Config: cross-shard lookahead is zero "
                  "(zero-latency inter-node links); conservative sharded "
                  "execution needs a positive latency floor");
  }
}

sim::Trace Machine::merged_trace() const {
  sim::Trace merged(true);
  std::vector<sim::TraceSpan> spans;
  std::vector<sim::TraceInstant> instants;
  for (const auto& t : traces_) {
    spans.insert(spans.end(), t->spans().begin(), t->spans().end());
    instants.insert(instants.end(), t->instants().begin(),
                    t->instants().end());
  }
  std::sort(spans.begin(), spans.end(),
            [](const sim::TraceSpan& a, const sim::TraceSpan& b) {
              return std::tie(a.start, a.end, a.pid, a.tid, a.name) <
                     std::tie(b.start, b.end, b.pid, b.tid, b.name);
            });
  std::sort(instants.begin(), instants.end(),
            [](const sim::TraceInstant& a, const sim::TraceInstant& b) {
              return std::tie(a.at, a.pid, a.tid, a.name) <
                     std::tie(b.at, b.pid, b.tid, b.name);
            });
  for (auto& s : spans) merged.add_span(std::move(s));
  for (auto& i : instants) merged.add_instant(std::move(i));
  return merged;
}

void Machine::call_at_barrier(std::function<void()> fn) {
  FCC_CHECK_MSG(is_sharded(),
                "call_at_barrier is only meaningful on sharded machines");
  if (barrier_hook_ < 0) {
    // Registered lazily — on first use, i.e. after every World hook — so
    // deferred-fabric put replay always precedes collective sweeps at a
    // barrier, matching their relative issue order within a window.
    barrier_hook_ = sharded_.add_barrier_hook([this] {
      std::vector<std::function<void()>> q;
      q.swap(barrier_calls_);
      for (auto& call : q) call();
    });
  }
  barrier_calls_.push_back(std::move(fn));
}

sim::ShardedEngine::RunStats Machine::run_all(unsigned num_threads) {
  if (!is_sharded()) {
    sim::ShardedEngine::RunStats stats;
    stats.events = engine().run();
    stats.windows = 1;
    stats.threads = 1;
    last_run_stats_ = stats;
    return stats;
  }
  last_run_stats_ = sharded_.run(lookahead_, num_threads);
  return last_run_stats_;
}

TimeNs Machine::remote_write_time(PeId src, PeId dst, Bytes bytes,
                                  TimeNs ready) {
  FCC_CHECK(src >= 0 && src < num_pes());
  FCC_CHECK(dst >= 0 && dst < num_pes());
  if (src == dst) {
    // Self-PUT fast path: a local copy through HBM (read + write at the
    // device's aggregate bandwidth). It must never reserve fabric link
    // time — the bytes never leave the die.
    if (bytes == 0) return ready;
    const auto& dev = device(src);
    const double bw = dev.hbm().total_bandwidth(dev.spec().max_wg_slots());
    return ready +
           static_cast<TimeNs>(2.0 * static_cast<double>(bytes) / bw + 0.5);
  }
  return topology_->write_time(src, dst, bytes, ready);
}

}  // namespace fcc::gpu

#include "gpu/machine.h"

#include <string>

namespace fcc::gpu {

Machine::Machine(const Config& config)
    : config_(config), trace_(config.collect_trace) {
  FCC_CHECK_MSG(config.num_nodes >= 1,
                "Machine::Config: num_nodes must be >= 1, got "
                    << config.num_nodes);
  FCC_CHECK_MSG(config.gpus_per_node >= 1,
                "Machine::Config: gpus_per_node must be >= 1, got "
                    << config.gpus_per_node);
  FCC_CHECK_MSG(config.gpu.num_cus >= 1 && config.gpu.max_wgs_per_cu >= 1,
                "Machine::Config: GPU must have positive CU/WG-slot counts");
  FCC_CHECK_MSG(config.gpu.hbm_bytes_per_ns > 0,
                "Machine::Config: HBM bandwidth must be positive, got "
                    << config.gpu.hbm_bytes_per_ns);
  FCC_CHECK_MSG(config.gpu.fp32_flops_per_ns > 0,
                "Machine::Config: ALU throughput must be positive, got "
                    << config.gpu.fp32_flops_per_ns);
  // Fabric/NIC bandwidths are validated by the topology that actually
  // instantiates them (a torus never builds a NIC, a switched node never
  // reads FabricSpec), so an unused spec may legitimately be zeroed.
  const int pes = config.num_nodes * config.gpus_per_node;
  devices_.reserve(pes);
  for (PeId pe = 0; pe < pes; ++pe) {
    devices_.push_back(std::make_unique<Device>(engine_, pe, config.gpu));
  }
  topology_ = hw::make_topology(config.topology, config.num_nodes,
                                config.gpus_per_node, config.fabric,
                                config.ib);
}

TimeNs Machine::remote_write_time(PeId src, PeId dst, Bytes bytes,
                                  TimeNs ready) {
  FCC_CHECK(src >= 0 && src < num_pes());
  FCC_CHECK(dst >= 0 && dst < num_pes());
  if (src == dst) {
    // Self-PUT fast path: a local copy through HBM (read + write at the
    // device's aggregate bandwidth). It must never reserve fabric link
    // time — the bytes never leave the die.
    if (bytes == 0) return ready;
    const auto& dev = device(src);
    const double bw = dev.hbm().total_bandwidth(dev.spec().max_wg_slots());
    return ready +
           static_cast<TimeNs>(2.0 * static_cast<double>(bytes) / bw + 0.5);
  }
  return topology_->write_time(src, dst, bytes, ready);
}

}  // namespace fcc::gpu

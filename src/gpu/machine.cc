#include "gpu/machine.h"

#include <string>

namespace fcc::gpu {

Machine::Machine(const Config& config)
    : config_(config), trace_(config.collect_trace) {
  FCC_CHECK(config.num_nodes >= 1);
  FCC_CHECK(config.gpus_per_node >= 1);
  const int pes = config.num_nodes * config.gpus_per_node;
  devices_.reserve(pes);
  for (PeId pe = 0; pe < pes; ++pe) {
    devices_.push_back(std::make_unique<Device>(engine_, pe, config.gpu));
  }
  fabrics_.reserve(config.num_nodes);
  nics_.reserve(config.num_nodes);
  for (NodeId n = 0; n < config.num_nodes; ++n) {
    fabrics_.push_back(
        std::make_unique<hw::Fabric>(config.gpus_per_node, config.fabric));
    nics_.push_back(
        std::make_unique<hw::Nic>("node" + std::to_string(n), config.ib));
  }
}

TimeNs Machine::remote_write_time(PeId src, PeId dst, Bytes bytes,
                                  TimeNs ready) {
  FCC_CHECK(src >= 0 && src < num_pes());
  FCC_CHECK(dst >= 0 && dst < num_pes());
  if (src == dst) return ready;  // local store: charged as compute, not comm
  if (same_node(src, dst)) {
    return fabric(node_of(src))
        .transfer(local_index(src), local_index(dst), bytes, ready);
  }
  return nic(node_of(src)).post(ready, bytes);
}

}  // namespace fcc::gpu

// Machine: the full simulated platform (nodes x GPUs, interconnect).
//
// Owns the event engine, one Device per PE, and a pluggable hw::Topology
// that resolves every (src, dst) pair to a multi-hop route over shared
// FIFO links. The shmem and collective layers route every byte through
// `remote_write_time`, so all interconnect paths share one entry point;
// swapping the fabric (fully-connected, switched node, multi-rail NICs,
// 2D torus) is a Config change, not a Machine fork.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/device.h"
#include "hw/fabric.h"
#include "hw/gpu_spec.h"
#include "hw/nic.h"
#include "hw/topology.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace fcc::gpu {

class Machine {
 public:
  struct Config {
    int num_nodes = 1;
    int gpus_per_node = 4;
    hw::GpuSpec gpu;
    hw::FabricSpec fabric;
    hw::IbSpec ib;
    hw::TopologySpec topology;  // fully-connected by default
    bool collect_trace = false;
  };

  explicit Machine(const Config& config);

  sim::Engine& engine() { return engine_; }
  sim::Trace& trace() { return trace_; }
  const Config& config() const { return config_; }

  int num_pes() const { return static_cast<int>(devices_.size()); }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  Device& device(PeId pe) { return *devices_.at(pe); }
  const Device& device(PeId pe) const { return *devices_.at(pe); }

  NodeId node_of(PeId pe) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes());
    return pe / config_.gpus_per_node;
  }
  int local_index(PeId pe) const { return pe % config_.gpus_per_node; }
  PeId pe_of(NodeId node, int local) const {
    return node * config_.gpus_per_node + local;
  }
  bool same_node(PeId a, PeId b) const { return node_of(a) == node_of(b); }

  hw::Topology& topology() { return *topology_; }
  const hw::Topology& topology() const { return *topology_; }

  /// Class of the route a (src, dst) write resolves to; upper layers key
  /// issue costs and channel ordering off this instead of `same_node`.
  hw::RouteClass route_class(PeId src, PeId dst) const {
    return topology_->route_class(src, dst);
  }

  /// Per-node fabric/NIC of topologies that have them (the default
  /// fully-connected one does); throws for fabrics without the component.
  hw::Fabric& fabric(NodeId node) {
    hw::Fabric* f = topology_->node_fabric(node);
    FCC_CHECK_MSG(f != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node fabric");
    return *f;
  }
  hw::Nic& nic(NodeId node) {
    hw::Nic* n = topology_->node_nic(node);
    FCC_CHECK_MSG(n != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node NIC");
    return *n;
  }

  /// Time at which `bytes` written by `src` become visible at `dst`, when
  /// the write is issued at `ready`. Self-writes are an HBM-local copy
  /// (never fabric traffic); everything else reserves the resolved route's
  /// hop intervals through the topology.
  TimeNs remote_write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready);

 private:
  Config config_;
  sim::Engine engine_;
  sim::Trace trace_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<hw::Topology> topology_;
};

}  // namespace fcc::gpu

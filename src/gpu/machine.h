// Machine: the full simulated platform (nodes x GPUs, fabric, NICs).
//
// Owns the event engine, one Device per PE, one Fabric per node, and one
// NIC per node. The shmem and collective layers route every byte through
// `remote_write_time`, so intra- vs inter-node paths share one entry point.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/device.h"
#include "hw/fabric.h"
#include "hw/gpu_spec.h"
#include "hw/nic.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace fcc::gpu {

class Machine {
 public:
  struct Config {
    int num_nodes = 1;
    int gpus_per_node = 4;
    hw::GpuSpec gpu;
    hw::FabricSpec fabric;
    hw::IbSpec ib;
    bool collect_trace = false;
  };

  explicit Machine(const Config& config);

  sim::Engine& engine() { return engine_; }
  sim::Trace& trace() { return trace_; }
  const Config& config() const { return config_; }

  int num_pes() const { return static_cast<int>(devices_.size()); }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  Device& device(PeId pe) { return *devices_.at(pe); }
  const Device& device(PeId pe) const { return *devices_.at(pe); }

  NodeId node_of(PeId pe) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes());
    return pe / config_.gpus_per_node;
  }
  int local_index(PeId pe) const { return pe % config_.gpus_per_node; }
  PeId pe_of(NodeId node, int local) const {
    return node * config_.gpus_per_node + local;
  }
  bool same_node(PeId a, PeId b) const { return node_of(a) == node_of(b); }

  hw::Fabric& fabric(NodeId node) { return *fabrics_.at(node); }
  hw::Nic& nic(NodeId node) { return *nics_.at(node); }

  /// Time at which `bytes` written by `src` become visible at `dst`,
  /// when the write is issued at `ready`. Same-node writes ride the fabric;
  /// cross-node writes ride the source node's NIC.
  TimeNs remote_write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready);

 private:
  Config config_;
  sim::Engine engine_;
  sim::Trace trace_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<hw::Fabric>> fabrics_;
  std::vector<std::unique_ptr<hw::Nic>> nics_;
};

}  // namespace fcc::gpu

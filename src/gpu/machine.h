// Machine: the full simulated platform (nodes x GPUs, interconnect).
//
// Owns the event engine, one Device per PE, and a pluggable hw::Topology
// that resolves every (src, dst) pair to a multi-hop route over shared
// FIFO links. The shmem and collective layers route every byte through
// `remote_write_time`, so all interconnect paths share one entry point;
// swapping the fabric (fully-connected, switched node, multi-rail NICs,
// 2D torus) is a Config change, not a Machine fork.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/device.h"
#include "hw/fabric.h"
#include "hw/gpu_spec.h"
#include "hw/nic.h"
#include "hw/topology.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"
#include "sim/trace.h"

namespace fcc::gpu {

class Machine {
 public:
  struct Config {
    int num_nodes = 1;
    int gpus_per_node = 4;
    hw::GpuSpec gpu;
    hw::FabricSpec fabric;
    hw::IbSpec ib;
    hw::TopologySpec topology;  // fully-connected by default
    bool collect_trace = false;

    /// Engine shards for conservative-lookahead parallel simulation. 1 =
    /// the classic serial engine (every existing workload). With > 1, PEs
    /// are partitioned node-aligned across shards (torus configs get grid
    /// tiles, others contiguous node blocks) and the machine must be driven
    /// through `run_all` / `sharded()` rather than `engine().run()`.
    int num_shards = 1;

    /// Optional explicit PE→shard map (size num_pes). Must be node-aligned:
    /// intra-node fabric state (ports, switch links) is shard-owned, so a
    /// node split across shards is rejected. Empty = default partition.
    std::vector<int> pe_shard;
  };

  explicit Machine(const Config& config);

  /// The serial engine (shard 0). For num_shards == 1 machines this is the
  /// whole simulator, exactly as before sharding existed.
  sim::Engine& engine() { return sharded_.shard(0); }
  sim::Trace& trace() { return trace_; }
  const Config& config() const { return config_; }

  // --- sharding ----------------------------------------------------------

  int num_shards() const { return sharded_.num_shards(); }
  bool is_sharded() const { return sharded_.num_shards() > 1; }
  sim::ShardedEngine& sharded() { return sharded_; }
  int shard_of(PeId pe) const {
    return pe_shard_[static_cast<std::size_t>(pe)];
  }
  sim::Engine& engine_of(PeId pe) { return sharded_.shard(shard_of(pe)); }

  /// Conservative lookahead window (ns) for sharded runs; 0 when serial.
  TimeNs lookahead() const { return lookahead_; }

  /// True when inter-node route state is not source-local (torus ring
  /// links): the shmem world must defer inter-node reservations to window
  /// barriers instead of reserving eagerly at issue time.
  bool defer_inter_node() const { return defer_inter_node_; }

  /// Runs the simulation to completion: the windowed parallel protocol when
  /// sharded, a plain serial `engine().run()` otherwise (reported as one
  /// window). `num_threads` is only meaningful when sharded.
  sim::ShardedEngine::RunStats run_all(unsigned num_threads = 0);

  int num_pes() const { return static_cast<int>(devices_.size()); }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  Device& device(PeId pe) { return *devices_.at(pe); }
  const Device& device(PeId pe) const { return *devices_.at(pe); }

  NodeId node_of(PeId pe) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes());
    return pe / config_.gpus_per_node;
  }
  int local_index(PeId pe) const { return pe % config_.gpus_per_node; }
  PeId pe_of(NodeId node, int local) const {
    return node * config_.gpus_per_node + local;
  }
  bool same_node(PeId a, PeId b) const { return node_of(a) == node_of(b); }

  hw::Topology& topology() { return *topology_; }
  const hw::Topology& topology() const { return *topology_; }

  /// Class of the route a (src, dst) write resolves to; upper layers key
  /// issue costs and channel ordering off this instead of `same_node`.
  hw::RouteClass route_class(PeId src, PeId dst) const {
    return topology_->route_class(src, dst);
  }

  /// Per-node fabric/NIC of topologies that have them (the default
  /// fully-connected one does); throws for fabrics without the component.
  hw::Fabric& fabric(NodeId node) {
    hw::Fabric* f = topology_->node_fabric(node);
    FCC_CHECK_MSG(f != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node fabric");
    return *f;
  }
  hw::Nic& nic(NodeId node) {
    hw::Nic* n = topology_->node_nic(node);
    FCC_CHECK_MSG(n != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node NIC");
    return *n;
  }

  /// Time at which `bytes` written by `src` become visible at `dst`, when
  /// the write is issued at `ready`. Self-writes are an HBM-local copy
  /// (never fabric traffic); everything else reserves the resolved route's
  /// hop intervals through the topology.
  TimeNs remote_write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready);

 private:
  Config config_;
  sim::ShardedEngine sharded_;
  sim::Trace trace_;
  std::vector<int> pe_shard_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<hw::Topology> topology_;
  TimeNs lookahead_ = 0;
  bool defer_inter_node_ = false;
};

}  // namespace fcc::gpu

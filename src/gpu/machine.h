// Machine: the full simulated platform (nodes x GPUs, interconnect).
//
// Owns the event engine, one Device per PE, and a pluggable hw::Topology
// that resolves every (src, dst) pair to a multi-hop route over shared
// FIFO links. The shmem and collective layers route every byte through
// `remote_write_time`, so all interconnect paths share one entry point;
// swapping the fabric (fully-connected, switched node, multi-rail NICs,
// 2D torus) is a Config change, not a Machine fork.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/device.h"
#include "hw/fabric.h"
#include "hw/gpu_spec.h"
#include "hw/nic.h"
#include "hw/topology.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"
#include "sim/trace.h"

namespace fcc::gpu {

class Machine {
 public:
  struct Config {
    int num_nodes = 1;
    int gpus_per_node = 4;
    hw::GpuSpec gpu;
    hw::FabricSpec fabric;
    hw::IbSpec ib;
    hw::TopologySpec topology;  // fully-connected by default
    bool collect_trace = false;

    /// Engine shards for conservative-lookahead parallel simulation. 1 =
    /// the classic serial engine (every existing workload). With > 1, PEs
    /// are partitioned node-aligned across shards (torus configs get grid
    /// tiles, others contiguous node blocks) and the machine must be driven
    /// through `run_all` / `sharded()` rather than `engine().run()`.
    int num_shards = 1;

    /// Optional explicit PE→shard map (size num_pes). Must be node-aligned:
    /// intra-node fabric state (ports, switch links) is shard-owned, so a
    /// node split across shards is rejected. Empty = default partition.
    std::vector<int> pe_shard;
  };

  explicit Machine(const Config& config);

  /// The serial engine (shard 0). For num_shards == 1 machines this is the
  /// whole simulator, exactly as before sharding existed.
  sim::Engine& engine() { return sharded_.shard(0); }

  /// Shard 0's trace buffer — the whole trace on serial machines. Writers
  /// emitting from a PE's home shard must use trace_of(pe); readers of a
  /// sharded run want merged_trace().
  sim::Trace& trace() { return *traces_.front(); }
  /// The trace buffer owned by `pe`'s home shard: written only by that
  /// shard's thread, so per-PE kernel bodies may record without locks.
  sim::Trace& trace_of(PeId pe) {
    return *traces_[static_cast<std::size_t>(shard_of(pe))];
  }
  /// Deterministic merged view of every shard's buffer, spans sorted by
  /// (start, end, pid, tid, name) and instants by (at, pid, tid, name) —
  /// a canonical order independent of shard count (serial recording order
  /// is a different, equally valid order; compare merged to merged).
  sim::Trace merged_trace() const;
  const Config& config() const { return config_; }

  // --- sharding ----------------------------------------------------------

  int num_shards() const { return sharded_.num_shards(); }
  bool is_sharded() const { return sharded_.num_shards() > 1; }
  sim::ShardedEngine& sharded() { return sharded_; }
  int shard_of(PeId pe) const {
    return pe_shard_[static_cast<std::size_t>(pe)];
  }
  sim::Engine& engine_of(PeId pe) { return sharded_.shard(shard_of(pe)); }

  /// Conservative lookahead window (ns) for sharded runs; 0 when serial.
  TimeNs lookahead() const { return lookahead_; }

  /// True when inter-node route state is not source-local (torus ring
  /// links): the shmem world must defer inter-node reservations to window
  /// barriers instead of reserving eagerly at issue time.
  bool defer_inter_node() const { return defer_inter_node_; }

  /// Whether the fused-operator stack (FusedOp / Graph / serve) can run on
  /// this machine. Sharded machines spawn per-PE kernel bodies cross-shard
  /// at t0 + kernel_launch_ns, which must land beyond the conservative
  /// window — so the GPU's kernel-launch latency must cover the lookahead.
  /// Always true serial; true for every stock spec/fabric combination.
  bool supports_fused_ops() const {
    return !is_sharded() || config_.gpu.kernel_launch_ns >= lookahead_;
  }

  /// Enqueues a one-shot host callback run serially at the next window
  /// barrier, with every shard stopped (so it may touch any shard's state,
  /// including rewind-scheduling with Engine::schedule_at_unchecked).
  /// Callbacks run in enqueue order — shard 0's program order, since only
  /// the driver shard's thread enqueues. ccl::Communicator routes its
  /// link-horizon reservation sweeps through this on sharded machines.
  void call_at_barrier(std::function<void()> fn);

  /// Runs the simulation to completion: the windowed parallel protocol when
  /// sharded, a plain serial `engine().run()` otherwise (reported as one
  /// window). `num_threads` is only meaningful when sharded.
  sim::ShardedEngine::RunStats run_all(unsigned num_threads = 0);

  /// Stats of the most recent run_all(). Layers that drive the machine but
  /// swallow the return value (serve::Simulator, GraphExecutor) leave the
  /// breakdown readable here for scaling benches.
  const sim::ShardedEngine::RunStats& last_run_stats() const {
    return last_run_stats_;
  }

  int num_pes() const { return static_cast<int>(devices_.size()); }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  Device& device(PeId pe) { return *devices_.at(pe); }
  const Device& device(PeId pe) const { return *devices_.at(pe); }

  NodeId node_of(PeId pe) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes());
    return pe / config_.gpus_per_node;
  }
  int local_index(PeId pe) const { return pe % config_.gpus_per_node; }
  PeId pe_of(NodeId node, int local) const {
    return node * config_.gpus_per_node + local;
  }
  bool same_node(PeId a, PeId b) const { return node_of(a) == node_of(b); }

  hw::Topology& topology() { return *topology_; }
  const hw::Topology& topology() const { return *topology_; }

  /// Class of the route a (src, dst) write resolves to; upper layers key
  /// issue costs and channel ordering off this instead of `same_node`.
  hw::RouteClass route_class(PeId src, PeId dst) const {
    return topology_->route_class(src, dst);
  }

  /// Per-node fabric/NIC of topologies that have them (the default
  /// fully-connected one does); throws for fabrics without the component.
  hw::Fabric& fabric(NodeId node) {
    hw::Fabric* f = topology_->node_fabric(node);
    FCC_CHECK_MSG(f != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node fabric");
    return *f;
  }
  hw::Nic& nic(NodeId node) {
    hw::Nic* n = topology_->node_nic(node);
    FCC_CHECK_MSG(n != nullptr, "topology '" << topology_->kind_name()
                                             << "' has no per-node NIC");
    return *n;
  }

  /// Time at which `bytes` written by `src` become visible at `dst`, when
  /// the write is issued at `ready`. Self-writes are an HBM-local copy
  /// (never fabric traffic); everything else reserves the resolved route's
  /// hop intervals through the topology.
  TimeNs remote_write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready);

 private:
  Config config_;
  sim::ShardedEngine sharded_;
  /// One buffer per shard; index 0 is the serial/whole-machine trace.
  std::vector<std::unique_ptr<sim::Trace>> traces_;
  std::vector<int> pe_shard_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<hw::Topology> topology_;
  TimeNs lookahead_ = 0;
  bool defer_inter_node_ = false;
  /// One-shot barrier callbacks (call_at_barrier); appended by the driver
  /// shard's thread during a window, drained serially at the barrier.
  std::vector<std::function<void()>> barrier_calls_;
  int barrier_hook_ = -1;
  sim::ShardedEngine::RunStats last_run_stats_;
};

}  // namespace fcc::gpu

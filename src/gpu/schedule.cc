#include "gpu/schedule.h"

#include "common/check.h"

namespace fcc::gpu {

std::vector<int> make_schedule(int n, SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote) {
  FCC_CHECK(n >= 0);
  std::vector<int> order;
  order.reserve(n);
  switch (policy) {
    case SchedulePolicy::kOblivious:
      for (int i = 0; i < n; ++i) order.push_back(i);
      break;
    case SchedulePolicy::kCommAware:
      // Stable two-pass partition keeps intra-class order sequential, which
      // preserves slice contiguity (WGs of one slice stay adjacent).
      for (int i = 0; i < n; ++i) {
        if (is_remote(i)) order.push_back(i);
      }
      for (int i = 0; i < n; ++i) {
        if (!is_remote(i)) order.push_back(i);
      }
      break;
  }
  return order;
}

}  // namespace fcc::gpu

// Occupancy calculator (HIP occupancy-API analog).
//
// Active workgroups per CU are bounded by hardware WG slots and by register
// pressure. ROC_SHMEM contexts cost extra VGPRs, which is how the fused
// kernels end up at 87.5% of baseline occupancy (7 vs 8 WGs/CU), exactly
// the 12.5% loss the paper reports.
#pragma once

#include <algorithm>

#include "common/check.h"
#include "hw/gpu_spec.h"

namespace fcc::gpu {

struct KernelResources {
  int threads_per_wg = 256;
  int vgprs_per_thread = 128;
  int lds_bytes_per_wg = 0;  // 64 KB per CU when nonzero
};

/// Extra registers a WG-level ROC_SHMEM context consumes per thread.
inline constexpr int kShmemCtxVgprsPerThread = 16;

inline int wgs_per_cu(const hw::GpuSpec& spec, const KernelResources& r) {
  FCC_CHECK(r.threads_per_wg > 0);
  FCC_CHECK(r.vgprs_per_thread > 0);
  int limit = spec.max_wgs_per_cu;
  const int by_regs = spec.vgprs_per_cu / (r.vgprs_per_thread * r.threads_per_wg);
  limit = std::min(limit, by_regs);
  if (r.lds_bytes_per_wg > 0) {
    constexpr int kLdsPerCu = 64 * 1024;
    limit = std::min(limit, kLdsPerCu / r.lds_bytes_per_wg);
  }
  return std::max(0, limit);
}

/// Maximum concurrently active WGs on the whole device (grid-independent),
/// i.e. the persistent-kernel launch size the paper derives from the HIP
/// occupancy API.
inline int max_active_wgs(const hw::GpuSpec& spec, const KernelResources& r) {
  return wgs_per_cu(spec, r) * spec.num_cus;
}

inline double occupancy_fraction(const hw::GpuSpec& spec,
                                 const KernelResources& r) {
  return static_cast<double>(max_active_wgs(spec, r)) /
         static_cast<double>(spec.max_wg_slots());
}

}  // namespace fcc::gpu

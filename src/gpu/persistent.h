// Persistent-kernel runtime.
//
// A kernel is launched with a fixed, input-independent number of physical
// WG "slots" (at most the occupancy limit); each slot runs a task loop that
// claims logical workgroups from a shared, pre-ordered work queue — the
// persistent-threads style of [Gupta et al. 2012] the paper builds on.
// Regular (non-persistent) kernels use the same runtime: the hardware WG
// scheduler backfilling slots is timing-equivalent to dynamic claiming.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/co.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::gpu {

class KernelRun {
 public:
  /// Body of one logical workgroup, executed within a slot's task loop.
  using WgBody = std::function<sim::Co(int slot, int logical_wg)>;

  struct Params {
    std::string name = "kernel";
    int num_slots = 1;
    std::vector<int> order;  // execution order over logical WGs
    WgBody body;
    /// Task-loop bookkeeping per logical WG (index arithmetic, claim).
    TimeNs wg_dispatch_overhead_ns = 0;
    /// Static assignment: slot s executes order positions s, s+slots, ...
    /// instead of claiming dynamically. The fused GEMV+AllReduce operator
    /// needs this so "counterpart" physical WGs own the same tiles on every
    /// GPU (the paper's per-slot peer flags depend on it).
    bool static_assignment = false;
    /// Optional per-slot epilogue after the task loop drains (the fused
    /// kernels poll their subset of readiness flags here before exiting).
    std::function<sim::Co(int slot)> epilogue;
  };

  KernelRun(sim::Engine& engine, Params params)
      : engine_(engine),
        params_(std::move(params)),
        done_(engine, params_.num_slots) {
    FCC_CHECK(params_.num_slots >= 1);
    FCC_CHECK(params_.body != nullptr);
  }

  KernelRun(const KernelRun&) = delete;
  KernelRun& operator=(const KernelRun&) = delete;

  /// Slots start() will actually spawn for `num_slots` configured slots and
  /// `work` queued logical WGs — surplus slots retire immediately (their
  /// epilogue never runs). Exposed so launch wrappers can hand the real
  /// count to epilogues that stride flag subsets across slots.
  static int active_slot_count(int num_slots, int work) {
    return std::min(num_slots, std::max(work, 1));
  }

  /// Spawns the slot processes. Call exactly once.
  void start() {
    FCC_CHECK_MSG(!started_, "kernel started twice");
    started_ = true;
    const int work = static_cast<int>(params_.order.size());
    const int slots = active_slot_count(params_.num_slots, work);
    active_slots_ = slots;
    // JoinCounter was sized for num_slots; retire unused slots immediately.
    for (int s = slots; s < params_.num_slots; ++s) done_.arrive();
    for (int s = 0; s < slots; ++s) slot_proc(engine_, s);
  }

  /// Awaitable completion (all slots drained the work queue).
  auto wait() { return done_.wait(); }
  bool finished() const { return done_.is_done(); }

  /// Per-logical-WG completion timestamps (by logical id), for profiling.
  const std::vector<TimeNs>& finish_times() const { return finish_times_; }
  void record_finish_times(bool on) {
    record_times_ = on;
    if (on) finish_times_.assign(params_.order.size(), kTimeNever);
  }

  /// Slot that will execute order position `pos` (meaningful only with
  /// static assignment).
  int slot_of_position(int pos, int active_slots) const {
    return pos % active_slots;
  }

  /// Slots actually spawned (min of num_slots and work size); valid after
  /// start().
  int active_slots() const { return active_slots_; }

 private:
  sim::Task slot_proc(sim::Engine& engine, int slot) {
    if (params_.static_assignment) {
      for (std::size_t pos = static_cast<std::size_t>(slot);
           pos < params_.order.size();
           pos += static_cast<std::size_t>(active_slots_)) {
        co_await run_one(engine, slot, params_.order[pos]);
      }
    } else {
      for (;;) {
        if (cursor_ >= params_.order.size()) break;
        const int lw = params_.order[cursor_++];
        co_await run_one(engine, slot, lw);
      }
    }
    if (params_.epilogue) co_await params_.epilogue(slot);
    done_.arrive();
  }

  sim::Co run_one(sim::Engine& engine, int slot, int lw) {
    if (params_.wg_dispatch_overhead_ns > 0) {
      co_await sim::delay(engine, params_.wg_dispatch_overhead_ns);
    }
    co_await params_.body(slot, lw);
    if (record_times_) finish_times_[lw] = engine.now();
  }

  sim::Engine& engine_;
  Params params_;
  sim::JoinCounter done_;
  std::size_t cursor_ = 0;
  int active_slots_ = 1;
  bool started_ = false;
  bool record_times_ = false;
  std::vector<TimeNs> finish_times_;
};

}  // namespace fcc::gpu

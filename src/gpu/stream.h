// Host-side in-order stream.
//
// Kernel-boundary execution (the bulk-synchronous baseline) pays a launch
// latency per kernel and a host synchronization at each boundary; this class
// models exactly those costs. Items chain on the previous item's completion,
// so multiple streams naturally interleave on the virtual timeline.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "hw/gpu_spec.h"
#include "sim/co.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::gpu {

class Stream {
 public:
  using Work = std::function<sim::Co()>;

  /// `anchor` < 0 (default) issues launches from the enqueue-time clock.
  /// An explicit anchor pins the issue timeline to that absolute time
  /// instead — the sharded fused runtime spawns baseline per-PE bodies on
  /// their home engines at t0 + kernel_launch_ns and anchors the stream at
  /// t0, reproducing the serial launch_ready sequence byte-identically.
  Stream(sim::Engine& engine, const hw::GpuSpec& spec, TimeNs anchor = -1)
      : engine_(engine), spec_(spec), anchor_(anchor) {}

  /// Enqueues a kernel: runs after everything previously enqueued. The
  /// host issues launches asynchronously, so the launch latency of item i
  /// overlaps the execution of item i-1 (only exposed when the stream is
  /// idle) — the standard stream-pipelining behaviour kernel-boundary
  /// baselines rely on.
  std::shared_ptr<sim::OneShot> enqueue(Work work) {
    auto prev = last_;
    auto done = std::make_shared<sim::OneShot>(engine_);
    const TimeNs base = anchor_ >= 0 ? anchor_ : engine_.now();
    const TimeNs launch_ready =
        base + spec_.kernel_launch_ns + enqueued_ * kHostIssueGapNs;
    ++enqueued_;
    item_proc(engine_, std::move(prev), done, std::move(work), launch_ready);
    last_ = done;
    return done;
  }

  /// Awaitable host synchronization: waits for the stream to drain, then
  /// charges the host sync latency.
  sim::Co sync() {
    if (last_) co_await last_->wait();
    co_await sim::delay(engine_, spec_.stream_sync_ns);
  }

  /// Host-side cost of issuing one enqueue into the stream ring buffer.
  static constexpr TimeNs kHostIssueGapNs = 800;

 private:
  sim::Task item_proc(sim::Engine& engine, std::shared_ptr<sim::OneShot> prev,
                      std::shared_ptr<sim::OneShot> done, Work work,
                      TimeNs launch_ready) {
    if (prev) co_await prev->wait();
    co_await sim::delay_until(engine, launch_ready);
    co_await work();
    done->set();
  }

  sim::Engine& engine_;
  hw::GpuSpec spec_;
  TimeNs anchor_;
  std::shared_ptr<sim::OneShot> last_;
  int enqueued_ = 0;
};

}  // namespace fcc::gpu

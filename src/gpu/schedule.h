// Logical-workgroup execution-order policies.
//
// The paper's communication-aware scheduling runs logical WGs that produce
// remotely-consumed slices *before* those producing locally-consumed ones,
// maximizing the window in which remote transfers overlap local compute
// (Figs. 6b / 14). The oblivious baseline starts from WG (0,0,0) and
// proceeds sequentially.
#pragma once

#include <functional>
#include <vector>

namespace fcc::gpu {

enum class SchedulePolicy {
  kOblivious,  // sequential logical-WG order
  kCommAware,  // remote-slice producers first (stable within each class)
};

/// Builds the execution order of `n` logical WGs. `is_remote(lw)` says
/// whether logical WG `lw`'s output leaves this GPU.
std::vector<int> make_schedule(int n, SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote);

}  // namespace fcc::gpu

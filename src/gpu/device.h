// Simulated GPU device: compute timing with occupancy-dependent HBM sharing.
//
// A workgroup's compute step is expressed as a WorkCost (bytes touched in
// HBM + flops executed); the device converts it to virtual time using the
// bandwidth-contention curve evaluated at the *current* number of
// compute-active WGs. Memory-bound and compute-bound kernels both fall out
// of the same max(mem, alu) rule.
#pragma once

#include <algorithm>
#include <string>

#include "common/types.h"
#include "hw/gpu_spec.h"
#include "hw/hbm_model.h"
#include "sim/co.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace fcc::gpu {

/// Cost of one logical workgroup's compute step.
struct WorkCost {
  Bytes hbm_bytes = 0;       // HBM traffic (reads + writes)
  double flops = 0;          // fp32 operations
  double alu_efficiency = 1.0;  // fraction of peak ALU the kernel sustains
  hw::HbmCurve curve;        // kernel-specific contention curve
};

class Device {
 public:
  Device(sim::Engine& engine, PeId id, const hw::GpuSpec& spec)
      : engine_(engine),
        id_(id),
        spec_(spec),
        hbm_(spec.hbm_bytes_per_ns, spec.max_wg_slots()) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  sim::Engine& engine() { return engine_; }
  PeId id() const { return id_; }
  const hw::GpuSpec& spec() const { return spec_; }
  const hw::HbmModel& hbm() const { return hbm_; }

  /// Number of WGs currently inside a compute step.
  int active_wgs() const { return active_wgs_; }

  /// Duration `cost` would take if started now (does not reserve anything).
  TimeNs compute_duration(const WorkCost& cost, int active) const {
    TimeNs mem_ns = 0;
    if (cost.hbm_bytes > 0) {
      const double bw = hbm_.per_wg_bandwidth(active < 1 ? 1 : active,
                                              cost.curve);
      mem_ns = static_cast<TimeNs>(static_cast<double>(cost.hbm_bytes) / bw +
                                   0.5);
    }
    TimeNs alu_ns = 0;
    if (cost.flops > 0) {
      // Aggregate ALU throughput ramps linearly until the SIMDs saturate
      // (~4 waves per CU), then stays flat: more occupancy past that point
      // helps memory latency hiding, not raw flops.
      const int a = active < 1 ? 1 : active;
      const double util =
          std::min(1.0, static_cast<double>(a) /
                            static_cast<double>(spec_.alu_saturation_wgs));
      const double per_wg_flops = spec_.fp32_flops_per_ns *
                                  cost.alu_efficiency * util /
                                  static_cast<double>(a);
      alu_ns = static_cast<TimeNs>(cost.flops / per_wg_flops + 0.5);
    }
    return mem_ns > alu_ns ? mem_ns : alu_ns;
  }

  /// Awaitable compute step: registers this WG as active, waits the modeled
  /// duration, deregisters. The duration is fixed at entry from the active
  /// count at that moment (documented approximation; workloads here run in
  /// near-homogeneous waves).
  sim::Co compute(WorkCost cost) {
    ++active_wgs_;
    const TimeNs dur = compute_duration(cost, active_wgs_);
    busy_ns_ += dur;
    total_bytes_ += cost.hbm_bytes;
    total_flops_ += cost.flops;
    co_await sim::delay(engine_, dur);
    --active_wgs_;
  }

  /// Plain timed wait charged to this device (bookkeeping instructions,
  /// comm-API issue cost, ...).
  sim::Co busy_wait(TimeNs dur) {
    busy_ns_ += dur;
    co_await sim::delay(engine_, dur);
  }

  TimeNs busy_ns() const { return busy_ns_; }
  Bytes total_hbm_bytes() const { return total_bytes_; }
  double total_flops() const { return total_flops_; }

 private:
  sim::Engine& engine_;
  PeId id_;
  hw::GpuSpec spec_;
  hw::HbmModel hbm_;
  int active_wgs_ = 0;
  TimeNs busy_ns_ = 0;
  Bytes total_bytes_ = 0;
  double total_flops_ = 0;
};

}  // namespace fcc::gpu

// Host-side thread pool.
//
// The discrete-event simulator itself is single-threaded (determinism), but
// benches run many *independent* simulations per sweep; the pool lets those
// run concurrently — bench/sweep_runner.h is the consumer that fans sweep
// points (one whole engine each) across it with index-ordered results.
// Follows CP.20/CP.23 (RAII joining, no detached threads).
//
// Two submission paths:
//
//   * submit(fn)     — one queued std::function per task: flexible, but a
//                      possible allocation plus one lock round-trip each.
//   * run_batch(...) — a whole index range as ONE published descriptor:
//                      workers claim chunks with an atomic fetch_add, so a
//                      parallel_for of N chunks costs one lock acquisition
//                      and zero per-chunk allocations (the batch microbench
//                      in bench_microbench.cc records the difference).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fcc::par {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate (tasks are
  /// simulation drivers that report failures through their own results).
  void submit(std::function<void()> task);

  /// Runs `body(i)` for every i in [begin, end), `grain` indices per claimed
  /// chunk, and blocks until all complete. The caller's thread also works,
  /// so the pool is usable even with zero free workers. The batch is one
  /// shared descriptor: workers grab chunks via atomic fetch_add — no
  /// per-chunk queue entry, no per-chunk allocation, one lock round-trip
  /// per batch. `body` must be thread-safe for distinct indices. One batch
  /// at a time (benches and sweeps are structured that way); concurrent
  /// run_batch calls from different threads serialize on an internal mutex.
  void run_batch(std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& body,
                 std::int64_t grain = 1);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  /// The active batch, published under mu_ and claimed lock-free. `next`
  /// advances by `grain` per claim; a claim at or past `end` means the
  /// batch is drained.
  struct Batch {
    std::int64_t end = 0;
    std::int64_t grain = 1;
    const std::function<void(std::int64_t)>* body = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<int> active{0};  // workers inside run_chunks
  };

  void worker_loop();

  /// Claims and runs chunks of `b` until it drains.
  static void run_chunks(Batch& b);

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  Batch* batch_ = nullptr;  // non-null while a batch is being drained
  std::mutex batch_mu_;     // serializes concurrent run_batch callers
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace fcc::par

// Host-side thread pool.
//
// The discrete-event simulator itself is single-threaded (determinism), but
// benches run many *independent* simulations per sweep; the pool lets those
// run concurrently — bench/sweep_runner.h is the consumer that fans sweep
// points (one whole engine each) across it with index-ordered results.
// Follows CP.20/CP.23 (RAII joining, no detached threads).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fcc::par {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate (tasks are
  /// simulation drivers that report failures through their own results).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace fcc::par

#include "parallel/thread_pool.h"

#include <algorithm>

namespace fcc::par {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::run_chunks(Batch& b) {
  for (;;) {
    const std::int64_t lo =
        b.next.fetch_add(b.grain, std::memory_order_relaxed);
    if (lo >= b.end) return;
    const std::int64_t hi = std::min(lo + b.grain, b.end);
    for (std::int64_t i = lo; i < hi; ++i) (*b.body)(i);
  }
}

void ThreadPool::run_batch(std::int64_t begin, std::int64_t end,
                           const std::function<void(std::int64_t)>& body,
                           std::int64_t grain) {
  if (begin >= end) return;
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  Batch b;
  b.end = end;
  b.grain = grain < 1 ? 1 : grain;
  b.body = &body;
  b.next.store(begin, std::memory_order_relaxed);
  {
    // One publish for the whole range — the only lock the batch takes.
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &b;
  }
  cv_task_.notify_all();
  // The caller drains chunks too: correct with zero workers, and the
  // publishing thread never just blocks while work remains.
  run_chunks(b);
  {
    // Unpublish, then wait for workers still inside run_chunks: `b` is a
    // stack frame, nothing may reference it after this returns.
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = nullptr;
    cv_idle_.wait(lock,
                  [&b] { return b.active.load(std::memory_order_acquire) == 0; });
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0 && batch_ == nullptr; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] {
        // A published batch only wakes workers while chunks remain, so a
        // drained-but-not-yet-unpublished batch can't spin the pool.
        return stop_ || !queue_.empty() ||
               (batch_ != nullptr &&
                batch_->next.load(std::memory_order_relaxed) < batch_->end);
      });
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (batch_ != nullptr) {
        batch = batch_;
        batch->active.fetch_add(1, std::memory_order_relaxed);
      } else {
        return;  // stop_ and drained
      }
    }
    if (batch != nullptr) {
      run_chunks(*batch);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (batch->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          cv_idle_.notify_all();
        }
      }
      continue;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fcc::par

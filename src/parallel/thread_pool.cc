#include "parallel/thread_pool.h"

#include <algorithm>

namespace fcc::par {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fcc::par

// parallel_for over an index range, chunked across a ThreadPool.
//
// Used by benches to run independent simulation configs concurrently and by
// host reference kernels in tests; the body must be thread-safe for distinct
// indices (pure data parallelism, no shared mutable state).
#pragma once

#include <cstdint>
#include <functional>

#include "common/check.h"
#include "parallel/thread_pool.h"

namespace fcc::par {

/// Invokes `body(i)` for i in [begin, end) using `pool`. Blocks until done.
inline void parallel_for(ThreadPool& pool, std::int64_t begin,
                         std::int64_t end,
                         const std::function<void(std::int64_t)>& body,
                         std::int64_t grain = 1) {
  FCC_CHECK(begin <= end);
  FCC_CHECK(grain >= 1);
  if (begin == end) return;
  for (std::int64_t lo = begin; lo < end; lo += grain) {
    const std::int64_t hi = std::min(lo + grain, end);
    pool.submit([lo, hi, &body] {
      for (std::int64_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

/// Serial fallback with the same signature (useful under FCC_DETERMINISTIC
/// sweeps where even completion *ordering* of prints matters).
inline void serial_for(std::int64_t begin, std::int64_t end,
                       const std::function<void(std::int64_t)>& body) {
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

}  // namespace fcc::par

// parallel_for over an index range, chunked across a ThreadPool.
//
// Used by benches to run independent simulation configs concurrently and by
// host reference kernels in tests; the body must be thread-safe for distinct
// indices (pure data parallelism, no shared mutable state).
#pragma once

#include <cstdint>
#include <functional>

#include "common/check.h"
#include "parallel/thread_pool.h"

namespace fcc::par {

/// Invokes `body(i)` for i in [begin, end) using `pool`. Blocks until done.
/// Rides the pool's batch path: the whole range is one published
/// descriptor and workers claim `grain`-sized chunks with an atomic
/// fetch_add — no per-chunk std::function, no per-chunk lock round-trip.
inline void parallel_for(ThreadPool& pool, std::int64_t begin,
                         std::int64_t end,
                         const std::function<void(std::int64_t)>& body,
                         std::int64_t grain = 1) {
  FCC_CHECK(begin <= end);
  FCC_CHECK(grain >= 1);
  pool.run_batch(begin, end, body, grain);
}

/// Serial fallback with the same signature (useful under FCC_DETERMINISTIC
/// sweeps where even completion *ordering* of prints matters).
inline void serial_for(std::int64_t begin, std::int64_t end,
                       const std::function<void(std::int64_t)>& body) {
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

}  // namespace fcc::par

#include "plan/planner.h"

#include <chrono>
#include <sstream>

#include "plan/cost_scorer.h"

namespace fcc::plan {

namespace {

std::string cache_key(const PlanReport& report, const PlanOptions& options) {
  std::ostringstream os;
  os << report.graph_key << "##" << report.topo_key << "##backend="
     << (options.default_backend == fw::Backend::kFused ? "fused" : "baseline")
     << ";cal=" << (options.use_calibration ? 1 : 0) << ";passes=";
  bool first = true;
  for (const std::string& p : options.passes) {
    os << (first ? "" : ",") << p;
    first = false;
  }
  return os.str();
}

/// Replay a cached plan's decisions onto a fresh graph copy: collapse the
/// recorded pattern pairs and re-apply the collective-algorithm overrides.
/// No pattern matching, no scoring — zero passes run.
void replay(fw::Graph& graph, const Plan& plan) {
  apply_fused_rewrites(graph, plan.fused_rewrites);
  for (const AlgoChoice& choice : plan.allreduce_algos) {
    fw::OpSpec& spec = graph.mutable_spec(choice.node);
    const OpCostModel* model = ScorerRegistry::global().find(spec.name);
    if (model != nullptr && model->set_allreduce_algo != nullptr) {
      model->set_allreduce_algo(spec, choice.algo);
    }
  }
}

}  // namespace

std::string PlanReport::to_string() const {
  std::ostringstream os;
  os << "plan: " << (cache_hit ? "cache hit" : "planned")
     << (cacheable ? "" : " (uncacheable: inexact graph fingerprint)")
     << "\n";
  for (const auto& run : passes) {
    os << "  pass " << run.name << ": " << run.changes << " change"
       << (run.changes == 1 ? "" : "s") << "\n";
  }
  for (const PlanDecision& d : decisions) {
    os << "  [" << d.pass << "] node " << d.node << " '" << d.label << "' ("
       << d.op << "): " << (d.accepted ? "applied " : "kept ") << d.choice
       << " — predicted fused " << d.predicted_fused_ns << " ns vs baseline "
       << d.predicted_baseline_ns << " ns"
       << (d.calibrated ? " [calibrated]" : " [analytic]") << "; " << d.why
       << "\n";
  }
  return os.str();
}

Planner::Planner(const fw::OpRegistry& registry) : registry_(registry) {}

Planned Planner::plan(const fw::Graph& graph,
                      const gpu::Machine::Config& machine,
                      const PlanOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  Planned out{graph, {}, {}};
  PlanReport& report = out.report;

  // A node carrying the wrong config type trips its shape_key hook inside
  // graph_fingerprint, which rethrows SpecTypeError with the node's
  // identity attached — propagated as-is (still a std::bad_any_cast) so
  // callers guarding single-op dispatch keep working.
  const fw::GraphFingerprint gfp = graph_fingerprint(graph, registry_);
  report.graph_key = gfp.key;
  report.topo_key = fw::topology_fingerprint(machine);
  report.cacheable = gfp.exact;
  const std::string key = cache_key(report, options);

  if (options.cache != nullptr) {
    if (!gfp.exact) {
      options.cache->note_uncacheable();
    } else if (const PlanCache::Entry* hit = options.cache->find(key)) {
      out.plan = hit->plan;
      report.decisions = hit->decisions;
      report.cache_hit = true;
      replay(out.graph, out.plan);
      report.planning_host_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      return out;
    }
  }

  out.plan.backends.assign(static_cast<std::size_t>(graph.num_nodes()),
                           options.default_backend);

  CostEnv env;
  env.machine = machine;
  const CostScorer scorer(env, options.use_calibration,
                          ScorerRegistry::global(),
                          options.use_calibration ? builtin_calibration()
                                                  : empty_calibration());
  PassContext ctx;
  ctx.registry = &registry_;
  ctx.machine = &machine;
  ctx.scorer = &scorer;
  ctx.plan = &out.plan;
  ctx.report = &report;

  const PassManager pm(options.passes);
  report.passes = pm.run(out.graph, ctx);

  // Every node the pipeline left live must be dispatchable — surface the
  // registry's unknown-op error (with the full registered-op list) as a
  // catchable PlanError naming the node, instead of letting the executor
  // abort mid-run later.
  for (int i = 0; i < out.graph.num_nodes(); ++i) {
    const fw::GraphNode& node = out.graph.node(i);
    if (node.fused_away) continue;
    try {
      (void)registry_.at(node.spec.name);
    } catch (const std::logic_error& e) {
      throw PlanError("planning graph node '" + node.label + "': " + e.what());
    }
  }

  if (options.cache != nullptr && gfp.exact) {
    options.cache->insert(key, PlanCache::Entry{out.plan, report.decisions});
  }
  report.planning_host_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

}  // namespace fcc::plan

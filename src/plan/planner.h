// The planning front-end: fingerprint, cache-lookup, pass pipeline.
//
// Planner::plan() takes an application graph and a machine description and
// returns the lowered graph plus per-node execution decisions — which
// pattern pairs collapsed into fused ops, which backend each live node
// runs under (predicted-win only: a fused op whose fused variant scores
// slower than its bulk-synchronous baseline is planned onto the baseline),
// and which ccl algorithm each baseline collective should use. Every
// candidate's predicted costs and the accept/reject rationale land in a
// PlanReport.
//
// Planning is pure host work: it never touches the sim engine, so a
// planned run's simulated timestamps depend only on the decisions, not on
// whether they came from a cold pipeline or a warm PlanCache hit.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "framework/fingerprint.h"
#include "framework/graph.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"
#include "plan/pass_manager.h"
#include "plan/plan_cache.h"

namespace fcc::plan {

/// Planning failed on a specific node. Wraps the underlying registry /
/// spec-type error with the node's identity so a bad planner-constructed
/// spec fails with an actionable message instead of aborting mid-plan.
/// Derives from std::logic_error — the same base OpRegistry::at throws —
/// so callers that already guard graph dispatch keep working.
class PlanError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct PlanOptions {
  /// Backend for nodes the scorer has no model for (and the score pass's
  /// comparison default).
  fw::Backend default_backend = fw::Backend::kFused;
  /// Optional shared cache; nullptr plans cold every time.
  PlanCache* cache = nullptr;
  /// Pass pipeline; empty = every default-on registered pass in order.
  std::vector<std::string> passes;
  /// Apply measured-anchor corrections to analytic scores.
  bool use_calibration = true;
};

struct PlanReport {
  std::string graph_key;
  std::string topo_key;
  bool cacheable = true;  // graph fingerprint was exact
  bool cache_hit = false;
  std::vector<PassManager::PassRun> passes;  // empty on a cache hit
  std::vector<PlanDecision> decisions;
  /// Host wall-clock spent planning (informational; not part of any
  /// simulated timing or determinism surface).
  double planning_host_ns = 0.0;

  std::string to_string() const;
};

/// A plan applied to a graph copy, ready to execute.
struct Planned {
  fw::Graph graph;  // lowered
  Plan plan;
  PlanReport report;

  const std::vector<fw::Backend>& backends() const { return plan.backends; }
};

class Planner {
 public:
  explicit Planner(const fw::OpRegistry& registry = fw::OpRegistry::global());

  Planned plan(const fw::Graph& graph, const gpu::Machine::Config& machine,
               const PlanOptions& options = {}) const;

 private:
  const fw::OpRegistry& registry_;
};

}  // namespace fcc::plan

// Fast analytic fused-vs-baseline cost scoring for planner decisions.
//
// Per-op analytic models (registered per registry name, next to nothing
// else: src/plan/op_models.cc) predict the fused and baseline durations of
// one op on one machine from the ops/cost_model.h workgroup formulas and
// the hardware specs — pure closed-form host math, no engine, microseconds
// to evaluate. The CostScorer then multiplies each analytic estimate by a
// calibration correction interpolated from measured figure-bench anchors
// (plan/calibration.h), so at every anchor point the score reproduces the
// simulator's measured duration exactly — which is what makes the planner
// honest about crossovers like moe_dispatch at T=512, where the analytic
// shape alone is within a few percent of the flip.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "common/types.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"
#include "plan/calibration.h"

namespace fcc::plan {

/// The hardware environment a score is computed against, plus shared
/// closed-form helpers so op models agree on what "device time" and "wire
/// time" mean.
struct CostEnv {
  gpu::Machine::Config machine;

  int num_pes() const { return machine.num_nodes * machine.gpus_per_node; }
  bool multi_node() const { return machine.num_nodes > 1; }

  /// Whole-device kernel time: max of HBM streaming and ALU time, the
  /// aggregate-level shape of gpu::Device::compute_duration (occupancy
  /// curves are left to calibration).
  double device_ns(double hbm_bytes, double flops,
                   double alu_efficiency = 1.0) const;

  /// Time for one GPU to move `bytes` of peer traffic across the scale-up
  /// fabric (topology-aware port bandwidth + per-transfer latency). When
  /// the machine spans nodes, `inter_fraction` of the bytes instead ride
  /// the NIC at its (rail-scaled) wire bandwidth.
  double wire_ns(double bytes, double inter_fraction = 0.0) const;

  /// One-hop scale-up latency under the active topology.
  double scaleup_latency_ns() const;

  /// Canonical topology + geometry key ("fully_connected/1x4",
  /// "switched/2x4", ...) — the calibration table's topology axis.
  std::string topo_kind() const;
};

struct CostEstimate {
  double fused_ns = 0.0;
  double baseline_ns = 0.0;
  bool valid = false;       // an op model existed and produced an estimate
  bool calibrated = false;  // corrected against measured anchors

  fw::Backend winner() const {
    return fused_ns <= baseline_ns ? fw::Backend::kFused
                                   : fw::Backend::kBaseline;
  }
};

/// Analytic model for one registered op. `estimate` and `work` are
/// mandatory; the allreduce fields exist only for ops whose baseline
/// carries a selectable ccl algorithm.
struct OpCostModel {
  /// Closed-form fused/baseline prediction. Must be deterministic and
  /// engine-free; may throw fw::SpecTypeError on a mis-typed spec slot.
  std::function<CostEstimate(const fw::OpSpec&, const CostEnv&)> estimate;
  /// Scalar problem size (monotone in the op's dominant dimensions) used
  /// to interpolate calibration corrections in log-work space.
  std::function<double(const fw::OpSpec&, const CostEnv&)> work;

  /// Baseline collective steering (optional, e.g. gemv_allreduce).
  std::vector<ccl::AllReduceAlgo> allreduce_candidates;
  std::function<double(const fw::OpSpec&, const CostEnv&, ccl::AllReduceAlgo)>
      allreduce_time = nullptr;
  std::function<ccl::AllReduceAlgo(const fw::OpSpec&)> allreduce_algo =
      nullptr;  // current choice in the spec
  std::function<void(fw::OpSpec&, ccl::AllReduceAlgo)> set_allreduce_algo =
      nullptr;
};

const char* allreduce_algo_name(ccl::AllReduceAlgo algo);

class ScorerRegistry {
 public:
  static ScorerRegistry& global();

  void register_model(std::string op, OpCostModel model);
  const OpCostModel* find(const std::string& op) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, OpCostModel> models_;
};

/// `static const ScorerRegistrar r{"fcc::x", {...}};` registers a model
/// before main().
struct ScorerRegistrar {
  ScorerRegistrar(std::string op, OpCostModel model) {
    ScorerRegistry::global().register_model(std::move(op), std::move(model));
  }
};

class CostScorer {
 public:
  explicit CostScorer(CostEnv env, bool use_calibration = true,
                      const ScorerRegistry& models = ScorerRegistry::global(),
                      const CalibrationTable& calibration =
                          builtin_calibration());

  /// Calibration-corrected estimate for `spec` on this scorer's machine;
  /// `valid` is false when no model is registered for the op.
  CostEstimate score(const fw::OpSpec& spec) const;

  const CostEnv& env() const { return env_; }
  const OpCostModel* model(const std::string& op) const {
    return models_.find(op);
  }

 private:
  CostEnv env_;
  bool use_calibration_;
  const ScorerRegistry& models_;
  const CalibrationTable& calibration_;
};

}  // namespace fcc::plan

// Ordered, opt-in pass pipeline over fw::Graph (the planning layer's
// spine, in the style of an inductor-like pattern-pass registry).
//
// Each pass is registered once, with metadata, into the process-wide
// PassRegistry; a PassManager selects passes (all default-on ones, or an
// explicit ordered subset) and runs them over a graph, threading a
// PassContext carrying the registry, the target machine, the cost scorer,
// and the Plan/PlanReport being built. Passes are pure host-side graph
// transforms: they never touch the sim engine, so planning cannot move a
// simulated timestamp.
//
// Ordering is explicit (PassInfo::order), not static-init order, so the
// pipeline is deterministic regardless of TU link order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "framework/graph.h"
#include "gpu/machine.h"

namespace fcc::plan {

class CostScorer;
struct Plan;
struct PlanReport;

/// Everything a pass may consult or append to. Pointers rather than
/// references so a context is cheap to assemble partially (unit tests run
/// single passes with only the fields they need).
struct PassContext {
  const fw::OpRegistry* registry = nullptr;
  const gpu::Machine::Config* machine = nullptr;
  const CostScorer* scorer = nullptr;
  Plan* plan = nullptr;
  PlanReport* report = nullptr;
};

struct PassInfo {
  std::string name;
  std::string description;
  /// Pipeline position; passes run in ascending order. Spaced by 10 so
  /// out-of-tree passes can slot between built-ins.
  int order = 0;
  /// Included when the PassManager is built without an explicit list.
  bool default_on = true;
};

/// A pass mutates the graph (or just the plan) and returns how many
/// changes it made (rewrites applied, decisions recorded).
using PassFn = std::function<int(fw::Graph&, PassContext&)>;

struct Pass {
  PassInfo info;
  PassFn fn;
};

class PassRegistry {
 public:
  static PassRegistry& global();

  void register_pass(PassInfo info, PassFn fn);
  /// All registered passes, sorted by (order, name).
  std::vector<const Pass*> ordered() const;
  const Pass* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<Pass> passes_;
};

/// `static const PassRegistrar r{{...}, fn};` in a pass TU registers it
/// before main().
struct PassRegistrar {
  PassRegistrar(PassInfo info, PassFn fn) {
    PassRegistry::global().register_pass(std::move(info), std::move(fn));
  }
};

class PassManager {
 public:
  struct PassRun {
    std::string name;
    int changes = 0;
  };

  /// Empty `enabled` = every default-on pass in registry order; otherwise
  /// exactly the named passes, in the order given. Unknown names throw
  /// (listing the registered passes) at construction, not mid-pipeline.
  explicit PassManager(std::vector<std::string> enabled = {},
                       const PassRegistry& registry = PassRegistry::global());

  const std::vector<const Pass*>& passes() const { return selected_; }

  /// Runs the selected passes in order; returns one entry per pass run.
  std::vector<PassRun> run(fw::Graph& graph, PassContext& ctx) const;

 private:
  std::vector<const Pass*> selected_;
};

}  // namespace fcc::plan

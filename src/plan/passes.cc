// Built-in planning passes, in pipeline order:
//
//   fuse-patterns    (10)  collapse producer+consumer pattern pairs into
//                          registered fused ops (rewrite_fused ported onto
//                          the pass manager; pattern nodes are not
//                          executable, so collapsing is unconditional —
//                          honesty lives in the next pass)
//   score-backends   (20)  per live node, predict fused vs baseline cost
//                          and pick the winner's backend — a fused op that
//                          scores slower than its bulk-synchronous
//                          baseline (moe_dispatch at T=512) is planned
//                          onto the baseline
//   select-ccl-algo  (30)  per baseline collective-bearing node, pick the
//                          cheapest predicted ccl algorithm (e.g. the
//                          hierarchical AllReduce on multi-node spans that
//                          the flat two-phase default leaves on the table)
#include <exception>

#include "plan/cost_scorer.h"
#include "plan/pass_manager.h"
#include "plan/planner.h"

namespace fcc::plan {
namespace {

/// Relative improvement an algorithm switch must predict before it is
/// applied. Algo scores are analytic-only (the calibration table corrects
/// fused-vs-baseline totals, not per-algorithm collective times), and the
/// closed-form wire model understates the serialization the simulated
/// communicator pays per peer — bench_plan_quality measures the analytic
/// hierarchical-vs-two-phase margin running ~20 points optimistic on the
/// 2x4 machine. The default stands unless the alternative is predicted
/// far enough ahead to survive that bias.
constexpr double kAlgoSwitchMargin = 0.25;

int fuse_patterns(fw::Graph& graph, PassContext& ctx) {
  const fw::OpRegistry& registry =
      ctx.registry != nullptr ? *ctx.registry : fw::OpRegistry::global();
  std::vector<fw::FusedRewrite> rewrites;
  const int n = rewrite_fused(graph, registry, &rewrites);
  for (const fw::FusedRewrite& rw : rewrites) {
    if (ctx.report != nullptr) {
      PlanDecision d;
      d.pass = "fuse-patterns";
      d.node = rw.consumer;
      d.op = rw.fused_op;
      d.label = graph.node(rw.consumer).label;
      d.accepted = true;
      d.choice = rw.fused_op;
      d.why = "pattern pair collapsed (execution backend decided by "
              "score-backends)";
      ctx.report->decisions.push_back(std::move(d));
    }
  }
  if (ctx.plan != nullptr) {
    ctx.plan->fused_rewrites.insert(ctx.plan->fused_rewrites.end(),
                                    rewrites.begin(), rewrites.end());
  }
  return n;
}

int score_backends(fw::Graph& graph, PassContext& ctx) {
  if (ctx.scorer == nullptr || ctx.plan == nullptr) return 0;
  int changes = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const fw::GraphNode& node = graph.node(i);
    if (node.fused_away) continue;
    CostEstimate est;
    try {
      est = ctx.scorer->score(node.spec);
    } catch (const fw::SpecTypeError& e) {
      // A planner-constructed spec with a bad slot: fail with the node's
      // identity attached, catchably, instead of aborting mid-plan.
      throw PlanError(std::string("scoring graph node '") + node.label +
                      "': " + e.what());
    }
    if (!est.valid) continue;  // no model: keep the default backend
    const fw::Backend chosen = est.winner();
    const fw::Backend before =
        ctx.plan->backends[static_cast<std::size_t>(i)];
    ctx.plan->backends[static_cast<std::size_t>(i)] = chosen;
    if (chosen != before) ++changes;
    if (ctx.report != nullptr) {
      PlanDecision d;
      d.pass = "score-backends";
      d.node = i;
      d.op = node.spec.name;
      d.label = node.label;
      d.predicted_fused_ns = est.fused_ns;
      d.predicted_baseline_ns = est.baseline_ns;
      d.calibrated = est.calibrated;
      d.accepted = chosen != before;
      d.choice = chosen == fw::Backend::kFused ? "fused" : "baseline";
      d.why = chosen == fw::Backend::kFused
                  ? "fused path predicted no slower than the baseline"
                  : "fused path predicted slower — rewrite rejected, "
                    "bulk-synchronous baseline planned";
      ctx.report->decisions.push_back(std::move(d));
    }
  }
  return changes;
}

int select_ccl_algo(fw::Graph& graph, PassContext& ctx) {
  if (ctx.scorer == nullptr || ctx.plan == nullptr) return 0;
  int changes = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const fw::GraphNode& node = graph.node(i);
    if (node.fused_away) continue;
    if (ctx.plan->backends[static_cast<std::size_t>(i)] !=
        fw::Backend::kBaseline) {
      continue;  // fused kernels own their communication schedule
    }
    const OpCostModel* model = ctx.scorer->model(node.spec.name);
    if (model == nullptr || model->allreduce_candidates.empty() ||
        model->allreduce_time == nullptr ||
        model->set_allreduce_algo == nullptr) {
      continue;
    }
    const ccl::AllReduceAlgo current =
        model->allreduce_algo != nullptr
            ? model->allreduce_algo(node.spec)
            : ccl::AllReduceAlgo::kTwoPhaseDirect;
    double current_ns = 0.0;
    ccl::AllReduceAlgo best = current;
    double best_ns = 0.0;
    try {
      current_ns =
          model->allreduce_time(node.spec, ctx.scorer->env(), current);
      best_ns = current_ns;
      for (const ccl::AllReduceAlgo algo : model->allreduce_candidates) {
        const double t =
            model->allreduce_time(node.spec, ctx.scorer->env(), algo);
        if (t < best_ns) {
          best = algo;
          best_ns = t;
        }
      }
    } catch (const fw::SpecTypeError& e) {
      throw PlanError(std::string("selecting ccl algo for graph node '") +
                      node.label + "': " + e.what());
    }
    const bool apply =
        best != current && best_ns < current_ns * (1.0 - kAlgoSwitchMargin);
    if (apply) {
      model->set_allreduce_algo(graph.mutable_spec(i), best);
      ctx.plan->allreduce_algos.push_back(AlgoChoice{i, best});
      ++changes;
    }
    if (ctx.report != nullptr) {
      PlanDecision d;
      d.pass = "select-ccl-algo";
      d.node = i;
      d.op = node.spec.name;
      d.label = node.label;
      // Re-purpose the cost pair as chosen-vs-incumbent collective time.
      d.predicted_fused_ns = best_ns;
      d.predicted_baseline_ns = current_ns;
      d.accepted = apply;
      d.choice = allreduce_algo_name(apply ? best : current);
      d.why = apply ? "predicted clearly faster than the incumbent algorithm"
                    : "no candidate beat the incumbent by the switch margin";
      ctx.report->decisions.push_back(std::move(d));
    }
  }
  return changes;
}

const PassRegistrar fuse_patterns_registrar{
    PassInfo{"fuse-patterns",
             "collapse registered producer+consumer patterns into fused ops",
             10, true},
    fuse_patterns};

const PassRegistrar score_backends_registrar{
    PassInfo{"score-backends",
             "pick fused vs baseline backend per node by predicted cost",
             20, true},
    score_backends};

const PassRegistrar select_ccl_algo_registrar{
    PassInfo{"select-ccl-algo",
             "pick the cheapest predicted ccl algorithm per baseline "
             "collective",
             30, true},
    select_ccl_algo};

}  // namespace
}  // namespace fcc::plan

// Analytic cost models for the built-in fused operators.
//
// Each model predicts one op's fused and baseline durations from the
// ops/cost_model.h workgroup formulas evaluated at aggregate device level:
// compute time is max(HBM streaming, ALU) over the whole problem, the
// baseline adds its kernel-boundary overheads (launch + sync + the ccl
// software floor) and the collective's serialized wire time, and the fused
// path overlaps compute with communication (max instead of sum) at the
// cost of in-kernel bookkeeping. Occupancy curves, slot contention, and
// skew-tail effects are deliberately left out — the calibration table
// (plan/calibration.cc) corrects the residual against measured anchors.
#include <algorithm>
#include <cmath>

#include "ccl/communicator.h"
#include "fused/embedding_a2a.h"
#include "fused/gemm_a2a.h"
#include "fused/gemv_allreduce.h"
#include "fused/moe_dispatch.h"
#include "ops/cost_model.h"
#include "plan/cost_scorer.h"

namespace fcc::plan {
namespace {

constexpr double kSwOverheadNs =
    static_cast<double>(ccl::Communicator::kSwOverheadNs);

double launch_ns(const CostEnv& env) {
  return static_cast<double>(env.machine.gpu.kernel_launch_ns);
}
double sync_ns(const CostEnv& env) {
  return static_cast<double>(env.machine.gpu.stream_sync_ns);
}

/// Baseline kernel-boundary tax: launch the compute kernel, synchronize
/// the stream, then pay the collective library's software floor.
double baseline_boundary_ns(const CostEnv& env) {
  return launch_ns(env) + sync_ns(env) + kSwOverheadNs;
}

bool hierarchy_eligible(const CostEnv& env) {
  return env.machine.num_nodes > 1 && env.machine.gpus_per_node > 1;
}

/// Fraction of a symmetric peer-exchange that crosses the node boundary.
double inter_fraction(const CostEnv& env) {
  const int p = env.num_pes();
  if (!env.multi_node() || p <= 1) return 0.0;
  const int g = env.machine.gpus_per_node;
  // Of the P-1 peers, P-g live on other nodes.
  return static_cast<double>(p - g) / static_cast<double>(p - 1);
}

// ---------------------------------------------------------------------------
// fcc::gemv_allreduce
// ---------------------------------------------------------------------------

double gemv_compute_ns(const fused::GemvAllReduceConfig& cfg,
                       const CostEnv& env) {
  const int p = env.num_pes();
  const double k = static_cast<double>(cfg.k_local(p));
  const double m = static_cast<double>(cfg.m);
  return env.device_ns(m * k * 4.0 + m * 4.0, 2.0 * m * k);
}

double gemv_allreduce_wire_ns(const fused::GemvAllReduceConfig& cfg,
                              const CostEnv& env, ccl::AllReduceAlgo algo) {
  const int p = env.num_pes();
  const double m = static_cast<double>(cfg.m);
  const double frac = static_cast<double>(p - 1) / static_cast<double>(p);
  const double inter = inter_fraction(env);
  if (algo == ccl::AllReduceAlgo::kAuto) {
    algo = hierarchy_eligible(env) ? ccl::AllReduceAlgo::kHierarchical
                                   : ccl::AllReduceAlgo::kTwoPhaseDirect;
  }
  switch (algo) {
    case ccl::AllReduceAlgo::kTwoPhaseDirect:
      // Reduce-scatter + all-gather: each port moves (P-1)/P of the vector
      // per phase, plus the owner's local reduction through HBM.
      return 2.0 * env.wire_ns(m * 4.0 * frac, inter) +
             env.device_ns(m * 4.0, m);
    case ccl::AllReduceAlgo::kRing: {
      // 2(P-1) steps of m/P elements; every step pays a transfer latency.
      const double step_bytes = m * 4.0 / static_cast<double>(p);
      return 2.0 * static_cast<double>(p - 1) *
                 env.wire_ns(step_bytes, inter) +
             env.device_ns(m * 4.0, m);
    }
    case ccl::AllReduceAlgo::kHierarchical: {
      if (!hierarchy_eligible(env)) {
        // Explicitly selecting the hierarchical algorithm on an ineligible
        // span is a hard error in ccl — make it unselectable.
        return 1e30;
      }
      const int g = env.machine.gpus_per_node;
      const int nn = env.machine.num_nodes;
      const double gfrac =
          static_cast<double>(g - 1) / static_cast<double>(g);
      // Intra-node RS + AG over g members (scale-up only)…
      const double intra = 2.0 * env.wire_ns(m * 4.0 * gfrac, 0.0);
      // …with an inter-node ring per lane on m/g elements (NIC only).
      const double lane = m * 4.0 / static_cast<double>(g);
      const double nic_bw = env.machine.ib.wire_bytes_per_ns *
                            (env.machine.topology.kind ==
                                     hw::TopologySpec::Kind::kMultiRail
                                 ? std::max(1, env.machine.topology.nic_rails)
                                 : 1);
      const double inter_ring =
          2.0 * static_cast<double>(nn - 1) *
          (lane / static_cast<double>(nn) / nic_bw +
           static_cast<double>(env.machine.ib.wire_latency_ns));
      return intra + inter_ring + env.device_ns(m * 4.0, m);
    }
    case ccl::AllReduceAlgo::kAuto:
      break;  // resolved above
  }
  return 1e30;
}

const ScorerRegistrar gemv_allreduce_model{
    "fcc::gemv_allreduce",
    OpCostModel{
        .estimate =
            [](const fw::OpSpec& spec, const CostEnv& env) {
              const auto& cfg =
                  fw::spec_config<fused::GemvAllReduceConfig>(spec);
              CostEstimate est;
              const double compute = gemv_compute_ns(cfg, env);
              const double wire =
                  gemv_allreduce_wire_ns(cfg, env, cfg.allreduce_algo);
              est.baseline_ns = compute + baseline_boundary_ns(env) + wire;
              // Fused: tiles stream into peers while later tiles compute;
              // the reduction phase's wire time is what can't hide.
              const double exposed = env.wire_ns(
                  static_cast<double>(cfg.m) * 4.0 /
                      static_cast<double>(env.num_pes()),
                  inter_fraction(env));
              est.fused_ns = std::max(compute, wire * 0.5) + launch_ns(env) +
                             exposed + 2.0 * env.scaleup_latency_ns();
              est.valid = true;
              return est;
            },
        .work =
            [](const fw::OpSpec& spec, const CostEnv&) {
              const auto& cfg =
                  fw::spec_config<fused::GemvAllReduceConfig>(spec);
              return static_cast<double>(cfg.m) *
                     static_cast<double>(cfg.k_global);
            },
        .allreduce_candidates = {ccl::AllReduceAlgo::kTwoPhaseDirect,
                                 ccl::AllReduceAlgo::kRing,
                                 ccl::AllReduceAlgo::kHierarchical},
        .allreduce_time =
            [](const fw::OpSpec& spec, const CostEnv& env,
               ccl::AllReduceAlgo algo) {
              const auto& cfg =
                  fw::spec_config<fused::GemvAllReduceConfig>(spec);
              return gemv_allreduce_wire_ns(cfg, env, algo);
            },
        .allreduce_algo =
            [](const fw::OpSpec& spec) {
              return fw::spec_config<fused::GemvAllReduceConfig>(spec)
                  .allreduce_algo;
            },
        .set_allreduce_algo =
            [](fw::OpSpec& spec, ccl::AllReduceAlgo algo) {
              auto cfg = fw::spec_config<fused::GemvAllReduceConfig>(spec);
              cfg.allreduce_algo = algo;
              spec.config = cfg;
            },
    }};

// ---------------------------------------------------------------------------
// fcc::moe_dispatch
// ---------------------------------------------------------------------------

double moe_gemm_ns(const fused::MoeDispatchConfig& cfg, const CostEnv& env) {
  const double rows = static_cast<double>(cfg.assignments());
  const double tiles =
      std::ceil(rows / cfg.block_m) *
      std::ceil(static_cast<double>(cfg.d_out) / cfg.block_n);
  const double hbm =
      tiles *
      (static_cast<double>(cfg.block_m) * cfg.d_model +
       static_cast<double>(cfg.d_model) * cfg.block_n +
       static_cast<double>(cfg.block_m) * cfg.block_n) *
      4.0;
  const double flops = 2.0 * rows * cfg.d_out * cfg.d_model;
  return env.device_ns(hbm, flops, cfg.alu_efficiency);
}

double moe_a2a_ns(const fused::MoeDispatchConfig& cfg, const CostEnv& env) {
  const int p = env.num_pes();
  const double rows = static_cast<double>(cfg.assignments());
  // Hot-expert skew concentrates traffic on one port: expert 0 is drawn
  // hot_expert_factor times more often, so the hottest port receives
  // p*hot/(hot + p - 1) times the balanced share.
  const double hot = std::max(1.0, cfg.hot_expert_factor);
  const double hot_mult =
      static_cast<double>(p) * hot / (hot + static_cast<double>(p - 1));
  const double bytes = rows * cfg.d_out * 4.0 *
                       static_cast<double>(p - 1) / static_cast<double>(p) *
                       hot_mult;
  return env.wire_ns(bytes, inter_fraction(env));
}

const ScorerRegistrar moe_dispatch_model{
    "fcc::moe_dispatch",
    OpCostModel{
        .estimate =
            [](const fw::OpSpec& spec, const CostEnv& env) {
              const auto& cfg = fw::spec_config<fused::MoeDispatchConfig>(spec);
              CostEstimate est;
              const double gemm = moe_gemm_ns(cfg, env);
              const double a2a = moe_a2a_ns(cfg, env);
              est.baseline_ns = gemm + baseline_boundary_ns(env) + a2a;
              // Fused: finished tiles PUT while the GEMM continues, but the
              // persistent kernel's bookkeeping taxes every tile and small
              // problems can't bury the collective's latency tail — which
              // is exactly the measured T=512 crossover.
              est.fused_ns = std::max(gemm, a2a) + launch_ns(env) +
                             0.25 * std::min(gemm, a2a) +
                             2.0 * env.scaleup_latency_ns();
              est.valid = true;
              return est;
            },
        .work =
            [](const fw::OpSpec& spec, const CostEnv&) {
              const auto& cfg = fw::spec_config<fused::MoeDispatchConfig>(spec);
              return static_cast<double>(cfg.assignments()) *
                     static_cast<double>(cfg.d_model) *
                     static_cast<double>(cfg.d_out);
            },
    }};

// ---------------------------------------------------------------------------
// fcc::gemm_a2a
// ---------------------------------------------------------------------------

const ScorerRegistrar gemm_a2a_model{
    "fcc::gemm_a2a",
    OpCostModel{
        .estimate =
            [](const fw::OpSpec& spec, const CostEnv& env) {
              const auto& cfg = fw::spec_config<fused::GemmA2AConfig>(spec);
              CostEstimate est;
              const int p = env.num_pes();
              const double m = static_cast<double>(p) * cfg.rows_per_origin;
              const double tiles =
                  std::ceil(m / cfg.block_m) *
                  std::ceil(static_cast<double>(cfg.d_model) / cfg.block_n);
              const double hbm =
                  tiles *
                  (static_cast<double>(cfg.block_m) * cfg.d_ff +
                   static_cast<double>(cfg.d_ff) * cfg.block_n +
                   static_cast<double>(cfg.block_m) * cfg.block_n) *
                  4.0;
              const double flops = 2.0 * m * cfg.d_model * cfg.d_ff;
              const double gemm = env.device_ns(hbm, flops,
                                                cfg.alu_efficiency);
              const double bytes = m * cfg.d_model * 4.0 *
                                   static_cast<double>(p - 1) /
                                   static_cast<double>(p);
              const double a2a = env.wire_ns(bytes, inter_fraction(env));
              est.baseline_ns = gemm + baseline_boundary_ns(env) + a2a;
              est.fused_ns = std::max(gemm, a2a) + launch_ns(env) +
                             0.1 * std::min(gemm, a2a) +
                             2.0 * env.scaleup_latency_ns();
              est.valid = true;
              return est;
            },
        .work =
            [](const fw::OpSpec& spec, const CostEnv& env) {
              const auto& cfg = fw::spec_config<fused::GemmA2AConfig>(spec);
              return static_cast<double>(env.num_pes()) *
                     static_cast<double>(cfg.rows_per_origin) *
                     static_cast<double>(cfg.d_model) *
                     static_cast<double>(cfg.d_ff);
            },
    }};

// ---------------------------------------------------------------------------
// fcc::embedding_a2a
// ---------------------------------------------------------------------------

const ScorerRegistrar embedding_a2a_model{
    "fcc::embedding_a2a",
    OpCostModel{
        .estimate =
            [](const fw::OpSpec& spec, const CostEnv& env) {
              const auto& cfg =
                  fw::spec_config<fused::EmbeddingA2AConfig>(spec);
              CostEstimate est;
              const int p = std::max(1, cfg.map.num_pes);
              // Pooled lookups this PE produces: its tables x the global
              // batch; each reads `pooling` rows of `dim` plus indices.
              const double lookups =
                  static_cast<double>(cfg.map.tables_per_pe) *
                  static_cast<double>(cfg.map.global_batch);
              const double per_lookup_bytes =
                  static_cast<double>(cfg.pooling) * cfg.map.dim * 4.0 +
                  static_cast<double>(cfg.pooling) * 4.0 +
                  static_cast<double>(cfg.map.dim) * 4.0;
              const double flops =
                  lookups * static_cast<double>(cfg.pooling) * cfg.map.dim;
              const double pool =
                  env.device_ns(lookups * per_lookup_bytes, flops);
              const double bytes = lookups * cfg.map.dim * 4.0 *
                                   static_cast<double>(p - 1) /
                                   static_cast<double>(p);
              const double a2a = env.wire_ns(bytes, inter_fraction(env));
              est.baseline_ns = pool + baseline_boundary_ns(env) + a2a;
              // The fused persistent kernel pays the contention-curve tax
              // (kFusedEmbeddingCurve's 40% degradation past the knee) on
              // its HBM stream but hides the exchange entirely.
              const double fused_pool = env.device_ns(
                  lookups * per_lookup_bytes * 1.15, flops);
              est.fused_ns = std::max(fused_pool, a2a) + launch_ns(env) +
                             2.0 * env.scaleup_latency_ns();
              est.valid = true;
              return est;
            },
        .work =
            [](const fw::OpSpec& spec, const CostEnv&) {
              const auto& cfg =
                  fw::spec_config<fused::EmbeddingA2AConfig>(spec);
              return static_cast<double>(cfg.map.tables_per_pe) *
                     static_cast<double>(cfg.map.global_batch) *
                     static_cast<double>(cfg.map.dim) *
                     static_cast<double>(cfg.pooling);
            },
    }};

}  // namespace
}  // namespace fcc::plan

#include "plan/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fcc::plan {

void CalibrationTable::add(CalibrationAnchor anchor) {
  FCC_CHECK_MSG(anchor.work > 0, "calibration anchor needs work > 0: "
                                     << anchor.op << " " << anchor.label);
  FCC_CHECK_MSG(
      anchor.analytic_fused_ns > 0 && anchor.analytic_baseline_ns > 0,
      "calibration anchor needs analytic values: " << anchor.op << " "
                                                   << anchor.label);
  anchors_.push_back(std::move(anchor));
}

CalibrationTable::Correction CalibrationTable::correction(
    const std::string& op, const std::string& topo, double work) const {
  // Collect matching anchors as (log work, fused ratio, baseline ratio).
  struct Point {
    double lw, fused, baseline;
  };
  std::vector<Point> pts;
  for (const CalibrationAnchor& a : anchors_) {
    if (a.op != op || a.topo != topo) continue;
    pts.push_back(Point{std::log(a.work),
                        a.measured_fused_ns / a.analytic_fused_ns,
                        a.measured_baseline_ns / a.analytic_baseline_ns});
  }
  if (pts.empty()) return {};
  std::sort(pts.begin(), pts.end(),
            [](const Point& a, const Point& b) { return a.lw < b.lw; });

  Correction c;
  c.any = true;
  const double lw = std::log(std::max(work, 1.0));
  if (lw <= pts.front().lw) {
    c.fused = pts.front().fused;
    c.baseline = pts.front().baseline;
    return c;
  }
  if (lw >= pts.back().lw) {
    c.fused = pts.back().fused;
    c.baseline = pts.back().baseline;
    return c;
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (lw > pts[i].lw) continue;
    const Point& lo = pts[i - 1];
    const Point& hi = pts[i];
    const double span = hi.lw - lo.lw;
    const double t = span > 0 ? (lw - lo.lw) / span : 0.0;
    c.fused = lo.fused + t * (hi.fused - lo.fused);
    c.baseline = lo.baseline + t * (hi.baseline - lo.baseline);
    return c;
  }
  return c;  // unreachable
}

namespace {

struct AnchorRow {
  const char* op;
  const char* topo;
  double work;
  double measured_fused_ns;
  double measured_baseline_ns;
  double analytic_fused_ns;
  double analytic_baseline_ns;
  const char* label;
};

// Regenerate with: bench_plan_quality --print-calibration
// (grid = the figure-bench sweeps: fig08 embedding, fig09 gemv+allreduce,
// fig10 gemm+a2a, and the bench_moe_dispatch shape sweep with its T=512
// crossover point, on the fully-connected and switched 1x4 machines.)
std::vector<AnchorRow> builtin_rows() {
  return {
      // clang-format off
      {"fcc::gemv_allreduce", "fully_connected/1x4", 67108864, 55802, 71135, 47192.407326007327, 59024.412210012211, "gemv M=8192 K=8192 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 134217728, 104410, 121350, 88284.814652014655, 100648.82442002442, "gemv M=16384 K=8192 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 268435456, 199910, 217342, 170224.81953601952, 182588.82930402929, "gemv M=16384 K=16384 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 268435456, 173918, 202289, 170469.62930402931, 183897.64884004885, "gemv M=32768 K=8192 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 536870912, 344683, 358959, 334839.25860805862, 350395.29768009769, "gemv M=65536 K=8192 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 1048576, 10722, 25209, 6852.4503052503051, 18121.95750915751, "gemv M=1024 K=1024 fc1x4"},
      {"fcc::gemv_allreduce", "fully_connected/1x4", 524288, 9968, 24386, 6826.2251526251521, 17760.978754578755, "gemv M=512 K=1024 fc1x4"},
      {"fcc::gemv_allreduce", "switched/1x4", 67108864, 55802, 71135, 47192.407326007327, 59024.412210012211, "gemv M=8192 K=8192 sw1x4"},
      {"fcc::gemv_allreduce", "switched/1x4", 134217728, 104410, 121350, 88284.814652014655, 100648.82442002442, "gemv M=16384 K=8192 sw1x4"},
      {"fcc::gemv_allreduce", "switched/1x4", 536870912, 344683, 358959, 334839.25860805862, 350395.29768009769, "gemv M=65536 K=8192 sw1x4"},
      {"fcc::gemv_allreduce", "fully_connected/2x4", 67108864, 4616793, 55108, 28243.977533577534, 42870.610989010987, "gemv M=8192 K=8192 fc2x4"},
      {"fcc::gemv_allreduce", "fully_connected/2x4", 134217728, 6856293, 84913, 48887.955067155068, 65341.221978021975, "gemv M=16384 K=8192 fc2x4"},
      {"fcc::gemv_allreduce", "fully_connected/2x4", 268435456, 7898303, 137534, 90175.910134310136, 110282.44395604395, "gemv M=32768 K=8192 fc2x4"},
      {"fcc::moe_dispatch", "fully_connected/1x4", 1073741824, 543181, 531495, 299534.20101137803, 378067.65815423522, "moe T=512 dM=1024 dO=1024 skew=4 fc1x4"},
      {"fcc::moe_dispatch", "fully_connected/1x4", 2147483648, 628461, 700579, 593493.40202275605, 739435.31630847044, "moe T=1024 dM=1024 dO=1024 skew=4 fc1x4"},
      {"fcc::moe_dispatch", "fully_connected/1x4", 4294967296, 1143343, 1376976, 1181411.8040455121, 1462170.6326169409, "moe T=2048 dM=1024 dO=1024 skew=4 fc1x4"},
      {"fcc::moe_dispatch", "fully_connected/1x4", 8589934592, 2280207, 2462935, 2267370.6652338817, 2548129.4938053102, "moe T=2048 dM=2048 dO=1024 skew=4 fc1x4"},
      {"fcc::moe_dispatch", "fully_connected/1x4", 34359738368, 8831157, 9785053, 9052757.6609355267, 10142417.975221241, "moe T=4096 dM=2048 dO=2048 skew=4 fc1x4"},
      {"fcc::moe_dispatch", "switched/1x4", 1073741824, 543181, 531495, 299534.20101137803, 378067.65815423522, "moe T=512 dM=1024 dO=1024 skew=4 sw1x4"},
      {"fcc::moe_dispatch", "switched/1x4", 4294967296, 1143343, 1376976, 1181411.8040455121, 1462170.6326169409, "moe T=2048 dM=1024 dO=1024 skew=4 sw1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 4294967296, 1092439, 1266026, 1107157.5011883692, 1259945.2611883692, "gemm R=1024 dM=1024 dF=1024 fc1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 8589934592, 2178788, 2509312, 2208845.0023767385, 2503190.5223767385, "gemm R=1024 dM=2048 dF=1024 fc1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 17179869184, 4350706, 4681230, 4380762.7247534776, 4675108.2447534772, "gemm R=2048 dM=1024 dF=2048 fc1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 17179869184, 4351576, 4995882, 4412220.0047534769, 4989681.044753477, "gemm R=2048 dM=2048 dF=1024 fc1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 68719476736, 17385125, 18656730, 17506640.89901391, 18650332.979013909, "gemm R=4096 dM=2048 dF=2048 fc1x4"},
      {"fcc::gemm_a2a", "fully_connected/1x4", 33554432, 231575, 245782, 14199.813603034136, 27641.653603034134, "gemm R=64 dM=256 dF=512 fc1x4"},
      {"fcc::gemm_a2a", "switched/1x4", 4294967296, 1092439, 1266026, 1107157.5011883692, 1259945.2611883692, "gemm R=1024 dM=1024 dF=1024 sw1x4"},
      {"fcc::gemm_a2a", "switched/1x4", 68719476736, 17385125, 18656730, 17506640.89901391, 18650332.979013909, "gemm R=4096 dM=2048 dF=2048 sw1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 838860800, 2081837, 2707834, 2393935.1384615381, 2408259.8769230768, "emb B=512 T=64 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 1677721600, 4146677, 5392965, 4782470.2769230762, 4799819.7538461536, "emb B=512 T=128 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 3355443200, 8286029, 11013598, 9559540.5538461525, 9582939.5076923072, "emb B=1024 T=128 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 6710886400, 16552945, 22004499, 19113681.107692305, 19149179.015384614, "emb B=1024 T=256 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 6710886400, 16552879, 20280723, 19113681.107692305, 19149179.015384614, "emb B=2048 T=128 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 13421772800, 33095767, 40538746, 38221962.21538461, 38281658.030769229, "emb B=2048 T=256 fc1x4"},
      {"fcc::embedding_a2a", "fully_connected/1x4", 2097152, 12400, 35626, 11473.482783882784, 23210.089377289376, "emb B=128 T=4 dim=64 fc1x4"},
      {"fcc::embedding_a2a", "switched/1x4", 838860800, 2081837, 2707834, 2393935.1384615381, 2408259.8769230768, "emb B=512 T=64 sw1x4"},
      {"fcc::embedding_a2a", "switched/1x4", 6710886400, 16552945, 22004499, 19113681.107692305, 19149179.015384614, "emb B=1024 T=256 sw1x4"},
      {"fcc::embedding_a2a", "switched/1x4", 13421772800, 33095767, 40538746, 38221962.21538461, 38281658.030769229, "emb B=2048 T=256 sw1x4"},
      // clang-format on
  };
}

}  // namespace

const CalibrationTable& builtin_calibration() {
  static const CalibrationTable table = [] {
    CalibrationTable t;
    for (const AnchorRow& r : builtin_rows()) {
      CalibrationAnchor a;
      a.op = r.op;
      a.topo = r.topo;
      a.work = r.work;
      a.measured_fused_ns = r.measured_fused_ns;
      a.measured_baseline_ns = r.measured_baseline_ns;
      a.analytic_fused_ns = r.analytic_fused_ns;
      a.analytic_baseline_ns = r.analytic_baseline_ns;
      a.label = r.label;
      t.add(std::move(a));
    }
    return t;
  }();
  return table;
}

const CalibrationTable& empty_calibration() {
  static const CalibrationTable table;
  return table;
}

}  // namespace fcc::plan

#include "plan/cost_scorer.h"

#include <algorithm>

#include "common/check.h"
#include "hw/topology.h"

namespace fcc::plan {

double CostEnv::device_ns(double hbm_bytes, double flops,
                          double alu_efficiency) const {
  const double mem =
      hbm_bytes > 0 ? hbm_bytes / machine.gpu.hbm_bytes_per_ns : 0.0;
  const double alu =
      flops > 0 ? flops / (machine.gpu.fp32_flops_per_ns * alu_efficiency)
                : 0.0;
  return std::max(mem, alu);
}

double CostEnv::wire_ns(double bytes, double inter_fraction) const {
  double port_bw = machine.fabric.port_bytes_per_ns;
  if (machine.topology.kind == hw::TopologySpec::Kind::kSwitchedNode) {
    port_bw = std::min(port_bw, machine.topology.switched.port_bytes_per_ns);
    // A shared trunk caps the node's aggregate bisection; charge this
    // GPU its 1/P share of the cap when that is tighter than its port.
    const double trunk = machine.topology.switched.trunk_bytes_per_ns;
    if (trunk > 0) {
      port_bw = std::min(port_bw, trunk / std::max(1, num_pes()));
    }
  }
  const double intra = bytes * (1.0 - inter_fraction) / port_bw;
  double inter = 0.0;
  if (inter_fraction > 0) {
    double nic_bw = machine.ib.wire_bytes_per_ns;
    if (machine.topology.kind == hw::TopologySpec::Kind::kMultiRail) {
      nic_bw *= std::max(1, machine.topology.nic_rails);
    } else if (machine.topology.kind == hw::TopologySpec::Kind::kTorus2D) {
      // A torus node has four links but traffic serializes over hops;
      // model the effective per-node injection bandwidth as one link.
      nic_bw = machine.topology.torus.link_bytes_per_ns;
    }
    inter = bytes * inter_fraction / nic_bw +
            static_cast<double>(machine.ib.wire_latency_ns);
  }
  return intra + inter + static_cast<double>(scaleup_latency_ns());
}

double CostEnv::scaleup_latency_ns() const {
  if (machine.topology.kind == hw::TopologySpec::Kind::kSwitchedNode) {
    // GPU -> switch -> GPU: two hop traversals.
    return 2.0 * static_cast<double>(machine.topology.switched.hop_latency_ns);
  }
  return static_cast<double>(machine.fabric.latency_ns);
}

std::string CostEnv::topo_kind() const {
  std::string kind = "unknown";
  switch (machine.topology.kind) {
    case hw::TopologySpec::Kind::kFullyConnected:
      kind = "fully_connected";
      break;
    case hw::TopologySpec::Kind::kSwitchedNode:
      kind = "switched";
      break;
    case hw::TopologySpec::Kind::kMultiRail:
      kind = "multi_rail";
      break;
    case hw::TopologySpec::Kind::kTorus2D:
      kind = "torus";
      break;
  }
  // Node geometry is part of the key: a 1x4 and a 2x4 machine of the same
  // kind have different measured corrections and must not share anchors.
  return kind + "/" + std::to_string(machine.num_nodes) + "x" +
         std::to_string(machine.gpus_per_node);
}

const char* allreduce_algo_name(ccl::AllReduceAlgo algo) {
  switch (algo) {
    case ccl::AllReduceAlgo::kAuto:
      return "auto";
    case ccl::AllReduceAlgo::kTwoPhaseDirect:
      return "two_phase_direct";
    case ccl::AllReduceAlgo::kRing:
      return "ring";
    case ccl::AllReduceAlgo::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

ScorerRegistry& ScorerRegistry::global() {
  static ScorerRegistry registry;
  return registry;
}

void ScorerRegistry::register_model(std::string op, OpCostModel model) {
  FCC_CHECK_MSG(model.estimate != nullptr,
                "cost model for '" << op << "' needs an estimate fn");
  FCC_CHECK_MSG(model.work != nullptr,
                "cost model for '" << op << "' needs a work fn");
  const auto [it, inserted] = models_.emplace(std::move(op), std::move(model));
  FCC_CHECK_MSG(inserted, "duplicate cost model registration: " << it->first);
}

const OpCostModel* ScorerRegistry::find(const std::string& op) const {
  const auto it = models_.find(op);
  return it == models_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScorerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [k, v] : models_) out.push_back(k);
  return out;
}

CostScorer::CostScorer(CostEnv env, bool use_calibration,
                       const ScorerRegistry& models,
                       const CalibrationTable& calibration)
    : env_(std::move(env)),
      use_calibration_(use_calibration),
      models_(models),
      calibration_(calibration) {}

CostEstimate CostScorer::score(const fw::OpSpec& spec) const {
  const OpCostModel* model = models_.find(spec.name);
  if (model == nullptr) return {};
  CostEstimate est = model->estimate(spec, env_);
  if (!est.valid || !use_calibration_) return est;
  const auto corr = calibration_.correction(spec.name, env_.topo_kind(),
                                            model->work(spec, env_));
  if (corr.any) {
    est.fused_ns *= corr.fused;
    est.baseline_ns *= corr.baseline;
    est.calibrated = true;
  }
  return est;
}

}  // namespace fcc::plan

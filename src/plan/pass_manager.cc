#include "plan/pass_manager.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace fcc::plan {

PassRegistry& PassRegistry::global() {
  static PassRegistry registry;
  return registry;
}

void PassRegistry::register_pass(PassInfo info, PassFn fn) {
  FCC_CHECK_MSG(!info.name.empty(), "pass needs a name");
  FCC_CHECK_MSG(fn != nullptr, "pass needs a body: " << info.name);
  for (const Pass& p : passes_) {
    FCC_CHECK_MSG(p.info.name != info.name,
                  "duplicate pass registration: " << info.name);
  }
  passes_.push_back(Pass{std::move(info), std::move(fn)});
}

std::vector<const Pass*> PassRegistry::ordered() const {
  std::vector<const Pass*> out;
  out.reserve(passes_.size());
  for (const Pass& p : passes_) out.push_back(&p);
  std::sort(out.begin(), out.end(), [](const Pass* a, const Pass* b) {
    if (a->info.order != b->info.order) return a->info.order < b->info.order;
    return a->info.name < b->info.name;
  });
  return out;
}

const Pass* PassRegistry::find(const std::string& name) const {
  for (const Pass& p : passes_) {
    if (p.info.name == name) return &p;
  }
  return nullptr;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> out;
  for (const Pass* p : ordered()) out.push_back(p->info.name);
  return out;
}

PassManager::PassManager(std::vector<std::string> enabled,
                         const PassRegistry& registry) {
  if (enabled.empty()) {
    for (const Pass* p : registry.ordered()) {
      if (p->info.default_on) selected_.push_back(p);
    }
    return;
  }
  for (const std::string& name : enabled) {
    const Pass* p = registry.find(name);
    if (p == nullptr) {
      std::ostringstream os;
      os << "unknown plan pass: '" << name << "'; registered passes: [";
      bool first = true;
      for (const std::string& n : registry.names()) {
        os << (first ? "" : ", ") << n;
        first = false;
      }
      os << "]";
      throw std::logic_error(os.str());
    }
    selected_.push_back(p);
  }
}

std::vector<PassManager::PassRun> PassManager::run(fw::Graph& graph,
                                                   PassContext& ctx) const {
  std::vector<PassRun> runs;
  runs.reserve(selected_.size());
  for (const Pass* p : selected_) {
    runs.push_back(PassRun{p->info.name, p->fn(graph, ctx)});
  }
  return runs;
}

}  // namespace fcc::plan

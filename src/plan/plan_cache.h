// LRU cache of planning decisions keyed on canonical fingerprints.
//
// Keys are the full canonical strings (graph shape | topology | planner
// mode) — deliberately not hashes, so two distinct plans can never collide
// into one entry; memory is bounded by the LRU capacity instead. A hit
// returns the recorded decisions (fused collapses, per-node backends, ccl
// algorithm choices) plus the decision log for the report; the planner
// replays them mechanically with zero passes re-run.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "framework/graph.h"
#include "framework/op_registry.h"

namespace fcc::plan {

/// A collective-algorithm override recorded for one node.
struct AlgoChoice {
  int node = -1;
  ccl::AllReduceAlgo algo = ccl::AllReduceAlgo::kTwoPhaseDirect;
};

/// The planner's complete, replayable decision set for one graph on one
/// machine. Indices refer to node ids of the *unlowered* input graph
/// (lowering keeps ids stable; fused-away slots just stop mattering).
struct Plan {
  std::vector<fw::FusedRewrite> fused_rewrites;
  /// Backend per node id; covers every node, fused-away slots ignored.
  std::vector<fw::Backend> backends;
  std::vector<AlgoChoice> allreduce_algos;
};

/// One scored candidate's accept/reject record (PlanReport line item).
struct PlanDecision {
  std::string pass;   // pass that produced the decision
  int node = -1;      // node id in the lowered graph
  std::string op;
  std::string label;
  double predicted_fused_ns = 0.0;
  double predicted_baseline_ns = 0.0;
  bool calibrated = false;
  bool accepted = false;  // the non-default choice was applied
  std::string choice;     // "fused", "baseline", or an allreduce algo name
  std::string why;        // one-line human rationale
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 128);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    /// Lookups refused because the graph fingerprint was inexact (an op
    /// without a shape_key) — counted separately from misses because
    /// inserting such a plan would alias distinct graphs.
    std::int64_t uncacheable = 0;

    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  struct Entry {
    Plan plan;
    std::vector<PlanDecision> decisions;
  };

  /// Returns the cached entry and bumps it most-recent, or nullptr (and
  /// counts a miss). The pointer is invalidated by the next insert().
  const Entry* find(const std::string& key);
  void insert(const std::string& key, Entry entry);
  void note_uncacheable() { ++stats_.uncacheable; }

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  std::size_t capacity_;
  /// Most-recent first; the map points into the list.
  std::list<std::pair<std::string, Entry>> lru_;
  std::map<std::string, std::list<std::pair<std::string, Entry>>::iterator>
      entries_;
  Stats stats_;
};

}  // namespace fcc::plan

#include "plan/plan_cache.h"

#include "common/check.h"

namespace fcc::plan {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  FCC_CHECK_MSG(capacity_ >= 1, "PlanCache capacity must be >= 1");
}

const PlanCache::Entry* PlanCache::find(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump most-recent
  return &it->second->second;
}

void PlanCache::insert(const std::string& key, Entry entry) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace fcc::plan

// Bulk-synchronous collective library (RCCL analog) — the paper's baseline.
//
// Collectives run as device-wide "blit kernels": all transfers for a phase
// are issued when the phase starts, the phase ends when the slowest rank's
// data lands, and reduction math is charged at aggregate HBM bandwidth.
// Kernel-launch/synchronization overheads are charged by the caller's
// Stream (exactly where the real RCCL pays them); the collectives here model
// data movement.
//
// Hierarchy awareness: AllReduce and All-to-All default to kAuto, which
// inspects the machine topology. A communicator spanning several nodes with
// several members per node stages through the node boundary — intra-node
// reduce-scatter, inter-node ring per lane, intra-node all-gather for
// AllReduce; node-aggregated NIC messages for All-to-All — so the slow
// inter-node links carry 1/gpus_per_node of the flat algorithms' traffic.
// Single-node or one-GPU-per-node spans resolve to the flat algorithms
// unchanged, and the flat variants stay available as explicit opt-ins.
//
// Functional mode: pass per-rank float spans; values are verified against
// references in tests. Timing-only mode: pass empty FloatBufs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/machine.h"
#include "sim/co.h"

namespace fcc::ccl {

enum class AllReduceAlgo {
  kAuto,            // topology-selected (see Communicator::select_allreduce)
  kTwoPhaseDirect,  // reduce-scatter + all-gather, direct peer writes [32]
  kRing,            // 2(N-1)-step ring
  kHierarchical,    // intra-node RS -> inter-node ring per lane -> intra AG
};

enum class AllToAllAlgo {
  kAuto,          // topology-selected (see Communicator::select_a2a)
  kPairwise,      // balanced pairwise rounds (RCCL's flat schedule)
  kNodeAggregate, // gather per-node traffic, one NIC message per node pair
};

/// Per-rank float buffers; empty vector means timing-only.
struct FloatBufs {
  std::vector<std::span<float>> per_rank;

  bool functional() const { return !per_rank.empty(); }
  std::span<float> rank(int r) { return per_rank.at(static_cast<std::size_t>(r)); }
};

/// What kAuto resolved to on a (possibly) degraded fabric, and why. The
/// traffic factors predict the inter-node byte inflation of the fallback
/// relative to the hierarchical/aggregated algorithm it displaced (1.0 when
/// nothing was displaced) — g and g^2 for g members per node, the staging
/// ratios from the header comment above.
struct DegradedPlan {
  bool degraded = false;  // any unhealthy component in the span's reach
  AllReduceAlgo allreduce = AllReduceAlgo::kTwoPhaseDirect;
  AllToAllAlgo a2a = AllToAllAlgo::kPairwise;
  /// Unhealthy component names the selection steered around (from
  /// hw::Topology::degraded_components).
  std::vector<std::string> avoided;
  double allreduce_traffic_factor = 1.0;
  double a2a_message_factor = 1.0;
};

class Communicator {
 public:
  Communicator(gpu::Machine& machine, std::vector<PeId> members);

  int size() const { return static_cast<int>(members_.size()); }
  PeId pe(int rank) const { return members_.at(static_cast<std::size_t>(rank)); }
  gpu::Machine& machine() { return machine_; }

  /// In-place sum-AllReduce over `n_elems` fp32 per rank. The default
  /// auto-selects from the topology: hierarchical staging when the
  /// communicator spans several nodes with several members each, the flat
  /// two-phase direct algorithm otherwise. The flat algorithms remain
  /// explicit opt-ins.
  sim::Co all_reduce(std::int64_t n_elems, FloatBufs bufs,
                     AllReduceAlgo algo = AllReduceAlgo::kAuto);

  /// Algorithm kAuto resolves to for this communicator's span. Selection
  /// consults link health: the hierarchical/node-aggregated algorithms lean
  /// on every node's NIC and scale-up fabric symmetrically, so a dead rail
  /// or derated trunk in the span drops selection back to the flat
  /// algorithms (which a dead component either reroutes under or fails
  /// loudly via PartitionedFabricError). Non-const: degraded-component
  /// queries are cached per fault epoch.
  AllReduceAlgo select_allreduce();
  AllToAllAlgo select_a2a();

  /// Selection report for this span: what kAuto picks right now, which
  /// unhealthy components it is avoiding, and the predicted traffic cost of
  /// the fallback.
  DegradedPlan degraded_plan();

  /// All-to-All: each rank sends `chunk_elems` fp32 to every rank (including
  /// its own local chunk copy). send/recv layout: rank-major chunks —
  /// send[r] holds N chunks ordered by destination, recv[r] by source.
  sim::Co all_to_all(std::int64_t chunk_elems, FloatBufs send, FloatBufs recv,
                     AllToAllAlgo algo = AllToAllAlgo::kAuto);

  /// ReduceScatter: after completion rank r holds the sum of everyone's
  /// r-th chunk in the first `chunk_elems` of its buffer.
  sim::Co reduce_scatter(std::int64_t chunk_elems, FloatBufs bufs);

  /// AllGather of `chunk_elems` fp32 from each rank into every rank's
  /// buffer (size N * chunk_elems, source-major).
  sim::Co all_gather(std::int64_t chunk_elems, FloatBufs bufs);

  /// Broadcast `n_elems` from `root` to all ranks.
  sim::Co broadcast(std::int64_t n_elems, int root, FloatBufs bufs);

  /// Variable All-to-All (MoE dispatch with uneven routing): rank s sends
  /// counts[s * n + d] fp32 elements to rank d — the traffic matrix is
  /// data-dependent and need not be symmetric.
  ///
  /// Variable-chunk layout (all offsets in elements, no alignment padding):
  ///  * send side, destination-major: rank s's buffer holds its segments in
  ///    destination order, segment d at offset sum(counts[s*n + d'<d]) with
  ///    counts[s*n + d] elements.
  ///  * recv side, source-major: rank d's buffer receives segment s at
  ///    offset sum(counts[s'<s, d]); buffers may be exactly the sum of
  ///    incoming counts (they are only checked to cover offset + count).
  ///
  /// Empty segments (count == 0) are legal anywhere, including a whole row
  /// or column of the matrix: they occupy zero elements on both sides, move
  /// no bytes, and add nothing to the modeled time — but every call still
  /// pays kSwOverheadNs once. The s == d diagonal is charged as a local HBM
  /// copy, not fabric traffic.
  sim::Co all_to_all_v(const std::vector<std::int64_t>& counts,
                       FloatBufs send, FloatBufs recv);

  /// Gather `chunk_elems` from every rank to `root` (source-major layout
  /// in root's buffer).
  sim::Co gather(std::int64_t chunk_elems, int root, FloatBufs bufs);

  /// Scatter `chunk_elems` per rank from `root` (destination-major layout
  /// in root's buffer) into each rank's first chunk.
  sim::Co scatter(std::int64_t chunk_elems, int root, FloatBufs bufs);

  /// Sum-reduce `n_elems` to `root` only.
  sim::Co reduce(std::int64_t n_elems, int root, FloatBufs bufs);

  /// Bulk-synchronous barrier (direct signal exchange).
  sim::Co barrier();

  /// Wall-to-wall time of the last completed collective (simulated ns).
  TimeNs last_duration() const { return last_duration_; }

  /// Software latency floor of one library collective (protocol setup,
  /// proxy/grid coordination) — RCCL-class collectives pay tens of
  /// microseconds even for tiny messages; charged once per collective.
  static constexpr TimeNs kSwOverheadNs = 10000;

 private:
  /// Time to reduce `bytes` through HBM at device-aggregate bandwidth.
  TimeNs reduce_cost(Bytes bytes) const;

  /// Member rank indices grouped by node, in member order. `uniform` means
  /// every node contributes the same number of members — the layout the
  /// hierarchical algorithms require. Computed once at construction
  /// (membership is immutable).
  struct NodeGroups {
    std::vector<std::vector<int>> by_node;  // only nodes with members
    bool uniform = false;
  };

  /// Timing-only bodies of the AllReduce algorithms; the functional sum is
  /// algorithm-independent and handled by the caller.
  TimeNs flat_direct_time(std::int64_t n_elems, TimeNs t0);
  TimeNs flat_ring_time(std::int64_t n_elems, TimeNs t0);
  TimeNs hierarchical_allreduce_time(std::int64_t n_elems, TimeNs t0);
  TimeNs pairwise_a2a_time(std::int64_t chunk_elems, TimeNs t0);
  TimeNs node_aggregate_a2a_time(std::int64_t chunk_elems, TimeNs t0);

  /// True when the span's shape admits the hierarchical algorithms at all
  /// (several nodes, uniform, several members each) — health aside.
  bool hierarchy_eligible() const;

  /// Unhealthy components in the span's reach, cached per fault epoch so
  /// steady-state selection on a stable fabric costs one counter compare.
  const std::vector<std::string>& avoided_components();

  gpu::Machine& machine_;
  std::vector<PeId> members_;
  NodeGroups groups_;
  TimeNs last_duration_ = 0;
  std::vector<std::string> avoided_;
  std::uint64_t avoided_epoch_ = ~std::uint64_t{0};
};

}  // namespace fcc::ccl

// Bulk-synchronous collective library (RCCL analog) — the paper's baseline.
//
// Collectives run as device-wide "blit kernels": all transfers for a phase
// are issued when the phase starts, the phase ends when the slowest rank's
// data lands, and reduction math is charged at aggregate HBM bandwidth.
// Kernel-launch/synchronization overheads are charged by the caller's
// Stream (exactly where the real RCCL pays them); the collectives here model
// data movement.
//
// Functional mode: pass per-rank float spans; values are verified against
// references in tests. Timing-only mode: pass empty FloatBufs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/machine.h"
#include "sim/co.h"

namespace fcc::ccl {

enum class AllReduceAlgo {
  kTwoPhaseDirect,  // reduce-scatter + all-gather, direct peer writes [32]
  kRing,            // 2(N-1)-step ring
};

/// Per-rank float buffers; empty vector means timing-only.
struct FloatBufs {
  std::vector<std::span<float>> per_rank;

  bool functional() const { return !per_rank.empty(); }
  std::span<float> rank(int r) { return per_rank.at(static_cast<std::size_t>(r)); }
};

class Communicator {
 public:
  Communicator(gpu::Machine& machine, std::vector<PeId> members);

  int size() const { return static_cast<int>(members_.size()); }
  PeId pe(int rank) const { return members_.at(static_cast<std::size_t>(rank)); }
  gpu::Machine& machine() { return machine_; }

  /// In-place sum-AllReduce over `n_elems` fp32 per rank.
  sim::Co all_reduce(std::int64_t n_elems, FloatBufs bufs,
                     AllReduceAlgo algo = AllReduceAlgo::kTwoPhaseDirect);

  /// All-to-All: each rank sends `chunk_elems` fp32 to every rank (including
  /// its own local chunk copy). send/recv layout: rank-major chunks —
  /// send[r] holds N chunks ordered by destination, recv[r] by source.
  sim::Co all_to_all(std::int64_t chunk_elems, FloatBufs send, FloatBufs recv);

  /// ReduceScatter: after completion rank r holds the sum of everyone's
  /// r-th chunk in the first `chunk_elems` of its buffer.
  sim::Co reduce_scatter(std::int64_t chunk_elems, FloatBufs bufs);

  /// AllGather of `chunk_elems` fp32 from each rank into every rank's
  /// buffer (size N * chunk_elems, source-major).
  sim::Co all_gather(std::int64_t chunk_elems, FloatBufs bufs);

  /// Broadcast `n_elems` from `root` to all ranks.
  sim::Co broadcast(std::int64_t n_elems, int root, FloatBufs bufs);

  /// Variable All-to-All (MoE dispatch with uneven routing): rank s sends
  /// counts[s * n + d] fp32 elements to rank d — the traffic matrix is
  /// data-dependent and need not be symmetric.
  ///
  /// Variable-chunk layout (all offsets in elements, no alignment padding):
  ///  * send side, destination-major: rank s's buffer holds its segments in
  ///    destination order, segment d at offset sum(counts[s*n + d'<d]) with
  ///    counts[s*n + d] elements.
  ///  * recv side, source-major: rank d's buffer receives segment s at
  ///    offset sum(counts[s'<s, d]); buffers may be exactly the sum of
  ///    incoming counts (they are only checked to cover offset + count).
  ///
  /// Empty segments (count == 0) are legal anywhere, including a whole row
  /// or column of the matrix: they occupy zero elements on both sides, move
  /// no bytes, and add nothing to the modeled time — but every call still
  /// pays kSwOverheadNs once. The s == d diagonal is charged as a local HBM
  /// copy, not fabric traffic.
  sim::Co all_to_all_v(const std::vector<std::int64_t>& counts,
                       FloatBufs send, FloatBufs recv);

  /// Gather `chunk_elems` from every rank to `root` (source-major layout
  /// in root's buffer).
  sim::Co gather(std::int64_t chunk_elems, int root, FloatBufs bufs);

  /// Scatter `chunk_elems` per rank from `root` (destination-major layout
  /// in root's buffer) into each rank's first chunk.
  sim::Co scatter(std::int64_t chunk_elems, int root, FloatBufs bufs);

  /// Sum-reduce `n_elems` to `root` only.
  sim::Co reduce(std::int64_t n_elems, int root, FloatBufs bufs);

  /// Bulk-synchronous barrier (direct signal exchange).
  sim::Co barrier();

  /// Wall-to-wall time of the last completed collective (simulated ns).
  TimeNs last_duration() const { return last_duration_; }

  /// Software latency floor of one library collective (protocol setup,
  /// proxy/grid coordination) — RCCL-class collectives pay tens of
  /// microseconds even for tiny messages; charged once per collective.
  static constexpr TimeNs kSwOverheadNs = 10000;

 private:
  /// Time to reduce `bytes` through HBM at device-aggregate bandwidth.
  TimeNs reduce_cost(Bytes bytes) const;

  gpu::Machine& machine_;
  std::vector<PeId> members_;
  TimeNs last_duration_ = 0;
};

}  // namespace fcc::ccl

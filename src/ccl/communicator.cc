#include "ccl/communicator.h"

#include <algorithm>
#include <coroutine>
#include <functional>
#include <utility>

#include "sim/task.h"

namespace fcc::ccl {
namespace {

constexpr Bytes elems_to_bytes(std::int64_t n) { return n * 4; }

/// Runs a link-reservation sweep and hands back the computed end time.
///
/// Serial machines compute inline in await_ready — no suspension, so the
/// event sequence is byte-identical to the historical inline sweeps.
/// Sharded machines suspend the (shard-0) driver and defer the sweep to the
/// next window barrier, where every shard thread is parked: the sweep reads
/// and reserves link state across all shards data-race-free, then the
/// driver resumes at the exact computed end (a rewind entry when shard 0's
/// frontier already passed it — legal, the continuation only touches
/// shard-0 host state before its next >= lookahead delay). Collectives that
/// overlap other put traffic inside the same window therefore serialize
/// their reservations at the barrier, an ordering approximation consistent
/// with the sharded engine's same-timestamp tie-breaking caveat.
class SweepAwaiter {
 public:
  SweepAwaiter(gpu::Machine& machine, TimeNs t0,
               std::function<TimeNs(TimeNs)> sweep)
      : machine_(machine), t0_(t0), sweep_(std::move(sweep)) {}

  bool await_ready() {
    if (machine_.is_sharded()) return false;
    end_ = sweep_(t0_);
    return true;
  }
  void await_suspend(std::coroutine_handle<> h) {
    machine_.call_at_barrier([this, h] {
      end_ = sweep_(t0_);
      machine_.engine().schedule_resume_at_unchecked(end_, h);
    });
  }
  TimeNs await_resume() const { return end_; }

 private:
  gpu::Machine& machine_;
  TimeNs t0_;
  std::function<TimeNs(TimeNs)> sweep_;
  TimeNs end_ = 0;
};

}  // namespace

Communicator::Communicator(gpu::Machine& machine, std::vector<PeId> members)
    : machine_(machine), members_(std::move(members)) {
  FCC_CHECK(!members_.empty());
  for (PeId pe : members_) {
    FCC_CHECK(pe >= 0 && pe < machine_.num_pes());
  }
  std::vector<std::vector<int>> by_node(
      static_cast<std::size_t>(machine_.num_nodes()));
  for (int r = 0; r < size(); ++r) {
    by_node[static_cast<std::size_t>(machine_.node_of(pe(r)))].push_back(r);
  }
  for (auto& node : by_node) {
    if (!node.empty()) groups_.by_node.push_back(std::move(node));
  }
  groups_.uniform = true;
  for (const auto& node : groups_.by_node) {
    if (node.size() != groups_.by_node.front().size()) groups_.uniform = false;
  }
}

TimeNs Communicator::reduce_cost(Bytes bytes) const {
  // Reads of the incoming chunks + write of the result, at aggregate HBM
  // bandwidth (reduction kernels saturate the device).
  const auto& dev = machine_.device(members_.front());
  const double bw = dev.hbm().total_bandwidth(dev.spec().max_wg_slots());
  return static_cast<TimeNs>(static_cast<double>(bytes) / bw + 0.5);
}

bool Communicator::hierarchy_eligible() const {
  const NodeGroups& g = groups_;
  return g.by_node.size() > 1 && g.uniform && g.by_node.front().size() > 1;
}

const std::vector<std::string>& Communicator::avoided_components() {
  hw::Topology& topo = machine_.topology();
  if (avoided_epoch_ != topo.fault_epoch()) {
    avoided_ = topo.has_faults()
                   ? topo.degraded_components(std::span<const PeId>(members_))
                   : std::vector<std::string>{};
    avoided_epoch_ = topo.fault_epoch();
  }
  return avoided_;
}

AllReduceAlgo Communicator::select_allreduce() {
  if (hierarchy_eligible() && avoided_components().empty()) {
    return AllReduceAlgo::kHierarchical;
  }
  return AllReduceAlgo::kTwoPhaseDirect;
}

AllToAllAlgo Communicator::select_a2a() {
  if (hierarchy_eligible() && avoided_components().empty()) {
    return AllToAllAlgo::kNodeAggregate;
  }
  return AllToAllAlgo::kPairwise;
}

DegradedPlan Communicator::degraded_plan() {
  DegradedPlan plan;
  plan.avoided = avoided_components();
  plan.degraded = !plan.avoided.empty();
  plan.allreduce = select_allreduce();
  plan.a2a = select_a2a();
  if (plan.degraded && hierarchy_eligible()) {
    // The hierarchical AllReduce puts 1/g of the flat two-phase payload on
    // the inter-node links (g lanes each carrying a 1/g shard); node
    // aggregation collapses g*g NIC messages per node pair into one. Being
    // pushed off them costs those factors back.
    const double g = static_cast<double>(groups_.by_node.front().size());
    if (plan.allreduce != AllReduceAlgo::kHierarchical) {
      plan.allreduce_traffic_factor = g;
    }
    if (plan.a2a != AllToAllAlgo::kNodeAggregate) {
      plan.a2a_message_factor = g * g;
    }
  }
  return plan;
}

TimeNs Communicator::flat_direct_time(std::int64_t n_elems, TimeNs t0) {
  const int n = size();
  // Phase 1 (reduce-scatter): rank r owns chunk r; every peer pushes its
  // copy of chunk r to rank r.
  const std::int64_t chunk = (n_elems + n - 1) / n;
  const Bytes chunk_bytes = elems_to_bytes(chunk);
  std::vector<TimeNs> phase1(static_cast<std::size_t>(n), t0);
  for (int dst = 0; dst < n; ++dst) {
    for (int src = 0; src < n; ++src) {
      if (src == dst) continue;
      const TimeNs d =
          machine_.remote_write_time(pe(src), pe(dst), chunk_bytes, t0);
      phase1[static_cast<std::size_t>(dst)] =
          std::max(phase1[static_cast<std::size_t>(dst)], d);
    }
  }
  // Reduce the n incoming copies of the owned chunk.
  for (int r = 0; r < n; ++r) {
    phase1[static_cast<std::size_t>(r)] +=
        reduce_cost(chunk_bytes * (n - 1) + chunk_bytes);
  }
  // Phase 2 (all-gather): each rank broadcasts its reduced chunk.
  std::vector<TimeNs> done(static_cast<std::size_t>(n), t0);
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const TimeNs d = machine_.remote_write_time(
          pe(src), pe(dst), chunk_bytes, phase1[static_cast<std::size_t>(src)]);
      done[static_cast<std::size_t>(dst)] =
          std::max(done[static_cast<std::size_t>(dst)], d);
    }
    done[static_cast<std::size_t>(src)] =
        std::max(done[static_cast<std::size_t>(src)],
                 phase1[static_cast<std::size_t>(src)]);
  }
  TimeNs end = t0;
  for (int r = 0; r < n; ++r) {
    end = std::max(end, done[static_cast<std::size_t>(r)]);
  }
  return end;
}

TimeNs Communicator::flat_ring_time(std::int64_t n_elems, TimeNs t0) {
  const int n = size();
  // Ring: N-1 reduce-scatter steps + N-1 all-gather steps; each step
  // moves one chunk per rank to its neighbour. Steps are modeled with a
  // step barrier (the slowest link paces the ring anyway).
  const std::int64_t chunk = (n_elems + n - 1) / n;
  const Bytes chunk_bytes = elems_to_bytes(chunk);
  TimeNs step_start = t0;
  for (int step = 0; step < 2 * (n - 1); ++step) {
    TimeNs step_end = step_start;
    for (int r = 0; r < n; ++r) {
      const int next = (r + 1) % n;
      TimeNs d = machine_.remote_write_time(pe(r), pe(next), chunk_bytes,
                                            step_start);
      if (step < n - 1) d += reduce_cost(2 * chunk_bytes);
      step_end = std::max(step_end, d);
    }
    step_start = step_end;
  }
  return step_start;
}

TimeNs Communicator::hierarchical_allreduce_time(std::int64_t n_elems,
                                                 TimeNs t0) {
  const NodeGroups& groups = groups_;
  FCC_CHECK_MSG(groups.uniform && groups.by_node.size() > 1 &&
                    groups.by_node.front().size() > 1,
                "hierarchical AllReduce needs >1 node with equal, >1 member "
                "counts; use a flat algorithm for this span");
  const int g = static_cast<int>(groups.by_node.front().size());
  const int nodes = static_cast<int>(groups.by_node.size());
  const std::int64_t chunk = (n_elems + g - 1) / g;  // per-lane shard
  const Bytes chunk_bytes = elems_to_bytes(chunk);

  // Stage A — intra-node reduce-scatter: lane l of each node ends owning
  // the node-local sum of shard l. Direct peer pushes over the scale-up
  // fabric, then the local reduction of g copies.
  std::vector<std::vector<TimeNs>> stage_a(
      static_cast<std::size_t>(nodes),
      std::vector<TimeNs>(static_cast<std::size_t>(g), t0));
  for (int k = 0; k < nodes; ++k) {
    const auto& node = groups.by_node[static_cast<std::size_t>(k)];
    for (int l = 0; l < g; ++l) {
      TimeNs arrive = t0;
      for (int s = 0; s < g; ++s) {
        if (s == l) continue;
        arrive = std::max(
            arrive, machine_.remote_write_time(
                        pe(node[static_cast<std::size_t>(s)]),
                        pe(node[static_cast<std::size_t>(l)]), chunk_bytes,
                        t0));
      }
      stage_a[static_cast<std::size_t>(k)][static_cast<std::size_t>(l)] =
          arrive + reduce_cost(chunk_bytes * g);
    }
  }

  // Stage B — inter-node ring AllReduce per lane: lane l's shard circles
  // the nodes in 2(nodes-1) steps of chunk/nodes each, crossing the NIC
  // (or torus) links only. Each lane's ring is bulk-synchronous.
  std::vector<TimeNs> stage_b(static_cast<std::size_t>(g), t0);
  const std::int64_t sub = (chunk + nodes - 1) / nodes;
  const Bytes sub_bytes = elems_to_bytes(sub);
  for (int l = 0; l < g; ++l) {
    TimeNs step_start = t0;
    for (int k = 0; k < nodes; ++k) {
      step_start = std::max(
          step_start,
          stage_a[static_cast<std::size_t>(k)][static_cast<std::size_t>(l)]);
    }
    for (int step = 0; step < 2 * (nodes - 1); ++step) {
      TimeNs step_end = step_start;
      for (int k = 0; k < nodes; ++k) {
        const int next = (k + 1) % nodes;
        TimeNs d = machine_.remote_write_time(
            pe(groups.by_node[static_cast<std::size_t>(k)]
                             [static_cast<std::size_t>(l)]),
            pe(groups.by_node[static_cast<std::size_t>(next)]
                             [static_cast<std::size_t>(l)]),
            sub_bytes, step_start);
        if (step < nodes - 1) d += reduce_cost(2 * sub_bytes);
        step_end = std::max(step_end, d);
      }
      step_start = step_end;
    }
    stage_b[static_cast<std::size_t>(l)] = step_start;
  }

  // Stage C — intra-node all-gather: each lane broadcasts its now fully
  // reduced shard to its local peers.
  TimeNs end = t0;
  for (int k = 0; k < nodes; ++k) {
    const auto& node = groups.by_node[static_cast<std::size_t>(k)];
    for (int dst = 0; dst < g; ++dst) {
      TimeNs done = stage_b[static_cast<std::size_t>(dst)];
      for (int src = 0; src < g; ++src) {
        if (src == dst) continue;
        done = std::max(
            done, machine_.remote_write_time(
                      pe(node[static_cast<std::size_t>(src)]),
                      pe(node[static_cast<std::size_t>(dst)]), chunk_bytes,
                      stage_b[static_cast<std::size_t>(src)]));
      }
      end = std::max(end, done);
    }
  }
  return end;
}

sim::Co Communicator::all_reduce(std::int64_t n_elems, FloatBufs bufs,
                                 AllReduceAlgo algo) {
  const int n = size();
  FCC_CHECK(n_elems >= 0);
  if (n == 1 || n_elems == 0) {
    last_duration_ = 0;
    co_return;
  }
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();

  // Functional result: elementwise sum across ranks, written to every rank
  // (algorithm-independent).
  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    std::vector<float> sum(static_cast<std::size_t>(n_elems), 0.0f);
    for (int r = 0; r < n; ++r) {
      auto src = bufs.rank(r);
      FCC_CHECK(src.size() >= static_cast<std::size_t>(n_elems));
      for (std::int64_t i = 0; i < n_elems; ++i) {
        sum[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
      }
    }
    for (int r = 0; r < n; ++r) {
      auto dst = bufs.rank(r);
      std::copy(sum.begin(), sum.end(), dst.begin());
    }
  }

  if (algo == AllReduceAlgo::kAuto) algo = select_allreduce();
  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n_elems, algo](TimeNs t) {
        switch (algo) {
          case AllReduceAlgo::kTwoPhaseDirect:
            return flat_direct_time(n_elems, t);
          case AllReduceAlgo::kRing:
            return flat_ring_time(n_elems, t);
          case AllReduceAlgo::kHierarchical:
            return hierarchical_allreduce_time(n_elems, t);
          case AllReduceAlgo::kAuto:
            break;  // unreachable: resolved above
        }
        return t;
      });

  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

TimeNs Communicator::pairwise_a2a_time(std::int64_t chunk_elems, TimeNs t0) {
  const int n = size();
  const Bytes chunk_bytes = elems_to_bytes(chunk_elems);
  // Pairwise exchange in balanced rounds: round r pairs every source s
  // with destination (s + r) % n, so each round touches disjoint
  // egress/ingress ports and rounds pipeline back-to-back (the schedule
  // RCCL's pairwise All-to-All uses).
  TimeNs end = t0;
  for (int round = 1; round < n; ++round) {
    for (int s = 0; s < n; ++s) {
      const int d = (s + round) % n;
      end = std::max(end, machine_.remote_write_time(pe(s), pe(d),
                                                     chunk_bytes, t0));
    }
  }
  return std::max(end, t0 + reduce_cost(2 * chunk_bytes));  // local copy
}

TimeNs Communicator::node_aggregate_a2a_time(std::int64_t chunk_elems,
                                             TimeNs t0) {
  const NodeGroups& groups = groups_;
  FCC_CHECK_MSG(groups.uniform && groups.by_node.size() > 1 &&
                    groups.by_node.front().size() > 1,
                "node-aggregated All-to-All needs >1 node with equal, >1 "
                "member counts; use the pairwise schedule for this span");
  const int g = static_cast<int>(groups.by_node.front().size());
  const int nodes = static_cast<int>(groups.by_node.size());
  const Bytes chunk_bytes = elems_to_bytes(chunk_elems);
  // Remote node r (as seen from any node) is aggregated by local member
  // r % g: that member gathers the node's traffic for r, ships it as ONE
  // NIC message of g*g chunks, and the peer aggregator scatters it. The
  // NIC still carries every byte, but descriptor-processor serialization
  // drops from g*g messages per node pair to one, and the gather/scatter
  // legs ride the fast intra-node fabric.
  auto owner = [&](int remote_node) { return remote_node % g; };

  // Phase 1 — intra-node gather: member s sends to aggregator l the chunks
  // bound for every node l owns (g destination GPUs per owned node).
  std::vector<std::vector<TimeNs>> gathered(
      static_cast<std::size_t>(nodes),
      std::vector<TimeNs>(static_cast<std::size_t>(g), t0));
  std::vector<std::int64_t> owned(static_cast<std::size_t>(g), 0);
  for (int k = 0; k < nodes; ++k) {
    const auto& node = groups.by_node[static_cast<std::size_t>(k)];
    std::fill(owned.begin(), owned.end(), 0);
    for (int r = 0; r < nodes; ++r) {
      if (r != k) ++owned[static_cast<std::size_t>(owner(r))];
    }
    for (int l = 0; l < g; ++l) {
      const Bytes gather_bytes =
          owned[static_cast<std::size_t>(l)] * g * chunk_bytes;
      TimeNs arrive = t0;
      for (int s = 0; s < g; ++s) {
        if (s == l || gather_bytes == 0) continue;
        arrive = std::max(
            arrive, machine_.remote_write_time(
                        pe(node[static_cast<std::size_t>(s)]),
                        pe(node[static_cast<std::size_t>(l)]), gather_bytes,
                        t0));
      }
      gathered[static_cast<std::size_t>(k)][static_cast<std::size_t>(l)] =
          arrive;
    }
  }

  // Phase 2 — inter-node: one aggregated message of g*g chunks per
  // ordered node pair, aggregator to aggregator.
  const Bytes pair_bytes = static_cast<Bytes>(g) * g * chunk_bytes;
  std::vector<std::vector<TimeNs>> landed(
      static_cast<std::size_t>(nodes),
      std::vector<TimeNs>(static_cast<std::size_t>(g), t0));
  for (int k = 0; k < nodes; ++k) {
    for (int r = 0; r < nodes; ++r) {
      if (r == k) continue;
      const int src_rank =
          groups.by_node[static_cast<std::size_t>(k)]
                        [static_cast<std::size_t>(owner(r))];
      const int dst_rank =
          groups.by_node[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(owner(k))];
      const TimeNs d = machine_.remote_write_time(
          pe(src_rank), pe(dst_rank), pair_bytes,
          gathered[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(owner(r))]);
      auto& cell = landed[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(owner(k))];
      cell = std::max(cell, d);
    }
  }

  // Phase 3 — intra-node scatter of the received aggregates, plus the
  // node-local pairwise exchange that never left the fabric.
  TimeNs end = t0;
  for (int r = 0; r < nodes; ++r) {
    const auto& node = groups.by_node[static_cast<std::size_t>(r)];
    std::fill(owned.begin(), owned.end(), 0);
    for (int k = 0; k < nodes; ++k) {
      if (k != r) ++owned[static_cast<std::size_t>(owner(k))];
    }
    for (int dst = 0; dst < g; ++dst) {
      TimeNs done = t0;
      for (int l = 0; l < g; ++l) {
        const Bytes scatter_bytes =
            owned[static_cast<std::size_t>(l)] * g * chunk_bytes;
        if (scatter_bytes == 0) continue;
        const TimeNs ready = landed[static_cast<std::size_t>(r)]
                                   [static_cast<std::size_t>(l)];
        done = std::max(
            done, l == dst ? ready + reduce_cost(2 * scatter_bytes)
                           : machine_.remote_write_time(
                                 pe(node[static_cast<std::size_t>(l)]),
                                 pe(node[static_cast<std::size_t>(dst)]),
                                 scatter_bytes, ready));
      }
      // Node-local chunks: direct intra-node exchange.
      for (int s = 0; s < g; ++s) {
        if (s == dst) continue;
        done = std::max(done, machine_.remote_write_time(
                                  pe(node[static_cast<std::size_t>(s)]),
                                  pe(node[static_cast<std::size_t>(dst)]),
                                  chunk_bytes, t0));
      }
      done = std::max(done, t0 + reduce_cost(2 * chunk_bytes));
      end = std::max(end, done);
    }
  }
  return end;
}

sim::Co Communicator::all_to_all(std::int64_t chunk_elems, FloatBufs send,
                                 FloatBufs recv, AllToAllAlgo algo) {
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const int n = size();

  if (send.functional()) {
    FCC_CHECK(recv.functional());
    FCC_CHECK(static_cast<int>(send.per_rank.size()) == n);
    FCC_CHECK(static_cast<int>(recv.per_rank.size()) == n);
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        auto src = send.rank(s);
        auto dst = recv.rank(d);
        FCC_CHECK(src.size() >=
                  static_cast<std::size_t>(n) *
                      static_cast<std::size_t>(chunk_elems));
        for (std::int64_t i = 0; i < chunk_elems; ++i) {
          dst[static_cast<std::size_t>(s * chunk_elems + i)] =
              src[static_cast<std::size_t>(d * chunk_elems + i)];
        }
      }
    }
  }

  if (algo == AllToAllAlgo::kAuto) algo = select_a2a();
  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, chunk_elems, algo](TimeNs t) {
        return algo == AllToAllAlgo::kNodeAggregate
                   ? node_aggregate_a2a_time(chunk_elems, t)
                   : pairwise_a2a_time(chunk_elems, t);
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::reduce_scatter(std::int64_t chunk_elems,
                                     FloatBufs bufs) {
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const int n = size();
  const Bytes chunk_bytes = elems_to_bytes(chunk_elems);

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    std::vector<std::vector<float>> reduced(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(chunk_elems), 0.0f));
    for (int r = 0; r < n; ++r) {
      auto src = bufs.rank(r);
      FCC_CHECK(src.size() >= static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(chunk_elems));
      for (int c = 0; c < n; ++c) {
        for (std::int64_t i = 0; i < chunk_elems; ++i) {
          reduced[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] +=
              src[static_cast<std::size_t>(c * chunk_elems + i)];
        }
      }
    }
    for (int r = 0; r < n; ++r) {
      auto dst = bufs.rank(r);
      std::copy(reduced[static_cast<std::size_t>(r)].begin(),
                reduced[static_cast<std::size_t>(r)].end(), dst.begin());
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, chunk_bytes](TimeNs t) {
        TimeNs e = t;
        for (int dst = 0; dst < n; ++dst) {
          TimeNs arrive = t;
          for (int src = 0; src < n; ++src) {
            if (src == dst) continue;
            arrive = std::max(arrive, machine_.remote_write_time(
                                          pe(src), pe(dst), chunk_bytes, t));
          }
          e = std::max(e, arrive + reduce_cost(chunk_bytes * n));
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::all_gather(std::int64_t chunk_elems, FloatBufs bufs) {
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const int n = size();
  const Bytes chunk_bytes = elems_to_bytes(chunk_elems);

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    // Rank r's own chunk lives at offset r*chunk_elems already; replicate
    // it into every peer's buffer.
    for (int src = 0; src < n; ++src) {
      auto s = bufs.rank(src);
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        auto d = bufs.rank(dst);
        for (std::int64_t i = 0; i < chunk_elems; ++i) {
          d[static_cast<std::size_t>(src * chunk_elems + i)] =
              s[static_cast<std::size_t>(src * chunk_elems + i)];
        }
      }
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, chunk_bytes](TimeNs t) {
        TimeNs e = t;
        for (int round = 1; round < n; ++round) {
          for (int src = 0; src < n; ++src) {
            const int dst = (src + round) % n;
            e = std::max(e, machine_.remote_write_time(pe(src), pe(dst),
                                                       chunk_bytes, t));
          }
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::broadcast(std::int64_t n_elems, int root,
                                FloatBufs bufs) {
  const TimeNs t0 = machine_.engine().now();
  const int n = size();
  FCC_CHECK(root >= 0 && root < n);
  const Bytes bytes = elems_to_bytes(n_elems);

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    auto src = bufs.rank(root);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      auto d = bufs.rank(dst);
      std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n_elems),
                d.begin());
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, root, bytes](TimeNs t) {
        TimeNs e = t;
        for (int dst = 0; dst < n; ++dst) {
          if (dst == root) continue;
          e = std::max(e,
                       machine_.remote_write_time(pe(root), pe(dst), bytes, t));
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

}  // namespace fcc::ccl

namespace fcc::ccl {

sim::Co Communicator::all_to_all_v(const std::vector<std::int64_t>& counts,
                                   FloatBufs send, FloatBufs recv) {
  const int n = size();
  FCC_CHECK(static_cast<int>(counts.size()) == n * n);
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();

  auto count = [&](int src, int dst) {
    return counts[static_cast<std::size_t>(src * n + dst)];
  };
  // Segment offsets: send side destination-major, recv side source-major.
  auto send_offset = [&](int src, int dst) {
    std::int64_t off = 0;
    for (int d = 0; d < dst; ++d) off += count(src, d);
    return off;
  };
  auto recv_offset = [&](int dst, int src) {
    std::int64_t off = 0;
    for (int s = 0; s < src; ++s) off += count(s, dst);
    return off;
  };

  if (send.functional()) {
    FCC_CHECK(recv.functional());
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        auto src = send.rank(s);
        auto dst = recv.rank(d);
        const std::int64_t c = count(s, d);
        const std::int64_t so = send_offset(s, d);
        const std::int64_t ro = recv_offset(d, s);
        FCC_CHECK(static_cast<std::int64_t>(src.size()) >= so + c);
        FCC_CHECK(static_cast<std::int64_t>(dst.size()) >= ro + c);
        for (std::int64_t i = 0; i < c; ++i) {
          dst[static_cast<std::size_t>(ro + i)] =
              src[static_cast<std::size_t>(so + i)];
        }
      }
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, &count](TimeNs t) {
        TimeNs e = t;
        for (int round = 1; round < n; ++round) {
          for (int s = 0; s < n; ++s) {
            const int d = (s + round) % n;
            const Bytes bytes = count(s, d) * 4;
            if (bytes == 0) continue;
            e = std::max(e,
                         machine_.remote_write_time(pe(s), pe(d), bytes, t));
          }
        }
        // Local segments are HBM copies.
        for (int r = 0; r < n; ++r) {
          e = std::max(e, t + reduce_cost(2 * count(r, r) * 4));
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::gather(std::int64_t chunk_elems, int root,
                             FloatBufs bufs) {
  const int n = size();
  FCC_CHECK(root >= 0 && root < n);
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const Bytes chunk_bytes = chunk_elems * 4;

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    auto dst = bufs.rank(root);
    for (int src = 0; src < n; ++src) {
      if (src == root) continue;
      auto s = bufs.rank(src);
      for (std::int64_t i = 0; i < chunk_elems; ++i) {
        dst[static_cast<std::size_t>(src * chunk_elems + i)] =
            s[static_cast<std::size_t>(src * chunk_elems + i)];
      }
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, root, chunk_bytes](TimeNs t) {
        TimeNs e = t;
        for (int src = 0; src < n; ++src) {
          if (src == root) continue;
          e = std::max(e, machine_.remote_write_time(pe(src), pe(root),
                                                     chunk_bytes, t));
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::scatter(std::int64_t chunk_elems, int root,
                              FloatBufs bufs) {
  const int n = size();
  FCC_CHECK(root >= 0 && root < n);
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const Bytes chunk_bytes = chunk_elems * 4;

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    auto src = bufs.rank(root);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      auto d = bufs.rank(dst);
      for (std::int64_t i = 0; i < chunk_elems; ++i) {
        d[static_cast<std::size_t>(i)] =
            src[static_cast<std::size_t>(dst * chunk_elems + i)];
      }
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, root, chunk_bytes](TimeNs t) {
        TimeNs e = t;
        for (int dst = 0; dst < n; ++dst) {
          if (dst == root) continue;
          e = std::max(e, machine_.remote_write_time(pe(root), pe(dst),
                                                     chunk_bytes, t));
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::reduce(std::int64_t n_elems, int root, FloatBufs bufs) {
  const int n = size();
  FCC_CHECK(root >= 0 && root < n);
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  const Bytes bytes = n_elems * 4;

  if (bufs.functional()) {
    FCC_CHECK(static_cast<int>(bufs.per_rank.size()) == n);
    auto dst = bufs.rank(root);
    for (int src = 0; src < n; ++src) {
      if (src == root) continue;
      auto s = bufs.rank(src);
      for (std::int64_t i = 0; i < n_elems; ++i) {
        dst[static_cast<std::size_t>(i)] += s[static_cast<std::size_t>(i)];
      }
    }
  }

  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n, root, bytes](TimeNs t) {
        TimeNs e = t;
        for (int src = 0; src < n; ++src) {
          if (src == root) continue;
          e = std::max(e, machine_.remote_write_time(pe(src), pe(root),
                                                     bytes, t));
        }
        return e + reduce_cost(bytes * n);
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

sim::Co Communicator::barrier() {
  const int n = size();
  co_await sim::delay(machine_.engine(), kSwOverheadNs);
  const TimeNs t0 = machine_.engine().now();
  // Direct dissemination: every rank signals every other (8-byte flags).
  const TimeNs end = co_await SweepAwaiter(
      machine_, t0, [this, n](TimeNs t) {
        TimeNs e = t;
        for (int round = 1; round < n; ++round) {
          for (int s = 0; s < n; ++s) {
            const int d = (s + round) % n;
            e = std::max(e, machine_.remote_write_time(pe(s), pe(d), 8, t));
          }
        }
        return e;
      });
  last_duration_ = end - t0 + kSwOverheadNs;
  co_await sim::delay_until(machine_.engine(), end);
}

}  // namespace fcc::ccl

#include "scaleout/dlrm_training.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "hw/topology.h"

namespace fcc::scaleout {

TorusSpec torus_for_nodes(int nodes, const TorusSpec& base) {
  FCC_CHECK(nodes >= 1);
  TorusSpec t = base;
  int x = 1;
  // Largest power-of-two-ish factor <= sqrt(nodes).
  for (int cand = 1; cand * cand <= nodes; ++cand) {
    if (nodes % cand == 0) x = cand;
  }
  t.dim_y = x;
  t.dim_x = nodes / x;
  return t;
}

DlrmTrainingSim::DlrmTrainingSim(const TrainingConfig& cfg)
    : cfg_(cfg), torus_spec_(torus_for_nodes(cfg.num_nodes, cfg.torus)) {
  FCC_CHECK_MSG(cfg_.num_nodes >= 2,
                "DlrmTrainingSim: scale-out needs >= 2 nodes (a 1x1 torus "
                "has no links)");
  torus_spec_.validate();
  FCC_CHECK(cfg_.global_batch % cfg_.num_nodes == 0);
}

TimeNs DlrmTrainingSim::torus_a2a_time(Bytes per_pair_bytes) const {
  // Fresh topology per measurement: the iteration model composes component
  // times analytically, so each collective sees idle links (where the
  // event-driven flows equal the analytic TorusModel exactly).
  hw::TorusTopology topo(torus_spec_);
  return topo.flow_all_to_all_uniform(per_pair_bytes, /*start=*/0);
}

TimeNs DlrmTrainingSim::torus_allreduce_time(Bytes bytes) const {
  hw::TorusTopology topo(torus_spec_);
  return topo.flow_all_reduce(bytes, /*start=*/0);
}

TimeNs DlrmTrainingSim::embedding_pass_time(bool fused) const {
  // Per node: global_batch x tables_per_node pooled vectors, memory bound.
  const double outputs = static_cast<double>(cfg_.global_batch) *
                         cfg_.tables_per_node;
  const double bytes =
      outputs * (static_cast<double>(cfg_.pooling) * cfg_.emb_dim * 4.0 +
                 cfg_.pooling * 4.0 + cfg_.emb_dim * 4.0);
  const hw::HbmModel hbm(cfg_.gpu.hbm_bytes_per_ns, cfg_.gpu.max_wg_slots());
  const double bw = hbm.total_bandwidth(cfg_.gpu.max_wg_slots());
  const double t = bytes / bw;
  return static_cast<TimeNs>(fused ? t * cfg_.fused_compute_overhead : t);
}

TimeNs DlrmTrainingSim::mlp_time(double flops) const {
  return static_cast<TimeNs>(flops / (0.7 * cfg_.gpu.fp32_flops_per_ns));
}

IterationBreakdown DlrmTrainingSim::simulate(bool fused) const {
  IterationBreakdown b;
  const int n = cfg_.num_nodes;
  const int local_batch = cfg_.global_batch / n;

  // --- component times ---
  b.emb_fwd = embedding_pass_time(fused);
  b.emb_bwd = b.emb_fwd;  // gradient scatter mirrors the forward traffic

  // A2A: each node's pooled outputs minus the locally-consumed share.
  const double send_bytes = static_cast<double>(cfg_.global_batch) *
                            cfg_.tables_per_node * cfg_.emb_dim * 4.0 *
                            (n - 1) / n;
  const Bytes per_pair =
      n > 1 ? static_cast<Bytes>(send_bytes / (n - 1)) : 0;
  b.a2a_fwd = torus_a2a_time(per_pair);
  b.a2a_bwd = b.a2a_fwd;

  // MLPs (data parallel on the local batch; bwd ~ 2x fwd flops).
  const double w = cfg_.mlp_avg_width;
  const double top_flops = 2.0 * local_batch * w * w * cfg_.mlp_layers;
  const double bottom_flops = 2.0 * local_batch * cfg_.dense_dim * w * 3;
  b.top_mlp_fwd = mlp_time(top_flops);
  b.top_mlp_bwd = mlp_time(2.0 * top_flops);
  b.bottom_mlp_fwd = mlp_time(bottom_flops);
  b.bottom_mlp_bwd = mlp_time(2.0 * bottom_flops);

  const int features = cfg_.tables_per_node * n + 1;
  b.interaction = mlp_time(static_cast<double>(local_batch) * features *
                           features * cfg_.emb_dim);

  // Data-parallel gradient AllReduce of MLP weights, overlapped with MLP
  // backward in both modes (standard bucketing).
  const double params = w * w * cfg_.mlp_layers + cfg_.dense_dim * w * 3;
  b.grad_allreduce = torus_allreduce_time(static_cast<Bytes>(params * 4));
  b.exposed_allreduce =
      std::max<TimeNs>(0, b.grad_allreduce - (b.top_mlp_bwd + b.bottom_mlp_bwd));

  // --- execution graph ---
  const TimeNs flag_overhead_per_slice = 900;  // PUT issue + fence + flag
  auto pipelined = [&](TimeNs comp, TimeNs comm) {
    const TimeNs lo = std::min(comp, comm);
    const TimeNs hi = std::max(comp, comm);
    return hi + lo / std::max(1, cfg_.slices) +
           flag_overhead_per_slice * 2;
  };

  if (!fused) {
    // Baseline: A2A exposed at the kernel boundary; bottom MLP (the only
    // independent compute) overlaps the forward A2A.
    const TimeNs fwd = b.emb_fwd +
                       std::max(b.a2a_fwd, b.bottom_mlp_fwd) +
                       b.interaction + b.top_mlp_fwd;
    const TimeNs bwd = b.top_mlp_bwd + b.interaction + b.a2a_bwd + b.emb_bwd +
                       b.bottom_mlp_bwd + b.exposed_allreduce;
    b.total = fwd + bwd;
  } else {
    // Fused: each A2A pipelines against its embedding pass; bottom MLP
    // still overlaps whatever A2A tail remains (conservatively ignored).
    const TimeNs fwd = pipelined(b.emb_fwd, b.a2a_fwd) + b.interaction +
                       b.top_mlp_fwd + b.bottom_mlp_fwd;
    const TimeNs bwd = b.top_mlp_bwd + b.interaction +
                       pipelined(b.emb_bwd, b.a2a_bwd) + b.bottom_mlp_bwd +
                       b.exposed_allreduce;
    b.total = fwd + bwd;
  }
  return b;
}

double DlrmTrainingSim::fused_speedup() const {
  const auto base = simulate(false);
  const auto fused = simulate(true);
  return static_cast<double>(fused.total) / static_cast<double>(base.total);
}

}  // namespace fcc::scaleout

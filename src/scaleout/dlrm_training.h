// Scale-out DLRM training simulation (Fig. 15 methodology).
//
// Mirrors the paper's ASTRA-Sim flow: per-kernel execution times come from
// the GPU cost model (the paper collected them with ROC-profiler on an
// MI210), collectives run as dimension-ordered flows on the event-driven
// `hw::TorusTopology` (the analytic `scaleout::TorusModel` survives only
// as a cross-check; the two agree exactly on this uniform workload), and
// the fused
// execution graph overlaps each All-to-All with its producer/consumer
// embedding pass at slice granularity. One training iteration:
//
//   fwd:  emb_fwd → A2A_fwd   (|| bottom MLP)   → interaction → top MLP
//   bwd:  top MLP ← interaction ← A2A_bwd ← emb_bwd (grad scatter/update)
//         + data-parallel AllReduce of MLP grads (overlapped with MLP bwd)
//
// Baseline exposes both A2As at kernel boundaries; the fused graph
// pipelines them against embedding compute in S slices:
//   t_fused = max(comp, comm) + min(comp, comm)/S + flag overhead.
#pragma once

#include "common/types.h"
#include "hw/gpu_spec.h"
#include "hw/hbm_model.h"
#include "scaleout/torus.h"

namespace fcc::scaleout {

/// Table II model parameters (paper defaults).
struct TrainingConfig {
  int num_nodes = 128;       // one GPU per node
  int global_batch = 4096;
  int tables_per_node = 8;
  int emb_dim = 92;
  int pooling = 70;
  int mlp_layers = 43;
  int mlp_avg_width = 682;
  int dense_dim = 92;
  /// Fused pipelining granularity (slices per node per direction).
  int slices = 128;
  /// Fused persistent-kernel compute overhead vs the baseline kernels
  /// (bookkeeping + occupancy loss, measured ~8% on the operator DES).
  double fused_compute_overhead = 1.08;

  hw::GpuSpec gpu;
  TorusSpec torus;  // dims adjusted to num_nodes by the simulator
};

struct IterationBreakdown {
  // Component times (per node, ns).
  TimeNs emb_fwd = 0, emb_bwd = 0;
  TimeNs a2a_fwd = 0, a2a_bwd = 0;
  TimeNs bottom_mlp_fwd = 0, bottom_mlp_bwd = 0;
  TimeNs top_mlp_fwd = 0, top_mlp_bwd = 0;
  TimeNs interaction = 0;
  TimeNs grad_allreduce = 0;
  TimeNs exposed_allreduce = 0;

  TimeNs total = 0;
};

class DlrmTrainingSim {
 public:
  explicit DlrmTrainingSim(const TrainingConfig& cfg);

  /// One training iteration, baseline or fused execution graph.
  IterationBreakdown simulate(bool fused) const;

  /// Paper headline: fused / baseline total time.
  double fused_speedup() const;

 private:
  TimeNs embedding_pass_time(bool fused) const;
  TimeNs mlp_time(double flops) const;
  /// Collective times measured by reserving the dimension-ordered flow
  /// schedules on a fresh (idle) event-driven torus.
  TimeNs torus_a2a_time(Bytes per_pair_bytes) const;
  TimeNs torus_allreduce_time(Bytes bytes) const;

  TrainingConfig cfg_;
  TorusSpec torus_spec_;
};

/// Chooses a near-square 2D torus for `nodes` (16x8 for 128, etc.).
TorusSpec torus_for_nodes(int nodes, const TorusSpec& base);

}  // namespace fcc::scaleout

// Analytic 2D-torus cross-check (ASTRA-Sim network-layer analog, Table II).
//
// The live scale-out path runs on `hw::TorusTopology` (src/hw/topology.h):
// an event-driven torus whose dimension-ordered collective schedules are
// reserved on shared FIFO links, so scale-out traffic contends with
// anything else on the machine. `TorusModel` keeps the closed-form
// dimension-decomposed schedule those flows implement; on an idle topology
// the two agree exactly (pinned by tests/test_scaleout.cc), which makes
// this the regression cross-check for the event-driven engine rather than
// the simulator itself.
//
// Links are 200 Gb/s (25 B/ns) with 700 ns hop latency by default; the
// shared spec (and its validation) lives in hw::TorusSpec.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/types.h"
#include "hw/topology.h"

namespace fcc::scaleout {

using TorusSpec = hw::TorusSpec;

class TorusModel {
 public:
  explicit TorusModel(const TorusSpec& spec) : spec_(spec) {
    spec.validate();
  }

  const TorusSpec& spec() const { return spec_; }

  /// Uniform personalized All-to-All: every node sends `per_pair_bytes` to
  /// every other node. Dimension-ordered two-stage schedule: stage 1 moves
  /// aggregated column traffic around each row ring, stage 2 distributes
  /// within column rings. Ring A2A of n nodes with per-pair chunk c loads
  /// the busiest link with ~c*n^2/8 bytes (both directions used).
  TimeNs all_to_all_time(Bytes per_pair_bytes) const {
    const int n = spec_.num_nodes();
    if (n <= 1 || per_pair_bytes <= 0) return 0;
    const TimeNs s1 = ring_a2a_stage(spec_.dim_x,
                                     per_pair_bytes * spec_.dim_y);
    const TimeNs s2 = ring_a2a_stage(spec_.dim_y,
                                     per_pair_bytes * spec_.dim_x);
    return s1 + s2;
  }

  /// Hierarchical ring AllReduce (Themis-style 2D decomposition):
  /// reduce-scatter along x with the full payload, reduce-scatter along y
  /// with 1/dim_x of it, then the mirrored all-gathers. Per ring of n
  /// nodes moving B bytes: (n-1)/n * B of serialized link traffic per
  /// phase, plus per-step hop latency.
  TimeNs all_reduce_time(Bytes bytes) const {
    auto ring_phase = [&](int n, double phase_bytes) -> TimeNs {
      if (n <= 1) return 0;
      const double wire = phase_bytes * (n - 1) / n / spec_.link_bytes_per_ns;
      return static_cast<TimeNs>(wire) + (n - 1) * spec_.link_latency_ns;
    };
    const double b = static_cast<double>(bytes);
    const TimeNs rs_x = ring_phase(spec_.dim_x, b);
    const TimeNs rs_y = ring_phase(spec_.dim_y, b / spec_.dim_x);
    return 2 * (rs_x + rs_y);  // all-gather mirrors reduce-scatter
  }

 private:
  TimeNs ring_a2a_stage(int n, Bytes per_pair) const {
    if (n <= 1) return 0;
    // Busiest-link load for uniform A2A on a bidirectional ring.
    const double load = static_cast<double>(per_pair) * n * n / 8.0;
    return static_cast<TimeNs>(load / spec_.link_bytes_per_ns) +
           static_cast<TimeNs>(n / 2) * spec_.link_latency_ns;
  }

  TorusSpec spec_;
};

}  // namespace fcc::scaleout

// Deterministic sharded-engine workload (the golden-trace pin for the
// conservative-lookahead scheduler, and the bench_shard_scaling kernel).
//
// Every PE runs `lanes_per_pe` lane processes on its home shard. Per lane,
// per round:
//
//   compute burst -> intra-node PUT (rotating local peer, flag add)
//                 -> inter-node ring PUT (next node, same local index,
//                    flag add)
//                 -> wait for this round's intra and inter flag counters.
//
// After all rounds each lane drains (`World::quiet`) and stamps its end
// time. The ring pattern is chosen so that on a torus every directed ring
// link is reserved by exactly one source node: reservation order across
// shards then cannot matter, and the resulting ShardTrace is *exactly*
// equal between the serial engine and any shard count (enforced at 1/2/4/8
// by tests/test_sim_sharded.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "gpu/machine.h"

namespace fcc::scaleout {

struct ShardWorkloadConfig {
  int rounds = 4;
  int lanes_per_pe = 1;
  TimeNs compute_ns = 500;     // busy burst before each round's sends
  Bytes intra_bytes = 65536;   // scale-up payload (skipped at 1 GPU/node)
  Bytes inter_bytes = 4096;    // scale-out ring payload (skipped at 1 node)
};

/// Everything observable that depends on the full event cascade. Engine
/// clocks are intentionally absent: the windowed scheduler parks idle
/// shards at window bounds, so `Engine::now()` after the run is a protocol
/// artifact — per-lane end stamps (read at event fire time) are not.
struct ShardTrace {
  std::int64_t puts = 0;
  std::vector<TimeNs> lane_end;  // [pe * lanes + lane]
  std::vector<TimeNs> busy;      // per device busy_ns
  std::vector<std::uint64_t> flags;  // final flag values, [pe][2*lanes]

  bool operator==(const ShardTrace&) const = default;
  TimeNs final_time() const;  // max lane_end
  std::string str() const;
};

/// Spawns the workload on `machine` (serial or sharded — same call), runs
/// to completion with `num_threads` workers (sharded only; 0 = auto), and
/// returns the trace. Throws on deadlock. `stats_out` (optional) receives
/// the engine run stats (events, windows, messages) for benches.
ShardTrace run_shard_workload(gpu::Machine& machine,
                              const ShardWorkloadConfig& cfg,
                              unsigned num_threads = 0,
                              sim::ShardedEngine::RunStats* stats_out =
                                  nullptr);

}  // namespace fcc::scaleout

#include "scaleout/shard_workload.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace fcc::scaleout {

namespace {

/// One lane's process, living on `engine` (the PE's home shard — the
/// Engine& first parameter registers the task there for deadlock checks).
/// Flag layout per PE: [2 * lane] counts intra-node arrivals for the lane,
/// [2 * lane + 1] counts inter-node ring arrivals.
sim::Task lane_process(sim::Engine& engine, gpu::Machine& m, shmem::World& w,
                       shmem::FlagArray& flags,
                       const ShardWorkloadConfig& cfg, PeId pe, int lane,
                       TimeNs& end_out) {
  const int g = m.gpus_per_node();
  const int nodes = m.num_nodes();
  const NodeId node = m.node_of(pe);
  const std::size_t intra_idx = static_cast<std::size_t>(2 * lane);
  const std::size_t inter_idx = intra_idx + 1;
  for (int r = 0; r < cfg.rounds; ++r) {
    if (cfg.compute_ns > 0) {
      co_await m.device(pe).busy_wait(cfg.compute_ns);
    }
    if (g > 1) {
      // Rotating local peer: for fixed (round, lane) the local->local map
      // is a bijection, so each lane receives exactly one intra add/round.
      const PeId dst = m.pe_of(node, (m.local_index(pe) + 1 + r + lane) % g);
      co_await w.put_nbi(pe, dst, cfg.intra_bytes,
                         shmem::World::IssueKind::kStore,
                         [&flags, dst, intra_idx] {
                           flags.add(dst, intra_idx, 1);
                         });
    }
    if (nodes > 1) {
      // Node ring, same local index: on a torus each directed ring link is
      // reserved by exactly one source node (see header), which is what
      // makes the deferred barrier replay order-insensitive.
      const PeId dst = m.pe_of((node + 1) % nodes, m.local_index(pe));
      co_await w.put_nbi(pe, dst, cfg.inter_bytes,
                         shmem::World::IssueKind::kRdma,
                         [&flags, dst, inter_idx] {
                           flags.add(dst, inter_idx, 1);
                         });
    }
    if (g > 1) {
      co_await flags.wait_ge(pe, intra_idx,
                             static_cast<std::uint64_t>(r) + 1);
    }
    if (nodes > 1) {
      co_await flags.wait_ge(pe, inter_idx,
                             static_cast<std::uint64_t>(r) + 1);
    }
  }
  co_await w.quiet(pe);
  end_out = engine.now();
}

}  // namespace

TimeNs ShardTrace::final_time() const {
  TimeNs t = 0;
  for (const TimeNs e : lane_end) t = std::max(t, e);
  return t;
}

std::string ShardTrace::str() const {
  std::ostringstream os;
  os << "puts=" << puts << " final=" << final_time() << "\nlane_end={";
  for (const TimeNs t : lane_end) os << t << ",";
  os << "}\nbusy={";
  for (const TimeNs b : busy) os << b << ",";
  os << "}\nflags={";
  for (const std::uint64_t f : flags) os << f << ",";
  os << "}";
  return os.str();
}

ShardTrace run_shard_workload(gpu::Machine& machine,
                              const ShardWorkloadConfig& cfg,
                              unsigned num_threads,
                              sim::ShardedEngine::RunStats* stats_out) {
  FCC_CHECK_MSG(cfg.rounds >= 1, "ShardWorkloadConfig: rounds must be >= 1");
  FCC_CHECK_MSG(cfg.lanes_per_pe >= 1,
                "ShardWorkloadConfig: lanes_per_pe must be >= 1");
  const int pes = machine.num_pes();
  const int lanes = cfg.lanes_per_pe;
  shmem::World world(machine);
  std::vector<sim::Engine*> engines(static_cast<std::size_t>(pes));
  for (PeId pe = 0; pe < pes; ++pe) {
    engines[static_cast<std::size_t>(pe)] = &machine.engine_of(pe);
  }
  shmem::FlagArray flags(std::move(engines),
                         static_cast<std::size_t>(2 * lanes));

  ShardTrace tr;
  tr.lane_end.assign(static_cast<std::size_t>(pes) * lanes, 0);
  for (PeId pe = 0; pe < pes; ++pe) {
    for (int lane = 0; lane < lanes; ++lane) {
      lane_process(machine.engine_of(pe), machine, world, flags, cfg, pe,
                   lane,
                   tr.lane_end[static_cast<std::size_t>(pe) * lanes + lane]);
    }
  }
  const sim::ShardedEngine::RunStats stats = machine.run_all(num_threads);
  if (stats_out != nullptr) *stats_out = stats;
  FCC_CHECK_MSG(machine.sharded().live_tasks() == 0,
                "shard workload deadlocked: "
                    << machine.sharded().live_tasks()
                    << " lane processes still suspended");
  tr.puts = world.puts_issued();
  for (PeId pe = 0; pe < pes; ++pe) {
    tr.busy.push_back(machine.device(pe).busy_ns());
    for (int i = 0; i < 2 * lanes; ++i) {
      tr.flags.push_back(flags.read(pe, static_cast<std::size_t>(i)));
    }
  }
  return tr;
}

}  // namespace fcc::scaleout

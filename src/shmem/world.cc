#include "shmem/world.h"

#include <algorithm>
#include <cstddef>

namespace fcc::shmem {

World::World(gpu::Machine& machine)
    : machine_(machine),
      outstanding_(static_cast<std::size_t>(machine.num_pes()), 0),
      drain_waiters_(static_cast<std::size_t>(machine.num_pes())),
      puts_issued_(static_cast<std::size_t>(machine.num_pes()), 0),
      deferred_(static_cast<std::size_t>(machine.num_shards())) {
  if (machine_.is_sharded() && machine_.defer_inter_node()) {
    barrier_hook_ =
        machine_.sharded().add_barrier_hook([this] { drain_deferred(); });
  }
}

World::~World() {
  if (barrier_hook_ >= 0) {
    machine_.sharded().remove_barrier_hook(barrier_hook_);
  }
}

void World::issue_put(PeId src, PeId dst, Bytes bytes,
                      std::function<void()> cb) {
  ++puts_issued_[static_cast<std::size_t>(src)];
  start_tracking(src);
  sim::Engine& home = machine_.engine_of(src);
  const TimeNs now = home.now();
  if (machine_.is_sharded() &&
      machine_.route_class(src, dst) == hw::RouteClass::kInterNode) {
    const int src_shard = machine_.shard_of(src);
    if (machine_.defer_inter_node()) {
      // Torus: the route's ring links belong to intermediate nodes, so the
      // reservation itself must wait for the barrier's serial replay.
      deferred_[static_cast<std::size_t>(src_shard)].puts.push_back(
          PendingPut{now, src, dst, bytes, std::move(cb)});
      return;
    }
    // Source-local route state (src NIC / uplink / rail): reserve eagerly.
    // Only this node's PUTs touch that state and the node lives on one
    // shard, so the reservation order equals the serial engine's order.
    const TimeNs delivery = machine_.remote_write_time(src, dst, bytes, now);
    const int dst_shard = machine_.shard_of(dst);
    if (dst_shard == src_shard) {
      schedule_delivery(home, delivery, src, std::move(cb));
    } else {
      // Delivery applies on the destination's shard via the mailbox;
      // tracking finishes at the same instant on the source's own shard.
      if (cb) {
        machine_.sharded().post(src_shard, dst_shard, delivery,
                                std::move(cb));
      }
      auto* self = this;
      home.schedule_at(delivery, [self, src] { self->finish_tracking(src); });
    }
    return;
  }
  // Serial machine, or self/intra-node on a sharded one (node-aligned
  // partition: src and dst share a shard) — the classic path, byte-for-byte.
  const TimeNs delivery = machine_.remote_write_time(src, dst, bytes, now);
  schedule_delivery(home, delivery, src, std::move(cb));
}

void World::drain_deferred() {
  struct Tag {
    TimeNs t;
    PeId src;
    int shard;
    std::size_t idx;
  };
  std::vector<Tag> order;
  std::size_t total = 0;
  for (const DeferredShard& d : deferred_) total += d.puts.size();
  if (total == 0) return;
  order.reserve(total);
  for (int s = 0; s < static_cast<int>(deferred_.size()); ++s) {
    const auto& puts = deferred_[static_cast<std::size_t>(s)].puts;
    for (std::size_t i = 0; i < puts.size(); ++i) {
      order.push_back(Tag{puts[i].t, puts[i].src, s, i});
    }
  }
  // (issue time, src PE, per-shard seq): reservations replay in the
  // serial engine's time order; same-time ties break by source PE (the
  // serial engine breaks them by global insertion seq instead — the only
  // divergence this protocol permits).
  std::sort(order.begin(), order.end(), [](const Tag& a, const Tag& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return a.idx < b.idx;
  });
  // The hook runs with every shard stopped, so deliveries go straight onto
  // the destination engines — no mailbox round-trip; replay order assigns
  // the engine tie-break seqs, exactly like issue order does serially.
  // Conservative lookahead guarantees delivery >= the issuing window's end,
  // so these never schedule into a shard's past.
  for (const Tag& tag : order) {
    PendingPut& p =
        deferred_[static_cast<std::size_t>(tag.shard)].puts[tag.idx];
    const TimeNs delivery =
        machine_.remote_write_time(p.src, p.dst, p.bytes, p.t);
    auto* self = this;
    sim::Engine& src_engine = machine_.engine_of(p.src);
    sim::Engine& dst_engine = machine_.engine_of(p.dst);
    if (&dst_engine == &src_engine) {
      dst_engine.schedule_at(delivery,
                             [self, src = p.src, cb = std::move(p.cb)] {
                               if (cb) cb();
                               self->finish_tracking(src);
                             });
    } else {
      // Delivery lands on the destination's shard; tracking finishes at
      // the same instant on the source's own shard.
      if (p.cb) dst_engine.schedule_at(delivery, std::move(p.cb));
      src_engine.schedule_at(delivery,
                             [self, src = p.src] { self->finish_tracking(src); });
    }
  }
  for (DeferredShard& d : deferred_) d.puts.clear();
}

}  // namespace fcc::shmem

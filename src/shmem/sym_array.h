// Typed symmetric array (roc_shmem_malloc analog).
//
// One handle, per-PE storage: the same logical offset is valid on every PE,
// which is what lets a remote PUT target "the peer's copy of this buffer".
// In timing-only runs (large benches) the backing storage is elided — the
// simulation then moves bytes but not values.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace fcc::shmem {

template <typename T>
class SymArray {
 public:
  /// `functional == false` skips allocation (timing-only simulations).
  SymArray(int num_pes, std::size_t elems, bool functional = true,
           T init = T{})
      : num_pes_(num_pes), elems_(elems), functional_(functional) {
    FCC_CHECK(num_pes >= 1);
    if (functional_) {
      data_.resize(static_cast<std::size_t>(num_pes),
                   std::vector<T>(elems, init));
    }
  }

  int num_pes() const { return num_pes_; }
  std::size_t size() const { return elems_; }
  bool functional() const { return functional_; }
  Bytes size_bytes() const {
    return static_cast<Bytes>(elems_ * sizeof(T));
  }

  std::span<T> pe(PeId pe) {
    FCC_CHECK_MSG(functional_, "SymArray is timing-only (no storage)");
    FCC_DCHECK(pe >= 0 && pe < num_pes_);
    return std::span<T>(data_[static_cast<std::size_t>(pe)]);
  }
  std::span<const T> pe(PeId pe) const {
    FCC_CHECK_MSG(functional_, "SymArray is timing-only (no storage)");
    FCC_DCHECK(pe >= 0 && pe < num_pes_);
    return std::span<const T>(data_[static_cast<std::size_t>(pe)]);
  }

 private:
  int num_pes_;
  std::size_t elems_;
  bool functional_;
  std::vector<std::vector<T>> data_;
};

}  // namespace fcc::shmem

// GPU-initiated communication world (ROC_SHMEM analog).
//
// `put_nbi` is issued from inside a workgroup coroutine: the issuing WG pays
// the API/issue latency, the payload's channel occupancy is reserved at
// issue time (DMA-queue semantics), and an optional delivery callback runs
// when the bytes land at the destination — that is where functional-mode
// memcpys and remote flag stores happen.
//
// Ordering model: every route class the topology resolves — self (HBM
// copy), intra-node (fabric/switch hop chain), inter-node (NIC and/or
// torus rings) — is a FIFO channel: a PUT issued after another on the same
// channel also delivers after it, because hop reservations are claimed in
// issue order. `fence()` therefore costs only its instruction latency —
// matching the HDP flush + ordering semantics the paper relies on — and
// `quiet()` waits for all of this PE's outstanding deliveries.
//
// Sharded machines (gpu::Machine num_shards > 1) keep every piece of World
// state shard-local: outstanding counters, drain waiters, and per-PE put
// counters are only touched from the owning PE's home shard. Inter-node
// PUTs follow one of two paths:
//
//   * eager (fully-connected / switched / multi-rail): the route's state is
//     source-node-local, so the reservation happens at issue time exactly
//     as in the serial engine; only the *delivery* callback crosses shards,
//     as a mailbox message applied on the destination's shard.
//   * deferred (torus): routes ride ring links owned by third-party nodes,
//     so reservations are queued per shard and replayed at every window
//     barrier in (issue time, src PE, per-PE seq) order — a single serial
//     consistency point that matches the serial engine's time-ordered
//     reservation sequence. With one PE per node and one operator in
//     flight this reproduces the serial engine's same-timestamp issue
//     order exactly (per-PE chains are spawned and advance in PE order);
//     nodes with several GPUs — or several concurrently-running operators,
//     e.g. serving lanes — can interleave same-timestamp issues across PEs
//     in an emergent event order no per-shard replay can reconstruct, so
//     byte-identity on deferred fabrics is only guaranteed for single-GPU
//     nodes running one operator at a time.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "gpu/machine.h"
#include "sim/co.h"
#include "sim/sync.h"

namespace fcc::shmem {

class World {
 public:
  /// Issue-cost classes for a PUT.
  enum class IssueKind {
    kRdma,       // post descriptor + doorbell from the kernel (scale-out)
    kStore,      // direct remote stores over the fabric (scale-up zero-copy)
    kNone,       // already accounted by the caller
  };

  explicit World(gpu::Machine& machine);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  gpu::Machine& machine() { return machine_; }
  int n_pes() const { return machine_.num_pes(); }

  /// Non-blocking PUT of `bytes` from `src` to `dst`. The coroutine returns
  /// to the caller as soon as the issue cost has elapsed; `on_deliver` (may
  /// be empty) runs when the data is visible at `dst` — on `dst`'s home
  /// shard when the machine is sharded.
  sim::Co put_nbi(PeId src, PeId dst, Bytes bytes, IssueKind kind,
                  std::function<void()> on_deliver = {}) {
    co_await issue_cost(src, dst, kind);
    issue_put(src, dst, bytes, std::move(on_deliver));
  }

  /// Orders prior PUTs from `src` before subsequent ones (per destination).
  /// FIFO channels already guarantee this; only the instruction cost is
  /// charged.
  sim::Co fence(PeId src) {
    co_await sim::delay(machine_.engine_of(src), kFenceCostNs);
  }

  /// Blocks until every PUT issued by `src` has been delivered. The wakeup
  /// is targeted: waiters are resumed only when the outstanding count hits
  /// zero (the loop re-checks in case a same-time event issued a new PUT
  /// between the wake and the resume). Works across shards: a deferred or
  /// remote delivery finishes tracking via a message on `src`'s shard, so
  /// the counter and waiter list stay shard-local.
  sim::Co quiet(PeId src) {
    auto& count = outstanding_[static_cast<std::size_t>(src)];
    while (count > 0) {
      co_await DrainAwaiter{*this, src};
    }
  }

  std::int64_t puts_issued() const {
    std::int64_t total = 0;
    for (const std::int64_t c : puts_issued_) total += c;
    return total;
  }
  int outstanding(PeId src) const {
    return outstanding_[static_cast<std::size_t>(src)];
  }

  /// GPU-side issue latency for one PUT of the given kind. A kRdma PUT
  /// only pays the descriptor-post overhead when the resolved route
  /// actually leaves the node; routes that stay on scale-up links issue as
  /// plain stores regardless of what the caller requested.
  TimeNs issue_latency(PeId src, PeId dst, IssueKind kind) const {
    switch (kind) {
      case IssueKind::kRdma:
        return machine_.route_class(src, dst) == hw::RouteClass::kInterNode
                   ? machine_.config().ib.gpu_post_overhead_ns
                   : machine_.config().fabric.store_issue_overhead_ns;
      case IssueKind::kStore:
        return machine_.config().fabric.store_issue_overhead_ns;
      case IssueKind::kNone:
        return 0;
    }
    return 0;
  }

  static constexpr TimeNs kFenceCostNs = 50;

 private:
  struct DrainAwaiter {
    World& w;
    PeId src;
    bool await_ready() const noexcept {
      return w.outstanding_[static_cast<std::size_t>(src)] == 0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      w.drain_waiters_[static_cast<std::size_t>(src)].push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// An inter-node PUT whose route reservation waits for the next window
  /// barrier (torus: the route's links are not source-shard-owned).
  struct PendingPut {
    TimeNs t;  // issue-complete time on the source shard
    PeId src;
    PeId dst;
    Bytes bytes;
    std::function<void()> cb;
  };

  /// Per-shard deferred queue, cache-line padded: appended only by the
  /// owning shard's thread during a window, drained serially at barriers.
  struct alignas(64) DeferredShard {
    std::vector<PendingPut> puts;
  };

  sim::Co issue_cost(PeId src, PeId dst, IssueKind kind) {
    const TimeNs cost = issue_latency(src, dst, kind);
    if (cost > 0) co_await machine_.device(src).busy_wait(cost);
  }

  /// Post-issue bookkeeping and delivery scheduling; see the header comment
  /// for the eager/deferred split. Defined in world.cc.
  void issue_put(PeId src, PeId dst, Bytes bytes, std::function<void()> cb);

  /// Barrier hook (deferred mode): replays all queued reservations in
  /// (issue time, src PE, per-PE seq) order and posts their deliveries.
  void drain_deferred();

  /// Schedules the serial-shape delivery event ({callback; finish}) on `e`.
  void schedule_delivery(sim::Engine& e, TimeNs t, PeId src,
                         std::function<void()> cb) {
    auto* self = this;
    e.schedule_at(t, [self, src, cb = std::move(cb)] {
      if (cb) cb();
      self->finish_tracking(src);
    });
  }

  void start_tracking(PeId src) {
    ++outstanding_[static_cast<std::size_t>(src)];
  }
  void finish_tracking(PeId src) {
    auto& count = outstanding_[static_cast<std::size_t>(src)];
    FCC_CHECK(count > 0);
    if (--count == 0) {
      auto& waiters = drain_waiters_[static_cast<std::size_t>(src)];
      for (auto h : waiters) {
        machine_.engine_of(src).schedule_resume_after(0, h);
      }
      waiters.clear();
    }
  }

  gpu::Machine& machine_;
  std::vector<int> outstanding_;
  std::vector<std::vector<std::coroutine_handle<>>> drain_waiters_;
  std::vector<std::int64_t> puts_issued_;  // per PE: writer is its own shard
  std::vector<DeferredShard> deferred_;
  int barrier_hook_ = -1;
};

}  // namespace fcc::shmem

// Symmetric flag arrays with awaitable readiness (sliceRdy analog).
//
// Flags live in symmetric memory; producers set them via remote PUTs (the
// shmem world delivers the write at the modeled arrival time), consumers
// `co_await wait_ge(...)`. Waiting is condition-based rather than busy-poll:
// a GPU WG spinning on a cached flag consumes negligible memory bandwidth,
// so the idealization costs nothing in timing and keeps event counts linear.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/co.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace fcc::shmem {

class FlagArray {
 public:
  FlagArray(sim::Engine& engine, int num_pes, std::size_t n)
      : engine_(engine),
        values_(static_cast<std::size_t>(num_pes),
                std::vector<std::uint64_t>(n, 0)),
        conds_(static_cast<std::size_t>(num_pes)) {
    for (auto& c : conds_) c.resize(n);
  }

  std::size_t size() const { return values_.empty() ? 0 : values_[0].size(); }
  int num_pes() const { return static_cast<int>(values_.size()); }

  std::uint64_t read(PeId pe, std::size_t i) const {
    return values_[idx(pe)][i];
  }

  /// Local (or delivered-remote) store to the flag; wakes waiters.
  void set(PeId pe, std::size_t i, std::uint64_t v) {
    values_[idx(pe)][i] = v;
    auto& c = conds_[idx(pe)][i];
    if (c) c->notify_all();
  }

  /// Fetch-add used for arrival counters; wakes waiters; returns new value.
  std::uint64_t add(PeId pe, std::size_t i, std::uint64_t v) {
    values_[idx(pe)][i] += v;
    auto& c = conds_[idx(pe)][i];
    if (c) c->notify_all();
    return values_[idx(pe)][i];
  }

  /// Awaitable: suspends until flag[pe][i] >= v (shmem_wait_until analog).
  sim::Co wait_ge(PeId pe, std::size_t i, std::uint64_t v) {
    while (values_[idx(pe)][i] < v) {
      auto& c = conds_[idx(pe)][i];
      if (!c) c = std::make_unique<sim::Condition>(engine_);
      co_await c->wait();
    }
  }

 private:
  std::size_t idx(PeId pe) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes());
    return static_cast<std::size_t>(pe);
  }

  sim::Engine& engine_;
  std::vector<std::vector<std::uint64_t>> values_;
  std::vector<std::vector<std::unique_ptr<sim::Condition>>> conds_;
};

/// WG-completion bitmask for one slice (WG_Done analog). The last WG to set
/// its bit learns it is last — the paper implements the reduction with
/// cross-lane operations instead of an inter-WG barrier; here the claim
/// check is exact and race-free because the engine is serial. Multi-word so
/// slices may span more than 64 logical WGs.
class WgDoneMask {
 public:
  explicit WgDoneMask(int num_wgs) : expected_(num_wgs) {
    FCC_CHECK(num_wgs >= 1);
    words_.assign(static_cast<std::size_t>((num_wgs + 63) / 64), 0);
  }

  /// Sets bit `wg`; returns true iff this made the mask complete (the caller
  /// is the last finishing WG and must issue the slice's communication).
  bool set_and_check_last(int wg) {
    FCC_DCHECK(wg >= 0 && wg < expected_);
    auto& word = words_[static_cast<std::size_t>(wg / 64)];
    const std::uint64_t bit = std::uint64_t{1} << (wg % 64);
    FCC_CHECK_MSG((word & bit) == 0, "WG done-bit set twice");
    word |= bit;
    ++count_;
    return count_ == expected_;
  }

  bool complete() const { return count_ == expected_; }
  std::uint64_t mask() const { return words_.front(); }

 private:
  int expected_;
  int count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fcc::shmem

// Symmetric flag arrays with awaitable readiness (sliceRdy analog).
//
// Flags live in symmetric memory; producers set them via remote PUTs (the
// shmem world delivers the write at the modeled arrival time), consumers
// `co_await wait_ge(...)`. Waiting is condition-based rather than busy-poll:
// a GPU WG spinning on a cached flag consumes negligible memory bandwidth,
// so the idealization costs nothing in timing and keeps event counts linear.
//
// Wakeups are *targeted*: each flag keeps its waiters sorted by threshold,
// and `set`/`add` resumes exactly the waiters whose `wait_ge` predicate the
// new value satisfies — in registration order, matching the resume order of
// the old broadcast-Condition protocol while eliminating its no-op re-check
// events (an arrival counter tick used to wake every waiter on the index).
// A satisfied waiter's coroutine is resumed directly (one pooled resume
// event); there is no re-check loop and no per-wait coroutine frame.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/engine.h"

namespace fcc::shmem {

class FlagArray {
 public:
  /// Single-engine form: every PE's wakeups go through `engine` — a
  /// convenience for serial machines, equivalent to the per-PE form with
  /// every entry pointing at the one engine.
  FlagArray(sim::Engine& engine, int num_pes, std::size_t n)
      : engines_(static_cast<std::size_t>(num_pes), &engine),
        num_pes_(num_pes),
        n_(n),
        values_(static_cast<std::size_t>(num_pes) * n, 0),
        waiters_(static_cast<std::size_t>(num_pes) * n),
        order_seq_(static_cast<std::size_t>(num_pes) * n, 0) {}

  /// Sharded form: PE `p`'s flags wake on `per_pe_engines[p]` — its home
  /// shard. A flag's state (value + waiters) is only ever touched from that
  /// shard: local waits and stores run there, and remote increments arrive
  /// as mailbox messages applied on the owner (see shmem::World).
  FlagArray(std::vector<sim::Engine*> per_pe_engines, std::size_t n)
      : engines_(std::move(per_pe_engines)),
        num_pes_(static_cast<int>(engines_.size())),
        n_(n),
        values_(engines_.size() * n, 0),
        waiters_(engines_.size() * n),
        order_seq_(engines_.size() * n, 0) {
    for ([[maybe_unused]] sim::Engine* e : engines_) FCC_DCHECK(e != nullptr);
  }

  ~FlagArray() {
    for ([[maybe_unused]] const auto& ws : waiters_) {
      FCC_DCHECK(ws.empty());
    }
  }

  std::size_t size() const { return n_; }
  int num_pes() const { return num_pes_; }

  std::uint64_t read(PeId pe, std::size_t i) const {
    return values_[flat(pe, i)];
  }

  /// Local (or delivered-remote) store to the flag; wakes satisfied waiters.
  /// While waiters are armed the value must not decrease: a targeted wakeup
  /// commits the waiter at notify time and there is no re-check at resume
  /// (shmem flags are monotonic — readiness bits and arrival counters).
  void set(PeId pe, std::size_t i, std::uint64_t v) {
    const std::size_t f = flat(pe, i);
    FCC_DCHECK(waiters_[f].empty() || v >= values_[f]);
    values_[f] = v;
    wake(f);
  }

  /// Fetch-add used for arrival counters; wakes satisfied waiters; returns
  /// the new value.
  std::uint64_t add(PeId pe, std::size_t i, std::uint64_t v) {
    const std::size_t f = flat(pe, i);
    values_[f] += v;
    wake(f);
    return values_[f];
  }

  /// Awaitable: suspends until flag[pe][i] >= v (shmem_wait_until analog).
  /// Already-satisfied waits do not suspend and cost no events.
  auto wait_ge(PeId pe, std::size_t i, std::uint64_t v) {
    struct Awaiter {
      FlagArray& fa;
      std::size_t f;
      std::uint64_t threshold;
      bool await_ready() const noexcept { return fa.values_[f] >= threshold; }
      void await_suspend(std::coroutine_handle<> h) {
        fa.enqueue(f, threshold, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, flat(pe, i), v};
  }

  /// Waiters currently suspended on flag[pe][i] (tests / diagnostics).
  std::size_t num_waiters(PeId pe, std::size_t i) const {
    return waiters_[flat(pe, i)].size();
  }

  /// Waiters suspended anywhere in the array (leak checks under churn).
  std::size_t total_waiters() const {
    std::size_t n = 0;
    for (const auto& ws : waiters_) n += ws.size();
    return n;
  }

  /// One suspended wait_ge: flag[pe][index] is at `value`, the waiter needs
  /// `threshold`. Snapshot for deadlock diagnostics.
  struct PendingWait {
    PeId pe = 0;
    std::size_t index = 0;
    std::uint64_t value = 0;
    std::uint64_t threshold = 0;
  };

  /// Every currently-suspended waiter, in (flag, threshold) order — what a
  /// deadlocked operator is actually blocked on (FusedOp::deadlock_report).
  std::vector<PendingWait> pending_waits() const {
    std::vector<PendingWait> out;
    for (std::size_t f = 0; f < waiters_.size(); ++f) {
      for (const Waiter& w : waiters_[f]) {
        out.push_back({static_cast<PeId>(f / n_), f % n_, values_[f],
                       w.threshold});
      }
    }
    return out;
  }

  /// Returns the array to its freshly-constructed state: all values zero,
  /// per-flag wake-order sequences rewound. Serving workloads reuse one
  /// array across back-to-back operator runs instead of reallocating;
  /// resetting with a waiter still registered would strand its coroutine
  /// forever (its threshold refers to the previous run's counter), so that
  /// is checked loudly here rather than left to the destructor's DCHECK.
  void reset() {
    for ([[maybe_unused]] std::size_t f = 0; f < waiters_.size(); ++f) {
      FCC_CHECK_MSG(waiters_[f].empty(),
                    "FlagArray::reset with " << waiters_[f].size()
                                             << " waiter(s) registered on "
                                                "flag["
                                             << f / n_ << "][" << f % n_
                                             << "]");
    }
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(order_seq_.begin(), order_seq_.end(), 0);
  }

 private:
  struct Waiter {
    std::uint64_t threshold;
    std::uint64_t order;  // registration sequence (wake-order tiebreak)
    std::coroutine_handle<> h;
  };

  std::size_t flat(PeId pe, std::size_t i) const {
    FCC_DCHECK(pe >= 0 && pe < num_pes_);
    FCC_DCHECK(i < n_);
    return static_cast<std::size_t>(pe) * n_ + i;
  }

  void enqueue(std::size_t f, std::uint64_t threshold,
               std::coroutine_handle<> h) {
    auto& ws = waiters_[f];
    // Per-flag registration sequence: `order` only ever tiebreaks waiters
    // on the *same* flag, and a flag is touched exclusively from its owning
    // PE's shard — a single array-wide counter would be a cross-shard data
    // race under the windowed worker team.
    const Waiter w{threshold, order_seq_[f]++, h};
    // Keep sorted by threshold; `order` is monotonic, so inserting after
    // equal thresholds keeps the sort stable in registration order.
    const auto pos = std::upper_bound(
        ws.begin(), ws.end(), threshold,
        [](std::uint64_t t, const Waiter& x) { return t < x.threshold; });
    ws.insert(pos, w);
  }

  /// Resumes every waiter whose threshold the flag's value now meets — the
  /// sorted prefix — in registration order.
  void wake(std::size_t f) {
    auto& ws = waiters_[f];
    if (ws.empty()) return;
    const std::uint64_t v = values_[f];
    std::size_t k = 0;
    while (k < ws.size() && ws[k].threshold <= v) ++k;
    if (k == 0) return;
    if (k > 1) {
      std::sort(ws.begin(), ws.begin() + static_cast<std::ptrdiff_t>(k),
                [](const Waiter& a, const Waiter& b) {
                  return a.order < b.order;
                });
    }
    sim::Engine& e = *engines_[f / n_];  // the flag's owning PE's engine
    for (std::size_t j = 0; j < k; ++j) {
      e.schedule_resume_after(0, ws[j].h);
    }
    ws.erase(ws.begin(), ws.begin() + static_cast<std::ptrdiff_t>(k));
  }

  std::vector<sim::Engine*> engines_;  // per PE: home-shard engine
  int num_pes_;
  std::size_t n_;
  std::vector<std::uint64_t> values_;      // [pe * n + i], contiguous
  std::vector<std::vector<Waiter>> waiters_;  // [pe * n + i]
  std::vector<std::uint64_t> order_seq_;      // per-flag Waiter::order source
};

/// WG-completion bitmask for one slice (WG_Done analog). The last WG to set
/// its bit learns it is last — the paper implements the reduction with
/// cross-lane operations instead of an inter-WG barrier; here the claim
/// check is exact and race-free because a mask belongs to one PE and is
/// only touched from that PE's home-shard engine (serial within a shard).
/// Multi-word so slices may span more than 64 logical WGs.
class WgDoneMask {
 public:
  explicit WgDoneMask(int num_wgs) : expected_(num_wgs) {
    FCC_CHECK(num_wgs >= 1);
    words_.assign(static_cast<std::size_t>((num_wgs + 63) / 64), 0);
  }

  /// Sets bit `wg`; returns true iff this made the mask complete (the caller
  /// is the last finishing WG and must issue the slice's communication).
  bool set_and_check_last(int wg) {
    FCC_DCHECK(wg >= 0 && wg < expected_);
    auto& word = words_[static_cast<std::size_t>(wg / 64)];
    const std::uint64_t bit = std::uint64_t{1} << (wg % 64);
    FCC_CHECK_MSG((word & bit) == 0, "WG done-bit set twice");
    word |= bit;
    ++count_;
    return count_ == expected_;
  }

  bool complete() const { return count_ == expected_; }

  /// Single-word view, valid only for masks of <= 64 WGs (wider masks would
  /// silently truncate — use words()).
  std::uint64_t mask() const {
    FCC_CHECK_MSG(expected_ <= 64,
                  "mask() on a " << expected_ << "-WG mask truncates; "
                                 << "use words()");
    return words_.front();
  }

  /// Full word span, least-significant word first (bit wg lives at
  /// words()[wg / 64] bit wg % 64).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  int expected_;
  int count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fcc::shmem

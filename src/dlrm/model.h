// Distributed DLRM forward pass (Fig. 2 of the paper).
//
// Model parallelism for embedding tables (tables_per_pe per GPU), data
// parallelism for the MLPs. The forward pass runs, per PE and per batch:
//
//   bottom MLP (dense features)  ──┐   (the only independent compute)
//   embedding pooling + All-to-All ─┤→ interaction → top MLP → CTR logit
//
// The embedding + All-to-All stage dispatches to either the fused operator
// or the bulk-synchronous baseline; everything downstream is identical, so
// functional equality between the two paths validates the fused exchange.
#pragma once

#include <vector>

#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "ops/gemm.h"

namespace fcc::dlrm {

struct DlrmConfig {
  fused::EmbeddingA2AConfig emb;      // slice map, pooling, policy, ...
  int dense_dim = 16;                 // dense-feature input width
  std::vector<int> bottom_mlp = {32, 16};  // widths; output must equal emb dim
  std::vector<int> top_mlp = {64, 1};
  fw::Backend backend = fw::Backend::kFused;

  void validate() const;
  int num_features() const {  // interaction inputs per sample
    return emb.map.tables_per_pe * emb.map.num_pes + 1;
  }
  int interaction_dim() const {  // pairwise dots + bottom passthrough
    const int f = num_features();
    return f * (f - 1) / 2 + emb.map.dim;
  }
};

struct DlrmResult {
  fused::OperatorResult emb_a2a;
  TimeNs bottom_mlp_ns = 0;
  TimeNs interaction_ns = 0;
  TimeNs top_mlp_ns = 0;
  TimeNs total_ns = 0;
  /// Functional mode: CTR logits per PE, local-batch order.
  std::vector<std::vector<float>> logits;
};

class DlrmModel {
 public:
  DlrmModel(fw::Session& session, DlrmConfig cfg);

  /// One forward pass over a synthetic batch drawn from `seed`.
  DlrmResult forward(std::uint64_t seed);

 private:
  struct Weights {  // data-parallel: identical on every PE
    std::vector<std::vector<float>> bottom;  // [layer][in*out]
    std::vector<std::vector<float>> top;
  };

  sim::Co mlp_stack(PeId pe, int batch, int in_dim,
                    const std::vector<int>& widths, double efficiency);
  sim::Co interaction_kernel(PeId pe, int batch);

  fw::Session& session_;
  DlrmConfig cfg_;
  Weights weights_;
};

}  // namespace fcc::dlrm

#include "dlrm/model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "gpu/persistent.h"
#include "ops/cost_model.h"
#include "ops/elementwise.h"
#include "ops/gemv.h"
#include "sim/task.h"

namespace fcc::dlrm {
namespace {

/// Host reference MLP layer: out = relu(in * W), in: [batch x k], W: [k x n].
std::vector<float> mlp_layer_ref(const std::vector<float>& in, int batch,
                                 int k, int n, const std::vector<float>& w,
                                 bool relu) {
  ops::GemmShape s;
  s.m = batch;
  s.k = k;
  s.n = n;
  auto out = ops::gemm_reference(s, in, w);
  if (relu) ops::relu_inplace(out);
  return out;
}

}  // namespace

void DlrmConfig::validate() const {
  emb.map.validate();
  FCC_CHECK(!bottom_mlp.empty());
  FCC_CHECK(!top_mlp.empty());
  FCC_CHECK_MSG(bottom_mlp.back() == emb.map.dim,
                "bottom MLP output width must equal the embedding dim for "
                "the dot interaction");
}

DlrmModel::DlrmModel(fw::Session& session, DlrmConfig cfg)
    : session_(session), cfg_(std::move(cfg)) {
  cfg_.validate();
  // Data-parallel weights: one copy, shared by every PE.
  Rng rng(0xD1C3);
  int in = cfg_.dense_dim;
  for (int w : cfg_.bottom_mlp) {
    weights_.bottom.push_back(ops::random_vector(
        static_cast<std::size_t>(in) * static_cast<std::size_t>(w), rng));
    in = w;
  }
  in = cfg_.interaction_dim();
  for (int w : cfg_.top_mlp) {
    weights_.top.push_back(ops::random_vector(
        static_cast<std::size_t>(in) * static_cast<std::size_t>(w), rng));
    in = w;
  }
}

sim::Co DlrmModel::mlp_stack(PeId pe, int batch, int in_dim,
                             const std::vector<int>& widths,
                             double efficiency) {
  auto& machine = session_.machine();
  auto& dev = machine.device(pe);
  const auto& spec = dev.spec();
  int k = in_dim;
  for (int n : widths) {
    co_await sim::delay(machine.engine(), spec.kernel_launch_ns);
    // One GEMM kernel per layer: grid of output tiles.
    ops::GemmShape s;
    s.m = batch;
    s.k = k;
    s.n = n;
    // Skinny MLP GEMMs use small tiles so the grid fills the device.
    s.block_m = 16;
    s.block_n = 16;
    gpu::KernelRun::Params p;
    p.name = "mlp_layer";
    p.num_slots = spec.max_wg_slots();
    p.order.resize(static_cast<std::size_t>(s.num_tiles()));
    for (int t = 0; t < s.num_tiles(); ++t) {
      p.order[static_cast<std::size_t>(t)] = t;
    }
    p.body = [&dev, s, efficiency](int, int pid) -> sim::Co {
      const int rows = s.row_end(pid) - s.row_begin(pid);
      const int cols = s.col_end(pid) - s.col_begin(pid);
      co_await dev.compute(ops::gemm_tile_cost(rows, cols, s.k, efficiency,
                                               ops::kBaselineCurve));
    };
    gpu::KernelRun run(machine.engine(), std::move(p));
    run.start();
    co_await run.wait();
    k = n;
  }
}

sim::Co DlrmModel::interaction_kernel(PeId pe, int batch) {
  auto& machine = session_.machine();
  auto& dev = machine.device(pe);
  const int f = cfg_.num_features();
  const int d = cfg_.emb.map.dim;
  co_await sim::delay(machine.engine(), dev.spec().kernel_launch_ns);
  // Pairwise dots over f feature vectors of width d per sample: the kernel
  // saturates the whole device, so charge the aggregate time directly
  // (max of bandwidth- and ALU-limited estimates).
  const double bytes = static_cast<double>(batch) * f * d * 4;
  const double flops = static_cast<double>(batch) * f * (f - 1) / 2.0 * 2.0 * d;
  const auto& spec = dev.spec();
  const double t_mem = bytes / dev.hbm().total_bandwidth(spec.max_wg_slots());
  const double t_alu = flops / (0.5 * spec.fp32_flops_per_ns);
  co_await sim::delay(machine.engine(),
                      static_cast<TimeNs>(std::max(t_mem, t_alu)));
}

DlrmResult DlrmModel::forward(std::uint64_t seed) {
  auto& machine = session_.machine();
  auto& engine = machine.engine();
  const auto& map = cfg_.emb.map;
  const int pes = map.num_pes;
  const int lb = map.local_batch();
  DlrmResult res;

  // --- inputs ---
  Rng rng(seed);
  std::vector<std::vector<float>> dense;  // [pe][lb * dense_dim]
  for (int pe = 0; pe < pes; ++pe) {
    dense.push_back(ops::random_vector(
        static_cast<std::size_t>(lb) * static_cast<std::size_t>(cfg_.dense_dim),
        rng));
  }
  auto emb_out = session_.symmetric_empty(map.dest_elems(),
                                          cfg_.emb.functional);
  fused::EmbeddingA2AData data;
  if (cfg_.emb.functional) {
    data = fused::EmbeddingA2AData::random(cfg_.emb, emb_out.get(),
                                           seed ^ 0xE5B);
  }

  // --- overlapped stage: bottom MLP (independent) + embedding + A2A ---
  const TimeNs t0 = engine.now();
  TimeNs bottom_done = 0;
  {
    sim::JoinCounter join(engine, pes + 1);
    struct BottomDriver {
      static sim::Task go(sim::Engine& e, DlrmModel& m, PeId pe, int lb2,
                          sim::JoinCounter& join, TimeNs& done_at) {
        co_await m.mlp_stack(pe, lb2, m.cfg_.dense_dim, m.cfg_.bottom_mlp,
                             ops::kTunedGemmEfficiency);
        done_at = std::max(done_at, e.now());
        join.arrive();
      }
    };
    struct EmbDriver {
      static sim::Task go(sim::Engine&, DlrmModel& m,
                          fused::EmbeddingA2AData* d, sim::JoinCounter& join,
                          fused::OperatorResult& out) {
        if (m.cfg_.backend == fw::Backend::kFused) {
          fused::FusedEmbeddingAllToAll op(m.session_.world(), m.cfg_.emb, d);
          co_await op.run();
          out = op.result();
        } else {
          fused::BaselineEmbeddingAllToAll op(m.session_.world(), m.cfg_.emb,
                                              d);
          co_await op.run();
          out = op.result();
        }
        join.arrive();
      }
    };
    for (PeId pe = 0; pe < pes; ++pe) {
      BottomDriver::go(engine, *this, pe, lb, join, bottom_done);
    }
    EmbDriver::go(engine, *this, cfg_.emb.functional ? &data : nullptr, join,
                  res.emb_a2a);
    // Drain this stage.
    struct Join {
      static sim::Task go(sim::Engine&, sim::JoinCounter& j, bool& flag) {
        co_await j.wait();
        flag = true;
      }
    };
    bool stage_done = false;
    Join::go(engine, join, stage_done);
    engine.run();
    FCC_CHECK_MSG(stage_done && engine.live_tasks() == 0,
                  "DLRM overlapped stage deadlocked");
  }
  res.bottom_mlp_ns = bottom_done - t0;

  // --- interaction + top MLP (sequential, per PE in parallel) ---
  {
    const TimeNs t1 = engine.now();
    sim::JoinCounter join(engine, pes);
    struct TailDriver {
      static sim::Task go(sim::Engine&, DlrmModel& m, PeId pe, int lb2,
                          sim::JoinCounter& join) {
        co_await m.interaction_kernel(pe, lb2);
        co_await m.mlp_stack(pe, lb2, m.cfg_.interaction_dim(), m.cfg_.top_mlp,
                             ops::kTunedGemmEfficiency);
        join.arrive();
      }
    };
    for (PeId pe = 0; pe < pes; ++pe) {
      TailDriver::go(engine, *this, pe, lb, join);
    }
    struct Join {
      static sim::Task go(sim::Engine&, sim::JoinCounter& j, bool& flag) {
        co_await j.wait();
        flag = true;
      }
    };
    bool tail_done = false;
    Join::go(engine, join, tail_done);
    engine.run();
    FCC_CHECK(tail_done);
    // Split the tail between interaction and top MLP by cost proportion is
    // not needed; record the lump under top_mlp and measure interaction on
    // PE 0 analytically.
    res.interaction_ns = 0;
    res.top_mlp_ns = engine.now() - t1;
  }
  res.total_ns = engine.now() - t0;

  // --- functional math (host reference path shared by both backends) ---
  if (cfg_.emb.functional) {
    for (int pe = 0; pe < pes; ++pe) {
      // Bottom MLP.
      std::vector<float> act = dense[static_cast<std::size_t>(pe)];
      int k = cfg_.dense_dim;
      for (std::size_t l = 0; l < cfg_.bottom_mlp.size(); ++l) {
        const int n = cfg_.bottom_mlp[l];
        act = mlp_layer_ref(act, lb, k, n, weights_.bottom[l], true);
        k = n;
      }
      // Interaction: pairwise dots among [tables x emb, bottom out].
      const int f = cfg_.num_features();
      const int d = map.dim;
      const int t_global = f - 1;
      auto emb_pe = emb_out->pe(pe);
      std::vector<float> feats(static_cast<std::size_t>(lb) *
                               static_cast<std::size_t>(cfg_.interaction_dim()));
      for (int b = 0; b < lb; ++b) {
        // Gather the f feature vectors.
        std::vector<const float*> vecs;
        for (int gt = 0; gt < t_global; ++gt) {
          vecs.push_back(&emb_pe[map.dest_offset(b, gt, 0)]);
        }
        const float* bot =
            &act[static_cast<std::size_t>(b) * static_cast<std::size_t>(d)];
        vecs.push_back(bot);
        std::size_t off = static_cast<std::size_t>(b) *
                          static_cast<std::size_t>(cfg_.interaction_dim());
        for (int i = 0; i < f; ++i) {
          for (int j = i + 1; j < f; ++j) {
            double dot = 0;
            for (int c = 0; c < d; ++c) {
              dot += static_cast<double>(vecs[static_cast<std::size_t>(i)][c]) *
                     vecs[static_cast<std::size_t>(j)][c];
            }
            feats[off++] = static_cast<float>(dot);
          }
        }
        for (int c = 0; c < d; ++c) feats[off++] = bot[c];
      }
      // Top MLP (+ sigmoid on the final logit).
      std::vector<float> top = feats;
      k = cfg_.interaction_dim();
      for (std::size_t l = 0; l < cfg_.top_mlp.size(); ++l) {
        const int n = cfg_.top_mlp[l];
        const bool last = (l + 1 == cfg_.top_mlp.size());
        top = mlp_layer_ref(top, lb, k, n, weights_.top[l], !last);
        k = n;
      }
      for (auto& v : top) v = 1.0f / (1.0f + std::exp(-v));
      res.logits.push_back(std::move(top));
    }
  }
  return res;
}

}  // namespace fcc::dlrm

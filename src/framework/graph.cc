#include "framework/graph.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"

namespace fcc::fw {

namespace {

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

TensorId Graph::tensor(std::string name) {
  TensorState t;
  t.name = std::move(name);
  tensors_.push_back(std::move(t));
  return TensorId{static_cast<int>(tensors_.size()) - 1};
}

NodeId Graph::add(OpSpec spec, const std::vector<TensorId>& inputs,
                  const std::vector<TensorId>& outputs, std::string label) {
  const int id = num_nodes();
  GraphNode n;
  n.label = label.empty() ? spec.name : std::move(label);
  n.spec = std::move(spec);
  FCC_CHECK_MSG(!n.spec.name.empty(), "graph node needs an op name");

  auto check_tensor = [this](TensorId t) {
    FCC_CHECK_MSG(t.v >= 0 && t.v < num_tensors(),
                  "graph node references undeclared tensor id " << t.v);
    return t.v;
  };

  // RAW: wait for the producer of every input.
  for (TensorId t : inputs) {
    const int tid = check_tensor(t);
    n.inputs.push_back(tid);
    const TensorState& ts = tensors_[static_cast<std::size_t>(tid)];
    if (ts.last_writer >= 0) n.deps.push_back(ts.last_writer);
  }
  // WAW/WAR: wait for the previous writer and any reader still in flight
  // before overwriting a tensor.
  for (TensorId t : outputs) {
    const int tid = check_tensor(t);
    n.outputs.push_back(tid);
    const TensorState& ts = tensors_[static_cast<std::size_t>(tid)];
    if (ts.last_writer >= 0) n.deps.push_back(ts.last_writer);
    n.deps.insert(n.deps.end(), ts.readers.begin(), ts.readers.end());
  }
  sort_unique(n.deps);

  nodes_.push_back(std::move(n));
  for (int tid : nodes_.back().inputs) {
    tensors_[static_cast<std::size_t>(tid)].readers.push_back(id);
  }
  for (int tid : nodes_.back().outputs) {
    TensorState& ts = tensors_[static_cast<std::size_t>(tid)];
    ts.last_writer = id;
    ts.readers.clear();
  }
  return NodeId{id};
}

NodeId Graph::add(std::string op, const std::vector<TensorId>& inputs,
                  const std::vector<TensorId>& outputs, std::string label) {
  OpSpec spec;
  spec.name = std::move(op);
  return add(std::move(spec), inputs, outputs, std::move(label));
}

void Graph::add_dep(NodeId node, NodeId before) {
  FCC_CHECK_MSG(node.v >= 0 && node.v < num_nodes(),
                "add_dep: bad node id " << node.v);
  FCC_CHECK_MSG(before.v >= 0 && before.v < num_nodes(),
                "add_dep: bad node id " << before.v);
  FCC_CHECK_MSG(before.v < node.v,
                "add_dep: '" << nodes_[static_cast<std::size_t>(node.v)].label
                             << "' cannot wait on the later-added node '"
                             << nodes_[static_cast<std::size_t>(before.v)].label
                             << "' (graphs are DAGs by construction)");
  auto& deps = mutable_node(node.v).deps;
  deps.push_back(before.v);
  sort_unique(deps);
}

int Graph::num_live_nodes() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.fused_away ? 0 : 1;
  return n;
}

void apply_fused_rewrites(Graph& graph,
                          const std::vector<FusedRewrite>& rewrites) {
  for (const FusedRewrite& rw : rewrites) {
    const int i = rw.producer;
    const int j = rw.consumer;
    GraphNode& producer = graph.mutable_node(i);
    GraphNode& consumer = graph.mutable_node(j);

    // Merge the pair into the consumer's slot (every other node's deps
    // stay valid: nothing but the consumer referenced the producer).
    OpSpec merged;
    merged.name = rw.fused_op;
    merged.config = producer.spec.config.has_value() ? producer.spec.config
                                                     : consumer.spec.config;
    merged.data = producer.spec.data.has_value() ? producer.spec.data
                                                 : consumer.spec.data;
    consumer.fused_from = producer.spec.name + " + " + consumer.spec.name;
    consumer.spec = std::move(merged);
    consumer.label = rw.fused_op;

    // Reads: the producer's inputs plus whatever the consumer read that
    // the producer did not feed it. Writes: the consumer's outputs (the
    // producer's become internal to the fused op).
    std::vector<int> inputs = producer.inputs;
    for (int t : consumer.inputs) {
      if (std::find(producer.outputs.begin(), producer.outputs.end(), t) ==
          producer.outputs.end()) {
        inputs.push_back(t);
      }
    }
    sort_unique(inputs);
    consumer.inputs = std::move(inputs);

    std::vector<int> deps = producer.deps;
    for (int d : consumer.deps) {
      if (d != i) deps.push_back(d);
    }
    sort_unique(deps);
    consumer.deps = std::move(deps);

    producer.fused_away = true;
    // Keep tensor bookkeeping usable if the caller keeps building: the
    // fused node stands in for the producer everywhere.
    for (auto& ts : graph.tensors_) {
      if (ts.last_writer == i) ts.last_writer = j;
      for (auto& r : ts.readers) {
        if (r == i) r = j;
      }
    }
  }
}

int rewrite_fused(Graph& graph, const OpRegistry& registry,
                  std::vector<FusedRewrite>* out) {
  // (producer op, consumer op) -> fused registry name. Two entries
  // claiming one pattern would make the rewrite depend on registry
  // iteration order — refuse instead of silently letting one shadow the
  // other.
  std::map<std::pair<std::string, std::string>, std::string> table;
  for (const auto& name : registry.names()) {
    const auto pat = registry.at(name).unfused_pattern();
    if (pat.size() != 2) continue;
    const auto [it, inserted] = table.try_emplace({pat[0], pat[1]}, name);
    FCC_CHECK_MSG(inserted, "ops '" << it->second << "' and '" << name
                                    << "' both declare the unfused pattern '"
                                    << pat[0] << " + " << pat[1] << "'");
  }
  if (table.empty()) return 0;

  int rewrites = 0;
  for (int j = 0; j < graph.num_nodes(); ++j) {
    GraphNode& consumer = graph.mutable_node(j);
    if (consumer.fused_away) continue;
    // Find a dataflow-connected producer dep forming a registered pattern.
    for (int i : std::vector<int>(consumer.deps)) {
      GraphNode& producer = graph.mutable_node(i);
      if (producer.fused_away) continue;
      const auto hit =
          table.find({producer.spec.name, consumer.spec.name});
      if (hit == table.end()) continue;
      // Connected by dataflow (not just a control edge)?
      const bool dataflow = std::any_of(
          producer.outputs.begin(), producer.outputs.end(), [&](int t) {
            return std::find(consumer.inputs.begin(), consumer.inputs.end(),
                             t) != consumer.inputs.end();
          });
      if (!dataflow) continue;
      // The consumer must be the producer's sole dependent — fusing would
      // otherwise retime another node's input.
      bool sole = true;
      for (int k = 0; sole && k < graph.num_nodes(); ++k) {
        if (k == j || graph.node(k).fused_away) continue;
        const auto& deps = graph.node(k).deps;
        sole = std::find(deps.begin(), deps.end(), i) == deps.end();
      }
      if (!sole) continue;

      FusedRewrite rw{i, j, hit->second};
      apply_fused_rewrites(graph, {rw});
      if (out != nullptr) out->push_back(std::move(rw));
      ++rewrites;
      break;  // this consumer is rewritten; move on to the next node
    }
  }
  return rewrites;
}

int rewrite_fused(Graph& graph, const OpRegistry& registry) {
  return rewrite_fused(graph, registry, nullptr);
}

}  // namespace fcc::fw

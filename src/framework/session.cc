#include "framework/session.h"

namespace fcc::fw {

fused::OperatorResult Session::run(const OpSpec& spec, Backend backend,
                                   const OpRegistry& registry) {
  return registry.run(spec, world_, backend);
}

GraphResult Session::run(const Graph& graph, Backend backend,
                         const OpRegistry& registry) {
  Graph lowered = graph;
  const int rewrites = rewrite_fused(lowered, registry);
  GraphExecutor executor(lowered, registry);
  GraphResult result = executor.run(world_, backend);
  result.rewrites = rewrites;
  return result;
}

}  // namespace fcc::fw

#include "framework/session.h"

#include "plan/planner.h"

namespace fcc::fw {

fused::OperatorResult Session::run(const OpSpec& spec, Backend backend,
                                   const OpRegistry& registry) {
  return registry.run(spec, world_, backend);
}

GraphResult Session::run(const Graph& graph, Backend backend,
                         const OpRegistry& registry) {
  // The always-fuse path: only the fuse-patterns pass runs, and every live
  // node executes on the caller's backend — identical semantics to the
  // pre-planner rewrite_fused + uniform-dispatch path.
  plan::PlanOptions options;
  options.default_backend = backend;
  options.passes = {"fuse-patterns"};
  return run_planned(graph, options, registry).result;
}

Session::PlannedRun Session::run_planned(const Graph& graph,
                                         const plan::PlanOptions& options,
                                         const OpRegistry& registry) {
  plan::Planner planner(registry);
  PlannedRun pr{planner.plan(graph, machine_.config(), options), {}};
  GraphExecutor executor(pr.planned.graph, registry);
  pr.result = executor.run(world_, pr.planned.backends());
  pr.result.rewrites =
      static_cast<int>(pr.planned.plan.fused_rewrites.size());
  return pr;
}

}  // namespace fcc::fw

#include "framework/session.h"

namespace fcc::fw {

fused::OperatorResult Session::run(const OpSpec& spec, Backend backend,
                                   const OpRegistry& registry) {
  return registry.run(spec, world_, backend);
}

}  // namespace fcc::fw

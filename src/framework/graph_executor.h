// Concurrent topological executor for fw::Graph.
//
// Every node whose dependencies are satisfied runs immediately: the
// executor builds each node's operator through the registry factory up
// front (so factory/type errors throw catchably), then spawns one driver
// process per node which awaits its deps' completion events and
// `FusedOp::spawn()`s it — so independent nodes (layer N+1's embedding
// dispatch, layer N's MLP) genuinely interleave their simulated kernels,
// PUTs and flag traffic on one engine, exactly like the mixed-operator
// determinism workloads. A single engine drain completes the whole graph;
// per-node OperatorResults, the critical path, and the achieved overlap
// fraction come back in a GraphResult.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "framework/graph.h"
#include "fused/result.h"
#include "shmem/world.h"

namespace fcc::fw {

/// One scheduled node's outcome.
struct NodeRunResult {
  int node = -1;           // node id in the executed (lowered) graph
  std::string op;          // registry op dispatched
  std::string label;
  std::string fused_from;  // unfused pattern if the rewrite pass built it
  TimeNs ready = 0;        // when the last dependency completed
  fused::OperatorResult result;
};

struct GraphResult {
  std::vector<NodeRunResult> nodes;  // live nodes, graph order
  TimeNs start = 0;
  TimeNs end = 0;
  /// Longest dependency chain through the executed nodes, by measured op
  /// duration — the lower bound any scheduler can reach.
  TimeNs critical_path_ns = 0;
  /// Pattern pairs collapsed by Session::run's rewrite pass (0 when the
  /// executor was handed an already-lowered graph).
  int rewrites = 0;

  TimeNs makespan() const { return end - start; }
  TimeNs sum_durations() const;
  /// Fraction of total op time hidden by inter-op overlap:
  /// 1 - makespan/sum_durations. 0 for an empty graph or a pure chain.
  double overlap_fraction() const;
};

class GraphExecutor {
 public:
  /// The graph must outlive the executor. Pattern nodes left unrewritten
  /// surface as the registry's unknown-op error (with the registered-op
  /// list) when run() validates the graph.
  explicit GraphExecutor(const Graph& graph,
                         const OpRegistry& registry = OpRegistry::global());

  /// Runs every live node on `world`'s engine and drains to completion.
  /// Throws if the graph deadlocks (a node never became ready).
  GraphResult run(shmem::World& world, Backend backend);

  /// Per-node backend variant (the plan layer's entry point): node i is
  /// built with `backends[i]`. The vector is indexed by graph node id and
  /// must cover every node; fused-away slots are ignored.
  GraphResult run(shmem::World& world, const std::vector<Backend>& backends);

 private:
  const Graph& graph_;
  const OpRegistry& registry_;
};

}  // namespace fcc::fw

#include "framework/op_registry.h"

#include "common/check.h"

namespace fcc::fw {

OpRegistry& OpRegistry::global() {
  static OpRegistry registry;
  return registry;
}

void OpRegistry::register_op(OpEntry entry) {
  FCC_CHECK_MSG(!entry.name.empty(), "op needs a name");
  FCC_CHECK_MSG(entry.make != nullptr, "op needs a factory: " << entry.name);
  FCC_CHECK_MSG(ops_.find(entry.name) == ops_.end(),
                "duplicate op registration: " << entry.name);
  ops_.emplace(entry.name, std::move(entry));
}

bool OpRegistry::contains(const std::string& name) const {
  return ops_.find(name) != ops_.end();
}

const OpEntry& OpRegistry::at(const std::string& name) const {
  auto it = ops_.find(name);
  FCC_CHECK_MSG(it != ops_.end(), "unknown op: " << name);
  return it->second;
}

std::vector<std::string> OpRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& [k, v] : ops_) out.push_back(k);
  return out;
}

fused::OperatorResult OpRegistry::run(const OpSpec& spec, shmem::World& world,
                                      Backend backend) const {
  auto op = at(spec.name).make(world, spec, backend);
  FCC_CHECK_MSG(op != nullptr,
                "factory for op '" << spec.name << "' returned null");
  return op->run_to_completion();
}

}  // namespace fcc::fw

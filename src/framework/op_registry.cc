#include "framework/op_registry.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace fcc::fw {

namespace detail {

std::string spec_type_error_msg(const std::string& op, const char* slot,
                                const char* held, const char* expected) {
  std::ostringstream os;
  os << "op '" << op << "': spec " << slot << " holds '" << held
     << "' but the factory expects '" << expected << "'";
  return os.str();
}

}  // namespace detail

std::vector<std::string> OpEntry::unfused_pattern() const { return pattern; }

OpRegistry& OpRegistry::global() {
  static OpRegistry registry;
  return registry;
}

void OpRegistry::register_op(OpEntry entry) {
  FCC_CHECK_MSG(!entry.name.empty(), "op needs a name");
  FCC_CHECK_MSG(entry.make != nullptr, "op needs a factory: " << entry.name);
  FCC_CHECK_MSG(ops_.find(entry.name) == ops_.end(),
                "duplicate op registration: " << entry.name);
  ops_.emplace(entry.name, std::move(entry));
}

bool OpRegistry::contains(const std::string& name) const {
  return ops_.find(name) != ops_.end();
}

const OpEntry& OpRegistry::at(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    // Spell out what *is* registered: a typo'd or unregistered name is the
    // most common dispatch failure, and the fix is usually in this list.
    std::ostringstream os;
    os << "unknown op: '" << name << "'; registered ops: [";
    bool first = true;
    for (const auto& kv : ops_) {  // std::map: already sorted by name
      os << (first ? "" : ", ") << kv.first;
      first = false;
    }
    os << "]";
    throw std::logic_error(os.str());
  }
  return it->second;
}

std::vector<std::string> OpRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& [k, v] : ops_) out.push_back(k);
  return out;
}

fused::OperatorResult OpRegistry::run(const OpSpec& spec, shmem::World& world,
                                      Backend backend) const {
  auto op = at(spec.name).make(world, spec, backend);
  FCC_CHECK_MSG(op != nullptr,
                "factory for op '" << spec.name << "' returned null");
  return op->run_to_completion();
}

}  // namespace fcc::fw

#include "framework/graph_executor.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "fused/op_runtime.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::fw {

TimeNs GraphResult::sum_durations() const {
  TimeNs sum = 0;
  for (const auto& n : nodes) sum += n.result.duration();
  return sum;
}

double GraphResult::overlap_fraction() const {
  const TimeNs sum = sum_durations();
  if (sum <= 0) return 0.0;
  const double frac =
      1.0 - static_cast<double>(makespan()) / static_cast<double>(sum);
  return frac > 0.0 ? frac : 0.0;
}

namespace {

/// Per-node runtime state. The operator is built by run() *before* any
/// driver is spawned — factory failures (SpecTypeError from a mis-typed
/// config, a null return) must throw catchably from run(), not inside a
/// sim::Task coroutine whose unhandled_exception is std::terminate.
/// Construction has no engine side effects, so prebuild cannot move a
/// timestamp; the op is dropped as soon as its result is harvested.
struct NodeState {
  explicit NodeState(sim::Engine& e) : done(e) {}

  sim::OneShot done;
  std::unique_ptr<fused::FusedOp> op;
  NodeRunResult res;
};

/// Driver process for one node: await deps, spawn, harvest.
sim::Task node_proc(sim::Engine& engine, const GraphNode& node, NodeState& st,
                    std::vector<std::unique_ptr<NodeState>>& states) {
  for (int d : node.deps) {
    co_await states[static_cast<std::size_t>(d)]->done.wait();
  }
  st.res.ready = engine.now();
  co_await st.op->spawn().wait();
  st.res.result = st.op->result();
  st.op.reset();
  st.done.set();
}

}  // namespace

GraphExecutor::GraphExecutor(const Graph& graph, const OpRegistry& registry)
    : graph_(graph), registry_(registry) {}

GraphResult GraphExecutor::run(shmem::World& world, Backend backend) {
  return run(world, std::vector<Backend>(
                        static_cast<std::size_t>(graph_.num_nodes()), backend));
}

GraphResult GraphExecutor::run(shmem::World& world,
                               const std::vector<Backend>& backends) {
  auto& engine = world.machine().engine();
  const int n = graph_.num_nodes();
  FCC_CHECK_MSG(static_cast<int>(backends.size()) >= n,
                "per-node backend vector covers " << backends.size()
                                                  << " nodes, graph has " << n);

  // Validate and build every operator before anything is scheduled: an
  // unrewritten pattern node fails registry lookup here with the full
  // registered-op list, and a factory unpacking a mis-typed spec throws
  // SpecTypeError here, catchably — never from inside a driver coroutine.
  std::vector<std::unique_ptr<NodeState>> states;
  states.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) states.push_back(std::make_unique<NodeState>(engine));
  for (int i = 0; i < n; ++i) {
    const GraphNode& node = graph_.node(i);
    if (node.fused_away) continue;
    for (int d : node.deps) {
      FCC_CHECK_MSG(!graph_.node(d).fused_away,
                    "graph node '" << node.label
                                   << "' depends on a fused-away node");
    }
    NodeState& st = *states[static_cast<std::size_t>(i)];
    st.op = registry_.at(node.spec.name)
                .make(world, node.spec, backends[static_cast<std::size_t>(i)]);
    FCC_CHECK_MSG(st.op != nullptr,
                  "factory for op '" << node.spec.name << "' returned null");
  }

  GraphResult out;
  out.start = engine.now();
  for (int i = 0; i < n; ++i) {
    const GraphNode& node = graph_.node(i);
    if (node.fused_away) continue;
    NodeState& st = *states[static_cast<std::size_t>(i)];
    st.res.node = i;
    st.res.op = node.spec.name;
    st.res.label = node.label;
    st.res.fused_from = node.fused_from;
    node_proc(engine, node, st, states);
  }
  world.machine().run_all();

  std::vector<int> unfinished;
  for (int i = 0; i < n; ++i) {
    if (!graph_.node(i).fused_away &&
        !states[static_cast<std::size_t>(i)]->done.is_set()) {
      unfinished.push_back(i);
    }
  }
  if (!unfinished.empty()) {
    std::ostringstream os;
    os << "graph deadlocked; unfinished nodes: [";
    for (std::size_t k = 0; k < unfinished.size(); ++k) {
      os << (k ? ", " : "") << graph_.node(unfinished[k]).label;
    }
    os << "] (" << world.machine().sharded().live_tasks()
       << " tasks suspended)";
    // Suspended driver frames still reference the node states; leak them
    // (the engine-wide deadlock policy — frames go with the process) so
    // ~OneShot never fires with parked waiters during unwinding.
    for (auto& st : states) (void)st.release();
    throw std::logic_error(os.str());
  }
  FCC_CHECK_MSG(world.machine().sharded().live_tasks() == 0,
                "graph drained but " << world.machine().sharded().live_tasks()
                                     << " tasks still suspended");

  out.end = out.start;
  std::vector<TimeNs> cp(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const GraphNode& node = graph_.node(i);
    if (node.fused_away) continue;
    const NodeRunResult& res = states[static_cast<std::size_t>(i)]->res;
    TimeNs longest_dep = 0;
    for (int d : node.deps) {
      longest_dep = std::max(longest_dep, cp[static_cast<std::size_t>(d)]);
    }
    cp[static_cast<std::size_t>(i)] = longest_dep + res.result.duration();
    out.critical_path_ns =
        std::max(out.critical_path_ns, cp[static_cast<std::size_t>(i)]);
    out.end = std::max(out.end, res.result.end);
    out.nodes.push_back(res);
  }
  return out;
}

}  // namespace fcc::fw

// Self-registering operator registry (the "new PyTorch operator" table).
//
// Each fused operator's translation unit registers a factory at static
// initialization via OpRegistrar, so adding an operator touches zero
// framework files: the registry maps an op name to a factory that builds
// either the fused or the baseline variant as a fused::FusedOp, and
// Session::run() dispatches any OpSpec through it — mirroring how a graph
// transformation pass swaps `embedding` + `all_to_all` nodes for
// `fcc::embedding_a2a` and the compiled graph then invokes it by name.
#pragma once

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fused/op_runtime.h"

namespace fcc::fw {

enum class Backend {
  kFused,     // GPU-initiated intra-kernel communication
  kBaseline,  // bulk-synchronous kernels + ccl collectives
};

/// Type-erased operator invocation: the registry key plus the operator's
/// config (by value) and optional data payload (typed pointer, so a
/// mismatched data type throws instead of being silent UB). Build with
/// make_spec().
struct OpSpec {
  std::string name;
  std::any config;
  std::any data;  // empty, or a Data* for the operator's data struct
};

/// Thrown by spec_config / spec_data when an OpSpec carries the wrong
/// config/data type for the factory unpacking it. Derives from
/// std::bad_any_cast (the error it wraps) but names the offending op and
/// the types involved instead of the bare "bad any_cast".
class SpecTypeError : public std::bad_any_cast {
 public:
  explicit SpecTypeError(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

/// Builds an OpSpec carrying `config` *by value*: the config is moved into
/// the spec's std::any here, and every subsequent OpSpec copy (Graph nodes
/// store specs by value; registry dispatch passes them around) copies the
/// config with it. Configs are small POD-ish structs by convention — keep
/// them cheap to copy and put bulky tensors behind the Data* payload, which
/// is carried as a raw pointer and never deep-copied (the caller owns the
/// pointee and must keep it alive across the run).
template <typename Config>
OpSpec make_spec(std::string name, Config config) {
  OpSpec spec;
  spec.name = std::move(name);
  spec.config = std::move(config);
  return spec;
}

template <typename Config, typename Data>
OpSpec make_spec(std::string name, Config config, Data* data) {
  OpSpec spec = make_spec(std::move(name), std::move(config));
  if (data != nullptr) spec.data = data;
  return spec;
}

namespace detail {
/// Formats the SpecTypeError message ("op 'x': spec config holds 'A' but
/// the factory expects 'B'"); out of line so the template stays slim.
std::string spec_type_error_msg(const std::string& op, const char* slot,
                                const char* held, const char* expected);
}  // namespace detail

/// Typed accessors for factories unpacking an OpSpec. Throw SpecTypeError
/// (a std::bad_any_cast naming the op) if the spec carries the wrong
/// config/data type.
template <typename Config>
const Config& spec_config(const OpSpec& spec) {
  const Config* cfg = std::any_cast<Config>(&spec.config);
  if (cfg == nullptr) {
    throw SpecTypeError(detail::spec_type_error_msg(
        spec.name, "config",
        spec.config.has_value() ? spec.config.type().name() : "(empty)",
        typeid(Config).name()));
  }
  return *cfg;
}

template <typename Data>
Data* spec_data(const OpSpec& spec) {
  if (!spec.data.has_value()) return nullptr;
  Data* const* data = std::any_cast<Data*>(&spec.data);
  if (data == nullptr) {
    throw SpecTypeError(detail::spec_type_error_msg(
        spec.name, "data", spec.data.type().name(), typeid(Data*).name()));
  }
  return *data;
}

/// PEs every smoke spec targets (one scale-up node, Table I).
inline constexpr int kSmokePes = 4;

inline gpu::Machine::Config smoke_machine_config() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = kSmokePes;
  return c;
}

/// Operator-registry entry: name, the op pattern the graph rewrite pass
/// collapses into this op, and the factory building either backend variant.
struct OpEntry {
  using Factory = std::function<std::unique_ptr<fused::FusedOp>(
      shmem::World&, const OpSpec&, Backend)>;

  std::string name;
  /// Purely documentary: a human-readable description of what this op
  /// fuses ("aten::mv + c10d::all_reduce"). Never parsed — the structured
  /// `pattern` field is the only rewrite metadata.
  std::string replaces;
  Factory make = nullptr;
  /// Optional: a small timing-only spec runnable on smoke_machine_config(),
  /// for registry-wide sweeps (fused-vs-baseline smoke tests, CI).
  std::function<OpSpec()> smoke_spec = nullptr;
  /// Structured rewrite metadata: the exact node-name sequence
  /// {producer, consumer} the graph rewrite pass matches. Empty = this op
  /// is not a fusion target.
  std::vector<std::string> pattern = {};
  /// Optional: canonical problem-size key for this op's config (e.g.
  /// "m=8192,k=8192"), used by fw::graph_fingerprint to build plan-cache
  /// keys. Ops without one still run; graphs containing them just plan
  /// uncached (the fingerprint is marked inexact).
  std::function<std::string(const OpSpec&)> shape_key = nullptr;

  /// The producer/consumer node names this op rewrites (`pattern`), or
  /// empty if the entry declares none.
  std::vector<std::string> unfused_pattern() const;
};

class OpRegistry {
 public:
  /// The process-wide registry that operator TUs register into.
  static OpRegistry& global();

  void register_op(OpEntry entry);
  bool contains(const std::string& name) const;
  const OpEntry& at(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Builds the op named by `spec` for `backend` and drives it to
  /// completion on `world`'s engine.
  fused::OperatorResult run(const OpSpec& spec, shmem::World& world,
                            Backend backend) const;

 private:
  std::map<std::string, OpEntry> ops_;
};

/// `static const OpRegistrar r{{...}};` in an operator's TU registers it
/// into the global registry before main().
struct OpRegistrar {
  explicit OpRegistrar(OpEntry entry) {
    OpRegistry::global().register_op(std::move(entry));
  }
};

}  // namespace fcc::fw

// Self-registering operator registry (the "new PyTorch operator" table).
//
// Each fused operator's translation unit registers a factory at static
// initialization via OpRegistrar, so adding an operator touches zero
// framework files: the registry maps an op name to a factory that builds
// either the fused or the baseline variant as a fused::FusedOp, and
// Session::run() dispatches any OpSpec through it — mirroring how a graph
// transformation pass swaps `embedding` + `all_to_all` nodes for
// `fcc::embedding_a2a` and the compiled graph then invokes it by name.
#pragma once

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fused/op_runtime.h"

namespace fcc::fw {

enum class Backend {
  kFused,     // GPU-initiated intra-kernel communication
  kBaseline,  // bulk-synchronous kernels + ccl collectives
};

/// Type-erased operator invocation: the registry key plus the operator's
/// config (by value) and optional data payload (typed pointer, so a
/// mismatched data type throws instead of being silent UB). Build with
/// make_spec().
struct OpSpec {
  std::string name;
  std::any config;
  std::any data;  // empty, or a Data* for the operator's data struct
};

template <typename Config>
OpSpec make_spec(std::string name, Config config) {
  OpSpec spec;
  spec.name = std::move(name);
  spec.config = std::move(config);
  return spec;
}

template <typename Config, typename Data>
OpSpec make_spec(std::string name, Config config, Data* data) {
  OpSpec spec = make_spec(std::move(name), std::move(config));
  if (data != nullptr) spec.data = data;
  return spec;
}

/// Typed accessors for factories unpacking an OpSpec. Throw
/// std::bad_any_cast if the spec carries the wrong config/data type.
template <typename Config>
const Config& spec_config(const OpSpec& spec) {
  return std::any_cast<const Config&>(spec.config);
}

template <typename Data>
Data* spec_data(const OpSpec& spec) {
  if (!spec.data.has_value()) return nullptr;
  return std::any_cast<Data*>(spec.data);
}

/// PEs every smoke spec targets (one scale-up node, Table I).
inline constexpr int kSmokePes = 4;

inline gpu::Machine::Config smoke_machine_config() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = kSmokePes;
  return c;
}

/// Operator-registry entry: name, the op pattern a graph pass would
/// rewrite, and the factory building either backend variant.
struct OpEntry {
  using Factory = std::function<std::unique_ptr<fused::FusedOp>(
      shmem::World&, const OpSpec&, Backend)>;

  std::string name;
  std::string replaces;  // the op pattern a graph pass would rewrite
  Factory make = nullptr;
  /// Optional: a small timing-only spec runnable on smoke_machine_config(),
  /// for registry-wide sweeps (fused-vs-baseline smoke tests, CI).
  std::function<OpSpec()> smoke_spec = nullptr;
};

class OpRegistry {
 public:
  /// The process-wide registry that operator TUs register into.
  static OpRegistry& global();

  void register_op(OpEntry entry);
  bool contains(const std::string& name) const;
  const OpEntry& at(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Builds the op named by `spec` for `backend` and drives it to
  /// completion on `world`'s engine.
  fused::OperatorResult run(const OpSpec& spec, shmem::World& world,
                            Backend backend) const;

 private:
  std::map<std::string, OpEntry> ops_;
};

/// `static const OpRegistrar r{{...}};` in an operator's TU registers it
/// into the global registry before main().
struct OpRegistrar {
  explicit OpRegistrar(OpEntry entry) {
    OpRegistry::global().register_op(std::move(entry));
  }
};

}  // namespace fcc::fw

#include "framework/fingerprint.h"

#include <sstream>
#include <vector>

#include "hw/topology.h"

namespace fcc::fw {

GraphFingerprint graph_fingerprint(const Graph& graph,
                                   const OpRegistry& registry) {
  GraphFingerprint fp;
  std::ostringstream os;
  // Renumber nodes over live ones so a graph that arrives pre-lowered and
  // the same graph lowered in place fingerprint identically.
  std::vector<int> live_index(static_cast<std::size_t>(graph.num_nodes()), -1);
  int next = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    if (!graph.node(i).fused_away) live_index[static_cast<std::size_t>(i)] = next++;
  }
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const GraphNode& node = graph.node(i);
    if (node.fused_away) continue;
    os << node.spec.name << '[';
    if (registry.contains(node.spec.name)) {
      const OpEntry& entry = registry.at(node.spec.name);
      if (entry.shape_key != nullptr) {
        try {
          os << entry.shape_key(node.spec);
        } catch (const SpecTypeError& e) {
          // A mis-typed config fails here, before any pass runs — attach
          // the node's identity so the caller can report which one.
          throw SpecTypeError(std::string("fingerprinting graph node '") +
                              node.label + "': " + e.what());
        }
      } else {
        os << '?';
        fp.exact = false;
      }
    } else {
      // Unlowered pattern nodes ("aten::mv") carry their config on the
      // producer and have no registry entry; shape is not recoverable.
      os << '?';
      fp.exact = false;
    }
    os << "](";
    bool first = true;
    for (int d : node.deps) {
      os << (first ? "" : ",") << live_index[static_cast<std::size_t>(d)];
      first = false;
    }
    os << ");";
  }
  fp.key = os.str();
  return fp;
}

std::string topology_fingerprint(const gpu::Machine::Config& config) {
  std::ostringstream os;
  os << "nodes=" << config.num_nodes << ";gpn=" << config.gpus_per_node
     << ";gpu={cus=" << config.gpu.num_cus
     << ",wgs=" << config.gpu.max_wgs_per_cu
     << ",vgprs=" << config.gpu.vgprs_per_cu
     << ",hbm=" << config.gpu.hbm_bytes_per_ns
     << ",flops=" << config.gpu.fp32_flops_per_ns
     << ",sat=" << config.gpu.alu_saturation_wgs
     << ",launch=" << config.gpu.kernel_launch_ns
     << ",sync=" << config.gpu.stream_sync_ns << "}"
     << ";fabric={bw=" << config.fabric.port_bytes_per_ns
     << ",lat=" << config.fabric.latency_ns
     << ",issue=" << config.fabric.store_issue_overhead_ns << "}"
     << ";ib={bw=" << config.ib.wire_bytes_per_ns
     << ",lat=" << config.ib.wire_latency_ns
     << ",msg=" << config.ib.per_msg_proc_ns
     << ",post=" << config.ib.gpu_post_overhead_ns << "}";
  os << ";topo=";
  switch (config.topology.kind) {
    case hw::TopologySpec::Kind::kFullyConnected:
      os << "fully_connected";
      break;
    case hw::TopologySpec::Kind::kSwitchedNode:
      os << "switched{port=" << config.topology.switched.port_bytes_per_ns
         << ",hop=" << config.topology.switched.hop_latency_ns
         << ",trunk=" << config.topology.switched.trunk_bytes_per_ns << "}";
      break;
    case hw::TopologySpec::Kind::kMultiRail:
      os << "multi_rail{rails=" << config.topology.nic_rails << "}";
      break;
    case hw::TopologySpec::Kind::kTorus2D:
      os << "torus{x=" << config.topology.torus.dim_x
         << ",y=" << config.topology.torus.dim_y
         << ",bw=" << config.topology.torus.link_bytes_per_ns
         << ",lat=" << config.topology.torus.link_latency_ns << "}";
      break;
  }
  return os.str();
}

}  // namespace fcc::fw

// Multi-op dependency graphs for the framework layer (CoCoNet/GC3-style
// "express the whole program, let the scheduler overlap it").
//
// A Graph is a DAG of op nodes over named symmetric tensors. Tensors are
// pure dependency tokens — operators keep carrying their real storage via
// OpSpec data pointers — and edges derive from dataflow: a node depends on
// the last writer of every tensor it reads (RAW) and, when it writes a
// tensor, on that tensor's previous writer and readers (WAW/WAR), so two
// ops touching disjoint tensors are free to overlap. add_dep() adds the
// control edges dataflow cannot express.
//
// Nodes name ops two ways:
//   * registry ops ("fcc::gemv_allreduce"): dispatchable directly, or
//   * unfused pattern nodes ("aten::embedding_bag" + "c10d::all_to_all"):
//     placeholders that rewrite_fused() collapses into the registered
//     fused op whose OpEntry `pattern` matches — the graph-pass analog of
//     swapping framework graph nodes for the fused operator.
//
// Session::run(Graph) applies the rewrite (via the plan-layer pass
// pipeline) and hands the lowered graph to GraphExecutor, which schedules
// every ready node concurrently on the sim engine. Session::run_planned()
// additionally scores every rewrite and backend choice against the plan
// layer's cost model (src/plan/) before executing.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "framework/op_registry.h"

namespace fcc::fw {

struct TensorId {
  int v = -1;
};

struct NodeId {
  int v = -1;
};

/// One op node: the OpSpec to dispatch plus its dataflow and dependencies.
/// `deps` always point at lower-indexed nodes, so every Graph is a DAG by
/// construction.
struct GraphNode {
  OpSpec spec;
  std::vector<int> inputs;   // tensor ids read
  std::vector<int> outputs;  // tensor ids written
  std::vector<int> deps;     // node ids this node waits on
  std::string label;         // display name (defaults to the op name)
  /// Set by rewrite_fused: this node was collapsed into `merged_into` and
  /// must not be scheduled.
  bool fused_away = false;
  /// On a rewritten node: the pattern it was fused from (doc/telemetry).
  std::string fused_from;
};

class Graph {
 public:
  /// Declares a named symmetric tensor and returns its handle. Names are
  /// labels for results/errors; they need not be unique.
  TensorId tensor(std::string name);

  /// Adds a node dispatching `spec` (see make_spec), reading `inputs` and
  /// writing `outputs`. Dependency edges are derived from tensor dataflow
  /// at add time.
  NodeId add(OpSpec spec, const std::vector<TensorId>& inputs,
             const std::vector<TensorId>& outputs, std::string label = "");

  /// Convenience: build the OpSpec inline from an op name and config.
  template <typename Config>
  NodeId add(std::string op, Config config,
             const std::vector<TensorId>& inputs,
             const std::vector<TensorId>& outputs, std::string label = "") {
    return add(make_spec(std::move(op), std::move(config)), inputs, outputs,
               std::move(label));
  }

  template <typename Config, typename Data>
  NodeId add(std::string op, Config config, Data* data,
             const std::vector<TensorId>& inputs,
             const std::vector<TensorId>& outputs, std::string label = "") {
    return add(make_spec(std::move(op), std::move(config), data), inputs,
               outputs, std::move(label));
  }

  /// Config-free pattern node (e.g. a bare "c10d::all_to_all" collective
  /// whose parameters live on its producer).
  NodeId add(std::string op, const std::vector<TensorId>& inputs,
             const std::vector<TensorId>& outputs, std::string label = "");

  /// Explicit control edge: `node` runs after `before`. `before` must be an
  /// earlier node (the DAG invariant).
  void add_dep(NodeId node, NodeId before);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Mutable spec access for planning passes (config-level mutations that
  /// keep the node's dataflow intact, e.g. collective-algorithm choice).
  OpSpec& mutable_spec(int id) { return mutable_node(id).spec; }
  /// Nodes still scheduled after rewriting (fused-away nodes excluded).
  int num_live_nodes() const;
  const GraphNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const std::string& tensor_name(int id) const {
    return tensors_.at(static_cast<std::size_t>(id)).name;
  }
  int num_tensors() const { return static_cast<int>(tensors_.size()); }

 private:
  friend int rewrite_fused(Graph& graph, const OpRegistry& registry,
                           std::vector<struct FusedRewrite>* out);
  friend void apply_fused_rewrites(
      Graph& graph, const std::vector<struct FusedRewrite>& rewrites);

  struct TensorState {
    std::string name;
    int last_writer = -1;           // node id, -1 = externally produced
    std::vector<int> readers;       // nodes that read since the last write
  };

  GraphNode& mutable_node(int id) {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  std::vector<GraphNode> nodes_;
  std::vector<TensorState> tensors_;
};

/// One applied (or replayable) pattern collapse: original node ids of the
/// producer/consumer pair and the fused registry op they merged into.
struct FusedRewrite {
  int producer = -1;
  int consumer = -1;
  std::string fused_op;
};

/// The fused-rewrite pass: collapses every producer→consumer pair whose op
/// names match a registered entry's unfused_pattern() into one node
/// dispatching the fused op. The pair must be connected by dataflow and the
/// producer's outputs consumed by the consumer alone (no other reader or
/// control-dependent node), so the fusion cannot reorder anyone else's
/// inputs. The merged node keeps the producer's config/data (pattern
/// convention: the compute node carries the operator parameters; the
/// collective node is parameter-free), reads the producer's inputs, writes
/// the consumer's outputs, and inherits both nodes' remaining deps.
/// Returns the number of pairs rewritten; when `out` is non-null, each
/// collapse is appended to it so a plan cache can replay the lowering
/// without re-running pattern matching.
int rewrite_fused(Graph& graph, const OpRegistry& registry,
                  std::vector<FusedRewrite>* out);
int rewrite_fused(Graph& graph,
                  const OpRegistry& registry = OpRegistry::global());

/// Mechanically replays recorded collapses on a graph with the same shape
/// (same node ids/ops) the rewrites were recorded on — the plan-cache warm
/// path. No pattern matching, no guards: the caller vouches for the shape
/// match (fingerprint-equal graphs).
void apply_fused_rewrites(Graph& graph,
                          const std::vector<FusedRewrite>& rewrites);

}  // namespace fcc::fw

// Framework integration layer (PyTorch-operator analog, Sec. III-D).
//
// A Session bundles the simulated platform (Machine + shmem World) behind
// the kind of API an ML framework exposes: symmetric-tensor allocation
// (`torch.tensor.to(symmetric_device)` analog) and the fused operators as
// named framework ops (`torch.embeddingAll2AllOp()` analog). The registry
// maps operator names to dispatch entries so a graph transformation pass
// can swap `embedding` + `all_to_all` nodes for `fused::embedding_a2a`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fused/embedding_a2a.h"
#include "fused/gemm_a2a.h"
#include "fused/gemv_allreduce.h"
#include "gpu/machine.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"

namespace fcc::fw {

enum class Backend {
  kFused,     // GPU-initiated intra-kernel communication
  kBaseline,  // bulk-synchronous kernels + ccl collectives
};

class Session {
 public:
  explicit Session(const gpu::Machine::Config& config)
      : machine_(config), world_(machine_) {}

  gpu::Machine& machine() { return machine_; }
  shmem::World& world() { return world_; }
  int num_pes() const { return machine_.num_pes(); }

  /// Allocates a float tensor in every PE's symmetric heap
  /// (roc_shmem_malloc + tensor.to(device) analog).
  std::unique_ptr<shmem::SymArray<float>> symmetric_empty(
      std::size_t elems, bool functional = true) {
    return std::make_unique<shmem::SymArray<float>>(machine_.num_pes(), elems,
                                                    functional);
  }

  // ---- fused operators exposed as framework ops ----

  fused::OperatorResult embedding_all_to_all(
      const fused::EmbeddingA2AConfig& cfg, fused::EmbeddingA2AData* data,
      Backend backend = Backend::kFused) {
    if (backend == Backend::kFused) {
      return fused::FusedEmbeddingAllToAll(world_, cfg, data)
          .run_to_completion();
    }
    return fused::BaselineEmbeddingAllToAll(world_, cfg, data)
        .run_to_completion();
  }

  fused::OperatorResult gemv_all_reduce(
      const fused::GemvAllReduceConfig& cfg, fused::GemvAllReduceData* data,
      Backend backend = Backend::kFused) {
    if (backend == Backend::kFused) {
      return fused::FusedGemvAllReduce(world_, cfg, data).run_to_completion();
    }
    return fused::BaselineGemvAllReduce(world_, cfg, data).run_to_completion();
  }

  fused::OperatorResult gemm_all_to_all(
      const fused::GemmA2AConfig& cfg, fused::GemmA2AData* data,
      Backend backend = Backend::kFused) {
    if (backend == Backend::kFused) {
      return fused::FusedGemmAllToAll(world_, cfg, data).run_to_completion();
    }
    return fused::BaselineGemmAllToAll(world_, cfg, data).run_to_completion();
  }

 private:
  gpu::Machine machine_;
  shmem::World world_;
};

/// Operator-registry entry: dispatches one named op on a session.
struct OpEntry {
  std::string name;
  std::string replaces;  // the op pattern a graph pass would rewrite
  std::function<fused::OperatorResult(Session&, Backend)> invoke;
};

/// Name -> operator registry (the "new PyTorch operator" table). Callers
/// register closures over their configs/data, then dispatch by name —
/// mirroring how a compiled graph invokes custom ops.
class OpRegistry {
 public:
  void register_op(OpEntry entry);
  bool contains(const std::string& name) const;
  const OpEntry& at(const std::string& name) const;
  std::vector<std::string> names() const;

  fused::OperatorResult run(const std::string& name, Session& session,
                            Backend backend) const;

 private:
  std::map<std::string, OpEntry> ops_;
};

}  // namespace fcc::fw

// Framework integration layer (PyTorch-operator analog, Sec. III-D).
//
// A Session bundles the simulated platform (Machine + shmem World) behind
// the kind of API an ML framework exposes: symmetric-tensor allocation
// (`torch.tensor.to(symmetric_device)` analog) and a single generic
// dispatch path, `run(OpSpec, Backend)`, over the self-registering
// OpRegistry. The session knows no concrete operator — each operator's TU
// registers its own factory, so adding one touches no framework file.
#pragma once

#include <memory>

#include "framework/graph.h"
#include "framework/graph_executor.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"
#include "plan/planner.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"

namespace fcc::fw {

class Session {
 public:
  explicit Session(const gpu::Machine::Config& config)
      : machine_(config), world_(machine_) {}

  gpu::Machine& machine() { return machine_; }
  shmem::World& world() { return world_; }
  int num_pes() const { return machine_.num_pes(); }

  /// Allocates a float tensor in every PE's symmetric heap
  /// (roc_shmem_malloc + tensor.to(device) analog).
  std::unique_ptr<shmem::SymArray<float>> symmetric_empty(
      std::size_t elems, bool functional = true) {
    return std::make_unique<shmem::SymArray<float>>(machine_.num_pes(), elems,
                                                    functional);
  }

  /// Dispatches any registered operator by name, e.g.
  ///   session.run(make_spec("fcc::gemv_allreduce", cfg, &data),
  ///               Backend::kFused);
  fused::OperatorResult run(const OpSpec& spec,
                            Backend backend = Backend::kFused,
                            const OpRegistry& registry = OpRegistry::global());

  /// Runs a whole multi-op program: routes `graph` through the planning
  /// pipeline's fuse-patterns pass (pattern nodes collapse into registered
  /// fused ops), then schedules every dependency-satisfied node
  /// concurrently via GraphExecutor, all on the requested backend.
  /// Independent nodes overlap; a pure chain times exactly like the
  /// equivalent sequence of blocking run() calls.
  GraphResult run(const Graph& graph, Backend backend = Backend::kFused,
                  const OpRegistry& registry = OpRegistry::global());

  /// A planned execution: the planner's per-node decisions plus the
  /// simulated result of carrying them out.
  struct PlannedRun {
    plan::Planned planned;
    GraphResult result;
  };

  /// Runs `graph` under the full planning pipeline: fuse on predicted win
  /// only, per-node backend choice, ccl algorithm steering — with an
  /// optional shared PlanCache (options.cache). `planned.report` explains
  /// every accept/reject.
  PlannedRun run_planned(const Graph& graph,
                         const plan::PlanOptions& options = {},
                         const OpRegistry& registry = OpRegistry::global());

 private:
  gpu::Machine machine_;
  shmem::World world_;
};

}  // namespace fcc::fw

// Canonical fingerprints for plan caching.
//
// A plan is reusable exactly when (a) the graph has the same shape — same
// live ops, same per-op problem sizes, same dependency structure — and
// (b) the machine it will run on is the same — same GPU/fabric/NIC specs
// and the same topology kind and parameters. Both are rendered as
// canonical *strings* (not hashes), so two distinct graphs can never
// collide into one cache entry; the plan cache keys on the concatenation.
//
// Per-op problem sizes come from the registry's `shape_key` hook (set by
// each operator's TU next to its factory). A graph containing a node whose
// entry has no shape_key still fingerprints — structure and op names are
// always included — but the result is marked inexact and the planner
// refuses to cache plans for it (two graphs differing only in that op's
// config would alias).
#pragma once

#include <string>

#include "framework/graph.h"
#include "framework/op_registry.h"
#include "gpu/machine.h"

namespace fcc::fw {

struct GraphFingerprint {
  /// Canonical shape key: live nodes in graph order, each as
  /// `op[shape_key](dep,dep,...)` with deps renumbered over live nodes.
  std::string key;
  /// False when any live node's registry entry lacks a shape_key (or the
  /// op is unregistered): the key no longer separates graphs that differ
  /// only in that node's config, so plans must not be cached under it.
  bool exact = true;
};

GraphFingerprint graph_fingerprint(
    const Graph& graph, const OpRegistry& registry = OpRegistry::global());

/// Canonical machine/topology key: node counts, GPU timing-relevant specs,
/// fabric/NIC bandwidths and latencies, and the topology kind with its
/// parameters. Sharding and trace collection are excluded — they change
/// how the simulation is driven, not what any plan should decide.
std::string topology_fingerprint(const gpu::Machine::Config& config);

}  // namespace fcc::fw

// Fused MoE dispatch (routed All-to-All-v, paper Fig. 4 "dispatch" path)
// and its bulk-synchronous baseline.
//
// Expert-parallel MoE with data-dependent traffic: each source GPU routes
// its local tokens to top-k experts (one expert per PE) via
// ops::moe_routing, then the producer GEMM projects the routed rows and
// ships them. Unlike fused::FusedGemmAllToAll — whose combine assumes the
// paper's equal-load split, one fixed-size chunk per peer — the dispatch
// traffic matrix is the per-(source, expert) counts of a DispatchPlan:
// skewed, irregular, possibly with empty segments.
//
// Fused path: per-source tile kernel authored in the Triton-analog DSL.
// The source's A panel is the routed rows gathered in plan order, each
// expert's segment padded up to a block_m multiple so every output tile has
// exactly one destination expert. As a tile finishes, its threads PUT the
// real rows straight into the owning expert's recv buffer (an
// all_to_all_v-style remote write at tile granularity — pad rows ride along
// as block-granularity waste) and bump the expert's per-source arrival
// counter; persistent WGs drain their task loop, then poll a distinct
// source's counter before exiting. Hot experts simply own more tiles.
//
// Baseline path: per-source plain GEMM over the unpadded routed rows, host
// sync, then ccl::Communicator::all_to_all_v with the plan's counts —
// communication starts only after the slowest source's GEMM.
//
// Both variants assume the counts matrix is already known everywhere (the
// metadata exchange every uneven All-to-All performs ahead of the payload;
// its cost is inside the collective's software overhead and, for the fused
// path, the routing step that precedes the launch).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "fused/op_runtime.h"
#include "gpu/schedule.h"
#include "ops/cost_model.h"
#include "ops/gemm.h"
#include "ops/moe_routing.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"
#include "triton/tile_lang.h"

namespace fcc::fused {

struct MoeDispatchConfig {
  int tokens_per_pe = 1024;  // local tokens per source GPU
  int d_model = 1024;        // GEMM k (token activation width)
  int d_out = 1024;          // GEMM n (projected row width shipped to experts)
  int top_k = 2;             // experts per token (paper evaluates top-2)
  int block_m = ops::kGemmBlockM;
  int block_n = ops::kGemmBlockN;
  double alu_efficiency = ops::kTritonGemmEfficiency;
  gpu::SchedulePolicy policy = gpu::SchedulePolicy::kCommAware;
  bool functional = false;
  int occupancy_slots_override = 0;
  /// Synthetic-routing knobs, used when no MoeDispatchData::plans are
  /// provided: expert 0 is drawn ~hot_expert_factor times more often than
  /// the rest (1.0 = balanced). Benches sweep this for the skew study.
  double hot_expert_factor = 1.0;
  std::uint64_t routing_seed = 1234;

  /// Routed rows per source (each token appears once per selected expert).
  std::int64_t assignments() const {
    return static_cast<std::int64_t>(tokens_per_pe) * top_k;
  }
};

/// Deterministic synthetic routing with a controllable hot expert: every
/// token picks `top_k` distinct experts, expert 0 weighted by
/// `hot_expert_factor`. Returns one DispatchPlan per source GPU (experts ==
/// `num_pes`, one per PE).
std::vector<ops::DispatchPlan> skewed_plans(const MoeDispatchConfig& cfg,
                                            int num_pes);

/// Row bookkeeping derived from the plans, shared by both variants and by
/// tests: padded send-side segments (fused tiles need block_m-aligned
/// expert boundaries) and exact recv-side offsets (source-major, matching
/// ccl::Communicator::all_to_all_v).
struct DispatchLayout {
  int num_pes = 0;
  int block_m = 0;
  std::vector<std::vector<std::int64_t>> counts;   // [src][e] real rows
  std::vector<std::vector<std::int64_t>> pad_off;  // [src][e] padded row off
  std::vector<std::int64_t> padded_rows;           // [src] padded GEMM m
  std::vector<std::vector<std::int64_t>> recv_off; // [e][src] recv row off
  std::vector<std::int64_t> recv_rows;             // [e] total rows received

  static DispatchLayout build(const std::vector<ops::DispatchPlan>& plans,
                              int block_m);

  /// Padded size of source `src`'s segment for expert `e`.
  std::int64_t padded(int src, int e) const;
  /// Expert owning padded row `row` of source `src`'s A panel.
  int owner_of_row(int src, std::int64_t row) const;
  /// Output tiles source `src` sends expert `e` (tiles_n = column tiles).
  std::int64_t expected_tiles(int src, int e, int tiles_n) const;
  /// Largest per-expert recv footprint in elements — the symmetric recv
  /// buffer size (SymArray allocates the same span on every PE).
  /// (The flattened all_to_all_v element counts come straight from
  /// ops::Router::a2av_counts — one home for that convention.)
  std::size_t recv_capacity(int d_out) const;
};

/// Functional-mode inputs/outputs; timing-only runs may pass nullptr data
/// (plans are then synthesized from the config's skew knobs).
struct MoeDispatchData {
  std::vector<ops::DispatchPlan> plans;    // [src]; may be router-built
  std::vector<std::vector<float>> tokens;  // [src][tokens_per_pe * d_model]
  std::vector<float> w;                    // shared [d_model * d_out]
  shmem::SymArray<float>* recv = nullptr;  // [pe][>= layout.recv_capacity]

  /// Synthetic skewed plans (per cfg knobs) plus random tokens/weights.
  /// `recv` must be sized >= DispatchLayout::recv_capacity for the plans —
  /// build plans first with skewed_plans() and pass the same cfg.
  static MoeDispatchData random(const MoeDispatchConfig& cfg, int num_pes,
                                shmem::SymArray<float>* recv,
                                std::uint64_t seed);
};

class FusedMoeDispatch final : public FusedOp {
 public:
  FusedMoeDispatch(shmem::World& world, MoeDispatchConfig cfg,
                   MoeDispatchData* data);

  const char* name() const override { return "fused_moe_dispatch"; }
  gpu::KernelResources resources() const override { return fused_resources(); }

  sim::Co run() override;

  const DispatchLayout& layout() const { return layout_; }

  static gpu::KernelResources fused_resources();

 private:
  sim::Co pe_driver(PeId pe);

  MoeDispatchConfig cfg_;
  MoeDispatchData* data_;
  int num_pes_;
  std::vector<ops::DispatchPlan> plans_;  // data's plans or synthesized
  DispatchLayout layout_;
  FlagSet arrivals_;  // [expert_pe][src] tile counters
  std::vector<std::unique_ptr<triton::TileKernel>> kernels_;  // [src]
  std::vector<std::vector<float>> a_;  // [src] gathered+padded A (functional)
};

class BaselineMoeDispatch final : public FusedOp {
 public:
  BaselineMoeDispatch(shmem::World& world, MoeDispatchConfig cfg,
                      MoeDispatchData* data);

  const char* name() const override { return "baseline_moe_dispatch"; }
  // Plain tile-DSL GEMM; the default footprint is the baseline kernel's.
  gpu::KernelResources resources() const override { return {}; }

  sim::Co run() override;

  const DispatchLayout& layout() const { return layout_; }

 private:
  sim::Co gemm_pe(PeId pe, ops::GemmShape shape);

  MoeDispatchConfig cfg_;
  MoeDispatchData* data_;
  int num_pes_;
  std::vector<ops::DispatchPlan> plans_;
  DispatchLayout layout_;
  ccl::Communicator comm_;
  std::vector<std::vector<float>> a_;  // [src] gathered unpadded A
  std::vector<std::vector<float>> c_;  // [src] staged GEMM output (plan order)
};

}  // namespace fcc::fused

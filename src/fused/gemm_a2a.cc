#include "fused/gemm_a2a.h"

#include <utility>

#include "framework/op_registry.h"
#include "gpu/stream.h"
#include "ops/gemv.h"  // random_vector
#include "sim/task.h"

namespace fcc::fused {

GemmA2AData GemmA2AData::random(const GemmA2AConfig& cfg, int num_pes,
                                shmem::SymArray<float>* out,
                                std::uint64_t seed) {
  GemmA2AData d;
  d.out = out;
  Rng rng(seed);
  const auto shape = cfg.shape(num_pes);
  for (int pe = 0; pe < num_pes; ++pe) {
    d.a.push_back(ops::random_vector(
        static_cast<std::size_t>(shape.m) * static_cast<std::size_t>(shape.k),
        rng));
    d.b.push_back(ops::random_vector(
        static_cast<std::size_t>(shape.k) * static_cast<std::size_t>(shape.n),
        rng));
  }
  return d;
}

// ---------------------------------------------------------------------------
// Fused operator (authored in the tile DSL)
// ---------------------------------------------------------------------------

gpu::KernelResources FusedGemmAllToAll::fused_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + gpu::kShmemCtxVgprsPerThread;
  return r;
}

FusedGemmAllToAll::FusedGemmAllToAll(shmem::World& world, GemmA2AConfig cfg,
                                     GemmA2AData* data)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      num_pes_(world.n_pes()),
      shape_(cfg.shape(world.n_pes())) {
  FCC_CHECK_MSG(cfg_.rows_per_origin % cfg_.block_m == 0,
                "block_m must divide rows_per_origin so a tile has exactly "
                "one destination");
  if (cfg_.functional) {
    FCC_CHECK(data_ != nullptr && data_->out != nullptr);
  }
  register_debug_flags("arrivals", arrivals_);
}

PeId FusedGemmAllToAll::origin_of_tile(int pid) const {
  return shape_.row_begin(pid) / cfg_.rows_per_origin;
}

sim::Co FusedGemmAllToAll::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& spec = machine.device(0).spec();

  arrivals_.reset(world_, static_cast<std::size_t>(num_pes_));

  // --- the fused kernel, authored with the DSL's comm extensions ---
  kernel_ = std::make_unique<triton::TileKernel>("moe_combine_fused", shape_,
                                                 cfg_.alu_efficiency);
  const int R = cfg_.rows_per_origin;
  const int n = cfg_.d_model;
  auto dest_of = [this](const triton::TileKernel::Ctx& ctx) {
    return origin_of_tile(ctx.pid);
  };
  auto write_tile = [this, R, n](const triton::TileKernel::Ctx& ctx,
                                 const std::vector<float>& tile) {
    // Destination chunk layout at origin o: [expert][local_row][col].
    const auto& sh = *ctx.shape;
    const PeId origin = sh.row_begin(ctx.pid) / R;
    auto out = data_->out->pe(origin);
    const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
    for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
      const int local_row = r - origin * R;
      for (int j = 0; j < cols; ++j) {
        out[(static_cast<std::size_t>(ctx.pe) * R +
             static_cast<std::size_t>(local_row)) *
                static_cast<std::size_t>(n) +
            static_cast<std::size_t>(sh.col_begin(ctx.pid) + j)] =
            tile[static_cast<std::size_t>(r - sh.row_begin(ctx.pid)) * cols +
                 static_cast<std::size_t>(j)];
      }
    }
  };
  kernel_->load_a().load_b().dot();
  if (cfg_.functional) {
    kernel_->put_c_remote(dest_of, write_tile);
  } else {
    kernel_->put_c_remote(dest_of, {});
  }
  kernel_->fence();
  kernel_->atomic_add_remote(
      arrivals_.get(), dest_of,
      [](const triton::TileKernel::Ctx& ctx) {
        return static_cast<std::size_t>(ctx.pe);
      });

  begin_run(num_pes_);

  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, num_pes_,
                         [this](PeId pe) { return pe_driver(pe); });
  co_await sim::delay(engine, spec.stream_sync_ns);
  finish_run();
}

sim::Co FusedGemmAllToAll::pe_driver(PeId pe) {
  auto& engine = world_.machine().engine_of(pe);
  // Expected tiles per source expert: my row block's tile count.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(cfg_.rows_per_origin / cfg_.block_m) *
      static_cast<std::uint64_t>(shape_.tiles_n());

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world_;
  lc.pe = pe;
  lc.policy = cfg_.policy;
  lc.occupancy_slots_override = cfg_.occupancy_slots_override;
  lc.functional = cfg_.functional;
  if (cfg_.functional) {
    lc.a = data_->a[static_cast<std::size_t>(pe)];
    lc.b = data_->b[static_cast<std::size_t>(pe)];
  }
  auto* arrivals = arrivals_.get();
  const int pes = num_pes_;
  // Distinct flag subsets, strided over the slots the launch actually
  // spawns (surplus slots retire without running their epilogue, so a grid
  // smaller than num_pes must not orphan a source's counter): slot s polls
  // sources s, s+active, ...
  lc.epilogue = [arrivals, pe, pes, expected](int slot,
                                              int active) -> sim::Co {
    for (int src = slot; src < pes; src += active) {
      co_await arrivals->wait_ge(pe, static_cast<std::size_t>(src), expected);
    }
  };

  co_await kernel_->launch(lc);
  result_.pe_end[static_cast<std::size_t>(pe)] = engine.now();
}

// ---------------------------------------------------------------------------
// Bulk-synchronous baseline
// ---------------------------------------------------------------------------

BaselineGemmAllToAll::BaselineGemmAllToAll(shmem::World& world,
                                           GemmA2AConfig cfg,
                                           GemmA2AData* data)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      comm_(world.machine(), all_pes(world.machine())) {
  if (cfg_.functional) {
    FCC_CHECK(data_ != nullptr && data_->out != nullptr);
  }
}

sim::Co BaselineGemmAllToAll::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const int pes = machine.num_pes();
  const auto& spec = machine.device(0).spec();
  const auto shape = cfg_.shape(pes);

  begin_run(pes);
  if (cfg_.functional) {
    c_.assign(static_cast<std::size_t>(pes),
              std::vector<float>(static_cast<std::size_t>(shape.m) *
                                     static_cast<std::size_t>(shape.n),
                                 0.0f));
  }

  // Compute phase: plain tile-DSL GEMM per PE (load, dot, local store),
  // spawned on each PE's home engine at the post-launch instant.
  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, pes,
                         [this](PeId pe) { return gemm_pe(pe); });
  co_await sim::delay(engine, spec.stream_sync_ns);

  // Collective phase: chunk d of PE e's C (rows [d*R, (d+1)*R)) goes to
  // origin d; recv is source-major, which is exactly the output layout.
  co_await sim::delay(engine, spec.kernel_launch_ns);
  const std::int64_t chunk_elems =
      static_cast<std::int64_t>(cfg_.rows_per_origin) * cfg_.d_model;
  ccl::FloatBufs send, recv;
  if (cfg_.functional) {
    for (auto& c : c_) send.per_rank.emplace_back(c);
    for (PeId pe = 0; pe < pes; ++pe) {
      recv.per_rank.push_back(data_->out->pe(pe));
    }
  }
  co_await comm_.all_to_all(chunk_elems, std::move(send), std::move(recv));
  co_await sim::delay(engine, spec.stream_sync_ns);

  finish_run_uniform();
}

sim::Co BaselineGemmAllToAll::gemm_pe(PeId pe) {
  const auto shape = cfg_.shape(world_.machine().num_pes());
  triton::TileKernel kernel("moe_gemm_baseline", shape, cfg_.alu_efficiency);
  auto write_local = [this, pe, shape](const triton::TileKernel::Ctx& ctx,
                                       const std::vector<float>& tile) {
    auto& c = c_[static_cast<std::size_t>(pe)];
    const auto& sh = *ctx.shape;
    const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
    for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
      for (int j = 0; j < cols; ++j) {
        c[static_cast<std::size_t>(r) * shape.n +
          static_cast<std::size_t>(sh.col_begin(ctx.pid) + j)] =
            tile[static_cast<std::size_t>(r - sh.row_begin(ctx.pid)) * cols +
                 static_cast<std::size_t>(j)];
      }
    }
  };
  kernel.load_a().load_b().dot();
  kernel.store_c_local(cfg_.functional
                           ? triton::TileKernel::WriteFn(write_local)
                           : triton::TileKernel::WriteFn{});

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world_;
  lc.pe = pe;
  lc.policy = gpu::SchedulePolicy::kOblivious;
  lc.functional = cfg_.functional;
  if (cfg_.functional) {
    lc.a = data_->a[static_cast<std::size_t>(pe)];
    lc.b = data_->b[static_cast<std::size_t>(pe)];
  }
  co_await kernel.launch(lc);
}

// ---------------------------------------------------------------------------
// Registry entry
// ---------------------------------------------------------------------------

namespace {

const fw::OpRegistrar gemm_a2a_registrar{{
    .name = "fcc::gemm_a2a",
    .replaces = "aten::mm + c10d::all_to_all (MoE combine)",
    .make =
        [](shmem::World& world, const fw::OpSpec& spec, fw::Backend backend)
        -> std::unique_ptr<FusedOp> {
      const auto& cfg = fw::spec_config<GemmA2AConfig>(spec);
      auto* data = fw::spec_data<GemmA2AData>(spec);
      if (backend == fw::Backend::kFused) {
        return std::make_unique<FusedGemmAllToAll>(world, cfg, data);
      }
      return std::make_unique<BaselineGemmAllToAll>(world, cfg, data);
    },
    .smoke_spec =
        [] {
          GemmA2AConfig cfg;
          cfg.rows_per_origin = 256;
          cfg.d_model = 256;
          cfg.d_ff = 512;
          cfg.functional = false;
          return fw::make_spec("fcc::gemm_a2a", cfg);
        },
    // Graph rewrite: expert GEMM (carries the GemmA2AConfig) feeding a bare
    // all_to_all collapses into this op (MoE combine direction).
    .pattern = {"aten::mm", "c10d::all_to_all"},
    .shape_key =
        [](const fw::OpSpec& spec) {
          const auto& cfg = fw::spec_config<GemmA2AConfig>(spec);
          return "r=" + std::to_string(cfg.rows_per_origin) +
                 ",dm=" + std::to_string(cfg.d_model) +
                 ",dff=" + std::to_string(cfg.d_ff);
        },
}};

}  // namespace

}  // namespace fcc::fused

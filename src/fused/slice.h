// Slice mapping for the fused embedding + All-to-All operator.
//
// One logical WG pools one output vector (table t, global sample b). A
// *slice* is the communication unit: `vectors_per_slice` consecutive samples
// of one table, all bound for the same destination PE (the PE that owns that
// slice of the global batch). The last WG to finish a slice ships it.
//
// Destination layout (what the paper calls "{local batch, numTables x
// embedding dim}"): on PE d, row = local sample, column block = global table
// id — so the All-to-All lands data pre-shuffled for the interaction op.
#pragma once

#include "common/check.h"
#include "common/types.h"

namespace fcc::fused {

struct SliceMap {
  int num_pes = 1;
  int tables_per_pe = 1;
  int global_batch = 1;
  int dim = 1;
  int vectors_per_slice = 32;

  void validate() const {
    FCC_CHECK(num_pes >= 1);
    FCC_CHECK(tables_per_pe >= 1);
    FCC_CHECK(dim >= 1);
    FCC_CHECK(global_batch % num_pes == 0);
    FCC_CHECK(vectors_per_slice >= 1);
    FCC_CHECK_MSG(local_batch() % vectors_per_slice == 0,
                  "slice size must divide the per-PE batch: local_batch="
                      << local_batch() << " vps=" << vectors_per_slice);
  }

  int local_batch() const { return global_batch / num_pes; }

  /// ---- logical WG indexing (per source PE) ----
  /// Sample-major, matching the paper's Fig. 6a numbering: WG (0,0,0)
  /// onwards walks the batch first, tables within a sample. Under the
  /// oblivious schedule this computes ALL locally-consumed output before
  /// any remote output on PE 0 — the pathology Fig. 14 measures.
  int num_logical_wgs() const { return tables_per_pe * global_batch; }
  int wg_table(int lw) const { return lw % tables_per_pe; }
  int wg_sample(int lw) const { return lw / tables_per_pe; }
  int wg_of(int table, int sample) const {
    return sample * tables_per_pe + table;
  }

  /// Destination PE of global sample b.
  PeId dest_of_sample(int b) const { return b / local_batch(); }
  bool wg_is_remote(PeId self, int lw) const {
    return dest_of_sample(wg_sample(lw)) != self;
  }

  /// ---- slice indexing (per source PE) ----
  int slices_per_dest_per_table() const {
    return local_batch() / vectors_per_slice;
  }
  int num_slices() const {
    return tables_per_pe * num_pes * slices_per_dest_per_table();
  }
  int wgs_per_slice() const { return vectors_per_slice; }

  /// Slice that logical WG `lw` contributes to.
  int slice_of_wg(int lw) const {
    const int t = wg_table(lw);
    const int b = wg_sample(lw);
    const int d = dest_of_sample(b);
    const int g = (b % local_batch()) / vectors_per_slice;
    return (t * num_pes + d) * slices_per_dest_per_table() + g;
  }
  /// Position of the WG's vector within its slice.
  int lane_in_slice(int lw) const {
    return (wg_sample(lw) % local_batch()) % vectors_per_slice;
  }

  int slice_table(int s) const {
    return s / (num_pes * slices_per_dest_per_table());
  }
  PeId slice_dest(int s) const {
    return (s / slices_per_dest_per_table()) % num_pes;
  }
  int slice_group(int s) const { return s % slices_per_dest_per_table(); }
  /// First global sample covered by slice s.
  int slice_sample_begin(int s) const {
    return slice_dest(s) * local_batch() + slice_group(s) * vectors_per_slice;
  }

  Bytes slice_bytes() const {
    return static_cast<Bytes>(vectors_per_slice) * dim * 4;
  }

  /// ---- destination buffer layout on PE d ----
  /// Output element (local row lb, global table gt, component c):
  std::size_t dest_offset(int lb, int global_table, int c) const {
    return (static_cast<std::size_t>(lb) * (tables_per_pe * num_pes) +
            static_cast<std::size_t>(global_table)) *
               static_cast<std::size_t>(dim) +
           static_cast<std::size_t>(c);
  }
  std::size_t dest_elems() const {
    return static_cast<std::size_t>(local_batch()) *
           static_cast<std::size_t>(tables_per_pe * num_pes) *
           static_cast<std::size_t>(dim);
  }
  int global_table(PeId src, int local_table) const {
    return src * tables_per_pe + local_table;
  }

  /// Number of slices on PE `self` whose destination is `self` / remote.
  int num_local_slices(PeId) const {
    return tables_per_pe * slices_per_dest_per_table();
  }
  int num_remote_slices(PeId self) const {
    return num_slices() - num_local_slices(self);
  }
};

}  // namespace fcc::fused

// Shared runtime for fused/baseline operator pairs.
//
// The paper's three operators — embedding+All-to-All (Sec. III-A),
// GEMV+AllReduce and GEMM+All-to-All (Sec. III-B) — are instances of one
// technique: GPU-initiated intra-kernel communication. This layer holds
// everything they (and their bulk-synchronous baselines) share so a new
// fused operator costs ~100 LoC instead of reimplementing the driver:
//
//   * FusedOp        — the operator interface plus the single engine
//                      spawn/drain driver (`run_to_completion()`).
//   * OccupancyPlan  — slot-count resolution from KernelResources, an
//                      explicit override, the HBM-contention knee (Fig. 13),
//                      and the task count.
//   * FlagSet        — shmem::FlagArray lifecycle plus the recurring
//                      "remote 8-byte PUT that sets a readiness flag"
//                      signalling idioms (sliceRdy / per-slot peer flags).
//   * ordered_tasks / strided_tasks — comm-aware vs oblivious task-loop
//                      ordering over gpu::SchedulePolicy.
//
// Per-PE completion times are stamped inside run_per_pe_at bodies (each
// body runs on its PE's home-shard engine), so the runtime works on serial
// and sharded machines alike.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "fused/result.h"
#include "gpu/machine.h"
#include "gpu/occupancy.h"
#include "gpu/persistent.h"
#include "gpu/schedule.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/co.h"
#include "sim/shard_join.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::fused {

/// Knobs for OccupancyPlan::resolve (own type so designated initializers
/// read at call sites).
struct OccupancyOptions {
  /// >0 forces the slot count (the occupancy ablation, Fig. 13).
  int override_slots = 0;
  /// >0 caps derived slots at `max_wg_slots * knee_frac`: memory-bound
  /// kernels degrade past the bandwidth knee, so the persistent grid is
  /// tuned to it. Ignored when override_slots wins.
  double knee_frac = 0.0;
  /// >0 caps the final slot count at the task count (applies to the
  /// override too — a grid larger than the work is never spawned).
  int max_tasks = 0;
};

/// Resolved persistent-grid size for one kernel launch. All operators use
/// the same precedence: explicit override > occupancy limit (optionally
/// capped at the HBM-contention knee), never more slots than tasks.
struct OccupancyPlan {
  int slots = 1;

  static OccupancyPlan resolve(const hw::GpuSpec& spec,
                               const gpu::KernelResources& resources,
                               const OccupancyOptions& opt = {});
};

/// Owning wrapper for a shmem::FlagArray with the per-run lifecycle
/// (allocate-on-run, drop at destruction) and the shared remote-signalling
/// idioms every fused operator repeats.
class FlagSet {
 public:
  /// Modeled size of one flag PUT on the wire.
  static constexpr Bytes kFlagBytes = 8;

  /// (Re)initializes flags[num_pes][n], all zero. A shape-matching array
  /// from a previous run of the same operator is reset in place
  /// (FlagArray::reset FCC_CHECKs no waiters survived the last drain — the
  /// churn guard), so back-to-back serving runs allocate nothing; a shape
  /// change reallocates. An operator's engine binding is fixed for life,
  /// so reuse never has to re-home the wakeup engines.
  void reset(sim::Engine& engine, int num_pes, std::size_t n) {
    if (flags_ != nullptr && flags_->num_pes() == num_pes &&
        flags_->size() == n) {
      flags_->reset();
      return;
    }
    flags_ = std::make_unique<shmem::FlagArray>(engine, num_pes, n);
  }

  /// Sharded-aware form: each PE's flags wake on its home-shard engine, so
  /// the set works on machines with num_shards > 1 (and is identical to the
  /// single-engine form on serial machines). Same in-place reuse as above
  /// (per-PE home engines never change for a given world).
  void reset(shmem::World& world, std::size_t n) {
    if (flags_ != nullptr && flags_->num_pes() == world.n_pes() &&
        flags_->size() == n) {
      flags_->reset();
      return;
    }
    std::vector<sim::Engine*> engines(
        static_cast<std::size_t>(world.n_pes()));
    for (PeId pe = 0; pe < world.n_pes(); ++pe) {
      engines[static_cast<std::size_t>(pe)] = &world.machine().engine_of(pe);
    }
    flags_ = std::make_unique<shmem::FlagArray>(std::move(engines), n);
  }
  void release() { flags_.reset(); }

  shmem::FlagArray* get() const { return flags_.get(); }
  shmem::FlagArray* operator->() const { return flags_.get(); }
  explicit operator bool() const { return flags_ != nullptr; }

  /// Remote PUT from `src` that sets flag[dst][idx] = 1 on delivery (the
  /// sliceRdy idiom: data PUTs order ahead on the FIFO channel).
  sim::Co signal(shmem::World& world, PeId src, PeId dst, std::size_t idx,
                 shmem::World::IssueKind kind = shmem::World::IssueKind::kStore);

  /// signal() to every PE except `src` at the same index (the per-slot peer
  /// flag idiom of the direct AllReduce).
  sim::Co signal_peers(shmem::World& world, PeId src, std::size_t idx);

  /// fence(src) first so all prior data PUTs order ahead of the flags.
  sim::Co fence_and_signal_peers(shmem::World& world, PeId src,
                                 std::size_t idx);

 private:
  std::unique_ptr<shmem::FlagArray> flags_;
};

/// Abstract fused/baseline operator. Concrete operators implement `run()`
/// (one full execution that fills `result()`, awaitable from a host driver
/// coroutine) and describe themselves via `name()` / `resources()`; the
/// spawn/drain driver and result bookkeeping live here, once.
class FusedOp {
 public:
  explicit FusedOp(shmem::World& world) : world_(world) {}
  virtual ~FusedOp() = default;
  FusedOp(const FusedOp&) = delete;
  FusedOp& operator=(const FusedOp&) = delete;

  /// Operator + backend-variant name, e.g. "fused_embedding_a2a".
  virtual const char* name() const = 0;

  /// Kernel resources of the operator's main kernel (occupancy studies).
  virtual gpu::KernelResources resources() const = 0;

  /// One full execution; fills `result()`.
  virtual sim::Co run() = 0;

  /// Spawns `run()` as a detached engine task and returns the completion
  /// event, set the instant the run finishes. The caller either drains the
  /// engine itself or `co_await`s the event from another process on the
  /// same engine — this is how fw::GraphExecutor runs several operators
  /// concurrently and collects per-op completions. One in-flight run per
  /// operator instance at a time; the event stays valid until the next
  /// spawn() or the operator's destruction.
  sim::OneShot& spawn();

  /// Spawns `run()` and drains the engine — the blocking single-op driver
  /// (Session::run, benches running one op at a time), now a wrapper over
  /// spawn(). Throws if the simulation deadlocks (tasks still suspended).
  OperatorResult run_to_completion();

  const OperatorResult& result() const { return result_; }
  shmem::World& world() { return world_; }

 protected:
  sim::Engine& engine() { return world_.machine().engine(); }

  /// Resets `result_`, stamps the start time, and zeroes `pe_end` for
  /// `num_pes` PEs. Call at the top of run().
  void begin_run(int num_pes);

  /// Stamps the end time (pe_end already recorded, e.g. by watchers).
  void finish_run();

  /// Stamps the end time and sets every pe_end to it (bulk-synchronous
  /// baselines: all PEs complete at the collective's sync).
  void finish_run_uniform();

  /// Spawns `body(pe)` on each PE's *home-shard* engine at absolute time
  /// `t_start` and suspends until all bodies complete, resuming at the
  /// exact max completion time — the per-PE spawn/join scaffold every
  /// operator's compute phase repeats, byte-identical serial vs sharded.
  /// All operators pass `engine().now() + kernel_launch_ns` (the physical
  /// floor for any kernel body), which a sharded machine requires to be
  /// >= its lookahead window (Machine::supports_fused_ops pre-checks the
  /// spec; holds for every stock fabric). Per-PE completion stamps
  /// (pe_end) belong inside `body` — it runs on engine_of(pe). Tracks
  /// which PE tasks have finished, so a deadlocked run can report exactly
  /// which PEs are stuck.
  sim::Co run_per_pe_at(TimeNs t_start, int num_pes,
                        std::function<sim::Co(PeId)> body);

  /// Registers a FlagSet for deadlock diagnostics: when run_to_completion
  /// detects a hang, the report lists this set's unsatisfied wait_ge's by
  /// `name`. Call once per set, typically in the constructor; the FlagSet
  /// must outlive the operator (it is a member of the derived class).
  void register_debug_flags(std::string name, const FlagSet& flags);

  shmem::World& world_;
  OperatorResult result_;

 public:
  /// Diagnostic appendix for the deadlock FCC_CHECK: per-PE stuck/done
  /// state from the last run_per_pe, plus every unsatisfied wait_ge on the
  /// registered FlagSets ("[pe3][5]=2<4": flag[3][5] is 2, waiter needs 4).
  std::string deadlock_report() const;

 private:
  /// Completion event of the in-flight (or last) spawn(); see spawn().
  std::unique_ptr<sim::OneShot> completion_;
  std::vector<std::pair<std::string, const FlagSet*>> debug_flags_;
  std::vector<std::uint8_t> pe_done_;  // last run_per_pe_at completion bits
  /// Cross-shard rendezvous of the in-flight run_per_pe_at (one-shot,
  /// rebuilt per call; degenerates to the serial join on 1-shard machines).
  std::unique_ptr<sim::ShardJoin> join_;
};

/// Every PE of the machine, in id order (ccl communicator construction).
std::vector<PeId> all_pes(gpu::Machine& machine);

/// Comm-aware/oblivious ordering over the logical-WG range [0, n):
/// comm-aware runs remote-output producers first (stable within classes).
std::vector<int> ordered_tasks(int n, gpu::SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote);

/// Same policy applied to an explicit task list (per-slot static
/// assignment: the caller already picked which tasks are its own).
std::vector<int> ordered_tasks(std::vector<int> tasks,
                               gpu::SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote);

/// Tasks statically assigned to one slot: first, first+stride, ... < total.
std::vector<int> strided_tasks(int first, int total, int stride);

}  // namespace fcc::fused

// Fused GEMM + All-to-All (MoE expert combine, Sec. III-B last paragraph)
// and its bulk-synchronous baseline.
//
// Expert-parallel MoE: each PE hosts one expert. After dispatch, expert e
// holds `rows_per_origin` activation rows from every origin GPU (grouped by
// origin). The expert's second FFN GEMM produces C (m x d_model) whose row
// block o belongs to origin o — the combine All-to-All ships each block
// home. The fused kernel is authored in the Triton-analog tile DSL: as soon
// as a C tile finishes, its threads store it into the origin's output
// buffer (zero-copy, no reduction) and bump the origin's arrival counter.
#pragma once

#include <memory>
#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "fused/op_runtime.h"
#include "gpu/schedule.h"
#include "ops/cost_model.h"
#include "ops/gemm.h"
#include "shmem/flags.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"
#include "triton/tile_lang.h"

namespace fcc::fused {

struct GemmA2AConfig {
  int rows_per_origin = 1024;  // R: rows this expert holds per origin GPU
  int d_model = 1024;          // GEMM n
  int d_ff = 4096;             // GEMM k (expert hidden dim)
  int block_m = ops::kGemmBlockM;
  int block_n = ops::kGemmBlockN;
  double alu_efficiency = ops::kTritonGemmEfficiency;
  gpu::SchedulePolicy policy = gpu::SchedulePolicy::kCommAware;
  bool functional = false;
  int occupancy_slots_override = 0;

  ops::GemmShape shape(int num_pes) const {
    ops::GemmShape s;
    s.m = num_pes * rows_per_origin;
    s.n = d_model;
    s.k = d_ff;
    s.block_m = block_m;
    s.block_n = block_n;
    return s;
  }
  /// Output elements per PE: R rows x d_model from each expert.
  std::size_t out_elems(int num_pes) const {
    return static_cast<std::size_t>(num_pes) *
           static_cast<std::size_t>(rows_per_origin) *
           static_cast<std::size_t>(d_model);
  }
};

struct GemmA2AData {
  std::vector<std::vector<float>> a;  // [pe][m * k] expert input activations
  std::vector<std::vector<float>> b;  // [pe][k * n] expert weights
  shmem::SymArray<float>* out = nullptr;  // [pe][N * R * d_model]

  static GemmA2AData random(const GemmA2AConfig& cfg, int num_pes,
                            shmem::SymArray<float>* out, std::uint64_t seed);
};

class FusedGemmAllToAll final : public FusedOp {
 public:
  FusedGemmAllToAll(shmem::World& world, GemmA2AConfig cfg,
                    GemmA2AData* data);

  const char* name() const override { return "fused_gemm_a2a"; }
  gpu::KernelResources resources() const override { return fused_resources(); }

  sim::Co run() override;

  PeId origin_of_tile(int pid) const;

  static gpu::KernelResources fused_resources();

 private:
  sim::Co pe_driver(PeId pe);

  GemmA2AConfig cfg_;
  GemmA2AData* data_;
  int num_pes_;
  ops::GemmShape shape_;
  FlagSet arrivals_;  // [pe][src] tile counters
  std::unique_ptr<triton::TileKernel> kernel_;
};

class BaselineGemmAllToAll final : public FusedOp {
 public:
  BaselineGemmAllToAll(shmem::World& world, GemmA2AConfig cfg,
                       GemmA2AData* data);

  const char* name() const override { return "baseline_gemm_a2a"; }
  // The plain tile-DSL GEMM needs no shmem context; the default footprint
  // (256 threads, 128 VGPRs) is exactly the baseline kernel's.
  gpu::KernelResources resources() const override { return {}; }

  sim::Co run() override;

 private:
  sim::Co gemm_pe(PeId pe);

  GemmA2AConfig cfg_;
  GemmA2AData* data_;
  ccl::Communicator comm_;
  std::vector<std::vector<float>> c_;  // [pe][m * n] staged GEMM output
};

}  // namespace fcc::fused

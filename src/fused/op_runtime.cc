#include "fused/op_runtime.h"

#include <algorithm>
#include <utility>

namespace fcc::fused {

// ---------------------------------------------------------------------------
// OccupancyPlan
// ---------------------------------------------------------------------------

OccupancyPlan OccupancyPlan::resolve(const hw::GpuSpec& spec,
                                     const gpu::KernelResources& resources,
                                     const OccupancyOptions& opt) {
  OccupancyPlan plan;
  if (opt.override_slots > 0) {
    plan.slots = opt.override_slots;
  } else {
    plan.slots = gpu::max_active_wgs(spec, resources);
    if (opt.knee_frac > 0.0) {
      const int knee =
          static_cast<int>(spec.max_wg_slots() * opt.knee_frac);
      plan.slots = std::min(plan.slots, knee);
    }
  }
  if (opt.max_tasks > 0) plan.slots = std::min(plan.slots, opt.max_tasks);
  FCC_CHECK_MSG(plan.slots >= 1,
                "occupancy plan resolved to " << plan.slots << " slots");
  return plan;
}

// ---------------------------------------------------------------------------
// FlagSet
// ---------------------------------------------------------------------------

sim::Co FlagSet::signal(shmem::World& world, PeId src, PeId dst,
                        std::size_t idx, shmem::World::IssueKind kind) {
  auto* flags = flags_.get();
  FCC_DCHECK(flags != nullptr);
  co_await world.put_nbi(src, dst, kFlagBytes, kind,
                         [flags, dst, idx] { flags->set(dst, idx, 1); });
}

sim::Co FlagSet::signal_peers(shmem::World& world, PeId src,
                              std::size_t idx) {
  const int pes = flags_->num_pes();
  for (PeId peer = 0; peer < pes; ++peer) {
    if (peer == src) continue;
    co_await signal(world, src, peer, idx);
  }
}

sim::Co FlagSet::fence_and_signal_peers(shmem::World& world, PeId src,
                                        std::size_t idx) {
  co_await world.fence(src);
  co_await signal_peers(world, src, idx);
}

// ---------------------------------------------------------------------------
// FusedOp driver
// ---------------------------------------------------------------------------

void FusedOp::begin_run(int num_pes) {
  result_ = OperatorResult{};
  result_.start = engine().now();
  result_.pe_end.assign(static_cast<std::size_t>(num_pes), 0);
}

void FusedOp::finish_run() { result_.end = engine().now(); }

void FusedOp::finish_run_uniform() {
  result_.end = engine().now();
  std::fill(result_.pe_end.begin(), result_.pe_end.end(), result_.end);
}

namespace {

/// One per-PE body wrapper, spawned on the PE's home-shard engine: runs the
/// body, marks the PE done, and arrives on the cross-shard join with its
/// local completion time.
sim::Task pe_task(sim::Engine& engine, std::function<sim::Co(PeId)> body,
                  PeId pe, std::vector<std::uint8_t>& pe_done,
                  sim::ShardJoin& join, int shard) {
  co_await body(pe);
  pe_done[static_cast<std::size_t>(pe)] = 1;
  join.arrive(shard, engine.now());
}

}  // namespace

sim::Co FusedOp::run_per_pe_at(TimeNs t_start, int num_pes,
                               std::function<sim::Co(PeId)> body) {
  auto& machine = world_.machine();
  FCC_CHECK_MSG(
      !machine.is_sharded() ||
          t_start >= engine().now() + machine.lookahead(),
      name() << ": per-PE spawn at t=" << t_start
             << " falls inside the current lookahead window (now "
             << engine().now() << ", lookahead " << machine.lookahead()
             << "); the GPU's kernel_launch_ns must cover the machine's "
                "lookahead to run fused operators sharded "
                "(Machine::supports_fused_ops)");
  pe_done_.assign(static_cast<std::size_t>(num_pes), 0);
  // Home shard 0: every driver coroutine runs on engine() (see spawn()).
  join_ = std::make_unique<sim::ShardJoin>(machine.sharded(), /*home=*/0,
                                           num_pes);
  for (PeId pe = 0; pe < num_pes; ++pe) {
    const int shard = machine.shard_of(pe);
    sim::Engine& home = machine.engine_of(pe);
    auto spawn = [this, &home, body, pe, shard] {
      pe_task(home, body, pe, pe_done_, *join_, shard);
    };
    if (shard == 0) {
      // The driver's own shard: scheduled directly, preserving the serial
      // engine's (time, seq) order — bodies fire in PE order at t_start.
      home.schedule_at(t_start, std::move(spawn));
    } else {
      // Cross-shard: through the mailbox; injected at the next barrier in
      // post order, so same-shard bodies still fire in PE order.
      machine.sharded().post(0, shard, t_start, std::move(spawn));
    }
  }
  co_await join_->wait();
}

void FusedOp::register_debug_flags(std::string name, const FlagSet& flags) {
  debug_flags_.emplace_back(std::move(name), &flags);
}

std::string FusedOp::deadlock_report() const {
  constexpr std::size_t kMaxListed = 8;
  std::string out;
  std::size_t stuck = 0;
  for (std::uint8_t d : pe_done_) stuck += d == 0 ? 1 : 0;
  if (stuck > 0) {
    out += "\n  stuck PE tasks (" + std::to_string(stuck) + "/" +
           std::to_string(pe_done_.size()) + "):";
    std::size_t listed = 0;
    for (std::size_t pe = 0; pe < pe_done_.size() && listed < kMaxListed;
         ++pe) {
      if (pe_done_[pe] != 0) continue;
      out += " pe" + std::to_string(pe);
      ++listed;
    }
    if (stuck > listed) {
      out += " +" + std::to_string(stuck - listed) + " more";
    }
  }
  for (const auto& [flag_name, set] : debug_flags_) {
    if (set == nullptr || !*set) continue;
    const auto waits = set->get()->pending_waits();
    if (waits.empty()) continue;
    out += "\n  unsatisfied waits on '" + flag_name + "' (" +
           std::to_string(waits.size()) + "):";
    for (std::size_t i = 0; i < waits.size() && i < kMaxListed; ++i) {
      const auto& w = waits[i];
      out += " [pe" + std::to_string(w.pe) + "][" + std::to_string(w.index) +
             "]=" + std::to_string(w.value) + "<" +
             std::to_string(w.threshold);
    }
    if (waits.size() > kMaxListed) {
      out += " +" + std::to_string(waits.size() - kMaxListed) + " more";
    }
  }
  if (out.empty()) {
    out = "\n  (no stuck-PE or registered-flag diagnostics available)";
  }
  return out;
}

sim::OneShot& FusedOp::spawn() {
  FCC_CHECK_MSG(completion_ == nullptr || completion_->is_set(),
                name() << " spawned while a previous run is in flight");
  completion_ = std::make_unique<sim::OneShot>(engine());
  struct Driver {
    static sim::Task go(sim::Engine&, FusedOp& op, sim::OneShot& done) {
      co_await op.run();
      done.set();
    }
  };
  Driver::go(engine(), *this, *completion_);
  return *completion_;
}

OperatorResult FusedOp::run_to_completion() {
  auto& machine = world_.machine();
  sim::OneShot& done = spawn();
  machine.run_all();
  const int live = machine.sharded().live_tasks();
  FCC_CHECK_MSG(done.is_set() && live == 0,
                name() << " deadlocked: " << live << " tasks suspended"
                       << deadlock_report());
  return result_;
}

// ---------------------------------------------------------------------------
// Free helpers
// ---------------------------------------------------------------------------

std::vector<PeId> all_pes(gpu::Machine& machine) {
  std::vector<PeId> v;
  v.reserve(static_cast<std::size_t>(machine.num_pes()));
  for (PeId p = 0; p < machine.num_pes(); ++p) v.push_back(p);
  return v;
}

std::vector<int> ordered_tasks(int n, gpu::SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote) {
  return gpu::make_schedule(n, policy, is_remote);
}

std::vector<int> ordered_tasks(std::vector<int> tasks,
                               gpu::SchedulePolicy policy,
                               const std::function<bool(int)>& is_remote) {
  if (policy == gpu::SchedulePolicy::kCommAware) {
    std::stable_partition(tasks.begin(), tasks.end(), is_remote);
  }
  return tasks;
}

std::vector<int> strided_tasks(int first, int total, int stride) {
  FCC_CHECK(stride >= 1);
  std::vector<int> v;
  for (int t = first; t < total; t += stride) v.push_back(t);
  return v;
}

}  // namespace fcc::fused

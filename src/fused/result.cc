#include "fused/result.h"

#include <algorithm>

namespace fcc::fused {

double OperatorResult::skew() const {
  if (pe_end.empty() || duration() == 0) return 0.0;
  const TimeNs hi = *std::max_element(pe_end.begin(), pe_end.end());
  const TimeNs lo = *std::min_element(pe_end.begin(), pe_end.end());
  if (hi <= start) return 0.0;
  return static_cast<double>(hi - lo) / static_cast<double>(hi - start);
}

}  // namespace fcc::fused

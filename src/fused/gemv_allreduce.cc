#include "fused/gemv_allreduce.h"

#include <algorithm>
#include <utility>

#include "framework/op_registry.h"
#include "gpu/persistent.h"
#include "gpu/stream.h"
#include "sim/task.h"

namespace fcc::fused {

GemvAllReduceData GemvAllReduceData::random(const GemvAllReduceConfig& cfg,
                                            int num_pes,
                                            shmem::SymArray<float>* y,
                                            std::uint64_t seed) {
  GemvAllReduceData d;
  d.y = y;
  Rng rng(seed);
  const int kl = cfg.k_local(num_pes);
  for (int pe = 0; pe < num_pes; ++pe) {
    d.w.push_back(ops::random_vector(
        static_cast<std::size_t>(cfg.m) * static_cast<std::size_t>(kl), rng));
    d.x.push_back(ops::random_vector(static_cast<std::size_t>(kl), rng));
  }
  return d;
}

// ---------------------------------------------------------------------------
// Fused operator
// ---------------------------------------------------------------------------

gpu::KernelResources FusedGemvAllReduce::fused_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + gpu::kShmemCtxVgprsPerThread;
  return r;
}

FusedGemvAllReduce::FusedGemvAllReduce(shmem::World& world,
                                       GemvAllReduceConfig cfg,
                                       GemvAllReduceData* data)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      num_pes_(world.n_pes()),
      shape_(cfg.shape(world.n_pes())),
      num_tiles_(shape_.num_tiles()) {
  FCC_CHECK_MSG(num_tiles_ % num_pes_ == 0,
                "tiles (" << num_tiles_ << ") must divide evenly across PEs");
  if (cfg_.functional) {
    FCC_CHECK(data_ != nullptr && data_->y != nullptr);
  }
  register_debug_flags("arrive", arrive_flags_);
  register_debug_flags("bcast", bcast_flags_);
}

PeId FusedGemvAllReduce::owner_of_tile(int tile) const {
  return tile / (num_tiles_ / num_pes_);
}

std::size_t FusedGemvAllReduce::flag_index(PeId src, int slot) const {
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(active_slots_) +
         static_cast<std::size_t>(slot);
}

sim::Co FusedGemvAllReduce::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& spec = machine.device(0).spec();

  active_slots_ =
      OccupancyPlan::resolve(spec, fused_resources(),
                             {.override_slots = cfg_.occupancy_slots_override,
                              .max_tasks = num_tiles_})
          .slots;

  const std::size_t flags_per_pe = static_cast<std::size_t>(num_pes_) *
                                   static_cast<std::size_t>(active_slots_);
  arrive_flags_.reset(world_, flags_per_pe);
  bcast_flags_.reset(world_, flags_per_pe);
  if (cfg_.functional) {
    local_partial_.assign(static_cast<std::size_t>(num_pes_),
                          std::vector<float>(static_cast<std::size_t>(shape_.m),
                                             0.0f));
    temp_.assign(static_cast<std::size_t>(num_pes_),
                 std::vector<std::vector<float>>(
                     static_cast<std::size_t>(num_pes_),
                     std::vector<float>(static_cast<std::size_t>(shape_.m),
                                        0.0f)));
  }
  pe_done_.clear();
  for (int pe = 0; pe < num_pes_; ++pe) {
    // Each PE's slot join lives on that PE's home-shard engine, so slot
    // arrivals and the waiter's wakeup stay shard-local.
    pe_done_.push_back(std::make_unique<sim::JoinCounter>(
        machine.engine_of(pe), active_slots_));
  }
  begin_run(num_pes_);

  // Slot tasks spawn on each PE's home engine at the post-launch instant;
  // the driver resumes at the exact max PE completion time.
  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, num_pes_,
                         [this](PeId pe) { return pe_body(pe); });
  co_await sim::delay(engine, spec.stream_sync_ns);
  finish_run();
}

sim::Co FusedGemvAllReduce::pe_body(PeId pe) {
  sim::Engine& engine = world_.machine().engine_of(pe);
  for (int s = 0; s < active_slots_; ++s) {
    slot_proc(engine, pe, s);
  }
  co_await pe_done_[static_cast<std::size_t>(pe)]->wait();
  result_.pe_end[static_cast<std::size_t>(pe)] = engine.now();
}

sim::Task FusedGemvAllReduce::slot_proc(sim::Engine& /*engine*/, PeId pe,
                                        int slot) {
  // Task list: tiles with tile % slots == slot, comm-aware ordered (tiles
  // this GPU does NOT own first, so their stores overlap local compute).
  const std::vector<int> mine = ordered_tasks(
      strided_tasks(slot, num_tiles_, active_slots_), cfg_.policy,
      [this, pe](int t) { return owner_of_tile(t) != pe; });

  for (int tile : mine) {
    co_await compute_tile(pe, slot, tile);
  }

  // Arrival flags: data stores are ordered ahead of these by channel FIFO.
  co_await arrive_flags_.fence_and_signal_peers(world_, pe,
                                                flag_index(pe, slot));

  co_await reduce_and_broadcast(pe, slot);

  // Wait for the output rows owned by peers (their counterpart slots).
  for (PeId peer = 0; peer < num_pes_; ++peer) {
    if (peer == pe) continue;
    co_await bcast_flags_->wait_ge(pe, flag_index(peer, slot), 1);
  }
  pe_done_[static_cast<std::size_t>(pe)]->arrive();
}

sim::Co FusedGemvAllReduce::compute_tile(PeId pe, int slot, int tile) {
  auto& machine = world_.machine();
  auto& dev = machine.device(pe);
  const PeId owner = owner_of_tile(tile);
  const bool remote = owner != pe;

  const TimeNs t0 = machine.engine_of(pe).now();
  co_await dev.compute(ops::gemv_tile_cost(shape_.tile_rows, shape_.k,
                                           /*local_write=*/!remote,
                                           ops::kBaselineCurve));
  co_await dev.busy_wait(cfg_.bookkeeping_ns);

  std::vector<float> vals;
  if (cfg_.functional) {
    vals.resize(static_cast<std::size_t>(shape_.tile_rows));
    ops::gemv_tile(shape_, data_->w[static_cast<std::size_t>(pe)],
                   data_->x[static_cast<std::size_t>(pe)], tile, vals);
  }

  const int r0 = shape_.tile_begin(tile);
  const int r1 = shape_.tile_end(tile);
  if (!remote) {
    if (cfg_.functional) {
      auto& acc = local_partial_[static_cast<std::size_t>(pe)];
      for (int r = r0; r < r1; ++r) {
        acc[static_cast<std::size_t>(r)] = vals[static_cast<std::size_t>(r - r0)];
      }
    }
    co_return;
  }

  // Zero-copy store of the partial tile into the owner's reduction buffer.
  std::function<void()> deliver;
  if (cfg_.functional) {
    auto* temp = &temp_[static_cast<std::size_t>(owner)]
                       [static_cast<std::size_t>(pe)];
    deliver = [temp, r0, r1, v = std::move(vals)] {
      for (int r = r0; r < r1; ++r) {
        (*temp)[static_cast<std::size_t>(r)] = v[static_cast<std::size_t>(r - r0)];
      }
    };
  }
  co_await world_.put_nbi(pe, owner,
                          static_cast<Bytes>(r1 - r0) * 4,
                          shmem::World::IssueKind::kStore, std::move(deliver));
  if (machine.trace_of(pe).enabled()) {
    machine.trace_of(pe).add_instant({"put", "comm", pe, slot, t0});
  }
}

sim::Co FusedGemvAllReduce::reduce_and_broadcast(PeId pe, int slot) {
  auto& dev = world_.machine().device(pe);

  // Wait for counterpart slots on every peer to finish storing partials.
  for (PeId peer = 0; peer < num_pes_; ++peer) {
    if (peer == pe) continue;
    co_await arrive_flags_->wait_ge(pe, flag_index(peer, slot), 1);
  }

  // Owned tiles assigned to this slot.
  std::vector<int> owned;
  for (int t : strided_tasks(slot, num_tiles_, active_slots_)) {
    if (owner_of_tile(t) == pe) owned.push_back(t);
  }
  if (owned.empty()) {
    // Still must release peers waiting on our broadcast flag.
    co_await bcast_flags_.signal_peers(world_, pe, flag_index(pe, slot));
    co_return;
  }

  for (int tile : owned) {
    const int r0 = shape_.tile_begin(tile);
    const int r1 = shape_.tile_end(tile);
    const Bytes tile_bytes = static_cast<Bytes>(r1 - r0) * 4;

    // Reduce: read N partials, write the result.
    gpu::WorkCost reduce_cost;
    reduce_cost.hbm_bytes = tile_bytes * (num_pes_ + 1);
    reduce_cost.flops = static_cast<double>(r1 - r0) * num_pes_;
    reduce_cost.curve = ops::kBaselineCurve;
    co_await dev.compute(reduce_cost);

    std::vector<float> final_vals;
    if (cfg_.functional) {
      final_vals.resize(static_cast<std::size_t>(r1 - r0));
      const auto& acc = local_partial_[static_cast<std::size_t>(pe)];
      for (int r = r0; r < r1; ++r) {
        float sum = acc[static_cast<std::size_t>(r)];
        for (PeId peer = 0; peer < num_pes_; ++peer) {
          if (peer == pe) continue;
          sum += temp_[static_cast<std::size_t>(pe)]
                      [static_cast<std::size_t>(peer)]
                      [static_cast<std::size_t>(r)];
        }
        final_vals[static_cast<std::size_t>(r - r0)] = sum;
      }
      // Local output rows.
      auto y = data_->y->pe(pe);
      for (int r = r0; r < r1; ++r) {
        y[static_cast<std::size_t>(r)] = final_vals[static_cast<std::size_t>(r - r0)];
      }
    }

    // Zero-copy broadcast of the reduced tile to every peer's output.
    for (PeId peer = 0; peer < num_pes_; ++peer) {
      if (peer == pe) continue;
      std::function<void()> deliver;
      if (cfg_.functional) {
        auto* out = data_->y;
        deliver = [out, peer, r0, r1, v = final_vals] {
          auto y = out->pe(peer);
          for (int r = r0; r < r1; ++r) {
            y[static_cast<std::size_t>(r)] = v[static_cast<std::size_t>(r - r0)];
          }
        };
      }
      co_await world_.put_nbi(pe, peer, tile_bytes,
                              shmem::World::IssueKind::kStore,
                              std::move(deliver));
    }
  }

  // Broadcast flags after all final-tile stores (channel FIFO + fence).
  co_await bcast_flags_.fence_and_signal_peers(world_, pe,
                                               flag_index(pe, slot));
}

// ---------------------------------------------------------------------------
// Bulk-synchronous baseline
// ---------------------------------------------------------------------------

gpu::KernelResources BaselineGemvAllReduce::baseline_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128;
  return r;
}

BaselineGemvAllReduce::BaselineGemvAllReduce(shmem::World& world,
                                             GemvAllReduceConfig cfg,
                                             GemvAllReduceData* data,
                                             ccl::AllReduceAlgo algo)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      algo_(algo),
      comm_(world.machine(), all_pes(world.machine())) {
  if (cfg_.functional) {
    FCC_CHECK(data_ != nullptr && data_->y != nullptr);
  }
}

sim::Co BaselineGemvAllReduce::gemv_kernel(PeId pe) {
  auto& machine = world_.machine();
  const auto shape = cfg_.shape(machine.num_pes());
  gpu::KernelRun::Params p;
  p.name = "gemv_kernel";
  p.num_slots = OccupancyPlan::resolve(machine.device(pe).spec(),
                                       baseline_resources())
                    .slots;
  p.order.resize(static_cast<std::size_t>(shape.num_tiles()));
  for (int t = 0; t < shape.num_tiles(); ++t) {
    p.order[static_cast<std::size_t>(t)] = t;
  }
  p.body = [this, pe, shape](int, int tile) -> sim::Co {
    auto& dev = world_.machine().device(pe);
    co_await dev.compute(ops::gemv_tile_cost(shape.tile_rows, shape.k,
                                             /*local_write=*/true,
                                             ops::kBaselineCurve));
    if (cfg_.functional) {
      std::vector<float> vals(static_cast<std::size_t>(shape.tile_rows));
      ops::gemv_tile(shape, data_->w[static_cast<std::size_t>(pe)],
                     data_->x[static_cast<std::size_t>(pe)], tile, vals);
      auto& part = partial_[static_cast<std::size_t>(pe)];
      for (int r = shape.tile_begin(tile); r < shape.tile_end(tile); ++r) {
        part[static_cast<std::size_t>(r)] =
            vals[static_cast<std::size_t>(r - shape.tile_begin(tile))];
      }
    }
  };
  gpu::KernelRun kernel(machine.engine_of(pe), std::move(p));
  kernel.start();
  co_await kernel.wait();
}

sim::Co BaselineGemvAllReduce::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const int pes = machine.num_pes();
  const auto& spec = machine.device(0).spec();

  begin_run(pes);
  if (cfg_.functional) {
    partial_.assign(static_cast<std::size_t>(pes),
                    std::vector<float>(static_cast<std::size_t>(cfg_.m), 0.0f));
  }

  // Compute phase: every PE runs its GEMV kernel concurrently on its
  // home-shard engine, spawned at the post-launch instant (the per-PE
  // launch delay hoisted into the spawn time).
  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, pes,
                         [this](PeId pe) { return gemv_kernel(pe); });
  co_await sim::delay(engine, spec.stream_sync_ns);

  // Collective phase: RCCL-style AllReduce kernel.
  co_await sim::delay(engine, spec.kernel_launch_ns);
  ccl::FloatBufs bufs;
  if (cfg_.functional) {
    for (auto& p : partial_) bufs.per_rank.emplace_back(p);
  }
  co_await comm_.all_reduce(cfg_.m, std::move(bufs), algo_);
  co_await sim::delay(engine, spec.stream_sync_ns);

  if (cfg_.functional) {
    for (PeId pe = 0; pe < pes; ++pe) {
      auto y = data_->y->pe(pe);
      const auto& p = partial_[static_cast<std::size_t>(pe)];
      std::copy(p.begin(), p.end(), y.begin());
    }
  }

  finish_run_uniform();
}

// ---------------------------------------------------------------------------
// Registry entry
// ---------------------------------------------------------------------------

namespace {

const fw::OpRegistrar gemv_allreduce_registrar{{
    .name = "fcc::gemv_allreduce",
    .replaces = "aten::mv + c10d::all_reduce",
    .make =
        [](shmem::World& world, const fw::OpSpec& spec, fw::Backend backend)
        -> std::unique_ptr<FusedOp> {
      const auto& cfg = fw::spec_config<GemvAllReduceConfig>(spec);
      auto* data = fw::spec_data<GemvAllReduceData>(spec);
      if (backend == fw::Backend::kFused) {
        return std::make_unique<FusedGemvAllReduce>(world, cfg, data);
      }
      return std::make_unique<BaselineGemvAllReduce>(world, cfg, data,
                                                     cfg.allreduce_algo);
    },
    .smoke_spec =
        [] {
          GemvAllReduceConfig cfg;
          cfg.m = 2048;
          cfg.k_global = 2048;
          cfg.functional = false;
          return fw::make_spec("fcc::gemv_allreduce", cfg);
        },
    // Graph rewrite: row-parallel GEMV (carries the GemvAllReduceConfig)
    // feeding a bare all_reduce collapses into this op.
    .pattern = {"aten::mv", "c10d::all_reduce"},
    .shape_key =
        [](const fw::OpSpec& spec) {
          const auto& cfg = fw::spec_config<GemvAllReduceConfig>(spec);
          return "m=" + std::to_string(cfg.m) +
                 ",k=" + std::to_string(cfg.k_global) +
                 ",tile=" + std::to_string(cfg.tile_rows) +
                 ",ar=" + std::to_string(static_cast<int>(cfg.allreduce_algo));
        },
}};

}  // namespace

}  // namespace fcc::fused

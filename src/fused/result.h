// Shared result record for fused/baseline operator runs.
#pragma once

#include <vector>

#include "common/types.h"

namespace fcc::fused {

struct OperatorResult {
  TimeNs start = 0;
  TimeNs end = 0;
  std::vector<TimeNs> pe_end;  // per-PE completion (skew studies, Fig. 14)

  /// Field-wise equality (golden-trace tests compare whole results).
  bool operator==(const OperatorResult&) const = default;

  TimeNs duration() const { return end - start; }

  /// Relative completion spread across PEs: (latest - earliest) / span.
  double skew() const;
};

}  // namespace fcc::fused

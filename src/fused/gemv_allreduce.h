// Fused GEMV + AllReduce (the paper's Sec. III-B scale-up operator) and its
// bulk-synchronous baseline.
//
// Megatron-style row-parallel layer: GPU g holds W_g (m x k/N) and x_g
// (k/N); partial y_g = W_g x_g must be sum-reduced across GPUs. The fused
// kernel uses the two-phase direct AllReduce: tile i's owner is the GPU
// responsible for reducing it (contiguous 1/N ranges). Tiles are statically
// assigned to physical WG slots (tile % slots), so "counterpart" slots own
// identical tiles on every GPU — that is what lets each slot set just ONE
// ready flag per peer instead of per-tile synchronization.
//
// Per slot, on GPU g:
//   1. task loop (comm-aware: peer-owned tiles first): compute tile; if
//      owned remotely, zero-copy store it into the owner's temp buffer;
//      else keep the partial locally.
//   2. fence, then set one arrival flag on every peer.
//   3. for each owned tile: wait the counterpart slots' flags, reduce the
//      N partials, store the result locally and zero-copy broadcast it to
//      every peer's output, fence, set one broadcast flag per peer.
//   4. wait the counterpart broadcast flags (output rows owned by peers).
#pragma once

#include <memory>
#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "common/types.h"
#include "fused/op_runtime.h"
#include "gpu/occupancy.h"
#include "gpu/schedule.h"
#include "ops/cost_model.h"
#include "ops/gemv.h"
#include "shmem/flags.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"
#include "sim/sync.h"

namespace fcc::fused {

struct GemvAllReduceConfig {
  int m = 8192;       // output rows
  int k_global = 8192;  // reduction dim, split row-wise across PEs
  int tile_rows = ops::kGemvTileRows;
  gpu::SchedulePolicy policy = gpu::SchedulePolicy::kCommAware;
  bool functional = false;
  int occupancy_slots_override = 0;
  TimeNs bookkeeping_ns = 40;
  /// AllReduce algorithm for the bulk-synchronous baseline (the fused
  /// kernel owns its own two-phase schedule). The historical default is
  /// the flat two-phase direct algorithm; the planner's select-ccl-algo
  /// pass steers this to kHierarchical/kRing/kAuto on predicted win.
  ccl::AllReduceAlgo allreduce_algo = ccl::AllReduceAlgo::kTwoPhaseDirect;

  int k_local(int num_pes) const {
    FCC_CHECK(k_global % num_pes == 0);
    return k_global / num_pes;
  }
  ops::GemvShape shape(int num_pes) const {
    ops::GemvShape s;
    s.m = m;
    s.k = k_local(num_pes);
    s.tile_rows = tile_rows;
    return s;
  }
};

struct GemvAllReduceData {
  std::vector<std::vector<float>> w;  // [pe][m * k_local]
  std::vector<std::vector<float>> x;  // [pe][k_local]
  shmem::SymArray<float>* y = nullptr;  // [pe][m] final reduced output

  static GemvAllReduceData random(const GemvAllReduceConfig& cfg, int num_pes,
                                  shmem::SymArray<float>* y,
                                  std::uint64_t seed);
};

class FusedGemvAllReduce final : public FusedOp {
 public:
  FusedGemvAllReduce(shmem::World& world, GemvAllReduceConfig cfg,
                     GemvAllReduceData* data);

  const char* name() const override { return "fused_gemv_allreduce"; }
  gpu::KernelResources resources() const override { return fused_resources(); }

  sim::Co run() override;

  /// Owner (reducing PE) of a tile: contiguous 1/N ranges.
  PeId owner_of_tile(int tile) const;
  int active_slots() const { return active_slots_; }

  static gpu::KernelResources fused_resources();

 private:
  sim::Co pe_body(PeId pe);
  sim::Task slot_proc(sim::Engine& engine, PeId pe, int slot);
  sim::Co compute_tile(PeId pe, int slot, int tile);
  sim::Co reduce_and_broadcast(PeId pe, int slot);
  std::size_t flag_index(PeId src, int slot) const;

  GemvAllReduceConfig cfg_;
  GemvAllReduceData* data_;
  int num_pes_;
  ops::GemvShape shape_;
  int num_tiles_;
  int active_slots_ = 1;

  // Runtime state.
  FlagSet arrive_flags_;                               // [pe][src*slots+slot]
  FlagSet bcast_flags_;                                // [pe][src*slots+slot]
  std::vector<std::vector<float>> local_partial_;      // [pe][m] (functional)
  // temp_[owner][src][m]: partials stored by peers into the owner's
  // reduction buffer (functional).
  std::vector<std::vector<std::vector<float>>> temp_;
  std::vector<std::unique_ptr<sim::JoinCounter>> pe_done_;
};

class BaselineGemvAllReduce final : public FusedOp {
 public:
  BaselineGemvAllReduce(shmem::World& world, GemvAllReduceConfig cfg,
                        GemvAllReduceData* data,
                        ccl::AllReduceAlgo algo = ccl::AllReduceAlgo::kTwoPhaseDirect);

  const char* name() const override { return "baseline_gemv_allreduce"; }
  gpu::KernelResources resources() const override {
    return baseline_resources();
  }

  sim::Co run() override;

  static gpu::KernelResources baseline_resources();

 private:
  sim::Co gemv_kernel(PeId pe);

  GemvAllReduceConfig cfg_;
  GemvAllReduceData* data_;
  ccl::AllReduceAlgo algo_;
  ccl::Communicator comm_;
  std::vector<std::vector<float>> partial_;  // [pe][m] (functional)
};

}  // namespace fcc::fused

#include "fused/embedding_a2a.h"

#include <algorithm>
#include <utility>

#include "framework/op_registry.h"
#include "gpu/stream.h"
#include "sim/task.h"

namespace fcc::fused {

EmbeddingA2AData EmbeddingA2AData::random(const EmbeddingA2AConfig& cfg,
                                          shmem::SymArray<float>* out,
                                          std::uint64_t seed) {
  EmbeddingA2AData d;
  d.output = out;
  Rng rng(seed);
  const auto emb = cfg.emb_config();
  const int pes = cfg.map.num_pes;
  for (int pe = 0; pe < pes; ++pe) {
    d.tables.push_back(ops::EmbeddingTables::random(emb, rng));
    d.batches.push_back(
        ops::EmbeddingBatch::uniform(emb, cfg.map.global_batch, rng));
  }
  return d;
}

// ---------------------------------------------------------------------------
// Fused operator
// ---------------------------------------------------------------------------

gpu::KernelResources FusedEmbeddingAllToAll::fused_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + gpu::kShmemCtxVgprsPerThread;
  return r;
}

FusedEmbeddingAllToAll::FusedEmbeddingAllToAll(shmem::World& world,
                                               EmbeddingA2AConfig cfg,
                                               EmbeddingA2AData* data)
    : FusedOp(world), cfg_(std::move(cfg)), data_(data) {
  cfg_.map.validate();
  FCC_CHECK(cfg_.map.num_pes == world_.n_pes());
  if (cfg_.functional) {
    FCC_CHECK_MSG(data_ != nullptr && data_->output != nullptr,
                  "functional mode needs EmbeddingA2AData");
  }
  // Launch at the lesser of the occupancy limit and the HBM-contention
  // knee: Fig. 13 shows the memory-intensive fused kernel degrades past
  // ~75% occupancy, so the persistent grid is tuned to the knee.
  slots_per_pe_ =
      OccupancyPlan::resolve(
          world_.machine().device(0).spec(), fused_resources(),
          {.override_slots = cfg_.occupancy_slots_override,
           .knee_frac = ops::kFusedEmbeddingCurve.knee_frac})
          .slots;
  register_debug_flags("sliceRdy", slice_rdy_);
}

std::size_t FusedEmbeddingAllToAll::flag_index(PeId src, int table,
                                               int group) const {
  const auto& map = cfg_.map;
  return (static_cast<std::size_t>(src) * map.tables_per_pe +
          static_cast<std::size_t>(table)) *
             static_cast<std::size_t>(map.slices_per_dest_per_table()) +
         static_cast<std::size_t>(group);
}

sim::Co FusedEmbeddingAllToAll::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& map = cfg_.map;
  const int pes = map.num_pes;
  const auto& spec = machine.device(0).spec();

  // Reset per-run state. wg_done_/stage_ are written only by each owning
  // PE's WG bodies on its home shard; slice_rdy_ wakes waiters on each PE's
  // home engine (the World form of reset).
  wg_done_.assign(static_cast<std::size_t>(pes),
                  std::vector<shmem::WgDoneMask>(
                      static_cast<std::size_t>(map.num_slices()),
                      shmem::WgDoneMask(map.wgs_per_slice())));
  slice_rdy_.reset(world_, static_cast<std::size_t>(map.num_slices()));
  if (cfg_.functional) {
    stage_.assign(static_cast<std::size_t>(pes),
                  std::vector<std::vector<float>>(
                      static_cast<std::size_t>(map.num_slices())));
  }
  runs_.clear();
  runs_.resize(static_cast<std::size_t>(pes));
  begin_run(pes);

  // One persistent-kernel launch per PE, spawned on each PE's home-shard
  // engine at the post-launch instant; the driver resumes at the exact max
  // completion time (run_per_pe_at), as the serial sequential awaits did.
  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, pes,
                         [this](PeId pe) { return pe_body(pe); });

  // Host observes completion via one stream sync.
  co_await sim::delay(engine, spec.stream_sync_ns);
  finish_run();
}

sim::Co FusedEmbeddingAllToAll::pe_body(PeId pe) {
  auto& machine = world_.machine();
  sim::Engine& engine = machine.engine_of(pe);
  const auto& map = cfg_.map;
  gpu::KernelRun::Params p;
  p.name = "fused_emb_a2a";
  p.num_slots = slots_per_pe_;
  p.order = ordered_tasks(
      map.num_logical_wgs(), cfg_.policy,
      [&map, pe](int lw) { return map.wg_is_remote(pe, lw); });
  p.body = [this, pe](int slot, int lw) { return pe_kernel_wg(pe, slot, lw); };
  p.epilogue = [this, pe](int slot) { return pe_epilogue(pe, slot); };
  auto& run = runs_[static_cast<std::size_t>(pe)];
  run = std::make_unique<gpu::KernelRun>(engine, std::move(p));
  run->start();
  co_await run->wait();
  result_.pe_end[static_cast<std::size_t>(pe)] = engine.now();
}

sim::Co FusedEmbeddingAllToAll::pe_kernel_wg(PeId pe, int slot, int lw) {
  auto& machine = world_.machine();
  auto& dev = machine.device(pe);
  const auto& map = cfg_.map;
  const int t = map.wg_table(lw);
  const int b = map.wg_sample(lw);
  const PeId dest = map.dest_of_sample(b);
  const bool remote = dest != pe;
  const bool zero_copy =
      remote &&
      machine.route_class(pe, dest) == hw::RouteClass::kIntraNode &&
      cfg_.zero_copy;
  // Local outputs and RDMA staging write to HBM; zero-copy remote stores
  // ride the fabric instead (no local write).
  const bool local_write = !zero_copy;

  const TimeNs t_begin = machine.engine_of(pe).now();
  co_await dev.compute(ops::embedding_wg_cost(
      cfg_.pooling, map.dim, local_write, ops::kFusedEmbeddingCurve));

  std::vector<float> vec;
  if (cfg_.functional) {
    vec.resize(static_cast<std::size_t>(map.dim));
    ops::pool_reference(cfg_.emb_config(),
                        data_->tables[static_cast<std::size_t>(pe)],
                        data_->batches[static_cast<std::size_t>(pe)], t, b,
                        vec);
    if (!remote) {
      auto out = data_->output->pe(pe);
      const int lb = b % map.local_batch();
      const int gt = map.global_table(pe, t);
      for (int c = 0; c < map.dim; ++c) {
        out[map.dest_offset(lb, gt, c)] = vec[static_cast<std::size_t>(c)];
      }
    } else if (!zero_copy) {
      auto& st = stage_[static_cast<std::size_t>(pe)]
                       [static_cast<std::size_t>(map.slice_of_wg(lw))];
      if (st.empty()) {
        st.resize(static_cast<std::size_t>(map.vectors_per_slice) *
                  static_cast<std::size_t>(map.dim));
      }
      const std::size_t lane_off =
          static_cast<std::size_t>(map.lane_in_slice(lw)) *
          static_cast<std::size_t>(map.dim);
      std::copy(vec.begin(), vec.end(), st.begin() + static_cast<std::ptrdiff_t>(lane_off));
    }
  }

  if (zero_copy) {
    // Scale-up path: this WG's threads store the vector straight into the
    // destination GPU's output buffer.
    std::function<void()> deliver;
    if (cfg_.functional) {
      auto* out = data_->output;
      const int lb = b % map.local_batch();
      const int gt = map.global_table(pe, t);
      deliver = [out, dest, lb, gt, map = cfg_.map, v = std::move(vec)] {
        auto o = out->pe(dest);
        for (int c = 0; c < map.dim; ++c) {
          o[map.dest_offset(lb, gt, c)] = v[static_cast<std::size_t>(c)];
        }
      };
    }
    co_await world_.put_nbi(pe, dest,
                            static_cast<Bytes>(map.dim) * 4,
                            shmem::World::IssueKind::kStore,
                            std::move(deliver));
  }

  if (cfg_.emit_trace && machine.trace_of(pe).enabled()) {
    machine.trace_of(pe).add_span({"wg", "compute", pe, slot, t_begin,
                                   machine.engine_of(pe).now()});
  }

  // WG_Done bookkeeping; the last finishing WG of the slice emits it.
  co_await dev.busy_wait(cfg_.bookkeeping_ns);
  const int slice = map.slice_of_wg(lw);
  if (wg_done_[static_cast<std::size_t>(pe)][static_cast<std::size_t>(slice)]
          .set_and_check_last(map.lane_in_slice(lw))) {
    co_await emit_slice_from_slot(pe, slot, slice);
  }
}

sim::Co FusedEmbeddingAllToAll::emit_slice(PeId pe, int slice) {
  co_await emit_slice_from_slot(pe, /*slot=*/0, slice);
}

sim::Co FusedEmbeddingAllToAll::emit_slice_from_slot(PeId pe, int slot,
                                                     int slice) {
  auto& machine = world_.machine();
  const auto& map = cfg_.map;
  const PeId dest = map.slice_dest(slice);
  const int t = map.slice_table(slice);
  const int g = map.slice_group(slice);
  const std::size_t fidx = flag_index(pe, t, g);

  if (dest == pe) {
    // Locally consumed slice: flag is a local store.
    slice_rdy_->set(pe, fidx, 1);
    if (cfg_.emit_trace && machine.trace_of(pe).enabled()) {
      machine.trace_of(pe).add_instant(
          {"local_slice", "local", pe, slot, machine.engine_of(pe).now()});
    }
    co_return;
  }

  // Scale-up routes (fabric/switch hops) can be stored to directly; routes
  // that leave the node take the RDMA descriptor path.
  const bool same_node =
      machine.route_class(pe, dest) == hw::RouteClass::kIntraNode;
  if (same_node && cfg_.zero_copy) {
    // Zero-copy scale-up: data already stored per-WG; order the flag behind
    // those stores and set it remotely.
    co_await world_.fence(pe);
    co_await slice_rdy_.signal(world_, pe, dest, fidx);
  } else {
    // Staged path: one PUT for the whole slice (RDMA inter-node, blit-style
    // copy intra-node when zero-copy is disabled), fence, sliceRdy flag.
    std::function<void()> deliver;
    if (cfg_.functional) {
      auto* out = data_->output;
      const auto* st = &stage_[static_cast<std::size_t>(pe)]
                              [static_cast<std::size_t>(slice)];
      const int gt = map.global_table(pe, t);
      const int lb0 = map.slice_sample_begin(slice) % map.local_batch();
      deliver = [out, st, dest, gt, lb0, map = cfg_.map] {
        auto o = out->pe(dest);
        for (int v = 0; v < map.vectors_per_slice; ++v) {
          for (int c = 0; c < map.dim; ++c) {
            o[map.dest_offset(lb0 + v, gt, c)] =
                (*st)[static_cast<std::size_t>(v) * map.dim +
                      static_cast<std::size_t>(c)];
          }
        }
      };
    }
    const auto kind = same_node ? shmem::World::IssueKind::kStore
                                : shmem::World::IssueKind::kRdma;
    co_await world_.put_nbi(pe, dest, map.slice_bytes(), kind,
                            std::move(deliver));
    co_await world_.fence(pe);
    co_await slice_rdy_.signal(world_, pe, dest, fidx, kind);
  }
  if (cfg_.emit_trace && machine.trace_of(pe).enabled()) {
    machine.trace_of(pe).add_instant(
        {"put", "comm", pe, slot, machine.engine_of(pe).now()});
  }
}

sim::Co FusedEmbeddingAllToAll::pe_epilogue(PeId pe, int slot) {
  // Each persistent WG polls a distinct subset of sliceRdy flags before
  // exiting (cheaper than everyone polling everything).
  const int stride = runs_[static_cast<std::size_t>(pe)]->active_slots();
  const int total = cfg_.map.num_slices();
  for (int f = slot; f < total; f += stride) {
    co_await slice_rdy_->wait_ge(pe, static_cast<std::size_t>(f), 1);
  }
}

// ---------------------------------------------------------------------------
// Bulk-synchronous baseline
// ---------------------------------------------------------------------------

gpu::KernelResources BaselineEmbeddingAllToAll::baseline_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128;
  return r;
}

BaselineEmbeddingAllToAll::BaselineEmbeddingAllToAll(shmem::World& world,
                                                     EmbeddingA2AConfig cfg,
                                                     EmbeddingA2AData* data)
    : FusedOp(world),
      cfg_(std::move(cfg)),
      data_(data),
      comm_(world.machine(), all_pes(world.machine())) {
  cfg_.map.validate();
  if (cfg_.functional) {
    FCC_CHECK_MSG(data_ != nullptr && data_->output != nullptr,
                  "functional mode needs EmbeddingA2AData");
  }
}

sim::Co BaselineEmbeddingAllToAll::table_kernel(PeId pe, int table) {
  auto& machine = world_.machine();
  const auto& map = cfg_.map;
  const auto& spec = machine.device(pe).spec();
  gpu::KernelRun::Params p;
  p.name = "emb_table_kernel";
  p.num_slots =
      OccupancyPlan::resolve(spec, baseline_resources(),
                             {.override_slots = cfg_.occupancy_slots_override})
          .slots;
  p.order.resize(static_cast<std::size_t>(map.global_batch));
  for (int b = 0; b < map.global_batch; ++b) {
    p.order[static_cast<std::size_t>(b)] = b;
  }
  p.body = [this, pe, table](int, int b) -> sim::Co {
    auto& dev = world_.machine().device(pe);
    const auto& map2 = cfg_.map;
    co_await dev.compute(ops::embedding_wg_cost(
        cfg_.pooling, map2.dim, /*local_write=*/true, ops::kBaselineCurve));
    if (cfg_.functional) {
      std::vector<float> vec(static_cast<std::size_t>(map2.dim));
      ops::pool_reference(cfg_.emb_config(),
                          data_->tables[static_cast<std::size_t>(pe)],
                          data_->batches[static_cast<std::size_t>(pe)], table,
                          b, vec);
      // Send layout: chunk per destination, [t][lb][dim] inside the chunk.
      const PeId d = map2.dest_of_sample(b);
      const int lb = b % map2.local_batch();
      const std::size_t chunk_elems =
          static_cast<std::size_t>(map2.tables_per_pe) *
          static_cast<std::size_t>(map2.local_batch()) *
          static_cast<std::size_t>(map2.dim);
      const std::size_t off =
          static_cast<std::size_t>(d) * chunk_elems +
          (static_cast<std::size_t>(table) * map2.local_batch() +
           static_cast<std::size_t>(lb)) *
              static_cast<std::size_t>(map2.dim);
      std::copy(vec.begin(), vec.end(),
                send_[static_cast<std::size_t>(pe)].begin() +
                    static_cast<std::ptrdiff_t>(off));
    }
  };
  gpu::KernelRun run(machine.engine_of(pe), std::move(p));
  run.start();
  co_await run.wait();
}

sim::Co BaselineEmbeddingAllToAll::pe_compute(PeId pe, TimeNs t0) {
  // Spawned at t0 + kernel_launch_ns on the PE's home engine; anchoring the
  // stream at t0 reproduces the serial launch_ready sequence exactly.
  auto& machine = world_.machine();
  gpu::Stream stream(machine.engine_of(pe), machine.device(pe).spec(),
                     /*anchor=*/t0);
  for (int t = 0; t < cfg_.map.tables_per_pe; ++t) {
    stream.enqueue([this, pe, t] { return table_kernel(pe, t); });
  }
  co_await stream.sync();
  compute_end_[static_cast<std::size_t>(pe)] = machine.engine_of(pe).now();
}

sim::Co BaselineEmbeddingAllToAll::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& map = cfg_.map;
  const int pes = map.num_pes;
  const auto& spec = machine.device(0).spec();

  begin_run(pes);
  compute_end_.assign(static_cast<std::size_t>(pes), 0);

  const std::size_t chunk_elems = static_cast<std::size_t>(map.tables_per_pe) *
                                  static_cast<std::size_t>(map.local_batch()) *
                                  static_cast<std::size_t>(map.dim);
  if (cfg_.functional) {
    send_.assign(static_cast<std::size_t>(pes),
                 std::vector<float>(chunk_elems * static_cast<std::size_t>(pes),
                                    0.0f));
    recv_.assign(static_cast<std::size_t>(pes),
                 std::vector<float>(chunk_elems * static_cast<std::size_t>(pes),
                                    0.0f));
  }

  // Compute phase: every PE drives its own stream of per-table kernels on
  // its home-shard engine. Bodies spawn at t0 + kernel_launch_ns (the first
  // launch_ready) with the stream anchored at t0, so the issue timeline is
  // byte-identical to the serial enqueue-at-t0 sequence.
  {
    const TimeNs t0 = engine.now();
    co_await run_per_pe_at(
        t0 + spec.kernel_launch_ns, pes,
        [this, t0](PeId pe) { return pe_compute(pe, t0); });
  }

  // Collective phase: RCCL-style All-to-All kernel (one launch), then sync.
  co_await sim::delay(engine, spec.kernel_launch_ns);
  ccl::FloatBufs send_bufs, recv_bufs;
  if (cfg_.functional) {
    for (auto& s : send_) send_bufs.per_rank.emplace_back(s);
    for (auto& r : recv_) recv_bufs.per_rank.emplace_back(r);
  }
  co_await comm_.all_to_all(static_cast<std::int64_t>(chunk_elems),
                            std::move(send_bufs), std::move(recv_bufs));
  co_await sim::delay(engine, spec.stream_sync_ns);

  // Functional: scatter the source-major chunks into the interaction layout.
  // (Charged to neither side; the baseline's consumer reads strided, see
  // DESIGN.md fairness note.)
  if (cfg_.functional) {
    for (PeId pe = 0; pe < pes; ++pe) {
      auto out = data_->output->pe(pe);
      const auto& rv = recv_[static_cast<std::size_t>(pe)];
      for (PeId src = 0; src < pes; ++src) {
        for (int t = 0; t < map.tables_per_pe; ++t) {
          for (int lb = 0; lb < map.local_batch(); ++lb) {
            const std::size_t in_off =
                static_cast<std::size_t>(src) * chunk_elems +
                (static_cast<std::size_t>(t) * map.local_batch() +
                 static_cast<std::size_t>(lb)) *
                    static_cast<std::size_t>(map.dim);
            const int gt = map.global_table(src, t);
            for (int c = 0; c < map.dim; ++c) {
              out[map.dest_offset(lb, gt, c)] =
                  rv[in_off + static_cast<std::size_t>(c)];
            }
          }
        }
      }
    }
  }

  finish_run_uniform();
}

// ---------------------------------------------------------------------------
// Registry entry
// ---------------------------------------------------------------------------

namespace {

const fw::OpRegistrar embedding_a2a_registrar{{
    .name = "fcc::embedding_a2a",
    .replaces = "aten::embedding_bag + c10d::all_to_all",
    .make =
        [](shmem::World& world, const fw::OpSpec& spec, fw::Backend backend)
        -> std::unique_ptr<FusedOp> {
      const auto& cfg = fw::spec_config<EmbeddingA2AConfig>(spec);
      auto* data = fw::spec_data<EmbeddingA2AData>(spec);
      if (backend == fw::Backend::kFused) {
        return std::make_unique<FusedEmbeddingAllToAll>(world, cfg, data);
      }
      return std::make_unique<BaselineEmbeddingAllToAll>(world, cfg, data);
    },
    .smoke_spec =
        [] {
          EmbeddingA2AConfig cfg;
          cfg.map.num_pes = fw::kSmokePes;
          cfg.map.tables_per_pe = 4;
          cfg.map.global_batch = 128;
          cfg.map.dim = 64;
          cfg.map.vectors_per_slice = 8;
          cfg.functional = false;
          return fw::make_spec("fcc::embedding_a2a", cfg);
        },
    // Graph rewrite: pooling node (carries the EmbeddingA2AConfig) feeding
    // a bare all_to_all collapses into this op.
    .pattern = {"aten::embedding_bag", "c10d::all_to_all"},
    .shape_key =
        [](const fw::OpSpec& spec) {
          const auto& cfg = fw::spec_config<EmbeddingA2AConfig>(spec);
          return "pes=" + std::to_string(cfg.map.num_pes) +
                 ",tables=" + std::to_string(cfg.map.tables_per_pe) +
                 ",batch=" + std::to_string(cfg.map.global_batch) +
                 ",dim=" + std::to_string(cfg.map.dim) +
                 ",vps=" + std::to_string(cfg.map.vectors_per_slice) +
                 ",pool=" + std::to_string(cfg.pooling);
        },
}};

}  // namespace

}  // namespace fcc::fused

// Fused embedding pooling + All-to-All (the paper's Sec. III-A operator)
// and its bulk-synchronous baseline.
//
// Fused path: one persistent HIP-style kernel per PE. Each logical WG pools
// one output vector; the last WG of a slice (WG_Done bitmask) issues the
// slice's remote PUT + fence + sliceRdy flag. Intra-node destinations use
// zero-copy per-WG stores over the fabric (no staging); inter-node slices
// stage locally and go out as one RDMA PUT. Logical WGs run in
// communication-aware order (remote slices first) unless configured
// oblivious. After draining the task loop, each persistent WG polls a
// distinct subset of sliceRdy flags before exiting.
//
// Baseline path: per-table pooling kernels (public-DLRM structure) on a
// stream, host sync, then the ccl All-to-All, then sync — communication
// starts only at the kernel boundary.
#pragma once

#include <memory>
#include <vector>

#include "ccl/communicator.h"
#include "common/types.h"
#include "fused/op_runtime.h"
#include "fused/slice.h"
#include "gpu/occupancy.h"
#include "gpu/persistent.h"
#include "gpu/schedule.h"
#include "ops/cost_model.h"
#include "ops/embedding.h"
#include "shmem/flags.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"

namespace fcc::fused {

struct EmbeddingA2AConfig {
  SliceMap map;
  int pooling = 64;
  ops::PoolingMode mode = ops::PoolingMode::kSum;
  int rows_per_table = 1000;  // used in functional mode only
  gpu::SchedulePolicy policy = gpu::SchedulePolicy::kCommAware;
  bool functional = false;
  /// 0 = derive from kernel resources (fused: baseline regs + shmem ctx).
  int occupancy_slots_override = 0;
  /// Per-logical-WG task-loop + WG_Done bookkeeping cost.
  TimeNs bookkeeping_ns = 40;
  /// Scale-up zero-copy: WG threads store straight into peer memory. When
  /// false, intra-node slices stage locally and move as slice-granular
  /// copies (the ablation in bench_ablation_zero_copy).
  bool zero_copy = true;
  /// Emit trace spans/instants (Fig. 11) — keep off for large sweeps.
  bool emit_trace = false;

  ops::EmbeddingConfig emb_config() const {
    ops::EmbeddingConfig e;
    e.num_tables = map.tables_per_pe;
    e.rows_per_table = rows_per_table;
    e.dim = map.dim;
    e.pooling = pooling;
    e.mode = mode;
    return e;
  }
};

/// Functional-mode inputs/outputs; null members in timing-only runs.
struct EmbeddingA2AData {
  std::vector<ops::EmbeddingTables> tables;   // [pe] local tables
  std::vector<ops::EmbeddingBatch> batches;   // [pe] indices over global batch
  shmem::SymArray<float>* output = nullptr;   // [pe][dest_elems]

  static EmbeddingA2AData random(const EmbeddingA2AConfig& cfg,
                                 shmem::SymArray<float>* out,
                                 std::uint64_t seed);
};

class FusedEmbeddingAllToAll final : public FusedOp {
 public:
  FusedEmbeddingAllToAll(shmem::World& world, EmbeddingA2AConfig cfg,
                         EmbeddingA2AData* data);

  const char* name() const override { return "fused_embedding_a2a"; }
  gpu::KernelResources resources() const override { return fused_resources(); }

  /// Awaitable from a host driver coroutine; fills `result()`.
  sim::Co run() override;

  int slots_per_pe() const { return slots_per_pe_; }

  /// Kernel resources of the fused kernel (baseline regs + shmem context).
  static gpu::KernelResources fused_resources();

 private:
  sim::Co pe_body(PeId pe);
  sim::Co pe_kernel_wg(PeId pe, int slot, int lw);
  sim::Co pe_epilogue(PeId pe, int slot);
  sim::Co emit_slice(PeId pe, int slice);
  sim::Co emit_slice_from_slot(PeId pe, int slot, int slice);
  std::size_t flag_index(PeId src, int table, int group) const;

  EmbeddingA2AConfig cfg_;
  EmbeddingA2AData* data_;
  int slots_per_pe_ = 0;

  // Per-PE runtime state, rebuilt by run().
  std::vector<std::vector<shmem::WgDoneMask>> wg_done_;     // [pe][slice]
  FlagSet slice_rdy_;                                       // [pe][flag]
  std::vector<std::vector<std::vector<float>>> stage_;      // [pe][slice][...]
  std::vector<std::unique_ptr<gpu::KernelRun>> runs_;
};

class BaselineEmbeddingAllToAll final : public FusedOp {
 public:
  BaselineEmbeddingAllToAll(shmem::World& world, EmbeddingA2AConfig cfg,
                            EmbeddingA2AData* data);

  const char* name() const override { return "baseline_embedding_a2a"; }
  gpu::KernelResources resources() const override {
    return baseline_resources();
  }

  sim::Co run() override;

  static gpu::KernelResources baseline_resources();

 private:
  sim::Co table_kernel(PeId pe, int table);
  sim::Co pe_compute(PeId pe, TimeNs t0);

  EmbeddingA2AConfig cfg_;
  EmbeddingA2AData* data_;
  ccl::Communicator comm_;

  // Functional staging: send/recv in ccl chunk layout [dest|src][t][lb][dim].
  std::vector<std::vector<float>> send_, recv_;
  std::vector<TimeNs> compute_end_;
};

}  // namespace fcc::fused

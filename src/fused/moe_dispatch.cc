#include "fused/moe_dispatch.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "framework/op_registry.h"
#include "ops/gemv.h"  // random_vector
#include "sim/task.h"

namespace fcc::fused {

// ---------------------------------------------------------------------------
// Routing synthesis and layout
// ---------------------------------------------------------------------------

std::vector<ops::DispatchPlan> skewed_plans(const MoeDispatchConfig& cfg,
                                            int num_pes) {
  FCC_CHECK(num_pes >= 1);
  FCC_CHECK(cfg.tokens_per_pe >= 1);
  FCC_CHECK(cfg.top_k >= 1 && cfg.top_k <= num_pes);
  FCC_CHECK(cfg.hot_expert_factor >= 1.0);

  std::vector<ops::DispatchPlan> plans;
  plans.reserve(static_cast<std::size_t>(num_pes));
  for (int src = 0; src < num_pes; ++src) {
    Rng rng(cfg.routing_seed + 0x9e3779b97f4a7c15ULL *
                                   static_cast<std::uint64_t>(src + 1));
    std::vector<std::vector<int>> buckets(static_cast<std::size_t>(num_pes));
    for (int t = 0; t < cfg.tokens_per_pe; ++t) {
      // Weighted sampling without replacement: expert 0 is the hot one.
      std::vector<double> weight(static_cast<std::size_t>(num_pes), 1.0);
      weight[0] = cfg.hot_expert_factor;
      for (int k = 0; k < cfg.top_k; ++k) {
        double total = 0;
        for (double w : weight) total += w;
        double r = rng.next_double() * total;
        int pick = 0;
        for (int e = 0; e < num_pes; ++e) {
          if (weight[static_cast<std::size_t>(e)] <= 0) continue;
          r -= weight[static_cast<std::size_t>(e)];
          if (r <= 0) {
            pick = e;
            break;
          }
          pick = e;  // numeric tail: last eligible expert
        }
        weight[static_cast<std::size_t>(pick)] = 0;
        buckets[static_cast<std::size_t>(pick)].push_back(t);
      }
    }
    ops::DispatchPlan p;
    p.counts.assign(static_cast<std::size_t>(num_pes), 0);
    p.offsets.assign(static_cast<std::size_t>(num_pes), 0);
    std::int64_t off = 0;
    for (int e = 0; e < num_pes; ++e) {
      const auto& b = buckets[static_cast<std::size_t>(e)];
      p.counts[static_cast<std::size_t>(e)] =
          static_cast<std::int64_t>(b.size());
      p.offsets[static_cast<std::size_t>(e)] = off;
      p.order.insert(p.order.end(), b.begin(), b.end());
      off += static_cast<std::int64_t>(b.size());
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

DispatchLayout DispatchLayout::build(
    const std::vector<ops::DispatchPlan>& plans, int block_m) {
  FCC_CHECK(!plans.empty());
  FCC_CHECK(block_m >= 1);
  DispatchLayout l;
  l.num_pes = static_cast<int>(plans.size());
  l.block_m = block_m;
  const auto n = static_cast<std::size_t>(l.num_pes);
  l.counts.assign(n, {});
  l.pad_off.assign(n, {});
  l.padded_rows.assign(n, 0);
  l.recv_off.assign(n, std::vector<std::int64_t>(n, 0));
  l.recv_rows.assign(n, 0);
  for (int src = 0; src < l.num_pes; ++src) {
    const auto& p = plans[static_cast<std::size_t>(src)];
    FCC_CHECK_MSG(static_cast<int>(p.counts.size()) == l.num_pes,
                  "expert-parallel dispatch needs one expert per PE");
    l.counts[static_cast<std::size_t>(src)] = p.counts;
    auto& off = l.pad_off[static_cast<std::size_t>(src)];
    off.assign(n, 0);
    std::int64_t row = 0;
    for (int e = 0; e < l.num_pes; ++e) {
      const std::int64_t c = p.counts[static_cast<std::size_t>(e)];
      FCC_CHECK(c >= 0);
      off[static_cast<std::size_t>(e)] = row;
      row += (c + block_m - 1) / block_m * block_m;
      l.recv_off[static_cast<std::size_t>(e)][static_cast<std::size_t>(src)] =
          l.recv_rows[static_cast<std::size_t>(e)];
      l.recv_rows[static_cast<std::size_t>(e)] += c;
    }
    l.padded_rows[static_cast<std::size_t>(src)] = row;
  }
  return l;
}

std::int64_t DispatchLayout::padded(int src, int e) const {
  const std::int64_t c =
      counts[static_cast<std::size_t>(src)][static_cast<std::size_t>(e)];
  return (c + block_m - 1) / block_m * block_m;
}

int DispatchLayout::owner_of_row(int src, std::int64_t row) const {
  const auto& off = pad_off[static_cast<std::size_t>(src)];
  for (int e = num_pes - 1; e >= 0; --e) {
    if (row >= off[static_cast<std::size_t>(e)] && padded(src, e) > 0) {
      return e;
    }
  }
  FCC_CHECK_MSG(false, "row " << row << " outside every expert segment");
  return 0;
}

std::int64_t DispatchLayout::expected_tiles(int src, int e,
                                            int tiles_n) const {
  return padded(src, e) / block_m * tiles_n;
}

std::size_t DispatchLayout::recv_capacity(int d_out) const {
  std::int64_t max_rows = 0;
  for (std::int64_t r : recv_rows) max_rows = std::max(max_rows, r);
  return static_cast<std::size_t>(max_rows) * static_cast<std::size_t>(d_out);
}

MoeDispatchData MoeDispatchData::random(const MoeDispatchConfig& cfg,
                                        int num_pes,
                                        shmem::SymArray<float>* recv,
                                        std::uint64_t seed) {
  MoeDispatchData d;
  d.plans = skewed_plans(cfg, num_pes);
  d.recv = recv;
  Rng rng(seed);
  for (int pe = 0; pe < num_pes; ++pe) {
    d.tokens.push_back(ops::random_vector(
        static_cast<std::size_t>(cfg.tokens_per_pe) *
            static_cast<std::size_t>(cfg.d_model),
        rng));
  }
  d.w = ops::random_vector(static_cast<std::size_t>(cfg.d_model) *
                               static_cast<std::size_t>(cfg.d_out),
                           rng);
  return d;
}

namespace {

/// Plans from the spec'd data when present, else synthesized from the
/// config's skew knobs (timing-only smoke runs carry no data).
///
/// User-supplied plans are validated against the config up front: both
/// variants size buffers from cfg.assignments() and index tokens through
/// plan.order, so an inconsistent plan (e.g. built from a different batch
/// size) would otherwise write out of bounds.
std::vector<ops::DispatchPlan> resolve_plans(const MoeDispatchConfig& cfg,
                                             const MoeDispatchData* data,
                                             int num_pes) {
  if (data == nullptr || data->plans.empty()) {
    return skewed_plans(cfg, num_pes);
  }
  FCC_CHECK_MSG(static_cast<int>(data->plans.size()) == num_pes,
                "need one DispatchPlan per source PE");
  for (const auto& p : data->plans) {
    FCC_CHECK_MSG(static_cast<int>(p.counts.size()) == num_pes &&
                      static_cast<int>(p.offsets.size()) == num_pes,
                  "expert-parallel dispatch needs one expert per PE");
    std::int64_t total = 0;
    for (int e = 0; e < num_pes; ++e) {
      FCC_CHECK(p.counts[static_cast<std::size_t>(e)] >= 0);
      FCC_CHECK_MSG(p.offsets[static_cast<std::size_t>(e)] == total,
                    "DispatchPlan offsets are not prefix sums of counts");
      total += p.counts[static_cast<std::size_t>(e)];
    }
    FCC_CHECK_MSG(total == cfg.assignments() &&
                      p.order.size() == static_cast<std::size_t>(total),
                  "DispatchPlan rows != tokens_per_pe * top_k");
    for (int tok : p.order) {
      FCC_CHECK_MSG(tok >= 0 && tok < cfg.tokens_per_pe,
                    "DispatchPlan routes a token outside the local batch");
    }
  }
  return data->plans;
}

void check_functional_data(const MoeDispatchConfig& cfg,
                           const MoeDispatchData* data,
                           const DispatchLayout& layout) {
  FCC_CHECK_MSG(data != nullptr && data->recv != nullptr,
                "functional MoE dispatch needs data with a recv buffer");
  FCC_CHECK(static_cast<int>(data->tokens.size()) == layout.num_pes);
  for (const auto& t : data->tokens) {
    FCC_CHECK_MSG(t.size() == static_cast<std::size_t>(cfg.tokens_per_pe) *
                                  static_cast<std::size_t>(cfg.d_model),
                  "token buffer size != tokens_per_pe * d_model");
  }
  FCC_CHECK(data->w.size() == static_cast<std::size_t>(cfg.d_model) *
                                  static_cast<std::size_t>(cfg.d_out));
  FCC_CHECK_MSG(data->recv->size() >= layout.recv_capacity(cfg.d_out),
                "recv SymArray smaller than the hottest expert's footprint");
}

/// A-panel gather in plan order: routed row i of expert e's segment is
/// tokens[order[offsets[e] + i]]. The fused variant pads each segment to a
/// block_m multiple (zero rows); the baseline packs them tight.
std::vector<float> gather_a(const MoeDispatchConfig& cfg,
                            const ops::DispatchPlan& plan,
                            const std::vector<float>& tokens, int num_pes,
                            bool padded, const DispatchLayout& layout,
                            int src) {
  const auto dm = static_cast<std::size_t>(cfg.d_model);
  const std::int64_t rows =
      padded ? layout.padded_rows[static_cast<std::size_t>(src)]
             : cfg.assignments();
  std::vector<float> a(static_cast<std::size_t>(rows) * dm, 0.0f);
  for (int e = 0; e < num_pes; ++e) {
    const std::int64_t base =
        padded ? layout.pad_off[static_cast<std::size_t>(src)]
                               [static_cast<std::size_t>(e)]
               : plan.offsets[static_cast<std::size_t>(e)];
    for (std::int64_t i = 0; i < plan.counts[static_cast<std::size_t>(e)];
         ++i) {
      const int tok = plan.order[static_cast<std::size_t>(
          plan.offsets[static_cast<std::size_t>(e)] + i)];
      const float* row = &tokens[static_cast<std::size_t>(tok) * dm];
      std::copy(row, row + dm,
                a.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(base + i) * dm));
    }
  }
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fused operator (authored in the tile DSL, per-source shapes)
// ---------------------------------------------------------------------------

gpu::KernelResources FusedMoeDispatch::fused_resources() {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + gpu::kShmemCtxVgprsPerThread;
  return r;
}

FusedMoeDispatch::FusedMoeDispatch(shmem::World& world, MoeDispatchConfig cfg,
                                   MoeDispatchData* data)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      num_pes_(world.n_pes()),
      plans_(resolve_plans(cfg, data, world.n_pes())),
      layout_(DispatchLayout::build(plans_, cfg.block_m)) {
  if (cfg_.functional) check_functional_data(cfg_, data_, layout_);
  register_debug_flags("arrivals", arrivals_);
}

sim::Co FusedMoeDispatch::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& spec = machine.device(0).spec();

  arrivals_.reset(world_, static_cast<std::size_t>(num_pes_));

  // Per-source kernels: shapes differ (padded routed rows), so each source
  // authors its own instance of the dispatch kernel.
  kernels_.clear();
  a_.assign(static_cast<std::size_t>(num_pes_), {});
  for (int src = 0; src < num_pes_; ++src) {
    ops::GemmShape shape;
    shape.m =
        static_cast<int>(layout_.padded_rows[static_cast<std::size_t>(src)]);
    shape.n = cfg_.d_out;
    shape.k = cfg_.d_model;
    shape.block_m = cfg_.block_m;
    shape.block_n = cfg_.block_n;

    auto kernel = std::make_unique<triton::TileKernel>(
        "moe_dispatch_fused", shape, cfg_.alu_efficiency);
    auto dest_of = [this, src](const triton::TileKernel::Ctx& ctx) {
      return static_cast<PeId>(
          layout_.owner_of_row(src, ctx.shape->row_begin(ctx.pid)));
    };
    triton::TileKernel::WriteFn write_tile;
    if (cfg_.functional) {
      const int d_out = cfg_.d_out;
      write_tile = [this, src, d_out](const triton::TileKernel::Ctx& ctx,
                                      const std::vector<float>& tile) {
        const auto& sh = *ctx.shape;
        const int e = layout_.owner_of_row(src, sh.row_begin(ctx.pid));
        const std::int64_t seg0 =
            layout_.pad_off[static_cast<std::size_t>(src)]
                           [static_cast<std::size_t>(e)];
        const std::int64_t real =
            layout_.counts[static_cast<std::size_t>(src)]
                          [static_cast<std::size_t>(e)];
        const std::int64_t base =
            layout_.recv_off[static_cast<std::size_t>(e)]
                            [static_cast<std::size_t>(src)];
        auto out = data_->recv->pe(e);
        const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
        for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
          const std::int64_t local = r - seg0;
          if (local >= real) break;  // pad rows never leave the tile
          for (int j = 0; j < cols; ++j) {
            out[static_cast<std::size_t>(base + local) *
                    static_cast<std::size_t>(d_out) +
                static_cast<std::size_t>(sh.col_begin(ctx.pid) + j)] =
                tile[static_cast<std::size_t>(r - sh.row_begin(ctx.pid)) *
                         static_cast<std::size_t>(cols) +
                     static_cast<std::size_t>(j)];
          }
        }
      };
    }
    kernel->load_a().load_b().dot();
    kernel->put_c_remote(dest_of, std::move(write_tile));
    kernel->fence();
    kernel->atomic_add_remote(
        arrivals_.get(), dest_of,
        [src](const triton::TileKernel::Ctx&) {
          return static_cast<std::size_t>(src);
        });
    kernels_.push_back(std::move(kernel));

    if (cfg_.functional) {
      a_[static_cast<std::size_t>(src)] = gather_a(
          cfg_, plans_[static_cast<std::size_t>(src)],
          data_->tokens[static_cast<std::size_t>(src)], num_pes_,
          /*padded=*/true, layout_, src);
    }
  }

  begin_run(num_pes_);

  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, num_pes_,
                         [this](PeId pe) { return pe_driver(pe); });
  co_await sim::delay(engine, spec.stream_sync_ns);
  finish_run();
}

sim::Co FusedMoeDispatch::pe_driver(PeId pe) {
  auto& engine = world_.machine().engine_of(pe);
  const int tiles_n = (cfg_.d_out + cfg_.block_n - 1) / cfg_.block_n;

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world_;
  lc.pe = pe;
  lc.policy = cfg_.policy;
  lc.occupancy_slots_override = cfg_.occupancy_slots_override;
  lc.functional = cfg_.functional;
  if (cfg_.functional) {
    lc.a = a_[static_cast<std::size_t>(pe)];
    lc.b = data_->w;
  }
  auto* arrivals = arrivals_.get();
  const int pes = num_pes_;
  const auto* layout = &layout_;
  // Distinct flag subsets, strided over the slots the launch actually
  // spawns (surplus slots retire without running their epilogue, so a grid
  // smaller than num_pes — occupancy override, tiny shapes — must not
  // orphan any source's counter): slot s polls sources s, s+active, ...
  // until every expected tile has landed; sources with an empty (or
  // all-pad) segment expect zero and pass through.
  lc.epilogue = [arrivals, layout, pe, pes, tiles_n](int slot,
                                                     int active) -> sim::Co {
    for (int src = slot; src < pes; src += active) {
      const auto expected = static_cast<std::uint64_t>(
          layout->expected_tiles(src, pe, tiles_n));
      co_await arrivals->wait_ge(pe, static_cast<std::size_t>(src),
                                 expected);
    }
  };

  co_await kernels_[static_cast<std::size_t>(pe)]->launch(lc);
  result_.pe_end[static_cast<std::size_t>(pe)] = engine.now();
}

// ---------------------------------------------------------------------------
// Bulk-synchronous baseline (GEMM, sync, all_to_all_v)
// ---------------------------------------------------------------------------

BaselineMoeDispatch::BaselineMoeDispatch(shmem::World& world,
                                         MoeDispatchConfig cfg,
                                         MoeDispatchData* data)
    : FusedOp(world),
      cfg_(cfg),
      data_(data),
      num_pes_(world.n_pes()),
      plans_(resolve_plans(cfg, data, world.n_pes())),
      layout_(DispatchLayout::build(plans_, cfg.block_m)),
      comm_(world.machine(), all_pes(world.machine())) {
  if (cfg_.functional) check_functional_data(cfg_, data_, layout_);
}

sim::Co BaselineMoeDispatch::run() {
  auto& machine = world_.machine();
  auto& engine = machine.engine();
  const auto& spec = machine.device(0).spec();

  ops::GemmShape shape;
  shape.m = static_cast<int>(cfg_.assignments());
  shape.n = cfg_.d_out;
  shape.k = cfg_.d_model;
  shape.block_m = cfg_.block_m;
  shape.block_n = cfg_.block_n;

  begin_run(num_pes_);
  if (cfg_.functional) {
    a_.clear();
    c_.assign(static_cast<std::size_t>(num_pes_),
              std::vector<float>(static_cast<std::size_t>(shape.m) *
                                     static_cast<std::size_t>(shape.n),
                                 0.0f));
    for (int src = 0; src < num_pes_; ++src) {
      a_.push_back(gather_a(cfg_, plans_[static_cast<std::size_t>(src)],
                            data_->tokens[static_cast<std::size_t>(src)],
                            num_pes_, /*padded=*/false, layout_, src));
    }
  }

  // Compute phase: plain tile-DSL GEMM per source over the unpadded routed
  // rows (plan order — already destination-major for the collective), each
  // on its PE's home engine at the post-launch instant.
  co_await run_per_pe_at(engine.now() + spec.kernel_launch_ns, num_pes_,
                         [this, shape](PeId pe) { return gemm_pe(pe, shape); });
  co_await sim::delay(engine, spec.stream_sync_ns);

  // Collective phase: the routed counts drive the uneven All-to-All; expert
  // e's recv buffer ends up source-major, exactly the layout the expert
  // GEMM consumes.
  co_await sim::delay(engine, spec.kernel_launch_ns);
  ccl::FloatBufs send, recv;
  if (cfg_.functional) {
    for (auto& c : c_) send.per_rank.emplace_back(c);
    for (PeId pe = 0; pe < num_pes_; ++pe) {
      recv.per_rank.push_back(data_->recv->pe(pe));
    }
  }
  co_await comm_.all_to_all_v(
      ops::Router::a2av_counts(plans_, num_pes_, cfg_.d_out), std::move(send),
      std::move(recv));
  co_await sim::delay(engine, spec.stream_sync_ns);

  finish_run_uniform();
}

sim::Co BaselineMoeDispatch::gemm_pe(PeId pe, ops::GemmShape shape) {
  triton::TileKernel kernel("moe_dispatch_gemm_baseline", shape,
                            cfg_.alu_efficiency);
  auto write_local = [this, pe, shape](const triton::TileKernel::Ctx& ctx,
                                       const std::vector<float>& tile) {
    auto& c = c_[static_cast<std::size_t>(pe)];
    const auto& sh = *ctx.shape;
    const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
    for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
      for (int j = 0; j < cols; ++j) {
        c[static_cast<std::size_t>(r) * static_cast<std::size_t>(shape.n) +
          static_cast<std::size_t>(sh.col_begin(ctx.pid) + j)] =
            tile[static_cast<std::size_t>(r - sh.row_begin(ctx.pid)) *
                     static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(j)];
      }
    }
  };
  kernel.load_a().load_b().dot();
  kernel.store_c_local(cfg_.functional
                           ? triton::TileKernel::WriteFn(write_local)
                           : triton::TileKernel::WriteFn{});

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world_;
  lc.pe = pe;
  lc.policy = gpu::SchedulePolicy::kOblivious;
  lc.functional = cfg_.functional;
  if (cfg_.functional) {
    lc.a = a_[static_cast<std::size_t>(pe)];
    lc.b = data_->w;
  }
  co_await kernel.launch(lc);
}

// ---------------------------------------------------------------------------
// Registry entry
// ---------------------------------------------------------------------------

namespace {

const fw::OpRegistrar moe_dispatch_registrar{{
    .name = "fcc::moe_dispatch",
    .replaces = "aten::mm + c10d::all_to_all_single (uneven splits, "
                "MoE dispatch)",
    .make =
        [](shmem::World& world, const fw::OpSpec& spec, fw::Backend backend)
        -> std::unique_ptr<FusedOp> {
      const auto& cfg = fw::spec_config<MoeDispatchConfig>(spec);
      auto* data = fw::spec_data<MoeDispatchData>(spec);
      if (backend == fw::Backend::kFused) {
        return std::make_unique<FusedMoeDispatch>(world, cfg, data);
      }
      return std::make_unique<BaselineMoeDispatch>(world, cfg, data);
    },
    .smoke_spec =
        [] {
          MoeDispatchConfig cfg;
          cfg.tokens_per_pe = 512;
          cfg.d_model = 512;
          cfg.d_out = 512;
          cfg.hot_expert_factor = 4.0;
          cfg.functional = false;
          return fw::make_spec("fcc::moe_dispatch", cfg);
        },
    // Graph rewrite: routed GEMM (carries the MoeDispatchConfig) feeding a
    // bare uneven-splits all_to_all_single collapses into this op.
    .pattern = {"aten::mm", "c10d::all_to_all_single"},
    .shape_key =
        [](const fw::OpSpec& spec) {
          const auto& cfg = fw::spec_config<MoeDispatchConfig>(spec);
          std::ostringstream os;
          os << "t=" << cfg.tokens_per_pe << ",dm=" << cfg.d_model
             << ",do=" << cfg.d_out << ",k=" << cfg.top_k
             << ",hot=" << cfg.hot_expert_factor
             << ",seed=" << cfg.routing_seed;
          return os.str();
        },
}};

}  // namespace

}  // namespace fcc::fused

#include "serve/arrivals.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace fcc::serve {

std::vector<Arrival> poisson_trace(double offered_rps, int num_requests,
                                   std::uint64_t seed,
                                   const std::vector<double>& class_weights) {
  FCC_CHECK(offered_rps > 0.0);
  FCC_CHECK(num_requests >= 0);
  FCC_CHECK(!class_weights.empty());
  double total_weight = 0.0;
  for (const double w : class_weights) {
    FCC_CHECK(w >= 0.0);
    total_weight += w;
  }
  FCC_CHECK(total_weight > 0.0);

  Rng rng(seed);
  Rng gap_rng = rng.fork();
  Rng cls_rng = rng.fork();
  const double rate_per_ns = offered_rps / 1e9;

  std::vector<Arrival> trace;
  trace.reserve(static_cast<std::size_t>(num_requests));
  TimeNs t = 0;
  for (int i = 0; i < num_requests; ++i) {
    // Inverse-CDF exponential gap; 1 - u keeps the argument in (0, 1].
    const double u = gap_rng.next_double();
    const double gap = -std::log(1.0 - u) / rate_per_ns;
    t += std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(gap)));

    double pick = cls_rng.next_double() * total_weight;
    int cls = 0;
    for (std::size_t c = 0; c < class_weights.size(); ++c) {
      pick -= class_weights[c];
      if (pick < 0.0) {
        cls = static_cast<int>(c);
        break;
      }
      // Rounding may leave pick >= 0 after the last class; fall through to
      // the final class below.
      cls = static_cast<int>(c);
    }
    trace.push_back(Arrival{t, cls});
  }
  return trace;
}

}  // namespace fcc::serve

#include "serve/catalog.h"

#include "fused/embedding_a2a.h"
#include "fused/gemm_a2a.h"
#include "fused/gemv_allreduce.h"
#include "fused/moe_dispatch.h"

namespace fcc::serve {

std::vector<ServeClass> default_catalog(int num_pes) {
  std::vector<ServeClass> catalog;

  {
    // DLRM inference: pooled embedding exchange feeding a row-parallel MLP
    // layer. The latency-critical ads path: priority 0, tightest SLO.
    ServeClass dlrm;
    dlrm.name = "dlrm";
    dlrm.tenant = "ads";
    dlrm.priority = 0;
    dlrm.weight = 0.5;
    dlrm.slo_ns = 200'000;
    fused::EmbeddingA2AConfig emb;
    emb.map.num_pes = num_pes;
    emb.map.tables_per_pe = 4;
    emb.map.global_batch = 32 * num_pes;
    emb.map.dim = 64;
    emb.map.vectors_per_slice = 8;
    dlrm.chain.push_back(fw::make_spec("fcc::embedding_a2a", emb));
    fused::GemvAllReduceConfig mlp;
    mlp.m = 1024;
    mlp.k_global = 256 * num_pes;
    dlrm.chain.push_back(fw::make_spec("fcc::gemv_allreduce", mlp));
    catalog.push_back(std::move(dlrm));
  }

  {
    // MoE dispatch: routed All-to-All-v with a mildly hot expert. Batch
    // search traffic tolerates more queueing: priority 1, looser SLO.
    ServeClass moe;
    moe.name = "moe";
    moe.tenant = "search";
    moe.priority = 1;
    moe.weight = 0.3;
    moe.slo_ns = 400'000;
    fused::MoeDispatchConfig disp;
    disp.tokens_per_pe = 128;
    disp.d_model = 256;
    disp.d_out = 256;
    disp.hot_expert_factor = 2.0;
    moe.chain.push_back(fw::make_spec("fcc::moe_dispatch", disp));
    catalog.push_back(std::move(moe));
  }

  {
    // Transformer decode step: row-parallel GEMV then the expert-combine
    // GEMM+A2A. Interactive chat: priority 0.
    ServeClass decode;
    decode.name = "decode";
    decode.tenant = "chat";
    decode.priority = 0;
    decode.weight = 0.2;
    decode.slo_ns = 300'000;
    fused::GemvAllReduceConfig qkv;
    qkv.m = 512;
    qkv.k_global = 256 * num_pes;
    decode.chain.push_back(fw::make_spec("fcc::gemv_allreduce", qkv));
    fused::GemmA2AConfig ffn;
    ffn.rows_per_origin = 64;
    ffn.d_model = 256;
    ffn.d_ff = 512;
    decode.chain.push_back(fw::make_spec("fcc::gemm_a2a", ffn));
    catalog.push_back(std::move(decode));
  }

  return catalog;
}

std::vector<int> class_priorities(const std::vector<ServeClass>& catalog) {
  std::vector<int> p;
  p.reserve(catalog.size());
  for (const ServeClass& c : catalog) p.push_back(c.priority);
  return p;
}

std::vector<double> class_weights(const std::vector<ServeClass>& catalog) {
  std::vector<double> w;
  w.reserve(catalog.size());
  for (const ServeClass& c : catalog) w.push_back(c.weight);
  return w;
}

}  // namespace fcc::serve

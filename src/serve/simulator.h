// serve::Simulator — an open-loop serving loop over the operator registry.
//
// Where fw::Session runs one operator per call and fw::Graph overlaps a
// handful of closed-loop requests, the serving simulator feeds an *open*
// stream of arrivals (serve/arrivals.h) into one long-running engine run:
// an arrival process admits requests into a continuous Batcher
// (serve/batcher.h), and a small pool of service lanes — host-side
// schedulers sharing one gpu::Machine — pulls batches and executes each
// class's op chain via awaitable FusedOp::spawn(). Every operator instance
// is constructed once (per lane x class x chain stage) and re-run for
// thousands of batches, which is what makes this layer the churn
// stress-test for spawn() reentrancy and FlagSet/FlagArray reuse.
//
// Accounting: per-request queue/service/total latency lands in both exact
// per-request records (golden determinism diffs) and streaming
// PercentileSketches per class (p50/p99/p999 at million-request scale
// without per-sample storage), with SLO-violation and admission-reject
// counters per tenant class.
//
// Time is run-relative: the engine clock at run() entry is the base, so
// back-to-back runs on one warm simulator report identical records for
// identical traces (asserted by tests/test_serve_churn.cc).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "framework/op_registry.h"
#include "fused/op_runtime.h"
#include "gpu/machine.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "serve/arrivals.h"
#include "serve/batcher.h"
#include "serve/catalog.h"
#include "shmem/world.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::serve {

/// Deadline handling for served batches. Disabled by default (slo_factor
/// 0): every batch runs once and its latency is whatever it is, the
/// pre-timeout behaviour. Enabled, a batch whose execution finishes after
/// `slo_factor x` its class SLO (measured from the oldest member's arrival)
/// is re-executed with exponential backoff up to `max_retries` times — the
/// model of a degraded fabric stalling a batch past usefulness and the
/// server trying again — and marked timed out when the budget is exhausted.
struct TimeoutPolicy {
  double slo_factor = 0.0;  // deadline = arrival + slo_factor * slo_ns; <= 0 off
  int max_retries = 1;
  TimeNs backoff_ns = 20'000;  // doubled per retry
};

/// Brownout-aware load shedding. The first `baseline_batches` per class
/// calibrate a healthy service-time baseline; afterwards an EMA tracks the
/// live service time, and while it drifts above `drift_factor x` baseline
/// the class sheds new arrivals at admission (before they ever queue).
/// Deterministic: the EMA is a pure function of the served-batch sequence.
struct BrownoutPolicy {
  bool enabled = false;
  double drift_factor = 2.0;
  double ema_alpha = 0.2;
  int baseline_batches = 4;
};

struct ServeConfig {
  BatchPolicy policy;
  /// Concurrent service lanes (batches in flight). Each lane owns its own
  /// operator instances, so lanes overlap on the machine the way Graph
  /// nodes do.
  int lanes = 2;
  fw::Backend backend = fw::Backend::kFused;
  TimeoutPolicy timeout;
  BrownoutPolicy brownout;
  /// Route each class chain through the planning pipeline at construction:
  /// per-stage fused/baseline choice on predicted win, ccl algorithm
  /// steering. Off = every stage runs on `backend` unchanged (the
  /// historical behaviour).
  bool planner = false;
  /// Optional shared PlanCache for chain plans; a warm cache makes a
  /// second simulator replay identical decisions with zero passes re-run.
  plan::PlanCache* plan_cache = nullptr;
};

/// Construction-time planning counters, RunStats-style. Copied into every
/// ServeReport so sweep tooling can log hit rates next to latency stats.
/// `planning_host_ns` is host wall-clock and is NOT part of the
/// determinism surface (byte-identical runs may differ there).
struct PlanSummary {
  int chains_planned = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t uncacheable = 0;
  int passes_run = 0;      // pass executions across all chains
  int fused_stages = 0;    // stages planned onto the fused backend
  int baseline_stages = 0; // stages planned onto the baseline
  int algo_overrides = 0;  // ccl algorithm choices applied
  double planning_host_ns = 0.0;
};

/// One request's exact timeline, run-relative ns. Rejected and shed
/// requests keep start/end at -1. Byte-comparable for determinism goldens.
struct RequestRecord {
  int id = 0;   // index in the arrival trace
  int cls = 0;  // catalog class
  TimeNs arrival = 0;
  TimeNs start = -1;  // batch service start (final attempt)
  TimeNs end = -1;    // batch service end (final attempt)
  int batch_size = 0;
  bool rejected = false;
  int attempts = 0;       // executions of the request's batch (0 if unserved)
  bool timed_out = false;  // retry budget exhausted past the deadline
  bool shed = false;       // dropped at admission by brownout shedding

  bool operator==(const RequestRecord&) const = default;

  TimeNs queue_ns() const { return start - arrival; }
  TimeNs service_ns() const { return end - start; }
  TimeNs total_ns() const { return end - arrival; }
};

struct ClassStats {
  PercentileSketch queue;    // ns
  PercentileSketch service;  // ns
  PercentileSketch total;    // ns
  std::int64_t completed = 0;  // served in time (excludes timeouts)
  std::int64_t rejected = 0;
  std::int64_t slo_violations = 0;
  std::int64_t timeouts = 0;  // served but past deadline after all retries
  std::int64_t retries = 0;   // extra batch executions (attempts - 1, summed)
  std::int64_t shed = 0;      // brownout admission drops

  bool operator==(const ClassStats&) const = default;
};

struct ServeReport {
  std::vector<RequestRecord> records;  // [trace index]
  std::vector<ClassStats> per_class;   // [cls]
  ClassStats overall;
  PlanSummary plan;  // construction-time planning counters
  TimeNs first_arrival = 0;
  TimeNs last_end = 0;

  /// Completed-request throughput over the span first_arrival..last_end.
  double achieved_rps() const;
};

class Simulator {
 public:
  /// `world` must be built over `machine`. Serial and sharded machines both
  /// work; a sharded machine must satisfy Machine::supports_fused_ops()
  /// (gpu.kernel_launch_ns >= the fabric's conservative lookahead — true
  /// for every stock fabric), checked here with an actionable message.
  /// Operator instances for every (lane, class, chain stage) are built here,
  /// once, through the global OpRegistry.
  Simulator(gpu::Machine& machine, shmem::World& world,
            std::vector<ServeClass> catalog, ServeConfig cfg = {});

  /// Replays `trace` (run-relative, time-sorted) to completion and returns
  /// the report. Callable repeatedly; a warm simulator reuses every
  /// operator, flag array, and engine slab from the previous run.
  ServeReport run(const std::vector<Arrival>& trace);

  const std::vector<ServeClass>& catalog() const { return catalog_; }
  const ServeConfig& config() const { return cfg_; }
  /// Construction-time planning counters (zeros when cfg.planner is off).
  const PlanSummary& plan_summary() const { return plan_summary_; }
  /// The planner's reports, one per class, in catalog order (empty when
  /// cfg.planner is off) — each explains every stage's accept/reject.
  const std::vector<plan::PlanReport>& plan_reports() const {
    return plan_reports_;
  }

 private:
  sim::Task arrival_proc(sim::Engine& engine,
                         const std::vector<Arrival>& trace);
  sim::Task lane_proc(sim::Engine& engine, int lane);
  sim::Co serve_batch(int lane, Batch batch);

  /// Brownout bookkeeping: feeds one served batch's service time into the
  /// class's baseline/EMA; queries whether admission is currently shedding.
  void note_service(int cls, TimeNs service_ns);
  bool browned_out(int cls) const;

  /// Plans every class chain through the pass pipeline, filling
  /// planned_chains_ with each stage's (possibly algorithm-steered) spec
  /// and chosen backend, and plan_summary_/plan_reports_ with the
  /// accounting. No-op when cfg_.planner is off.
  void plan_chains();

  gpu::Machine& machine_;
  shmem::World& world_;
  std::vector<ServeClass> catalog_;
  ServeConfig cfg_;
  /// [cls][stage] -> (spec, backend) the lanes execute; identity copy of
  /// the catalog chains on cfg_.backend unless the planner rewrote them.
  std::vector<std::vector<std::pair<fw::OpSpec, fw::Backend>>>
      planned_chains_;
  PlanSummary plan_summary_;
  std::vector<plan::PlanReport> plan_reports_;
  /// [lane][cls][stage]; built once, re-spawned per batch.
  std::vector<std::vector<std::vector<std::unique_ptr<fused::FusedOp>>>>
      lane_ops_;

  // ---- per-run state (valid only inside run()) ----
  TimeNs base_ = 0;  // engine time at run() entry; records are times - base_
  std::unique_ptr<Batcher> batcher_;
  std::unique_ptr<sim::Condition> work_;  // "queue state changed" broadcast
  bool closed_ = false;                   // arrival stream exhausted
  std::vector<RequestRecord> records_;
  // Brownout state, per class, reset each run.
  std::vector<double> ema_;          // live service-time EMA (ns)
  std::vector<TimeNs> base_sum_;     // calibration window sum
  std::vector<int> base_n_;          // calibration batches seen
};

}  // namespace fcc::serve

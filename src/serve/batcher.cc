#include "serve/batcher.h"

#include <utility>

#include "common/check.h"

namespace fcc::serve {

Batcher::Batcher(std::vector<int> class_priorities, BatchPolicy policy)
    : policy_(policy),
      priorities_(std::move(class_priorities)),
      queues_(priorities_.size()),
      skipped_(priorities_.size(), 0) {
  FCC_CHECK(!priorities_.empty());
  FCC_CHECK(policy_.max_batch >= 1);
  FCC_CHECK(policy_.window_ns >= 0);
  FCC_CHECK(policy_.queue_capacity >= 0);
  FCC_CHECK(policy_.starvation_limit >= 1);
}

bool Batcher::enqueue(const Request& r) {
  FCC_CHECK(r.cls >= 0 && r.cls < num_classes());
  auto& q = queues_[static_cast<std::size_t>(r.cls)];
  if (q.size() >= static_cast<std::size_t>(policy_.queue_capacity)) {
    return false;
  }
  // FIFO within a class requires monotone arrivals per class.
  FCC_DCHECK(q.empty() || q.back().arrival <= r.arrival);
  q.push_back(r);
  return true;
}

bool Batcher::dispatchable(int cls, TimeNs now) const {
  const auto& q = queues_[static_cast<std::size_t>(cls)];
  if (q.empty()) return false;
  if (q.size() >= static_cast<std::size_t>(policy_.max_batch)) return true;
  return q.front().arrival + policy_.window_ns <= now;
}

std::optional<Batch> Batcher::poll(TimeNs now) {
  // Pick the winner among dispatchable classes: a starved class first
  // (lowest class id among them — deterministic), else lowest
  // (priority, class id).
  int pick = -1;
  bool pick_starved = false;
  for (int c = 0; c < num_classes(); ++c) {
    if (!dispatchable(c, now)) continue;
    const bool starved =
        skipped_[static_cast<std::size_t>(c)] >= policy_.starvation_limit;
    if (pick < 0) {
      pick = c;
      pick_starved = starved;
      continue;
    }
    if (starved != pick_starved) {
      if (starved) {
        pick = c;
        pick_starved = true;
      }
      continue;
    }
    if (!starved &&
        priorities_[static_cast<std::size_t>(c)] <
            priorities_[static_cast<std::size_t>(pick)]) {
      pick = c;
    }
  }
  if (pick < 0) return std::nullopt;

  // Aging: every dispatchable class passed over this round ages one step;
  // the winner's counter rewinds.
  for (int c = 0; c < num_classes(); ++c) {
    if (c == pick) {
      skipped_[static_cast<std::size_t>(c)] = 0;
    } else if (dispatchable(c, now)) {
      ++skipped_[static_cast<std::size_t>(c)];
    }
  }

  auto& q = queues_[static_cast<std::size_t>(pick)];
  Batch b;
  b.cls = pick;
  const std::size_t take =
      std::min(q.size(), static_cast<std::size_t>(policy_.max_batch));
  b.reqs.assign(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(take));
  q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(take));
  return b;
}

TimeNs Batcher::next_deadline() const {
  TimeNs earliest = kNoDeadline;
  for (const auto& q : queues_) {
    if (q.empty()) continue;
    const TimeNs d = q.front().arrival + policy_.window_ns;
    if (earliest == kNoDeadline || d < earliest) earliest = d;
  }
  return earliest;
}

std::size_t Batcher::queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace fcc::serve

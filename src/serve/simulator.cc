#include "serve/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace fcc::serve {

double ServeReport::achieved_rps() const {
  const TimeNs span = last_end - first_arrival;
  if (span <= 0 || overall.completed == 0) return 0.0;
  return static_cast<double>(overall.completed) /
         (static_cast<double>(span) / 1e9);
}

Simulator::Simulator(gpu::Machine& machine, shmem::World& world,
                     std::vector<ServeClass> catalog, ServeConfig cfg)
    : machine_(machine),
      world_(world),
      catalog_(std::move(catalog)),
      cfg_(cfg) {
  FCC_CHECK_MSG(
      machine_.supports_fused_ops(),
      "serve::Simulator on a sharded machine needs kernel_launch_ns ("
          << machine_.config().gpu.kernel_launch_ns
          << ") >= the fabric's conservative lookahead ("
          << machine_.lookahead()
          << "): fused per-PE bodies spawn cross-shard at t + "
             "kernel_launch_ns. Raise gpu.kernel_launch_ns, pick a fabric "
             "with a smaller min inter-shard latency, or set num_shards=1");
  FCC_CHECK_MSG(&world_.machine() == &machine_,
                "world must be built over the simulator's machine");
  FCC_CHECK(!catalog_.empty());
  FCC_CHECK(cfg_.lanes >= 1);
  for (const ServeClass& c : catalog_) FCC_CHECK(!c.chain.empty());

  plan_chains();

  const fw::OpRegistry& registry = fw::OpRegistry::global();
  lane_ops_.resize(static_cast<std::size_t>(cfg_.lanes));
  for (auto& per_class : lane_ops_) {
    per_class.resize(catalog_.size());
    for (std::size_t c = 0; c < catalog_.size(); ++c) {
      for (const auto& [spec, backend] : planned_chains_[c]) {
        per_class[c].push_back(registry.at(spec.name).make(world_, spec,
                                                           backend));
      }
    }
  }
}

void Simulator::plan_chains() {
  planned_chains_.resize(catalog_.size());
  if (!cfg_.planner) {
    // Identity: every catalog stage on the configured backend.
    for (std::size_t c = 0; c < catalog_.size(); ++c) {
      for (const fw::OpSpec& spec : catalog_[c].chain) {
        planned_chains_[c].emplace_back(spec, cfg_.backend);
      }
    }
    return;
  }

  const std::int64_t hits0 =
      cfg_.plan_cache != nullptr ? cfg_.plan_cache->stats().hits : 0;
  const std::int64_t miss0 =
      cfg_.plan_cache != nullptr ? cfg_.plan_cache->stats().misses : 0;
  const std::int64_t unc0 =
      cfg_.plan_cache != nullptr ? cfg_.plan_cache->stats().uncacheable : 0;

  plan::Planner planner;
  plan::PlanOptions options;
  options.default_backend = cfg_.backend;
  options.cache = cfg_.plan_cache;
  for (std::size_t c = 0; c < catalog_.size(); ++c) {
    // Each chain is a linear graph: stage i's output feeds stage i+1.
    fw::Graph g;
    fw::TensorId prev{};
    for (std::size_t s = 0; s < catalog_[c].chain.size(); ++s) {
      auto out = g.tensor(catalog_[c].name + ".t" + std::to_string(s));
      std::vector<fw::TensorId> inputs;
      if (s > 0) inputs.push_back(prev);
      g.add(catalog_[c].chain[s], inputs, {out},
            catalog_[c].name + "#" + std::to_string(s));
      prev = out;
    }

    plan::Planned planned = planner.plan(g, machine_.config(), options);
    for (int id = 0; id < planned.graph.num_nodes(); ++id) {
      const fw::GraphNode& node = planned.graph.node(id);
      if (node.fused_away) continue;
      const fw::Backend backend =
          planned.plan.backends[static_cast<std::size_t>(id)];
      planned_chains_[c].emplace_back(node.spec, backend);
      if (backend == fw::Backend::kFused) {
        ++plan_summary_.fused_stages;
      } else {
        ++plan_summary_.baseline_stages;
      }
    }
    ++plan_summary_.chains_planned;
    plan_summary_.passes_run +=
        static_cast<int>(planned.report.passes.size());
    plan_summary_.algo_overrides +=
        static_cast<int>(planned.plan.allreduce_algos.size());
    plan_summary_.planning_host_ns += planned.report.planning_host_ns;
    plan_reports_.push_back(std::move(planned.report));
  }
  if (cfg_.plan_cache != nullptr) {
    plan_summary_.cache_hits = cfg_.plan_cache->stats().hits - hits0;
    plan_summary_.cache_misses = cfg_.plan_cache->stats().misses - miss0;
    plan_summary_.uncacheable = cfg_.plan_cache->stats().uncacheable - unc0;
  }
}

ServeReport Simulator::run(const std::vector<Arrival>& trace) {
  sim::Engine& engine = machine_.engine();
  FCC_CHECK_MSG(machine_.sharded().live_tasks() == 0,
                "serve run started with live engine tasks");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    FCC_CHECK(trace[i].cls >= 0 &&
              trace[i].cls < static_cast<int>(catalog_.size()));
    FCC_CHECK(trace[i].t >= 0);
    FCC_CHECK_MSG(i == 0 || trace[i - 1].t <= trace[i].t,
                  "arrival trace must be time-sorted");
  }

  base_ = engine.now();
  batcher_ = std::make_unique<Batcher>(class_priorities(catalog_),
                                       cfg_.policy);
  work_ = std::make_unique<sim::Condition>(engine);
  closed_ = false;
  records_.assign(trace.size(), RequestRecord{});
  ema_.assign(catalog_.size(), 0.0);
  base_sum_.assign(catalog_.size(), 0);
  base_n_.assign(catalog_.size(), 0);

  arrival_proc(engine, trace);
  for (int lane = 0; lane < cfg_.lanes; ++lane) lane_proc(engine, lane);
  machine_.run_all();

  FCC_CHECK_MSG(machine_.sharded().live_tasks() == 0,
                "serving run deadlocked: " << machine_.sharded().live_tasks()
                                           << " task(s) still suspended");
  FCC_CHECK(batcher_->empty());

  ServeReport report;
  report.records = std::move(records_);
  report.plan = plan_summary_;
  report.per_class.resize(catalog_.size());
  report.first_arrival = trace.empty() ? 0 : trace.front().t;
  for (const RequestRecord& r : report.records) {
    ClassStats& cs = report.per_class[static_cast<std::size_t>(r.cls)];
    if (r.shed) {
      ++cs.shed;
      ++report.overall.shed;
      continue;
    }
    if (r.rejected) {
      ++cs.rejected;
      ++report.overall.rejected;
      continue;
    }
    FCC_CHECK_MSG(r.end >= r.start && r.start >= r.arrival,
                  "request " << r.id << " has an inconsistent timeline");
    cs.retries += r.attempts - 1;
    report.overall.retries += r.attempts - 1;
    if (r.timed_out) {
      // Served too late to count: excluded from the latency sketches (their
      // tail would be the retry budget, not the service distribution), but
      // still paces last_end — the machine did the work.
      ++cs.timeouts;
      ++report.overall.timeouts;
      report.last_end = std::max(report.last_end, r.end);
      continue;
    }
    ++cs.completed;
    ++report.overall.completed;
    cs.queue.add(r.queue_ns());
    cs.service.add(r.service_ns());
    cs.total.add(r.total_ns());
    report.overall.queue.add(r.queue_ns());
    report.overall.service.add(r.service_ns());
    report.overall.total.add(r.total_ns());
    const TimeNs slo = catalog_[static_cast<std::size_t>(r.cls)].slo_ns;
    if (slo > 0 && r.total_ns() > slo) {
      ++cs.slo_violations;
      ++report.overall.slo_violations;
    }
    report.last_end = std::max(report.last_end, r.end);
  }

  work_.reset();
  batcher_.reset();
  return report;
}

sim::Task Simulator::arrival_proc(sim::Engine& engine,
                                  const std::vector<Arrival>& trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    co_await sim::delay_until(engine, base_ + trace[i].t);
    const Request r{static_cast<int>(i), trace[i].cls, trace[i].t};
    RequestRecord& rec = records_[i];
    rec.id = r.id;
    rec.cls = r.cls;
    rec.arrival = r.arrival;
    if (cfg_.brownout.enabled && browned_out(r.cls)) {
      rec.shed = true;
      continue;
    }
    if (!batcher_->enqueue(r)) {
      rec.rejected = true;
      continue;
    }
    // Wake idle lanes now (the queue may have just filled a batch) and
    // again when this request's batch window expires — by then the batch
    // must dispatch even partially filled. Stale expiry ticks after the
    // request is long served are harmless no-op broadcasts.
    work_->notify_all();
    engine.schedule_at(base_ + r.arrival + cfg_.policy.window_ns, [this] {
      if (work_ != nullptr) work_->notify_all();
    });
  }
  closed_ = true;
  work_->notify_all();
}

sim::Task Simulator::lane_proc(sim::Engine& engine, int lane) {
  for (;;) {
    std::optional<Batch> batch = batcher_->poll(engine.now() - base_);
    if (batch.has_value()) {
      co_await serve_batch(lane, std::move(*batch));
      continue;
    }
    if (closed_ && batcher_->empty()) break;
    co_await work_->wait();
  }
  // Wake sibling lanes so they observe the closed queue and exit too
  // (Condition FCC_CHECKs no waiters survive the run).
  work_->notify_all();
}

sim::Co Simulator::serve_batch(int lane, Batch batch) {
  sim::Engine& engine = machine_.engine();
  const TimeNs slo = catalog_[static_cast<std::size_t>(batch.cls)].slo_ns;
  const TimeNs deadline =
      cfg_.timeout.slo_factor > 0.0 && slo > 0
          ? batch.reqs.front().arrival +
                static_cast<TimeNs>(cfg_.timeout.slo_factor *
                                    static_cast<double>(slo))
          : -1;
  auto& chain =
      lane_ops_[static_cast<std::size_t>(lane)][static_cast<std::size_t>(
          batch.cls)];
  int attempts = 0;
  bool timed_out = false;
  TimeNs start = 0, end = 0;
  for (;;) {
    ++attempts;
    start = engine.now() - base_;
    for (auto& op : chain) {
      co_await op->spawn().wait();
    }
    end = engine.now() - base_;
    if (deadline < 0 || end <= deadline) break;
    if (attempts > cfg_.timeout.max_retries) {
      timed_out = true;
      break;
    }
    co_await sim::delay(engine, cfg_.timeout.backoff_ns << (attempts - 1));
  }
  note_service(batch.cls, end - start);
  for (const Request& r : batch.reqs) {
    RequestRecord& rec = records_[static_cast<std::size_t>(r.id)];
    rec.start = start;
    rec.end = end;
    rec.batch_size = static_cast<int>(batch.reqs.size());
    rec.attempts = attempts;
    rec.timed_out = timed_out;
  }
}

void Simulator::note_service(int cls, TimeNs service_ns) {
  if (!cfg_.brownout.enabled) return;
  const auto c = static_cast<std::size_t>(cls);
  if (base_n_[c] < cfg_.brownout.baseline_batches) {
    base_sum_[c] += service_ns;
    ++base_n_[c];
    ema_[c] = static_cast<double>(base_sum_[c]) / base_n_[c];
    return;
  }
  ema_[c] += cfg_.brownout.ema_alpha * (static_cast<double>(service_ns) -
                                        ema_[c]);
}

bool Simulator::browned_out(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  if (base_n_[c] < cfg_.brownout.baseline_batches) return false;
  const double healthy =
      static_cast<double>(base_sum_[c]) / base_n_[c];
  return ema_[c] > cfg_.brownout.drift_factor * healthy;
}

}  // namespace fcc::serve

// Open-loop arrival processes for the serving simulator.
//
// An arrival trace is plain data — (time, class) pairs, run-relative ns —
// so the simulator replays synthetic Poisson firehoses and captured traces
// through the same path, and the determinism suite can golden a trace and
// diff per-request records across runs and host thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace fcc::serve {

struct Arrival {
  TimeNs t = 0;  // run-relative arrival time
  int cls = 0;   // index into the simulator's class catalog

  bool operator==(const Arrival&) const = default;
};

/// Poisson process at `offered_rps` requests/second over `num_requests`
/// arrivals, each assigned a class by `class_weights` (unnormalized; one
/// weight per class). Deterministic in (seed, rps, n, weights): exponential
/// inter-arrival gaps quantized up to >= 1 ns, class drawn per arrival from
/// an independent stream.
std::vector<Arrival> poisson_trace(double offered_rps, int num_requests,
                                   std::uint64_t seed,
                                   const std::vector<double>& class_weights);

}  // namespace fcc::serve

// Request catalog: the op chains a serving class executes per batch.
//
// A ServeClass is one tenant-visible request type — a short chain of
// registry OpSpecs (dispatched through fw::OpRegistry, so any operator the
// framework knows is servable) plus the scheduling metadata the batcher and
// accounting need: priority, arrival-mix weight, and an SLO bound on total
// latency. Chains describe one *batch* execution at the class's configured
// shape — continuous batching packs up to `max_batch` requests into one
// chain run (a partially filled batch pads, as static-shape GPU serving
// does), so per-request service cost amortizes with batch fill.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "framework/op_registry.h"

namespace fcc::serve {

struct ServeClass {
  std::string name;    // e.g. "dlrm"
  std::string tenant;  // multi-tenant label, e.g. "ads"
  int priority = 0;    // lower = more urgent (Batcher order)
  double weight = 1.0; // unnormalized share of the arrival mix
  TimeNs slo_ns = 0;   // total-latency SLO; 0 = no SLO accounting
  std::vector<fw::OpSpec> chain;  // executed in order per batch
};

/// The default three-tenant mix, sized for quick timing-only runs on
/// `num_pes` PEs (every spec is functional=false, null data):
///   dlrm   — embedding+A2A then GEMV+AllReduce (ads, priority 0)
///   moe    — routed MoE dispatch               (search, priority 1)
///   decode — GEMV+AllReduce then GEMM+A2A      (chat, priority 0)
std::vector<ServeClass> default_catalog(int num_pes);

/// The classes' priorities in class order (Batcher constructor input).
std::vector<int> class_priorities(const std::vector<ServeClass>& catalog);

/// The classes' weights in class order (poisson_trace input).
std::vector<double> class_weights(const std::vector<ServeClass>& catalog);

}  // namespace fcc::serve

// Continuous (dynamic) batcher with admission control and priority classes.
//
// Pure host-side policy object — no engine, no coroutines — so the batching
// rules are property-testable in isolation (tests/test_serve_policy.cc) and
// the serving simulator stays a thin driver around it. All times are the
// caller's clock (the simulator passes run-relative virtual ns).
//
// Policy, in one paragraph: each priority class owns a bounded FIFO queue
// (enqueue past capacity is an admission reject). A class is *dispatchable*
// when it holds a full batch (`max_batch`) or its oldest request has waited
// out the batch window (`window_ns`) — the standard "close the batch on
// size or timeout" continuous-batching rule. Among dispatchable classes the
// lowest (priority, class id) wins, except that any class passed over
// `starvation_limit` times in a row is served first regardless of priority
// — a deterministic aging valve, so low-priority tenants are delayed but
// never starved.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/types.h"

namespace fcc::serve {

struct BatchPolicy {
  /// Requests per batch; a dispatchable class releases up to this many.
  int max_batch = 8;
  /// Oldest-request age at which a partial batch dispatches anyway.
  TimeNs window_ns = 2000;
  /// Per-class queue bound; enqueue past it is an admission reject. 0 is
  /// legal and rejects every request (a fully shedding server), never
  /// divides or hangs.
  int queue_capacity = 64;
  /// Consecutive pass-overs (while dispatchable) before a class preempts
  /// higher-priority classes.
  int starvation_limit = 4;
};

struct Request {
  int id = 0;
  int cls = 0;
  TimeNs arrival = 0;
};

struct Batch {
  int cls = 0;
  std::vector<Request> reqs;
};

class Batcher {
 public:
  /// `class_priorities[c]` is class c's priority (lower = more urgent).
  Batcher(std::vector<int> class_priorities, BatchPolicy policy);

  /// Admits `r` into its class queue; false (and no state change) when the
  /// queue is at capacity — the caller records an admission reject.
  bool enqueue(const Request& r);

  /// Releases the next batch under the policy, or nullopt if no class is
  /// dispatchable at `now`. Deterministic in (queue state, now).
  std::optional<Batch> poll(TimeNs now);

  /// Earliest time any currently-queued request's window expires, or
  /// kNoDeadline when all queues are empty. The simulator schedules its
  /// wakeups from this.
  static constexpr TimeNs kNoDeadline = -1;
  TimeNs next_deadline() const;

  std::size_t queued() const;
  bool empty() const { return queued() == 0; }
  int num_classes() const { return static_cast<int>(queues_.size()); }
  std::size_t queued(int cls) const {
    return queues_[static_cast<std::size_t>(cls)].size();
  }
  const BatchPolicy& policy() const { return policy_; }

 private:
  bool dispatchable(int cls, TimeNs now) const;

  BatchPolicy policy_;
  std::vector<int> priorities_;              // [cls]
  std::vector<std::deque<Request>> queues_;  // [cls] FIFO
  std::vector<int> skipped_;  // [cls] consecutive pass-overs while ready
};

}  // namespace fcc::serve

// Deterministic fault injection for hw topologies.
//
// A `FaultPlan` is a time-sorted list of `FaultEvent`s against named
// `FaultSite`s (links and NICs a `Topology` enumerates). Plans are applied
// two ways: immediately via `Topology::apply_fault` (tests, benches pinning
// a scenario), or scheduled onto a sim::Engine with `schedule_fault_plan`,
// where each event becomes an ordinary engine callback — chaos runs replay
// bit-identically because fault arrival is just another event in the
// deterministic (time, seq) order.
//
// Fault taxonomy (see docs/ARCHITECTURE.md "Fault model"):
//   kDead    component drops out; routes reroute where a legal alternative
//            exists (multi-rail -> surviving rails, torus -> detour), and
//            resolution throws PartitionedFabricError when none does.
//   kDerate  bandwidth multiplier in (0, 1] — an oversubscribed/browned-out
//            trunk. derate = 1.0 restores nominal bandwidth bit-exactly.
//   kJitter  added propagation latency on the component.
//   kRepair  full restore of the site to healthy.
//
// Healthy-path identity: a site at derate 1.0 / jitter 0 / alive computes
// byte-identical timings to a topology that never saw a FaultPlan (the
// derated bandwidth is stored pre-multiplied, and x * 1.0 == x, t + 0 == t
// in IEEE arithmetic) — asserted by tests/test_hw_fault.cc.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace fcc::sim {
class Engine;
}

namespace fcc::hw {

class Link;
class Nic;
class Topology;

enum class FaultKind {
  kDead,    // component drops out (can_die sites only)
  kDerate,  // wire bandwidth x `derate`
  kJitter,  // + `jitter_ns` propagation per message
  kRepair,  // restore the site to healthy
};

struct FaultEvent {
  TimeNs t = 0;  // plan-relative; schedule_fault_plan adds its base
  FaultKind kind = FaultKind::kDerate;
  int site = 0;          // index into Topology::fault_sites()
  double derate = 1.0;   // kDerate: multiplier in (0, 1]
  TimeNs jitter_ns = 0;  // kJitter

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // must be time-sorted

  static FaultPlan none() { return {}; }
  bool empty() const { return events.empty(); }

  /// FCC_CHECKs events are time-sorted, sites are in range, derates are in
  /// (0, 1], jitters non-negative, and kDead only targets can_die sites.
  void validate(Topology& topo) const;
};

/// One fault-capable component. Exactly one of `link` / `nic` is set; a NIC
/// site's derate/jitter apply to its wire, kDead drops the NIC whole.
struct FaultSite {
  std::string name;  // component name, stable across runs (bench keys)
  NodeId node = -1;
  Link* link = nullptr;
  Nic* nic = nullptr;
  /// False for sites that only ever derate/jitter (NIC wires: the NIC
  /// itself is the kill switch for that path).
  bool can_die = true;

  bool healthy() const;
};

/// Thrown by route resolution when no healthy path between the endpoints
/// exists (all rails dead, torus cut, dead switch trunk, dead node NIC).
class PartitionedFabricError : public std::runtime_error {
 public:
  PartitionedFabricError(const std::string& what, PeId src, PeId dst)
      : std::runtime_error(what), src_(src), dst_(dst) {}

  PeId src() const { return src_; }
  PeId dst() const { return dst_; }

 private:
  PeId src_;
  PeId dst_;
};

/// Knobs for `make_chaos_plan`. Defaults produce a survivable schedule
/// (derates + jitter, no kills) so serving chaos runs never partition.
struct ChaosSpec {
  int num_events = 4;
  TimeNs horizon_ns = 1'000'000;  // event times drawn uniform in [0, horizon)
  /// Fraction of events that kill a can_die site. Kills may partition a
  /// fabric with no redundant path — keep 0 unless the caller handles
  /// PartitionedFabricError.
  double kill_fraction = 0.0;
  double min_derate = 0.2;
  double max_derate = 0.9;
  TimeNs max_jitter_ns = 2000;
  /// Fraction of fault events that get a matching kRepair later in the
  /// horizon.
  double repair_fraction = 0.5;
};

/// Seeded random fault schedule over `topo`'s fault sites. Events are drawn
/// from a child stream forked off Rng(seed), so a caller sharing the seed
/// with traffic generation still gets independent, reproducible streams.
FaultPlan make_chaos_plan(Topology& topo, std::uint64_t seed,
                          const ChaosSpec& spec = {});

/// Schedules every event of `plan` at engine time `base + event.t` as a
/// plain engine callback applying the fault to `topo`. Both must outlive
/// the run. Validates the plan first.
void schedule_fault_plan(sim::Engine& engine, Topology& topo,
                         const FaultPlan& plan, TimeNs base);

}  // namespace fcc::hw

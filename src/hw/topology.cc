#include "hw/topology.h"

#include <algorithm>
#include <string>

namespace fcc::hw {

TimeNs Topology::reserve(const Route& route, Bytes bytes, TimeNs ready) {
  // Scale-up hops come before the NIC in every fabric here (e.g. a
  // switched node's uplink feeds the node NIC), so reserve them first;
  // the NIC then serializes the message off-node.
  TimeNs t = ready;
  if (!route.hops.empty()) {
    t = reserve_cut_through(route.hops, bytes, t, route.latency_ns);
  } else {
    t += route.latency_ns;
  }
  if (route.nic != nullptr) t = route.nic->post(t, bytes);
  return t;
}

TimeNs Topology::write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready) {
  Route& r = scratch();
  r.clear();
  resolve(src, dst, r);
  return reserve(r, bytes, ready);
}

Route& Topology::scratch() {
  static thread_local Route r;
  return r;
}

namespace {

/// Pure propagation floor of a resolved route: hop latencies plus, when the
/// route exits through a NIC, its descriptor-processing and wire latency.
/// Serialization (queueing, occupancy) only ever adds on top of this.
TimeNs route_latency_floor(const Route& r) {
  TimeNs lat = r.latency_ns;
  if (r.nic != nullptr) {
    lat += r.nic->spec().per_msg_proc_ns + r.nic->spec().wire_latency_ns;
  }
  return lat;
}

}  // namespace

TimeNs Topology::min_inter_shard_latency(const std::vector<int>& node_shard) {
  FCC_CHECK_MSG(static_cast<int>(node_shard.size()) == num_nodes(),
                "min_inter_shard_latency: partition covers "
                    << node_shard.size() << " nodes, topology has "
                    << num_nodes());
  TimeNs cross_min = -1;
  TimeNs any_min = -1;
  Route& r = scratch();
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      r.clear();
      resolve(a * gpus_per_node(), b * gpus_per_node(), r);
      const TimeNs lat = route_latency_floor(r);
      if (any_min < 0 || lat < any_min) any_min = lat;
      if (node_shard[static_cast<std::size_t>(a)] !=
              node_shard[static_cast<std::size_t>(b)] &&
          (cross_min < 0 || lat < cross_min)) {
        cross_min = lat;
      }
    }
  }
  FCC_CHECK_MSG(any_min >= 0,
                "min_inter_shard_latency needs >= 2 nodes, topology has "
                    << num_nodes());
  return cross_min >= 0 ? cross_min : any_min;
}

// ---------------------------------------------------------------------------
// FullyConnectedTopology

FullyConnectedTopology::FullyConnectedTopology(int num_nodes,
                                               int gpus_per_node,
                                               const FabricSpec& fabric,
                                               const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node) {
  FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                "FabricSpec: port bandwidth must be positive, got "
                    << fabric.port_bytes_per_ns);
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  fabrics_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    nics_.push_back(std::make_unique<Nic>("node" + std::to_string(n), ib));
  }
}

void FullyConnectedTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode:
      route.nic = nics_[static_cast<std::size_t>(node_of(src))].get();
      break;
  }
}

TimeNs FullyConnectedTopology::write_time(PeId src, PeId dst, Bytes bytes,
                                          TimeNs ready) {
  // Fabric::transfer / Nic::post keep their byte and message counters
  // accurate; both funnel into the same reservation primitives the generic
  // path uses.
  if (node_of(src) == node_of(dst)) {
    return fabrics_[static_cast<std::size_t>(node_of(src))]->transfer(
        local_index(src), local_index(dst), bytes, ready);
  }
  return nics_[static_cast<std::size_t>(node_of(src))]->post(ready, bytes);
}

// ---------------------------------------------------------------------------
// SwitchedTopology

SwitchedTopology::SwitchedTopology(int num_nodes, int gpus_per_node,
                                   const SwitchedSpec& spec, const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node), spec_(spec) {
  spec.validate();
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  const int pes = num_pes();
  up_.reserve(static_cast<std::size_t>(pes));
  down_.reserve(static_cast<std::size_t>(pes));
  for (PeId pe = 0; pe < pes; ++pe) {
    up_.push_back(std::make_unique<Link>("gpu" + std::to_string(pe) + ".up",
                                         spec.port_bytes_per_ns,
                                         /*latency_ns=*/0));
    down_.push_back(std::make_unique<Link>(
        "gpu" + std::to_string(pe) + ".down", spec.port_bytes_per_ns,
        /*latency_ns=*/0));
  }
  trunk_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    trunk_.push_back(
        spec.trunk_bytes_per_ns > 0
            ? std::make_unique<Link>("node" + std::to_string(n) + ".trunk",
                                     spec.trunk_bytes_per_ns,
                                     /*latency_ns=*/0)
            : nullptr);
    nics_.push_back(std::make_unique<Nic>("node" + std::to_string(n), ib));
  }
}

void SwitchedTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode: {
      route.hops.push_back(up_[static_cast<std::size_t>(src)].get());
      if (Link* t = trunk_[static_cast<std::size_t>(node_of(src))].get()) {
        route.hops.push_back(t);
      }
      route.hops.push_back(down_[static_cast<std::size_t>(dst)].get());
      route.latency_ns = 2 * spec_.hop_latency_ns;
      break;
    }
    case RouteClass::kInterNode:
      // Source uplink into the switch, then out through the node NIC.
      route.hops.push_back(up_[static_cast<std::size_t>(src)].get());
      route.latency_ns = spec_.hop_latency_ns;
      route.nic = nics_[static_cast<std::size_t>(node_of(src))].get();
      break;
  }
}

// ---------------------------------------------------------------------------
// MultiRailTopology

MultiRailTopology::MultiRailTopology(int num_nodes, int gpus_per_node,
                                     int rails, const FabricSpec& fabric,
                                     const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node), rails_(rails) {
  FCC_CHECK_MSG(rails >= 1, "MultiRailTopology: nic_rails must be >= 1, got "
                                << rails);
  FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                "FabricSpec: port bandwidth must be positive, got "
                    << fabric.port_bytes_per_ns);
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  fabrics_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes) *
                static_cast<std::size_t>(rails));
  for (NodeId n = 0; n < num_nodes; ++n) {
    fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    for (int r = 0; r < rails; ++r) {
      nics_.push_back(std::make_unique<Nic>(
          "node" + std::to_string(n) + ".rail" + std::to_string(r), ib));
    }
  }
}

void MultiRailTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode:
      route.nic = rail(node_of(src), local_index(src) % rails_);
      break;
  }
}

TimeNs MultiRailTopology::write_time(PeId src, PeId dst, Bytes bytes,
                                     TimeNs ready) {
  if (node_of(src) == node_of(dst)) {
    return fabrics_[static_cast<std::size_t>(node_of(src))]->transfer(
        local_index(src), local_index(dst), bytes, ready);
  }
  return rail(node_of(src), local_index(src) % rails_)->post(ready, bytes);
}

// ---------------------------------------------------------------------------
// TorusTopology

TorusTopology::TorusTopology(const TorusSpec& spec, int gpus_per_node,
                             const FabricSpec& fabric)
    : Topology(spec.num_nodes(), gpus_per_node), spec_(spec) {
  spec.validate();
  const int nodes = spec.num_nodes();
  links_.reserve(static_cast<std::size_t>(nodes) * 4);
  static const char* kDirName[] = {"+x", "-x", "+y", "-y"};
  for (NodeId n = 0; n < nodes; ++n) {
    for (int d = 0; d < 4; ++d) {
      // A 1-wide dimension has no ring; keep the slot null-free by
      // allocating anyway (it is simply never routed over).
      links_.push_back(std::make_unique<Link>(
          "node" + std::to_string(n) + "." + kDirName[d],
          spec.link_bytes_per_ns, /*latency_ns=*/0));
    }
  }
  if (gpus_per_node > 1) {
    FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                  "FabricSpec: port bandwidth must be positive, got "
                      << fabric.port_bytes_per_ns);
    fabrics_.reserve(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n) {
      fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    }
  }
}

namespace {

/// Signed shortest-direction step count around a ring of size `n` from `a`
/// to `b`: positive means walk +, negative walk -. Distance-n/2 ties split
/// by source parity so uniform traffic loads both directions evenly.
int ring_steps(int a, int b, int n, int tie_parity) {
  int fwd = b - a;
  if (fwd < 0) fwd += n;
  const int bwd = n - fwd;
  if (fwd < bwd) return fwd;
  if (bwd < fwd) return -bwd;
  return (tie_parity % 2 == 0) ? fwd : -bwd;  // fwd == bwd == n/2
}

}  // namespace

int TorusTopology::hop_count(NodeId src, NodeId dst) const {
  const int sx = node_x(src), sy = node_y(src);
  const int dx = node_x(dst), dy = node_y(dst);
  const int hx = std::abs(ring_steps(sx, dx, spec_.dim_x, sx + sy));
  const int hy = std::abs(ring_steps(sy, dy, spec_.dim_y, sx + sy));
  return hx + hy;
}

void TorusTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      FCC_CHECK_MSG(!fabrics_.empty(),
                    "torus intra-node route with gpus_per_node == 1");
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode: {
      // Dimension-ordered: walk the x ring to the destination column, then
      // the y ring to the destination row.
      const NodeId sn = node_of(src), dn = node_of(dst);
      int x = node_x(sn), y = node_y(sn);
      const int parity = x + y;
      int steps = ring_steps(x, node_x(dn), spec_.dim_x, parity);
      while (steps != 0) {
        const int dir = steps > 0 ? 0 : 1;  // +x / -x
        route.hops.push_back(link(node_at(x, y), dir));
        x = (x + (steps > 0 ? 1 : spec_.dim_x - 1)) % spec_.dim_x;
        steps += steps > 0 ? -1 : 1;
      }
      steps = ring_steps(y, node_y(dn), spec_.dim_y, parity);
      while (steps != 0) {
        const int dir = steps > 0 ? 2 : 3;  // +y / -y
        route.hops.push_back(link(node_at(x, y), dir));
        y = (y + (steps > 0 ? 1 : spec_.dim_y - 1)) % spec_.dim_y;
        steps += steps > 0 ? -1 : 1;
      }
      route.latency_ns =
          static_cast<TimeNs>(route.hops.size()) * spec_.link_latency_ns;
      break;
    }
  }
}

TimeNs TorusTopology::a2a_stage(bool along_x, Bytes per_pair, TimeNs start) {
  const int n = along_x ? spec_.dim_x : spec_.dim_y;
  if (n <= 1 || per_pair <= 0) return start;
  // Uniform ring A2A loads every directed link with per_pair * n^2 / 8
  // bytes (shortest-direction routing, distance-n/2 ties split evenly) —
  // the same busiest-link load the analytic schedule charges. The flow is
  // reserved as one drain window per directed link, which on an idle
  // topology reproduces TorusModel::ring_a2a_stage exactly.
  const double load = static_cast<double>(per_pair) * n * n / 8.0;
  const TimeNs dur = static_cast<TimeNs>(load / spec_.link_bytes_per_ns);
  const int rings = along_x ? spec_.dim_y : spec_.dim_x;
  TimeNs end = start;
  for (int ring = 0; ring < rings; ++ring) {
    for (int i = 0; i < n; ++i) {
      const NodeId node = along_x ? node_at(i, ring) : node_at(ring, i);
      for (int dir = along_x ? 0 : 2; dir <= (along_x ? 1 : 3); ++dir) {
        Link* l = link(node, dir);
        const TimeNs s = l->earliest_start(start);
        l->occupy_interval(s, s + dur);
        l->add_bytes(static_cast<Bytes>(load));
        end = std::max(end, s + dur);
      }
    }
  }
  return end + static_cast<TimeNs>(n / 2) * spec_.link_latency_ns;
}

TimeNs TorusTopology::flow_all_to_all_uniform(Bytes per_pair_bytes,
                                              TimeNs start) {
  FCC_CHECK(per_pair_bytes >= 0);
  if (num_nodes() <= 1 || per_pair_bytes == 0) return start;
  // Stage 1 moves column-aggregated traffic around the row rings, stage 2
  // distributes within the column rings (dimension-ordered).
  const TimeNs s1 =
      a2a_stage(/*along_x=*/true, per_pair_bytes * spec_.dim_y, start);
  return a2a_stage(/*along_x=*/false, per_pair_bytes * spec_.dim_x, s1);
}

TimeNs TorusTopology::ring_phase(bool along_x, double phase_bytes,
                                 bool forward, TimeNs start) {
  const int n = along_x ? spec_.dim_x : spec_.dim_y;
  if (n <= 1) return start;
  // Ring reduce-scatter / all-gather: n-1 steps of phase_bytes / n per
  // link, i.e. (n-1)/n * phase_bytes serialized per directed link.
  const double wire =
      phase_bytes * (n - 1) / n / spec_.link_bytes_per_ns;
  const TimeNs dur = static_cast<TimeNs>(wire);
  const int rings = along_x ? spec_.dim_y : spec_.dim_x;
  const int dir = along_x ? (forward ? 0 : 1) : (forward ? 2 : 3);
  TimeNs end = start;
  for (int ring = 0; ring < rings; ++ring) {
    for (int i = 0; i < n; ++i) {
      const NodeId node = along_x ? node_at(i, ring) : node_at(ring, i);
      Link* l = link(node, dir);
      const TimeNs s = l->earliest_start(start);
      l->occupy_interval(s, s + dur);
      l->add_bytes(static_cast<Bytes>(phase_bytes * (n - 1) / n));
      end = std::max(end, s + dur);
    }
  }
  return end + static_cast<TimeNs>(n - 1) * spec_.link_latency_ns;
}

TimeNs TorusTopology::flow_all_reduce(Bytes bytes, TimeNs start) {
  FCC_CHECK(bytes >= 0);
  if (num_nodes() <= 1 || bytes == 0) return start;
  const double b = static_cast<double>(bytes);
  // Themis-style 2D decomposition: reduce-scatter x with the full payload,
  // reduce-scatter y with 1/dim_x of it, then the mirrored all-gathers
  // (reverse direction, so both ring directions carry traffic).
  TimeNs t = ring_phase(/*along_x=*/true, b, /*forward=*/true, start);
  t = ring_phase(/*along_x=*/false, b / spec_.dim_x, /*forward=*/true, t);
  t = ring_phase(/*along_x=*/false, b / spec_.dim_x, /*forward=*/false, t);
  return ring_phase(/*along_x=*/true, b, /*forward=*/false, t);
}

// ---------------------------------------------------------------------------

std::unique_ptr<Topology> make_topology(const TopologySpec& spec,
                                        int num_nodes, int gpus_per_node,
                                        const FabricSpec& fabric,
                                        const IbSpec& ib) {
  switch (spec.kind) {
    case TopologySpec::Kind::kFullyConnected:
      return std::make_unique<FullyConnectedTopology>(num_nodes,
                                                      gpus_per_node, fabric,
                                                      ib);
    case TopologySpec::Kind::kSwitchedNode:
      return std::make_unique<SwitchedTopology>(num_nodes, gpus_per_node,
                                                spec.switched, ib);
    case TopologySpec::Kind::kMultiRail:
      return std::make_unique<MultiRailTopology>(num_nodes, gpus_per_node,
                                                 spec.nic_rails, fabric, ib);
    case TopologySpec::Kind::kTorus2D: {
      FCC_CHECK_MSG(spec.torus.num_nodes() == num_nodes,
                    "TopologySpec: torus dims "
                        << spec.torus.dim_x << "x" << spec.torus.dim_y
                        << " must cover num_nodes=" << num_nodes);
      return std::make_unique<TorusTopology>(spec.torus, gpus_per_node,
                                             fabric);
    }
  }
  FCC_CHECK_MSG(false, "unknown topology kind");
  return nullptr;
}

}  // namespace fcc::hw

#include "hw/topology.h"

#include <algorithm>
#include <string>

namespace fcc::hw {

TimeNs Topology::reserve(const Route& route, Bytes bytes, TimeNs ready) {
  // Scale-up hops come before the NIC in every fabric here (e.g. a
  // switched node's uplink feeds the node NIC), so reserve them first;
  // the NIC then serializes the message off-node.
  TimeNs t = ready;
  if (!route.hops.empty()) {
    t = reserve_cut_through(route.hops, bytes, t, route.latency_ns);
  } else {
    t += route.latency_ns;
  }
  if (route.nic != nullptr) t = route.nic->post(t, bytes);
  return t;
}

TimeNs Topology::write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready) {
  Route& r = scratch();
  r.clear();
  resolve(src, dst, r);
  return reserve(r, bytes, ready);
}

Route& Topology::scratch() {
  static thread_local Route r;
  return r;
}

// ---------------------------------------------------------------------------
// Fault injection & health (hw/fault.h)

const std::vector<FaultSite>& Topology::fault_sites() {
  if (!sites_built_) {
    collect_fault_sites(sites_);
    sites_built_ = true;
  }
  return sites_;
}

int Topology::fault_site_index(const std::string& name) {
  const auto& sites = fault_sites();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Topology::apply_fault(const FaultEvent& ev) {
  fault_sites();  // ensure built
  FCC_CHECK_MSG(ev.site >= 0 && ev.site < static_cast<int>(sites_.size()),
                kind_name() << ": fault site " << ev.site
                            << " out of range (have " << sites_.size()
                            << ")");
  FaultSite& s = sites_[static_cast<std::size_t>(ev.site)];
  // Derate/jitter against a NIC site land on its wire.
  Link* wire = s.link != nullptr ? s.link : &s.nic->wire_mutable();
  switch (ev.kind) {
    case FaultKind::kDead:
      FCC_CHECK_MSG(s.can_die, "fault site " << s.name
                                             << " cannot be killed (derate/"
                                                "jitter-only site)");
      if (s.nic != nullptr) {
        s.nic->set_dead(true);
      } else {
        s.link->set_dead(true);
      }
      break;
    case FaultKind::kDerate:
      wire->set_derate(ev.derate);
      break;
    case FaultKind::kJitter:
      wire->set_jitter(ev.jitter_ns);
      break;
    case FaultKind::kRepair:
      if (s.nic != nullptr) s.nic->set_dead(false);
      wire->restore();
      break;
  }
  faulted_ = 0;
  for (const FaultSite& site : sites_) {
    if (!site.healthy()) ++faulted_;
  }
  ++fault_epoch_;
  faults_changed();
}

std::vector<std::string> Topology::active_faults() {
  std::vector<std::string> out;
  for (const FaultSite& s : fault_sites()) {
    if (!s.healthy()) out.push_back(s.name);
  }
  return out;
}

std::vector<std::string> Topology::degraded_components(
    std::span<const PeId> pes) {
  std::vector<std::string> out;
  if (faulted_ == 0) return out;
  const auto& sites = fault_sites();

  std::vector<NodeId> nodes;
  for (PeId pe : pes) {
    const NodeId n = node_of(pe);
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
      nodes.push_back(n);
    }
  }
  std::sort(nodes.begin(), nodes.end());

  auto add = [&out](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  };

  // Unhealthy components on member nodes (dead/derated rails, switch ports)
  // hurt any algorithm whose lanes spread over the node's local GPUs.
  for (const FaultSite& s : sites) {
    if (s.healthy()) continue;
    if (std::binary_search(nodes.begin(), nodes.end(), s.node)) add(s.name);
  }

  // Routes between member-node pairs: ideal-path casualties the reroute is
  // detouring around, plus unhealthy components the actual route crosses
  // (derated trunks / torus links on intermediate nodes).
  Route r;
  std::vector<std::string> casualties;
  for (NodeId a : nodes) {
    for (NodeId b : nodes) {
      if (a == b) continue;
      casualties.clear();
      route_casualties(a, b, casualties);
      for (const std::string& c : casualties) add(c);
      r.clear();
      try {
        resolve(a * gpus_per_node(), b * gpus_per_node(), r);
      } catch (const PartitionedFabricError&) {
        continue;  // the dead components are already reported above
      }
      for (const Link* hop : r.hops) {
        if (!hop->healthy()) add(hop->name());
      }
      if (r.nic != nullptr && !r.nic->healthy()) add(r.nic->name());
    }
  }
  return out;
}

void Topology::guard_route(PeId src, PeId dst, Route& route) const {
  for (const Link* hop : route.hops) {
    if (hop->dead()) {
      throw PartitionedFabricError(
          "route pe" + std::to_string(src) + " -> pe" + std::to_string(dst) +
              " crosses dead link " + hop->name() + " (no alternative path)",
          src, dst);
    }
    route.latency_ns += hop->jitter_ns();
  }
  if (route.nic != nullptr && route.nic->dead()) {
    throw PartitionedFabricError(
        "route pe" + std::to_string(src) + " -> pe" + std::to_string(dst) +
            " needs dead NIC " + route.nic->name(),
        src, dst);
  }
}

namespace {

/// Pure propagation floor of a resolved route: hop latencies plus, when the
/// route exits through a NIC, its descriptor-processing and wire latency.
/// Serialization (queueing, occupancy) only ever adds on top of this.
TimeNs route_latency_floor(const Route& r) {
  TimeNs lat = r.latency_ns;
  if (r.nic != nullptr) {
    lat += r.nic->spec().per_msg_proc_ns + r.nic->spec().wire_latency_ns;
  }
  return lat;
}

}  // namespace

TimeNs Topology::min_inter_shard_latency(const std::vector<int>& node_shard) {
  FCC_CHECK_MSG(static_cast<int>(node_shard.size()) == num_nodes(),
                "min_inter_shard_latency: partition covers "
                    << node_shard.size() << " nodes, topology has "
                    << num_nodes());
  TimeNs cross_min = -1;
  TimeNs any_min = -1;
  Route& r = scratch();
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      r.clear();
      resolve(a * gpus_per_node(), b * gpus_per_node(), r);
      const TimeNs lat = route_latency_floor(r);
      if (any_min < 0 || lat < any_min) any_min = lat;
      if (node_shard[static_cast<std::size_t>(a)] !=
              node_shard[static_cast<std::size_t>(b)] &&
          (cross_min < 0 || lat < cross_min)) {
        cross_min = lat;
      }
    }
  }
  FCC_CHECK_MSG(any_min >= 0,
                "min_inter_shard_latency needs >= 2 nodes, topology has "
                    << num_nodes());
  return cross_min >= 0 ? cross_min : any_min;
}

// ---------------------------------------------------------------------------
// FullyConnectedTopology

FullyConnectedTopology::FullyConnectedTopology(int num_nodes,
                                               int gpus_per_node,
                                               const FabricSpec& fabric,
                                               const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node) {
  FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                "FabricSpec: port bandwidth must be positive, got "
                    << fabric.port_bytes_per_ns);
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  fabrics_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    nics_.push_back(std::make_unique<Nic>("node" + std::to_string(n), ib));
  }
}

void FullyConnectedTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode:
      route.nic = nics_[static_cast<std::size_t>(node_of(src))].get();
      break;
  }
  if (faulted()) guard_route(src, dst, route);
}

TimeNs FullyConnectedTopology::write_time(PeId src, PeId dst, Bytes bytes,
                                          TimeNs ready) {
  // Fabric::transfer / Nic::post keep their byte and message counters
  // accurate; both funnel into the same reservation primitives the generic
  // path uses.
  if (node_of(src) == node_of(dst)) {
    return fabrics_[static_cast<std::size_t>(node_of(src))]->transfer(
        local_index(src), local_index(dst), bytes, ready);
  }
  Nic* nic = nics_[static_cast<std::size_t>(node_of(src))].get();
  if (faulted() && nic->dead()) {
    throw PartitionedFabricError(
        "route pe" + std::to_string(src) + " -> pe" + std::to_string(dst) +
            " needs dead NIC " + nic->name(),
        src, dst);
  }
  return nic->post(ready, bytes);
}

void FullyConnectedTopology::collect_fault_sites(std::vector<FaultSite>& out) {
  // The NIC is the kill switch for a node's scale-out path; its wire is the
  // derate/jitter surface (a browned-out IB cable).
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Nic* nic = nics_[static_cast<std::size_t>(n)].get();
    out.push_back({nic->name(), n, nullptr, nic, /*can_die=*/true});
    out.push_back({nic->wire().name(), n, &nic->wire_mutable(), nullptr,
                   /*can_die=*/false});
  }
}

// ---------------------------------------------------------------------------
// SwitchedTopology

SwitchedTopology::SwitchedTopology(int num_nodes, int gpus_per_node,
                                   const SwitchedSpec& spec, const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node), spec_(spec) {
  spec.validate();
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  const int pes = num_pes();
  up_.reserve(static_cast<std::size_t>(pes));
  down_.reserve(static_cast<std::size_t>(pes));
  for (PeId pe = 0; pe < pes; ++pe) {
    up_.push_back(std::make_unique<Link>("gpu" + std::to_string(pe) + ".up",
                                         spec.port_bytes_per_ns,
                                         /*latency_ns=*/0));
    down_.push_back(std::make_unique<Link>(
        "gpu" + std::to_string(pe) + ".down", spec.port_bytes_per_ns,
        /*latency_ns=*/0));
  }
  trunk_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    trunk_.push_back(
        spec.trunk_bytes_per_ns > 0
            ? std::make_unique<Link>("node" + std::to_string(n) + ".trunk",
                                     spec.trunk_bytes_per_ns,
                                     /*latency_ns=*/0)
            : nullptr);
    nics_.push_back(std::make_unique<Nic>("node" + std::to_string(n), ib));
  }
}

void SwitchedTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode: {
      route.hops.push_back(up_[static_cast<std::size_t>(src)].get());
      if (Link* t = trunk_[static_cast<std::size_t>(node_of(src))].get()) {
        route.hops.push_back(t);
      }
      route.hops.push_back(down_[static_cast<std::size_t>(dst)].get());
      route.latency_ns = 2 * spec_.hop_latency_ns;
      break;
    }
    case RouteClass::kInterNode:
      // Source uplink into the switch, then out through the node NIC.
      route.hops.push_back(up_[static_cast<std::size_t>(src)].get());
      route.latency_ns = spec_.hop_latency_ns;
      route.nic = nics_[static_cast<std::size_t>(node_of(src))].get();
      break;
  }
  if (faulted()) guard_route(src, dst, route);
}

void SwitchedTopology::collect_fault_sites(std::vector<FaultSite>& out) {
  // Per-GPU switch ports (a dead downlink isolates that GPU's ingress), the
  // shared trunk when modelled, and the node NIC + wire.
  for (PeId pe = 0; pe < num_pes(); ++pe) {
    const NodeId n = node_of(pe);
    out.push_back({up_[static_cast<std::size_t>(pe)]->name(), n,
                   up_[static_cast<std::size_t>(pe)].get(), nullptr,
                   /*can_die=*/true});
    out.push_back({down_[static_cast<std::size_t>(pe)]->name(), n,
                   down_[static_cast<std::size_t>(pe)].get(), nullptr,
                   /*can_die=*/true});
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (Link* t = trunk_[static_cast<std::size_t>(n)].get()) {
      out.push_back({t->name(), n, t, nullptr, /*can_die=*/true});
    }
    Nic* nic = nics_[static_cast<std::size_t>(n)].get();
    out.push_back({nic->name(), n, nullptr, nic, /*can_die=*/true});
    out.push_back({nic->wire().name(), n, &nic->wire_mutable(), nullptr,
                   /*can_die=*/false});
  }
}

// ---------------------------------------------------------------------------
// MultiRailTopology

MultiRailTopology::MultiRailTopology(int num_nodes, int gpus_per_node,
                                     int rails, const FabricSpec& fabric,
                                     const IbSpec& ib)
    : Topology(num_nodes, gpus_per_node), rails_(rails) {
  FCC_CHECK_MSG(rails >= 1, "MultiRailTopology: nic_rails must be >= 1, got "
                                << rails);
  FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                "FabricSpec: port bandwidth must be positive, got "
                    << fabric.port_bytes_per_ns);
  FCC_CHECK_MSG(ib.wire_bytes_per_ns > 0,
                "IbSpec: wire bandwidth must be positive, got "
                    << ib.wire_bytes_per_ns);
  fabrics_.reserve(static_cast<std::size_t>(num_nodes));
  nics_.reserve(static_cast<std::size_t>(num_nodes) *
                static_cast<std::size_t>(rails));
  for (NodeId n = 0; n < num_nodes; ++n) {
    fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    for (int r = 0; r < rails; ++r) {
      nics_.push_back(std::make_unique<Nic>(
          "node" + std::to_string(n) + ".rail" + std::to_string(r), ib));
    }
  }
}

void MultiRailTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode:
      route.nic = faulted() ? alive_rail(src, dst)
                            : rail(node_of(src), local_index(src) % rails_);
      break;
  }
}

TimeNs MultiRailTopology::write_time(PeId src, PeId dst, Bytes bytes,
                                     TimeNs ready) {
  if (node_of(src) == node_of(dst)) {
    return fabrics_[static_cast<std::size_t>(node_of(src))]->transfer(
        local_index(src), local_index(dst), bytes, ready);
  }
  Nic* nic = faulted() ? alive_rail(src, dst)
                       : rail(node_of(src), local_index(src) % rails_);
  return nic->post(ready, bytes);
}

Nic* MultiRailTopology::alive_rail(PeId src, PeId dst) {
  const NodeId node = node_of(src);
  const int base = local_index(src) % rails_;
  for (int k = 0; k < rails_; ++k) {
    Nic* cand = rail(node, (base + k) % rails_);
    if (!cand->dead()) return cand;
  }
  throw PartitionedFabricError(
      "route pe" + std::to_string(src) + " -> pe" + std::to_string(dst) +
          ": all " + std::to_string(rails_) + " rails of node" +
          std::to_string(node) + " are dead",
      src, dst);
}

void MultiRailTopology::collect_fault_sites(std::vector<FaultSite>& out) {
  // Rails are the canonical redundant component: killing one exercises
  // failover onto the surviving rails, killing all partitions the node.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (int r = 0; r < rails_; ++r) {
      Nic* nic = rail(n, r);
      out.push_back({nic->name(), n, nullptr, nic, /*can_die=*/true});
      out.push_back({nic->wire().name(), n, &nic->wire_mutable(), nullptr,
                     /*can_die=*/false});
    }
  }
}

// ---------------------------------------------------------------------------
// TorusTopology

TorusTopology::TorusTopology(const TorusSpec& spec, int gpus_per_node,
                             const FabricSpec& fabric)
    : Topology(spec.num_nodes(), gpus_per_node), spec_(spec) {
  spec.validate();
  const int nodes = spec.num_nodes();
  links_.reserve(static_cast<std::size_t>(nodes) * 4);
  static const char* kDirName[] = {"+x", "-x", "+y", "-y"};
  for (NodeId n = 0; n < nodes; ++n) {
    for (int d = 0; d < 4; ++d) {
      // A 1-wide dimension has no ring; keep the slot null-free by
      // allocating anyway (it is simply never routed over).
      links_.push_back(std::make_unique<Link>(
          "node" + std::to_string(n) + "." + kDirName[d],
          spec.link_bytes_per_ns, /*latency_ns=*/0));
    }
  }
  if (gpus_per_node > 1) {
    FCC_CHECK_MSG(fabric.port_bytes_per_ns > 0,
                  "FabricSpec: port bandwidth must be positive, got "
                      << fabric.port_bytes_per_ns);
    fabrics_.reserve(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n) {
      fabrics_.push_back(std::make_unique<Fabric>(gpus_per_node, fabric));
    }
  }
}

namespace {

/// Signed shortest-direction step count around a ring of size `n` from `a`
/// to `b`: positive means walk +, negative walk -. Distance-n/2 ties split
/// by source parity so uniform traffic loads both directions evenly.
int ring_steps(int a, int b, int n, int tie_parity) {
  int fwd = b - a;
  if (fwd < 0) fwd += n;
  const int bwd = n - fwd;
  if (fwd < bwd) return fwd;
  if (bwd < fwd) return -bwd;
  return (tie_parity % 2 == 0) ? fwd : -bwd;  // fwd == bwd == n/2
}

/// Walks the dimension-ordered route from node `sn` to `dn`, calling
/// fn(node, dir) for each hop taken (dir: 0=+x, 1=-x, 2=+y, 3=-y). Tie
/// parity is always the source node's x+y, matching the historical route
/// choice regardless of dimension order; `x_first=false` gives the y-then-x
/// mirror the degraded router tries as its first detour.
template <typename Fn>
void dor_walk(const TorusSpec& spec, NodeId sn, NodeId dn, bool x_first,
              Fn&& fn) {
  int x = sn % spec.dim_x, y = sn / spec.dim_x;
  const int dx = dn % spec.dim_x, dy = dn / spec.dim_x;
  const int parity = x + y;
  auto walk_x = [&] {
    int steps = ring_steps(x, dx, spec.dim_x, parity);
    while (steps != 0) {
      const int dir = steps > 0 ? 0 : 1;  // +x / -x
      fn(static_cast<NodeId>(y * spec.dim_x + x), dir);
      x = (x + (steps > 0 ? 1 : spec.dim_x - 1)) % spec.dim_x;
      steps += steps > 0 ? -1 : 1;
    }
  };
  auto walk_y = [&] {
    int steps = ring_steps(y, dy, spec.dim_y, parity);
    while (steps != 0) {
      const int dir = steps > 0 ? 2 : 3;  // +y / -y
      fn(static_cast<NodeId>(y * spec.dim_x + x), dir);
      y = (y + (steps > 0 ? 1 : spec.dim_y - 1)) % spec.dim_y;
      steps += steps > 0 ? -1 : 1;
    }
  };
  if (x_first) {
    walk_x();
    walk_y();
  } else {
    walk_y();
    walk_x();
  }
}

}  // namespace

int TorusTopology::hop_count(NodeId src, NodeId dst) const {
  const int sx = node_x(src), sy = node_y(src);
  const int dx = node_x(dst), dy = node_y(dst);
  const int hx = std::abs(ring_steps(sx, dx, spec_.dim_x, sx + sy));
  const int hy = std::abs(ring_steps(sy, dy, spec_.dim_y, sx + sy));
  return hx + hy;
}

void TorusTopology::resolve(PeId src, PeId dst, Route& route) {
  route.cls = route_class(src, dst);
  switch (route.cls) {
    case RouteClass::kSelf:
      break;
    case RouteClass::kIntraNode:
      FCC_CHECK_MSG(!fabrics_.empty(),
                    "torus intra-node route with gpus_per_node == 1");
      add_fabric_hops(*fabrics_[static_cast<std::size_t>(node_of(src))], src,
                      dst, route);
      break;
    case RouteClass::kInterNode: {
      if (faulted()) {
        degraded_route(src, dst, route);
        break;
      }
      // Dimension-ordered: walk the x ring to the destination column, then
      // the y ring to the destination row.
      dor_walk(spec_, node_of(src), node_of(dst), /*x_first=*/true,
               [&](NodeId node, int dir) {
                 route.hops.push_back(link(node, dir));
               });
      route.latency_ns =
          static_cast<TimeNs>(route.hops.size()) * spec_.link_latency_ns;
      break;
    }
  }
}

NodeId TorusTopology::neighbor(NodeId n, int dir) const {
  int x = node_x(n), y = node_y(n);
  switch (dir) {
    case 0: x = (x + 1) % spec_.dim_x; break;
    case 1: x = (x + spec_.dim_x - 1) % spec_.dim_x; break;
    case 2: y = (y + 1) % spec_.dim_y; break;
    default: y = (y + spec_.dim_y - 1) % spec_.dim_y; break;
  }
  return node_at(x, y);
}

void TorusTopology::degraded_route(PeId src, PeId dst, Route& route) {
  const NodeId sn = node_of(src), dn = node_of(dst);
  const std::size_t nodes = static_cast<std::size_t>(num_nodes());
  if (detour_dirs_.empty()) detour_dirs_.resize(nodes * nodes);
  std::vector<std::uint8_t>& dirs =
      detour_dirs_[static_cast<std::size_t>(sn) * nodes +
                   static_cast<std::size_t>(dn)];
  // An inter-node route has >= 1 hop, so empty means "not yet computed".
  if (dirs.empty()) dirs = compute_detour(sn, dn, src, dst);
  NodeId n = sn;
  TimeNs jitter = 0;
  for (std::uint8_t d : dirs) {
    Link* l = link(n, d);
    route.hops.push_back(l);
    jitter += l->jitter_ns();
    n = neighbor(n, d);
  }
  route.latency_ns =
      static_cast<TimeNs>(route.hops.size()) * spec_.link_latency_ns + jitter;
}

std::vector<std::uint8_t> TorusTopology::compute_detour(NodeId sn, NodeId dn,
                                                        PeId src, PeId dst) {
  // Minimal-hop candidates first: the canonical x-then-y route, then its
  // y-then-x mirror (dodges a dead link in the other dimension's ring).
  for (bool x_first : {true, false}) {
    std::vector<std::uint8_t> dirs;
    bool alive = true;
    dor_walk(spec_, sn, dn, x_first, [&](NodeId node, int dir) {
      if (link(node, dir)->dead()) alive = false;
      dirs.push_back(static_cast<std::uint8_t>(dir));
    });
    if (alive) return dirs;
  }
  // Deterministic BFS over alive links (fixed direction order), shortest
  // surviving path by hop count.
  const int nodes = num_nodes();
  std::vector<int> prev(static_cast<std::size_t>(nodes), -1);
  std::vector<std::uint8_t> prev_dir(static_cast<std::size_t>(nodes), 0);
  std::vector<NodeId> queue;
  queue.push_back(sn);
  prev[static_cast<std::size_t>(sn)] = sn;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId n = queue[head];
    if (n == dn) break;
    for (int dir = 0; dir < 4; ++dir) {
      if (dir < 2 ? spec_.dim_x <= 1 : spec_.dim_y <= 1) continue;
      if (link(n, dir)->dead()) continue;
      const NodeId m = neighbor(n, dir);
      if (prev[static_cast<std::size_t>(m)] >= 0) continue;
      prev[static_cast<std::size_t>(m)] = n;
      prev_dir[static_cast<std::size_t>(m)] = static_cast<std::uint8_t>(dir);
      queue.push_back(m);
    }
  }
  if (prev[static_cast<std::size_t>(dn)] < 0) {
    throw PartitionedFabricError(
        "torus partitioned: no alive path node" + std::to_string(sn) +
            " -> node" + std::to_string(dn) + " (pe" + std::to_string(src) +
            " -> pe" + std::to_string(dst) + ")",
        src, dst);
  }
  std::vector<std::uint8_t> dirs;
  for (NodeId n = dn; n != sn; n = prev[static_cast<std::size_t>(n)]) {
    dirs.push_back(prev_dir[static_cast<std::size_t>(n)]);
  }
  std::reverse(dirs.begin(), dirs.end());
  return dirs;
}

void TorusTopology::route_casualties(NodeId src_node, NodeId dst_node,
                                     std::vector<std::string>& out) {
  dor_walk(spec_, src_node, dst_node, /*x_first=*/true,
           [&](NodeId node, int dir) {
             Link* l = link(node, dir);
             if (l->dead()) out.push_back(l->name());
           });
}

void TorusTopology::collect_fault_sites(std::vector<FaultSite>& out) {
  // Only directions with a real ring; a 1-wide dimension's links exist but
  // are never routed over, so faulting them would be dead code.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (int d = 0; d < 4; ++d) {
      if (d < 2 ? spec_.dim_x <= 1 : spec_.dim_y <= 1) continue;
      Link* l = link(n, d);
      out.push_back({l->name(), n, l, nullptr, /*can_die=*/true});
    }
  }
}

TimeNs TorusTopology::a2a_stage(bool along_x, Bytes per_pair, TimeNs start) {
  const int n = along_x ? spec_.dim_x : spec_.dim_y;
  if (n <= 1 || per_pair <= 0) return start;
  // Uniform ring A2A loads every directed link with per_pair * n^2 / 8
  // bytes (shortest-direction routing, distance-n/2 ties split evenly) —
  // the same busiest-link load the analytic schedule charges. The flow is
  // reserved as one drain window per directed link, which on an idle
  // topology reproduces TorusModel::ring_a2a_stage exactly.
  const double load = static_cast<double>(per_pair) * n * n / 8.0;
  const TimeNs dur = static_cast<TimeNs>(load / spec_.link_bytes_per_ns);
  const int rings = along_x ? spec_.dim_y : spec_.dim_x;
  TimeNs end = start;
  for (int ring = 0; ring < rings; ++ring) {
    for (int i = 0; i < n; ++i) {
      const NodeId node = along_x ? node_at(i, ring) : node_at(ring, i);
      for (int dir = along_x ? 0 : 2; dir <= (along_x ? 1 : 3); ++dir) {
        Link* l = link(node, dir);
        const TimeNs s = l->earliest_start(start);
        l->occupy_interval(s, s + dur);
        l->add_bytes(static_cast<Bytes>(load));
        end = std::max(end, s + dur);
      }
    }
  }
  return end + static_cast<TimeNs>(n / 2) * spec_.link_latency_ns;
}

TimeNs TorusTopology::flow_all_to_all_uniform(Bytes per_pair_bytes,
                                              TimeNs start) {
  FCC_CHECK(per_pair_bytes >= 0);
  if (num_nodes() <= 1 || per_pair_bytes == 0) return start;
  // Stage 1 moves column-aggregated traffic around the row rings, stage 2
  // distributes within the column rings (dimension-ordered).
  const TimeNs s1 =
      a2a_stage(/*along_x=*/true, per_pair_bytes * spec_.dim_y, start);
  return a2a_stage(/*along_x=*/false, per_pair_bytes * spec_.dim_x, s1);
}

TimeNs TorusTopology::ring_phase(bool along_x, double phase_bytes,
                                 bool forward, TimeNs start) {
  const int n = along_x ? spec_.dim_x : spec_.dim_y;
  if (n <= 1) return start;
  // Ring reduce-scatter / all-gather: n-1 steps of phase_bytes / n per
  // link, i.e. (n-1)/n * phase_bytes serialized per directed link.
  const double wire =
      phase_bytes * (n - 1) / n / spec_.link_bytes_per_ns;
  const TimeNs dur = static_cast<TimeNs>(wire);
  const int rings = along_x ? spec_.dim_y : spec_.dim_x;
  const int dir = along_x ? (forward ? 0 : 1) : (forward ? 2 : 3);
  TimeNs end = start;
  for (int ring = 0; ring < rings; ++ring) {
    for (int i = 0; i < n; ++i) {
      const NodeId node = along_x ? node_at(i, ring) : node_at(ring, i);
      Link* l = link(node, dir);
      const TimeNs s = l->earliest_start(start);
      l->occupy_interval(s, s + dur);
      l->add_bytes(static_cast<Bytes>(phase_bytes * (n - 1) / n));
      end = std::max(end, s + dur);
    }
  }
  return end + static_cast<TimeNs>(n - 1) * spec_.link_latency_ns;
}

TimeNs TorusTopology::flow_all_reduce(Bytes bytes, TimeNs start) {
  FCC_CHECK(bytes >= 0);
  if (num_nodes() <= 1 || bytes == 0) return start;
  const double b = static_cast<double>(bytes);
  // Themis-style 2D decomposition: reduce-scatter x with the full payload,
  // reduce-scatter y with 1/dim_x of it, then the mirrored all-gathers
  // (reverse direction, so both ring directions carry traffic).
  TimeNs t = ring_phase(/*along_x=*/true, b, /*forward=*/true, start);
  t = ring_phase(/*along_x=*/false, b / spec_.dim_x, /*forward=*/true, t);
  t = ring_phase(/*along_x=*/false, b / spec_.dim_x, /*forward=*/false, t);
  return ring_phase(/*along_x=*/true, b, /*forward=*/false, t);
}

// ---------------------------------------------------------------------------

std::unique_ptr<Topology> make_topology(const TopologySpec& spec,
                                        int num_nodes, int gpus_per_node,
                                        const FabricSpec& fabric,
                                        const IbSpec& ib) {
  switch (spec.kind) {
    case TopologySpec::Kind::kFullyConnected:
      return std::make_unique<FullyConnectedTopology>(num_nodes,
                                                      gpus_per_node, fabric,
                                                      ib);
    case TopologySpec::Kind::kSwitchedNode:
      return std::make_unique<SwitchedTopology>(num_nodes, gpus_per_node,
                                                spec.switched, ib);
    case TopologySpec::Kind::kMultiRail:
      return std::make_unique<MultiRailTopology>(num_nodes, gpus_per_node,
                                                 spec.nic_rails, fabric, ib);
    case TopologySpec::Kind::kTorus2D: {
      FCC_CHECK_MSG(spec.torus.num_nodes() == num_nodes,
                    "TopologySpec: torus dims "
                        << spec.torus.dim_x << "x" << spec.torus.dim_y
                        << " must cover num_nodes=" << num_nodes);
      return std::make_unique<TorusTopology>(spec.torus, gpus_per_node,
                                             fabric);
    }
  }
  FCC_CHECK_MSG(false, "unknown topology kind");
  return nullptr;
}

}  // namespace fcc::hw

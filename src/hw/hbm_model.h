// HBM bandwidth-contention model.
//
// Effective aggregate bandwidth as a function of concurrently active WGs:
//
//   f = active / max_slots          (occupancy fraction)
//   f <= knee:  BW(f) = peak * (base + (1 - base) * f / knee)
//   f >  knee:  BW(f) = peak * (1 - degrade * (f - knee) / (1 - knee))
//
// The ramp models memory-level parallelism: a single WG already extracts
// `base` of peak (deep per-WG MLP), and the device saturates at the knee.
// `degrade` models row-buffer/queueing losses past the knee and is a
// *kernel property* (memory-intensive fused kernels set it > 0; compute
// kernels leave it 0). This one curve reproduces the paper's Fig. 13:
// execution time falls 25% -> 75% occupancy, then rises at 87.5%.
#pragma once

#include <algorithm>

#include "common/check.h"

namespace fcc::hw {

struct HbmCurve {
  double base_frac = 0.31;   // fraction of peak from minimal occupancy
  double knee_frac = 0.75;   // occupancy fraction where BW saturates
  double over_knee_degrade = 0.40;  // loss at 100% occupancy (0 = flat)
};

class HbmModel {
 public:
  HbmModel(double peak_bytes_per_ns, int max_wg_slots)
      : peak_(peak_bytes_per_ns), max_slots_(max_wg_slots) {
    FCC_CHECK(peak_ > 0);
    FCC_CHECK(max_slots_ > 0);
  }

  double peak() const { return peak_; }
  int max_slots() const { return max_slots_; }

  /// Aggregate deliverable bandwidth with `active` concurrently running WGs.
  double total_bandwidth(int active, const HbmCurve& c = {}) const {
    if (active <= 0) return 0.0;
    const double f = std::min(
        1.0, static_cast<double>(active) / static_cast<double>(max_slots_));
    if (f <= c.knee_frac) {
      return peak_ * (c.base_frac + (1.0 - c.base_frac) * f / c.knee_frac);
    }
    const double over = (f - c.knee_frac) / (1.0 - c.knee_frac);
    return peak_ * (1.0 - c.over_knee_degrade * over);
  }

  /// Bandwidth one WG sees when `active` WGs are running.
  double per_wg_bandwidth(int active, const HbmCurve& c = {}) const {
    FCC_CHECK(active > 0);
    return total_bandwidth(active, c) / static_cast<double>(active);
  }

 private:
  double peak_;
  int max_slots_;
};

}  // namespace fcc::hw

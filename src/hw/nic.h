// RDMA NIC model.
//
// A posted message is (1) serialized through the NIC's descriptor processor
// (per-message cost), then (2) serialized over the wire at link bandwidth,
// then (3) delivered after the wire latency. The GPU-side posting overhead
// (doorbell from a kernel) is charged to the issuing WG by the shmem layer,
// not here, because it consumes GPU time rather than NIC time.
#pragma once

#include <string>

#include "common/types.h"
#include "hw/gpu_spec.h"
#include "hw/link.h"

namespace fcc::hw {

class Nic {
 public:
  Nic(std::string name, const IbSpec& spec)
      : name_(std::move(name)),
        spec_(spec),
        wire_(name_ + ".wire", spec.wire_bytes_per_ns, spec.wire_latency_ns) {}

  const std::string& name() const { return name_; }
  const IbSpec& spec() const { return spec_; }

  /// Posts one RDMA write of `bytes`, ready at `ready`. Returns the time the
  /// payload is fully visible in remote memory. Routing must never post
  /// through a dead NIC (resolution fails over or throws
  /// PartitionedFabricError first).
  TimeNs post(TimeNs ready, Bytes bytes) {
    FCC_DCHECK(!dead_);
    const TimeNs proc_start = ready > proc_free_ ? ready : proc_free_;
    const TimeNs proc_end = proc_start + spec_.per_msg_proc_ns;
    proc_free_ = proc_end;
    ++messages_;
    return wire_.submit(proc_end, bytes);
  }

  std::int64_t messages() const { return messages_; }
  const Link& wire() const { return wire_; }

  // ---- fault-injection health (hw/fault.h) --------------------------------
  // Derate/jitter faults against a NIC site land on its wire; kDead drops
  // the whole NIC (rail failure), which multi-rail routing fails over.
  bool dead() const { return dead_; }
  void set_dead(bool dead) { dead_ = dead; }
  bool healthy() const { return !dead_ && wire_.healthy(); }
  Link& wire_mutable() { return wire_; }

 private:
  std::string name_;
  IbSpec spec_;
  Link wire_;
  TimeNs proc_free_ = 0;
  std::int64_t messages_ = 0;
  bool dead_ = false;
};

}  // namespace fcc::hw

#include "hw/fault.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "hw/link.h"
#include "hw/nic.h"
#include "hw/topology.h"
#include "sim/engine.h"

namespace fcc::hw {

bool FaultSite::healthy() const {
  return nic != nullptr ? nic->healthy() : link->healthy();
}

void FaultPlan::validate(Topology& topo) const {
  const auto& sites = topo.fault_sites();
  TimeNs prev = 0;
  for (const FaultEvent& ev : events) {
    FCC_CHECK_MSG(ev.t >= prev,
                  "FaultPlan: events must be time-sorted, got t=" << ev.t
                      << " after t=" << prev);
    prev = ev.t;
    FCC_CHECK_MSG(ev.site >= 0 && ev.site < static_cast<int>(sites.size()),
                  "FaultPlan: site " << ev.site << " out of range for "
                      << topo.kind_name() << " (" << sites.size()
                      << " sites)");
    const FaultSite& s = sites[static_cast<std::size_t>(ev.site)];
    switch (ev.kind) {
      case FaultKind::kDead:
        FCC_CHECK_MSG(s.can_die, "FaultPlan: kDead targets derate-only site "
                                     << s.name);
        break;
      case FaultKind::kDerate:
        FCC_CHECK_MSG(ev.derate > 0.0 && ev.derate <= 1.0,
                      "FaultPlan: derate must be in (0, 1], got "
                          << ev.derate << " on " << s.name);
        break;
      case FaultKind::kJitter:
        FCC_CHECK_MSG(ev.jitter_ns >= 0,
                      "FaultPlan: jitter must be >= 0, got " << ev.jitter_ns
                          << " on " << s.name);
        break;
      case FaultKind::kRepair:
        break;
    }
  }
}

FaultPlan make_chaos_plan(Topology& topo, std::uint64_t seed,
                          const ChaosSpec& spec) {
  FCC_CHECK(spec.num_events >= 0);
  FCC_CHECK(spec.horizon_ns > 0);
  FCC_CHECK(spec.kill_fraction >= 0.0 && spec.kill_fraction <= 1.0);
  FCC_CHECK(spec.repair_fraction >= 0.0 && spec.repair_fraction <= 1.0);
  FCC_CHECK(spec.min_derate > 0.0 && spec.min_derate <= spec.max_derate &&
            spec.max_derate <= 1.0);
  const auto& sites = topo.fault_sites();
  FCC_CHECK_MSG(!sites.empty(), "make_chaos_plan: " << topo.kind_name()
                                                    << " has no fault sites");
  std::vector<int> killable;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].can_die) killable.push_back(static_cast<int>(i));
  }

  // Child stream: a caller seeding traffic generation with the same value
  // still gets an independent, reproducible fault stream.
  Rng root(seed);
  Rng rng = root.fork();

  FaultPlan plan;
  for (int i = 0; i < spec.num_events; ++i) {
    FaultEvent ev;
    ev.t = static_cast<TimeNs>(
        rng.next_below(static_cast<std::uint64_t>(spec.horizon_ns)));
    const bool kill = !killable.empty() &&
                      rng.next_double() < spec.kill_fraction;
    if (kill) {
      ev.kind = FaultKind::kDead;
      ev.site = killable[rng.next_below(killable.size())];
    } else if (spec.max_jitter_ns > 0 && rng.next_double() < 0.5) {
      ev.kind = FaultKind::kJitter;
      ev.site = static_cast<int>(rng.next_below(sites.size()));
      ev.jitter_ns = rng.next_int(1, spec.max_jitter_ns);
    } else {
      ev.kind = FaultKind::kDerate;
      ev.site = static_cast<int>(rng.next_below(sites.size()));
      ev.derate = rng.next_double(spec.min_derate, spec.max_derate);
    }
    const bool repair = rng.next_double() < spec.repair_fraction;
    plan.events.push_back(ev);
    if (repair && ev.t + 1 < spec.horizon_ns) {
      FaultEvent fix;
      fix.kind = FaultKind::kRepair;
      fix.site = ev.site;
      fix.t = static_cast<TimeNs>(
          rng.next_int(ev.t + 1, spec.horizon_ns - 1));
      plan.events.push_back(fix);
    }
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t < b.t;
                   });
  return plan;
}

void schedule_fault_plan(sim::Engine& engine, Topology& topo,
                         const FaultPlan& plan, TimeNs base) {
  plan.validate(topo);
  for (const FaultEvent& ev : plan.events) {
    engine.schedule_at(base + ev.t,
                       [&topo, ev] { topo.apply_fault(ev); });
  }
}

}  // namespace fcc::hw

// FIFO-serialized bandwidth/latency link.
//
// Analytic model: transfers occupy the link back-to-back in submission
// order; the caller receives the delivery completion time and sleeps until
// then via the event engine. Keeping the link analytic (no coroutine per
// transfer) makes million-transfer simulations cheap while preserving
// deterministic contention behaviour.
#pragma once

#include <span>
#include <string>

#include "common/check.h"
#include "common/types.h"

namespace fcc::hw {

class Link {
 public:
  Link(std::string name, double bytes_per_ns, TimeNs latency_ns)
      : name_(std::move(name)),
        bytes_per_ns_(bytes_per_ns),
        bw_(bytes_per_ns),
        latency_ns_(latency_ns) {
    FCC_CHECK(bytes_per_ns > 0);
    FCC_CHECK(latency_ns >= 0);
  }

  const std::string& name() const { return name_; }
  /// Current (possibly derated) bandwidth; equals the constructed nominal
  /// bandwidth bit-exactly while the link is healthy.
  double bandwidth() const { return bw_; }
  double nominal_bandwidth() const { return bytes_per_ns_; }
  TimeNs latency() const { return latency_ns_; }

  /// Earliest time a new transfer could start occupying the link, given it
  /// becomes ready at `ready`.
  TimeNs earliest_start(TimeNs ready) const {
    return ready > next_free_ ? ready : next_free_;
  }

  /// Duration `bytes` occupy the link (serialization delay, no latency), at
  /// the current (possibly derated) bandwidth.
  TimeNs occupancy(Bytes bytes) const {
    FCC_CHECK(bytes >= 0);
    return static_cast<TimeNs>(static_cast<double>(bytes) / bw_ + 0.5);
  }

  /// Reserves the interval [start, end) on the link. `start` must be at or
  /// after the current horizon (FIFO order). Routing must never reserve a
  /// dead link (resolution reroutes or throws PartitionedFabricError).
  void occupy_interval(TimeNs start, TimeNs end) {
    FCC_DCHECK(!dead_);
    FCC_CHECK(start >= next_free_);
    FCC_CHECK(end >= start);
    busy_ns_ += end - start;
    next_free_ = end;
    ++transfers_;
  }

  /// FIFO transfer submitted at `ready`; returns delivery-complete time at
  /// the far side (occupancy end + propagation latency + fault jitter).
  TimeNs submit(TimeNs ready, Bytes bytes) {
    const TimeNs start = earliest_start(ready);
    const TimeNs end = start + occupancy(bytes);
    occupy_interval(start, end);
    total_bytes_ += bytes;
    return end + latency_ns_ + jitter_ns_;
  }

  TimeNs next_free() const { return next_free_; }
  Bytes total_bytes() const { return total_bytes_; }
  TimeNs busy_ns() const { return busy_ns_; }
  std::int64_t transfers() const { return transfers_; }

  void add_bytes(Bytes b) { total_bytes_ += b; }

  // ---- fault-injection health (hw/fault.h) --------------------------------
  // Healthy defaults are arithmetic identities (bw_ == nominal, + 0 jitter),
  // so a link that never saw a fault times transfers bit-identically to the
  // pre-fault-model Link.
  bool dead() const { return dead_; }
  double derate() const { return derate_; }
  TimeNs jitter_ns() const { return jitter_ns_; }
  bool healthy() const {
    return !dead_ && derate_ == 1.0 && jitter_ns_ == 0;
  }
  void set_dead(bool dead) { dead_ = dead; }
  void set_derate(double f) {
    FCC_CHECK_MSG(f > 0.0 && f <= 1.0,
                  name_ << ": derate must be in (0, 1], got " << f);
    derate_ = f;
    bw_ = bytes_per_ns_ * f;
  }
  void set_jitter(TimeNs j) {
    FCC_CHECK(j >= 0);
    jitter_ns_ = j;
  }
  void restore() {
    dead_ = false;
    derate_ = 1.0;
    jitter_ns_ = 0;
    bw_ = bytes_per_ns_;
  }

 private:
  std::string name_;
  double bytes_per_ns_;  // nominal
  double bw_;            // current = nominal * derate_
  TimeNs latency_ns_;
  TimeNs next_free_ = 0;
  TimeNs busy_ns_ = 0;
  Bytes total_bytes_ = 0;
  std::int64_t transfers_ = 0;
  bool dead_ = false;
  double derate_ = 1.0;
  TimeNs jitter_ns_ = 0;
};

/// Cut-through reservation across a multi-hop route: all hops are occupied
/// for one joint serialization window starting when every hop is free (the
/// head flit cannot advance until the whole wormhole path is claimed), and
/// the data is delivered one propagation `latency_ns` after the slowest
/// hop drains. With the two-hop {egress, ingress} route this is exactly
/// the fully-connected Fabric's historical joint endpoint accounting.
inline TimeNs reserve_cut_through(std::span<Link* const> hops, Bytes bytes,
                                  TimeNs ready, TimeNs latency_ns) {
  FCC_CHECK(!hops.empty());
  TimeNs start = ready;
  for (const Link* l : hops) {
    const TimeNs s = l->earliest_start(ready);
    if (s > start) start = s;
  }
  TimeNs max_occ = 0;
  for (Link* l : hops) {
    const TimeNs occ = l->occupancy(bytes);
    l->occupy_interval(start, start + occ);
    if (occ > max_occ) max_occ = occ;
  }
  return start + max_occ + latency_ns;
}

}  // namespace fcc::hw

// GPU device specification (MI210-class defaults).
//
// Only the properties the paper's effects depend on are modeled: CU count
// and WG-slot limits (occupancy), register file size (ROC_SHMEM's register
// cost lowers fused-kernel occupancy), HBM bandwidth, ALU throughput, and
// host-side launch/sync latencies (what kernel-boundary communication pays).
#pragma once

#include <string>

#include "common/types.h"

namespace fcc::hw {

struct GpuSpec {
  std::string name = "sim-mi210";

  /// Compute units and per-CU workgroup slots (hardware scheduler limit).
  int num_cus = 104;
  int max_wgs_per_cu = 8;

  /// Register file per CU, in 32-bit VGPRs (4 SIMDs x 64 KB on CDNA2).
  int vgprs_per_cu = 262144;

  /// Peak HBM bandwidth (HBM2e): ~1.6 TB/s => 1638 bytes per ns.
  double hbm_bytes_per_ns = 1638.0;

  /// Peak fp32 vector throughput: 22.6 TFLOP/s => 22600 flops per ns.
  double fp32_flops_per_ns = 22600.0;

  /// Concurrent WGs needed to saturate the SIMDs (~4 waves per CU hides
  /// ALU latency); beyond this, extra occupancy adds no ALU throughput,
  /// which is why a 12.5% occupancy loss doesn't slow compute-bound GEMMs.
  int alu_saturation_wgs = 416;

  /// Host-initiated kernel-launch latency (HIP-order-of-magnitude).
  TimeNs kernel_launch_ns = 4000;

  /// Host-side stream synchronization latency at a kernel boundary.
  TimeNs stream_sync_ns = 2000;

  int max_wg_slots() const { return num_cus * max_wgs_per_cu; }
};

/// Intra-node interconnect (Infinity Fabric class). The paper's Table I:
/// four GPUs fully connected at 80 GB/s. We model 80 GB/s of egress and
/// ingress per GPU *port*; peer-to-peer transfers occupy both endpoint
/// ports, which is what creates the large-message contention of Fig. 9.
struct FabricSpec {
  double port_bytes_per_ns = 80.0;  // 80 GB/s
  TimeNs latency_ns = 700;
  /// Issue cost paid by a GPU thread-block for one remote store burst
  /// (address generation + write-combining flush).
  TimeNs store_issue_overhead_ns = 150;
};

/// Inter-node RDMA NIC (InfiniBand class). Table I: 20 GB/s.
struct IbSpec {
  double wire_bytes_per_ns = 20.0;  // 20 GB/s
  TimeNs wire_latency_ns = 1500;
  /// NIC message-processing serialization per posted descriptor.
  TimeNs per_msg_proc_ns = 250;
  /// GPU-side latency of posting one RDMA descriptor from a kernel
  /// (ROC_SHMEM put_nbi path: ring doorbell via per-WG queue pair).
  TimeNs gpu_post_overhead_ns = 800;
};

/// The evaluation platform of Table I, bundled so benches can print it.
struct SystemSetup {
  GpuSpec gpu;
  FabricSpec fabric;
  IbSpec ib;
  int scale_up_gpus = 4;
  int scale_out_nodes = 2;
  int gpus_per_node_scale_out = 1;
  std::string software =
      "fcc simulator (PyTorch/ROCm/ROC_SHMEM substituted per DESIGN.md)";
};

}  // namespace fcc::hw

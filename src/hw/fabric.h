// Intra-node GPU fabric (Infinity Fabric class), fully connected.
//
// Each GPU owns an egress port and an ingress port of `port_bytes_per_ns`
// capacity. A peer-to-peer transfer occupies *both* endpoints for its
// serialization time (cut-through, reserved jointly, so bytes are never
// double-counted). Port sharing across concurrent peers is the contention
// mechanism behind the paper's Fig. 9 droop at M = 64k.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "hw/gpu_spec.h"
#include "hw/link.h"

namespace fcc::hw {

class Fabric {
 public:
  Fabric(int num_ports, const FabricSpec& spec);

  int num_ports() const { return static_cast<int>(egress_.size()); }
  const FabricSpec& spec() const { return spec_; }

  /// Moves `bytes` from GPU `src` to GPU `dst`, ready at `ready`. Returns
  /// the time the data is visible in `dst` memory.
  TimeNs transfer(int src, int dst, Bytes bytes, TimeNs ready);

  const Link& egress(int port) const { return *egress_.at(port); }
  const Link& ingress(int port) const { return *ingress_.at(port); }
  Link& egress(int port) { return *egress_.at(port); }
  Link& ingress(int port) { return *ingress_.at(port); }

  /// Total payload bytes moved through the fabric so far.
  Bytes total_bytes() const { return total_bytes_; }

 private:
  FabricSpec spec_;
  std::vector<std::unique_ptr<Link>> egress_;
  std::vector<std::unique_ptr<Link>> ingress_;
  Bytes total_bytes_ = 0;
};

}  // namespace fcc::hw

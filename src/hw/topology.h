// Pluggable interconnect topology: (src PE, dst PE) -> multi-hop Route.
//
// Every byte the upper layers move resolves to a `Route`: a sequence of
// shared FIFO `Link` hops reserved cut-through — one joint serialization
// window across all hops, exactly the joint egress/ingress accounting the
// fully-connected fabric always used (see `reserve_cut_through` in link.h)
// — optionally followed by a NIC (descriptor processor + wire) that takes
// the message off-node.
// Concrete fabrics:
//
//   FullyConnectedTopology  per-node all-to-all ports + one NIC per node
//                           (the paper's Table I platform; byte-identical
//                           to the pre-topology Machine, enforced by the
//                           golden traces in test_sim_determinism)
//   SwitchedTopology        per-GPU up/down links into a node switch
//                           (NVSwitch-class 8-GPU node), optional shared
//                           crossbar trunk as a bisection cap
//   MultiRailTopology       fully-connected intra-node + k NIC rails per
//                           node, rail picked by source GPU affinity
//   TorusTopology           event-driven 2D torus of nodes with
//                           dimension-ordered routes; absorbs the analytic
//                           scaleout::TorusModel's collective schedules as
//                           aggregate per-link flow reservations
//
// A new fabric is one subclass: implement `resolve` (and optionally
// `write_time` for paths with special accounting) and `make_topology`
// plumbs it under gpu::Machine unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "hw/fabric.h"
#include "hw/fault.h"
#include "hw/gpu_spec.h"
#include "hw/link.h"
#include "hw/nic.h"

namespace fcc::hw {

/// Coarse class of a resolved route; upper layers key issue costs and
/// FIFO-channel ordering off this instead of re-deriving node arithmetic.
enum class RouteClass {
  kSelf,       // src == dst: HBM-local copy, never touches the fabric
  kIntraNode,  // scale-up links only (fabric ports, switch hops)
  kInterNode,  // leaves the node: NIC descriptor path and/or torus rings
};

/// A resolved path. `hops` are reserved jointly (cut-through) for one
/// serialization window; `nic` (when set) then serializes the message
/// through its descriptor processor and wire to take it off-node.
struct Route {
  RouteClass cls = RouteClass::kSelf;
  Nic* nic = nullptr;
  std::vector<Link*> hops;
  TimeNs latency_ns = 0;  // propagation added after the last hop

  void clear() {
    cls = RouteClass::kSelf;
    nic = nullptr;
    hops.clear();
    latency_ns = 0;
  }
};

/// 2D-torus shape (Table II scale-out network: 200 Gb/s, 700 ns hops).
/// Lives here so both the event-driven TorusTopology and the analytic
/// cross-check (scaleout::TorusModel) share one validated description.
struct TorusSpec {
  int dim_x = 16;
  int dim_y = 8;
  double link_bytes_per_ns = 25.0;  // 200 Gb/s
  TimeNs link_latency_ns = 700;

  int num_nodes() const { return dim_x * dim_y; }

  void validate() const {
    FCC_CHECK_MSG(dim_x >= 1 && dim_y >= 1,
                  "TorusSpec: dims must be positive, got " << dim_x << "x"
                                                           << dim_y);
    FCC_CHECK_MSG(dim_x * dim_y >= 2,
                  "TorusSpec: 1x1 torus is degenerate (no links); use a "
                  "single-node machine instead");
    FCC_CHECK_MSG(link_bytes_per_ns > 0,
                  "TorusSpec: link bandwidth must be positive, got "
                      << link_bytes_per_ns);
    FCC_CHECK_MSG(link_latency_ns >= 0,
                  "TorusSpec: link latency must be non-negative, got "
                      << link_latency_ns);
  }
};

/// Switched scale-up node (NVSwitch class): every GPU owns an uplink and a
/// downlink of `port_bytes_per_ns` into the switch. Contention is per
/// endpoint port (like the fully-connected fabric) plus, optionally, a
/// shared crossbar trunk capping the node's aggregate bisection.
struct SwitchedSpec {
  double port_bytes_per_ns = 80.0;
  /// One-hop traversal latency; an intra-node route pays it twice
  /// (GPU -> switch -> GPU).
  TimeNs hop_latency_ns = 350;
  /// Aggregate crossbar bandwidth; 0 disables the trunk (ideal crossbar).
  double trunk_bytes_per_ns = 0.0;

  void validate() const {
    FCC_CHECK_MSG(port_bytes_per_ns > 0,
                  "SwitchedSpec: port bandwidth must be positive, got "
                      << port_bytes_per_ns);
    FCC_CHECK_MSG(hop_latency_ns >= 0,
                  "SwitchedSpec: hop latency must be non-negative");
    FCC_CHECK_MSG(trunk_bytes_per_ns >= 0,
                  "SwitchedSpec: trunk bandwidth must be >= 0 (0 = ideal)");
  }
};

/// Which fabric a Machine instantiates, plus its parameters. The
/// fully-connected default reproduces the pre-topology Machine exactly.
struct TopologySpec {
  enum class Kind {
    kFullyConnected,
    kSwitchedNode,
    kMultiRail,
    kTorus2D,
  };
  Kind kind = Kind::kFullyConnected;

  SwitchedSpec switched;  // kSwitchedNode
  int nic_rails = 2;      // kMultiRail: NICs per node
  TorusSpec torus;        // kTorus2D: dims must equal the node count
};

class Topology {
 public:
  Topology(int num_nodes, int gpus_per_node)
      : num_nodes_(num_nodes), gpus_per_node_(gpus_per_node) {
    FCC_CHECK_MSG(num_nodes >= 1, "Topology: num_nodes must be >= 1, got "
                                      << num_nodes);
    FCC_CHECK_MSG(gpus_per_node >= 1,
                  "Topology: gpus_per_node must be >= 1, got "
                      << gpus_per_node);
  }
  virtual ~Topology() = default;

  virtual const char* kind_name() const = 0;

  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int num_pes() const { return num_nodes_ * gpus_per_node_; }
  NodeId node_of(PeId pe) const { return pe / gpus_per_node_; }
  int local_index(PeId pe) const { return pe % gpus_per_node_; }

  /// Cheap classification (no link resolution); the default node-arithmetic
  /// rule is right for every fabric here, but a subclass with asymmetric
  /// reachability may refine it.
  virtual RouteClass route_class(PeId src, PeId dst) const {
    if (src == dst) return RouteClass::kSelf;
    return node_of(src) == node_of(dst) ? RouteClass::kIntraNode
                                        : RouteClass::kInterNode;
  }

  /// Resolves (src, dst) into `route` (cleared first). `route` is a
  /// caller-owned buffer so steady-state resolution is allocation-free.
  virtual void resolve(PeId src, PeId dst, Route& route) = 0;

  /// Reserves the route for `bytes` ready at `ready` and returns the
  /// delivery-complete time. The default resolves and runs the generic
  /// cut-through-then-NIC reservation; subclasses with bespoke accounting
  /// (the fully-connected Fabric byte counters) override it.
  virtual TimeNs write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready);

  /// Generic reservation of an already-resolved route.
  static TimeNs reserve(const Route& route, Bytes bytes, TimeNs ready);

  /// True when every link/NIC an inter-node route reserves belongs to the
  /// *source node* (fully-connected: src NIC; switched: src uplink + src
  /// NIC; multi-rail: src-affinity rail). The sharded world then reserves
  /// inter-node routes eagerly at issue time — a node-aligned partition
  /// makes that state single-shard-touched. The torus returns false: its
  /// routes ride ring links owned by intermediate nodes, so reservations
  /// must be serialized at window barriers instead (shmem::World).
  virtual bool inter_node_state_src_local() const { return true; }

  /// Conservative lookahead for a sharded run under the given node→shard
  /// partition: a lower bound on the latency of any inter-node write whose
  /// endpoints live on different shards (pure propagation — NIC descriptor
  /// processing, wire latency, hop latencies — ignoring all serialization,
  /// which only pushes delivery later). The generic implementation scans
  /// cross-shard node pairs via `resolve`; if the partition has no
  /// cross-shard pair it falls back to the minimum over all inter-node
  /// pairs (any positive bound works when nothing crosses shards).
  /// Subclasses with a closed form (torus: one hop) override.
  virtual TimeNs min_inter_shard_latency(const std::vector<int>& node_shard);

  /// Per-node hardware accessors for stats and tests; null when the fabric
  /// has no such component (e.g. no Fabric inside a switched node).
  virtual Fabric* node_fabric(NodeId) { return nullptr; }
  virtual Nic* node_nic(NodeId) { return nullptr; }

  // ---- fault injection & health (hw/fault.h) ------------------------------

  /// Every fault-capable component of this fabric, in a stable enumeration
  /// order (lazily built once). Fabric ports are deliberately not sites:
  /// they have no reroute alternative and the NIC/trunk/ring layers are
  /// where real fabrics brown out.
  const std::vector<FaultSite>& fault_sites();

  /// Index of the site named `name`, or -1 (bench scenario tables key
  /// faults by component name).
  int fault_site_index(const std::string& name);

  /// Applies one event now. Health changes take effect on the next route
  /// resolution; `faults_changed()` lets subclasses drop route caches.
  void apply_fault(const FaultEvent& ev);

  bool has_faults() const { return faulted_ > 0; }

  /// Monotone counter bumped by every apply_fault — consumers (ccl) cache
  /// degraded-plan decisions keyed on it.
  std::uint64_t fault_epoch() const { return fault_epoch_; }

  /// Names of currently-unhealthy sites, in site order.
  std::vector<std::string> active_faults();

  /// Unhealthy components a communicator spanning `pes` is exposed to:
  /// unhealthy sites on member nodes (rails, ports) plus any unhealthy or
  /// dead component on the routes between member-node pairs (including
  /// ideal-path casualties a detour steered around). Empty on a healthy
  /// fabric; deduplicated, deterministic order.
  std::vector<std::string> degraded_components(std::span<const PeId> pes);

 private:
  int num_nodes_;
  int gpus_per_node_;
  std::vector<FaultSite> sites_;
  bool sites_built_ = false;
  int faulted_ = 0;  // count of unhealthy sites
  std::uint64_t fault_epoch_ = 0;

 protected:
  /// Subclass hook: enumerate this fabric's fault sites (called once).
  virtual void collect_fault_sites(std::vector<FaultSite>&) {}

  /// Subclass hook: health state changed (drop detour/route caches).
  virtual void faults_changed() {}

  /// Subclass hook: dead components the *ideal* (healthy-fabric) route
  /// between two nodes would traverse — components a degraded route is
  /// detouring around (torus overrides; fabrics whose reroutes stay on
  /// member-node sites need not).
  virtual void route_casualties(NodeId, NodeId, std::vector<std::string>&) {}

  /// True once any site is unhealthy; resolution paths branch into their
  /// health-aware variants only then, keeping the healthy hot path (and its
  /// golden-traced timings) untouched.
  bool faulted() const { return faulted_ > 0; }

  /// Shared post-resolve health guard: throws PartitionedFabricError when
  /// the route crosses a dead link or NIC, and folds per-hop fault jitter
  /// into the route's propagation latency. Call only when faulted().
  void guard_route(PeId src, PeId dst, Route& route) const;
  /// Per-thread scratch route buffer: steady-state resolution stays
  /// allocation-free, and shard threads reserving source-local routes
  /// concurrently (see inter_node_state_src_local) never share it.
  static Route& scratch();

  /// Appends the standard intra-node fabric hops (source egress, destination
  /// ingress) and the fabric latency — shared by every topology that puts a
  /// `Fabric` inside the node.
  void add_fabric_hops(Fabric& f, PeId src, PeId dst, Route& route) const {
    route.hops.push_back(&f.egress(local_index(src)));
    route.hops.push_back(&f.ingress(local_index(dst)));
    route.latency_ns = f.spec().latency_ns;
  }
};

/// The pre-topology Machine fabric: per-node fully-connected ports, one
/// NIC per node for scale-out. Timings are byte-identical to the old
/// two-path `remote_write_time` (golden-trace enforced).
class FullyConnectedTopology final : public Topology {
 public:
  FullyConnectedTopology(int num_nodes, int gpus_per_node,
                         const FabricSpec& fabric, const IbSpec& ib);

  const char* kind_name() const override { return "fully_connected"; }
  void resolve(PeId src, PeId dst, Route& route) override;
  TimeNs write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready) override;
  Fabric* node_fabric(NodeId node) override { return fabrics_.at(node).get(); }
  Nic* node_nic(NodeId node) override { return nics_.at(node).get(); }

 protected:
  void collect_fault_sites(std::vector<FaultSite>& out) override;

 private:
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

/// Switched scale-up node: src uplink + (optional trunk) + dst downlink,
/// cut-through. Cross-node messages ride the node NIC as usual.
class SwitchedTopology final : public Topology {
 public:
  SwitchedTopology(int num_nodes, int gpus_per_node, const SwitchedSpec& spec,
                   const IbSpec& ib);

  const char* kind_name() const override { return "switched"; }
  void resolve(PeId src, PeId dst, Route& route) override;
  Nic* node_nic(NodeId node) override { return nics_.at(node).get(); }

  const SwitchedSpec& spec() const { return spec_; }
  const Link& uplink(PeId pe) const { return *up_.at(pe); }
  const Link& downlink(PeId pe) const { return *down_.at(pe); }

 protected:
  void collect_fault_sites(std::vector<FaultSite>& out) override;

 private:
  SwitchedSpec spec_;
  std::vector<std::unique_ptr<Link>> up_;     // per PE
  std::vector<std::unique_ptr<Link>> down_;   // per PE
  std::vector<std::unique_ptr<Link>> trunk_;  // per node, may be empty
  std::vector<std::unique_ptr<Nic>> nics_;
};

/// Fully-connected intra-node fabric with `rails` NICs per node; a
/// cross-node message rides the rail its source GPU is affinitized to
/// (local index modulo rails), so concurrent senders stop serializing on
/// one descriptor processor/wire.
class MultiRailTopology final : public Topology {
 public:
  MultiRailTopology(int num_nodes, int gpus_per_node, int rails,
                    const FabricSpec& fabric, const IbSpec& ib);

  const char* kind_name() const override { return "multi_rail"; }
  void resolve(PeId src, PeId dst, Route& route) override;
  TimeNs write_time(PeId src, PeId dst, Bytes bytes, TimeNs ready) override;
  Fabric* node_fabric(NodeId node) override { return fabrics_.at(node).get(); }
  Nic* node_nic(NodeId node) override { return rail(node, 0); }

  int rails() const { return rails_; }
  Nic* rail(NodeId node, int r) {
    return nics_.at(static_cast<std::size_t>(node) *
                        static_cast<std::size_t>(rails_) +
                    static_cast<std::size_t>(r))
        .get();
  }

 protected:
  void collect_fault_sites(std::vector<FaultSite>& out) override;

 private:
  /// Degraded-fabric failover: the source's affinity rail if alive, else
  /// the first surviving rail scanning (affinity + k) % rails; throws
  /// PartitionedFabricError when every rail of the node is dead.
  Nic* alive_rail(PeId src, PeId dst);

  int rails_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Nic>> nics_;  // node-major, rails per node
};

/// Event-driven 2D torus of nodes. Point-to-point traffic takes
/// dimension-ordered (x then y) shortest-direction routes over shared
/// directed ring links; `flow_*` reserve whole dimension-ordered collective
/// schedules on the same links (the analytic TorusModel's decomposition,
/// which they reproduce exactly on an idle topology — see
/// tests/test_scaleout.cc cross-checks).
class TorusTopology final : public Topology {
 public:
  /// `fabric` is used for the intra-node ports when gpus_per_node > 1.
  TorusTopology(const TorusSpec& spec, int gpus_per_node = 1,
                const FabricSpec& fabric = {});

  const char* kind_name() const override { return "torus2d"; }
  void resolve(PeId src, PeId dst, Route& route) override;
  Fabric* node_fabric(NodeId node) override {
    return fabrics_.empty() ? nullptr : fabrics_.at(node).get();
  }

  /// Torus routes traverse ring links owned by intermediate nodes, so a
  /// sharded world must serialize reservations at window barriers.
  bool inter_node_state_src_local() const override { return false; }

  /// Closed form: every inter-node route crosses at least one ring link, so
  /// one hop's propagation latency is a safe (and tight, for neighboring
  /// tiles) lower bound — no O(nodes^2) scan at machine construction.
  TimeNs min_inter_shard_latency(const std::vector<int>&) override {
    return spec_.link_latency_ns;
  }

  const TorusSpec& spec() const { return spec_; }

  /// Number of ring hops a (src, dst) node pair traverses.
  int hop_count(NodeId src, NodeId dst) const;

  /// Uniform personalized All-to-All (every node sends `per_pair_bytes` to
  /// every other node), dimension-ordered: row rings move column-aggregated
  /// traffic, then column rings distribute. Reserved as aggregate per-link
  /// flows; returns the completion time.
  TimeNs flow_all_to_all_uniform(Bytes per_pair_bytes, TimeNs start = 0);

  /// Hierarchical ring AllReduce (reduce-scatter x, reduce-scatter y,
  /// all-gather y, all-gather x) of `bytes` per node.
  TimeNs flow_all_reduce(Bytes bytes, TimeNs start = 0);

  /// Directed ring links, for tests/stats. dir: 0=+x, 1=-x, 2=+y, 3=-y.
  const Link& ring_link(NodeId node, int dir) const {
    return *links_.at(static_cast<std::size_t>(node) * 4 +
                      static_cast<std::size_t>(dir));
  }

 protected:
  void collect_fault_sites(std::vector<FaultSite>& out) override;
  /// Health changes invalidate every cached detour.
  void faults_changed() override { detour_dirs_.clear(); }
  void route_casualties(NodeId src_node, NodeId dst_node,
                        std::vector<std::string>& out) override;

 private:
  int node_x(NodeId n) const { return n % spec_.dim_x; }
  int node_y(NodeId n) const { return n / spec_.dim_x; }
  NodeId node_at(int x, int y) const { return y * spec_.dim_x + x; }
  NodeId neighbor(NodeId n, int dir) const;
  Link* link(NodeId node, int dir) {
    return links_[static_cast<std::size_t>(node) * 4 +
                  static_cast<std::size_t>(dir)]
        .get();
  }
  /// Faulted-fabric route between nodes: dimension-ordered if every hop is
  /// alive, else the y-then-x detour, else a deterministic BFS over alive
  /// links; throws PartitionedFabricError when no path survives. Hop
  /// directions are cached per (src, dst) node pair until the next fault.
  void degraded_route(PeId src, PeId dst, Route& route);
  std::vector<std::uint8_t> compute_detour(NodeId sn, NodeId dn, PeId src,
                                           PeId dst);
  /// One dimension-ordered A2A stage over the `along_x` rings; returns the
  /// stage completion (start + busiest-link drain + worst hop latency).
  TimeNs a2a_stage(bool along_x, Bytes per_pair, TimeNs start);
  /// One ring reduce-scatter/all-gather phase over the `along_x` rings in
  /// the given direction.
  TimeNs ring_phase(bool along_x, double phase_bytes, bool forward,
                    TimeNs start);

  TorusSpec spec_;
  std::vector<std::unique_ptr<Link>> links_;  // 4 per node: +x, -x, +y, -y
  std::vector<std::unique_ptr<Fabric>> fabrics_;  // gpus_per_node > 1 only
  /// [src * nodes + dst] hop-direction sequence on the faulted fabric;
  /// empty = not yet computed. Cleared by faults_changed(), sized lazily on
  /// the first degraded resolve (healthy runs never allocate it).
  std::vector<std::vector<std::uint8_t>> detour_dirs_;
};

/// Builds the topology a Machine::Config asks for.
std::unique_ptr<Topology> make_topology(const TopologySpec& spec,
                                        int num_nodes, int gpus_per_node,
                                        const FabricSpec& fabric,
                                        const IbSpec& ib);

}  // namespace fcc::hw

#include "hw/fabric.h"

#include <algorithm>

namespace fcc::hw {

Fabric::Fabric(int num_ports, const FabricSpec& spec) : spec_(spec) {
  FCC_CHECK(num_ports >= 1);
  egress_.reserve(num_ports);
  ingress_.reserve(num_ports);
  for (int p = 0; p < num_ports; ++p) {
    egress_.push_back(std::make_unique<Link>(
        "gpu" + std::to_string(p) + ".egress", spec.port_bytes_per_ns,
        /*latency_ns=*/0));
    ingress_.push_back(std::make_unique<Link>(
        "gpu" + std::to_string(p) + ".ingress", spec.port_bytes_per_ns,
        /*latency_ns=*/0));
  }
}

TimeNs Fabric::transfer(int src, int dst, Bytes bytes, TimeNs ready) {
  FCC_CHECK(src >= 0 && src < num_ports());
  FCC_CHECK(dst >= 0 && dst < num_ports());
  FCC_CHECK_MSG(src != dst, "fabric transfer to self (use local stores)");
  Link& out = *egress_[src];
  Link& in = *ingress_[dst];

  Link* const hops[] = {&out, &in};
  const TimeNs delivered =
      reserve_cut_through(hops, bytes, ready, spec_.latency_ns);
  out.add_bytes(bytes);
  total_bytes_ += bytes;
  return delivered;
}

}  // namespace fcc::hw

#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace fcc::sim {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void Trace::write_chrome_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& s : spans_) {
    sep();
    // Chrome trace wants microseconds; keep three decimals of ns precision.
    os << R"({"name":")" << json_escape(s.name) << R"(","cat":")"
       << json_escape(s.category) << R"(","ph":"X","pid":)" << s.pid
       << R"(,"tid":)" << s.tid << R"(,"ts":)"
       << static_cast<double>(s.start) / 1e3 << R"(,"dur":)"
       << static_cast<double>(s.end - s.start) / 1e3 << "}";
  }
  for (const auto& i : instants_) {
    sep();
    os << R"({"name":")" << json_escape(i.name) << R"(","cat":")"
       << json_escape(i.category) << R"(","ph":"i","s":"t","pid":)" << i.pid
       << R"(,"tid":)" << i.tid << R"(,"ts":)"
       << static_cast<double>(i.at) / 1e3 << "}";
  }
  os << "\n]\n";
}

void Trace::render_ascii(std::ostream& os, const AsciiOptions& opts) const {
  if (spans_.empty() && instants_.empty()) {
    os << "(empty trace)\n";
    return;
  }

  TimeNs t0 = kTimeNever, t1 = 0;
  for (const auto& s : spans_) {
    t0 = std::min(t0, s.start);
    t1 = std::max(t1, s.end);
  }
  for (const auto& i : instants_) {
    t0 = std::min(t0, i.at);
    t1 = std::max(t1, i.at);
  }
  if (t1 <= t0) t1 = t0 + 1;

  const double scale =
      static_cast<double>(opts.width) / static_cast<double>(t1 - t0);
  auto col = [&](TimeNs t) {
    auto c = static_cast<int>(static_cast<double>(t - t0) * scale);
    return std::clamp(c, 0, opts.width - 1);
  };

  // Collect tracks in (pid, tid) order.
  std::map<std::pair<int, int>, std::string> rows;
  auto row_for = [&](int pid, int tid) -> std::string* {
    auto key = std::make_pair(pid, tid);
    auto it = rows.find(key);
    if (it == rows.end()) {
      if (static_cast<int>(rows.size()) >= opts.max_tracks) return nullptr;
      it = rows.emplace(key, std::string(opts.width, '.')).first;
    }
    return &it->second;
  };

  for (const auto& s : spans_) {
    std::string* row = row_for(s.pid, s.tid);
    if (row == nullptr) continue;
    const char glyph = s.category.empty() ? '#' : s.category[0];
    const int c0 = col(s.start);
    const int c1 = std::max(c0, col(s.end - 1));
    for (int c = c0; c <= c1; ++c) (*row)[c] = glyph;
  }
  if (opts.show_instants) {
    for (const auto& i : instants_) {
      std::string* row = row_for(i.pid, i.tid);
      if (row == nullptr) continue;
      (*row)[col(i.at)] = '*';
    }
  }

  os << "time: [" << t0 << " ns .. " << t1 << " ns], width " << opts.width
     << " chars ("
     << static_cast<double>(t1 - t0) / static_cast<double>(opts.width)
     << " ns/char)\n";
  for (const auto& [key, row] : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "p%02d/t%03d |", key.first,
                  key.second);
    os << label << row << "|\n";
  }
}

}  // namespace fcc::sim

// Sharded parallel event engine with conservative-lookahead windows.
//
// Partitions a simulation across per-thread `Engine` shards. Each shard is
// the unchanged allocation-free serial engine running its own event queue;
// shards advance in lock-step windows bounded by a conservative lookahead:
//
//   window k processes events with t in [Tmin, Tmin + L)
//
// where Tmin is the earliest pending event across all shards and L is a
// lower bound on the latency of *any* interaction that crosses a shard
// boundary (gpu::Machine derives it from hw::Topology route latencies).
// Within a window shards touch only shard-owned state, so they may run on
// separate threads; everything that crosses shards is exchanged at the
// window barrier through two explicit queues:
//
//   * mailbox messages — `post(src, dst, t, fn)`: apply `fn` on shard `dst`
//     at time `t`. Collected per source shard during the window (owner
//     thread only, no locks) and injected at the barrier in
//     (time, src shard, per-shard sequence) order, so the merged timeline
//     is deterministic regardless of shard count or thread interleaving.
//   * barrier hooks — serial callbacks run at every barrier before
//     injection. shmem::World uses one to reserve deferred inter-node
//     routes in (issue time, src shard, sequence) order: link/NIC horizons
//     are shared across shards, so reservations are the sequential
//     consistency point and run between windows, never during one.
//
// Safety argument: an event processed in window k fires at t >= Tmin, and
// every cross-shard effect it generates applies at >= t + L >= Tmin + L,
// i.e. strictly after the window. Messages therefore always target the
// future, and each shard's local event order equals the serial engine's
// order restricted to that shard (see docs/ARCHITECTURE.md, "Sharded
// engine" — determinism is pinned by tests/test_sim_sharded.cc golden
// traces at 1/2/4/8 shards).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/engine.h"

namespace fcc::sim {

class ShardedEngine {
 public:
  struct RunStats {
    std::size_t events = 0;    // events fired across all shards
    std::size_t windows = 0;   // lookahead windows executed
    std::size_t messages = 0;  // mailbox messages injected at barriers
    std::size_t threads = 0;   // worker threads used

    // Host wall-time breakdown (ns). `barrier` is the serial inter-window
    // section (hooks + mailbox merge); `window_total` sums every shard's
    // in-window processing; `window_critical` sums each window's slowest
    // shard — so `barrier + window_critical` is the run's wall-clock floor
    // with one thread per shard, and bench_shard_scaling uses it to report
    // the attainable speedup independently of how many cores the measuring
    // host happens to have.
    std::uint64_t barrier_wall_ns = 0;
    std::uint64_t window_wall_ns = 0;
    std::uint64_t critical_wall_ns = 0;
  };

  explicit ShardedEngine(int num_shards);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Engine& shard(int s) { return *shards_.at(static_cast<std::size_t>(s)); }
  const Engine& shard(int s) const {
    return *shards_.at(static_cast<std::size_t>(s));
  }

  /// Mailbox: apply `fn` on shard `dst_shard` at time `t`. Legal from the
  /// owning thread of `src_shard` during a window, or from a barrier hook
  /// (which runs with all shards stopped). `t` must be >= the current
  /// window's end — conservative lookahead guarantees this for any effect
  /// routed through a cross-shard latency.
  void post(int src_shard, int dst_shard, TimeNs t, std::function<void()> fn);

  /// Rewind mailbox: like post(), but injected with the destination
  /// engine's no-past check bypassed (Engine::schedule_at_unchecked). Used
  /// for effects that resolve to an *exact* time inside the already-passed
  /// window — a cross-shard join completing at the max of its members'
  /// local times — rather than to `issue + latency`. The destination fires
  /// the entry with now_ rewound to `t`; the callback's continuation must
  /// stay shard-local until it has delayed past the lookahead again (see
  /// Engine::schedule_at_unchecked).
  void post_rewind(int src_shard, int dst_shard, TimeNs t,
                   std::function<void()> fn);

  /// Registers a hook run serially at every window barrier (all shards
  /// stopped), before mailbox injection, in registration order. Hooks may
  /// post(). Returns a handle for remove_barrier_hook.
  int add_barrier_hook(std::function<void()> fn);
  void remove_barrier_hook(int handle);

  /// Runs the windowed protocol until every shard drains and no messages
  /// remain. `lookahead` must be positive; events never cross a window
  /// early, so any 0 < lookahead <= the true minimum cross-shard latency
  /// is safe (smaller just costs more barriers). `num_threads == 0` picks
  /// min(num_shards, hardware_concurrency); shards are striped across
  /// threads, and results are independent of the thread count.
  RunStats run(TimeNs lookahead, unsigned num_threads = 0);

  /// True iff every shard's event queue is empty.
  bool idle() const;

  /// Coroutine processes started but not finished, summed over shards.
  int live_tasks() const;

  /// Earliest pending event across shards, or Engine::kNoEvent.
  TimeNs next_event_time();

 private:
  struct Message {
    TimeNs t;
    std::int32_t src_shard;
    std::int32_t dst_shard;
    std::uint64_t seq;  // per-src-shard, assigned at post()
    bool rewind;        // inject via schedule_at_unchecked (post_rewind)
    std::function<void()> fn;
  };

  /// Per-shard mailbox outbox, cache-line padded: appended only by the
  /// shard's owning thread during a window (or the barrier thread between
  /// windows), drained only at barriers.
  struct alignas(64) Outbox {
    std::vector<Message> msgs;
    std::uint64_t next_seq = 0;
  };

  /// Runs hooks, then injects all queued messages in (t, src_shard, seq)
  /// order. Returns the number injected.
  std::size_t drain_barrier();

  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<Outbox> outboxes_;
  std::vector<Message> merge_scratch_;
  std::vector<std::pair<int, std::function<void()>>> hooks_;
  int next_hook_ = 0;
};

}  // namespace fcc::sim

// Awaitable sub-coroutine (lazy task with symmetric transfer).
//
// `sim::Task` processes are detached top-level activities; `sim::Co` is a
// *subroutine*: the parent `co_await`s it and resumes when it finishes.
// Persistent-kernel slot processes await one Co per logical workgroup.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace fcc::sim {

class [[nodiscard]] Co {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (h_) h_.destroy();
  }

  // Awaitable interface: start the child, remember the parent.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    return h_;  // symmetric transfer into the child
  }
  void await_resume() const noexcept {}

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace fcc::sim

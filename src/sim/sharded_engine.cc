#include "sim/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace fcc::sim {

ShardedEngine::ShardedEngine(int num_shards) {
  FCC_CHECK_MSG(num_shards >= 1,
                "ShardedEngine needs >= 1 shard, got " << num_shards);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Engine>());
  }
  outboxes_ = std::vector<Outbox>(static_cast<std::size_t>(num_shards));
}

void ShardedEngine::post(int src_shard, int dst_shard, TimeNs t,
                         std::function<void()> fn) {
  FCC_DCHECK(src_shard >= 0 && src_shard < num_shards());
  FCC_DCHECK(dst_shard >= 0 && dst_shard < num_shards());
  Outbox& ob = outboxes_[static_cast<std::size_t>(src_shard)];
  ob.msgs.push_back(Message{t, src_shard, dst_shard, ob.next_seq++,
                            /*rewind=*/false, std::move(fn)});
}

void ShardedEngine::post_rewind(int src_shard, int dst_shard, TimeNs t,
                                std::function<void()> fn) {
  FCC_DCHECK(src_shard >= 0 && src_shard < num_shards());
  FCC_DCHECK(dst_shard >= 0 && dst_shard < num_shards());
  Outbox& ob = outboxes_[static_cast<std::size_t>(src_shard)];
  ob.msgs.push_back(Message{t, src_shard, dst_shard, ob.next_seq++,
                            /*rewind=*/true, std::move(fn)});
}

int ShardedEngine::add_barrier_hook(std::function<void()> fn) {
  const int handle = next_hook_++;
  hooks_.emplace_back(handle, std::move(fn));
  return handle;
}

void ShardedEngine::remove_barrier_hook(int handle) {
  std::erase_if(hooks_, [handle](const auto& p) { return p.first == handle; });
}

std::size_t ShardedEngine::drain_barrier() {
  for (auto& [handle, fn] : hooks_) fn();
  merge_scratch_.clear();
  for (Outbox& ob : outboxes_) {
    for (Message& m : ob.msgs) merge_scratch_.push_back(std::move(m));
    ob.msgs.clear();
  }
  // (time, src shard, per-shard seq): a total order — (src_shard, seq) pairs
  // are unique — so the injection sequence, and with it each destination
  // engine's tie-break order, is independent of how shards were threaded.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Message& a, const Message& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
              return a.seq < b.seq;
            });
  for (Message& m : merge_scratch_) {
    Engine& dst = *shards_[static_cast<std::size_t>(m.dst_shard)];
    if (m.rewind) {
      // Rewind messages target an exact time that may sit behind the
      // destination's window frontier (run_until parks now_ at the
      // deadline); the frontier itself never ran past the message's time,
      // because the sender's pending state bounded Tmin.
      dst.schedule_at_unchecked(m.t, std::move(m.fn));
    } else {
      dst.schedule_at(m.t, std::move(m.fn));
    }
  }
  const std::size_t injected = merge_scratch_.size();
  merge_scratch_.clear();
  return injected;
}

bool ShardedEngine::idle() const {
  for (const auto& s : shards_) {
    if (!s->idle()) return false;
  }
  return true;
}

int ShardedEngine::live_tasks() const {
  int n = 0;
  for (const auto& s : shards_) n += s->live_tasks();
  return n;
}

TimeNs ShardedEngine::next_event_time() {
  TimeNs tmin = Engine::kNoEvent;
  for (const auto& s : shards_) {
    const TimeNs t = s->next_event_time();
    if (t != Engine::kNoEvent && (tmin == Engine::kNoEvent || t < tmin)) {
      tmin = t;
    }
  }
  return tmin;
}

namespace {

inline std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Persistent worker team for one run(): workers park on a condvar between
/// windows and wake per generation. Mutex+condvar (not spinning) so the
/// protocol is TSan-clean and idle shards cost nothing.
struct WorkerTeam {
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  int remaining = 0;
  TimeNs deadline = 0;
  bool stop = false;
  std::size_t events = 0;
  std::vector<std::uint64_t> stripe_ns;  // per worker, this window's span
};

}  // namespace

ShardedEngine::RunStats ShardedEngine::run(TimeNs lookahead,
                                           unsigned num_threads) {
  FCC_CHECK_MSG(lookahead > 0,
                "sharded run needs a positive lookahead, got " << lookahead);
  const int num_sh = num_shards();
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned team_size =
      std::min(num_threads, static_cast<unsigned>(num_sh));

  RunStats stats;
  stats.threads = team_size;

  // Serial fast path (single shard, or a one-thread request): identical
  // protocol, no worker team. Windows still apply so barrier hooks and the
  // mailbox see the same schedule as the threaded run.
  if (team_size <= 1) {
    for (;;) {
      const std::uint64_t b0 = wall_now_ns();
      const std::size_t injected = drain_barrier();
      stats.barrier_wall_ns += wall_now_ns() - b0;
      stats.messages += injected;
      const TimeNs tmin = next_event_time();
      if (tmin == Engine::kNoEvent) {
        if (injected == 0) break;
        continue;
      }
      const TimeNs bound = tmin + lookahead - 1;  // inclusive: [tmin, tmin+L)
      // Shards run back to back here, so each one's span can be timed
      // individually: the slowest becomes the window's critical-path cost.
      std::uint64_t worst = 0;
      for (auto& s : shards_) {
        const std::uint64_t w0 = wall_now_ns();
        stats.events += s->run_until(bound);
        const std::uint64_t dt = wall_now_ns() - w0;
        stats.window_wall_ns += dt;
        worst = std::max(worst, dt);
      }
      stats.critical_wall_ns += worst;
      ++stats.windows;
    }
    return stats;
  }

  WorkerTeam team;
  team.stripe_ns.assign(team_size, 0);
  std::vector<std::thread> workers;
  workers.reserve(team_size);
  for (unsigned w = 0; w < team_size; ++w) {
    workers.emplace_back([this, &team, w, team_size] {
      std::uint64_t seen = 0;
      for (;;) {
        TimeNs deadline;
        {
          std::unique_lock<std::mutex> lk(team.mu);
          team.cv_work.wait(
              lk, [&] { return team.stop || team.generation != seen; });
          if (team.stop) return;
          seen = team.generation;
          deadline = team.deadline;
        }
        // Shards striped across workers; each shard has exactly one owner
        // thread this window, and the barrier mutex orders windows.
        std::size_t fired = 0;
        const std::uint64_t w0 = wall_now_ns();
        for (int s = static_cast<int>(w); s < num_shards();
             s += static_cast<int>(team_size)) {
          fired += shards_[static_cast<std::size_t>(s)]->run_until(deadline);
        }
        const std::uint64_t dt = wall_now_ns() - w0;
        {
          std::lock_guard<std::mutex> lk(team.mu);
          team.events += fired;
          team.stripe_ns[w] = dt;
          if (--team.remaining == 0) team.cv_done.notify_one();
        }
      }
    });
  }

  for (;;) {
    const std::uint64_t b0 = wall_now_ns();
    const std::size_t injected = drain_barrier();
    stats.barrier_wall_ns += wall_now_ns() - b0;
    stats.messages += injected;
    const TimeNs tmin = next_event_time();
    if (tmin == Engine::kNoEvent) {
      if (injected == 0) break;
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(team.mu);
      team.deadline = tmin + lookahead - 1;
      team.remaining = static_cast<int>(team_size);
      ++team.generation;
      team.cv_work.notify_all();
      team.cv_done.wait(lk, [&] { return team.remaining == 0; });
      std::uint64_t worst = 0;
      for (const std::uint64_t dt : team.stripe_ns) {
        stats.window_wall_ns += dt;
        worst = std::max(worst, dt);
      }
      stats.critical_wall_ns += worst;
    }
    ++stats.windows;
  }

  {
    std::lock_guard<std::mutex> lk(team.mu);
    team.stop = true;
    team.cv_work.notify_all();
  }
  for (auto& t : workers) t.join();
  stats.events += team.events;
  return stats;
}

}  // namespace fcc::sim

// Coroutine process type for the event engine.
//
// A simulated process is a C++20 coroutine returning `sim::Task`. Tasks are
// eager (start running when called) and detached (the frame destroys itself
// at completion); completion is communicated through sim primitives
// (OneShot, Condition, counters), never by touching the Task handle.
//
// Any process whose first parameter is `Engine&` is automatically registered
// with that engine, so Engine::live_tasks() can detect deadlocks: a drained
// event queue with live tasks means someone is suspended on a condition that
// will never fire.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/engine.h"

namespace fcc::sim {

class Task {  // intentionally discardable: processes are fire-and-forget
 public:
  struct promise_type {
    Engine* engine = nullptr;

    promise_type() = default;

    // Free function / lambda whose first argument is Engine&.
    template <typename... Args>
    explicit promise_type(Engine& e, Args&&...) : engine(&e) {
      e.task_started();
    }

    // Member coroutine: implicit object parameter first, then Engine&.
    template <typename Self, typename... Args>
    promise_type(Self&&, Engine& e, Args&&...) : engine(&e) {
      e.task_started();
    }

    Task get_return_object() { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {
      if (engine != nullptr) engine->task_finished();
    }
    [[noreturn]] void unhandled_exception() {
      // Simulation processes encode failures in results; an escaping
      // exception is a library bug and diagnosing at the throw site beats
      // unwinding through the scheduler.
      std::terminate();
    }
  };
};

/// Awaitable that suspends the process for `dt` virtual nanoseconds. Even a
/// zero-length delay round-trips through the event queue, so that resume
/// order stays deterministic relative to other same-time events.
class Delay {
 public:
  Delay(Engine& e, TimeNs dt) : engine_(e), dt_(dt) { FCC_CHECK(dt >= 0); }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    engine_.schedule_resume_after(dt_, h);
  }
  void await_resume() const noexcept {}

 private:
  Engine& engine_;
  TimeNs dt_;
};

inline Delay delay(Engine& e, TimeNs dt) { return Delay(e, dt); }

/// Awaitable that suspends until absolute time `t` (no-op if in the past).
inline Delay delay_until(Engine& e, TimeNs t) {
  return Delay(e, t > e.now() ? t - e.now() : 0);
}

}  // namespace fcc::sim

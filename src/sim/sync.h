// Synchronization primitives for simulated processes.
//
// All wakeups are funneled through the engine's event queue (never direct
// handle.resume() from a notifier), so wake order is deterministic and a
// notifier's stack never nests a resumed process. Every wakeup uses the
// engine's resume fast path (`schedule_resume_after`): no callable object,
// no allocation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.h"
#include "sim/task.h"

namespace fcc::sim {

/// One-shot event: processes wait until some other process sets it. Waiting
/// on an already-set OneShot does not suspend (still no queue round-trip:
/// the waiter already established its position by running).
class OneShot {
 public:
  explicit OneShot(Engine& e) : engine_(e) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;
  ~OneShot() { FCC_CHECK_MSG(waiters_.empty(), "OneShot destroyed with waiters"); }

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) {
      engine_.schedule_resume_after(0, h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      OneShot& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Broadcast condition: `notify_all()` wakes every process currently blocked
/// in `wait()`. There is no predicate built in — waiters re-check their own
/// predicate in a loop:
///
///   while (!ready()) co_await cond.wait();
///
/// Prefer a targeted primitive where the predicate is known at the notifier
/// (shmem::FlagArray threshold waiters, shmem::World::quiet): broadcasting
/// costs one no-op resume event per unsatisfied waiter per notify.
class Condition {
 public:
  explicit Condition(Engine& e) : engine_(e) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;
  ~Condition() {
    FCC_CHECK_MSG(waiters_.empty(), "Condition destroyed with waiters");
  }

  void notify_all() {
    for (auto h : waiters_) {
      engine_.schedule_resume_after(0, h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Condition& c;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { c.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t num_waiters() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO handoff (a released permit goes to the
/// longest-waiting process, not back to the pool, so no waiter starves).
/// Already a targeted wakeup: release() resumes exactly one waiter, whose
/// permit is in hand — no re-check loop.
class Semaphore {
 public:
  Semaphore(Engine& e, std::int64_t initial) : engine_(e), count_(initial) {
    FCC_CHECK(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;
  ~Semaphore() {
    FCC_CHECK_MSG(waiters_.empty(), "Semaphore destroyed with waiters");
  }

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept {
        if (s.count_ > 0 && s.waiters_.empty()) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.schedule_resume_after(0, h);
    } else {
      ++count_;
    }
  }

  std::int64_t available() const { return count_; }

 private:
  Engine& engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Join counter: tracks N outstanding sub-activities; `done` fires when all
/// have arrived. The canonical pattern for "kernel completes when every WG
/// slot finishes".
class JoinCounter {
 public:
  JoinCounter(Engine& e, int expected) : done_(e), remaining_(expected) {
    FCC_CHECK(expected >= 0);
    if (remaining_ == 0) done_.set();
  }

  void arrive() {
    FCC_CHECK(remaining_ > 0);
    if (--remaining_ == 0) done_.set();
  }

  auto wait() { return done_.wait(); }
  bool is_done() const { return done_.is_set(); }
  int remaining() const { return remaining_; }

 private:
  OneShot done_;
  int remaining_;
};

}  // namespace fcc::sim

// Cross-shard join with exact completion time.
//
// The fused-operator runtime's core rendezvous is "driver suspends until
// every per-PE body is done, then resumes at the instant the last one
// finished". On a serial engine a JoinCounter does this for free: the last
// arrive() fires at the global max completion time, so the OneShot resume
// lands exactly there. On a sharded machine the bodies finish on different
// shards whose clocks are only window-synchronized, and the driver's shard
// has already been parked at the window deadline by run_until — the resume
// must be scheduled at max(arrival times) *behind* the home frontier.
//
// ShardJoin solves both halves:
//
//   * Per-shard arrival slots (cache-line padded, single-writer: only the
//     shard's owning thread touches its slot) record the max local arrival
//     time; one atomic countdown orders the slot writes before the
//     finisher's read (acq_rel RMW chain).
//   * The expected count is num_arrivals + 1 — the driver's await itself
//     "arrives" right after publishing its handle, so the counter cannot
//     hit zero before the handle exists, even if every body completes in
//     the same window the driver suspended in.
//   * The finisher computes t_max over the slots and schedules the resume
//     on the home shard: directly when it *is* the home shard (legal —
//     t_max >= its own now), else through ShardedEngine::post_rewind, which
//     bypasses the destination engine's no-past check at barrier injection.
//
// On a serial machine every arrival is home-shard and the code path reduces
// to "last arrive schedules the resume at now" — the exact event the
// JoinCounter + OneShot pair used to emit, so serial timing is unchanged.
//
// One-shot: construct a fresh ShardJoin per run (the fused runtime does).
#pragma once

#include <algorithm>
#include <atomic>
#include <coroutine>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"

namespace fcc::sim {

class ShardJoin {
 public:
  ShardJoin(ShardedEngine& se, int home_shard, int num_arrivals)
      : se_(se),
        home_shard_(home_shard),
        slots_(static_cast<std::size_t>(se.num_shards())),
        remaining_(num_arrivals + 1) {
    FCC_CHECK(num_arrivals >= 1);
    FCC_CHECK(home_shard >= 0 && home_shard < se.num_shards());
  }
  ShardJoin(const ShardJoin&) = delete;
  ShardJoin& operator=(const ShardJoin&) = delete;

  /// One arrival from `shard` at that shard's local time `t`. Must be
  /// called from the shard's owning thread (body coroutines qualify).
  void arrive(int shard, TimeNs t) {
    Slot& s = slots_[static_cast<std::size_t>(shard)];
    if (t > s.t) s.t = t;
    finish_if_last(shard);
  }

  /// Awaited exactly once, by the driver, on the home shard. Resumes at
  /// max(arrival times) — possibly rewinding the home frontier.
  auto wait() {
    struct Awaiter {
      ShardJoin& j;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        j.h_ = h;
        // The +1 arrival: publishes the handle before the counter can
        // reach zero. No slot write — the resume time is the bodies' max.
        j.finish_if_last(j.home_shard_);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  struct alignas(64) Slot {
    TimeNs t = -1;
  };

  void finish_if_last(int shard) {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    TimeNs t_max = -1;
    for (const Slot& s : slots_) t_max = std::max(t_max, s.t);
    FCC_CHECK_MSG(t_max >= 0 && h_ != nullptr,
                  "ShardJoin finished with no recorded arrivals");
    if (shard == home_shard_) {
      se_.shard(home_shard_).schedule_resume_at(t_max, h_);
    } else {
      se_.post_rewind(shard, home_shard_, t_max,
                      [h = h_] { h.resume(); });
    }
  }

  ShardedEngine& se_;
  int home_shard_;
  std::vector<Slot> slots_;
  std::atomic<int> remaining_;
  std::coroutine_handle<> h_ = nullptr;
};

}  // namespace fcc::sim

// Deterministic discrete-event engine.
//
// Events are ordered by (time, insertion sequence): two events at the same
// virtual time fire in the order they were scheduled, which makes every
// simulation bit-reproducible. The engine is deliberately single-threaded
// (CP.2: no shared mutable state between threads); sweep-level parallelism
// runs *whole engines* on separate threads instead.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace fcc::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(TimeNs t, std::function<void()> fn) {
    FCC_CHECK_MSG(t >= now_, "cannot schedule into the past: " << t << " < "
                                                               << now_);
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_after(TimeNs dt, std::function<void()> fn) {
    FCC_CHECK(dt >= 0);
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Runs until the event queue drains. Returns the number of events
  /// processed. If coroutine processes are still suspended on conditions
  /// afterwards (live_tasks() > 0) the simulation deadlocked.
  std::size_t run() {
    std::size_t processed = 0;
    while (!queue_.empty()) {
      step();
      ++processed;
    }
    return processed;
  }

  /// Runs events with time <= `deadline`. Returns events processed.
  std::size_t run_until(TimeNs deadline) {
    std::size_t processed = 0;
    while (!queue_.empty() && queue_.top().t <= deadline) {
      step();
      ++processed;
    }
    if (now_ < deadline) now_ = deadline;
    return processed;
  }

  bool idle() const { return queue_.empty(); }

  /// Number of coroutine processes started but not yet finished.
  int live_tasks() const { return live_tasks_; }

  /// Called by the Task promise machinery; not for direct use.
  void task_started() { ++live_tasks_; }
  void task_finished() {
    --live_tasks_;
    FCC_DCHECK(live_tasks_ >= 0);
  }

 private:
  struct Event {
    TimeNs t;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void step() {
    // The event is moved out before running: the callback may schedule more
    // events (mutating the queue).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    FCC_DCHECK(ev.t >= now_);
    now_ = ev.t;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  int live_tasks_ = 0;
};

}  // namespace fcc::sim

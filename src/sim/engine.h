// Deterministic discrete-event engine.
//
// Events are ordered by (time, insertion sequence): two events at the same
// virtual time fire in the order they were scheduled, which makes every
// simulation bit-reproducible. The engine is deliberately single-threaded
// (CP.2: no shared mutable state between threads); sweep-level parallelism
// runs *whole engines* on separate threads instead (bench/sweep_runner.h).
//
// Hot-path design (host speed only — simulated timing is untouched, see
// tests/test_sim_determinism.cc):
//
//   * The ready queue is three-tiered. Events scheduled while the engine
//     holds no pending events (the bulk-spawn phase at the start of every
//     operator, and the single in-flight event of a delay chain) land in a
//     flat staging buffer; the first pop sorts it once, descending, and
//     drains it back-to-front — one cache-friendly std::sort instead of
//     per-event heap repair. Events scheduled *while* events are pending
//     go to a d-ary heap (d = 4) of the same 24-byte (time, seq, payload)
//     entries. Each pop takes the smaller of (sorted-run back, heap root)
//     under the (time, seq) total order, so the engine pops in exactly the
//     same order as the std::priority_queue it replaced.
//   * The overwhelming event kind is "resume this coroutine" (delay,
//     busy_wait, flag wakeups, PUT completions). `schedule_resume_*` packs
//     the bare handle into the heap entry's tagged payload word — no event
//     object, no allocation, no dispatch indirection beyond the resume.
//   * Arbitrary callbacks live in a slab of fixed-size pooled nodes
//     (chunked so node addresses are stable; freed nodes go on a free list
//     and are reused — steady-state scheduling performs zero heap
//     allocations). Callables up to the node's small buffer are stored
//     inline (every callback in this codebase fits); larger ones fall back
//     to one heap allocation, preserving the generic API.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace fcc::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() {
    // Destroy pending callbacks without running them (coroutine handles are
    // non-owning here: frames are destroyed by their own final-suspend
    // machinery or leaked with the process, matching the old behavior).
    for (const auto* q : {&staging_, &sorted_run_, &heap_}) {
      for (const HeapEntry& e : *q) {
        if (!is_resume(e.payload)) {
          Node& n = node(node_index(e.payload));
          n.dispose(n.buf);
        }
      }
    }
  }

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Callables up to
  /// kInlineBytes are stored in a pooled event node; larger ones cost one
  /// heap allocation.
  template <typename F>
  void schedule_at(TimeNs t, F&& fn) {
    FCC_CHECK_MSG(t >= now_, "cannot schedule into the past: " << t << " < "
                                                               << now_);
    schedule_at_unchecked(t, std::forward<F>(fn));
  }

  /// Rewind scheduling: schedule_at without the no-past check. Only the
  /// sharded barrier machinery uses this — `run_until` advances `now_` to
  /// the window deadline even on an idle shard, so a cross-shard join or
  /// collective that resolves to an exact completion time inside the window
  /// must be injected "into the past" of the frontier. Firing such an entry
  /// rewinds `now_` to its time; the continuation may only touch its own
  /// shard's state and must delay by >= the lookahead before its next
  /// cross-shard effect (every fused-op driver tail does: stream_sync /
  /// kernel_launch delays dominate any fabric latency floor).
  template <typename F>
  void schedule_at_unchecked(TimeNs t, F&& fn) {
    // The node is fully constructed before its entry is queued, so a
    // throwing callable constructor (or allocation failure) leaves nothing
    // behind that fire() or ~Engine() could touch.
    const std::uint32_t idx = alloc_node();
    Node& n = node(idx);
    using Fn = std::decay_t<F>;
    try {
      if constexpr (sizeof(Fn) <= kInlineBytes &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(n.buf)) Fn(std::forward<F>(fn));
        n.run_and_dispose = [](void* buf) {
          Fn* fn_p = std::launder(reinterpret_cast<Fn*>(buf));
          (*fn_p)();
          fn_p->~Fn();
        };
        n.dispose = [](void* buf) {
          std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
        };
      } else {
        Fn* heap_fn = new Fn(std::forward<F>(fn));
        std::memcpy(n.buf, &heap_fn, sizeof(heap_fn));
        n.run_and_dispose = [](void* buf) {
          Fn* fn_p;
          std::memcpy(&fn_p, buf, sizeof(fn_p));
          (*fn_p)();
          delete fn_p;
        };
        n.dispose = [](void* buf) {
          Fn* fn_p;
          std::memcpy(&fn_p, buf, sizeof(fn_p));
          delete fn_p;
        };
      }
    } catch (...) {
      free_.push_back(idx);
      throw;
    }
    try {
      push_entry_unchecked(t, static_cast<std::uintptr_t>(idx) << 1);
    } catch (...) {
      n.dispose(n.buf);
      free_.push_back(idx);
      throw;
    }
  }

  /// Schedules `fn` after a relative delay (>= 0).
  template <typename F>
  void schedule_after(TimeNs dt, F&& fn) {
    FCC_CHECK(dt >= 0);
    schedule_at(now_ + dt, std::forward<F>(fn));
  }

  /// Fast path for the dominant event kind: resume `h` at time `t`. The
  /// handle itself is the event payload — nothing is allocated or pooled.
  void schedule_resume_at(TimeNs t, std::coroutine_handle<> h) {
    push_entry(t, reinterpret_cast<std::uintptr_t>(h.address()) | 1u);
  }

  /// Rewind variant of schedule_resume_at; see schedule_at_unchecked.
  void schedule_resume_at_unchecked(TimeNs t, std::coroutine_handle<> h) {
    push_entry_unchecked(t, reinterpret_cast<std::uintptr_t>(h.address()) | 1u);
  }

  void schedule_resume_after(TimeNs dt, std::coroutine_handle<> h) {
    FCC_CHECK(dt >= 0);
    schedule_resume_at(now_ + dt, h);
  }

  /// Runs until the event queue drains. Returns the number of events
  /// processed. If coroutine processes are still suspended on conditions
  /// afterwards (live_tasks() > 0) the simulation deadlocked.
  std::size_t run() {
    std::size_t processed = 0;
    for (;;) {
      // Single-pending fast cycle: one in-flight event ping-ponging through
      // the queue (a delay chain / busy-wait loop, the most common shape).
      // By the staging invariant sorted_run_ and heap_ are empty here, so
      // the event can fire straight out of the staging buffer.
      while (staging_.size() == 1) {
        const HeapEntry top = staging_.front();
        staging_.clear();
        FCC_DCHECK(top.t >= now_);
        now_ = top.t;
        ++processed;
        fire(top);
      }
      if (idle()) return processed;
      step();
      ++processed;
    }
  }

  /// Runs events with time <= `deadline`. Returns events processed.
  std::size_t run_until(TimeNs deadline) {
    std::size_t processed = 0;
    for (const HeapEntry* next = peek();
         next != nullptr && next->t <= deadline; next = peek()) {
      step();
      ++processed;
    }
    if (now_ < deadline) now_ = deadline;
    return processed;
  }

  bool idle() const {
    return staging_.empty() && sorted_run_.empty() && heap_.empty();
  }

  /// Sentinel returned by next_event_time() when no events are pending.
  static constexpr TimeNs kNoEvent = -1;

  /// Time of the earliest pending event, or kNoEvent when idle. May flush
  /// the staging tier (deterministic); used by the sharded scheduler to
  /// compute conservative window bounds.
  TimeNs next_event_time() {
    const HeapEntry* e = peek();
    return e != nullptr ? e->t : kNoEvent;
  }

  /// Events scheduled but not yet fired.
  std::size_t pending() const {
    return staging_.size() + sorted_run_.size() + heap_.size();
  }

  /// Pooled callback nodes ever created (capacity watermark, not live
  /// count; resume events never take a node).
  std::size_t slab_nodes() const { return next_node_; }

  /// Number of coroutine processes started but not yet finished.
  int live_tasks() const { return live_tasks_; }

  /// Called by the Task promise machinery; not for direct use.
  void task_started() { ++live_tasks_; }
  void task_finished() {
    --live_tasks_;
    FCC_DCHECK(live_tasks_ >= 0);
  }

 private:
  /// Small-buffer size for inline callbacks. Sized for the largest lambda
  /// the library schedules (PUT delivery: this + ids + a std::function).
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kChunkShift = 9;  // 512 nodes per slab chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr unsigned kHeapArity = 4;

  /// Pooled storage for one callback event. `run_and_dispose` executes and
  /// destroys in a single indirect call; `dispose` destroys without running
  /// (engine teardown with events still pending).
  struct Node {
    void (*run_and_dispose)(void* buf);
    void (*dispose)(void* buf);
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  /// Heap entries carry the full (time, seq) sort key, so sifting compares
  /// within one contiguous array and never dereferences the slab. The
  /// payload word is tagged: bit 0 set => the rest is a coroutine frame
  /// address to resume (frame alignment guarantees the bit is free);
  /// bit 0 clear => payload >> 1 is a slab node index.
  struct HeapEntry {
    TimeNs t;
    std::uint64_t seq;
    std::uintptr_t payload;
  };

  static bool is_resume(std::uintptr_t payload) { return (payload & 1u) != 0; }
  static std::uint32_t node_index(std::uintptr_t payload) {
    return static_cast<std::uint32_t>(payload >> 1);
  }

  Node& node(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  void push_entry(TimeNs t, std::uintptr_t payload) {
    FCC_CHECK_MSG(t >= now_, "cannot schedule into the past: " << t << " < "
                                                               << now_);
    push_entry_unchecked(t, payload);
  }

  void push_entry_unchecked(TimeNs t, std::uintptr_t payload) {
    const HeapEntry e{t, next_seq_++, payload};
    // Invariant: staging_ is only non-empty while sorted_run_ and heap_ are
    // both empty (no pop can intervene without flushing first), so staged
    // events always have smaller seq than anything later pushed on the heap.
    if (sorted_run_.empty() && heap_.empty()) {
      staging_.push_back(e);
    } else {
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    }
  }

  /// Sorts the staged bulk (descending) so it drains back-to-front.
  void flush_staging() {
    if (staging_.empty()) return;
    FCC_DCHECK(sorted_run_.empty());
    sorted_run_.swap(staging_);
    if (sorted_run_.size() > 1) {
      std::sort(sorted_run_.begin(), sorted_run_.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return before(b, a);
                });
    }
  }

  /// Takes a pooled node off the free list (or grows the slab). The caller
  /// owns it until its entry is queued via push_entry.
  std::uint32_t alloc_node() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    if (next_node_ >> kChunkShift == chunks_.size()) {
      chunks_.push_back(std::make_unique_for_overwrite<Node[]>(kChunkSize));
    }
    return static_cast<std::uint32_t>(next_node_++);
  }

  /// True iff entry `a` fires before entry `b` ((time, seq) total order).
  /// Branch-free: inside the sift loops this comparison is a data-dependent
  /// coin flip, and a mispredicted branch costs more than the arithmetic.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return static_cast<int>(a.t < b.t) |
           (static_cast<int>(a.t == b.t) & static_cast<int>(a.seq < b.seq));
  }

  void sift_up(std::size_t i) {
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Removes the root with the bottom-up "hole" strategy (what libstdc++'s
  /// __adjust_heap does for std::priority_queue): walk the hole to a leaf
  /// choosing the min child at each level — no early-exit compare against
  /// the relocated tail — then drop the tail in and sift it up, which
  /// terminates almost immediately because the tail came from the bottom.
  void pop_root() {
    const std::size_t size = heap_.size() - 1;  // entries after the pop
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child < size) {
      const std::size_t last =
          child + kHeapArity < size ? child + kHeapArity : size;
      std::size_t best = child;
      for (std::size_t c = child + 1; c < last; ++c) {
        best = before(heap_[c], heap_[best]) ? c : best;
      }
      heap_[hole] = heap_[best];
      hole = best;
      child = hole * kHeapArity + 1;
    }
    if (hole != size) {
      heap_[hole] = heap_[size];
      sift_up(hole);
    }
    heap_.pop_back();
  }

  /// True iff the next event in (time, seq) order sits in heap_ rather
  /// than sorted_run_. Pre: staging flushed, not idle.
  bool next_is_heap() const {
    if (sorted_run_.empty()) return true;
    if (heap_.empty()) return false;
    return before(heap_.front(), sorted_run_.back());
  }

  /// Next event in (time, seq) order, or nullptr when idle. Flushes the
  /// staging tier; the pointer is invalidated by any schedule or step.
  const HeapEntry* peek() {
    flush_staging();
    if (sorted_run_.empty() && heap_.empty()) return nullptr;
    return next_is_heap() ? &heap_.front() : &sorted_run_.back();
  }

  void step() {
    flush_staging();
    HeapEntry top;
    if (next_is_heap()) {
      top = heap_.front();
      pop_root();
    } else {
      top = sorted_run_.back();
      sorted_run_.pop_back();
    }
    // A rewind entry (schedule_at_unchecked) legitimately moves now_
    // backwards from the window deadline run_until parked it at; run_until
    // restores the frontier after the loop.
    now_ = top.t;
    fire(top);
  }

  void fire(const HeapEntry& top) {
    if (is_resume(top.payload)) {
      std::coroutine_handle<>::from_address(
          reinterpret_cast<void*>(top.payload & ~std::uintptr_t{1}))
          .resume();
    } else {
      // The callback runs in place (nodes have stable addresses, and
      // anything it schedules takes other nodes); recycle afterwards.
      const std::uint32_t idx = node_index(top.payload);
      Node& n = node(idx);
      n.run_and_dispose(n.buf);
      free_.push_back(idx);
    }
  }

  std::vector<HeapEntry> staging_;     // unsorted bulk (engine was empty)
  std::vector<HeapEntry> sorted_run_;  // staged bulk, sorted descending
  std::vector<HeapEntry> heap_;        // d-ary heap for mid-drain schedules
  std::vector<std::uint32_t> free_;    // recycled node indices
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::size_t next_node_ = 0;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  int live_tasks_ = 0;
};

}  // namespace fcc::sim

// Execution trace recorder.
//
// Records spans (named intervals on a track) and instants (point events).
// Tracks map to (pid, tid) in the Chrome trace JSON export — benches use
// pid = GPU, tid = persistent WG slot — and the ASCII renderer reproduces
// the paper's Fig. 11 style timeline in a terminal.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace fcc::sim {

struct TraceSpan {
  std::string name;
  std::string category;
  int pid = 0;  // e.g. GPU / node
  int tid = 0;  // e.g. persistent WG slot
  TimeNs start = 0;
  TimeNs end = 0;
};

struct TraceInstant {
  std::string name;
  std::string category;
  int pid = 0;
  int tid = 0;
  TimeNs at = 0;
};

class Trace {
 public:
  /// A disabled trace drops everything; hot loops call through unconditionally.
  explicit Trace(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void add_span(TraceSpan s) {
    if (enabled_) spans_.push_back(std::move(s));
  }
  void add_instant(TraceInstant i) {
    if (enabled_) instants_.push_back(std::move(i));
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }

  void clear() {
    spans_.clear();
    instants_.clear();
  }

  /// Chrome tracing "trace event" JSON (load in chrome://tracing or Perfetto).
  void write_chrome_json(std::ostream& os) const;

  struct AsciiOptions {
    int width = 100;           // characters across the full time range
    int max_tracks = 64;       // cap on rendered (pid,tid) rows
    bool show_instants = true; // overlay instant markers ('!' by default)
  };

  /// Renders a per-track character raster: each row is one (pid,tid) track,
  /// span coverage drawn with the first letter of the span category and
  /// instants overlaid as '*'.
  void render_ascii(std::ostream& os, const AsciiOptions& opts) const;
  void render_ascii(std::ostream& os) const { render_ascii(os, AsciiOptions{}); }

 private:
  bool enabled_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
};

}  // namespace fcc::sim

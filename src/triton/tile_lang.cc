#include "triton/tile_lang.h"

#include <algorithm>
#include <utility>

namespace fcc::triton {

TileKernel::TileKernel(std::string name, ops::GemmShape shape,
                       double alu_efficiency)
    : name_(std::move(name)), shape_(shape), alu_efficiency_(alu_efficiency) {
  FCC_CHECK(shape_.m >= 1 && shape_.n >= 1 && shape_.k >= 1);
  FCC_CHECK(alu_efficiency_ > 0 && alu_efficiency_ <= 1.0);
}

TileKernel& TileKernel::load_a() {
  stmts_.push_back({StmtKind::kLoadA, {}, {}, {}, nullptr, 0});
  return *this;
}

TileKernel& TileKernel::load_b() {
  stmts_.push_back({StmtKind::kLoadB, {}, {}, {}, nullptr, 0});
  return *this;
}

TileKernel& TileKernel::dot() {
  stmts_.push_back({StmtKind::kDot, {}, {}, {}, nullptr, 0});
  return *this;
}

TileKernel& TileKernel::store_c_local(WriteFn write) {
  stmts_.push_back(
      {StmtKind::kStoreLocal, {}, std::move(write), {}, nullptr, 0});
  return *this;
}

TileKernel& TileKernel::put_c_remote(DestFn dest, WriteFn write) {
  stmts_.push_back({StmtKind::kPutRemote, std::move(dest), std::move(write),
                    {}, nullptr, 0});
  uses_comm_ = true;
  return *this;
}

TileKernel& TileKernel::fence() {
  stmts_.push_back({StmtKind::kFence, {}, {}, {}, nullptr, 0});
  uses_comm_ = true;
  return *this;
}

TileKernel& TileKernel::atomic_add_remote(shmem::FlagArray* flags, DestFn dest,
                                          FlagIdxFn idx,
                                          std::uint64_t amount) {
  FCC_CHECK(flags != nullptr);
  stmts_.push_back({StmtKind::kAtomicAdd, std::move(dest), {}, std::move(idx),
                    flags, amount});
  uses_comm_ = true;
  return *this;
}

gpu::KernelResources TileKernel::resources() const {
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + (uses_comm_ ? gpu::kShmemCtxVgprsPerThread : 0);
  return r;
}

void TileKernel::validate() const {
  bool has_a = false, has_b = false, has_dot = false;
  for (const auto& s : stmts_) {
    switch (s.kind) {
      case StmtKind::kLoadA: has_a = true; break;
      case StmtKind::kLoadB: has_b = true; break;
      case StmtKind::kDot:
        FCC_CHECK_MSG(has_a && has_b, "dot() requires load_a() and load_b()");
        has_dot = true;
        break;
      case StmtKind::kStoreLocal:
      case StmtKind::kPutRemote:
        FCC_CHECK_MSG(has_dot, "C consumers require a preceding dot()");
        break;
      case StmtKind::kFence:
      case StmtKind::kAtomicAdd:
        break;
    }
  }
  FCC_CHECK_MSG(has_dot, "kernel computes nothing (no dot())");
}

sim::Co TileKernel::launch(const LaunchConfig& cfg) {
  validate();
  FCC_CHECK(cfg.world != nullptr);
  auto& machine = cfg.world->machine();
  const auto& spec = machine.device(cfg.pe).spec();

  // Scheduling: communication-aware order runs remote-destination tiles
  // first, using the first put statement's destination map.
  DestFn dest_probe;
  for (const auto& s : stmts_) {
    if (s.kind == StmtKind::kPutRemote) {
      dest_probe = s.dest;
      break;
    }
  }
  const PeId pe = cfg.pe;
  auto is_remote = [&](int pid) {
    if (!dest_probe) return false;
    Ctx ctx{pe, pid, 0, &shape_};
    return dest_probe(ctx) != pe;
  };

  gpu::KernelRun::Params p;
  p.name = name_;
  p.num_slots = cfg.occupancy_slots_override > 0
                    ? cfg.occupancy_slots_override
                    : gpu::max_active_wgs(spec, resources());
  p.order = gpu::make_schedule(shape_.num_tiles(), cfg.policy, is_remote);
  p.wg_dispatch_overhead_ns = cfg.dispatch_overhead_ns;
  p.body = [this, &cfg](int slot, int pid) { return run_pid(cfg, slot, pid); };
  if (cfg.epilogue) {
    const int active =
        gpu::KernelRun::active_slot_count(p.num_slots, shape_.num_tiles());
    p.epilogue = [cb = cfg.epilogue, active](int slot) {
      return cb(slot, active);
    };
  }

  // The run lives on the launching PE's home-shard engine: launch() is
  // awaited from a per-PE body already running there, so every slot task
  // and the join stay shard-local.
  gpu::KernelRun run(machine.engine_of(cfg.pe), std::move(p));
  run.start();
  co_await run.wait();
}

sim::Co TileKernel::run_pid(const LaunchConfig& cfg, int slot, int pid) {
  auto& world = *cfg.world;
  auto& machine = world.machine();
  auto& dev = machine.device(cfg.pe);
  const Ctx ctx{cfg.pe, pid, slot, &shape_};

  const int rows = shape_.row_end(pid) - shape_.row_begin(pid);
  const int cols = shape_.col_end(pid) - shape_.col_begin(pid);

  // Aggregate the compute cost of this pid: panel loads + dot + local
  // stores. (Remote puts ride the fabric, not local HBM.)
  gpu::WorkCost cost;
  cost.alu_efficiency = alu_efficiency_;
  cost.curve = ops::kBaselineCurve;
  for (const auto& s : stmts_) {
    switch (s.kind) {
      case StmtKind::kLoadA:
        cost.hbm_bytes += static_cast<Bytes>(rows) * shape_.k * 4;
        break;
      case StmtKind::kLoadB:
        cost.hbm_bytes += static_cast<Bytes>(shape_.k) * cols * 4;
        break;
      case StmtKind::kDot:
        cost.flops += 2.0 * rows * cols * shape_.k;
        break;
      case StmtKind::kStoreLocal:
        cost.hbm_bytes += static_cast<Bytes>(rows) * cols * 4;
        break;
      case StmtKind::kPutRemote: {
        // Tiles that stay local are plain stores.
        if (s.dest(ctx) == cfg.pe) {
          cost.hbm_bytes += static_cast<Bytes>(rows) * cols * 4;
        }
        break;
      }
      default:
        break;
    }
  }
  co_await dev.compute(cost);

  // Functional tile math, shared by every C consumer.
  std::vector<float> tile;
  if (cfg.functional) {
    tile.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
    ops::gemm_tile(shape_, cfg.a, cfg.b, pid, tile);
  }

  const Bytes tile_bytes = static_cast<Bytes>(rows) * cols * 4;
  for (const auto& s : stmts_) {
    switch (s.kind) {
      case StmtKind::kStoreLocal:
        if (cfg.functional && s.write) s.write(ctx, tile);
        break;
      case StmtKind::kPutRemote: {
        const PeId dest = s.dest(ctx);
        if (dest == cfg.pe) {
          if (cfg.functional && s.write) s.write(ctx, tile);
          break;
        }
        std::function<void()> deliver;
        if (cfg.functional && s.write) {
          deliver = [w = s.write, ctx, t = tile] { w(ctx, t); };
        }
        co_await world.put_nbi(cfg.pe, dest, tile_bytes,
                               shmem::World::IssueKind::kStore,
                               std::move(deliver));
        break;
      }
      case StmtKind::kFence:
        co_await world.fence(cfg.pe);
        break;
      case StmtKind::kAtomicAdd: {
        const PeId dest = s.dest(ctx);
        auto* flags = s.flags;
        const std::size_t idx = s.flag_idx(ctx);
        const std::uint64_t amount = s.amount;
        if (dest == cfg.pe) {
          flags->add(dest, idx, amount);
        } else {
          co_await world.put_nbi(
              cfg.pe, dest, 8, shmem::World::IssueKind::kStore,
              [flags, dest, idx, amount] { flags->add(dest, idx, amount); });
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace fcc::triton

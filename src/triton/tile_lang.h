// Tile-level kernel DSL with communication primitives (Triton-extension
// analog, Sec. III-D).
//
// A TileKernel is a block-level program executed once per program instance
// ("pid" — one output tile of a GEMM). The builder mirrors the structure of
// a Triton matmul kernel; the communication statements (`put_c_remote`,
// `fence`, `atomic_add_remote`) are the extensions the paper adds: a Python
// wrapper around ROC_SHMEM's scale-up APIs, here a wrapper around
// shmem::World.
//
// Example (the fused MoE combine kernel, authored in fused/gemm_a2a.cc):
//
//   TileKernel k("moe_combine", shape, kTritonGemmEfficiency);
//   k.load_a().load_b().dot()
//    .put_c_remote(dest_of_tile, write_tile)
//    .fence()
//    .atomic_add_remote(&flags, dest_of_tile, flag_slot);
//
// The interpreter charges one WorkCost per pid (panel loads + dot flops +
// local stores), runs the functional tile math when buffers are bound, and
// routes the comm statements through the shmem world.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "gpu/occupancy.h"
#include "gpu/persistent.h"
#include "gpu/schedule.h"
#include "ops/cost_model.h"
#include "ops/gemm.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/co.h"

namespace fcc::triton {

class TileKernel {
 public:
  /// Per-program-instance context handed to addressing callbacks.
  struct Ctx {
    PeId pe = 0;
    int pid = 0;
    int slot = 0;
    const ops::GemmShape* shape = nullptr;
  };

  using DestFn = std::function<PeId(const Ctx&)>;
  /// Functional write of a finished tile (tile-local row-major values);
  /// runs at delivery time for remote puts, immediately for local stores.
  using WriteFn = std::function<void(const Ctx&, const std::vector<float>&)>;
  using FlagIdxFn = std::function<std::size_t(const Ctx&)>;

  TileKernel(std::string name, ops::GemmShape shape, double alu_efficiency);

  // ---- program statements (builder) ----
  TileKernel& load_a();
  TileKernel& load_b();
  TileKernel& dot();
  TileKernel& store_c_local(WriteFn write);
  /// Communication extension: zero-copy store of the finished tile into a
  /// peer GPU's buffer. A tile whose destination is the local PE is written
  /// locally (charged as a store).
  TileKernel& put_c_remote(DestFn dest, WriteFn write);
  TileKernel& fence();
  /// Communication extension: remote atomic fetch-add on a symmetric flag
  /// (arrival counters for the consumer side).
  TileKernel& atomic_add_remote(shmem::FlagArray* flags, DestFn dest,
                                FlagIdxFn idx, std::uint64_t amount = 1);

  const std::string& name() const { return name_; }
  const ops::GemmShape& shape() const { return shape_; }
  bool uses_comm() const { return uses_comm_; }

  /// Registers the kernel uses; comm statements cost the shmem context.
  gpu::KernelResources resources() const;

  /// Checks statement-order invariants (dot needs panels, puts need dot).
  void validate() const;

  // ---- launch ----
  struct LaunchConfig {
    shmem::World* world = nullptr;
    PeId pe = 0;
    gpu::SchedulePolicy policy = gpu::SchedulePolicy::kOblivious;
    int occupancy_slots_override = 0;
    TimeNs dispatch_overhead_ns = 40;
    bool functional = false;
    std::span<const float> a;  // bound A (m x k), functional only
    std::span<const float> b;  // bound B (k x n), functional only
    /// Optional per-slot epilogue (flag polling) appended by the caller.
    /// `active_slots` is the spawned-slot count (surplus slots never run an
    /// epilogue), so callers can stride flag subsets as slot, slot+active...
    /// without re-deriving the launch's occupancy math.
    std::function<sim::Co(int slot, int active_slots)> epilogue;
  };

  /// Launches the grid (one pid per output tile) and completes when every
  /// program instance (plus epilogues) has finished on this PE.
  sim::Co launch(const LaunchConfig& cfg);

 private:
  enum class StmtKind {
    kLoadA,
    kLoadB,
    kDot,
    kStoreLocal,
    kPutRemote,
    kFence,
    kAtomicAdd,
  };
  struct Stmt {
    StmtKind kind;
    DestFn dest;
    WriteFn write;
    FlagIdxFn flag_idx;
    shmem::FlagArray* flags = nullptr;
    std::uint64_t amount = 0;
  };

  sim::Co run_pid(const LaunchConfig& cfg, int slot, int pid);

  std::string name_;
  ops::GemmShape shape_;
  double alu_efficiency_;
  std::vector<Stmt> stmts_;
  bool uses_comm_ = false;
};

}  // namespace fcc::triton

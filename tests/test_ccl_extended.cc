// Extended collectives: all_to_all_v, gather/scatter, reduce, barrier.
#include <gtest/gtest.h>

#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "gpu/machine.h"
#include "sim/task.h"

namespace fcc::ccl {
namespace {

gpu::Machine::Config four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

std::vector<PeId> all_pes(gpu::Machine& m) {
  std::vector<PeId> v;
  for (int i = 0; i < m.num_pes(); ++i) v.push_back(i);
  return v;
}

FloatBufs make_bufs(std::vector<std::vector<float>>& storage) {
  FloatBufs b;
  for (auto& s : storage) b.per_rank.emplace_back(s);
  return b;
}

sim::Task drive_a2av(sim::Engine&, Communicator& comm,
                     const std::vector<std::int64_t>& counts, FloatBufs send,
                     FloatBufs recv, TimeNs& dur) {
  co_await comm.all_to_all_v(counts, std::move(send), std::move(recv));
  dur = comm.last_duration();
}

TEST(AllToAllV, RaggedSegmentsLandSourceMajor) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const int n = 4;
  // counts[src*n+dst]: src sends (src + dst) elements to dst.
  std::vector<std::int64_t> counts;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) counts.push_back(s + d);
  }
  std::vector<std::vector<float>> send(n), recv(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      for (int i = 0; i < s + d; ++i) {
        send[static_cast<size_t>(s)].push_back(
            static_cast<float>(100 * s + 10 * d + i));
      }
    }
  }
  for (int d = 0; d < n; ++d) {
    std::int64_t total = 0;
    for (int s = 0; s < n; ++s) total += s + d;
    recv[static_cast<size_t>(d)].assign(static_cast<size_t>(total), -1.f);
  }
  TimeNs dur = 0;
  drive_a2av(m.engine(), comm, counts, make_bufs(send), make_bufs(recv), dur);
  m.engine().run();
  EXPECT_GT(dur, 0);
  // Verify: dst d's buffer holds src 0's segment, then src 1's, ...
  for (int d = 0; d < n; ++d) {
    std::size_t off = 0;
    for (int s = 0; s < n; ++s) {
      for (int i = 0; i < s + d; ++i) {
        ASSERT_FLOAT_EQ(recv[static_cast<size_t>(d)][off++],
                        static_cast<float>(100 * s + 10 * d + i))
            << "dst " << d << " src " << s << " i " << i;
      }
    }
  }
}

TEST(AllToAllV, ZeroCountsAreLegal) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  std::vector<std::int64_t> counts(16, 0);
  TimeNs dur = 0;
  drive_a2av(m.engine(), comm, counts, FloatBufs{}, FloatBufs{}, dur);
  m.engine().run();
  EXPECT_GE(dur, Communicator::kSwOverheadNs);
}

sim::Task drive_gather(sim::Engine&, Communicator& comm, std::int64_t chunk,
                       int root, FloatBufs bufs, bool& done) {
  co_await comm.gather(chunk, root, std::move(bufs));
  done = true;
}

TEST(Gather, RootCollectsSourceMajor) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 4;
  std::vector<std::vector<float>> data(4, std::vector<float>(16, 0.f));
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < chunk; ++i) {
      data[static_cast<size_t>(r)][static_cast<size_t>(r * chunk + i)] =
          static_cast<float>(10 * r + i);
    }
  }
  bool done = false;
  drive_gather(m.engine(), comm, chunk, /*root=*/2, make_bufs(data), done);
  m.engine().run();
  ASSERT_TRUE(done);
  for (int src = 0; src < 4; ++src) {
    for (int i = 0; i < chunk; ++i) {
      EXPECT_FLOAT_EQ(data[2][static_cast<size_t>(src * chunk + i)],
                      static_cast<float>(10 * src + i));
    }
  }
}

sim::Task drive_scatter(sim::Engine&, Communicator& comm, std::int64_t chunk,
                        int root, FloatBufs bufs, bool& done) {
  co_await comm.scatter(chunk, root, std::move(bufs));
  done = true;
}

TEST(Scatter, LeavesRootChunkAndDistributesRest) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 3;
  std::vector<std::vector<float>> data(4, std::vector<float>(12, -1.f));
  for (int d = 0; d < 4; ++d) {
    for (int i = 0; i < chunk; ++i) {
      data[1][static_cast<size_t>(d * chunk + i)] =
          static_cast<float>(100 + 10 * d + i);
    }
  }
  bool done = false;
  drive_scatter(m.engine(), comm, chunk, /*root=*/1, make_bufs(data), done);
  m.engine().run();
  ASSERT_TRUE(done);
  for (int d = 0; d < 4; ++d) {
    if (d == 1) continue;
    for (int i = 0; i < chunk; ++i) {
      EXPECT_FLOAT_EQ(data[static_cast<size_t>(d)][static_cast<size_t>(i)],
                      static_cast<float>(100 + 10 * d + i));
    }
  }
}

sim::Task drive_reduce(sim::Engine&, Communicator& comm, std::int64_t n,
                       int root, FloatBufs bufs, bool& done) {
  co_await comm.reduce(n, root, std::move(bufs));
  done = true;
}

TEST(Reduce, RootHoldsSumOthersUntouched) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  std::vector<std::vector<float>> data(4, std::vector<float>(8));
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 8; ++i) {
      data[static_cast<size_t>(r)][static_cast<size_t>(i)] =
          static_cast<float>(r + 1);
    }
  }
  bool done = false;
  drive_reduce(m.engine(), comm, 8, /*root=*/0, make_bufs(data), done);
  m.engine().run();
  ASSERT_TRUE(done);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(data[0][static_cast<size_t>(i)], 10.0f);  // 1+2+3+4
    EXPECT_FLOAT_EQ(data[3][static_cast<size_t>(i)], 4.0f);   // untouched
  }
}

sim::Task drive_barrier(sim::Engine&, Communicator& comm, TimeNs& dur) {
  co_await comm.barrier();
  dur = comm.last_duration();
}

TEST(Barrier, CostsSignalExchangePlusFloor) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  TimeNs dur = 0;
  drive_barrier(m.engine(), comm, dur);
  m.engine().run();
  EXPECT_GE(dur, Communicator::kSwOverheadNs);
  EXPECT_LT(dur, Communicator::kSwOverheadNs + us_to_ns(10.0));
}

}  // namespace
}  // namespace fcc::ccl

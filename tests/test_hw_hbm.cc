// HBM contention curve: ramp, knee saturation, over-knee degradation.
#include <gtest/gtest.h>

#include "hw/hbm_model.h"

namespace fcc::hw {
namespace {

constexpr double kPeak = 1638.0;
constexpr int kSlots = 832;

TEST(Hbm, ZeroActiveGivesZeroBandwidth) {
  HbmModel m(kPeak, kSlots);
  EXPECT_EQ(m.total_bandwidth(0), 0.0);
}

TEST(Hbm, RampIsMonotoneUpToKnee) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  double prev = 0;
  for (int a = 1; a <= static_cast<int>(kSlots * c.knee_frac); a += 16) {
    const double bw = m.total_bandwidth(a, c);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
}

TEST(Hbm, PeakReachedAtKnee) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  const int knee = static_cast<int>(kSlots * c.knee_frac);
  EXPECT_NEAR(m.total_bandwidth(knee, c), kPeak, kPeak * 0.01);
}

TEST(Hbm, DegradesBeyondKneeWhenConfigured) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  c.over_knee_degrade = 0.4;
  const int knee = static_cast<int>(kSlots * c.knee_frac);
  EXPECT_LT(m.total_bandwidth(kSlots, c), m.total_bandwidth(knee, c));
  EXPECT_NEAR(m.total_bandwidth(kSlots, c), kPeak * 0.6, kPeak * 0.01);
}

TEST(Hbm, FlatBeyondKneeWhenDegradeZero) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  c.over_knee_degrade = 0.0;
  const int knee = static_cast<int>(kSlots * c.knee_frac);
  EXPECT_NEAR(m.total_bandwidth(kSlots, c), m.total_bandwidth(knee, c), 1e-9);
}

TEST(Hbm, BaseFractionAtMinimalOccupancy) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  // One WG extracts roughly base_frac of peak (plus the tiny ramp term).
  EXPECT_NEAR(m.total_bandwidth(1, c), kPeak * c.base_frac, kPeak * 0.01);
}

TEST(Hbm, PerWgBandwidthSplitsTotal) {
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  const int a = 400;
  EXPECT_NEAR(m.per_wg_bandwidth(a, c) * a, m.total_bandwidth(a, c), 1e-6);
}

TEST(Hbm, Fig13ShapeExecTimeValleyAt75Percent) {
  // Execution time of a fully memory-bound kernel is work / total_bw.
  HbmModel m(kPeak, kSlots);
  HbmCurve c;
  c.over_knee_degrade = 0.4;
  auto t = [&](double occ) {
    return 1.0 / m.total_bandwidth(static_cast<int>(kSlots * occ), c);
  };
  EXPECT_GT(t(0.25), t(0.50));
  EXPECT_GT(t(0.50), t(0.75));
  EXPECT_LT(t(0.75), t(0.875));  // contention beyond the knee
}

}  // namespace
}  // namespace fcc::hw

// MoE routing: gating, top-k selection, dispatch plans, and the variable
// All-to-All that ships them (paper Fig. 4 dispatch path).
#include <gtest/gtest.h>

#include <numeric>

#include "ccl/communicator.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "ops/moe_routing.h"
#include "sim/task.h"

namespace fcc::ops {
namespace {

RoutingConfig small_cfg() {
  RoutingConfig cfg;
  cfg.num_experts = 4;
  cfg.d_model = 16;
  cfg.top_k = 2;
  return cfg;
}

TEST(Router, RouteSelectsTopKDistinctExperts) {
  Rng rng(21);
  Router router(small_cfg(), rng);
  auto token = random_vector(16, rng);
  const auto r = router.route(token);
  ASSERT_EQ(r.experts.size(), 2u);
  EXPECT_NE(r.experts[0], r.experts[1]);
  for (int e : r.experts) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 4);
  }
}

TEST(Router, CombineWeightsAreNormalizedAndOrdered) {
  Rng rng(22);
  Router router(small_cfg(), rng);
  auto token = random_vector(16, rng);
  const auto r = router.route(token);
  EXPECT_NEAR(r.weights[0] + r.weights[1], 1.0f, 1e-5);
  EXPECT_GE(r.weights[0], r.weights[1]);  // descending gate score
  EXPECT_GT(r.weights[1], 0.0f);
}

TEST(Router, RoutingIsDeterministic) {
  Rng rng_a(23), rng_b(23);
  Router a(small_cfg(), rng_a), b(small_cfg(), rng_b);
  Rng data(9);
  auto token = random_vector(16, data);
  const auto ra = a.route(token);
  const auto rb = b.route(token);
  EXPECT_EQ(ra.experts, rb.experts);
}

TEST(Router, PlanCoversEveryTokenExactlyTopKTimes) {
  Rng rng(24);
  Router router(small_cfg(), rng);
  const int tokens = 64;
  auto acts = random_vector(static_cast<size_t>(tokens) * 16, rng);
  const auto plan = router.plan(acts, tokens);

  const auto total = std::accumulate(plan.counts.begin(), plan.counts.end(),
                                     std::int64_t{0});
  EXPECT_EQ(total, tokens * 2);
  EXPECT_EQ(plan.order.size(), static_cast<size_t>(tokens * 2));

  std::vector<int> appearances(static_cast<size_t>(tokens), 0);
  for (int t : plan.order) ++appearances[static_cast<size_t>(t)];
  for (int c : appearances) EXPECT_EQ(c, 2);

  // Offsets delimit expert segments consistent with counts.
  for (int e = 0; e < 4; ++e) {
    const std::int64_t begin = plan.offsets[static_cast<size_t>(e)];
    const std::int64_t end =
        begin + plan.counts[static_cast<size_t>(e)];
    EXPECT_LE(end, static_cast<std::int64_t>(plan.order.size()));
  }
}

TEST(Router, A2avCountsFlattenPerSourcePlans) {
  Rng rng(25);
  Router router(small_cfg(), rng);
  std::vector<DispatchPlan> plans;
  for (int src = 0; src < 3; ++src) {
    auto acts = random_vector(static_cast<size_t>(8) * 16, rng);
    plans.push_back(router.plan(acts, 8));
  }
  const auto counts = Router::a2av_counts(plans, 4, /*elems_per_token=*/16);
  ASSERT_EQ(counts.size(), 12u);
  std::int64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 3 * 8 * 2 * 16);  // sources x tokens x top_k x payload
}

// Dispatch integration: route on every GPU, ship activations with
// all_to_all_v, verify each expert receives exactly the tokens routed to it.
sim::Task drive_a2av(sim::Engine&, ccl::Communicator& comm,
                     const std::vector<std::int64_t>& counts,
                     ccl::FloatBufs send, ccl::FloatBufs recv, bool& done) {
  co_await comm.all_to_all_v(counts, std::move(send), std::move(recv));
  done = true;
}

TEST(Dispatch, AllToAllVDeliversRoutedTokens) {
  const auto cfg = small_cfg();
  const int pes = 4, tokens = 8;
  Rng rng(26);
  Router router(cfg, rng);

  std::vector<std::vector<float>> acts;       // [pe][tokens * d_model]
  std::vector<DispatchPlan> plans;
  for (int pe = 0; pe < pes; ++pe) {
    acts.push_back(random_vector(static_cast<size_t>(tokens) * cfg.d_model,
                                 rng));
    plans.push_back(router.plan(acts.back(), tokens));
  }
  const auto counts = Router::a2av_counts(plans, pes, cfg.d_model);

  // Pack send buffers destination-major using each plan's order.
  std::vector<std::vector<float>> send(static_cast<size_t>(pes)),
      recv(static_cast<size_t>(pes));
  for (int src = 0; src < pes; ++src) {
    for (int t : plans[static_cast<size_t>(src)].order) {
      const auto* tok = &acts[static_cast<size_t>(src)]
                             [static_cast<size_t>(t) * cfg.d_model];
      send[static_cast<size_t>(src)].insert(
          send[static_cast<size_t>(src)].end(), tok, tok + cfg.d_model);
    }
    std::int64_t recv_elems = 0;
    for (int s = 0; s < pes; ++s) {
      recv_elems += counts[static_cast<size_t>(s * pes + src)];
    }
    recv[static_cast<size_t>(src)].assign(
        static_cast<size_t>(recv_elems), -1.0f);
  }

  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = pes;
  gpu::Machine machine(mc);
  std::vector<PeId> members{0, 1, 2, 3};
  ccl::Communicator comm(machine, members);
  ccl::FloatBufs sb, rb;
  for (auto& s : send) sb.per_rank.emplace_back(s);
  for (auto& r : recv) rb.per_rank.emplace_back(r);
  bool done = false;
  drive_a2av(machine.engine(), comm, counts, std::move(sb), std::move(rb),
             done);
  machine.engine().run();
  ASSERT_TRUE(done);

  // Expert e's buffer = concatenation over sources of their expert-e
  // token segments; spot-verify the first routed token from source 2.
  const int expert = 1;
  std::int64_t off = 0;
  for (int s = 0; s < 2; ++s) {
    off += counts[static_cast<size_t>(s * pes + expert)];
  }
  const auto& plan2 = plans[2];
  if (plan2.counts[expert] > 0) {
    const int tok = plan2.order[static_cast<size_t>(plan2.offsets[expert])];
    for (int c = 0; c < cfg.d_model; ++c) {
      ASSERT_FLOAT_EQ(
          recv[expert][static_cast<size_t>(off + c)],
          acts[2][static_cast<size_t>(tok) * cfg.d_model +
                  static_cast<size_t>(c)]);
    }
  }
}

TEST(Dispatch, EqualLoadAssumptionApproximatelyHoldsAtScale) {
  // The paper assumes uniform expert load for the fused combine; with a
  // random gate and many tokens, top-2 routing is near-balanced.
  auto cfg = small_cfg();
  cfg.d_model = 8;
  Rng rng(27);
  Router router(cfg, rng);
  const int tokens = 2048;
  auto acts = random_vector(static_cast<size_t>(tokens) * cfg.d_model, rng);
  const auto plan = router.plan(acts, tokens);
  const double mean = tokens * 2.0 / cfg.num_experts;
  for (auto c : plan.counts) {
    EXPECT_GT(static_cast<double>(c), 0.3 * mean);
    EXPECT_LT(static_cast<double>(c), 2.4 * mean);
  }
}

}  // namespace
}  // namespace fcc::ops

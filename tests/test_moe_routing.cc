// MoE routing: gating, top-k selection, dispatch plans, and the variable
// All-to-All that ships them (paper Fig. 4 dispatch path).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <string>

#include "ccl/communicator.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "ops/moe_routing.h"
#include "sim/task.h"

namespace fcc::ops {
namespace {

RoutingConfig small_cfg() {
  RoutingConfig cfg;
  cfg.num_experts = 4;
  cfg.d_model = 16;
  cfg.top_k = 2;
  return cfg;
}

TEST(Router, RouteSelectsTopKDistinctExperts) {
  Rng rng(21);
  Router router(small_cfg(), rng);
  auto token = random_vector(16, rng);
  const auto r = router.route(token);
  ASSERT_EQ(r.experts.size(), 2u);
  EXPECT_NE(r.experts[0], r.experts[1]);
  for (int e : r.experts) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 4);
  }
}

TEST(Router, CombineWeightsAreNormalizedAndOrdered) {
  Rng rng(22);
  Router router(small_cfg(), rng);
  auto token = random_vector(16, rng);
  const auto r = router.route(token);
  EXPECT_NEAR(r.weights[0] + r.weights[1], 1.0f, 1e-5);
  EXPECT_GE(r.weights[0], r.weights[1]);  // descending gate score
  EXPECT_GT(r.weights[1], 0.0f);
}

TEST(Router, RoutingIsDeterministic) {
  Rng rng_a(23), rng_b(23);
  Router a(small_cfg(), rng_a), b(small_cfg(), rng_b);
  Rng data(9);
  auto token = random_vector(16, data);
  const auto ra = a.route(token);
  const auto rb = b.route(token);
  EXPECT_EQ(ra.experts, rb.experts);
}

TEST(Router, PlanCoversEveryTokenExactlyTopKTimes) {
  Rng rng(24);
  Router router(small_cfg(), rng);
  const int tokens = 64;
  auto acts = random_vector(static_cast<size_t>(tokens) * 16, rng);
  const auto plan = router.plan(acts, tokens);

  const auto total = std::accumulate(plan.counts.begin(), plan.counts.end(),
                                     std::int64_t{0});
  EXPECT_EQ(total, tokens * 2);
  EXPECT_EQ(plan.order.size(), static_cast<size_t>(tokens * 2));

  std::vector<int> appearances(static_cast<size_t>(tokens), 0);
  for (int t : plan.order) ++appearances[static_cast<size_t>(t)];
  for (int c : appearances) EXPECT_EQ(c, 2);

  // Offsets delimit expert segments consistent with counts.
  for (int e = 0; e < 4; ++e) {
    const std::int64_t begin = plan.offsets[static_cast<size_t>(e)];
    const std::int64_t end =
        begin + plan.counts[static_cast<size_t>(e)];
    EXPECT_LE(end, static_cast<std::int64_t>(plan.order.size()));
  }
}

TEST(Router, A2avCountsFlattenPerSourcePlans) {
  Rng rng(25);
  Router router(small_cfg(), rng);
  std::vector<DispatchPlan> plans;
  for (int src = 0; src < 3; ++src) {
    auto acts = random_vector(static_cast<size_t>(8) * 16, rng);
    plans.push_back(router.plan(acts, 8));
  }
  const auto counts = Router::a2av_counts(plans, 4, /*elems_per_token=*/16);
  ASSERT_EQ(counts.size(), 12u);
  std::int64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 3 * 8 * 2 * 16);  // sources x tokens x top_k x payload
}

// Dispatch integration: route on every GPU, ship activations with
// all_to_all_v, verify each expert receives exactly the tokens routed to it.
sim::Task drive_a2av(sim::Engine&, ccl::Communicator& comm,
                     const std::vector<std::int64_t>& counts,
                     ccl::FloatBufs send, ccl::FloatBufs recv, bool& done) {
  co_await comm.all_to_all_v(counts, std::move(send), std::move(recv));
  done = true;
}

TEST(Dispatch, AllToAllVDeliversRoutedTokens) {
  const auto cfg = small_cfg();
  const int pes = 4, tokens = 8;
  Rng rng(26);
  Router router(cfg, rng);

  std::vector<std::vector<float>> acts;       // [pe][tokens * d_model]
  std::vector<DispatchPlan> plans;
  for (int pe = 0; pe < pes; ++pe) {
    acts.push_back(random_vector(static_cast<size_t>(tokens) * cfg.d_model,
                                 rng));
    plans.push_back(router.plan(acts.back(), tokens));
  }
  const auto counts = Router::a2av_counts(plans, pes, cfg.d_model);

  // Pack send buffers destination-major using each plan's order.
  std::vector<std::vector<float>> send(static_cast<size_t>(pes)),
      recv(static_cast<size_t>(pes));
  for (int src = 0; src < pes; ++src) {
    for (int t : plans[static_cast<size_t>(src)].order) {
      const auto* tok = &acts[static_cast<size_t>(src)]
                             [static_cast<size_t>(t) * cfg.d_model];
      send[static_cast<size_t>(src)].insert(
          send[static_cast<size_t>(src)].end(), tok, tok + cfg.d_model);
    }
    std::int64_t recv_elems = 0;
    for (int s = 0; s < pes; ++s) {
      recv_elems += counts[static_cast<size_t>(s * pes + src)];
    }
    recv[static_cast<size_t>(src)].assign(
        static_cast<size_t>(recv_elems), -1.0f);
  }

  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = pes;
  gpu::Machine machine(mc);
  std::vector<PeId> members{0, 1, 2, 3};
  ccl::Communicator comm(machine, members);
  ccl::FloatBufs sb, rb;
  for (auto& s : send) sb.per_rank.emplace_back(s);
  for (auto& r : recv) rb.per_rank.emplace_back(r);
  bool done = false;
  drive_a2av(machine.engine(), comm, counts, std::move(sb), std::move(rb),
             done);
  machine.engine().run();
  ASSERT_TRUE(done);

  // Expert e's buffer = concatenation over sources of their expert-e
  // token segments; spot-verify the first routed token from source 2.
  const int expert = 1;
  std::int64_t off = 0;
  for (int s = 0; s < 2; ++s) {
    off += counts[static_cast<size_t>(s * pes + expert)];
  }
  const auto& plan2 = plans[2];
  if (plan2.counts[expert] > 0) {
    const int tok = plan2.order[static_cast<size_t>(plan2.offsets[expert])];
    for (int c = 0; c < cfg.d_model; ++c) {
      ASSERT_FLOAT_EQ(
          recv[expert][static_cast<size_t>(off + c)],
          acts[2][static_cast<size_t>(tok) * cfg.d_model +
                  static_cast<size_t>(c)]);
    }
  }
}

// ---------------------------------------------------------------------------
// Property sweep: DispatchPlan invariants under adversarial gate scores.
// The fused dispatch operator trusts counts/offsets/order blindly (they
// size buffers and drive remote PUTs), so they must stay consistent for
// ties, saturated logits, and degenerate token distributions.
// ---------------------------------------------------------------------------

void expect_plan_consistent(const RoutingConfig& cfg, const DispatchPlan& p,
                            int tokens) {
  const auto experts = static_cast<std::size_t>(cfg.num_experts);
  ASSERT_EQ(p.counts.size(), experts);
  ASSERT_EQ(p.offsets.size(), experts);

  // Counts: non-negative, summing to tokens * top_k.
  std::int64_t total = 0;
  for (auto c : p.counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(tokens) * cfg.top_k);
  ASSERT_EQ(p.order.size(), static_cast<std::size_t>(total));

  // Offsets: exact prefix sums of counts (segments tile `order` densely).
  std::int64_t off = 0;
  for (std::size_t e = 0; e < experts; ++e) {
    EXPECT_EQ(p.offsets[e], off);
    off += p.counts[e];
  }

  // Order: every token appears exactly top_k times overall and at most
  // once inside any single expert's segment.
  std::vector<int> appearances(static_cast<std::size_t>(tokens), 0);
  for (int t : p.order) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, tokens);
    ++appearances[static_cast<std::size_t>(t)];
  }
  for (int c : appearances) EXPECT_EQ(c, cfg.top_k);
  for (std::size_t e = 0; e < experts; ++e) {
    std::vector<bool> seen(static_cast<std::size_t>(tokens), false);
    for (std::int64_t i = 0; i < p.counts[e]; ++i) {
      const auto t = static_cast<std::size_t>(
          p.order[static_cast<std::size_t>(p.offsets[e] + i)]);
      EXPECT_FALSE(seen[t]) << "token routed twice to expert " << e;
      seen[t] = true;
    }
  }
}

TEST(RouterProperty, PlanConsistentUnderAdversarialGateScores) {
  struct Gen {
    const char* name;
    float (*value)(int token, int dim);
  };
  const Gen generators[] = {
      {"all_zero", [](int, int) { return 0.0f; }},          // every logit ties
      {"constant", [](int, int) { return 1.0f; }},          // per-token ties
      {"huge_positive", [](int, int) { return 1e18f; }},    // saturated logits
      {"huge_negative", [](int, int) { return -1e18f; }},
      {"one_hot", [](int t, int d) { return d == t % 7 ? 1.0f : 0.0f; }},
      {"alternating",
       [](int t, int d) { return ((t + d) % 2 != 0) ? 1e9f : -1e9f; }},
  };
  RoutingConfig configs[] = {
      {4, 16, 2},  // the default shape
      {8, 16, 8},  // top_k == num_experts (every expert, every token)
      {5, 16, 1},  // switch-style top-1
      {3, 1, 2},   // single-feature gate: maximal tie pressure
  };
  for (const auto& cfg : configs) {
    Rng rng(31);
    Router router(cfg, rng);
    for (const auto& gen : generators) {
      const int tokens = 33;  // not a multiple of num_experts
      std::vector<float> acts(static_cast<std::size_t>(tokens) *
                              static_cast<std::size_t>(cfg.d_model));
      for (int t = 0; t < tokens; ++t) {
        for (int d = 0; d < cfg.d_model; ++d) {
          acts[static_cast<std::size_t>(t) *
                   static_cast<std::size_t>(cfg.d_model) +
               static_cast<std::size_t>(d)] = gen.value(t, d);
        }
      }
      SCOPED_TRACE(std::string(gen.name) + " experts=" +
                   std::to_string(cfg.num_experts) + " k=" +
                   std::to_string(cfg.top_k));
      const auto plan = router.plan(acts, tokens);
      expect_plan_consistent(cfg, plan, tokens);

      // Per-token route invariants under the same inputs: distinct experts,
      // finite normalized weights, descending gate order.
      const auto r = router.route(
          std::span<const float>(acts).subspan(0, static_cast<std::size_t>(
                                                      cfg.d_model)));
      ASSERT_EQ(r.experts.size(), static_cast<std::size_t>(cfg.top_k));
      ASSERT_EQ(r.weights.size(), static_cast<std::size_t>(cfg.top_k));
      float sum = 0;
      for (std::size_t i = 0; i < r.experts.size(); ++i) {
        for (std::size_t j = i + 1; j < r.experts.size(); ++j) {
          EXPECT_NE(r.experts[i], r.experts[j]);
        }
        EXPECT_TRUE(std::isfinite(r.weights[i]));
        // Saturated logits may underflow a cold expert's weight to exactly
        // zero — legal; negative or NaN is not.
        EXPECT_GE(r.weights[i], 0.0f);
        if (i > 0) {
          EXPECT_GE(r.weights[i - 1], r.weights[i]);
        }
        sum += r.weights[i];
      }
      EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
  }
}

TEST(RouterProperty, TiedLogitsBreakTowardLowerExpertIds) {
  // All-zero activations tie every gate logit; the stable sort must pick
  // experts 0..k-1 deterministically (no dependence on sort internals).
  RoutingConfig cfg;
  cfg.num_experts = 6;
  cfg.d_model = 8;
  cfg.top_k = 3;
  Rng rng(32);
  Router router(cfg, rng);
  std::vector<float> zero(static_cast<std::size_t>(cfg.d_model), 0.0f);
  const auto r = router.route(zero);
  ASSERT_EQ(r.experts.size(), 3u);
  EXPECT_EQ(r.experts[0], 0);
  EXPECT_EQ(r.experts[1], 1);
  EXPECT_EQ(r.experts[2], 2);
  for (float w : r.weights) EXPECT_NEAR(w, 1.0f / 3.0f, 1e-5);
}

TEST(Dispatch, EqualLoadAssumptionApproximatelyHoldsAtScale) {
  // The paper assumes uniform expert load for the fused combine; with a
  // random gate and many tokens, top-2 routing is near-balanced.
  auto cfg = small_cfg();
  cfg.d_model = 8;
  Rng rng(27);
  Router router(cfg, rng);
  const int tokens = 2048;
  auto acts = random_vector(static_cast<size_t>(tokens) * cfg.d_model, rng);
  const auto plan = router.plan(acts, tokens);
  const double mean = tokens * 2.0 / cfg.num_experts;
  for (auto c : plan.counts) {
    EXPECT_GT(static_cast<double>(c), 0.3 * mean);
    EXPECT_LT(static_cast<double>(c), 2.4 * mean);
  }
}

}  // namespace
}  // namespace fcc::ops

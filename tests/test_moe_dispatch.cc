// Fused MoE dispatch (routed All-to-All-v): layout bookkeeping, skewed
// numerics, empty-segment handling, timing under hot-expert imbalance, and
// registry dispatch with zero framework-file edits.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "framework/session.h"
#include "fused/moe_dispatch.h"
#include "gpu/machine.h"
#include "ops/gemm.h"
#include "shmem/world.h"

namespace fcc::fused {
namespace {

gpu::Machine::Config scale_up(int gpus = 4) {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = gpus;
  return c;
}

MoeDispatchConfig small_cfg(double hot = 4.0) {
  MoeDispatchConfig cfg;
  cfg.tokens_per_pe = 24;
  cfg.d_model = 12;
  cfg.d_out = 20;  // partial column tile with block_n = 16
  cfg.top_k = 2;
  cfg.block_m = 8;
  cfg.block_n = 16;
  cfg.hot_expert_factor = hot;
  cfg.functional = true;
  return cfg;
}

/// Expert e's expected recv rows: for each source in order, that source's
/// expert-e token rows projected through the shared weight.
std::vector<std::vector<float>> reference_recv(
    const MoeDispatchConfig& cfg, const std::vector<ops::DispatchPlan>& plans,
    const MoeDispatchData& data, const DispatchLayout& layout) {
  const int pes = layout.num_pes;
  ops::GemmShape row_shape;
  row_shape.m = cfg.tokens_per_pe;
  row_shape.n = cfg.d_out;
  row_shape.k = cfg.d_model;
  std::vector<std::vector<float>> expect(static_cast<std::size_t>(pes));
  // Project every source's full token batch once, then gather routed rows.
  std::vector<std::vector<float>> projected;
  for (int src = 0; src < pes; ++src) {
    projected.push_back(ops::gemm_reference(
        row_shape, data.tokens[static_cast<std::size_t>(src)], data.w));
  }
  for (int e = 0; e < pes; ++e) {
    auto& out = expect[static_cast<std::size_t>(e)];
    out.assign(static_cast<std::size_t>(
                   layout.recv_rows[static_cast<std::size_t>(e)]) *
                   static_cast<std::size_t>(cfg.d_out),
               0.0f);
    for (int src = 0; src < pes; ++src) {
      const auto& p = plans[static_cast<std::size_t>(src)];
      const std::int64_t base =
          layout.recv_off[static_cast<std::size_t>(e)]
                         [static_cast<std::size_t>(src)];
      for (std::int64_t i = 0; i < p.counts[static_cast<std::size_t>(e)];
           ++i) {
        const int tok = p.order[static_cast<std::size_t>(
            p.offsets[static_cast<std::size_t>(e)] + i)];
        for (int j = 0; j < cfg.d_out; ++j) {
          out[static_cast<std::size_t>(base + i) *
                  static_cast<std::size_t>(cfg.d_out) +
              static_cast<std::size_t>(j)] =
              projected[static_cast<std::size_t>(src)]
                       [static_cast<std::size_t>(tok) *
                            static_cast<std::size_t>(cfg.d_out) +
                        static_cast<std::size_t>(j)];
        }
      }
    }
  }
  return expect;
}

void expect_recv_matches(const MoeDispatchConfig& cfg,
                         const DispatchLayout& layout,
                         const shmem::SymArray<float>& recv,
                         const std::vector<std::vector<float>>& expect) {
  for (int e = 0; e < layout.num_pes; ++e) {
    auto got = recv.pe(e);
    const auto& want = expect[static_cast<std::size_t>(e)];
    ASSERT_GE(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3)
          << "expert " << e << " elem " << i << " (d_out=" << cfg.d_out
          << ")";
    }
  }
}

TEST(DispatchLayout, PadsSegmentsAndTracksRecvOffsets) {
  auto cfg = small_cfg(/*hot=*/6.0);
  const int pes = 4;
  const auto plans = skewed_plans(cfg, pes);
  const auto layout = DispatchLayout::build(plans, cfg.block_m);

  for (int src = 0; src < pes; ++src) {
    std::int64_t row = 0;
    for (int e = 0; e < pes; ++e) {
      EXPECT_EQ(layout.pad_off[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(e)],
                row);
      EXPECT_EQ(layout.padded(src, e) % cfg.block_m, 0);
      EXPECT_GE(layout.padded(src, e),
                layout.counts[static_cast<std::size_t>(src)]
                             [static_cast<std::size_t>(e)]);
      EXPECT_LT(layout.padded(src, e) -
                    layout.counts[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(e)],
                cfg.block_m);
      row += layout.padded(src, e);
    }
    EXPECT_EQ(layout.padded_rows[static_cast<std::size_t>(src)], row);
    EXPECT_EQ(row % cfg.block_m, 0);
    // Every padded row maps back to the expert whose segment holds it.
    for (std::int64_t r = 0; r < row; r += cfg.block_m) {
      const int e = layout.owner_of_row(src, r);
      EXPECT_GE(r, layout.pad_off[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(e)]);
      EXPECT_LT(r, layout.pad_off[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(e)] +
                       layout.padded(src, e));
    }
  }
  // Recv offsets are prefix sums of per-source counts, matching
  // all_to_all_v's source-major recv layout.
  for (int e = 0; e < pes; ++e) {
    std::int64_t off = 0;
    for (int src = 0; src < pes; ++src) {
      EXPECT_EQ(layout.recv_off[static_cast<std::size_t>(e)]
                               [static_cast<std::size_t>(src)],
                off);
      off += layout.counts[static_cast<std::size_t>(src)]
                          [static_cast<std::size_t>(e)];
    }
    EXPECT_EQ(layout.recv_rows[static_cast<std::size_t>(e)], off);
  }
  // Element counts (the baseline's all_to_all_v matrix): total ==
  // sources * assignments * d_out.
  const auto counts = ops::Router::a2av_counts(plans, pes, cfg.d_out);
  const auto total =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  EXPECT_EQ(total, pes * cfg.assignments() * cfg.d_out);
}

TEST(DispatchLayout, SkewedPlansConcentrateLoadOnHotExpert) {
  auto cfg = small_cfg();
  cfg.tokens_per_pe = 512;
  cfg.hot_expert_factor = 8.0;
  const int pes = 4;
  const auto plans = skewed_plans(cfg, pes);
  std::vector<std::int64_t> per_expert(static_cast<std::size_t>(pes), 0);
  for (const auto& p : plans) {
    const auto sum =
        std::accumulate(p.counts.begin(), p.counts.end(), std::int64_t{0});
    EXPECT_EQ(sum, cfg.assignments());
    EXPECT_EQ(p.order.size(), static_cast<std::size_t>(cfg.assignments()));
    for (int e = 0; e < pes; ++e) {
      per_expert[static_cast<std::size_t>(e)] +=
          p.counts[static_cast<std::size_t>(e)];
    }
  }
  // The hot expert must carry visibly more than every cold one.
  for (int e = 1; e < pes; ++e) {
    EXPECT_GT(per_expert[0], 2 * per_expert[static_cast<std::size_t>(e)]);
  }
}

TEST(FusedMoeDispatch, MatchesReferenceUnderSkew) {
  const int pes = 4;
  const auto cfg = small_cfg();
  const auto plans = skewed_plans(cfg, pes);
  const auto layout = DispatchLayout::build(plans, cfg.block_m);

  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> recv(pes, layout.recv_capacity(cfg.d_out));
  auto data = MoeDispatchData::random(cfg, pes, &recv, /*seed=*/91);
  const auto expect = reference_recv(cfg, plans, data, layout);

  FusedMoeDispatch op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  expect_recv_matches(cfg, layout, recv, expect);
}

TEST(BaselineMoeDispatch, MatchesReferenceUnderSkew) {
  const int pes = 4;
  const auto cfg = small_cfg();
  const auto plans = skewed_plans(cfg, pes);
  const auto layout = DispatchLayout::build(plans, cfg.block_m);

  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> recv(pes, layout.recv_capacity(cfg.d_out));
  auto data = MoeDispatchData::random(cfg, pes, &recv, /*seed=*/93);
  const auto expect = reference_recv(cfg, plans, data, layout);

  BaselineMoeDispatch op(w, cfg, &data);
  op.run_to_completion();
  expect_recv_matches(cfg, layout, recv, expect);
}

// The acceptance property: fused and baseline agree elementwise across a
// hot-expert sweep that includes the >= 4x factor.
TEST(FusedMoeDispatch, FusedEqualsBaselineAcrossSkewSweep) {
  const int pes = 4;
  for (double hot : {1.0, 4.0, 9.0}) {
    const auto cfg = small_cfg(hot);
    const auto plans = skewed_plans(cfg, pes);
    const auto layout = DispatchLayout::build(plans, cfg.block_m);

    gpu::Machine mf(scale_up(pes));
    shmem::World wf(mf);
    shmem::SymArray<float> rf(pes, layout.recv_capacity(cfg.d_out));
    auto df = MoeDispatchData::random(cfg, pes, &rf, /*seed=*/97);
    FusedMoeDispatch(wf, cfg, &df).run_to_completion();

    gpu::Machine mb(scale_up(pes));
    shmem::World wb(mb);
    shmem::SymArray<float> rb(pes, layout.recv_capacity(cfg.d_out));
    auto db = MoeDispatchData::random(cfg, pes, &rb, /*seed=*/97);
    BaselineMoeDispatch(wb, cfg, &db).run_to_completion();

    for (int e = 0; e < pes; ++e) {
      auto a = rf.pe(e);
      auto b = rb.pe(e);
      const std::size_t real =
          static_cast<std::size_t>(
              layout.recv_rows[static_cast<std::size_t>(e)]) *
          static_cast<std::size_t>(cfg.d_out);
      for (std::size_t i = 0; i < real; ++i) {
        ASSERT_NEAR(a[i], b[i], 1e-3) << "hot=" << hot << " expert=" << e;
      }
    }
  }
}

// Empty segments: a cold expert that receives nothing at all, and a source
// that sends nothing to some experts, must neither deadlock the arrival
// polling nor corrupt neighbours' offsets.
TEST(FusedMoeDispatch, EmptySegmentsNeitherDeadlockNorCorrupt) {
  const int pes = 4;
  auto cfg = small_cfg();
  cfg.tokens_per_pe = 12;
  cfg.top_k = 1;

  // Hand-built plans: every source routes all tokens to expert (src % 2),
  // so experts 2 and 3 receive zero rows from everyone.
  std::vector<ops::DispatchPlan> plans;
  for (int src = 0; src < pes; ++src) {
    ops::DispatchPlan p;
    p.counts.assign(static_cast<std::size_t>(pes), 0);
    p.offsets.assign(static_cast<std::size_t>(pes), 0);
    const int dst = src % 2;
    p.counts[static_cast<std::size_t>(dst)] = cfg.tokens_per_pe;
    for (int e = dst + 1; e < pes; ++e) {
      p.offsets[static_cast<std::size_t>(e)] = cfg.tokens_per_pe;
    }
    for (int t = 0; t < cfg.tokens_per_pe; ++t) p.order.push_back(t);
    plans.push_back(std::move(p));
  }
  const auto layout = DispatchLayout::build(plans, cfg.block_m);
  EXPECT_EQ(layout.recv_rows[2], 0);
  EXPECT_EQ(layout.recv_rows[3], 0);

  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> recv(pes, layout.recv_capacity(cfg.d_out));
  auto data = MoeDispatchData::random(cfg, pes, &recv, /*seed=*/101);
  data.plans = plans;  // override the synthetic routing
  const auto expect = reference_recv(cfg, plans, data, layout);

  FusedMoeDispatch op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  expect_recv_matches(cfg, layout, recv, expect);
}

// Regression: with a 1-slot grid (occupancy override below num_pes) the
// surplus slots never run an epilogue, so the single spawned slot must
// stride over every source's arrival counter — previously sources >= the
// slot count were silently dropped.
TEST(FusedMoeDispatch, SingleSlotGridStillDrainsEverySourcesArrivals) {
  const int pes = 4;
  auto cfg = small_cfg();
  cfg.occupancy_slots_override = 1;
  const auto plans = skewed_plans(cfg, pes);
  const auto layout = DispatchLayout::build(plans, cfg.block_m);

  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> recv(pes, layout.recv_capacity(cfg.d_out));
  auto data = MoeDispatchData::random(cfg, pes, &recv, /*seed=*/103);
  const auto expect = reference_recv(cfg, plans, data, layout);

  FusedMoeDispatch op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  expect_recv_matches(cfg, layout, recv, expect);
}

// Inconsistent user-supplied plans (built from a different batch size than
// the config) must be rejected up front, not written out of bounds.
TEST(FusedMoeDispatch, RejectsPlansInconsistentWithConfig) {
  const int pes = 4;
  auto cfg = small_cfg();
  cfg.functional = false;  // isolate plan validation from data checks
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);

  auto bigger = cfg;
  bigger.tokens_per_pe = cfg.tokens_per_pe * 2;
  MoeDispatchData data;
  data.plans = skewed_plans(bigger, pes);  // 2x the rows the config sizes
  EXPECT_THROW(FusedMoeDispatch(w, cfg, &data), std::logic_error);
  EXPECT_THROW(BaselineMoeDispatch(w, cfg, &data), std::logic_error);

  // Out-of-range token id with otherwise-consistent counts/offsets.
  MoeDispatchData bad;
  bad.plans = skewed_plans(cfg, pes);
  bad.plans[0].order[0] = cfg.tokens_per_pe;
  EXPECT_THROW(FusedMoeDispatch(w, cfg, &bad), std::logic_error);
}

MoeDispatchConfig timing_cfg(double hot) {
  MoeDispatchConfig cfg;
  cfg.tokens_per_pe = 1024;
  cfg.d_model = 1024;
  cfg.d_out = 1024;
  cfg.hot_expert_factor = hot;
  cfg.functional = false;
  return cfg;
}

TEST(FusedMoeDispatch, FusedIsFasterThanBaselineUnderHeavySkew) {
  for (double hot : {1.0, 4.0, 8.0}) {
    const auto cfg = timing_cfg(hot);
    gpu::Machine mf(scale_up(4));
    shmem::World wf(mf);
    const auto rf = FusedMoeDispatch(wf, cfg, nullptr).run_to_completion();

    gpu::Machine mb(scale_up(4));
    shmem::World wb(mb);
    const auto rb = BaselineMoeDispatch(wb, cfg, nullptr).run_to_completion();

    EXPECT_LT(rf.duration(), rb.duration()) << "hot=" << hot;
  }
}

TEST(FusedMoeDispatch, DeterministicAcrossRuns) {
  const auto cfg = timing_cfg(4.0);
  auto once = [&] {
    gpu::Machine m(scale_up(4));
    shmem::World w(m);
    return FusedMoeDispatch(w, cfg, nullptr).run_to_completion().duration();
  };
  EXPECT_EQ(once(), once());
}

// The PR 1 extension-point claim, validated end-to-end: the operator went
// in through its own TU's OpRegistrar — framework/session.* untouched —
// and dispatches by name like any built-in.
TEST(FusedMoeDispatch, DispatchesViaRegistryWithoutFrameworkEdits) {
  ASSERT_TRUE(fw::OpRegistry::global().contains("fcc::moe_dispatch"));
  const auto& entry = fw::OpRegistry::global().at("fcc::moe_dispatch");
  ASSERT_TRUE(entry.smoke_spec != nullptr);

  auto cfg = timing_cfg(4.0);
  cfg.tokens_per_pe = 256;
  cfg.d_model = 256;
  cfg.d_out = 256;

  fw::Session s(fw::smoke_machine_config());
  const auto rf =
      s.run(fw::make_spec("fcc::moe_dispatch", cfg), fw::Backend::kFused);
  const auto rb =
      s.run(fw::make_spec("fcc::moe_dispatch", cfg), fw::Backend::kBaseline);
  EXPECT_GT(rf.duration(), 0);
  EXPECT_GT(rb.duration(), 0);
  EXPECT_EQ(rf.pe_end.size(), static_cast<std::size_t>(fw::kSmokePes));
}

}  // namespace
}  // namespace fcc::fused

// Property-style parameterized sweeps (TEST_P) over operator configurations.
//
// Invariants checked across the whole parameter grid:
//   * fused operators produce exactly the baseline/host-reference numerics
//   * simulations drain (no deadlock: live_tasks == 0 after run)
//   * repeated runs are bit-deterministic
//   * collectives preserve their algebraic definitions for any size/world
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "ccl/communicator.h"
#include "fused/embedding_a2a.h"
#include "fused/gemm_a2a.h"
#include "fused/gemv_allreduce.h"
#include "gpu/machine.h"
#include "ops/gemm.h"
#include "ops/gemv.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace fcc {
namespace {

gpu::Machine::Config machine_config(int nodes, int gpus_per_node) {
  gpu::Machine::Config c;
  c.num_nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  return c;
}

// ---------------------------------------------------------------------------
// Fused embedding + All-to-All: (nodes, gpus/node, batch/pe, tables, vps,
// policy)
// ---------------------------------------------------------------------------

using EmbParam = std::tuple<int, int, int, int, int, gpu::SchedulePolicy>;

std::string emb_param_name(const ::testing::TestParamInfo<EmbParam>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "g" +
         std::to_string(std::get<1>(info.param)) + "b" +
         std::to_string(std::get<2>(info.param)) + "t" +
         std::to_string(std::get<3>(info.param)) + "v" +
         std::to_string(std::get<4>(info.param)) +
         (std::get<5>(info.param) == gpu::SchedulePolicy::kCommAware
              ? "aware"
              : "obl");
}

class EmbeddingSweep : public ::testing::TestWithParam<EmbParam> {};

TEST_P(EmbeddingSweep, FusedMatchesBaselineExactly) {
  const auto [nodes, gpn, batch_per_pe, tables, vps, policy] = GetParam();
  const int pes = nodes * gpn;

  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = pes;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch_per_pe * pes;
  cfg.map.dim = 8;
  cfg.map.vectors_per_slice = vps;
  cfg.pooling = 3;
  cfg.rows_per_table = 32;
  cfg.functional = true;
  cfg.policy = policy;
  if (batch_per_pe % vps != 0) GTEST_SKIP() << "slice does not divide batch";

  gpu::Machine mf(machine_config(nodes, gpn));
  shmem::World wf(mf);
  shmem::SymArray<float> out_f(pes, cfg.map.dest_elems());
  auto df = fused::EmbeddingA2AData::random(cfg, &out_f, 1234);
  fused::FusedEmbeddingAllToAll(wf, cfg, &df).run_to_completion();
  EXPECT_EQ(mf.engine().live_tasks(), 0);

  gpu::Machine mb(machine_config(nodes, gpn));
  shmem::World wb(mb);
  shmem::SymArray<float> out_b(pes, cfg.map.dest_elems());
  auto db = fused::EmbeddingA2AData::random(cfg, &out_b, 1234);
  fused::BaselineEmbeddingAllToAll(wb, cfg, &db).run_to_completion();

  for (PeId pe = 0; pe < pes; ++pe) {
    auto a = out_f.pe(pe);
    auto b = out_b.pe(pe);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-4) << "pe " << pe << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EmbeddingSweep,
    ::testing::Combine(::testing::Values(1, 2),       // nodes
                       ::testing::Values(1, 2, 4),    // gpus per node
                       ::testing::Values(4, 8),       // batch per pe
                       ::testing::Values(1, 3),       // tables per pe
                       ::testing::Values(1, 2, 4),    // vectors per slice
                       ::testing::Values(gpu::SchedulePolicy::kCommAware,
                                         gpu::SchedulePolicy::kOblivious)),
    emb_param_name);

// ---------------------------------------------------------------------------
// Fused GEMV + AllReduce: (pes, m, k_per_pe, tile_rows)
// ---------------------------------------------------------------------------

using GemvParam = std::tuple<int, int, int, int>;

std::string gemv_param_name(const ::testing::TestParamInfo<GemvParam>& info) {
  return "p" + std::to_string(std::get<0>(info.param)) + "m" +
         std::to_string(std::get<1>(info.param)) + "k" +
         std::to_string(std::get<2>(info.param)) + "t" +
         std::to_string(std::get<3>(info.param));
}

class GemvSweep : public ::testing::TestWithParam<GemvParam> {};

TEST_P(GemvSweep, FusedMatchesHostReference) {
  const auto [pes, m, k_per_pe, tile_rows] = GetParam();
  fused::GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = k_per_pe * pes;
  cfg.tile_rows = tile_rows;
  cfg.functional = true;
  if ((m / tile_rows) % pes != 0 || m % tile_rows != 0) {
    GTEST_SKIP() << "tiles not divisible across PEs";
  }

  gpu::Machine machine(machine_config(1, pes));
  shmem::World world(machine);
  shmem::SymArray<float> y(pes, static_cast<std::size_t>(m));
  auto data = fused::GemvAllReduceData::random(cfg, pes, &y, 555);

  std::vector<float> ref(static_cast<std::size_t>(m), 0.0f);
  const auto shape = cfg.shape(pes);
  for (int pe = 0; pe < pes; ++pe) {
    const auto part =
        ops::gemv_reference(shape, data.w[static_cast<std::size_t>(pe)],
                            data.x[static_cast<std::size_t>(pe)]);
    for (int r = 0; r < m; ++r) {
      ref[static_cast<std::size_t>(r)] += part[static_cast<std::size_t>(r)];
    }
  }

  fused::FusedGemvAllReduce(world, cfg, &data).run_to_completion();
  EXPECT_EQ(machine.engine().live_tasks(), 0);
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = y.pe(pe);
    for (int r = 0; r < m; ++r) {
      ASSERT_NEAR(got[static_cast<std::size_t>(r)],
                  ref[static_cast<std::size_t>(r)], 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemvSweep,
    ::testing::Combine(::testing::Values(2, 4),       // pes
                       ::testing::Values(32, 64, 96), // m
                       ::testing::Values(8, 24),      // k per pe
                       ::testing::Values(4, 8)),      // tile rows
    gemv_param_name);

// ---------------------------------------------------------------------------
// Fused GEMM + All-to-All: (pes, rows_per_origin, d_model, d_ff, block)
// ---------------------------------------------------------------------------

using GemmParam = std::tuple<int, int, int, int, int>;

std::string gemm_param_name(const ::testing::TestParamInfo<GemmParam>& info) {
  return "p" + std::to_string(std::get<0>(info.param)) + "r" +
         std::to_string(std::get<1>(info.param)) + "m" +
         std::to_string(std::get<2>(info.param)) + "f" +
         std::to_string(std::get<3>(info.param)) + "b" +
         std::to_string(std::get<4>(info.param));
}

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, FusedMatchesHostReference) {
  const auto [pes, rows, dm, dff, block] = GetParam();
  fused::GemmA2AConfig cfg;
  cfg.rows_per_origin = rows;
  cfg.d_model = dm;
  cfg.d_ff = dff;
  cfg.block_m = block;
  cfg.block_n = block;
  cfg.functional = true;
  if (rows % block != 0) GTEST_SKIP();

  gpu::Machine machine(machine_config(1, pes));
  shmem::World world(machine);
  shmem::SymArray<float> out(pes, cfg.out_elems(pes));
  auto data = fused::GemmA2AData::random(cfg, pes, &out, 777);

  const auto shape = cfg.shape(pes);
  fused::FusedGemmAllToAll(world, cfg, &data).run_to_completion();
  EXPECT_EQ(machine.engine().live_tasks(), 0);

  for (int e = 0; e < pes; ++e) {
    const auto c = ops::gemm_reference(
        shape, data.a[static_cast<std::size_t>(e)],
        data.b[static_cast<std::size_t>(e)]);
    for (int o = 0; o < pes; ++o) {
      auto got = out.pe(o);
      for (int lr = 0; lr < rows; ++lr) {
        for (int j = 0; j < dm; ++j) {
          ASSERT_NEAR(
              got[(static_cast<std::size_t>(e) * rows +
                   static_cast<std::size_t>(lr)) *
                      static_cast<std::size_t>(dm) +
                  static_cast<std::size_t>(j)],
              c[static_cast<std::size_t>(o * rows + lr) * dm +
                static_cast<std::size_t>(j)],
              1e-3);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmSweep,
    ::testing::Combine(::testing::Values(2, 4),    // pes
                       ::testing::Values(4, 8),    // rows per origin
                       ::testing::Values(8, 12),   // d_model
                       ::testing::Values(8, 16),   // d_ff
                       ::testing::Values(2, 4)),   // block
    gemm_param_name);

// ---------------------------------------------------------------------------
// Collectives: AllReduce == elementwise sum for any (world, size, algo)
// ---------------------------------------------------------------------------

using CclParam = std::tuple<int, int, ccl::AllReduceAlgo>;

std::string ccl_param_name(const ::testing::TestParamInfo<CclParam>& info) {
  return "p" + std::to_string(std::get<0>(info.param)) + "n" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) == ccl::AllReduceAlgo::kRing ? "ring"
                                                               : "direct");
}

class AllReduceSweep : public ::testing::TestWithParam<CclParam> {};

sim::Task drive_all_reduce(sim::Engine&, ccl::Communicator& comm,
                           std::int64_t n, ccl::FloatBufs bufs,
                           ccl::AllReduceAlgo algo, bool& done) {
  co_await comm.all_reduce(n, std::move(bufs), algo);
  done = true;
}

TEST_P(AllReduceSweep, EqualsElementwiseSum) {
  const auto [pes, n_elems, algo] = GetParam();
  gpu::Machine machine(machine_config(1, pes));
  std::vector<PeId> members;
  for (int i = 0; i < pes; ++i) members.push_back(i);
  ccl::Communicator comm(machine, members);

  Rng rng(static_cast<std::uint64_t>(pes * 1000 + n_elems));
  std::vector<std::vector<float>> data(static_cast<std::size_t>(pes));
  std::vector<float> expect(static_cast<std::size_t>(n_elems), 0.0f);
  for (auto& d : data) {
    d.resize(static_cast<std::size_t>(n_elems));
    for (auto& v : d) {
      v = static_cast<float>(rng.next_double(-2, 2));
    }
    for (std::int64_t i = 0; i < n_elems; ++i) {
      expect[static_cast<std::size_t>(i)] += d[static_cast<std::size_t>(i)];
    }
  }
  ccl::FloatBufs bufs;
  for (auto& d : data) bufs.per_rank.emplace_back(d);
  bool done = false;
  drive_all_reduce(machine.engine(), comm, n_elems, std::move(bufs), algo,
                   done);
  machine.engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(machine.engine().live_tasks(), 0);
  for (int pe = 0; pe < pes; ++pe) {
    for (std::int64_t i = 0; i < n_elems; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(pe)][static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllReduceSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),   // world size
                       ::testing::Values(1, 7, 64, 1000),  // elems
                       ::testing::Values(ccl::AllReduceAlgo::kTwoPhaseDirect,
                                         ccl::AllReduceAlgo::kRing)),
    ccl_param_name);

// ---------------------------------------------------------------------------
// Determinism across the embedding grid (timing-only, byte-equal repeats)
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, RepeatRunsHaveIdenticalDurations) {
  const int tables = GetParam();
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 16;
  cfg.pooling = 16;
  cfg.functional = false;
  auto once = [&] {
    gpu::Machine m(machine_config(2, 1));
    shmem::World w(m);
    return fused::FusedEmbeddingAllToAll(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(Grid, DeterminismSweep,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace fcc

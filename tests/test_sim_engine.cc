// Engine semantics: time monotonicity, same-time FIFO, coroutine tracking.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/co.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace fcc::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> seen;
  e.schedule_at(30, [&] { seen.push_back(3); });
  e.schedule_at(10, [&] { seen.push_back(1); });
  e.schedule_at(20, [&] { seen.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> seen;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(5, [&seen, i] { seen.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingFromCallbacks) {
  Engine e;
  std::vector<TimeNs> fired;
  e.schedule_at(10, [&] {
    fired.push_back(e.now());
    e.schedule_after(5, [&] { fired.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 15}));
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule_at(10, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5, [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int count = 0;
  for (TimeNs t = 10; t <= 100; t += 10) {
    e.schedule_at(t, [&] { ++count; });
  }
  e.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(count, 10);
}

Task simple_proc(Engine& e, std::vector<TimeNs>& log) {
  log.push_back(e.now());
  co_await delay(e, 100);
  log.push_back(e.now());
  co_await delay(e, 0);  // zero-delay still round-trips the queue
  log.push_back(e.now());
}

TEST(Task, DelaysAdvanceVirtualTime) {
  Engine e;
  std::vector<TimeNs> log;
  simple_proc(e, log);
  EXPECT_EQ(e.live_tasks(), 1);  // suspended at first delay
  e.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0, 100, 100}));
  EXPECT_EQ(e.live_tasks(), 0);
}

Task spawner(Engine& e, int depth, int& count) {
  ++count;
  if (depth > 0) {
    co_await delay(e, 1);
    spawner(e, depth - 1, count);
    spawner(e, depth - 1, count);
  }
  co_return;
}

TEST(Task, RecursiveSpawningTracksLiveness) {
  Engine e;
  int count = 0;
  spawner(e, 10, count);
  e.run();
  EXPECT_EQ(count, (1 << 11) - 1);
  EXPECT_EQ(e.live_tasks(), 0);
}

Co child(Engine& e, std::vector<int>& log, int id) {
  log.push_back(id);
  co_await delay(e, 10);
  log.push_back(id + 100);
}

Task parent_proc(Engine& e, std::vector<int>& log) {
  co_await child(e, log, 1);
  co_await child(e, log, 2);
  log.push_back(999);
}

TEST(Co, SubroutinesRunToCompletionBeforeParentContinues) {
  Engine e;
  std::vector<int> log;
  parent_proc(e, log);
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 101, 2, 102, 999}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.live_tasks(), 0);
}

Co leaf(Engine& e) { co_await delay(e, 1); }

Co middle(Engine& e, int depth) {
  if (depth == 0) {
    co_await leaf(e);
  } else {
    co_await middle(e, depth - 1);
  }
}

Task deep_proc(Engine& e, bool& done) {
  co_await middle(e, 200);
  done = true;
}

TEST(Co, DeepNestingCompletes) {
  Engine e;
  bool done = false;
  deep_proc(e, done);
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 1);
}

TEST(Engine, MixedStagingAndMidDrainSchedulesPopInGlobalOrder) {
  // Bulk-staged events (scheduled while the engine is empty) and events
  // scheduled from inside callbacks (mid-drain, heap path) must interleave
  // in exact (time, seq) order.
  Engine e;
  std::vector<int> seen;
  e.schedule_at(10, [&] {
    seen.push_back(1);
    e.schedule_at(15, [&] { seen.push_back(2); });  // lands in the heap
    e.schedule_at(40, [&] { seen.push_back(5); });
  });
  e.schedule_at(20, [&] { seen.push_back(3); });  // staged
  e.schedule_at(30, [&] { seen.push_back(4); });  // staged
  EXPECT_EQ(e.run(), 5u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Engine, SameTimeOrderHoldsAcrossStagingAndHeap) {
  Engine e;
  std::vector<int> seen;
  e.schedule_at(5, [&] {
    seen.push_back(0);
    // Same-time events scheduled mid-drain fire after the already-staged
    // ones at t=5 (larger insertion sequence), in their own schedule order.
    e.schedule_at(5, [&] { seen.push_back(3); });
    e.schedule_at(5, [&] { seen.push_back(4); });
  });
  e.schedule_at(5, [&] { seen.push_back(1); });
  e.schedule_at(5, [&] { seen.push_back(2); });
  e.run();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, PooledNodesAreRecycledAcrossWaves) {
  Engine e;
  long sink = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 100; ++i) {
      e.schedule_after(i, [&sink] { ++sink; });
    }
    e.run();
  }
  EXPECT_EQ(sink, 50 * 100);
  // The slab never grows past one wave's worth of simultaneously-pending
  // callbacks: freed nodes are reused, not abandoned.
  EXPECT_LE(e.slab_nodes(), 100u);
}

TEST(Engine, PendingCountsAllTiers) {
  Engine e;
  e.schedule_at(1, [] {});
  e.schedule_at(2, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(1);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunUntilHonorsDeadlineAcrossTiers) {
  Engine e;
  int count = 0;
  e.schedule_at(10, [&] {
    ++count;
    e.schedule_at(20, [&] { ++count; });  // heap path
    e.schedule_at(60, [&] { ++count; });
  });
  e.schedule_at(50, [&] { ++count; });  // staged
  EXPECT_EQ(e.run_until(50), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(count, 4);
}

TEST(Engine, LargeCallbacksFallBackToTheHeapPath) {
  // A callable bigger than the node's inline buffer still works (one heap
  // allocation, API unchanged).
  Engine e;
  std::array<std::uint64_t, 16> big{};  // 128 bytes captured by value
  big[15] = 42;
  std::uint64_t out = 0;
  e.schedule_at(1, [big, &out] { out = big[15]; });
  e.run();
  EXPECT_EQ(out, 42u);
}

TEST(Engine, DestructorReleasesUnfiredCallbacks) {
  // Scheduled-but-never-run callables (both inline and heap-fallback) are
  // destroyed with the engine; shared_ptr use counts prove it.
  auto tracer = std::make_shared<int>(7);
  std::weak_ptr<int> weak = tracer;
  {
    Engine e;
    e.schedule_at(5, [t = tracer] { (void)t; });
    std::array<std::uint64_t, 16> big{};
    e.schedule_at(6, [t = tracer, big] { (void)t; (void)big; });
    tracer.reset();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

Task resume_hop(Engine& e, int& hops) {
  for (int i = 0; i < 3; ++i) {
    co_await delay(e, 7);
    ++hops;
  }
}

TEST(Engine, ResumeFastPathAdvancesTimeLikeAnyEvent) {
  Engine e;
  int hops = 0;
  resume_hop(e, hops);
  e.run();
  EXPECT_EQ(hops, 3);
  EXPECT_EQ(e.now(), 21);
  // Bare-handle resume events never take a pooled callback node.
  EXPECT_EQ(e.slab_nodes(), 0u);
}

TEST(Determinism, TwoIdenticalRunsProduceIdenticalLogs) {
  auto run_once = [] {
    Engine e;
    std::vector<std::pair<TimeNs, int>> log;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at((i * 7) % 13, [&log, i, &e] { log.emplace_back(e.now(), i); });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fcc::sim

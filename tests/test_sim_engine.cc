// Engine semantics: time monotonicity, same-time FIFO, coroutine tracking.
#include <gtest/gtest.h>

#include <vector>

#include "sim/co.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace fcc::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> seen;
  e.schedule_at(30, [&] { seen.push_back(3); });
  e.schedule_at(10, [&] { seen.push_back(1); });
  e.schedule_at(20, [&] { seen.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> seen;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(5, [&seen, i] { seen.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingFromCallbacks) {
  Engine e;
  std::vector<TimeNs> fired;
  e.schedule_at(10, [&] {
    fired.push_back(e.now());
    e.schedule_after(5, [&] { fired.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 15}));
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule_at(10, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5, [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int count = 0;
  for (TimeNs t = 10; t <= 100; t += 10) {
    e.schedule_at(t, [&] { ++count; });
  }
  e.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(count, 10);
}

Task simple_proc(Engine& e, std::vector<TimeNs>& log) {
  log.push_back(e.now());
  co_await delay(e, 100);
  log.push_back(e.now());
  co_await delay(e, 0);  // zero-delay still round-trips the queue
  log.push_back(e.now());
}

TEST(Task, DelaysAdvanceVirtualTime) {
  Engine e;
  std::vector<TimeNs> log;
  simple_proc(e, log);
  EXPECT_EQ(e.live_tasks(), 1);  // suspended at first delay
  e.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0, 100, 100}));
  EXPECT_EQ(e.live_tasks(), 0);
}

Task spawner(Engine& e, int depth, int& count) {
  ++count;
  if (depth > 0) {
    co_await delay(e, 1);
    spawner(e, depth - 1, count);
    spawner(e, depth - 1, count);
  }
  co_return;
}

TEST(Task, RecursiveSpawningTracksLiveness) {
  Engine e;
  int count = 0;
  spawner(e, 10, count);
  e.run();
  EXPECT_EQ(count, (1 << 11) - 1);
  EXPECT_EQ(e.live_tasks(), 0);
}

Co child(Engine& e, std::vector<int>& log, int id) {
  log.push_back(id);
  co_await delay(e, 10);
  log.push_back(id + 100);
}

Task parent_proc(Engine& e, std::vector<int>& log) {
  co_await child(e, log, 1);
  co_await child(e, log, 2);
  log.push_back(999);
}

TEST(Co, SubroutinesRunToCompletionBeforeParentContinues) {
  Engine e;
  std::vector<int> log;
  parent_proc(e, log);
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 101, 2, 102, 999}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.live_tasks(), 0);
}

Co leaf(Engine& e) { co_await delay(e, 1); }

Co middle(Engine& e, int depth) {
  if (depth == 0) {
    co_await leaf(e);
  } else {
    co_await middle(e, depth - 1);
  }
}

Task deep_proc(Engine& e, bool& done) {
  co_await middle(e, 200);
  done = true;
}

TEST(Co, DeepNestingCompletes) {
  Engine e;
  bool done = false;
  deep_proc(e, done);
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 1);
}

TEST(Determinism, TwoIdenticalRunsProduceIdenticalLogs) {
  auto run_once = [] {
    Engine e;
    std::vector<std::pair<TimeNs, int>> log;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at((i * 7) % 13, [&log, i, &e] { log.emplace_back(e.now(), i); });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fcc::sim

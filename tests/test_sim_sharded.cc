// Sharded conservative-lookahead engine suite.
//
// Three layers of pinning:
//
//   1. ShardedEngine unit tests — the mailbox's (time, src shard, seq)
//      injection order, barrier hooks, and thread-count invariance.
//   2. gpu::Machine sharding config validation — every misconfiguration
//      (node-splitting partitions, zero lookahead, tracing while sharded)
//      must throw with a diagnosable message, not silently corrupt timing.
//   3. Determinism goldens — the ShardWorkload trace must be *exactly*
//      equal between the serial engine and the sharded engine at shard
//      counts 1/2/4/8, on both an eager-reservation fabric (fully
//      connected) and the deferred-replay torus, at any worker-thread
//      count. Plus targeted mailbox edge cases: same-timestamp deliveries
//      from different shards, flag threshold waiters satisfied by remote
//      increments landing at a window boundary, and World::quiet spanning
//      shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gpu/machine.h"
#include "scaleout/shard_workload.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/sharded_engine.h"
#include "sim/task.h"

namespace fcc {
namespace {

// ---------------------------------------------------------------------------
// ShardedEngine unit tests
// ---------------------------------------------------------------------------

TEST(ShardedEngine, MailboxInjectsInTimeSrcShardSeqOrder) {
  sim::ShardedEngine se(3);
  std::vector<int> order;
  // All for shard 0. Posted deliberately out of (t, src, seq) order: the
  // barrier must sort by time first, then source shard, then per-source
  // sequence (posting order within one shard).
  se.post(2, 0, 10, [&] { order.push_back(20); });
  se.post(1, 0, 10, [&] { order.push_back(10); });
  se.post(1, 0, 10, [&] { order.push_back(11); });
  se.post(0, 0, 5, [&] { order.push_back(0); });
  const auto st = se.run(/*lookahead=*/100, /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 20}));
  EXPECT_EQ(st.messages, 4u);
  EXPECT_GE(st.events, 4u);
}

TEST(ShardedEngine, SameTimestampMessagesFromDifferentShardsAreOrdered) {
  // Two source shards each post two same-time messages to a third shard;
  // src-shard order breaks the tie, seq orders within a shard.
  sim::ShardedEngine se(4);
  std::vector<int> order;
  se.post(3, 0, 7, [&] { order.push_back(30); });
  se.post(3, 0, 7, [&] { order.push_back(31); });
  se.post(1, 0, 7, [&] { order.push_back(10); });
  se.post(1, 0, 7, [&] { order.push_back(11); });
  se.run(50, 1);
  EXPECT_EQ(order, (std::vector<int>{10, 11, 30, 31}));
}

TEST(ShardedEngine, BarrierHooksRunInRegistrationOrderAndMayPost) {
  sim::ShardedEngine se(2);
  std::vector<int> order;
  int fires = 0;
  // Hook A posts a message on its first invocation; hook B records that it
  // ran after A at every barrier.
  const int ha = se.add_barrier_hook([&] {
    order.push_back(1);
    if (fires++ == 0) {
      se.post(0, 1, 100, [&] { order.push_back(99); });
    }
  });
  const int hb = se.add_barrier_hook([&] { order.push_back(2); });
  se.shard(0).schedule_at(0, [] {});
  se.run(10, 1);
  // Every barrier logs {1, 2}; the posted message fires between barriers.
  ASSERT_GE(order.size(), 5u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (order[i] == 1) EXPECT_EQ(order[i + 1], 2) << "hook order at " << i;
  }
  EXPECT_EQ(std::count(order.begin(), order.end(), 99), 1);
  se.remove_barrier_hook(ha);
  se.remove_barrier_hook(hb);
}

TEST(ShardedEngine, RunRejectsNonPositiveLookahead) {
  sim::ShardedEngine se(2);
  EXPECT_THROW(se.run(0), std::logic_error);
  EXPECT_THROW(se.run(-5), std::logic_error);
}

TEST(ShardedEngine, RejectsZeroShards) {
  EXPECT_THROW(sim::ShardedEngine se(0), std::logic_error);
}

TEST(ShardedEngine, ThreadCountDoesNotChangeResults) {
  // Each shard ping-pongs messages to the next; the full fire sequence on
  // every shard must be identical at 1 worker and at 8.
  auto run_with = [](unsigned threads) {
    sim::ShardedEngine se(4);
    std::vector<std::vector<TimeNs>> fired(4);
    for (int s = 0; s < 4; ++s) {
      for (TimeNs t = 0; t < 40; t += 10) {
        const int next = (s + 1) % 4;
        se.shard(s).schedule_at(t, [&, s, t, next] {
          fired[static_cast<std::size_t>(s)].push_back(t);
          se.post(s, next, t + 25, [&fired, next, t] {
            fired[static_cast<std::size_t>(next)].push_back(1000 + t);
          });
        });
      }
    }
    const auto st = se.run(/*lookahead=*/25, threads);
    return std::make_pair(fired, st.messages);
  };
  const auto a = run_with(1);
  const auto b = run_with(8);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second, 16u);
}

// ---------------------------------------------------------------------------
// Topology lookahead derivation
// ---------------------------------------------------------------------------

gpu::Machine::Config torus_config(int dim_x, int dim_y, int gpus, int shards) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = dim_x * dim_y;
  cfg.gpus_per_node = gpus;
  cfg.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  cfg.topology.torus.dim_x = dim_x;
  cfg.topology.torus.dim_y = dim_y;
  cfg.num_shards = shards;
  return cfg;
}

TEST(ShardLookahead, FullyConnectedFloorsAtNicProcPlusWire) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.num_shards = 2;
  gpu::Machine m(cfg);
  EXPECT_TRUE(m.topology().inter_node_state_src_local());
  EXPECT_FALSE(m.defer_inter_node());
  // NIC path: per-message processing + wire propagation (serialization is
  // load-dependent and excluded from the conservative floor).
  EXPECT_EQ(m.lookahead(),
            cfg.ib.per_msg_proc_ns + cfg.ib.wire_latency_ns);
}

TEST(ShardLookahead, TorusFloorsAtOneLinkLatencyAndDefers) {
  gpu::Machine m(torus_config(4, 2, 2, 4));
  EXPECT_FALSE(m.topology().inter_node_state_src_local());
  EXPECT_TRUE(m.defer_inter_node());
  EXPECT_EQ(m.lookahead(), m.config().topology.torus.link_latency_ns);
}

TEST(ShardLookahead, SerialMachineHasNoWindow) {
  gpu::Machine m(gpu::Machine::Config{});
  EXPECT_EQ(m.lookahead(), 0);
  EXPECT_FALSE(m.is_sharded());
}

// ---------------------------------------------------------------------------
// Machine sharding config validation
// ---------------------------------------------------------------------------

TEST(ShardConfig, RejectsMoreShardsThanNodes) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 4;
  cfg.num_shards = 4;  // a node would have to split
  EXPECT_THROW(gpu::Machine m(cfg), std::logic_error);
}

TEST(ShardConfig, RejectsPeShardSplittingANode) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 2;
  cfg.num_shards = 2;
  cfg.pe_shard = {0, 1, 1, 0};  // both nodes split across shards
  EXPECT_THROW(gpu::Machine m(cfg), std::logic_error);
}

TEST(ShardConfig, RejectsPeShardOutOfRangeOrWrongSize) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 1;
  cfg.num_shards = 2;
  cfg.pe_shard = {0, 2};  // shard id out of range
  EXPECT_THROW(gpu::Machine m(cfg), std::logic_error);
  cfg.pe_shard = {0};  // wrong size
  EXPECT_THROW(gpu::Machine m(cfg), std::logic_error);
}

TEST(ShardConfig, AcceptsExplicitNodeAlignedPartition) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.num_shards = 2;
  cfg.pe_shard = {1, 1, 0, 0, 1, 1, 0, 0};  // node-aligned, non-contiguous
  gpu::Machine m(cfg);
  EXPECT_EQ(m.shard_of(0), 1);
  EXPECT_EQ(m.shard_of(2), 0);
  EXPECT_EQ(m.shard_of(7), 0);
}

TEST(ShardConfig, RejectsZeroCrossShardLookahead) {
  auto cfg = torus_config(2, 2, 1, 2);
  cfg.topology.torus.link_latency_ns = 0;  // legal torus, illegal to shard
  EXPECT_THROW(gpu::Machine m(cfg), std::logic_error);
}

TEST(ShardConfig, TraceCollectionWhileShardedUsesPerShardBuffers) {
  // Sharded tracing: each shard thread writes its own buffer (trace_of),
  // and merged_trace() exposes the canonical sorted view.
  gpu::Machine::Config cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 1;
  cfg.num_shards = 2;
  cfg.collect_trace = true;
  gpu::Machine m(cfg);
  EXPECT_TRUE(m.trace_of(0).enabled());
  EXPECT_TRUE(m.trace_of(1).enabled());
  m.trace_of(0).add_instant({"a", "test", 0, 0, 20});
  m.trace_of(1).add_instant({"b", "test", 1, 0, 10});
  const sim::Trace merged = m.merged_trace();
  ASSERT_EQ(merged.instants().size(), 2u);
  EXPECT_EQ(merged.instants()[0].name, "b");  // sorted by time
  EXPECT_EQ(merged.instants()[1].name, "a");
}

TEST(ShardConfig, DefaultTorusPartitionIsNodeAlignedTiling) {
  gpu::Machine m(torus_config(4, 4, 2, 4));
  std::vector<int> nodes_per_shard(4, 0);
  for (PeId pe = 0; pe < m.num_pes(); ++pe) {
    const int s = m.shard_of(pe);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Node-aligned: same shard as the node's first PE.
    EXPECT_EQ(s, m.shard_of(m.pe_of(m.node_of(pe), 0)));
    if (m.local_index(pe) == 0) ++nodes_per_shard[static_cast<std::size_t>(s)];
  }
  for (const int n : nodes_per_shard) EXPECT_EQ(n, 4);  // balanced tiles
}

// ---------------------------------------------------------------------------
// Golden determinism traces: serial == sharded at 1/2/4/8 shards
// ---------------------------------------------------------------------------

scaleout::ShardWorkloadConfig small_workload() {
  scaleout::ShardWorkloadConfig w;
  w.rounds = 3;
  w.lanes_per_pe = 2;
  w.compute_ns = 500;
  w.intra_bytes = 65536;
  w.inter_bytes = 4096;
  return w;
}

scaleout::ShardTrace run_fc(int shards, unsigned threads = 0) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 8;
  cfg.gpus_per_node = 2;
  cfg.num_shards = shards;
  gpu::Machine m(cfg);
  return scaleout::run_shard_workload(m, small_workload(), threads);
}

scaleout::ShardTrace run_torus(int shards, unsigned threads = 0) {
  gpu::Machine m(torus_config(4, 2, 2, shards));
  return scaleout::run_shard_workload(m, small_workload(), threads);
}

TEST(ShardDeterminism, FullyConnectedMatchesSerialAtAllShardCounts) {
  const auto serial = run_fc(1);
  for (const int s : {2, 4, 8}) {
    const auto sharded = run_fc(s);
    EXPECT_EQ(serial, sharded)
        << "shards=" << s << "\nserial:\n"
        << serial.str() << "\nsharded:\n"
        << sharded.str();
  }
}

TEST(ShardDeterminism, TorusMatchesSerialAtAllShardCounts) {
  const auto serial = run_torus(1);
  for (const int s : {2, 4, 8}) {
    const auto sharded = run_torus(s);
    EXPECT_EQ(serial, sharded)
        << "shards=" << s << "\nserial:\n"
        << serial.str() << "\nsharded:\n"
        << sharded.str();
  }
}

TEST(ShardDeterminism, WorkerThreadCountDoesNotChangeTrace) {
  const auto one = run_fc(4, /*threads=*/1);
  const auto many = run_fc(4, /*threads=*/8);
  EXPECT_EQ(one, many);
  const auto t_one = run_torus(8, /*threads=*/1);
  const auto t_many = run_torus(8, /*threads=*/8);
  EXPECT_EQ(t_one, t_many);
}

// Golden numbers recorded from the serial engine (shard count 1). Any
// change to engine ordering, the window protocol, or route accounting that
// shifts a single delivery breaks these — that is the point.
TEST(ShardDeterminism, FullyConnectedGoldenTrace) {
  const auto tr = run_fc(4);
  EXPECT_EQ(tr.puts, 192);  // 16 PEs * 3 rounds * 2 lanes * (intra + inter)
  EXPECT_EQ(tr.final_time(), 10965) << tr.str();
  for (const std::uint64_t f : tr.flags) EXPECT_EQ(f, 3u);  // rounds
}

TEST(ShardDeterminism, TorusGoldenTrace) {
  const auto tr = run_torus(8);
  EXPECT_EQ(tr.puts, 192);
  EXPECT_EQ(tr.final_time(), 8298) << tr.str();
  for (const std::uint64_t f : tr.flags) EXPECT_EQ(f, 3u);
}

// ---------------------------------------------------------------------------
// Mailbox edge cases through the full shmem stack
// ---------------------------------------------------------------------------

sim::Task send_one(sim::Engine& engine, shmem::World& w, shmem::FlagArray& f,
                   PeId src, PeId dst, TimeNs start) {
  co_await sim::delay_until(engine, start);
  co_await w.put_nbi(src, dst, 256, shmem::World::IssueKind::kRdma,
                     [&f, dst] { f.add(dst, 0, 1); });
}

sim::Task wait_threshold(sim::Engine& engine, shmem::FlagArray& f, PeId pe,
                         std::uint64_t threshold, TimeNs& resumed_at) {
  co_await f.wait_ge(pe, 0, threshold);
  resumed_at = engine.now();
}

std::vector<sim::Engine*> per_pe_engines(gpu::Machine& m) {
  std::vector<sim::Engine*> e(static_cast<std::size_t>(m.num_pes()));
  for (PeId pe = 0; pe < m.num_pes(); ++pe) e[pe] = &m.engine_of(pe);
  return e;
}

/// Two senders on different shards issue PUTs that deliver to a third
/// shard's PE at the *same* timestamp; the waiter needs both. The resume
/// time and final flag value must match the serial engine exactly.
TEST(ShardMailbox, SameTimestampRemoteIncrementsSatisfyThresholdWaiter) {
  auto run = [](int shards) {
    gpu::Machine::Config cfg;
    cfg.num_nodes = 3;
    cfg.gpus_per_node = 1;
    cfg.num_shards = shards;
    gpu::Machine m(cfg);
    shmem::World w(m);
    shmem::FlagArray f(per_pe_engines(m), 1);
    TimeNs resumed_at = -1;
    send_one(m.engine_of(0), w, f, 0, 2, 0);
    send_one(m.engine_of(1), w, f, 1, 2, 0);
    wait_threshold(m.engine_of(2), f, 2, 2, resumed_at);
    m.run_all();
    EXPECT_EQ(m.sharded().live_tasks(), 0);
    EXPECT_EQ(f.read(2, 0), 2u);
    return resumed_at;
  };
  const TimeNs serial = run(1);
  const TimeNs sharded = run(3);
  EXPECT_GT(serial, 0);
  EXPECT_EQ(serial, sharded);
}

/// A remote increment whose delivery lands exactly at a window boundary
/// must wake the waiter at the same simulated time as the serial engine.
TEST(ShardMailbox, RemoteIncrementAtWindowBoundaryWakesWaiter) {
  auto run = [](int shards) {
    gpu::Machine::Config cfg;
    cfg.num_nodes = 2;
    cfg.gpus_per_node = 1;
    cfg.num_shards = shards;
    gpu::Machine m(cfg);
    shmem::World w(m);
    shmem::FlagArray f(per_pe_engines(m), 1);
    TimeNs resumed_at = -1;
    // Stagger the sender so the delivery does not align with window 0's
    // start; the delivery then lands mid-protocol at a barrier-injected
    // event time.
    send_one(m.engine_of(0), w, f, 0, 1, 137);
    wait_threshold(m.engine_of(1), f, 1, 1, resumed_at);
    m.run_all();
    EXPECT_EQ(m.sharded().live_tasks(), 0);
    return resumed_at;
  };
  const TimeNs serial = run(1);
  const TimeNs sharded = run(2);
  EXPECT_GT(serial, 137);
  EXPECT_EQ(serial, sharded);
}

sim::Task burst_then_quiet(sim::Engine& engine, shmem::World& w, PeId src,
                           PeId dst, int count, TimeNs& quiet_done) {
  for (int i = 0; i < count; ++i) {
    co_await w.put_nbi(src, dst, 4096, shmem::World::IssueKind::kRdma);
  }
  co_await w.quiet(src);
  quiet_done = engine.now();
}

/// World::quiet must not return until deliveries landing on *other* shards
/// have completed; the drain time must equal the serial engine's.
TEST(ShardMailbox, QuietSpansShards) {
  auto run = [](int shards) {
    gpu::Machine::Config cfg;
    cfg.num_nodes = 2;
    cfg.gpus_per_node = 2;
    cfg.num_shards = shards;
    gpu::Machine m(cfg);
    shmem::World w(m);
    TimeNs quiet_done = -1;
    burst_then_quiet(m.engine_of(0), w, 0, 3, 4, quiet_done);
    m.run_all();
    EXPECT_EQ(m.sharded().live_tasks(), 0);
    EXPECT_EQ(w.outstanding(0), 0);
    return quiet_done;
  };
  const TimeNs serial = run(1);
  const TimeNs sharded = run(2);
  EXPECT_GT(serial, 0);
  EXPECT_EQ(serial, sharded);
}

/// Same, on the deferred-reservation torus path: the quiet waiter's finish
/// messages ride the barrier replay.
TEST(ShardMailbox, QuietSpansShardsOnTorus) {
  auto run = [](int shards) {
    gpu::Machine m(torus_config(2, 2, 1, shards));
    shmem::World w(m);
    TimeNs quiet_done = -1;
    burst_then_quiet(m.engine_of(0), w, 0, 3, 4, quiet_done);
    m.run_all();
    EXPECT_EQ(m.sharded().live_tasks(), 0);
    EXPECT_EQ(w.outstanding(0), 0);
    return quiet_done;
  };
  const TimeNs serial = run(1);
  const TimeNs sharded = run(4);
  EXPECT_GT(serial, 0);
  EXPECT_EQ(serial, sharded);
}

}  // namespace
}  // namespace fcc

// Fused embedding + All-to-All: numerics vs baseline vs reference, timing
// relations, scheduling skew, slice mapping.
#include <gtest/gtest.h>

#include <vector>

#include "fused/embedding_a2a.h"
#include "gpu/machine.h"
#include "shmem/world.h"

namespace fcc::fused {
namespace {

gpu::Machine::Config intra_node(int gpus) {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = gpus;
  return c;
}

gpu::Machine::Config inter_node(int nodes) {
  gpu::Machine::Config c;
  c.num_nodes = nodes;
  c.gpus_per_node = 1;
  return c;
}

EmbeddingA2AConfig small_config(int pes) {
  EmbeddingA2AConfig cfg;
  cfg.map.num_pes = pes;
  cfg.map.tables_per_pe = 2;
  cfg.map.global_batch = 8 * pes;
  cfg.map.dim = 8;
  cfg.map.vectors_per_slice = 2;
  cfg.pooling = 4;
  cfg.rows_per_table = 64;
  cfg.functional = true;
  return cfg;
}

/// Host-side expected outputs per destination PE.
std::vector<std::vector<float>> expected_outputs(
    const EmbeddingA2AConfig& cfg, const EmbeddingA2AData& data) {
  const auto& map = cfg.map;
  std::vector<std::vector<float>> expect(
      static_cast<std::size_t>(map.num_pes),
      std::vector<float>(map.dest_elems(), 0.0f));
  const auto emb = cfg.emb_config();
  for (PeId src = 0; src < map.num_pes; ++src) {
    const auto all = ops::pool_all_reference(
        emb, data.tables[static_cast<std::size_t>(src)],
        data.batches[static_cast<std::size_t>(src)]);
    for (int b = 0; b < map.global_batch; ++b) {
      const PeId d = map.dest_of_sample(b);
      const int lb = b % map.local_batch();
      for (int t = 0; t < map.tables_per_pe; ++t) {
        const int gt = map.global_table(src, t);
        for (int c = 0; c < map.dim; ++c) {
          expect[static_cast<std::size_t>(d)][map.dest_offset(lb, gt, c)] =
              all[(static_cast<std::size_t>(b) * map.tables_per_pe +
                   static_cast<std::size_t>(t)) *
                      map.dim +
                  static_cast<std::size_t>(c)];
        }
      }
    }
  }
  return expect;
}

void expect_outputs_match(const EmbeddingA2AConfig& cfg,
                          shmem::SymArray<float>& out,
                          const std::vector<std::vector<float>>& expect) {
  for (PeId pe = 0; pe < cfg.map.num_pes; ++pe) {
    auto got = out.pe(pe);
    const auto& want = expect[static_cast<std::size_t>(pe)];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-4)
          << "pe " << pe << " elem " << i;
    }
  }
}

TEST(SliceMap, RoundTripsWgSliceLane) {
  SliceMap map;
  map.num_pes = 4;
  map.tables_per_pe = 3;
  map.global_batch = 32;
  map.dim = 16;
  map.vectors_per_slice = 4;
  map.validate();
  EXPECT_EQ(map.local_batch(), 8);
  EXPECT_EQ(map.num_logical_wgs(), 96);
  EXPECT_EQ(map.num_slices(), 3 * 4 * 2);

  std::vector<int> wgs_in_slice(static_cast<std::size_t>(map.num_slices()), 0);
  for (int lw = 0; lw < map.num_logical_wgs(); ++lw) {
    const int s = map.slice_of_wg(lw);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, map.num_slices());
    ++wgs_in_slice[static_cast<std::size_t>(s)];
    // Slice metadata must agree with the WG's own coordinates.
    EXPECT_EQ(map.slice_table(s), map.wg_table(lw));
    EXPECT_EQ(map.slice_dest(s), map.dest_of_sample(map.wg_sample(lw)));
    EXPECT_GE(map.lane_in_slice(lw), 0);
    EXPECT_LT(map.lane_in_slice(lw), map.wgs_per_slice());
  }
  for (int c : wgs_in_slice) EXPECT_EQ(c, map.wgs_per_slice());
}

TEST(SliceMap, RemoteCountsAreConsistent) {
  SliceMap map;
  map.num_pes = 2;
  map.tables_per_pe = 4;
  map.global_batch = 16;
  map.vectors_per_slice = 2;
  map.dim = 4;
  map.validate();
  for (PeId pe = 0; pe < 2; ++pe) {
    EXPECT_EQ(map.num_local_slices(pe) + map.num_remote_slices(pe),
              map.num_slices());
    int remote_wgs = 0;
    for (int lw = 0; lw < map.num_logical_wgs(); ++lw) {
      remote_wgs += map.wg_is_remote(pe, lw);
    }
    EXPECT_EQ(remote_wgs, map.num_remote_slices(pe) * map.wgs_per_slice());
  }
}

TEST(FusedEmbedding, IntraNodeMatchesReference) {
  const auto cfg = small_config(4);
  gpu::Machine m(intra_node(4));
  shmem::World world(m);
  shmem::SymArray<float> out(4, cfg.map.dest_elems());
  auto data = EmbeddingA2AData::random(cfg, &out, /*seed=*/11);
  const auto expect = expected_outputs(cfg, data);

  FusedEmbeddingAllToAll op(world, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  expect_outputs_match(cfg, out, expect);
}

TEST(FusedEmbedding, InterNodeMatchesReference) {
  const auto cfg = small_config(2);
  gpu::Machine m(inter_node(2));
  shmem::World world(m);
  shmem::SymArray<float> out(2, cfg.map.dest_elems());
  auto data = EmbeddingA2AData::random(cfg, &out, /*seed=*/13);
  const auto expect = expected_outputs(cfg, data);

  FusedEmbeddingAllToAll op(world, cfg, &data);
  op.run_to_completion();
  expect_outputs_match(cfg, out, expect);
}

TEST(BaselineEmbedding, MatchesReferenceIntraAndInter) {
  for (int nodes : {1, 2}) {
    const int pes = nodes == 1 ? 4 : 2;
    const auto cfg = small_config(pes);
    gpu::Machine m(nodes == 1 ? intra_node(4) : inter_node(2));
    shmem::World world(m);
    shmem::SymArray<float> out(pes, cfg.map.dest_elems());
    auto data = EmbeddingA2AData::random(cfg, &out, /*seed=*/17);
    const auto expect = expected_outputs(cfg, data);

    BaselineEmbeddingAllToAll op(world, cfg, &data);
    const auto res = op.run_to_completion();
    EXPECT_GT(res.duration(), 0);
    expect_outputs_match(cfg, out, expect);
  }
}

TEST(FusedEmbedding, FusedEqualsBaselineElementwise) {
  const auto cfg = small_config(2);
  gpu::Machine mf(inter_node(2));
  shmem::World wf(mf);
  shmem::SymArray<float> out_f(2, cfg.map.dest_elems());
  auto data_f = EmbeddingA2AData::random(cfg, &out_f, /*seed=*/23);
  FusedEmbeddingAllToAll(wf, cfg, &data_f).run_to_completion();

  gpu::Machine mb(inter_node(2));
  shmem::World wb(mb);
  shmem::SymArray<float> out_b(2, cfg.map.dest_elems());
  auto data_b = EmbeddingA2AData::random(cfg, &out_b, /*seed=*/23);
  BaselineEmbeddingAllToAll(wb, cfg, &data_b).run_to_completion();

  for (PeId pe = 0; pe < 2; ++pe) {
    auto a = out_f.pe(pe);
    auto b = out_b.pe(pe);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-4);
    }
  }
}

EmbeddingA2AConfig timing_config(int pes, int batch, int tables) {
  EmbeddingA2AConfig cfg;
  cfg.map.num_pes = pes;
  cfg.map.tables_per_pe = tables;
  cfg.map.global_batch = batch;
  cfg.map.dim = 256;
  cfg.map.vectors_per_slice = 32;
  cfg.pooling = 64;
  cfg.functional = false;
  return cfg;
}

TEST(FusedEmbedding, FusedIsFasterThanBaselineIntraNode) {
  const auto cfg = timing_config(4, 512, 16);
  gpu::Machine mf(intra_node(4));
  shmem::World wf(mf);
  FusedEmbeddingAllToAll fused(wf, cfg, nullptr);
  const auto rf = fused.run_to_completion();

  gpu::Machine mb(intra_node(4));
  shmem::World wb(mb);
  BaselineEmbeddingAllToAll base(wb, cfg, nullptr);
  const auto rb = base.run_to_completion();

  EXPECT_LT(rf.duration(), rb.duration());
}

TEST(FusedEmbedding, FusedIsFasterThanBaselineInterNode) {
  const auto cfg = timing_config(2, 512, 16);
  gpu::Machine mf(inter_node(2));
  shmem::World wf(mf);
  const auto rf =
      FusedEmbeddingAllToAll(wf, cfg, nullptr).run_to_completion();

  gpu::Machine mb(inter_node(2));
  shmem::World wb(mb);
  const auto rb =
      BaselineEmbeddingAllToAll(wb, cfg, nullptr).run_to_completion();

  EXPECT_LT(rf.duration(), rb.duration());
}

TEST(FusedEmbedding, CommAwareSchedulingReducesSkew) {
  auto cfg = timing_config(2, 1024, 16);
  cfg.policy = gpu::SchedulePolicy::kCommAware;
  gpu::Machine ma(inter_node(2));
  shmem::World wa(ma);
  const auto aware =
      FusedEmbeddingAllToAll(wa, cfg, nullptr).run_to_completion();

  cfg.policy = gpu::SchedulePolicy::kOblivious;
  gpu::Machine mo(inter_node(2));
  shmem::World wo(mo);
  const auto obliv =
      FusedEmbeddingAllToAll(wo, cfg, nullptr).run_to_completion();

  EXPECT_LE(aware.skew(), obliv.skew());
  EXPECT_LE(aware.duration(), obliv.duration());
}

TEST(FusedEmbedding, OccupancyIsBelowBaseline) {
  // ROC_SHMEM register cost: fused runs at 87.5% of the baseline slots.
  gpu::Machine m(intra_node(4));
  const int base = gpu::max_active_wgs(
      m.device(0).spec(), BaselineEmbeddingAllToAll::baseline_resources());
  const int fused = gpu::max_active_wgs(
      m.device(0).spec(), FusedEmbeddingAllToAll::fused_resources());
  EXPECT_EQ(base, 832);
  EXPECT_EQ(fused, 728);
  EXPECT_DOUBLE_EQ(static_cast<double>(fused) / base, 0.875);
}

TEST(FusedEmbedding, OccupancyOverrideControlsSlots) {
  auto cfg = timing_config(2, 64, 2);
  cfg.occupancy_slots_override = 13;
  gpu::Machine m(inter_node(2));
  shmem::World w(m);
  FusedEmbeddingAllToAll op(w, cfg, nullptr);
  EXPECT_EQ(op.slots_per_pe(), 13);
  op.run_to_completion();
}

TEST(FusedEmbedding, EmitsTraceWhenEnabled) {
  auto cfg = timing_config(2, 64, 2);
  cfg.emit_trace = true;
  cfg.occupancy_slots_override = 8;
  gpu::Machine::Config mc = inter_node(2);
  mc.collect_trace = true;
  gpu::Machine m(mc);
  shmem::World w(m);
  FusedEmbeddingAllToAll(w, cfg, nullptr).run_to_completion();
  EXPECT_FALSE(m.trace().spans().empty());
  bool saw_put = false;
  for (const auto& i : m.trace().instants()) saw_put |= (i.name == "put");
  EXPECT_TRUE(saw_put);
}

TEST(FusedEmbedding, DeterministicAcrossRuns) {
  const auto cfg = timing_config(2, 256, 8);
  auto run_once = [&] {
    gpu::Machine m(inter_node(2));
    shmem::World w(m);
    return FusedEmbeddingAllToAll(w, cfg, nullptr)
        .run_to_completion()
        .duration();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fcc::fused

// The planning subsystem: pass registry/order, the LRU PlanCache,
// fingerprint exactness and collision-freedom, calibration honesty at the
// measured moe_dispatch T=512 crossover, planner determinism, warm-cache
// replay, and the actionable planning error paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "framework/fingerprint.h"
#include "framework/session.h"
#include "fused/gemv_allreduce.h"
#include "fused/moe_dispatch.h"
#include "plan/calibration.h"
#include "plan/cost_scorer.h"
#include "plan/pass_manager.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"

namespace fcc::plan {
namespace {

gpu::Machine::Config smoke_machine() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  return mc;
}

fw::Graph gemv_graph(int m, int k) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = k;
  cfg.functional = false;
  fw::Graph g;
  auto out = g.tensor("y");
  g.add(fw::make_spec("fcc::gemv_allreduce", cfg), {}, {out}, "gemv");
  return g;
}

fw::Graph moe_graph(int tokens) {
  fused::MoeDispatchConfig cfg;
  cfg.tokens_per_pe = tokens;
  cfg.d_model = 1024;
  cfg.d_out = 1024;
  cfg.hot_expert_factor = 4.0;
  cfg.functional = false;
  fw::Graph g;
  auto out = g.tensor("routed");
  g.add(fw::make_spec("fcc::moe_dispatch", cfg), {}, {out}, "moe");
  return g;
}

// ---------------------------------------------------------------------------
// Pass registry and manager
// ---------------------------------------------------------------------------

TEST(PassRegistry, BuiltinPassesRegisteredInPipelineOrder) {
  const auto passes = PassRegistry::global().ordered();
  std::vector<std::string> names;
  for (const Pass* p : passes) names.push_back(p->info.name);
  // The three built-ins, in explicit (order, name) sequence — independent
  // of TU link order.
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "fuse-patterns");
  EXPECT_EQ(names[1], "score-backends");
  EXPECT_EQ(names[2], "select-ccl-algo");
  int last_order = -1;
  for (const Pass* p : passes) {
    EXPECT_GE(p->info.order, last_order);
    last_order = p->info.order;
  }
}

TEST(PassManager, UnknownPassNameThrowsListingRegistered) {
  try {
    PassManager pm({"no-such-pass"});
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-pass"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fuse-patterns"), std::string::npos) << msg;
  }
}

TEST(PassManager, ExplicitSubsetRunsExactlyThosePasses) {
  fw::Graph g = gemv_graph(512, 1024);
  Plan plan;
  plan.backends.assign(static_cast<std::size_t>(g.num_nodes()),
                       fw::Backend::kFused);
  PassContext ctx;
  ctx.plan = &plan;
  const PassManager pm({"fuse-patterns"});
  const auto runs = pm.run(g, ctx);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].name, "fuse-patterns");
  EXPECT_EQ(runs[0].changes, 0);  // already a fused op, nothing to collapse
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanCache::Entry entry_with_marker(int marker) {
  PlanCache::Entry e;
  e.plan.backends.assign(static_cast<std::size_t>(marker),
                         fw::Backend::kFused);
  return e;
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  PlanCache cache(2);
  cache.insert("a", entry_with_marker(1));
  cache.insert("b", entry_with_marker(2));
  ASSERT_NE(cache.find("a"), nullptr);  // bumps "a" most-recent
  cache.insert("c", entry_with_marker(3));  // evicts "b" (least recent)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.find("b"), nullptr);
  const PlanCache::Entry* a = cache.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->plan.backends.size(), 1u);
  ASSERT_NE(cache.find("c"), nullptr);
}

TEST(PlanCacheTest, CountersTrackHitsMissesUncacheable) {
  PlanCache cache(4);
  EXPECT_EQ(cache.find("missing"), nullptr);
  cache.insert("k", entry_with_marker(1));
  EXPECT_NE(cache.find("k"), nullptr);
  cache.note_uncacheable();
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().uncacheable, 1);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, SameShapeSameKeyDifferentConfigDifferentKey) {
  const auto a = fw::graph_fingerprint(gemv_graph(512, 1024));
  const auto b = fw::graph_fingerprint(gemv_graph(512, 1024));
  const auto c = fw::graph_fingerprint(gemv_graph(1024, 1024));
  EXPECT_TRUE(a.exact);
  EXPECT_EQ(a.key, b.key);
  // Same op, same structure, different problem size: the shape_key must
  // separate them (this is what makes cached plans safe to replay).
  EXPECT_NE(a.key, c.key);
}

TEST(Fingerprint, UnregisteredOpMarksInexact) {
  fw::Graph g;
  auto t = g.tensor("t");
  g.add("nowhere::op", {}, {t});
  const auto fp = fw::graph_fingerprint(g);
  EXPECT_FALSE(fp.exact);
  EXPECT_NE(fp.key.find("nowhere::op"), std::string::npos);
}

TEST(Fingerprint, TopologyKeySeparatesGeometryAndKind) {
  const auto base = fw::topology_fingerprint(smoke_machine());
  gpu::Machine::Config two_nodes = smoke_machine();
  two_nodes.num_nodes = 2;
  gpu::Machine::Config switched = smoke_machine();
  switched.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
  EXPECT_EQ(base, fw::topology_fingerprint(smoke_machine()));
  EXPECT_NE(base, fw::topology_fingerprint(two_nodes));
  EXPECT_NE(base, fw::topology_fingerprint(switched));

  // Driver knobs (sharding, tracing) are not plan-relevant.
  gpu::Machine::Config traced = smoke_machine();
  traced.collect_trace = true;
  EXPECT_EQ(base, fw::topology_fingerprint(traced));
}

TEST(Fingerprint, UncacheableGraphIsPlannedButNotCached) {
  fw::Graph g;
  auto t = g.tensor("t");
  fused::GemvAllReduceConfig cfg;
  cfg.m = 512;
  cfg.k_global = 1024;
  cfg.functional = false;
  g.add(fw::make_spec("fcc::gemv_allreduce", cfg), {}, {t}, "gemv");
  // Register nothing extra — instead plan a graph whose fingerprint is
  // exact, then one that is not, against the same cache.
  PlanCache cache(4);
  PlanOptions options;
  options.cache = &cache;
  Planner planner;
  (void)planner.plan(g, smoke_machine(), options);
  EXPECT_EQ(cache.size(), 1u);

  fw::Graph inexact = g;
  auto u = inexact.tensor("u");
  inexact.add("aten::embedding_bag", {t}, {u});  // pattern op: no shape_key
  // An unfusable pattern node leaves the graph un-dispatchable, so only
  // fingerprint/cache behaviour is checked here, via the planner's report.
  try {
    const Planned p = planner.plan(inexact, smoke_machine(), options);
    EXPECT_FALSE(p.report.cacheable);
  } catch (const PlanError&) {
    // Post-pipeline validation rejects the stray pattern node — fine; the
    // uncacheable lookup was still counted before validation ran.
  }
  EXPECT_EQ(cache.stats().uncacheable, 1);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Calibration honesty — both sides of the measured T=512 crossover
// ---------------------------------------------------------------------------

TEST(Calibration, BuiltinTableCoversTheCrossoverOps) {
  const CalibrationTable& table = builtin_calibration();
  ASSERT_GT(table.size(), 0) << "builtin calibration table is empty — "
                                "regenerate with bench_plan_quality "
                                "--print-calibration";
  bool has_crossover_anchor = false;
  for (const CalibrationAnchor& a : table.anchors()) {
    if (a.op == "fcc::moe_dispatch" &&
        a.label.find("T=512") != std::string::npos) {
      has_crossover_anchor = true;
      // The recorded measurement must itself show the crossover: fused
      // slower than baseline at this point.
      EXPECT_GT(a.measured_fused_ns, a.measured_baseline_ns) << a.label;
    }
  }
  EXPECT_TRUE(has_crossover_anchor);
}

TEST(Calibration, PlannerPicksTheMeasuredWinnerOnBothSidesOfCrossover) {
  // Replays the recorded moe_dispatch_skew.csv crossover: at T=512 (skew
  // 4x, 1x4 fully connected) the fused path measured *slower* — the
  // planner must reject the fused rewrite; at T=1024 it measured faster —
  // the planner must keep it. Pure host planning, no simulation.
  Planner planner;
  const Planned at_512 = planner.plan(moe_graph(512), smoke_machine());
  ASSERT_EQ(at_512.plan.backends.size(), 1u);
  EXPECT_EQ(at_512.plan.backends[0], fw::Backend::kBaseline)
      << at_512.report.to_string();

  const Planned at_1024 = planner.plan(moe_graph(1024), smoke_machine());
  ASSERT_EQ(at_1024.plan.backends.size(), 1u);
  EXPECT_EQ(at_1024.plan.backends[0], fw::Backend::kFused)
      << at_1024.report.to_string();

  // The report must carry the predicted costs that justify each call.
  bool found = false;
  for (const PlanDecision& d : at_512.report.decisions) {
    if (d.pass != "score-backends") continue;
    found = true;
    EXPECT_TRUE(d.calibrated);
    EXPECT_GT(d.predicted_fused_ns, d.predicted_baseline_ns);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Planner determinism and warm-cache replay
// ---------------------------------------------------------------------------

TEST(PlannerDeterminism, RepeatedPlansAreIdentical) {
  Planner planner;
  const Planned a = planner.plan(moe_graph(512), smoke_machine());
  const Planned b = planner.plan(moe_graph(512), smoke_machine());
  EXPECT_EQ(a.plan.backends, b.plan.backends);
  ASSERT_EQ(a.report.decisions.size(), b.report.decisions.size());
  for (std::size_t i = 0; i < a.report.decisions.size(); ++i) {
    EXPECT_EQ(a.report.decisions[i].choice, b.report.decisions[i].choice);
    EXPECT_EQ(a.report.decisions[i].predicted_fused_ns,
              b.report.decisions[i].predicted_fused_ns);
    EXPECT_EQ(a.report.decisions[i].predicted_baseline_ns,
              b.report.decisions[i].predicted_baseline_ns);
  }
  EXPECT_EQ(a.report.graph_key, b.report.graph_key);
}

TEST(PlannerDeterminism, WarmCacheHitReplaysByteIdentically) {
  PlanCache cache(8);
  PlanOptions options;
  options.cache = &cache;

  fw::Session cold_session(smoke_machine());
  const auto cold = cold_session.run_planned(gemv_graph(512, 1024), options);
  EXPECT_FALSE(cold.planned.report.cache_hit);
  EXPECT_FALSE(cold.planned.report.passes.empty());

  fw::Session warm_session(smoke_machine());
  const auto warm = warm_session.run_planned(gemv_graph(512, 1024), options);
  // Warm hit: zero passes re-run, identical decisions, and the planned
  // execution's simulated records are byte-identical to the cold run.
  EXPECT_TRUE(warm.planned.report.cache_hit);
  EXPECT_TRUE(warm.planned.report.passes.empty());
  EXPECT_EQ(warm.planned.plan.backends, cold.planned.plan.backends);
  EXPECT_EQ(warm.result.makespan(), cold.result.makespan());
  ASSERT_EQ(warm.result.nodes.size(), cold.result.nodes.size());
  for (std::size_t i = 0; i < warm.result.nodes.size(); ++i) {
    EXPECT_EQ(warm.result.nodes[i].result, cold.result.nodes[i].result);
  }
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

// ---------------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------------

TEST(PlanErrors, UnknownOpSurfacesActionablePlanError) {
  fw::Graph g;
  auto t = g.tensor("t");
  g.add("nowhere::op", {}, {t}, "mystery");
  Planner planner;
  try {
    (void)planner.plan(g, smoke_machine());
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mystery"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nowhere::op"), std::string::npos) << msg;
    // The registry's full op list rides along, so the fix is obvious.
    EXPECT_NE(msg.find("fcc::gemv_allreduce"), std::string::npos) << msg;
  }
}

TEST(PlanErrors, MistypedSpecSurfacesSpecTypeErrorWithNodeIdentity) {
  fw::Graph g;
  auto t = g.tensor("t");
  g.add("fcc::gemv_allreduce", /*config=*/42, {}, {t}, "bad-config");
  Planner planner;
  try {
    (void)planner.plan(g, smoke_machine());
    FAIL() << "expected SpecTypeError";
  } catch (const fw::SpecTypeError& e) {
    // The fingerprint's shape_key hook trips first and rethrows with the
    // node's identity; the type stays a std::bad_any_cast so existing
    // single-op dispatch guards keep working.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad-config"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fcc::gemv_allreduce"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace fcc::plan

// Hierarchy-aware collectives: auto-selection from the topology, staged
// AllReduce (intra-node RS -> inter-node ring -> intra-node AG), and the
// node-aggregated All-to-All.
#include <gtest/gtest.h>

#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "gpu/machine.h"
#include "sim/task.h"

namespace fcc::ccl {
namespace {

gpu::Machine::Config nodes_by_gpus(int nodes, int gpus) {
  gpu::Machine::Config c;
  c.num_nodes = nodes;
  c.gpus_per_node = gpus;
  return c;
}

std::vector<PeId> all_pes(gpu::Machine& m) {
  std::vector<PeId> v;
  for (int i = 0; i < m.num_pes(); ++i) v.push_back(i);
  return v;
}

FloatBufs make_bufs(std::vector<std::vector<float>>& storage) {
  FloatBufs b;
  for (auto& s : storage) b.per_rank.emplace_back(s);
  return b;
}

sim::Task run_all_reduce(sim::Engine& e, Communicator& comm,
                         std::int64_t n_elems, FloatBufs bufs,
                         AllReduceAlgo algo, TimeNs& done) {
  co_await comm.all_reduce(n_elems, bufs, algo);
  done = e.now();
}

sim::Task run_all_to_all(sim::Engine& e, Communicator& comm,
                         std::int64_t chunk, FloatBufs send, FloatBufs recv,
                         AllToAllAlgo algo, TimeNs& done) {
  co_await comm.all_to_all(chunk, std::move(send), std::move(recv), algo);
  done = e.now();
}

TimeNs time_allreduce(int nodes, int gpus, std::int64_t n_elems,
                      AllReduceAlgo algo) {
  gpu::Machine m(nodes_by_gpus(nodes, gpus));
  Communicator comm(m, all_pes(m));
  TimeNs done = 0;
  run_all_reduce(m.engine(), comm, n_elems, FloatBufs{}, algo, done);
  m.engine().run();
  return done;
}

TEST(AutoSelect, KeysOffTheTopologySpan) {
  {
    gpu::Machine m(nodes_by_gpus(1, 4));
    Communicator comm(m, all_pes(m));
    EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kTwoPhaseDirect);
    EXPECT_EQ(comm.select_a2a(), AllToAllAlgo::kPairwise);
  }
  {
    gpu::Machine m(nodes_by_gpus(2, 1));  // one GPU per node: nothing to stage
    Communicator comm(m, all_pes(m));
    EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kTwoPhaseDirect);
    EXPECT_EQ(comm.select_a2a(), AllToAllAlgo::kPairwise);
  }
  {
    gpu::Machine m(nodes_by_gpus(2, 4));
    Communicator comm(m, all_pes(m));
    EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kHierarchical);
    EXPECT_EQ(comm.select_a2a(), AllToAllAlgo::kNodeAggregate);
  }
  {
    // Non-uniform span (3 members on node 0, 1 on node 1): stay flat.
    gpu::Machine m(nodes_by_gpus(2, 4));
    Communicator comm(m, {0, 1, 2, 4});
    EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kTwoPhaseDirect);
  }
}

TEST(HierarchicalAllReduce, SumIsCorrectAcrossNodes) {
  gpu::Machine m(nodes_by_gpus(2, 4));
  Communicator comm(m, all_pes(m));
  const std::int64_t n = 128;
  std::vector<std::vector<float>> data(8);
  std::vector<float> expect(static_cast<size_t>(n), 0.0f);
  Rng rng(13);
  for (int r = 0; r < 8; ++r) {
    data[static_cast<size_t>(r)].resize(static_cast<size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const auto v = static_cast<float>(rng.next_double(-1, 1));
      data[static_cast<size_t>(r)][static_cast<size_t>(i)] = v;
      expect[static_cast<size_t>(i)] += v;
    }
  }
  TimeNs done = 0;
  run_all_reduce(m.engine(), comm, n, make_bufs(data),
                 AllReduceAlgo::kHierarchical, done);
  m.engine().run();
  EXPECT_GT(done, 0);
  for (int r = 0; r < 8; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[static_cast<size_t>(r)][static_cast<size_t>(i)],
                  expect[static_cast<size_t>(i)], 1e-4);
    }
  }
}

TEST(HierarchicalAllReduce, BeatsFlatAlgorithmsAcrossNodes) {
  // Two 4-GPU nodes over one NIC each: staging through the node boundary
  // sends 1/gpus_per_node of the flat traffic across the slow links.
  const std::int64_t n_elems = 1 << 20;
  const TimeNs ring = time_allreduce(2, 4, n_elems, AllReduceAlgo::kRing);
  const TimeNs direct =
      time_allreduce(2, 4, n_elems, AllReduceAlgo::kTwoPhaseDirect);
  const TimeNs hier =
      time_allreduce(2, 4, n_elems, AllReduceAlgo::kHierarchical);
  const TimeNs autosel = time_allreduce(2, 4, n_elems, AllReduceAlgo::kAuto);
  EXPECT_LT(hier, ring);
  EXPECT_LT(hier, direct);
  EXPECT_EQ(autosel, hier);  // auto resolves to hierarchical here
}

TEST(HierarchicalAllReduce, FourNodesStillWin) {
  const std::int64_t n_elems = 1 << 20;
  const TimeNs ring = time_allreduce(4, 4, n_elems, AllReduceAlgo::kRing);
  const TimeNs hier =
      time_allreduce(4, 4, n_elems, AllReduceAlgo::kHierarchical);
  EXPECT_LT(hier, ring);
}

TEST(AutoAllReduce, MatchesFlatDirectOnSingleNode) {
  // On a single node auto must resolve to the historical default so
  // existing workloads keep their exact timings.
  const std::int64_t n_elems = 1 << 18;
  EXPECT_EQ(time_allreduce(1, 4, n_elems, AllReduceAlgo::kAuto),
            time_allreduce(1, 4, n_elems, AllReduceAlgo::kTwoPhaseDirect));
}

TEST(NodeAggregateA2A, PermutationIsCorrect) {
  gpu::Machine m(nodes_by_gpus(2, 2));
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 4;
  const int n = 4;
  std::vector<std::vector<float>> send(static_cast<size_t>(n)),
      recv(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    send[static_cast<size_t>(r)].resize(static_cast<size_t>(n * chunk));
    recv[static_cast<size_t>(r)].assign(static_cast<size_t>(n * chunk), -1.f);
    for (int d = 0; d < n; ++d) {
      for (int i = 0; i < chunk; ++i) {
        send[static_cast<size_t>(r)][static_cast<size_t>(d * chunk + i)] =
            static_cast<float>(r * 100 + d * 10 + i);
      }
    }
  }
  TimeNs done = 0;
  run_all_to_all(m.engine(), comm, chunk, make_bufs(send), make_bufs(recv),
                 AllToAllAlgo::kNodeAggregate, done);
  m.engine().run();
  for (int d = 0; d < n; ++d) {
    for (int s = 0; s < n; ++s) {
      for (int i = 0; i < chunk; ++i) {
        EXPECT_FLOAT_EQ(
            recv[static_cast<size_t>(d)][static_cast<size_t>(s * chunk + i)],
            static_cast<float>(s * 100 + d * 10 + i));
      }
    }
  }
  EXPECT_GT(done, 0);
}

TEST(NodeAggregateA2A, AmortizesNicDescriptorsAtSmallChunks) {
  // Small chunks: the pairwise schedule pays gpus^2 NIC descriptor
  // serializations per node pair; aggregation pays one (plus cheap fabric
  // gather/scatter legs).
  const std::int64_t chunk = 256;  // 1 KB per rank pair
  auto run = [&](AllToAllAlgo algo) {
    gpu::Machine m(nodes_by_gpus(2, 4));
    Communicator comm(m, all_pes(m));
    TimeNs done = 0;
    run_all_to_all(m.engine(), comm, chunk, FloatBufs{}, FloatBufs{}, algo,
                   done);
    m.engine().run();
    return done;
  };
  EXPECT_LT(run(AllToAllAlgo::kNodeAggregate),
            run(AllToAllAlgo::kPairwise));
}

}  // namespace
}  // namespace fcc::ccl

// Topology layer: route resolution, cut-through reservation, the concrete
// fabrics (fully-connected / switched / multi-rail / torus), and Machine
// config validation.
#include <gtest/gtest.h>

#include "gpu/machine.h"
#include "hw/topology.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace fcc {
namespace {

hw::FabricSpec fabric_80() {
  hw::FabricSpec s;
  s.port_bytes_per_ns = 80.0;
  s.latency_ns = 700;
  return s;
}

TEST(FullyConnectedTopology, IntraNodeMatchesFabricTransferExactly) {
  // The topology's route reservation must be byte-identical to the
  // historical Fabric path (joint egress/ingress accounting).
  hw::FullyConnectedTopology topo(1, 4, fabric_80(), {});
  hw::Fabric ref(4, fabric_80());
  // Same contention pattern on both: shared egress, shared ingress,
  // disjoint pair.
  EXPECT_EQ(topo.write_time(0, 1, 8000, 0), ref.transfer(0, 1, 8000, 0));
  EXPECT_EQ(topo.write_time(0, 2, 8000, 0), ref.transfer(0, 2, 8000, 0));
  EXPECT_EQ(topo.write_time(3, 2, 8000, 0), ref.transfer(3, 2, 8000, 0));
  EXPECT_EQ(topo.write_time(1, 2, 4000, 100), ref.transfer(1, 2, 4000, 100));
  EXPECT_EQ(topo.node_fabric(0)->total_bytes(), ref.total_bytes());
}

TEST(FullyConnectedTopology, InterNodeMatchesNicPostExactly) {
  hw::IbSpec ib;
  hw::FullyConnectedTopology topo(2, 1, fabric_80(), ib);
  hw::Nic ref("ref", ib);
  EXPECT_EQ(topo.write_time(0, 1, 1 << 20, 0), ref.post(0, 1 << 20));
  EXPECT_EQ(topo.write_time(0, 1, 4096, 50), ref.post(50, 4096));
  EXPECT_EQ(topo.node_nic(0)->messages(), 2);
  EXPECT_EQ(topo.node_nic(1)->messages(), 0);  // dst NIC not charged
}

TEST(Topology, RouteClassification) {
  hw::FullyConnectedTopology topo(2, 4, fabric_80(), {});
  EXPECT_EQ(topo.route_class(3, 3), hw::RouteClass::kSelf);
  EXPECT_EQ(topo.route_class(0, 3), hw::RouteClass::kIntraNode);
  EXPECT_EQ(topo.route_class(3, 4), hw::RouteClass::kInterNode);
  hw::Route r;
  topo.resolve(0, 3, r);
  EXPECT_EQ(r.cls, hw::RouteClass::kIntraNode);
  EXPECT_EQ(r.hops.size(), 2u);  // egress + ingress
  EXPECT_EQ(r.nic, nullptr);
  r.clear();
  topo.resolve(3, 4, r);
  EXPECT_EQ(r.cls, hw::RouteClass::kInterNode);
  EXPECT_NE(r.nic, nullptr);
}

TEST(SwitchedTopology, UncontendedTransferPaysTwoHopLatency) {
  hw::SwitchedSpec spec;
  spec.port_bytes_per_ns = 100.0;
  spec.hop_latency_ns = 300;
  hw::SwitchedTopology topo(1, 8, spec, {});
  // 10000 B at 100 B/ns = 100 ns serialization + 2 x 300 ns hops.
  EXPECT_EQ(topo.write_time(0, 5, 10000, 0), 100 + 600);
}

TEST(SwitchedTopology, DisjointPairsDoNotContendWithoutTrunk) {
  hw::SwitchedSpec spec;
  spec.port_bytes_per_ns = 100.0;
  spec.hop_latency_ns = 0;
  hw::SwitchedTopology topo(1, 8, spec, {});
  const TimeNs a = topo.write_time(0, 1, 10000, 0);
  const TimeNs b = topo.write_time(2, 3, 10000, 0);
  const TimeNs c = topo.write_time(4, 7, 10000, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);  // ideal crossbar: 8 disjoint pairs, no contention
}

TEST(SwitchedTopology, SharedEndpointPortsSerialize) {
  hw::SwitchedSpec spec;
  spec.port_bytes_per_ns = 100.0;
  spec.hop_latency_ns = 0;
  hw::SwitchedTopology topo(1, 8, spec, {});
  const TimeNs a = topo.write_time(0, 1, 10000, 0);
  const TimeNs b = topo.write_time(0, 2, 10000, 0);  // same uplink
  EXPECT_EQ(b - a, 100);
  const TimeNs c = topo.write_time(3, 2, 10000, 0);  // 2's downlink busy
  EXPECT_EQ(c - b, 100);
}

TEST(SwitchedTopology, TrunkCapsAggregateBandwidth) {
  hw::SwitchedSpec spec;
  spec.port_bytes_per_ns = 100.0;
  spec.hop_latency_ns = 0;
  spec.trunk_bytes_per_ns = 200.0;  // half the 8-port aggregate
  hw::SwitchedTopology topo(1, 8, spec, {});
  // Four disjoint pairs, 10000 B each: ports alone would finish at 100 ns,
  // but the shared trunk serializes 40000 B at 200 B/ns = 200 ns total.
  TimeNs last = 0;
  for (int p = 0; p < 4; ++p) {
    last = std::max(last, topo.write_time(p, p + 4, 10000, 0));
  }
  EXPECT_GE(last, 200);
}

TEST(MultiRailTopology, RailsRemoveNicSerialization) {
  hw::IbSpec ib;  // 20 B/ns wire
  hw::FullyConnectedTopology single(2, 4, fabric_80(), ib);
  hw::MultiRailTopology quad(2, 4, /*rails=*/4, fabric_80(), ib);
  // All four GPUs of node 0 send 1 MB cross-node at once.
  TimeNs single_done = 0, quad_done = 0;
  for (PeId src = 0; src < 4; ++src) {
    single_done = std::max(single_done, single.write_time(src, 4, 1 << 20, 0));
    quad_done = std::max(quad_done, quad.write_time(src, 4, 1 << 20, 0));
  }
  // One NIC serializes 4 MB; four rails move 1 MB each in parallel.
  EXPECT_GT(single_done, 3 * quad_done);
  // Rail affinity: each source GPU used its own rail.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(quad.rail(0, r)->messages(), 1);
  }
}

TEST(TorusTopology, HopCountsAreDimensionOrderedShortest) {
  hw::TorusSpec spec;
  spec.dim_x = 4;
  spec.dim_y = 4;
  hw::TorusTopology topo(spec);
  EXPECT_EQ(topo.hop_count(0, 1), 1);   // +x neighbour
  EXPECT_EQ(topo.hop_count(0, 3), 1);   // wraparound -x
  EXPECT_EQ(topo.hop_count(0, 5), 2);   // (1,1)
  EXPECT_EQ(topo.hop_count(0, 10), 4);  // (2,2): worst case on 4x4
}

TEST(TorusTopology, RouteLatencyScalesWithHops) {
  hw::TorusSpec spec;
  spec.dim_x = 4;
  spec.dim_y = 4;
  spec.link_bytes_per_ns = 25.0;
  spec.link_latency_ns = 700;
  hw::TorusTopology topo(spec);
  // 1 hop: 1000 B / 25 B/ns = 40 ns + 700.
  EXPECT_EQ(topo.write_time(0, 1, 1000, 0), 740);
  // 4 hops from node 0 to node 10: same serialization + 4 x 700.
  hw::TorusTopology topo2(spec);
  EXPECT_EQ(topo2.write_time(0, 10, 1000, 0), 40 + 4 * 700);
}

TEST(TorusTopology, SharedRingLinksContend) {
  hw::TorusSpec spec;
  spec.dim_x = 8;
  spec.dim_y = 2;
  spec.link_latency_ns = 0;
  hw::TorusTopology topo(spec);
  // 0 -> 2 and 0 -> 1 both leave node 0 on the +x link.
  const TimeNs a = topo.write_time(0, 2, 25000, 0);
  const TimeNs b = topo.write_time(0, 1, 25000, 0);
  EXPECT_GT(b, 1000);  // queued behind the first transfer's first hop
  EXPECT_GT(a, 0);
}

// --- Machine integration -------------------------------------------------

sim::Task one_put(shmem::World& w, PeId src, PeId dst, Bytes bytes,
                  TimeNs& delivered, sim::Engine& e) {
  co_await w.put_nbi(src, dst, bytes, shmem::World::IssueKind::kRdma,
                     [&] { delivered = e.now(); });
  co_await w.quiet(src);
}

TEST(Machine, TorusTopologyRunsOnTheEventEngine) {
  // Scale-out torus traffic goes through the same put_nbi/engine path as
  // every other fabric — no separate analytic world.
  gpu::Machine::Config mc;
  mc.num_nodes = 16;
  mc.gpus_per_node = 1;
  mc.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  mc.topology.torus.dim_x = 4;
  mc.topology.torus.dim_y = 4;
  gpu::Machine m(mc);
  shmem::World w(m);
  TimeNs delivered = -1;
  one_put(w, 0, 10, 25000, delivered, m.engine());
  m.engine().run();
  // RDMA issue overhead + 4 hops x (1000 ns serialization cut-through is
  // joint, so one 1000 ns window) + 4 x 700 ns hop latency.
  const TimeNs issue = m.config().ib.gpu_post_overhead_ns;
  EXPECT_EQ(delivered, issue + 1000 + 4 * 700);
  EXPECT_EQ(m.route_class(0, 10), hw::RouteClass::kInterNode);
}

TEST(Machine, SwitchedTopologyEndToEnd) {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 8;
  mc.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
  gpu::Machine m(mc);
  shmem::World w(m);
  TimeNs delivered = -1;
  one_put(w, 0, 7, 80000, delivered, m.engine());
  m.engine().run();
  const auto& sw = mc.topology.switched;
  const TimeNs issue = m.config().fabric.store_issue_overhead_ns;
  EXPECT_EQ(delivered,
            issue + static_cast<TimeNs>(80000 / sw.port_bytes_per_ns) +
                2 * sw.hop_latency_ns);
}

TEST(Machine, ConfigValidationRejectsNonPositiveValues) {
  gpu::Machine::Config bad;
  bad.num_nodes = 0;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.gpus_per_node = -1;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.gpu.hbm_bytes_per_ns = 0.0;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.fabric.port_bytes_per_ns = -5.0;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.ib.wire_bytes_per_ns = 0.0;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.topology.kind = hw::TopologySpec::Kind::kMultiRail;
  bad.topology.nic_rails = 0;
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);

  bad = {};
  bad.num_nodes = 4;
  bad.gpus_per_node = 1;
  bad.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  bad.topology.torus.dim_x = 2;  // 2x8 != 4 nodes
  EXPECT_THROW(gpu::Machine{bad}, std::logic_error);
}

TEST(Machine, FabricAccessorThrowsOnFabriclessTopology) {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 8;
  mc.topology.kind = hw::TopologySpec::Kind::kSwitchedNode;
  gpu::Machine m(mc);
  EXPECT_THROW(m.fabric(0), std::logic_error);
}

}  // namespace
}  // namespace fcc

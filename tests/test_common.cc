// Utilities: RNG determinism, zipf skew, stats, math helpers, table/CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/math_util.h"
#include "common/perf_json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace fcc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextIntCoversRangeInclusive) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    lo |= (v == 3);
    hi |= (v == 7);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Zipf, SkewsTowardsLowIndices) {
  ZipfSampler z(1000, 0.9, Rng(3));
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (z.next() < 10);
  // With theta=0.9 the top-10 of 1000 categories should carry far more than
  // the uniform 1% of mass.
  EXPECT_GT(head, n / 20);
}

TEST(Zipf, StaysInRange) {
  ZipfSampler z(50, 0.99, Rng(4));
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(), 50u);
}

TEST(MathUtil, CeilDivAndAlign) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(align_up(10, 8), 16);
  EXPECT_EQ(align_up(16, 8), 16);
}

TEST(MathUtil, Pow2AndPopcount) {
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_EQ(popcount64(0xFFULL), 8);
  EXPECT_EQ(popcount64(0), 0);
}

TEST(MathUtil, RelDiff) {
  EXPECT_NEAR(rel_diff(100.0, 90.0), 0.1, 1e-12);
  EXPECT_EQ(rel_diff(0.0, 0.0), 0.0);
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Table, RendersAllCells) {
  AsciiTable t({"config", "time"});
  t.add_row({"a", "1.0"});
  t.add_row({"bb", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("config"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/fcc_test_csv.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row(1, 2.5);
    w.row("s", 3);
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "x,y");
  EXPECT_EQ(l2, "1,2.5");
  EXPECT_EQ(l3, "s,3");
  std::remove(path.c_str());
}

TEST(PerfJson, RoundTripsThroughItsOwnFormat) {
  PerfJson a;
  a.set("bench_x", "items_per_second", 1.5e6);
  a.set("bench_x", "wall_seconds", 0.25);
  a.set("bench_y", "sweep_points", 9);
  PerfJson b;
  ASSERT_TRUE(b.parse(a.str()));
  EXPECT_EQ(b.num_sections(), 2u);
  EXPECT_DOUBLE_EQ(b.get("bench_x", "items_per_second"), 1.5e6);
  EXPECT_DOUBLE_EQ(b.get("bench_x", "wall_seconds"), 0.25);
  EXPECT_DOUBLE_EQ(b.get("bench_y", "sweep_points"), 9);
  EXPECT_DOUBLE_EQ(b.get("bench_y", "missing", -1.0), -1.0);
}

TEST(PerfJson, LoadMergesAcrossProcessStyleWrites) {
  const std::string path = "/tmp/fcc_test_perf.json";
  {
    PerfJson first;
    first.set("sweep_a", "wall_seconds", 1.0);
    first.save(path);
  }
  {
    // A second "bench process" adds its section without clobbering the
    // first one's.
    PerfJson second;
    ASSERT_TRUE(second.load(path));
    second.set("sweep_b", "wall_seconds", 2.0);
    second.save(path);
  }
  PerfJson check;
  ASSERT_TRUE(check.load(path));
  EXPECT_DOUBLE_EQ(check.get("sweep_a", "wall_seconds"), 1.0);
  EXPECT_DOUBLE_EQ(check.get("sweep_b", "wall_seconds"), 2.0);
  std::remove(path.c_str());
}

TEST(PerfJson, FreshValuesWinWhenMergingOverStaleFile) {
  PerfJson stale;
  stale.set("bench", "items_per_second", 100.0);
  PerfJson fresh;
  ASSERT_TRUE(fresh.parse(stale.str()));
  PerfJson update;
  update.set("bench", "items_per_second", 250.0);
  fresh.merge_from(update);
  EXPECT_DOUBLE_EQ(fresh.get("bench", "items_per_second"), 250.0);
}

TEST(PerfJson, MalformedInputIsRejectedWithoutSideEffects) {
  PerfJson p;
  p.set("keep", "k", 7.0);
  EXPECT_FALSE(p.parse("not json"));
  EXPECT_FALSE(p.parse("{\"a\": {\"b\": }}"));
  EXPECT_FALSE(p.parse("{\"a\": {\"b\": 1} trailing"));
  EXPECT_FALSE(p.load("/nonexistent/fcc_perf.json"));
  EXPECT_EQ(p.num_sections(), 1u);
  EXPECT_DOUBLE_EQ(p.get("keep", "k"), 7.0);
}

TEST(PerfJson, EmptyObjectParses) {
  PerfJson p;
  EXPECT_TRUE(p.parse("{}"));
  EXPECT_EQ(p.num_sections(), 0u);
  EXPECT_TRUE(p.parse("{\"s\": {}}"));
  EXPECT_EQ(p.num_sections(), 1u);
}

TEST(Types, UnitConversions) {
  EXPECT_EQ(us_to_ns(2.0), 2000);
  EXPECT_EQ(ms_to_ns(1.5), 1500000);
  EXPECT_DOUBLE_EQ(gbit_per_s_to_bytes_per_ns(200.0), 25.0);
  EXPECT_DOUBLE_EQ(gb_per_s_to_bytes_per_ns(80.0), 80.0);
}

}  // namespace
}  // namespace fcc

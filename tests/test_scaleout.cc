// Scale-out trainer sim: torus collectives, iteration composition, Fig. 15
// trend.
#include <gtest/gtest.h>

#include "hw/topology.h"
#include "scaleout/dlrm_training.h"
#include "scaleout/torus.h"

namespace fcc::scaleout {
namespace {

TEST(Torus, FactorsNodesNearSquare) {
  TorusSpec base;
  const auto t128 = torus_for_nodes(128, base);
  EXPECT_EQ(t128.dim_x * t128.dim_y, 128);
  EXPECT_EQ(t128.dim_y, 8);
  EXPECT_EQ(t128.dim_x, 16);
  const auto t64 = torus_for_nodes(64, base);
  EXPECT_EQ(t64.dim_x, 8);
  EXPECT_EQ(t64.dim_y, 8);
}

TEST(Torus, AllToAllScalesWithBytes) {
  TorusModel t(torus_for_nodes(64, {}));
  const TimeNs a = t.all_to_all_time(1 << 10);
  const TimeNs b = t.all_to_all_time(1 << 20);
  EXPECT_GT(b, 100 * a / 2);
  EXPECT_EQ(t.all_to_all_time(0), 0);
}

TEST(Torus, AllReduceLatencyGrowsWithRingSizes) {
  TorusModel small(torus_for_nodes(16, {}));
  TorusModel big(torus_for_nodes(256, {}));
  EXPECT_LT(small.all_reduce_time(1 << 20), big.all_reduce_time(1 << 20));
}

TEST(Torus, DegenerateSingleNodeTorusIsRejected) {
  // A 1x1 torus has no links; construction fails fast with a clear check
  // message instead of silently modeling a zero-cost network.
  EXPECT_THROW(TorusModel(torus_for_nodes(1, {})), std::logic_error);
  EXPECT_THROW(hw::TorusTopology(torus_for_nodes(1, {})), std::logic_error);
}

TEST(Torus, SpecValidationRejectsNonPositiveDimsAndBandwidth) {
  TorusSpec bad_dims;
  bad_dims.dim_x = 0;
  EXPECT_THROW(bad_dims.validate(), std::logic_error);
  TorusSpec bad_bw;
  bad_bw.link_bytes_per_ns = 0.0;
  EXPECT_THROW(bad_bw.validate(), std::logic_error);
  TorusSpec bad_lat;
  bad_lat.link_latency_ns = -1;
  EXPECT_THROW(bad_lat.validate(), std::logic_error);
}

TEST(TorusTopology, EventDrivenA2AFlowMatchesAnalyticSchedule) {
  // The event-driven torus reserves the same dimension-ordered flow
  // decomposition the analytic TorusModel computes; on an idle topology
  // (uniform workload, nothing else on the links) they agree exactly.
  for (int nodes : {8, 32, 64, 128}) {
    const TorusSpec spec = torus_for_nodes(nodes, {});
    TorusModel analytic(spec);
    for (Bytes per_pair : {Bytes{512}, Bytes{1} << 16, Bytes{1} << 22}) {
      hw::TorusTopology topo(spec);
      EXPECT_EQ(topo.flow_all_to_all_uniform(per_pair, 0),
                analytic.all_to_all_time(per_pair))
          << nodes << " nodes, per_pair=" << per_pair;
    }
  }
}

TEST(TorusTopology, EventDrivenAllReduceFlowMatchesAnalyticSchedule) {
  for (int nodes : {8, 64, 128}) {
    const TorusSpec spec = torus_for_nodes(nodes, {});
    TorusModel analytic(spec);
    for (Bytes bytes : {Bytes{4096}, Bytes{1} << 20, Bytes{1} << 26}) {
      hw::TorusTopology topo(spec);
      EXPECT_EQ(topo.flow_all_reduce(bytes, 0),
                analytic.all_reduce_time(bytes))
          << nodes << " nodes, bytes=" << bytes;
    }
  }
}

TEST(TorusTopology, FlowsContendOnSharedLinks) {
  // Two back-to-back A2A flows on ONE topology queue behind each other —
  // the event-driven schedule reserves real link intervals, unlike the
  // closed-form model.
  const TorusSpec spec = torus_for_nodes(64, {});
  hw::TorusTopology topo(spec);
  const TimeNs first = topo.flow_all_to_all_uniform(1 << 16, 0);
  const TimeNs second = topo.flow_all_to_all_uniform(1 << 16, 0);
  EXPECT_GT(second, first);
}

TrainingConfig paper_config(int nodes) {
  TrainingConfig cfg;  // Table II defaults
  cfg.num_nodes = nodes;
  cfg.global_batch = 32 * nodes;
  return cfg;
}

TEST(TrainingSim, ComponentsArePositive) {
  DlrmTrainingSim sim(paper_config(128));
  const auto b = sim.simulate(false);
  EXPECT_GT(b.emb_fwd, 0);
  EXPECT_GT(b.a2a_fwd, 0);
  EXPECT_GT(b.top_mlp_fwd, 0);
  EXPECT_GT(b.total, 0);
  EXPECT_GE(b.total, b.emb_fwd + b.a2a_fwd);  // serial baseline chain
}

TEST(TrainingSim, FusedBeatsBaselineAt128Nodes) {
  DlrmTrainingSim sim(paper_config(128));
  const auto base = sim.simulate(false);
  const auto fused = sim.simulate(true);
  EXPECT_LT(fused.total, base.total);
  // Paper Fig. 15: ~21% reduction. Accept the band 10-35% here; the bench
  // records the exact number in EXPERIMENTS.md.
  const double reduction =
      1.0 - static_cast<double>(fused.total) / base.total;
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.35);
}

TEST(TrainingSim, BenefitGrowsWithScaleThenSaturates) {
  // More nodes -> bigger exposed A2A share -> more to hide (up to the point
  // where comm exceeds compute).
  double prev = 1.0;
  for (int nodes : {8, 32, 128}) {
    DlrmTrainingSim sim(paper_config(nodes));
    const double ratio = sim.fused_speedup();
    EXPECT_LT(ratio, 1.0);
    EXPECT_LE(ratio, prev + 0.05);  // non-increasing-ish
    prev = ratio;
  }
}

TEST(TrainingSim, MoreSlicesImproveOverlap) {
  auto cfg = paper_config(128);
  cfg.slices = 4;
  const auto coarse = DlrmTrainingSim(cfg).simulate(true).total;
  cfg.slices = 256;
  const auto fine = DlrmTrainingSim(cfg).simulate(true).total;
  EXPECT_LT(fine, coarse);
}

}  // namespace
}  // namespace fcc::scaleout

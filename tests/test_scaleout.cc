// Scale-out trainer sim: torus collectives, iteration composition, Fig. 15
// trend.
#include <gtest/gtest.h>

#include "scaleout/dlrm_training.h"
#include "scaleout/torus.h"

namespace fcc::scaleout {
namespace {

TEST(Torus, FactorsNodesNearSquare) {
  TorusSpec base;
  const auto t128 = torus_for_nodes(128, base);
  EXPECT_EQ(t128.dim_x * t128.dim_y, 128);
  EXPECT_EQ(t128.dim_y, 8);
  EXPECT_EQ(t128.dim_x, 16);
  const auto t64 = torus_for_nodes(64, base);
  EXPECT_EQ(t64.dim_x, 8);
  EXPECT_EQ(t64.dim_y, 8);
}

TEST(Torus, AllToAllScalesWithBytes) {
  TorusModel t(torus_for_nodes(64, {}));
  const TimeNs a = t.all_to_all_time(1 << 10);
  const TimeNs b = t.all_to_all_time(1 << 20);
  EXPECT_GT(b, 100 * a / 2);
  EXPECT_EQ(t.all_to_all_time(0), 0);
}

TEST(Torus, AllReduceLatencyGrowsWithRingSizes) {
  TorusModel small(torus_for_nodes(16, {}));
  TorusModel big(torus_for_nodes(256, {}));
  EXPECT_LT(small.all_reduce_time(1 << 20), big.all_reduce_time(1 << 20));
}

TEST(Torus, SingleNodeIsFree) {
  TorusModel t(torus_for_nodes(1, {}));
  EXPECT_EQ(t.all_to_all_time(1 << 20), 0);
  EXPECT_EQ(t.all_reduce_time(1 << 20), 0);
}

TrainingConfig paper_config(int nodes) {
  TrainingConfig cfg;  // Table II defaults
  cfg.num_nodes = nodes;
  cfg.global_batch = 32 * nodes;
  return cfg;
}

TEST(TrainingSim, ComponentsArePositive) {
  DlrmTrainingSim sim(paper_config(128));
  const auto b = sim.simulate(false);
  EXPECT_GT(b.emb_fwd, 0);
  EXPECT_GT(b.a2a_fwd, 0);
  EXPECT_GT(b.top_mlp_fwd, 0);
  EXPECT_GT(b.total, 0);
  EXPECT_GE(b.total, b.emb_fwd + b.a2a_fwd);  // serial baseline chain
}

TEST(TrainingSim, FusedBeatsBaselineAt128Nodes) {
  DlrmTrainingSim sim(paper_config(128));
  const auto base = sim.simulate(false);
  const auto fused = sim.simulate(true);
  EXPECT_LT(fused.total, base.total);
  // Paper Fig. 15: ~21% reduction. Accept the band 10-35% here; the bench
  // records the exact number in EXPERIMENTS.md.
  const double reduction =
      1.0 - static_cast<double>(fused.total) / base.total;
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.35);
}

TEST(TrainingSim, BenefitGrowsWithScaleThenSaturates) {
  // More nodes -> bigger exposed A2A share -> more to hide (up to the point
  // where comm exceeds compute).
  double prev = 1.0;
  for (int nodes : {8, 32, 128}) {
    DlrmTrainingSim sim(paper_config(nodes));
    const double ratio = sim.fused_speedup();
    EXPECT_LT(ratio, 1.0);
    EXPECT_LE(ratio, prev + 0.05);  // non-increasing-ish
    prev = ratio;
  }
}

TEST(TrainingSim, MoreSlicesImproveOverlap) {
  auto cfg = paper_config(128);
  cfg.slices = 4;
  const auto coarse = DlrmTrainingSim(cfg).simulate(true).total;
  cfg.slices = 256;
  const auto fine = DlrmTrainingSim(cfg).simulate(true).total;
  EXPECT_LT(fine, coarse);
}

}  // namespace
}  // namespace fcc::scaleout

// shmem semantics: symmetric arrays, flags, PUT delivery/ordering, quiet.
#include <gtest/gtest.h>

#include <vector>

#include "fused/op_runtime.h"
#include "gpu/machine.h"
#include "shmem/flags.h"
#include "shmem/sym_array.h"
#include "shmem/world.h"
#include "sim/task.h"

namespace fcc::shmem {
namespace {

gpu::Machine::Config two_nodes_one_gpu() {
  gpu::Machine::Config c;
  c.num_nodes = 2;
  c.gpus_per_node = 1;
  return c;
}

gpu::Machine::Config one_node_four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

TEST(SymArray, PerPeStorageIsIndependent) {
  SymArray<float> a(/*num_pes=*/3, /*elems=*/8);
  a.pe(0)[0] = 1.0f;
  a.pe(1)[0] = 2.0f;
  EXPECT_EQ(a.pe(0)[0], 1.0f);
  EXPECT_EQ(a.pe(1)[0], 2.0f);
  EXPECT_EQ(a.pe(2)[0], 0.0f);
  EXPECT_EQ(a.size_bytes(), 32);
}

TEST(SymArray, TimingOnlyModeRejectsAccess) {
  SymArray<float> a(2, 1024, /*functional=*/false);
  EXPECT_FALSE(a.functional());
  EXPECT_THROW(a.pe(0), std::logic_error);
}

TEST(WgDoneMask, LastSetterWins) {
  WgDoneMask m(4);
  EXPECT_FALSE(m.set_and_check_last(2));
  EXPECT_FALSE(m.set_and_check_last(0));
  EXPECT_FALSE(m.set_and_check_last(3));
  EXPECT_TRUE(m.set_and_check_last(1));
  EXPECT_TRUE(m.complete());
  EXPECT_EQ(m.mask(), 0xFull);
}

TEST(WgDoneMask, DoubleSetThrows) {
  WgDoneMask m(2);
  m.set_and_check_last(0);
  EXPECT_THROW(m.set_and_check_last(0), std::logic_error);
}

TEST(WgDoneMask, WideMasksExposeEveryWordNotJustTheFirst) {
  // 130 WGs span three words; completion and per-bit bookkeeping must see
  // all of them (mask() used to silently truncate to word 0).
  const int wgs = 130;
  WgDoneMask m(wgs);
  for (int wg = 0; wg < wgs - 1; ++wg) {
    EXPECT_FALSE(m.set_and_check_last(wg));
  }
  EXPECT_TRUE(m.set_and_check_last(wgs - 1));
  ASSERT_EQ(m.words().size(), 3u);
  EXPECT_EQ(m.words()[0], ~std::uint64_t{0});
  EXPECT_EQ(m.words()[1], ~std::uint64_t{0});
  EXPECT_EQ(m.words()[2], 0x3ull);  // bits 128..129
}

TEST(WgDoneMask, SingleWordViewRefusesToTruncate) {
  WgDoneMask narrow(64);
  narrow.set_and_check_last(63);
  EXPECT_EQ(narrow.mask(), std::uint64_t{1} << 63);
  WgDoneMask wide(65);
  EXPECT_THROW(wide.mask(), std::logic_error);
  EXPECT_EQ(wide.words().size(), 2u);
}

sim::Task flag_waiter(sim::Engine& e, FlagArray& f, PeId pe, std::size_t i,
                      TimeNs& woke_at) {
  co_await f.wait_ge(pe, i, 1);
  woke_at = e.now();
}

sim::Task flag_setter(sim::Engine& e, FlagArray& f, PeId pe, std::size_t i,
                      TimeNs at) {
  co_await sim::delay(e, at);
  f.set(pe, i, 1);
}

TEST(FlagArray, WaitWakesExactlyWhenSet) {
  gpu::Machine m(two_nodes_one_gpu());
  FlagArray flags(m.engine(), m.num_pes(), 4);
  TimeNs woke_at = -1;
  flag_waiter(m.engine(), flags, 1, 2, woke_at);
  flag_setter(m.engine(), flags, 1, 2, 500);
  m.engine().run();
  EXPECT_EQ(woke_at, 500);
  EXPECT_EQ(m.engine().live_tasks(), 0);
}

TEST(FlagArray, WaitOnAlreadySetFlagDoesNotBlock) {
  gpu::Machine m(two_nodes_one_gpu());
  FlagArray flags(m.engine(), m.num_pes(), 1);
  flags.set(0, 0, 7);
  TimeNs woke_at = -1;
  flag_waiter(m.engine(), flags, 0, 0, woke_at);
  EXPECT_EQ(woke_at, 0);
}

TEST(FlagArray, AddAccumulates) {
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 1);
  EXPECT_EQ(flags.add(0, 0, 1), 1u);
  EXPECT_EQ(flags.add(0, 0, 1), 2u);
  EXPECT_EQ(flags.read(0, 0), 2u);
}

sim::Task threshold_waiter(sim::Engine& e, FlagArray& f, std::uint64_t thr,
                           TimeNs& woke_at) {
  co_await f.wait_ge(0, 0, thr);
  woke_at = e.now();
}

sim::Task counter_ticker(sim::Engine& e, FlagArray& f, int ticks,
                         TimeNs period) {
  for (int i = 0; i < ticks; ++i) {
    co_await sim::delay(e, period);
    f.add(0, 0, 1);
  }
}

TEST(FlagArray, WakeupsAreTargetedToSatisfiedThresholdsOnly) {
  // An arrival counter ticking up must wake each threshold waiter exactly
  // when its own predicate first holds — never earlier (the old broadcast
  // protocol woke everyone on every tick and let them re-check).
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 1);
  TimeNs woke1 = -1, woke3 = -1, woke5 = -1;
  threshold_waiter(m.engine(), flags, 5, woke5);  // registered first
  threshold_waiter(m.engine(), flags, 1, woke1);
  threshold_waiter(m.engine(), flags, 3, woke3);
  counter_ticker(m.engine(), flags, 5, 100);
  EXPECT_EQ(flags.num_waiters(0, 0), 3u);
  m.engine().run();
  EXPECT_EQ(woke1, 100);
  EXPECT_EQ(woke3, 300);
  EXPECT_EQ(woke5, 500);
  EXPECT_EQ(flags.num_waiters(0, 0), 0u);
  EXPECT_EQ(m.engine().live_tasks(), 0);
}

TEST(FlagArray, SimultaneouslySatisfiedWaitersWakeInRegistrationOrder) {
  // A single jump past several thresholds resumes the satisfied waiters in
  // the order they registered (matching the old broadcast resume order),
  // not threshold order.
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 1);
  std::vector<int> order;
  struct Recorder {
    static sim::Task wait(sim::Engine&, FlagArray& f, std::uint64_t thr,
                          int id, std::vector<int>& order) {
      co_await f.wait_ge(0, 0, thr);
      order.push_back(id);
    }
  };
  Recorder::wait(m.engine(), flags, 4, /*id=*/0, order);  // high thr first
  Recorder::wait(m.engine(), flags, 2, /*id=*/1, order);
  Recorder::wait(m.engine(), flags, 3, /*id=*/2, order);
  flags.set(0, 0, 10);
  m.engine().run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

sim::Task put_driver(sim::Engine& e, World& w, PeId src, PeId dst, Bytes n,
                     TimeNs& issued_at, TimeNs& delivered_at) {
  co_await w.put_nbi(src, dst, n, World::IssueKind::kRdma,
                     [&delivered_at, &e] { delivered_at = e.now(); });
  issued_at = e.now();
  co_await w.quiet(src);
}

TEST(World, PutNbiReturnsAfterIssueDeliversLater) {
  gpu::Machine m(two_nodes_one_gpu());
  World w(m);
  TimeNs issued = -1, delivered = -1;
  put_driver(m.engine(), w, 0, 1, 1 << 20, issued, delivered);
  m.engine().run();
  // Issue cost is the RDMA post overhead only.
  EXPECT_EQ(issued, m.config().ib.gpu_post_overhead_ns);
  // Delivery pays NIC proc + wire serialization + wire latency.
  const double wire_ns = (1 << 20) / m.config().ib.wire_bytes_per_ns;
  EXPECT_NEAR(static_cast<double>(delivered),
              static_cast<double>(issued) + m.config().ib.per_msg_proc_ns +
                  wire_ns + m.config().ib.wire_latency_ns,
              2.0);
  EXPECT_GT(delivered, issued);
  EXPECT_EQ(w.outstanding(0), 0);
}

sim::Task ordered_puts(sim::Engine& e, World& w, FlagArray& flags,
                       std::vector<TimeNs>& deliveries) {
  // Data PUT, fence, then flag PUT — the paper's slice protocol.
  co_await w.put_nbi(0, 1, 32 * 1024, World::IssueKind::kRdma,
                     [&] { deliveries.push_back(e.now()); });
  co_await w.fence(0);
  co_await w.put_nbi(0, 1, 8, World::IssueKind::kRdma,
                     [&] {
                       deliveries.push_back(e.now());
                       flags.set(1, 0, 1);
                     });
}

sim::Task flag_consumer(sim::Engine& e, FlagArray& flags,
                        std::vector<TimeNs>& deliveries, TimeNs& consumed_at) {
  co_await flags.wait_ge(1, 0, 1);
  // The data PUT must already have been delivered (fence + FIFO channel).
  EXPECT_EQ(deliveries.size(), 2u);
  consumed_at = e.now();
}

TEST(World, FlagNeverOvertakesData) {
  gpu::Machine m(two_nodes_one_gpu());
  World w(m);
  FlagArray flags(m.engine(), m.num_pes(), 1);
  std::vector<TimeNs> deliveries;
  TimeNs consumed_at = -1;
  ordered_puts(m.engine(), w, flags, deliveries);
  flag_consumer(m.engine(), flags, deliveries, consumed_at);
  m.engine().run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_LE(deliveries[0], deliveries[1]);
  EXPECT_EQ(consumed_at, deliveries[1]);
  EXPECT_EQ(m.engine().live_tasks(), 0);
}

sim::Task quiet_driver(sim::Engine& e, World& w, int puts, TimeNs& quiet_at,
                       int& delivered_count) {
  for (int i = 0; i < puts; ++i) {
    co_await w.put_nbi(0, 1, 64 * 1024, World::IssueKind::kRdma,
                       [&delivered_count] { ++delivered_count; });
  }
  co_await w.quiet(0);
  quiet_at = e.now();
}

TEST(World, QuietDrainsAllOutstandingPuts) {
  gpu::Machine m(two_nodes_one_gpu());
  World w(m);
  TimeNs quiet_at = -1;
  int delivered = 0;
  quiet_driver(m.engine(), w, 10, quiet_at, delivered);
  m.engine().run();
  EXPECT_EQ(delivered, 10);
  EXPECT_GT(quiet_at, 0);
  EXPECT_EQ(w.outstanding(0), 0);
  EXPECT_EQ(w.puts_issued(), 10);
}

sim::Task local_put(sim::Engine& e, World& w, TimeNs& delivered_at) {
  co_await w.put_nbi(2, 2, 1024, World::IssueKind::kNone,
                     [&] { delivered_at = e.now(); });
  co_await w.quiet(2);
}

TEST(World, SelfPutChargesHbmCopyNotFabric) {
  gpu::Machine m(one_node_four_gpus());
  World w(m);
  TimeNs delivered = -1;
  local_put(m.engine(), w, delivered);
  m.engine().run();
  // Local copy: 1024 bytes read + written at aggregate HBM bandwidth.
  const auto& dev = m.device(2);
  const double bw = dev.hbm().total_bandwidth(dev.spec().max_wg_slots());
  EXPECT_EQ(delivered, static_cast<TimeNs>(2.0 * 1024 / bw + 0.5));
  // Regression: a self-PUT must never reserve fabric link time.
  const auto& fabric = m.fabric(0);
  for (int p = 0; p < fabric.num_ports(); ++p) {
    EXPECT_EQ(fabric.egress(p).busy_ns(), 0);
    EXPECT_EQ(fabric.egress(p).next_free(), 0);
    EXPECT_EQ(fabric.ingress(p).busy_ns(), 0);
    EXPECT_EQ(fabric.ingress(p).next_free(), 0);
  }
  EXPECT_EQ(fabric.total_bytes(), 0);
}

TEST(World, ZeroByteSelfPutIsFree) {
  gpu::Machine m(one_node_four_gpus());
  World w(m);
  EXPECT_EQ(m.remote_write_time(1, 1, 0, 42), 42);
}

sim::Task store_put(sim::Engine& e, World& w, TimeNs& delivered_at) {
  co_await w.put_nbi(0, 1, 80 * 1000, World::IssueKind::kStore,
                     [&] { delivered_at = e.now(); });
  co_await w.quiet(0);
}

TEST(World, IntraNodeStoreRidesFabric) {
  gpu::Machine m(one_node_four_gpus());
  World w(m);
  TimeNs delivered = -1;
  store_put(m.engine(), w, delivered);
  m.engine().run();
  const auto& f = m.config().fabric;
  // issue overhead + 80k bytes / 80 B/ns + latency
  EXPECT_EQ(delivered, f.store_issue_overhead_ns + 1000 + f.latency_ns);
}

TEST(FlagArray, ResetRestoresFreshState) {
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 4);
  flags.set(0, 1, 7);
  flags.add(2, 3, 5);
  flags.set(3, 0, 1);
  ASSERT_EQ(flags.total_waiters(), 0u);
  flags.reset();
  for (PeId pe = 0; pe < m.num_pes(); ++pe) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(flags.read(pe, i), 0u) << "flag[" << pe << "][" << i << "]";
    }
  }
}

TEST(FlagArray, ResetWithRegisteredWaiterThrows) {
  // Resetting under a live waiter would strand the coroutine forever (its
  // threshold can never be reached against zeroed counters) — the churn
  // guard turns that silent deadlock into an immediate failure.
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 2);
  TimeNs woke_at = -1;
  flag_waiter(m.engine(), flags, 0, 1, woke_at);
  ASSERT_EQ(flags.total_waiters(), 1u);
  EXPECT_THROW(flags.reset(), std::logic_error);
  // Drain the waiter the legitimate way; reset is then allowed.
  flags.set(0, 1, 1);
  m.engine().run();
  EXPECT_EQ(flags.total_waiters(), 0u);
  flags.reset();
  EXPECT_EQ(flags.read(0, 1), 0u);
}

TEST(FlagArray, ResetRewindsWakeOrderSequence) {
  // A reset array must reproduce a fresh array's wake order exactly —
  // including the registration-order tiebreak sequence, which also rewinds.
  gpu::Machine m(one_node_four_gpus());
  FlagArray flags(m.engine(), m.num_pes(), 1);
  struct Recorder {
    static sim::Task wait(sim::Engine&, FlagArray& f, std::uint64_t thr,
                          int id, std::vector<int>& order) {
      co_await f.wait_ge(0, 0, thr);
      order.push_back(id);
    }
  };
  auto run_round = [&] {
    std::vector<int> order;
    Recorder::wait(m.engine(), flags, 4, /*id=*/0, order);
    Recorder::wait(m.engine(), flags, 2, /*id=*/1, order);
    Recorder::wait(m.engine(), flags, 3, /*id=*/2, order);
    flags.set(0, 0, 10);
    m.engine().run();
    return order;
  };
  const std::vector<int> first = run_round();
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2}));
  flags.reset();
  EXPECT_EQ(run_round(), first);
}

TEST(FlagSet, ShapeMatchingResetReusesTheArray) {
  gpu::Machine m(one_node_four_gpus());
  fused::FlagSet set;
  set.reset(m.engine(), m.num_pes(), 4);
  FlagArray* first = set.get();
  ASSERT_NE(first, nullptr);
  set->set(0, 1, 5);
  // Same shape: the array is reset in place, not reallocated.
  set.reset(m.engine(), m.num_pes(), 4);
  EXPECT_EQ(set.get(), first);
  EXPECT_EQ(set->read(0, 1), 0u);
  // Shape change: reallocates.
  set.reset(m.engine(), m.num_pes(), 8);
  EXPECT_EQ(set->size(), 8u);
}

}  // namespace
}  // namespace fcc::shmem

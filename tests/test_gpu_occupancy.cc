// Occupancy calculator: slot limits, register pressure, shmem cost.
#include <gtest/gtest.h>

#include "gpu/occupancy.h"

namespace fcc::gpu {
namespace {

hw::GpuSpec mi210() { return hw::GpuSpec{}; }

TEST(Occupancy, SlotLimitedKernelReachesMax) {
  KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 64;  // light kernel: register limit above slot limit
  EXPECT_EQ(wgs_per_cu(mi210(), r), 8);
  EXPECT_EQ(max_active_wgs(mi210(), r), 832);
  EXPECT_DOUBLE_EQ(occupancy_fraction(mi210(), r), 1.0);
}

TEST(Occupancy, RegisterLimitedKernel) {
  KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 256;  // 256*256 = 65536 VGPRs per WG -> 4 per CU
  EXPECT_EQ(wgs_per_cu(mi210(), r), 4);
}

TEST(Occupancy, ShmemContextCostsOneWgPerCu) {
  // The paper's fused kernels lose 12.5% occupancy to ROC_SHMEM registers:
  // baseline 128 VGPR/thread kernel sits exactly at 8 WGs/CU; adding the
  // context drops it to 7.
  KernelResources base;
  base.threads_per_wg = 256;
  base.vgprs_per_thread = 128;
  EXPECT_EQ(wgs_per_cu(mi210(), base), 8);

  KernelResources fused = base;
  fused.vgprs_per_thread += kShmemCtxVgprsPerThread;
  EXPECT_EQ(wgs_per_cu(mi210(), fused), 7);
  EXPECT_DOUBLE_EQ(occupancy_fraction(mi210(), fused), 0.875);
}

TEST(Occupancy, LdsLimit) {
  KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 64;
  r.lds_bytes_per_wg = 32 * 1024;  // 64 KB per CU -> 2 WGs
  EXPECT_EQ(wgs_per_cu(mi210(), r), 2);
}

TEST(Occupancy, HugeKernelGetsZero) {
  KernelResources r;
  r.threads_per_wg = 1024;
  r.vgprs_per_thread = 512;
  EXPECT_EQ(wgs_per_cu(mi210(), r), 0);
}

}  // namespace
}  // namespace fcc::gpu

// Framework layer: Session dispatch, symmetric allocation, op registry.
#include <gtest/gtest.h>

#include "framework/session.h"

namespace fcc::fw {
namespace {

gpu::Machine::Config four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

TEST(Session, SymmetricEmptyAllocatesPerPe) {
  Session s(four_gpus());
  auto buf = s.symmetric_empty(128);
  EXPECT_EQ(buf->num_pes(), 4);
  EXPECT_EQ(buf->size(), 128u);
  buf->pe(3)[0] = 1.0f;
  EXPECT_EQ(buf->pe(0)[0], 0.0f);
}

TEST(Session, GemvOpDispatchesBothBackends) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = 4096;
  cfg.k_global = 4096;
  cfg.functional = false;

  Session sf(four_gpus());
  const auto rf = sf.gemv_all_reduce(cfg, nullptr, Backend::kFused);
  Session sb(four_gpus());
  const auto rb = sb.gemv_all_reduce(cfg, nullptr, Backend::kBaseline);
  EXPECT_GT(rf.duration(), 0);
  EXPECT_GT(rb.duration(), 0);
  EXPECT_LT(rf.duration(), rb.duration());
}

TEST(Session, EmbeddingOpDispatches) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 4;
  cfg.map.tables_per_pe = 4;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.functional = false;

  Session s(four_gpus());
  const auto r = s.embedding_all_to_all(cfg, nullptr, Backend::kFused);
  EXPECT_GT(r.duration(), 0);
}

TEST(Registry, RegistersAndRuns) {
  OpRegistry reg;
  fused::GemvAllReduceConfig cfg;
  cfg.m = 2048;
  cfg.k_global = 2048;
  cfg.functional = false;
  reg.register_op({.name = "fcc::gemv_all_reduce",
                   .replaces = "aten::mv + c10d::all_reduce",
                   .invoke = [cfg](Session& s, Backend b) {
                     return s.gemv_all_reduce(cfg, nullptr, b);
                   }});
  EXPECT_TRUE(reg.contains("fcc::gemv_all_reduce"));
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_EQ(reg.names().size(), 1u);
  EXPECT_EQ(reg.at("fcc::gemv_all_reduce").replaces,
            "aten::mv + c10d::all_reduce");

  Session s(four_gpus());
  const auto r = reg.run("fcc::gemv_all_reduce", s, Backend::kFused);
  EXPECT_GT(r.duration(), 0);
}

TEST(Registry, RejectsDuplicatesAndUnknown) {
  OpRegistry reg;
  reg.register_op({.name = "x",
                   .replaces = "",
                   .invoke = [](Session&, Backend) {
                     return fused::OperatorResult{};
                   }});
  EXPECT_THROW(reg.register_op({.name = "x",
                                .replaces = "",
                                .invoke = [](Session&, Backend) {
                                  return fused::OperatorResult{};
                                }}),
               std::logic_error);
  Session s(four_gpus());
  EXPECT_THROW(reg.run("unknown", s, Backend::kFused), std::logic_error);
}

}  // namespace
}  // namespace fcc::fw

// Framework layer: generic Session dispatch, symmetric allocation, and the
// OpRegistry unit behavior (registration rules on a local registry).
#include <gtest/gtest.h>

#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"

namespace fcc::fw {
namespace {

TEST(Session, SymmetricEmptyAllocatesPerPe) {
  Session s(smoke_machine_config());
  auto buf = s.symmetric_empty(128);
  EXPECT_EQ(buf->num_pes(), 4);
  EXPECT_EQ(buf->size(), 128u);
  buf->pe(3)[0] = 1.0f;
  EXPECT_EQ(buf->pe(0)[0], 0.0f);
}

TEST(Session, GenericRunDispatchesBothBackends) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = 4096;
  cfg.k_global = 4096;
  cfg.functional = false;
  const auto spec = make_spec("fcc::gemv_allreduce", cfg);

  Session sf(smoke_machine_config());
  const auto rf = sf.run(spec, Backend::kFused);
  Session sb(smoke_machine_config());
  const auto rb = sb.run(spec, Backend::kBaseline);
  EXPECT_GT(rf.duration(), 0);
  EXPECT_GT(rb.duration(), 0);
  EXPECT_LT(rf.duration(), rb.duration());
}

TEST(Session, EmbeddingOpDispatches) {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 4;
  cfg.map.tables_per_pe = 4;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.functional = false;

  Session s(smoke_machine_config());
  const auto r = s.run(make_spec("fcc::embedding_a2a", cfg), Backend::kFused);
  EXPECT_GT(r.duration(), 0);
}

TEST(Registry, RegistersAndRunsOnLocalRegistry) {
  OpRegistry reg;
  reg.register_op(
      {.name = "local::gemv",
       .replaces = "aten::mv + c10d::all_reduce",
       .make = [](shmem::World& world, const OpSpec& spec, Backend backend)
           -> std::unique_ptr<fused::FusedOp> {
         const auto& cfg = spec_config<fused::GemvAllReduceConfig>(spec);
         if (backend == Backend::kFused) {
           return std::make_unique<fused::FusedGemvAllReduce>(world, cfg,
                                                              nullptr);
         }
         return std::make_unique<fused::BaselineGemvAllReduce>(world, cfg,
                                                               nullptr);
       }});
  EXPECT_TRUE(reg.contains("local::gemv"));
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_EQ(reg.names().size(), 1u);
  EXPECT_EQ(reg.at("local::gemv").replaces, "aten::mv + c10d::all_reduce");

  fused::GemvAllReduceConfig cfg;
  cfg.m = 2048;
  cfg.k_global = 2048;
  cfg.functional = false;

  // Dispatch through Session::run against the local registry.
  Session s(smoke_machine_config());
  const auto r = s.run(make_spec("local::gemv", cfg), Backend::kFused, reg);
  EXPECT_GT(r.duration(), 0);
}

TEST(Registry, RejectsDuplicatesAndUnknown) {
  OpRegistry reg;
  const auto null_factory = [](shmem::World&, const OpSpec&,
                               Backend) -> std::unique_ptr<fused::FusedOp> {
    return nullptr;
  };
  reg.register_op({.name = "x", .replaces = "", .make = null_factory});
  EXPECT_THROW(
      reg.register_op({.name = "x", .replaces = "", .make = null_factory}),
      std::logic_error);

  Session s(smoke_machine_config());
  EXPECT_THROW(s.run(make_spec("unknown", 0), Backend::kFused, reg),
               std::logic_error);
}

TEST(Registry, RejectsMissingNameOrFactory) {
  OpRegistry reg;
  EXPECT_THROW(reg.register_op({.name = "",
                                .replaces = "",
                                .make = [](shmem::World&, const OpSpec&,
                                           Backend)
                                    -> std::unique_ptr<fused::FusedOp> {
                                  return nullptr;
                                }}),
               std::logic_error);
  EXPECT_THROW(reg.register_op({.name = "no_factory",
                                .replaces = "",
                                .make = nullptr,
                                .smoke_spec = nullptr}),
               std::logic_error);
}

TEST(Registry, WrongConfigTypeThrowsBadAnyCast) {
  fused::GemvAllReduceConfig cfg;
  cfg.functional = false;
  // embedding_a2a's factory will any_cast the config to EmbeddingA2AConfig.
  Session s(smoke_machine_config());
  EXPECT_THROW(s.run(make_spec("fcc::embedding_a2a", cfg), Backend::kFused),
               std::bad_any_cast);
}

TEST(Registry, WrongConfigTypeErrorNamesTheOp) {
  fused::GemvAllReduceConfig cfg;
  cfg.functional = false;
  Session s(smoke_machine_config());
  try {
    s.run(make_spec("fcc::embedding_a2a", cfg), Backend::kFused);
    FAIL() << "expected SpecTypeError";
  } catch (const std::bad_any_cast& e) {  // SpecTypeError is-a bad_any_cast
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fcc::embedding_a2a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("config"), std::string::npos) << msg;
  }
}

TEST(Registry, WrongDataTypeThrowsBadAnyCast) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = 2048;
  cfg.k_global = 2048;
  cfg.functional = false;
  int not_gemv_data = 0;
  // gemv_allreduce's factory will any_cast the data to GemvAllReduceData*.
  Session s(smoke_machine_config());
  EXPECT_THROW(
      s.run(make_spec("fcc::gemv_allreduce", cfg, &not_gemv_data),
            Backend::kFused),
      std::bad_any_cast);
}

TEST(Registry, WrongDataTypeErrorNamesTheOp) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = 2048;
  cfg.k_global = 2048;
  cfg.functional = false;
  int not_gemv_data = 0;
  Session s(smoke_machine_config());
  try {
    s.run(make_spec("fcc::gemv_allreduce", cfg, &not_gemv_data),
          Backend::kFused);
    FAIL() << "expected SpecTypeError";
  } catch (const std::bad_any_cast& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fcc::gemv_allreduce"), std::string::npos) << msg;
    EXPECT_NE(msg.find("data"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace fcc::fw

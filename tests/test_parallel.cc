// ThreadPool / parallel_for correctness under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace fcc::par {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 100);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(pool, 0, 5000,
               [&](std::int64_t i) {
                 hits[static_cast<size_t>(i)].fetch_add(1);
               },
               /*grain=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int touched = 0;
  parallel_for(pool, 10, 10, [&](std::int64_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ParallelFor, MatchesSerialSum) {
  ThreadPool pool(4);
  std::vector<std::int64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 0, static_cast<std::int64_t>(data.size()),
               [&](std::int64_t i) {
                 sum.fetch_add(data[static_cast<size_t>(i)]);
               },
               /*grain=*/128);
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(RunBatch, CoversEveryIndexExactlyOnceAcrossGrains) {
  ThreadPool pool(4);
  for (const std::int64_t grain : {1, 3, 64, 10000}) {
    std::vector<std::atomic<int>> hits(3001);
    std::function<void(std::int64_t)> body = [&](std::int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    };
    pool.run_batch(0, 3001, body, grain);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(RunBatch, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(2);
  int touched = 0;
  std::function<void(std::int64_t)> body = [&](std::int64_t) { ++touched; };
  pool.run_batch(5, 5, body);
  pool.run_batch(9, 3, body);
  EXPECT_EQ(touched, 0);
}

TEST(RunBatch, CallerDrainsWithSingleWorkerPool) {
  // A 1-thread pool still completes: the calling thread claims chunks too.
  ThreadPool pool(1);
  std::atomic<std::int64_t> sum{0};
  std::function<void(std::int64_t)> body = [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  };
  pool.run_batch(0, 1000, body, /*grain=*/7);
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(RunBatch, ReusableBackToBackAndInterleavedWithSubmit) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::function<void(std::int64_t)> body = [&](std::int64_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  };
  for (int wave = 0; wave < 4; ++wave) {
    pool.run_batch(0, 250, body, 8);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 300);
  }
}

TEST(RunBatch, ConcurrentCallersSerialize) {
  // Two threads each running their own batch through one pool must both
  // complete correctly (batches serialize on an internal mutex).
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  std::function<void(std::int64_t)> body = [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  };
  std::thread a([&] { pool.run_batch(0, 2000, body, 16); });
  std::thread b([&] { pool.run_batch(0, 2000, body, 16); });
  a.join();
  b.join();
  EXPECT_EQ(sum.load(), 2 * (1999LL * 2000 / 2));
}

TEST(SerialFor, RunsInOrder) {
  std::vector<std::int64_t> order;
  serial_for(0, 5, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace fcc::par

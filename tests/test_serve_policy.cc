// Property tests for the serving layer's host-side policy objects: the
// streaming PercentileSketch (vs exact sorted-sample percentiles) and the
// continuous Batcher (batch bound, FIFO within class, priority order,
// aging-based starvation freedom, bounded-queue admission).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "serve/batcher.h"

namespace fcc::serve {
namespace {

// ---------------------------------------------------------------------------
// PercentileSketch vs exact sort
// ---------------------------------------------------------------------------

std::int64_t exact_nearest_rank(std::vector<std::int64_t> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p / 100.0 * static_cast<double>(xs.size()))));
  return xs[static_cast<std::size_t>(rank - 1)];
}

void expect_tracks_exact(const std::vector<std::int64_t>& xs) {
  PercentileSketch sketch;
  for (const std::int64_t x : xs) sketch.add(x);
  ASSERT_EQ(sketch.count(), static_cast<std::int64_t>(xs.size()));
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::int64_t exact = exact_nearest_rank(xs, p);
    const std::int64_t got = sketch.percentile(p);
    // The sketch reports the upper edge of the exact sample's log-linear
    // bucket: never below the exact value, and within one sub-bucket width
    // (value / 2^kSubBits) above it.
    EXPECT_GE(got, exact) << "p=" << p;
    EXPECT_LE(got, exact + exact / (1 << PercentileSketch::kSubBits) + 1)
        << "p=" << p;
  }
  EXPECT_EQ(sketch.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(sketch.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(PercentileSketch, TracksExactSortOnUniformSamples) {
  Rng rng(101);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.next_int(0, 999));
  expect_tracks_exact(xs);
}

TEST(PercentileSketch, TracksExactSortOnLogUniformSamples) {
  // Latency-shaped data: values spanning ns..seconds (9 decades).
  Rng rng(202);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 5000; ++i) {
    const double mag = rng.next_double(0.0, 9.0);
    xs.push_back(static_cast<std::int64_t>(std::pow(10.0, mag)));
  }
  expect_tracks_exact(xs);
}

TEST(PercentileSketch, TracksExactSortOnHeavyTail) {
  // Mostly-fast with a 1% slow tail — the p999-matters shape.
  Rng rng(303);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 10000; ++i) {
    xs.push_back(rng.next_double() < 0.99 ? rng.next_int(100, 200)
                                          : rng.next_int(50000, 100000));
  }
  expect_tracks_exact(xs);
}

TEST(PercentileSketch, SmallValuesAreExact) {
  // Values below 2*2^kSubBits map to unit-width buckets: no error at all.
  PercentileSketch sketch;
  for (std::int64_t v = 0; v < 64; ++v) sketch.add(v);
  EXPECT_EQ(sketch.percentile(50.0), 31);
  EXPECT_EQ(sketch.percentile(100.0), 63);
  EXPECT_EQ(sketch.min(), 0);
}

TEST(PercentileSketch, PercentilesAreMonotoneInP) {
  Rng rng(404);
  PercentileSketch sketch;
  for (int i = 0; i < 2000; ++i) sketch.add(rng.next_int(0, 1 << 20));
  std::int64_t prev = 0;
  for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::int64_t v = sketch.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(PercentileSketch, MergeMatchesCombinedStream) {
  Rng rng(505);
  PercentileSketch a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.next_int(0, 1 << 16);
    const std::int64_t y = rng.next_int(1 << 10, 1 << 24);
    a.add(x);
    b.add(y);
    combined.add(x);
    combined.add(y);
  }
  a.merge(b);
  EXPECT_EQ(a, combined);  // bit-identical state, not just close quantiles
}

TEST(PercentileSketch, EmptyAndIdentityProperties) {
  PercentileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
  PercentileSketch t;
  t.merge(s);  // merging empty is a no-op
  EXPECT_EQ(t, s);
  s.add(42);
  PercentileSketch u;
  u.add(42);
  EXPECT_EQ(s, u);  // identical streams compare equal
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

BatchPolicy small_policy() {
  BatchPolicy p;
  p.max_batch = 4;
  p.window_ns = 100;
  p.queue_capacity = 6;
  p.starvation_limit = 3;
  return p;
}

TEST(Batcher, PartialBatchWaitsOutTheWindow) {
  Batcher b({0}, small_policy());
  ASSERT_TRUE(b.enqueue({0, 0, 1000}));
  EXPECT_FALSE(b.poll(1000).has_value());
  EXPECT_FALSE(b.poll(1099).has_value());
  EXPECT_EQ(b.next_deadline(), 1100);
  const auto batch = b.poll(1100);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->reqs.size(), 1u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.next_deadline(), Batcher::kNoDeadline);
}

TEST(Batcher, FullBatchDispatchesImmediately) {
  Batcher b({0}, small_policy());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(b.enqueue({i, 0, 50}));
  const auto batch = b.poll(50);  // window has NOT elapsed
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->reqs.size(), 4u);
}

TEST(Batcher, ZeroCapacityRejectsInsteadOfDividingOrHanging) {
  // queue_capacity = 0 is the fully-shedding server: every enqueue is an
  // admission reject, poll never produces, next_deadline never arms.
  BatchPolicy p = small_policy();
  p.queue_capacity = 0;
  Batcher b({0, 1}, p);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(b.enqueue({i, i % 2, TimeNs(i * 10)}));
  }
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.queued(0), 0u);
  EXPECT_FALSE(b.poll(1'000'000).has_value());
  EXPECT_EQ(b.next_deadline(), Batcher::kNoDeadline);
}

TEST(Batcher, RejectsPastQueueCapacityAndRecoversAfterDrain) {
  Batcher b({0}, small_policy());
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(b.enqueue({i, 0, 0}));
  EXPECT_FALSE(b.enqueue({6, 0, 0}));  // admission reject, no state change
  EXPECT_EQ(b.queued(0), 6u);
  ASSERT_TRUE(b.poll(0).has_value());  // releases max_batch = 4
  EXPECT_EQ(b.queued(0), 2u);
  EXPECT_TRUE(b.enqueue({7, 0, 0}));
}

TEST(Batcher, LowerPriorityValueWinsAmongDispatchable) {
  Batcher b({1, 0}, small_policy());  // class 1 is the urgent one
  ASSERT_TRUE(b.enqueue({0, 0, 0}));
  ASSERT_TRUE(b.enqueue({1, 1, 0}));
  const auto first = b.poll(200);  // both windows elapsed
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cls, 1);
  const auto second = b.poll(200);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->cls, 0);
}

TEST(Batcher, StarvedClassPreemptsHigherPriority) {
  BatchPolicy pol = small_policy();
  pol.max_batch = 2;
  pol.window_ns = 0;  // everything queued is immediately dispatchable
  Batcher b({0, 1}, pol);
  int id = 0;
  ASSERT_TRUE(b.enqueue({id++, 1, 0}));  // the low-priority victim
  int polls_until_victim = -1;
  for (int i = 0; i < 10; ++i) {
    // Keep the high-priority class dispatchable forever.
    ASSERT_TRUE(b.enqueue({id++, 0, 0}));
    ASSERT_TRUE(b.enqueue({id++, 0, 0}));
    const auto batch = b.poll(0);
    ASSERT_TRUE(batch.has_value());
    if (batch->cls == 1) {
      polls_until_victim = i;
      break;
    }
  }
  // Passed over starvation_limit (3) times, served on the next poll.
  EXPECT_EQ(polls_until_victim, 3);
}

TEST(Batcher, RandomizedMaxBatchFifoAndAdmissionProperties) {
  Rng rng(909);
  const BatchPolicy pol = small_policy();
  Batcher b({0, 1, 0}, pol);
  std::vector<std::deque<int>> admitted(3);  // expected FIFO per class
  TimeNs now = 0;
  int next_id = 0;
  auto check_batch = [&](const Batch& batch) {
    ASSERT_GE(batch.reqs.size(), 1u);
    ASSERT_LE(batch.reqs.size(), static_cast<std::size_t>(pol.max_batch));
    for (const Request& r : batch.reqs) {
      ASSERT_FALSE(admitted[static_cast<std::size_t>(batch.cls)].empty());
      // FIFO within class: ids come back in admission order.
      ASSERT_EQ(r.id, admitted[static_cast<std::size_t>(batch.cls)].front());
      admitted[static_cast<std::size_t>(batch.cls)].pop_front();
    }
  };
  for (int step = 0; step < 5000; ++step) {
    now += rng.next_int(0, 60);
    if (rng.next_double() < 0.6) {
      const int cls = static_cast<int>(rng.next_int(0, 2));
      const bool ok = b.enqueue({next_id, cls, now});
      // Admission is exactly "queue below capacity".
      ASSERT_EQ(ok, admitted[static_cast<std::size_t>(cls)].size() <
                        static_cast<std::size_t>(pol.queue_capacity));
      if (ok) admitted[static_cast<std::size_t>(cls)].push_back(next_id);
      ++next_id;
    } else if (const auto batch = b.poll(now)) {
      check_batch(*batch);
    }
  }
  now += pol.window_ns + 1;  // all remaining windows elapsed: drain
  while (const auto batch = b.poll(now)) check_batch(*batch);
  EXPECT_TRUE(b.empty());
  for (const auto& q : admitted) EXPECT_TRUE(q.empty());
}

TEST(Batcher, NextDeadlineIsTheOldestQueuedWindow) {
  Batcher b({0, 0}, small_policy());
  EXPECT_EQ(b.next_deadline(), Batcher::kNoDeadline);
  ASSERT_TRUE(b.enqueue({0, 1, 500}));
  ASSERT_TRUE(b.enqueue({1, 0, 300}));
  EXPECT_EQ(b.next_deadline(), 400);  // class 0's older request
  ASSERT_TRUE(b.poll(400).has_value());
  EXPECT_EQ(b.next_deadline(), 600);
}

}  // namespace
}  // namespace fcc::serve

// Logical-WG scheduling policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/schedule.h"

namespace fcc::gpu {
namespace {

TEST(Schedule, ObliviousIsIdentity) {
  const auto order =
      make_schedule(5, SchedulePolicy::kOblivious, [](int) { return false; });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Schedule, CommAwarePutsRemoteFirst) {
  // Remote: odd indices.
  const auto order = make_schedule(6, SchedulePolicy::kCommAware,
                                   [](int i) { return i % 2 == 1; });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 0, 2, 4}));
}

TEST(Schedule, CommAwareIsStableWithinClasses) {
  const auto order = make_schedule(8, SchedulePolicy::kCommAware,
                                   [](int i) { return i >= 4; });
  EXPECT_EQ(order, (std::vector<int>{4, 5, 6, 7, 0, 1, 2, 3}));
}

TEST(Schedule, EveryWgAppearsExactlyOnce) {
  for (auto policy :
       {SchedulePolicy::kOblivious, SchedulePolicy::kCommAware}) {
    auto order =
        make_schedule(100, policy, [](int i) { return i % 3 == 0; });
    std::sort(order.begin(), order.end());
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Schedule, EmptyGrid) {
  EXPECT_TRUE(
      make_schedule(0, SchedulePolicy::kCommAware, [](int) { return true; })
          .empty());
}

}  // namespace
}  // namespace fcc::gpu

// Fused GEMV + AllReduce: numerics vs baseline vs reference, timing shape.
#include <gtest/gtest.h>

#include <vector>

#include "fused/gemv_allreduce.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "shmem/world.h"

namespace fcc::fused {
namespace {

gpu::Machine::Config scale_up(int gpus = 4) {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = gpus;
  return c;
}

GemvAllReduceConfig small_cfg(int pes) {
  GemvAllReduceConfig cfg;
  cfg.m = 64;
  cfg.k_global = 32 * pes;
  cfg.tile_rows = 8;  // 8 tiles, divisible by pes for pes in {2,4}
  cfg.functional = true;
  return cfg;
}

/// Reference: sum over PEs of W_pe x_pe.
std::vector<float> reference_y(const GemvAllReduceConfig& cfg, int pes,
                               const GemvAllReduceData& data) {
  std::vector<float> y(static_cast<std::size_t>(cfg.m), 0.0f);
  const auto shape = cfg.shape(pes);
  for (int pe = 0; pe < pes; ++pe) {
    const auto part = ops::gemv_reference(
        shape, data.w[static_cast<std::size_t>(pe)],
        data.x[static_cast<std::size_t>(pe)]);
    for (int r = 0; r < cfg.m; ++r) {
      y[static_cast<std::size_t>(r)] += part[static_cast<std::size_t>(r)];
    }
  }
  return y;
}

TEST(FusedGemv, TileOwnershipIsContiguousAndBalanced) {
  gpu::Machine m(scale_up(4));
  shmem::World w(m);
  auto cfg = small_cfg(4);
  cfg.functional = false;
  FusedGemvAllReduce op(w, cfg, nullptr);
  const int tiles = cfg.shape(4).num_tiles();
  std::vector<int> count(4, 0);
  PeId prev = 0;
  for (int t = 0; t < tiles; ++t) {
    const PeId o = op.owner_of_tile(t);
    EXPECT_GE(o, prev);  // contiguous ranges
    prev = o;
    ++count[static_cast<std::size_t>(o)];
  }
  for (int c : count) EXPECT_EQ(c, tiles / 4);
}

TEST(FusedGemv, MatchesReferenceFourGpus) {
  const int pes = 4;
  auto cfg = small_cfg(pes);
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> y(pes, static_cast<std::size_t>(cfg.m));
  auto data = GemvAllReduceData::random(cfg, pes, &y, /*seed=*/31);
  const auto ref = reference_y(cfg, pes, data);

  FusedGemvAllReduce op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = y.pe(pe);
    for (int r = 0; r < cfg.m; ++r) {
      ASSERT_NEAR(got[static_cast<std::size_t>(r)],
                  ref[static_cast<std::size_t>(r)], 1e-3)
          << "pe " << pe << " row " << r;
    }
  }
}

TEST(FusedGemv, MatchesReferenceTwoGpus) {
  const int pes = 2;
  auto cfg = small_cfg(pes);
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> y(pes, static_cast<std::size_t>(cfg.m));
  auto data = GemvAllReduceData::random(cfg, pes, &y, /*seed=*/37);
  const auto ref = reference_y(cfg, pes, data);

  FusedGemvAllReduce(w, cfg, &data).run_to_completion();
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = y.pe(pe);
    for (int r = 0; r < cfg.m; ++r) {
      ASSERT_NEAR(got[static_cast<std::size_t>(r)],
                  ref[static_cast<std::size_t>(r)], 1e-3);
    }
  }
}

TEST(BaselineGemv, MatchesReference) {
  const int pes = 4;
  auto cfg = small_cfg(pes);
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> y(pes, static_cast<std::size_t>(cfg.m));
  auto data = GemvAllReduceData::random(cfg, pes, &y, /*seed=*/41);
  const auto ref = reference_y(cfg, pes, data);

  BaselineGemvAllReduce op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = y.pe(pe);
    for (int r = 0; r < cfg.m; ++r) {
      ASSERT_NEAR(got[static_cast<std::size_t>(r)],
                  ref[static_cast<std::size_t>(r)], 1e-3);
    }
  }
}

TEST(FusedGemv, FusedEqualsBaseline) {
  const int pes = 4;
  auto cfg = small_cfg(pes);

  gpu::Machine mf(scale_up(pes));
  shmem::World wf(mf);
  shmem::SymArray<float> yf(pes, static_cast<std::size_t>(cfg.m));
  auto df = GemvAllReduceData::random(cfg, pes, &yf, /*seed=*/43);
  FusedGemvAllReduce(wf, cfg, &df).run_to_completion();

  gpu::Machine mb(scale_up(pes));
  shmem::World wb(mb);
  shmem::SymArray<float> yb(pes, static_cast<std::size_t>(cfg.m));
  auto db = GemvAllReduceData::random(cfg, pes, &yb, /*seed=*/43);
  BaselineGemvAllReduce(wb, cfg, &db).run_to_completion();

  for (PeId pe = 0; pe < pes; ++pe) {
    auto a = yf.pe(pe);
    auto b = yb.pe(pe);
    for (int r = 0; r < cfg.m; ++r) {
      ASSERT_NEAR(a[static_cast<std::size_t>(r)], b[static_cast<std::size_t>(r)],
                  1e-3);
    }
  }
}

GemvAllReduceConfig timing_cfg(int m, int k) {
  GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = k;
  cfg.functional = false;
  return cfg;
}

TEST(FusedGemv, FusedIsFasterThanBaseline) {
  const auto cfg = timing_cfg(8192, 8192);
  gpu::Machine mf(scale_up(4));
  shmem::World wf(mf);
  const auto rf = FusedGemvAllReduce(wf, cfg, nullptr).run_to_completion();

  gpu::Machine mb(scale_up(4));
  shmem::World wb(mb);
  const auto rb = BaselineGemvAllReduce(wb, cfg, nullptr).run_to_completion();

  EXPECT_LT(rf.duration(), rb.duration());
}

TEST(FusedGemv, RelativeBenefitShrinksAtLargeM) {
  // The Fig. 9 shape: larger outputs raise fabric contention and the fixed
  // overheads amortize, so fused/baseline ratio approaches 1.
  auto ratio = [](int m) {
    const auto cfg = timing_cfg(m, 8192);
    gpu::Machine mf(scale_up(4));
    shmem::World wf(mf);
    const auto rf = FusedGemvAllReduce(wf, cfg, nullptr).run_to_completion();
    gpu::Machine mb(scale_up(4));
    shmem::World wb(mb);
    const auto rb =
        BaselineGemvAllReduce(wb, cfg, nullptr).run_to_completion();
    return static_cast<double>(rf.duration()) /
           static_cast<double>(rb.duration());
  };
  const double small = ratio(8192);
  const double large = ratio(65536);
  EXPECT_LT(small, large);  // more benefit (lower ratio) at small M
  EXPECT_LT(large, 1.0);    // still a win at 64k
}

TEST(FusedGemv, DeterministicAcrossRuns) {
  const auto cfg = timing_cfg(4096, 4096);
  auto once = [&] {
    gpu::Machine m(scale_up(4));
    shmem::World w(m);
    return FusedGemvAllReduce(w, cfg, nullptr).run_to_completion().duration();
  };
  EXPECT_EQ(once(), once());
}

TEST(FusedGemv, RejectsIndivisibleTileCounts) {
  gpu::Machine m(scale_up(4));
  shmem::World w(m);
  GemvAllReduceConfig cfg;
  cfg.m = 48;        // 3 tiles of 16 across 4 GPUs
  cfg.k_global = 64;
  EXPECT_THROW(FusedGemvAllReduce(w, cfg, nullptr), std::logic_error);
}

}  // namespace
}  // namespace fcc::fused

// Fault injection & graceful degradation in the hw layer: multi-rail
// failover, torus detours, PartitionedFabricError on true partitions, the
// healthy-path byte-identity guarantee, chaos-plan determinism, and the
// ccl auto-selection fallback on a degraded fabric.
#include <gtest/gtest.h>

#include <vector>

#include "ccl/communicator.h"
#include "gpu/machine.h"
#include "hw/fault.h"
#include "hw/topology.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace fcc::hw {
namespace {

FabricSpec fabric_80() {
  FabricSpec s;
  s.port_bytes_per_ns = 80.0;
  s.latency_ns = 700;
  return s;
}

FaultEvent kill(Topology& topo, const std::string& site, TimeNs t = 0) {
  const int idx = topo.fault_site_index(site);
  EXPECT_GE(idx, 0) << site;
  FaultEvent ev;
  ev.t = t;
  ev.kind = FaultKind::kDead;
  ev.site = idx;
  return ev;
}

FaultEvent derate(Topology& topo, const std::string& site, double f,
                  TimeNs t = 0) {
  const int idx = topo.fault_site_index(site);
  EXPECT_GE(idx, 0) << site;
  FaultEvent ev;
  ev.t = t;
  ev.kind = FaultKind::kDerate;
  ev.site = idx;
  ev.derate = f;
  return ev;
}

FaultEvent jitter(Topology& topo, const std::string& site, TimeNs j,
                  TimeNs t = 0) {
  const int idx = topo.fault_site_index(site);
  EXPECT_GE(idx, 0) << site;
  FaultEvent ev;
  ev.t = t;
  ev.kind = FaultKind::kJitter;
  ev.site = idx;
  ev.jitter_ns = j;
  return ev;
}

FaultEvent repair(Topology& topo, const std::string& site, TimeNs t = 0) {
  const int idx = topo.fault_site_index(site);
  EXPECT_GE(idx, 0) << site;
  FaultEvent ev;
  ev.t = t;
  ev.kind = FaultKind::kRepair;
  ev.site = idx;
  return ev;
}

TEST(FaultSites, EnumerationIsStableAndNamed) {
  MultiRailTopology topo(2, 4, 2, fabric_80(), {});
  const auto& sites = topo.fault_sites();
  // 2 nodes x 2 rails x (nic + wire).
  EXPECT_EQ(sites.size(), 8u);
  EXPECT_GE(topo.fault_site_index("node0.rail0"), 0);
  EXPECT_GE(topo.fault_site_index("node1.rail1.wire"), 0);
  EXPECT_EQ(topo.fault_site_index("nonexistent"), -1);
  EXPECT_FALSE(topo.has_faults());
  EXPECT_TRUE(topo.active_faults().empty());
}

TEST(MultiRailFaults, DeadRailFailsOverToSurvivingRail) {
  MultiRailTopology topo(2, 4, 2, fabric_80(), {});
  Route r;
  topo.resolve(0, 4, r);  // pe0 (node0, local 0) -> node1: affinity rail0
  ASSERT_NE(r.nic, nullptr);
  EXPECT_EQ(r.nic->name(), "node0.rail0");

  topo.apply_fault(kill(topo, "node0.rail0"));
  EXPECT_TRUE(topo.has_faults());
  r.clear();
  topo.resolve(0, 4, r);
  ASSERT_NE(r.nic, nullptr);
  EXPECT_EQ(r.nic->name(), "node0.rail1");
  // write_time reroutes too (the bespoke non-resolve path).
  EXPECT_GT(topo.write_time(0, 4, 4096, 0), 0);

  // Both rails dead: node0 cannot reach node1 at all.
  topo.apply_fault(kill(topo, "node0.rail1"));
  r.clear();
  EXPECT_THROW(topo.resolve(0, 4, r), PartitionedFabricError);
  EXPECT_THROW(topo.write_time(0, 4, 4096, 0), PartitionedFabricError);
  // node1's rails are fine: the reverse direction still routes.
  r.clear();
  topo.resolve(4, 0, r);
  EXPECT_EQ(r.nic->name(), "node1.rail0");

  // Repair restores affinity routing.
  topo.apply_fault(repair(topo, "node0.rail0"));
  r.clear();
  topo.resolve(0, 4, r);
  EXPECT_EQ(r.nic->name(), "node0.rail0");
}

TEST(MultiRailFaults, PartitionedErrorCarriesEndpoints) {
  MultiRailTopology topo(2, 1, 1, fabric_80(), {});
  topo.apply_fault(kill(topo, "node0.rail0"));
  Route r;
  try {
    topo.resolve(0, 1, r);
    FAIL() << "expected PartitionedFabricError";
  } catch (const PartitionedFabricError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_NE(std::string(e.what()).find("node0"), std::string::npos);
  }
}

TEST(TorusFaults, DeadLinkTakesDetour) {
  TorusSpec spec;
  spec.dim_x = 4;
  spec.dim_y = 2;
  TorusTopology topo(spec);

  Route r;
  topo.resolve(0, 1, r);  // (0,0) -> (1,0): one +x hop
  ASSERT_EQ(r.hops.size(), 1u);
  EXPECT_EQ(r.hops[0]->name(), "node0.+x");

  topo.apply_fault(kill(topo, "node0.+x"));
  r.clear();
  topo.resolve(0, 1, r);
  // Shortest surviving path is 3 hops (the -x way around the row ring or
  // over the other row); it must avoid the dead link.
  EXPECT_EQ(r.hops.size(), 3u);
  for (const Link* hop : r.hops) EXPECT_NE(hop->name(), "node0.+x");
  EXPECT_EQ(r.latency_ns, 3 * spec.link_latency_ns);

  // Repair: back to the single-hop dimension-ordered route.
  topo.apply_fault(repair(topo, "node0.+x"));
  r.clear();
  topo.resolve(0, 1, r);
  EXPECT_EQ(r.hops.size(), 1u);
  EXPECT_EQ(r.hops[0]->name(), "node0.+x");
}

TEST(TorusFaults, FullyCutNodePartitionsOutboundOnly) {
  TorusSpec spec;
  spec.dim_x = 4;
  spec.dim_y = 2;
  TorusTopology topo(spec);
  // Kill every egress of node0; its ingress links (owned by neighbours)
  // survive, so traffic *into* node0 still routes.
  for (const char* site : {"node0.+x", "node0.-x", "node0.+y", "node0.-y"}) {
    topo.apply_fault(kill(topo, site));
  }
  Route r;
  EXPECT_THROW(topo.resolve(0, 1, r), PartitionedFabricError);
  r.clear();
  topo.resolve(1, 0, r);
  EXPECT_GE(r.hops.size(), 1u);
}

TEST(TorusFaults, DetourCacheInvalidatesOnHealthChange) {
  TorusSpec spec;
  spec.dim_x = 4;
  spec.dim_y = 2;
  TorusTopology topo(spec);
  topo.apply_fault(kill(topo, "node0.+x"));
  Route r;
  topo.resolve(0, 1, r);
  EXPECT_EQ(r.hops.size(), 3u);
  // A second fault elsewhere must invalidate the cached detour (the cache
  // is per fault epoch); killing the detour's first hop forces a new path.
  const std::string first_hop = r.hops[0]->name();
  topo.apply_fault(kill(topo, first_hop));
  r.clear();
  topo.resolve(0, 1, r);
  for (const Link* hop : r.hops) {
    EXPECT_NE(hop->name(), "node0.+x");
    EXPECT_NE(hop->name(), first_hop);
  }
}

TEST(SwitchedFaults, TrunkDerateSlowsAndJitterShifts) {
  SwitchedSpec sw;
  sw.trunk_bytes_per_ns = 300.0;
  const Bytes bytes = 1 << 20;

  SwitchedTopology healthy(1, 8, sw, {});
  const TimeNs base = healthy.write_time(0, 1, bytes, 0);

  SwitchedTopology derated(1, 8, sw, {});
  derated.apply_fault(derate(derated, "node0.trunk", 0.25));
  EXPECT_GT(derated.write_time(0, 1, bytes, 0), base);

  SwitchedTopology jittered(1, 8, sw, {});
  jittered.apply_fault(jitter(jittered, "node0.trunk", 500));
  EXPECT_EQ(jittered.write_time(0, 1, bytes, 0), base + 500);
}

TEST(FullyConnectedFaults, DeadNicPartitionsInterNodeOnly) {
  FullyConnectedTopology topo(2, 2, fabric_80(), {});
  topo.apply_fault(kill(topo, "node0"));
  EXPECT_THROW(topo.write_time(0, 2, 4096, 0), PartitionedFabricError);
  Route r;
  EXPECT_THROW(topo.resolve(0, 2, r), PartitionedFabricError);
  // Intra-node and the other node's NIC are untouched.
  EXPECT_GT(topo.write_time(0, 1, 4096, 0), 0);
  EXPECT_GT(topo.write_time(2, 0, 4096, 0), 0);
}

TEST(FaultModel, HealthyIdentityEventsAreByteIdentical) {
  // derate(1.0), jitter(0), and derate-then-repair are arithmetic
  // identities: a topology that saw them times every transfer byte-for-byte
  // like one that never saw a FaultPlan — stateful link horizons included.
  FullyConnectedTopology a(2, 2, fabric_80(), {});
  FullyConnectedTopology b(2, 2, fabric_80(), {});
  b.apply_fault(derate(b, "node0.wire", 1.0));
  b.apply_fault(jitter(b, "node1.wire", 0));
  b.apply_fault(derate(b, "node0.wire", 0.5));
  b.apply_fault(repair(b, "node0.wire"));
  EXPECT_FALSE(b.has_faults());
  const PeId pairs[][2] = {{0, 2}, {0, 1}, {2, 0}, {3, 1}, {1, 3}, {0, 2}};
  TimeNs ready = 0;
  for (const auto& p : pairs) {
    const TimeNs ta = a.write_time(p[0], p[1], 123457, ready);
    const TimeNs tb = b.write_time(p[0], p[1], 123457, ready);
    EXPECT_EQ(ta, tb);
    ready = ta / 2;
  }
}

TEST(ChaosPlan, SeededAndDeterministic) {
  MultiRailTopology topo(2, 4, 2, fabric_80(), {});
  ChaosSpec spec;
  spec.num_events = 8;
  const FaultPlan p1 = make_chaos_plan(topo, 42, spec);
  const FaultPlan p2 = make_chaos_plan(topo, 42, spec);
  EXPECT_EQ(p1.events, p2.events);
  const FaultPlan p3 = make_chaos_plan(topo, 43, spec);
  EXPECT_NE(p1.events, p3.events);
  EXPECT_GE(p1.events.size(), 8u);  // repairs may add more
  p1.validate(topo);
  // Default spec never kills (survivable schedules for serving chaos).
  for (const FaultEvent& ev : p1.events) {
    EXPECT_NE(ev.kind, FaultKind::kDead);
  }
}

TEST(ChaosPlan, ScheduledPlanAppliesAtEventTimes) {
  sim::Engine engine;
  MultiRailTopology topo(2, 4, 2, fabric_80(), {});
  FaultPlan plan;
  plan.events.push_back(derate(topo, "node0.rail0.wire", 0.5, 100));
  plan.events.push_back(repair(topo, "node0.rail0.wire", 300));
  schedule_fault_plan(engine, topo, plan, 0);
  EXPECT_FALSE(topo.has_faults());
  engine.run();
  EXPECT_FALSE(topo.has_faults());  // repaired by the end
  EXPECT_EQ(topo.fault_epoch(), 2u);
}

}  // namespace
}  // namespace fcc::hw

namespace fcc::ccl {
namespace {

std::vector<PeId> all_pes(gpu::Machine& m) {
  std::vector<PeId> v;
  for (int i = 0; i < m.num_pes(); ++i) v.push_back(i);
  return v;
}

sim::Task run_all_reduce(Communicator& comm, std::int64_t n_elems,
                         TimeNs& done) {
  co_await comm.all_reduce(n_elems, FloatBufs{});
  done = comm.machine().engine().now();
}

TEST(DegradedCollectives, DeadRailDropsHierarchyAndRecovers) {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 4;
  mc.topology.kind = hw::TopologySpec::Kind::kMultiRail;
  mc.topology.nic_rails = 2;
  gpu::Machine m(mc);
  Communicator comm(m, all_pes(m));
  EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kHierarchical);
  EXPECT_EQ(comm.select_a2a(), AllToAllAlgo::kNodeAggregate);
  EXPECT_FALSE(comm.degraded_plan().degraded);

  hw::Topology& topo = m.topology();
  hw::FaultEvent ev;
  ev.kind = hw::FaultKind::kDead;
  ev.site = topo.fault_site_index("node0.rail0");
  ASSERT_GE(ev.site, 0);
  topo.apply_fault(ev);

  EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kTwoPhaseDirect);
  EXPECT_EQ(comm.select_a2a(), AllToAllAlgo::kPairwise);
  const DegradedPlan plan = comm.degraded_plan();
  EXPECT_TRUE(plan.degraded);
  ASSERT_EQ(plan.avoided.size(), 1u);
  EXPECT_EQ(plan.avoided[0], "node0.rail0");
  EXPECT_DOUBLE_EQ(plan.allreduce_traffic_factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.a2a_message_factor, 16.0);

  // kAuto must complete on the degraded fabric: the flat algorithm's writes
  // fail over to the surviving rail instead of throwing.
  TimeNs done = 0;
  run_all_reduce(comm, 1 << 16, done);
  m.engine().run();
  EXPECT_GT(done, 0);

  ev.kind = hw::FaultKind::kRepair;
  topo.apply_fault(ev);
  EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kHierarchical);
  EXPECT_FALSE(comm.degraded_plan().degraded);
}

TEST(DegradedCollectives, DeratedWireAlsoDropsHierarchy) {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 4;
  gpu::Machine m(mc);  // fully-connected default
  Communicator comm(m, all_pes(m));
  EXPECT_EQ(comm.select_allreduce(), AllReduceAlgo::kHierarchical);

  hw::Topology& topo = m.topology();
  hw::FaultEvent ev;
  ev.kind = hw::FaultKind::kDerate;
  ev.site = topo.fault_site_index("node1.wire");
  ev.derate = 0.3;
  ASSERT_GE(ev.site, 0);
  topo.apply_fault(ev);

  const DegradedPlan plan = comm.degraded_plan();
  EXPECT_TRUE(plan.degraded);
  EXPECT_EQ(plan.allreduce, AllReduceAlgo::kTwoPhaseDirect);
  // The wire's ill-health surfaces through its owning NIC site ("node1");
  // either spelling identifies the degraded component.
  ASSERT_FALSE(plan.avoided.empty());
  EXPECT_EQ(plan.avoided[0].rfind("node1", 0), 0u);
}

}  // namespace
}  // namespace fcc::ccl

// Determinism regression suite for the simulation core.
//
// The engine's contract is bit-reproducibility: events fire in (time,
// insertion-sequence) order, so a given workload produces exactly one
// simulated timeline. The golden numbers below were recorded from the seed
// engine (std::priority_queue + Condition broadcast wakeups); any engine or
// wakeup-protocol rewrite must reproduce them exactly — host-side speed may
// change, simulated nanoseconds may not.
//
// The traces intentionally mix operators on one engine (gemv_allreduce and
// moe_dispatch under 4x expert skew interleave their events) so that any
// change in same-time event ordering, wakeup targeting, or heap pop order
// shifts at least one recorded timestamp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/perf_json.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"
#include "fused/moe_dispatch.h"
#include "gpu/machine.h"
#include "shmem/world.h"
#include "sim/task.h"
#include "sweep_runner.h"

namespace fcc {
namespace {

/// Everything observable about one simulation that depends on the full
/// event cascade: end-to-end times, per-PE completion stamps, per-device
/// busy time, and the PUT count.
struct TimingTrace {
  TimeNs final_now = 0;
  std::int64_t puts = 0;
  std::vector<TimeNs> op_end;             // per spawned operator
  std::vector<std::vector<TimeNs>> pe_end;  // per operator, per PE
  std::vector<TimeNs> busy;               // per device busy_ns

  bool operator==(const TimingTrace&) const = default;

  std::string str() const {
    std::ostringstream os;
    os << "final_now=" << final_now << " puts=" << puts << "\n";
    for (std::size_t i = 0; i < op_end.size(); ++i) {
      os << "op" << i << " end=" << op_end[i] << " pe_end={";
      for (auto t : pe_end[i]) os << t << ",";
      os << "}\n";
    }
    os << "busy={";
    for (auto b : busy) os << b << ",";
    os << "}";
    return os.str();
  }
};

sim::Task spawn_op(sim::Engine&, fused::FusedOp& op) { co_await op.run(); }

TimingTrace collect(gpu::Machine& m, shmem::World& w,
                    std::vector<fused::FusedOp*> ops) {
  for (auto* op : ops) spawn_op(m.engine(), *op);
  m.engine().run();
  EXPECT_EQ(m.engine().live_tasks(), 0);
  TimingTrace tr;
  tr.final_now = m.engine().now();
  tr.puts = w.puts_issued();
  for (auto* op : ops) {
    tr.op_end.push_back(op->result().end);
    tr.pe_end.push_back(op->result().pe_end);
  }
  for (PeId pe = 0; pe < m.num_pes(); ++pe) {
    tr.busy.push_back(m.device(pe).busy_ns());
  }
  return tr;
}

/// gemv_allreduce and moe_dispatch (4x hot expert) sharing one engine.
TimingTrace mixed_workload() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine m(mc);
  shmem::World w(m);

  fused::GemvAllReduceConfig gcfg;
  gcfg.m = 2048;
  gcfg.k_global = 4096;
  gcfg.functional = false;

  fused::MoeDispatchConfig dcfg;
  dcfg.tokens_per_pe = 256;
  dcfg.d_model = 512;
  dcfg.d_out = 512;
  dcfg.hot_expert_factor = 4.0;
  dcfg.functional = false;

  fused::FusedGemvAllReduce gemv(w, gcfg, nullptr);
  fused::FusedMoeDispatch moe(w, dcfg, nullptr);
  return collect(m, w, {&gemv, &moe});
}

/// Baselines under the same mixing (collective paths, Semaphore/quiet).
TimingTrace mixed_baselines() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine m(mc);
  shmem::World w(m);

  fused::GemvAllReduceConfig gcfg;
  gcfg.m = 2048;
  gcfg.k_global = 4096;
  gcfg.functional = false;

  fused::MoeDispatchConfig dcfg;
  dcfg.tokens_per_pe = 256;
  dcfg.d_model = 512;
  dcfg.d_out = 512;
  dcfg.hot_expert_factor = 4.0;
  dcfg.functional = false;

  fused::BaselineGemvAllReduce gemv(w, gcfg, nullptr);
  fused::BaselineMoeDispatch moe(w, dcfg, nullptr);
  return collect(m, w, {&gemv, &moe});
}

/// Cross-node embedding+A2A (RDMA path, persistent KernelRun, sliceRdy).
TimingTrace internode_embedding() {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 1;
  gpu::Machine m(mc);
  shmem::World w(m);

  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = 2;
  cfg.map.tables_per_pe = 16;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.pooling = 16;
  cfg.functional = false;

  fused::FusedEmbeddingAllToAll emb(w, cfg, nullptr);
  return collect(m, w, {&emb});
}

// Golden traces recorded from the seed engine. FCC_GOLDEN markers below are
// grep anchors for re-recording (print the actual on mismatch).

TEST(SimDeterminism, MixedFusedWorkloadMatchesSeedEngine) {
  const TimingTrace t = mixed_workload();
  TimingTrace g;
  // FCC_GOLDEN mixed_fused
  g.final_now = 253715;
  g.puts = 4320;
  g.op_end = {20422, 253715};
  g.pe_end = {{18122, 18272, 18422, 17743}, {251715, 251715, 251715, 251715}};
  g.busy = {18635861, 18640478, 18640207, 18639987};
  EXPECT_EQ(t, g) << "actual:\n" << t.str();
}

TEST(SimDeterminism, MixedBaselineWorkloadMatchesSeedEngine) {
  const TimingTrace t = mixed_baselines();
  TimingTrace g;
  // FCC_GOLDEN mixed_baseline
  g.final_now = 260195;
  g.puts = 0;
  g.op_end = {34995, 260195};
  g.pe_end = {{34995, 34995, 34995, 34995}, {260195, 260195, 260195, 260195}};
  g.busy = {14941483, 14941483, 14941483, 14941483};
  EXPECT_EQ(t, g) << "actual:\n" << t.str();
}

TEST(SimDeterminism, InternodeEmbeddingMatchesSeedEngine) {
  const TimingTrace t = internode_embedding();
  TimingTrace g;
  // FCC_GOLDEN internode_embedding
  g.final_now = 73040;
  g.puts = 512;
  g.op_end = {73040};
  g.pe_end = {{71040, 71040}};
  g.busy = {3313923, 3313923};
  EXPECT_EQ(t, g) << "actual:\n" << t.str();
}

TEST(SimDeterminism, RepeatedRunsAreBitIdentical) {
  EXPECT_EQ(mixed_workload(), mixed_workload());
  EXPECT_EQ(internode_embedding(), internode_embedding());
}

/// One thread-pool sweep point: an independent moe_dispatch simulation.
TimeNs sweep_point(int i) {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  gpu::Machine m(mc);
  shmem::World w(m);
  fused::MoeDispatchConfig cfg;
  cfg.tokens_per_pe = 128;
  cfg.d_model = 256;
  cfg.d_out = 256;
  cfg.hot_expert_factor = 1.0 + i;
  cfg.functional = false;
  fused::FusedMoeDispatch op(w, cfg, nullptr);
  return op.run_to_completion().duration();
}

TEST(SweepRunner, ParallelSweepRowsEqualSerialRows) {
  setenv("FCC_BENCH_OUT", "/tmp/fcc_test_sweep_out", 1);
  const int n = 6;
  setenv("FCC_SWEEP_THREADS", "1", 1);
  const auto serial = fccbench::run_sweep<TimeNs>(
      "test_sweep_serial", n, [](int i) { return sweep_point(i); });
  setenv("FCC_SWEEP_THREADS", "4", 1);
  const auto parallel = fccbench::run_sweep<TimeNs>(
      "test_sweep_parallel", n, [](int i) { return sweep_point(i); });
  EXPECT_EQ(serial, parallel);
  for (TimeNs t : serial) EXPECT_GT(t, 0);
  // Both sweeps recorded their host-throughput sections.
  PerfJson perf;
  ASSERT_TRUE(perf.load("/tmp/fcc_test_sweep_out/host_perf.json"));
  EXPECT_TRUE(perf.has("test_sweep_serial"));
  EXPECT_TRUE(perf.has("test_sweep_parallel"));
  EXPECT_DOUBLE_EQ(perf.get("test_sweep_parallel", "threads"), 4.0);
  unsetenv("FCC_SWEEP_THREADS");
  unsetenv("FCC_BENCH_OUT");
  std::filesystem::remove_all("/tmp/fcc_test_sweep_out");
}

}  // namespace
}  // namespace fcc

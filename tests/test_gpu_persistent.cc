// Persistent-kernel runtime and Device compute model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpu/device.h"
#include "gpu/machine.h"
#include "gpu/persistent.h"
#include "gpu/stream.h"
#include "sim/engine.h"

namespace fcc::gpu {
namespace {

Machine::Config one_gpu() {
  Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 1;
  return c;
}

TEST(Device, ComputeDurationMemoryBound) {
  Machine m(one_gpu());
  Device& d = m.device(0);
  WorkCost cost;
  cost.hbm_bytes = 1 << 20;
  // With one active WG, per-WG bandwidth = total_bandwidth(1).
  const double bw = d.hbm().per_wg_bandwidth(1, cost.curve);
  EXPECT_NEAR(static_cast<double>(d.compute_duration(cost, 1)),
              static_cast<double>(1 << 20) / bw, 2.0);
}

TEST(Device, ComputeDurationAluBound) {
  Machine m(one_gpu());
  Device& d = m.device(0);
  WorkCost cost;
  cost.flops = 1e6;
  cost.alu_efficiency = 0.5;
  // One active WG: ALU utilization = 1/alu_saturation_wgs of peak.
  const double per_wg = d.spec().fp32_flops_per_ns * 0.5 /
                        d.spec().alu_saturation_wgs;
  EXPECT_NEAR(static_cast<double>(d.compute_duration(cost, 1)), 1e6 / per_wg,
              2.0);
}

TEST(Device, MaxOfMemAndAluRules) {
  Machine m(one_gpu());
  Device& d = m.device(0);
  WorkCost mem_only{1 << 20, 0, 1.0, {}};
  WorkCost alu_only{0, 1e9, 1.0, {}};
  WorkCost both{1 << 20, 1e9, 1.0, {}};
  EXPECT_EQ(d.compute_duration(both, 1),
            std::max(d.compute_duration(mem_only, 1),
                     d.compute_duration(alu_only, 1)));
}

WorkCost mem_cost(Bytes bytes) {
  WorkCost c;
  c.hbm_bytes = bytes;
  return c;
}

sim::Co count_body(Machine& m, std::vector<int>& executed, int lw) {
  executed.push_back(lw);
  co_await m.device(0).compute(mem_cost(1024));
}

TEST(KernelRun, ExecutesEveryLogicalWgOnce) {
  Machine m(one_gpu());
  std::vector<int> executed;
  KernelRun::Params p;
  p.num_slots = 4;
  for (int i = 0; i < 37; ++i) p.order.push_back(i);
  p.body = [&](int, int lw) { return count_body(m, executed, lw); };
  KernelRun run(m.engine(), p);
  run.start();
  m.engine().run();
  EXPECT_TRUE(run.finished());
  EXPECT_EQ(executed.size(), 37u);
  std::sort(executed.begin(), executed.end());
  for (int i = 0; i < 37; ++i) EXPECT_EQ(executed[static_cast<size_t>(i)], i);
}

TEST(KernelRun, RespectsExecutionOrderWithOneSlot) {
  Machine m(one_gpu());
  std::vector<int> executed;
  KernelRun::Params p;
  p.num_slots = 1;
  p.order = {3, 1, 2, 0};
  p.body = [&](int, int lw) { return count_body(m, executed, lw); };
  KernelRun run(m.engine(), p);
  run.start();
  m.engine().run();
  EXPECT_EQ(executed, (std::vector<int>{3, 1, 2, 0}));
}

TEST(KernelRun, MoreSlotsThanWorkStillCompletes) {
  Machine m(one_gpu());
  std::vector<int> executed;
  KernelRun::Params p;
  p.num_slots = 64;
  p.order = {0, 1};
  p.body = [&](int, int lw) { return count_body(m, executed, lw); };
  KernelRun run(m.engine(), p);
  run.start();
  m.engine().run();
  EXPECT_TRUE(run.finished());
  EXPECT_EQ(executed.size(), 2u);
  EXPECT_EQ(m.engine().live_tasks(), 0);
}

WorkCost alu_cost(double flops) {
  WorkCost c;
  c.flops = flops;
  return c;
}

TEST(KernelRun, ParallelSlotsOverlapInTime) {
  // ALU throughput is space-partitioned across slots, so 8 equal ALU-bound
  // WGs on 4 slots take ~2 waves, not 8. (Memory-bound WGs at tiny
  // occupancy share one bandwidth pool and would NOT speed up — that is the
  // contention model working, tested in test_hw_hbm.)
  Machine m(one_gpu());
  KernelRun::Params p;
  p.num_slots = 4;
  for (int i = 0; i < 8; ++i) p.order.push_back(i);
  p.body = [&](int, int) -> sim::Co {
    return m.device(0).compute(alu_cost(1e9));
  };
  KernelRun run(m.engine(), p);
  run.start();
  m.engine().run();
  const TimeNs t_parallel = m.engine().now();

  Machine m2(one_gpu());
  KernelRun::Params p2;
  p2.num_slots = 1;
  for (int i = 0; i < 8; ++i) p2.order.push_back(i);
  p2.body = [&](int, int) -> sim::Co {
    return m2.device(0).compute(alu_cost(1e9));
  };
  KernelRun run2(m2.engine(), p2);
  run2.start();
  m2.engine().run();
  const TimeNs t_serial = m2.engine().now();
  EXPECT_LT(t_parallel, t_serial / 2);
}

TEST(KernelRun, RecordsFinishTimes) {
  Machine m(one_gpu());
  KernelRun::Params p;
  p.num_slots = 1;
  p.order = {0, 1};
  p.body = [&](int, int) -> sim::Co {
    return m.device(0).compute(mem_cost(1024));
  };
  KernelRun run(m.engine(), p);
  run.record_finish_times(true);
  run.start();
  m.engine().run();
  ASSERT_EQ(run.finish_times().size(), 2u);
  EXPECT_LT(run.finish_times()[0], run.finish_times()[1]);
}

sim::Co fixed_cost_kernel(Machine& m, TimeNs dur) {
  co_await sim::delay(m.engine(), dur);
}

sim::Task stream_driver(sim::Engine& e, Machine& m, Stream& s, TimeNs& done) {
  s.enqueue([&m] { return fixed_cost_kernel(m, 1000); });
  s.enqueue([&m] { return fixed_cost_kernel(m, 2000); });
  co_await s.sync();
  done = e.now();
}

TEST(Stream, PipelinesLaunchesAndChargesBoundaryOverheads) {
  Machine m(one_gpu());
  Stream s(m.engine(), m.device(0).spec());
  TimeNs done = 0;
  stream_driver(m.engine(), m, s, done);
  m.engine().run();
  const auto& spec = m.device(0).spec();
  // Only the first launch is exposed: the second kernel's launch_ready
  // (t0 + launch + one host-issue gap) lands before kernel 1 finishes.
  EXPECT_EQ(done, spec.kernel_launch_ns + 1000 + 2000 + spec.stream_sync_ns);
}

TEST(Stream, IdleStreamExposesLaunchLatency) {
  Machine m(one_gpu());
  Stream s(m.engine(), m.device(0).spec());
  TimeNs done = 0;
  struct Driver {
    static sim::Task go(sim::Engine& e, Machine& m2, Stream& st, TimeNs& out) {
      auto ev = st.enqueue([&m2] { return fixed_cost_kernel(m2, 500); });
      co_await ev->wait();
      out = e.now();
    }
  };
  Driver::go(m.engine(), m, s, done);
  m.engine().run();
  EXPECT_EQ(done, m.device(0).spec().kernel_launch_ns + 500);
}

}  // namespace
}  // namespace fcc::gpu

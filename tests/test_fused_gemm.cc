// Fused GEMM + All-to-All (MoE combine): numerics and timing shape.
#include <gtest/gtest.h>

#include <vector>

#include "fused/gemm_a2a.h"
#include "gpu/machine.h"
#include "shmem/world.h"

namespace fcc::fused {
namespace {

gpu::Machine::Config scale_up(int gpus = 4) {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = gpus;
  return c;
}

GemmA2AConfig small_cfg() {
  GemmA2AConfig cfg;
  cfg.rows_per_origin = 8;
  cfg.d_model = 12;
  cfg.d_ff = 16;
  cfg.block_m = 4;
  cfg.block_n = 8;
  cfg.functional = true;
  return cfg;
}

/// Reference output at origin o: for each expert e, rows [o*R, (o+1)*R) of
/// C_e = A_e * B_e, laid out [expert][local_row][col].
std::vector<std::vector<float>> reference_out(const GemmA2AConfig& cfg,
                                              int pes,
                                              const GemmA2AData& data) {
  const auto shape = cfg.shape(pes);
  std::vector<std::vector<float>> expect(
      static_cast<std::size_t>(pes),
      std::vector<float>(cfg.out_elems(pes), 0.0f));
  for (int e = 0; e < pes; ++e) {
    const auto c = ops::gemm_reference(shape, data.a[static_cast<std::size_t>(e)],
                                       data.b[static_cast<std::size_t>(e)]);
    for (int o = 0; o < pes; ++o) {
      for (int lr = 0; lr < cfg.rows_per_origin; ++lr) {
        const int r = o * cfg.rows_per_origin + lr;
        for (int j = 0; j < cfg.d_model; ++j) {
          expect[static_cast<std::size_t>(o)]
                [(static_cast<std::size_t>(e) * cfg.rows_per_origin +
                  static_cast<std::size_t>(lr)) *
                     static_cast<std::size_t>(cfg.d_model) +
                 static_cast<std::size_t>(j)] =
              c[static_cast<std::size_t>(r) * cfg.d_model +
                static_cast<std::size_t>(j)];
        }
      }
    }
  }
  return expect;
}

TEST(FusedGemm, OriginMappingCoversAllTiles) {
  gpu::Machine m(scale_up(4));
  shmem::World w(m);
  auto cfg = small_cfg();
  cfg.functional = false;
  FusedGemmAllToAll op(w, cfg, nullptr);
  const auto shape = cfg.shape(4);
  std::vector<int> per_origin(4, 0);
  for (int t = 0; t < shape.num_tiles(); ++t) {
    const PeId o = op.origin_of_tile(t);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 4);
    ++per_origin[static_cast<std::size_t>(o)];
  }
  for (int c : per_origin) EXPECT_EQ(c, shape.num_tiles() / 4);
}

TEST(FusedGemm, MatchesReference) {
  const int pes = 4;
  auto cfg = small_cfg();
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> out(pes, cfg.out_elems(pes));
  auto data = GemmA2AData::random(cfg, pes, &out, /*seed=*/61);
  const auto expect = reference_out(cfg, pes, data);

  FusedGemmAllToAll op(w, cfg, &data);
  const auto res = op.run_to_completion();
  EXPECT_GT(res.duration(), 0);
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = out.pe(pe);
    const auto& want = expect[static_cast<std::size_t>(pe)];
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3) << "pe " << pe << " elem " << i;
    }
  }
}

TEST(BaselineGemm, MatchesReference) {
  const int pes = 4;
  auto cfg = small_cfg();
  gpu::Machine m(scale_up(pes));
  shmem::World w(m);
  shmem::SymArray<float> out(pes, cfg.out_elems(pes));
  auto data = GemmA2AData::random(cfg, pes, &out, /*seed=*/67);
  const auto expect = reference_out(cfg, pes, data);

  BaselineGemmAllToAll op(w, cfg, &data);
  op.run_to_completion();
  for (PeId pe = 0; pe < pes; ++pe) {
    auto got = out.pe(pe);
    const auto& want = expect[static_cast<std::size_t>(pe)];
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3);
    }
  }
}

TEST(FusedGemm, FusedEqualsBaseline) {
  const int pes = 2;
  auto cfg = small_cfg();

  gpu::Machine mf(scale_up(pes));
  shmem::World wf(mf);
  shmem::SymArray<float> of(pes, cfg.out_elems(pes));
  auto df = GemmA2AData::random(cfg, pes, &of, /*seed=*/71);
  FusedGemmAllToAll(wf, cfg, &df).run_to_completion();

  gpu::Machine mb(scale_up(pes));
  shmem::World wb(mb);
  shmem::SymArray<float> ob(pes, cfg.out_elems(pes));
  auto db = GemmA2AData::random(cfg, pes, &ob, /*seed=*/71);
  BaselineGemmAllToAll(wb, cfg, &db).run_to_completion();

  for (PeId pe = 0; pe < pes; ++pe) {
    auto a = of.pe(pe);
    auto b = ob.pe(pe);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-3);
    }
  }
}

GemmA2AConfig timing_cfg() {
  GemmA2AConfig cfg;
  cfg.rows_per_origin = 1024;
  cfg.d_model = 1024;
  cfg.d_ff = 2048;
  cfg.functional = false;
  return cfg;
}

TEST(FusedGemm, FusedIsFasterThanBaseline) {
  const auto cfg = timing_cfg();
  gpu::Machine mf(scale_up(4));
  shmem::World wf(mf);
  const auto rf = FusedGemmAllToAll(wf, cfg, nullptr).run_to_completion();

  gpu::Machine mb(scale_up(4));
  shmem::World wb(mb);
  const auto rb = BaselineGemmAllToAll(wb, cfg, nullptr).run_to_completion();

  EXPECT_LT(rf.duration(), rb.duration());
  // GEMM dominates: the win is bounded (paper: 12% avg, up to 20%).
  EXPECT_GT(static_cast<double>(rf.duration()) / rb.duration(), 0.6);
}

TEST(FusedGemm, RejectsMisalignedTiles) {
  gpu::Machine m(scale_up(4));
  shmem::World w(m);
  GemmA2AConfig cfg;
  cfg.rows_per_origin = 100;  // not a multiple of block_m=64
  EXPECT_THROW(FusedGemmAllToAll(w, cfg, nullptr), std::logic_error);
}

TEST(FusedGemm, DeterministicAcrossRuns) {
  const auto cfg = timing_cfg();
  auto once = [&] {
    gpu::Machine m(scale_up(4));
    shmem::World w(m);
    return FusedGemmAllToAll(w, cfg, nullptr).run_to_completion().duration();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace fcc::fused

// DLRM distributed forward pass: functional equivalence fused vs baseline,
// component timing sanity.
#include <gtest/gtest.h>

#include "dlrm/model.h"

namespace fcc::dlrm {
namespace {

gpu::Machine::Config four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

DlrmConfig small_dlrm(fw::Backend backend, bool functional) {
  DlrmConfig cfg;
  cfg.emb.map.num_pes = 4;
  cfg.emb.map.tables_per_pe = 2;
  cfg.emb.map.global_batch = 16;
  cfg.emb.map.dim = 8;
  cfg.emb.map.vectors_per_slice = 2;
  cfg.emb.pooling = 4;
  cfg.emb.rows_per_table = 32;
  cfg.emb.functional = functional;
  cfg.dense_dim = 6;
  cfg.bottom_mlp = {12, 8};  // output 8 == emb dim
  cfg.top_mlp = {16, 1};
  cfg.backend = backend;
  return cfg;
}

TEST(DlrmConfig, ValidatesBottomWidthAgainstEmbDim) {
  auto cfg = small_dlrm(fw::Backend::kFused, false);
  cfg.bottom_mlp = {12, 9};  // != dim 8
  EXPECT_THROW(cfg.validate(), std::logic_error);
}

TEST(DlrmConfig, FeatureCounting) {
  const auto cfg = small_dlrm(fw::Backend::kFused, false);
  EXPECT_EQ(cfg.num_features(), 9);            // 8 global tables + bottom
  EXPECT_EQ(cfg.interaction_dim(), 36 + 8);    // C(9,2) + passthrough
}

TEST(DlrmModel, ForwardProducesLogitsInUnitInterval) {
  fw::Session s(four_gpus());
  DlrmModel model(s, small_dlrm(fw::Backend::kFused, true));
  const auto res = model.forward(/*seed=*/5);
  ASSERT_EQ(res.logits.size(), 4u);
  for (const auto& pe : res.logits) {
    ASSERT_EQ(pe.size(), 4u);  // local_batch x top width 1
    for (float v : pe) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);  // sigmoid saturates in fp32 for large logits
    }
  }
  EXPECT_GT(res.total_ns, 0);
  EXPECT_GT(res.emb_a2a.duration(), 0);
  EXPECT_GT(res.bottom_mlp_ns, 0);
  EXPECT_GT(res.top_mlp_ns, 0);
}

TEST(DlrmModel, FusedAndBaselinePathsProduceIdenticalLogits) {
  fw::Session sf(four_gpus());
  DlrmModel mf(sf, small_dlrm(fw::Backend::kFused, true));
  const auto rf = mf.forward(/*seed=*/7);

  fw::Session sb(four_gpus());
  DlrmModel mb(sb, small_dlrm(fw::Backend::kBaseline, true));
  const auto rb = mb.forward(/*seed=*/7);

  ASSERT_EQ(rf.logits.size(), rb.logits.size());
  for (std::size_t pe = 0; pe < rf.logits.size(); ++pe) {
    ASSERT_EQ(rf.logits[pe].size(), rb.logits[pe].size());
    for (std::size_t i = 0; i < rf.logits[pe].size(); ++i) {
      ASSERT_NEAR(rf.logits[pe][i], rb.logits[pe][i], 1e-4);
    }
  }
}

TEST(DlrmModel, FusedForwardIsFasterAtScale) {
  auto cfg_f = small_dlrm(fw::Backend::kFused, false);
  cfg_f.emb.map.global_batch = 512;
  cfg_f.emb.map.tables_per_pe = 16;
  cfg_f.emb.map.dim = 64;
  cfg_f.emb.map.vectors_per_slice = 32;
  cfg_f.emb.pooling = 64;
  cfg_f.bottom_mlp = {128, 64};
  auto cfg_b = cfg_f;
  cfg_b.backend = fw::Backend::kBaseline;

  fw::Session sf(four_gpus());
  const auto rf = DlrmModel(sf, cfg_f).forward(1);
  fw::Session sb(four_gpus());
  const auto rb = DlrmModel(sb, cfg_b).forward(1);
  EXPECT_LT(rf.total_ns, rb.total_ns);
}

}  // namespace
}  // namespace fcc::dlrm

// Shared fused-operator runtime: OccupancyPlan resolution, FlagSet
// lifecycle + signalling, task ordering, the FusedOp spawn/drain driver,
// and OperatorResult::skew() edge cases.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fused/op_runtime.h"
#include "gpu/machine.h"

namespace fcc::fused {
namespace {

hw::GpuSpec spec_with(int num_cus, int max_wgs_per_cu, int vgprs_per_cu) {
  hw::GpuSpec s;
  s.num_cus = num_cus;
  s.max_wgs_per_cu = max_wgs_per_cu;
  s.vgprs_per_cu = vgprs_per_cu;
  return s;
}

// ---------------------------------------------------------------------------
// OccupancyPlan
// ---------------------------------------------------------------------------

TEST(OccupancyPlan, DerivesFromKernelResources) {
  // 262144 VGPRs / (128 * 256) = 8 WGs/CU; hardware limit also 8.
  const auto spec = spec_with(104, 8, 262144);
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128;
  EXPECT_EQ(OccupancyPlan::resolve(spec, r).slots, 104 * 8);
}

TEST(OccupancyPlan, ShmemContextLowersOccupancy) {
  // 262144 / (144 * 256) = 7 WGs/CU — the paper's 12.5% occupancy loss.
  const auto spec = spec_with(104, 8, 262144);
  gpu::KernelResources r;
  r.threads_per_wg = 256;
  r.vgprs_per_thread = 128 + gpu::kShmemCtxVgprsPerThread;
  EXPECT_EQ(OccupancyPlan::resolve(spec, r).slots, 104 * 7);
}

TEST(OccupancyPlan, OverrideWinsOverDerivation) {
  const auto spec = spec_with(104, 8, 262144);
  gpu::KernelResources r;
  EXPECT_EQ(OccupancyPlan::resolve(spec, r, {.override_slots = 13}).slots, 13);
}

TEST(OccupancyPlan, KneeCapsDerivedSlots) {
  // Occupancy limit 832, knee at 75% of 832 = 624.
  const auto spec = spec_with(104, 8, 262144);
  gpu::KernelResources r;
  EXPECT_EQ(OccupancyPlan::resolve(spec, r, {.knee_frac = 0.75}).slots, 624);
  // Override skips the knee (the Fig. 13 ablation sweeps past it).
  EXPECT_EQ(OccupancyPlan::resolve(spec, r,
                                   {.override_slots = 800, .knee_frac = 0.75})
                .slots,
            800);
}

TEST(OccupancyPlan, TaskCountCapsEverything) {
  const auto spec = spec_with(104, 8, 262144);
  gpu::KernelResources r;
  EXPECT_EQ(OccupancyPlan::resolve(spec, r, {.max_tasks = 5}).slots, 5);
  EXPECT_EQ(
      OccupancyPlan::resolve(spec, r, {.override_slots = 64, .max_tasks = 5})
          .slots,
      5);
}

// ---------------------------------------------------------------------------
// Task ordering
// ---------------------------------------------------------------------------

TEST(TaskOrdering, StridedTasksAssignSlotsStatically) {
  EXPECT_EQ(strided_tasks(0, 7, 3), (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(strided_tasks(2, 7, 3), (std::vector<int>{2, 5}));
  EXPECT_EQ(strided_tasks(5, 3, 1), (std::vector<int>{}));
}

TEST(TaskOrdering, CommAwarePutsRemoteTasksFirstStably) {
  const auto is_remote = [](int t) { return t % 2 == 0; };
  EXPECT_EQ(ordered_tasks({0, 1, 2, 3, 4}, gpu::SchedulePolicy::kCommAware,
                          is_remote),
            (std::vector<int>{0, 2, 4, 1, 3}));
  EXPECT_EQ(ordered_tasks({0, 1, 2, 3, 4}, gpu::SchedulePolicy::kOblivious,
                          is_remote),
            (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskOrdering, RangeOverloadMatchesMakeSchedule) {
  const auto is_remote = [](int t) { return t >= 3; };
  EXPECT_EQ(ordered_tasks(5, gpu::SchedulePolicy::kCommAware, is_remote),
            (std::vector<int>{3, 4, 0, 1, 2}));
}

// ---------------------------------------------------------------------------
// FlagSet
// ---------------------------------------------------------------------------

TEST(FlagSet, LifecycleAndLocalSet) {
  sim::Engine engine;
  FlagSet flags;
  EXPECT_FALSE(static_cast<bool>(flags));
  flags.reset(engine, 2, 4);
  ASSERT_TRUE(static_cast<bool>(flags));
  EXPECT_EQ(flags->num_pes(), 2);
  EXPECT_EQ(flags->size(), 4u);
  flags->set(1, 3, 7);
  EXPECT_EQ(flags->read(1, 3), 7u);
  flags.reset(engine, 2, 4);  // rebuild drops prior values
  EXPECT_EQ(flags->read(1, 3), 0u);
}

TEST(FlagSet, SignalDeliversRemoteFlagStores) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  gpu::Machine machine(cfg);
  shmem::World world(machine);
  auto& engine = machine.engine();

  FlagSet flags;
  flags.reset(engine, 4, 2);
  struct Driver {
    static sim::Task go(sim::Engine&, shmem::World& world, FlagSet& flags) {
      co_await flags.fence_and_signal_peers(world, /*src=*/0, /*idx=*/1);
    }
  };
  Driver::go(engine, world, flags);
  engine.run();
  ASSERT_EQ(engine.live_tasks(), 0);
  EXPECT_EQ(flags->read(0, 1), 0u);  // src does not signal itself
  for (PeId peer = 1; peer < 4; ++peer) {
    EXPECT_EQ(flags->read(peer, 1), 1u) << "peer " << peer;
  }
}

// ---------------------------------------------------------------------------
// FusedOp driver
// ---------------------------------------------------------------------------

class DelayOp final : public FusedOp {
 public:
  DelayOp(shmem::World& world, TimeNs cost) : FusedOp(world), cost_(cost) {}
  const char* name() const override { return "delay_op"; }
  gpu::KernelResources resources() const override { return {}; }
  sim::Co run() override {
    begin_run(world_.n_pes());
    co_await sim::delay(engine(), cost_);
    finish_run_uniform();
  }

 private:
  TimeNs cost_;
};

TEST(FusedOpDriver, RunToCompletionDrivesAndFillsResult) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  gpu::Machine machine(cfg);
  shmem::World world(machine);

  DelayOp op(world, 1234);
  const auto res = op.run_to_completion();
  EXPECT_EQ(res.duration(), 1234);
  EXPECT_EQ(res.pe_end.size(), 2u);
  EXPECT_EQ(res.pe_end[0], res.end);
  EXPECT_EQ(op.result().end, res.end);

  // Re-running continues from the engine's current time.
  const auto res2 = op.run_to_completion();
  EXPECT_EQ(res2.start, res.end);
  EXPECT_EQ(res2.duration(), 1234);
}

TEST(FusedOpDriver, SpawnReturnsAwaitableCompletionPerOp) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  gpu::Machine machine(cfg);
  shmem::World world(machine);

  // Two ops in flight on one engine: the executor pattern. Each spawn
  // returns its own completion event; one drain finishes both.
  DelayOp fast(world, 100);
  DelayOp slow(world, 900);
  auto& fast_done = fast.spawn();
  auto& slow_done = slow.spawn();
  EXPECT_FALSE(fast_done.is_set());
  EXPECT_FALSE(slow_done.is_set());

  machine.engine().run();
  EXPECT_TRUE(fast_done.is_set());
  EXPECT_TRUE(slow_done.is_set());
  EXPECT_EQ(machine.engine().live_tasks(), 0);
  // Both started at t=0 — they genuinely overlapped.
  EXPECT_EQ(fast.result().start, 0);
  EXPECT_EQ(slow.result().start, 0);
  EXPECT_EQ(fast.result().end, 100);
  EXPECT_EQ(slow.result().end, 900);
}

TEST(FusedOpDriver, SpawnWhileInFlightThrows) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  gpu::Machine machine(cfg);
  shmem::World world(machine);

  DelayOp op(world, 100);
  op.spawn();
  EXPECT_THROW(op.spawn(), std::logic_error);
  machine.engine().run();
  // Completed: spawning again is legal.
  auto& again = op.spawn();
  machine.engine().run();
  EXPECT_TRUE(again.is_set());
  EXPECT_EQ(op.result().start, 100);
}

// ---------------------------------------------------------------------------
// OperatorResult::skew
// ---------------------------------------------------------------------------

TEST(OperatorResult, SkewIsZeroOnDegenerateSpans) {
  OperatorResult r;
  EXPECT_DOUBLE_EQ(r.skew(), 0.0);  // empty pe_end, zero duration

  r.start = 100;
  r.end = 100;  // zero duration with non-empty pe_end
  r.pe_end = {100, 100};
  EXPECT_DOUBLE_EQ(r.skew(), 0.0);

  r.end = 200;
  r.pe_end = {50, 90};  // all completions at/before start
  EXPECT_DOUBLE_EQ(r.skew(), 0.0);
}

TEST(OperatorResult, SkewMeasuresRelativeSpread) {
  OperatorResult r;
  r.start = 0;
  r.end = 100;
  r.pe_end = {60, 100};
  EXPECT_DOUBLE_EQ(r.skew(), 0.4);
}

// ---------------------------------------------------------------------------
// Deadlock diagnostics
// ---------------------------------------------------------------------------

/// PE 0 waits on a flag nobody sets; PE 1 completes. The deadlock check
/// must name the stuck PE and the unsatisfied wait_ge.
class StuckOp final : public FusedOp {
 public:
  explicit StuckOp(shmem::World& world) : FusedOp(world) {
    register_debug_flags("gate", gate_);
  }
  const char* name() const override { return "stuck_op"; }
  gpu::KernelResources resources() const override { return {}; }
  sim::Co run() override {
    const int pes = world_.n_pes();
    gate_.reset(engine(), pes, 2);
    begin_run(pes);
    co_await run_per_pe_at(engine().now(), pes,
                           [this](PeId pe) { return pe_body(pe); });
    finish_run_uniform();
  }
  void unstick() { gate_->set(0, 1, 3); }

 private:
  sim::Co pe_body(PeId pe) {
    if (pe == 0) {
      co_await gate_->wait_ge(0, 1, 3);
    }
  }
  FlagSet gate_;
};

TEST(FusedOpDriver, DeadlockCheckNamesStuckPesAndUnsatisfiedWaits) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  gpu::Machine machine(cfg);
  shmem::World world(machine);

  StuckOp op(world);
  try {
    op.run_to_completion();
    FAIL() << "expected the deadlock check to fire";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stuck_op deadlocked"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck PE tasks (1/2): pe0"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unsatisfied waits on 'gate' (1): [pe0][1]=0<3"),
              std::string::npos)
        << msg;
  }
  // Satisfy the wait and drain so the stranded run finishes instead of
  // leaking suspended coroutine frames.
  op.unstick();
  machine.engine().run();
  EXPECT_EQ(machine.engine().live_tasks(), 0);
}

}  // namespace
}  // namespace fcc::fused

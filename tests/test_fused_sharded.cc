// Shard-local fused runtime goldens: the full operator / graph / serving
// stack on the sharded engine must be *byte-identical* to the serial
// engine.
//
// Four layers:
//
//   1. Operator goldens — every registered operator (all four built-ins),
//      both backends, run via its smoke spec on a fully-connected fabric
//      and a 2x2 torus at shard counts {1, 2, 4}; the whole
//      OperatorResult (start, end, per-PE completions) must match the
//      serial run exactly, as must the merged execution trace.
//   2. fw::Graph — a diamond of real registered ops executed on a sharded
//      Session reproduces the serial node results and makespan.
//   3. serve::Simulator — a warm sharded simulator replays a trace with
//      records identical to the serial machine's, twice (warm re-run
//      stability under sharding).
//   4. Capability check — a sharded machine whose kernel-launch latency is
//      below the fabric's conservative lookahead cannot host fused ops and
//      must say so actionably at simulator construction.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "framework/graph.h"
#include "framework/op_registry.h"
#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/result.h"
#include "gpu/machine.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"

namespace fcc {
namespace {

// Four single-GPU nodes: every smoke spec targets 4 PEs, and node-aligned
// sharding can then split them 1/2/4 ways.
gpu::Machine::Config fc_config(int shards) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 1;
  cfg.num_shards = shards;
  return cfg;
}

gpu::Machine::Config torus_config(int shards) {
  gpu::Machine::Config cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 1;
  cfg.topology.kind = hw::TopologySpec::Kind::kTorus2D;
  cfg.topology.torus.dim_x = 2;
  cfg.topology.torus.dim_y = 2;
  cfg.num_shards = shards;
  return cfg;
}

/// Ops with smoke specs — the whole registered catalog (>= the four
/// built-ins), runnable timing-only on any 4-PE machine.
std::vector<std::string> smoke_ops() {
  const fw::OpRegistry& reg = fw::OpRegistry::global();
  std::vector<std::string> ops;
  for (const std::string& name : reg.names()) {
    if (reg.at(name).smoke_spec != nullptr) ops.push_back(name);
  }
  return ops;
}

fused::OperatorResult run_op(const gpu::Machine::Config& mc,
                             const std::string& op, fw::Backend backend) {
  gpu::Machine machine(mc);
  shmem::World world(machine);
  const fw::OpEntry& entry = fw::OpRegistry::global().at(op);
  auto instance = entry.make(world, entry.smoke_spec(), backend);
  const auto res = instance->run_to_completion();
  EXPECT_EQ(machine.sharded().live_tasks(), 0) << op;
  return res;
}

// ---------------------------------------------------------------------------
// 1. Operator goldens: serial == sharded for every op, backend, fabric
// ---------------------------------------------------------------------------

TEST(FusedSharded, EveryOperatorMatchesSerialOnFullyConnected) {
  for (const std::string& op : smoke_ops()) {
    for (const fw::Backend backend :
         {fw::Backend::kFused, fw::Backend::kBaseline}) {
      SCOPED_TRACE(op + (backend == fw::Backend::kFused ? "/fused"
                                                        : "/baseline"));
      const auto serial = run_op(fc_config(1), op, backend);
      EXPECT_GT(serial.duration(), 0);
      for (const int shards : {2, 4}) {
        const auto sharded = run_op(fc_config(shards), op, backend);
        EXPECT_EQ(serial, sharded) << "shards=" << shards;
      }
    }
  }
}

TEST(FusedSharded, EveryOperatorMatchesSerialOnTorus) {
  for (const std::string& op : smoke_ops()) {
    for (const fw::Backend backend :
         {fw::Backend::kFused, fw::Backend::kBaseline}) {
      SCOPED_TRACE(op + (backend == fw::Backend::kFused ? "/fused"
                                                        : "/baseline"));
      const auto serial = run_op(torus_config(1), op, backend);
      EXPECT_GT(serial.duration(), 0);
      for (const int shards : {2, 4}) {
        const auto sharded = run_op(torus_config(shards), op, backend);
        EXPECT_EQ(serial, sharded) << "shards=" << shards;
      }
    }
  }
}

/// The merged trace — every kernel-WG span and PUT instant in canonical
/// order — is the finest-grained observable surface; byte-compare it, not
/// just the endpoint times.
std::string traced_embedding_run(const gpu::Machine::Config& base,
                                 int shards) {
  gpu::Machine::Config mc = base;
  mc.num_shards = shards;
  mc.collect_trace = true;
  gpu::Machine machine(mc);
  shmem::World world(machine);

  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = machine.num_pes();
  cfg.map.tables_per_pe = 4;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.functional = false;
  cfg.emit_trace = true;

  fused::FusedEmbeddingAllToAll op(world, cfg, nullptr);
  op.run_to_completion();
  std::ostringstream json;
  machine.merged_trace().write_chrome_json(json);
  return json.str();
}

TEST(FusedSharded, MergedTraceMatchesSerialByteForByte) {
  for (const auto& [label, base] :
       {std::pair{"fc", fc_config(1)}, std::pair{"torus", torus_config(1)}}) {
    SCOPED_TRACE(label);
    const std::string serial = traced_embedding_run(base, 1);
    EXPECT_FALSE(serial.empty());
    for (const int shards : {2, 4}) {
      EXPECT_EQ(serial, traced_embedding_run(base, shards))
          << "shards=" << shards;
    }
  }
}

// Regression: on a 4x4 torus at 4 shards the node->shard map is 2x2 tiles —
// NOT contiguous in PE order — and several PEs issue inter-node PUTs at the
// same timestamp. The deferred-reservation replay must order those ties by
// source PE, not by source shard; the shard-id tie-break silently shifted
// late-PE completion times on exactly this shape.
TEST(FusedSharded, NonContiguousTorusTilingMatchesSerial) {
  auto run = [](int shards) {
    gpu::Machine::Config mc;
    mc.num_nodes = 16;
    mc.gpus_per_node = 1;
    mc.topology.kind = hw::TopologySpec::Kind::kTorus2D;
    mc.topology.torus.dim_x = 4;
    mc.topology.torus.dim_y = 4;
    mc.num_shards = shards;
    gpu::Machine machine(mc);
    shmem::World world(machine);
    fused::EmbeddingA2AConfig cfg;
    cfg.map.num_pes = machine.num_pes();
    cfg.map.tables_per_pe = 4;
    cfg.map.global_batch = 16 * machine.num_pes();
    cfg.map.dim = 64;
    cfg.map.vectors_per_slice = 8;
    cfg.functional = false;
    fused::FusedEmbeddingAllToAll op(world, cfg, nullptr);
    return op.run_to_completion();
  };
  const auto serial = run(1);
  EXPECT_GT(serial.duration(), 0);
  for (const int shards : {2, 4}) {
    EXPECT_EQ(serial, run(shards)) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// 2. fw::Graph diamond on a sharded Session
// ---------------------------------------------------------------------------

fw::GraphResult run_diamond(const gpu::Machine::Config& mc) {
  const fw::OpRegistry& reg = fw::OpRegistry::global();
  // Diamond over real ops: the embedding feeds two independent middle
  // stages (gemv + gemm) which join into the MoE dispatch.
  fw::Graph g;
  auto t1 = g.tensor("t1");
  auto t2 = g.tensor("t2");
  auto t3 = g.tensor("t3");
  auto t4 = g.tensor("t4");
  g.add(reg.at("fcc::embedding_a2a").smoke_spec(), {}, {t1}, "top");
  g.add(reg.at("fcc::gemv_allreduce").smoke_spec(), {t1}, {t2}, "left");
  g.add(reg.at("fcc::gemm_a2a").smoke_spec(), {t1}, {t3}, "right");
  g.add(reg.at("fcc::moe_dispatch").smoke_spec(), {t2, t3}, {t4}, "join");

  fw::Session session(mc);
  return session.run(g, fw::Backend::kFused);
}

TEST(FusedSharded, GraphDiamondMatchesSerial) {
  for (const auto& [label, serial_cfg, make] : {
           std::tuple{"fc", fc_config(1), &fc_config},
           std::tuple{"torus", torus_config(1), &torus_config},
       }) {
    SCOPED_TRACE(label);
    const fw::GraphResult serial = run_diamond(serial_cfg);
    ASSERT_EQ(serial.nodes.size(), 4u);
    EXPECT_GT(serial.overlap_fraction(), 0.0);  // the sides really overlap
    for (const int shards : {2, 4}) {
      const fw::GraphResult sharded = run_diamond(make(shards));
      EXPECT_EQ(sharded.makespan(), serial.makespan()) << "shards=" << shards;
      EXPECT_EQ(sharded.critical_path_ns, serial.critical_path_ns);
      ASSERT_EQ(sharded.nodes.size(), serial.nodes.size());
      for (std::size_t i = 0; i < serial.nodes.size(); ++i) {
        EXPECT_EQ(sharded.nodes[i].result, serial.nodes[i].result)
            << "shards=" << shards << " node " << serial.nodes[i].label;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Warm sharded serving determinism
// ---------------------------------------------------------------------------

serve::ServeReport serve_once(const gpu::Machine::Config& mc, int repeats) {
  gpu::Machine machine(mc);
  shmem::World world(machine);
  auto catalog = serve::default_catalog(machine.num_pes());
  const auto weights = serve::class_weights(catalog);
  serve::Simulator sim(machine, world, std::move(catalog));
  const auto trace = serve::poisson_trace(4e4, 80, 99, weights);

  serve::ServeReport report = sim.run(trace);
  for (int rep = 1; rep < repeats; ++rep) {
    const serve::ServeReport again = sim.run(trace);
    EXPECT_EQ(again.records, report.records) << "warm repeat " << rep;
    EXPECT_EQ(again.overall, report.overall) << "warm repeat " << rep;
  }
  EXPECT_EQ(machine.sharded().live_tasks(), 0);
  return report;
}

TEST(FusedSharded, WarmShardedServeIsDeterministicAndMatchesSerial) {
  const serve::ServeReport serial = serve_once(fc_config(1), /*repeats=*/1);
  EXPECT_GT(serial.overall.completed, 0);
  for (const int shards : {2, 4}) {
    const serve::ServeReport sharded = serve_once(fc_config(shards),
                                                  /*repeats=*/2);
    EXPECT_EQ(sharded.records, serial.records) << "shards=" << shards;
    EXPECT_EQ(sharded.overall, serial.overall) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// 4. Capability check
// ---------------------------------------------------------------------------

TEST(FusedSharded, SimulatorRejectsLaunchLatencyBelowLookahead) {
  gpu::Machine::Config mc = fc_config(2);
  // Lookahead on the fully-connected fabric is per_msg_proc + wire; drop
  // the kernel-launch latency below it so per-PE spawns would violate the
  // window.
  mc.gpu.kernel_launch_ns = mc.ib.per_msg_proc_ns + mc.ib.wire_latency_ns - 1;
  gpu::Machine machine(mc);
  EXPECT_FALSE(machine.supports_fused_ops());
  shmem::World world(machine);
  auto catalog = serve::default_catalog(machine.num_pes());
  try {
    serve::Simulator sim(machine, world, std::move(catalog));
    FAIL() << "expected the capability check to fire";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel_launch_ns"), std::string::npos) << msg;
    EXPECT_NE(msg.find("conservative lookahead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("num_shards=1"), std::string::npos) << msg;
  }
  // Serial machines never hit the check, whatever the launch latency.
  mc.num_shards = 1;
  gpu::Machine serial(mc);
  EXPECT_TRUE(serial.supports_fused_ops());
}

}  // namespace
}  // namespace fcc

// Fabric model: endpoint-port contention, the Fig. 9 mechanism.
#include <gtest/gtest.h>

#include "hw/fabric.h"

namespace fcc::hw {
namespace {

FabricSpec spec_80() {
  FabricSpec s;
  s.port_bytes_per_ns = 80.0;
  s.latency_ns = 700;
  return s;
}

TEST(Fabric, SingleTransferTiming) {
  Fabric f(4, spec_80());
  // 8000 bytes at 80 B/ns = 100 ns + 700 latency.
  EXPECT_EQ(f.transfer(0, 1, 8000, 0), 800);
}

TEST(Fabric, DisjointPairsDoNotContend) {
  Fabric f(4, spec_80());
  const TimeNs a = f.transfer(0, 1, 8000, 0);
  const TimeNs b = f.transfer(2, 3, 8000, 0);
  EXPECT_EQ(a, b);  // independent ports
}

TEST(Fabric, SharedEgressSerializes) {
  Fabric f(4, spec_80());
  const TimeNs a = f.transfer(0, 1, 8000, 0);
  const TimeNs b = f.transfer(0, 2, 8000, 0);  // same source port
  EXPECT_EQ(b - a, 100);
}

TEST(Fabric, SharedIngressSerializes) {
  Fabric f(4, spec_80());
  const TimeNs a = f.transfer(1, 0, 8000, 0);
  const TimeNs b = f.transfer(2, 0, 8000, 0);  // same destination port
  EXPECT_EQ(b - a, 100);
}

TEST(Fabric, AllToOneIncastSerializesFully) {
  Fabric f(4, spec_80());
  TimeNs last = 0;
  for (int src = 1; src < 4; ++src) {
    last = f.transfer(src, 0, 80000, 0);
  }
  // 3 x 1000 ns serialized on GPU0's ingress + latency.
  EXPECT_EQ(last, 3000 + 700);
}

TEST(Fabric, SelfTransferIsRejected) {
  Fabric f(2, spec_80());
  EXPECT_THROW(f.transfer(1, 1, 10, 0), std::logic_error);
}

TEST(Fabric, TracksTotalBytes) {
  Fabric f(2, spec_80());
  f.transfer(0, 1, 100, 0);
  f.transfer(1, 0, 200, 0);
  EXPECT_EQ(f.total_bytes(), 300);
}

}  // namespace
}  // namespace fcc::hw
